// Command quasii-loadgen drives HTTP load against a running quasii-serve,
// optionally validating every response against a local scan oracle. It is
// the client half of the serving story: concurrent clients, the full
// workload-pattern roster of the adaptive-indexing literature, mixed
// read/write traffic, and well-behaved 429 backoff.
//
// Usage:
//
//	quasii-loadgen [-addr http://localhost:8080] [-clients 8] [-queries 10000]
//	               [-workload uniform|clustered|zipf|sequential]
//	               [-selectivity 1e-3] [-skew 1.2] [-query-seed 2]
//	               [-write-every 0] [-readers 0] [-writers 0] [-audit-visibility]
//	               [-oracle] [-check-metrics] [-n 200000] [-dataset uniform]
//	               [-seed 1] [-retries 100] [-wait 10s]
//
// With -oracle, the generator rebuilds the server's dataset locally (match
// -n, -dataset and -seed to the quasii-serve flags) and compares every
// response against a full scan; any mismatch makes the run exit non-zero.
// The oracle run also scrapes GET /metrics afterwards: the exposition must
// parse strictly, and the server-side request counts and latency
// histograms are cross-checked against the client-side measurements
// (server p50/p95/p99 print next to the client's). -check-metrics runs
// that scrape without the oracle.
// -write-every N mixes one insert→verify→delete cycle into every Nth query.
// -audit-visibility promotes the cycles' read-your-writes checks to a
// first-class acked-write audit: every acked insert must be observed by the
// same client's immediate re-read and every acked delete must stay gone;
// any violation (or an audit that never ran) fails the run. It defaults
// -write-every to 25 when no write traffic was requested.
// -readers/-writers select the mixed-workload mode: -readers R goroutines
// drain the query workload (overriding -clients) while -writers W dedicated
// goroutines run continuous insert→verify→delete cycles against the same
// server — the end-to-end measurement of the engine's concurrent read path
// under write contention.
//
// -wait D polls the target's /healthz for up to D before the run starts, so
// a script can restart a durable quasii-serve (which replays its WAL before
// listening) and immediately relaunch the generator — the kill-restart
// oracle validation flow of scripts/persistence-smoke.sh.
//
// -chaos "CMD ARGS..." switches to chaos mode: the generator launches the
// server itself from the given argv (whitespace-split, no shell quoting),
// then SIGKILLs and restarts it -chaos-kills times at -chaos-interval
// spacing while the load runs. Transport errors are retried like 429s —
// clients must ride out every restart window — and any error, mismatch or
// failed recovery makes the run exit non-zero. The command must point the
// server at a durable -data-dir, or the kills genuinely destroy state and
// the oracle reports it. Server counters reset across restarts, so the
// /metrics cross-check validates series presence and shape only.
//
// -failover-leader/-failover-follower "CMD ARGS..." switch to failover
// mode: the generator launches a leader and a replicating follower from
// the two command lines, watches the follower's /readyz gate traffic until
// it catches up, fans oracle-validated reads over both servers, pushes
// acknowledged writes at the leader, waits for the follower to report zero
// replication lag, SIGKILLs the leader mid-load, promotes the follower
// (POST /repl/promote on -follower-addr), and verifies every acknowledged
// write survived and post-promotion writes flow. Any lost write, missed
// readiness gate, silently-accepted replica write, error or mismatch makes
// the run exit non-zero — the zero-loss validation behind
// scripts/replication-smoke.sh. -failover-writes sets the acknowledged
// write count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	quasii "repro"
	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/geom"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the quasii-serve target")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	queries := flag.Int("queries", 10000, "number of range queries to issue")
	workloadName := flag.String("workload", "uniform",
		"query workload: uniform, clustered, zipf or sequential")
	selectivity := flag.Float64("selectivity", 1e-3, "query volume as a fraction of the universe")
	skew := flag.Float64("skew", 1.2, "zipf workload skew")
	querySeed := flag.Int64("query-seed", 2, "workload RNG seed")
	writeEvery := flag.Int("write-every", 0,
		"mix an insert+delete cycle into every Nth query (0 = read-only)")
	readers := flag.Int("readers", 0,
		"mixed-workload mode: reader goroutines draining the query workload (0 = use -clients)")
	writers := flag.Int("writers", 0,
		"mixed-workload mode: dedicated writer goroutines running continuous insert+delete cycles")
	oracle := flag.Bool("oracle", false,
		"validate responses against a local scan oracle (requires matching -n/-dataset/-seed)")
	auditVisibility := flag.Bool("audit-visibility", false,
		"acked-write visibility audit: every acked insert must be seen by a same-client "+
			"re-read and every acked delete must stay gone; any violation fails the run "+
			"(enables write cycles every 25 queries unless -write-every/-writers say otherwise)")
	n := flag.Int("n", 200000, "server dataset size (for -oracle and -workload clustered)")
	datasetName := flag.String("dataset", "uniform", "server dataset generator: uniform or neuro")
	seed := flag.Int64("seed", 1, "server dataset RNG seed")
	checkMetrics := flag.Bool("check-metrics", false,
		"scrape and cross-check the server's /metrics after the run even without -oracle")
	retries := flag.Int("retries", 100, "max 429 retries per request")
	wait := flag.Duration("wait", 0,
		"poll the server's /healthz for up to this long before starting "+
			"(lets a script restart quasii-serve and the load generator back to back)")
	chaosCmd := flag.String("chaos", "",
		"chaos mode: launch the server from this command line (whitespace-split), "+
			"then SIGKILL and restart it mid-load; implies transport-error retries")
	chaosKills := flag.Int("chaos-kills", 3, "kill/restart cycles in -chaos mode")
	chaosInterval := flag.Duration("chaos-interval", 2*time.Second,
		"dwell between a recovered restart and the next kill in -chaos mode")
	failoverLeader := flag.String("failover-leader", "",
		"failover mode: launch the leader from this command line (whitespace-split)")
	failoverFollower := flag.String("failover-follower", "",
		"failover mode: launch the follower from this command line (whitespace-split)")
	followerAddr := flag.String("follower-addr", "http://localhost:8081",
		"failover mode: the follower's base URL")
	failoverWrites := flag.Int("failover-writes", 200,
		"failover mode: acknowledged writes pushed at the leader before the kill")
	flag.Parse()

	// The dataset is only materialized when something needs it: the oracle,
	// or the clustered workload (whose cluster centers sit on the data).
	var data []quasii.Object
	loadData := func() []quasii.Object {
		if data != nil {
			return data
		}
		switch *datasetName {
		case "uniform":
			data = quasii.UniformDataset(*n, *seed)
		case "neuro":
			data = quasii.NeuroDataset(*n, *seed, quasii.NeuroConfig{})
		default:
			fmt.Fprintf(os.Stderr, "unknown dataset %q (want uniform or neuro)\n", *datasetName)
			os.Exit(2)
		}
		return data
	}

	// The same generator path as quasii-bench's throughput experiment, so
	// serve-side and bench-side runs of one workload name measure the same
	// query pattern.
	var wdata []quasii.Object
	if *workloadName == "clustered" {
		wdata = loadData()
	}
	boxes, err := experiments.WorkloadQueries(*workloadName, wdata, *queries, *selectivity, *skew, *querySeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	nClients := *clients
	if *readers > 0 {
		nClients = *readers
	}
	cfg := bench.LoadgenConfig{
		BaseURL:         *addr,
		Clients:         nClients,
		Queries:         boxes,
		WriteEvery:      *writeEvery,
		Writers:         *writers,
		AuditVisibility: *auditVisibility,
		MaxRetries:      *retries,
		WaitReady:       *wait,
	}
	if cfg.AuditVisibility && cfg.WriteEvery == 0 && cfg.Writers == 0 {
		// The audit needs acked writes to re-read; give it a write cycle
		// every 25th query when the caller asked for none.
		cfg.WriteEvery = 25
	}
	if *oracle {
		sc := quasii.NewScan(loadData())
		cfg.Oracle = func(q geom.Box) []int32 { return sc.Query(q, nil) }
	}

	fmt.Printf("quasii-loadgen: %d %s queries (sel %g) against %s, %d readers, %d writers, write-every %d, oracle %v\n",
		len(boxes), *workloadName, *selectivity, *addr, nClients, *writers, *writeEvery, *oracle)
	// The oracle run also validates the server's observability: scrape
	// /metrics, require it to parse strictly, and cross-check the
	// server-side request accounting against the client-side counters.
	// Chaos restarts reset the server's counters mid-run, so the traffic
	// cross-check is skipped there (series presence, shape, and the
	// failure-model gauges are still validated) — and the scrape runs
	// inside the chaos harness, while it still owns a live server.
	var res *bench.LoadgenResult
	var rep *bench.MetricsReport
	var scrapeErr error
	scrape := func(check *bench.LoadgenResult) {
		if *oracle || *checkMetrics {
			rep, scrapeErr = bench.ScrapeMetrics(nil, *addr, check)
		}
	}
	failed := false
	if *failoverLeader != "" || *failoverFollower != "" {
		if *failoverLeader == "" || *failoverFollower == "" {
			fmt.Fprintln(os.Stderr,
				"quasii-loadgen: failover mode needs both -failover-leader and -failover-follower")
			os.Exit(2)
		}
		fres, err := bench.RunFailover(bench.FailoverConfig{
			LeaderCommand:   strings.Fields(*failoverLeader),
			FollowerCommand: strings.Fields(*failoverFollower),
			LeaderURL:       *addr,
			FollowerURL:     *followerAddr,
			Queries:         boxes,
			Oracle:          cfg.Oracle,
			Clients:         nClients,
			AckWrites:       *failoverWrites,
			ServerOut:       os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "quasii-loadgen: %v\n", err)
			failed = true
		}
		if fres != nil {
			bench.PrintFailover(os.Stdout, fres)
			// The whole point: nothing acknowledged may be lost, the
			// readiness gate and the replica's write fence must have been
			// observed working, and the promoted follower must take writes.
			if fres.LostWrites > 0 || !fres.ReadinessGated ||
				!fres.FollowerRejectedWrites || fres.PostPromoteWrites == 0 {
				failed = true
			}
			if fres.Load != nil && (fres.Load.Mismatches > 0 || fres.Load.Errors > 0) {
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	if *chaosCmd != "" {
		// Chaos mode: own the server process, crash it mid-load, and make
		// the clients absorb every restart window.
		cfg.RetryTransport = true
		if cfg.WaitReady <= 0 {
			cfg.WaitReady = 30 * time.Second
		}
		cres, err := bench.RunChaos(bench.ChaosConfig{
			Command:   strings.Fields(*chaosCmd),
			BaseURL:   *addr,
			Kills:     *chaosKills,
			Interval:  *chaosInterval,
			ServerOut: os.Stderr,
		}, func() {
			res = bench.RunLoadgen(cfg)
			scrape(nil)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "quasii-loadgen: %v\n", err)
			failed = true
		}
		if cres != nil {
			bench.PrintChaos(os.Stdout, cres)
			if cres.Restarts < cres.Kills {
				failed = true
			}
		}
	} else {
		res = bench.RunLoadgen(cfg)
		scrape(res)
	}
	if res == nil {
		os.Exit(1)
	}
	bench.PrintLoadgen(os.Stdout, res)
	failed = failed || res.Mismatches > 0 || res.Errors > 0 || res.VisibilityViolations > 0
	if *auditVisibility && res.AuditedWrites == 0 {
		fmt.Fprintln(os.Stderr, "quasii-loadgen: -audit-visibility ran but no acked write was audited")
		failed = true
	}
	if scrapeErr != nil {
		fmt.Fprintf(os.Stderr, "quasii-loadgen: %v\n", scrapeErr)
		failed = true
	}
	if rep != nil {
		bench.PrintMetricsReport(os.Stdout, rep)
		if len(rep.Problems) > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
