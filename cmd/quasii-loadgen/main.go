// Command quasii-loadgen drives HTTP load against a running quasii-serve,
// optionally validating every response against a local scan oracle. It is
// the client half of the serving story: concurrent clients, the full
// workload-pattern roster of the adaptive-indexing literature, mixed
// read/write traffic, and well-behaved 429 backoff.
//
// Usage:
//
//	quasii-loadgen [-addr http://localhost:8080] [-clients 8] [-queries 10000]
//	               [-workload uniform|clustered|zipf|sequential]
//	               [-selectivity 1e-3] [-skew 1.2] [-query-seed 2]
//	               [-write-every 0] [-readers 0] [-writers 0]
//	               [-oracle] [-check-metrics] [-n 200000] [-dataset uniform]
//	               [-seed 1] [-retries 100] [-wait 10s]
//
// With -oracle, the generator rebuilds the server's dataset locally (match
// -n, -dataset and -seed to the quasii-serve flags) and compares every
// response against a full scan; any mismatch makes the run exit non-zero.
// The oracle run also scrapes GET /metrics afterwards: the exposition must
// parse strictly, and the server-side request counts and latency
// histograms are cross-checked against the client-side measurements
// (server p50/p95/p99 print next to the client's). -check-metrics runs
// that scrape without the oracle.
// -write-every N mixes one insert→verify→delete cycle into every Nth query.
// -readers/-writers select the mixed-workload mode: -readers R goroutines
// drain the query workload (overriding -clients) while -writers W dedicated
// goroutines run continuous insert→verify→delete cycles against the same
// server — the end-to-end measurement of the engine's concurrent read path
// under write contention.
//
// -wait D polls the target's /healthz for up to D before the run starts, so
// a script can restart a durable quasii-serve (which replays its WAL before
// listening) and immediately relaunch the generator — the kill-restart
// oracle validation flow of scripts/persistence-smoke.sh.
package main

import (
	"flag"
	"fmt"
	"os"

	quasii "repro"
	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/geom"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the quasii-serve target")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	queries := flag.Int("queries", 10000, "number of range queries to issue")
	workloadName := flag.String("workload", "uniform",
		"query workload: uniform, clustered, zipf or sequential")
	selectivity := flag.Float64("selectivity", 1e-3, "query volume as a fraction of the universe")
	skew := flag.Float64("skew", 1.2, "zipf workload skew")
	querySeed := flag.Int64("query-seed", 2, "workload RNG seed")
	writeEvery := flag.Int("write-every", 0,
		"mix an insert+delete cycle into every Nth query (0 = read-only)")
	readers := flag.Int("readers", 0,
		"mixed-workload mode: reader goroutines draining the query workload (0 = use -clients)")
	writers := flag.Int("writers", 0,
		"mixed-workload mode: dedicated writer goroutines running continuous insert+delete cycles")
	oracle := flag.Bool("oracle", false,
		"validate responses against a local scan oracle (requires matching -n/-dataset/-seed)")
	n := flag.Int("n", 200000, "server dataset size (for -oracle and -workload clustered)")
	datasetName := flag.String("dataset", "uniform", "server dataset generator: uniform or neuro")
	seed := flag.Int64("seed", 1, "server dataset RNG seed")
	checkMetrics := flag.Bool("check-metrics", false,
		"scrape and cross-check the server's /metrics after the run even without -oracle")
	retries := flag.Int("retries", 100, "max 429 retries per request")
	wait := flag.Duration("wait", 0,
		"poll the server's /healthz for up to this long before starting "+
			"(lets a script restart quasii-serve and the load generator back to back)")
	flag.Parse()

	// The dataset is only materialized when something needs it: the oracle,
	// or the clustered workload (whose cluster centers sit on the data).
	var data []quasii.Object
	loadData := func() []quasii.Object {
		if data != nil {
			return data
		}
		switch *datasetName {
		case "uniform":
			data = quasii.UniformDataset(*n, *seed)
		case "neuro":
			data = quasii.NeuroDataset(*n, *seed, quasii.NeuroConfig{})
		default:
			fmt.Fprintf(os.Stderr, "unknown dataset %q (want uniform or neuro)\n", *datasetName)
			os.Exit(2)
		}
		return data
	}

	// The same generator path as quasii-bench's throughput experiment, so
	// serve-side and bench-side runs of one workload name measure the same
	// query pattern.
	var wdata []quasii.Object
	if *workloadName == "clustered" {
		wdata = loadData()
	}
	boxes, err := experiments.WorkloadQueries(*workloadName, wdata, *queries, *selectivity, *skew, *querySeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	nClients := *clients
	if *readers > 0 {
		nClients = *readers
	}
	cfg := bench.LoadgenConfig{
		BaseURL:    *addr,
		Clients:    nClients,
		Queries:    boxes,
		WriteEvery: *writeEvery,
		Writers:    *writers,
		MaxRetries: *retries,
		WaitReady:  *wait,
	}
	if *oracle {
		sc := quasii.NewScan(loadData())
		cfg.Oracle = func(q geom.Box) []int32 { return sc.Query(q, nil) }
	}

	fmt.Printf("quasii-loadgen: %d %s queries (sel %g) against %s, %d readers, %d writers, write-every %d, oracle %v\n",
		len(boxes), *workloadName, *selectivity, *addr, nClients, *writers, *writeEvery, *oracle)
	res := bench.RunLoadgen(cfg)
	bench.PrintLoadgen(os.Stdout, res)
	failed := res.Mismatches > 0 || res.Errors > 0
	if *oracle || *checkMetrics {
		// The oracle run also validates the server's observability: scrape
		// /metrics, require it to parse strictly, and cross-check the
		// server-side request accounting against the client-side counters.
		rep, err := bench.ScrapeMetrics(nil, *addr, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "quasii-loadgen: %v\n", err)
			os.Exit(1)
		}
		bench.PrintMetricsReport(os.Stdout, rep)
		if len(rep.Problems) > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
