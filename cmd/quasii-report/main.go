// Command quasii-report runs the full evaluation and emits a Markdown report
// of measured headline numbers, one section per paper figure. The checked-in
// EXPERIMENTS.md at the repository root is this command's output at the
// small scale; regenerate it after changes to the experiment drivers with
//
//	go run ./cmd/quasii-report -scale small -o EXPERIMENTS.md
//
// The full figure output (tables, charts) goes to stderr so the report on
// stdout stays clean:
//
//	quasii-report -scale medium > report.md 2> figures.log
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: small, medium or large")
	seed := flag.Int64("seed", 0, "override the RNG seed (0 = scale default)")
	out := flag.String("o", "", "write the report to a file instead of stdout")
	flag.Parse()

	scale, ok := experiments.Scales[*scaleName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintf(w, "# QUASII reproduction report\n\n")
	fmt.Fprintf(w, "<!-- Generated file. Regenerate with:\n")
	fmt.Fprintf(w, "       go run ./cmd/quasii-report -scale %s -o EXPERIMENTS.md\n", scale.Name)
	fmt.Fprintf(w, "     Absolute times vary per machine; the comparative notes are the\n")
	fmt.Fprintf(w, "     stable signal. -->\n\n")
	fmt.Fprintf(w, "Regenerate with `go run ./cmd/quasii-report -scale %s -o EXPERIMENTS.md`.\n\n", scale.Name)
	fmt.Fprintf(w, "Scale `%s` (uniform %d / neuro %d objects, %d clustered / %d uniform queries), seed %d.\n\n",
		scale.Name, scale.UniformN, scale.NeuroN, scale.ClusteredQueries, scale.UniformQueries, scale.Seed)
	fmt.Fprintf(w, "Every index in every figure returned identical result counts on every query\n")
	fmt.Fprintf(w, "(validated by the harness; a mismatch aborts the run).\n")

	figures := append(append([]string{}, experiments.Order...), "patterns")
	start := time.Now()
	for _, name := range figures {
		driver := experiments.Registry[name]
		fmt.Fprintf(os.Stderr, "== running %s ==\n", name)
		result, err := driver(os.Stderr, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\n## %s\n\n", name)
		for _, note := range result.Notes {
			fmt.Fprintf(w, "- %s\n", note)
		}
	}
	fmt.Fprintf(w, "\n_Total run time: %v._\n", time.Since(start).Round(time.Millisecond))
}
