// Command quasii-datagen generates the paper's evaluation datasets and
// writes them to a compact binary file (or prints summary statistics), so
// experiments can share identical inputs across runs and tools.
//
// Usage:
//
//	quasii-datagen -kind uniform|neuro -n 100000 [-seed 1] [-o data.bin]
//	quasii-datagen -inspect data.bin
//
// The file format is little-endian: a magic header, the object count, then
// per object six float64 coordinates and an int32 ID (see internal/dataset).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func main() {
	kind := flag.String("kind", "uniform", "dataset kind: uniform or neuro")
	n := flag.Int("n", 100000, "number of objects")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("o", "", "output file (default: stdout summary only)")
	inspect := flag.String("inspect", "", "inspect an existing dataset file and exit")
	clusters := flag.Int("clusters", 0, "neuro: number of clusters (0 = default)")
	flag.Parse()

	if *inspect != "" {
		objs, err := dataset.ReadFile(*inspect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		summarize(os.Stdout, *inspect, objs)
		return
	}

	var objs []geom.Object
	switch *kind {
	case "uniform":
		objs = dataset.Uniform(*n, *seed)
	case "neuro":
		objs = dataset.Neuro(*n, *seed, dataset.NeuroConfig{Clusters: *clusters})
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q (want uniform or neuro)\n", *kind)
		os.Exit(2)
	}

	summarize(os.Stdout, *kind, objs)
	if *out == "" {
		return
	}
	if err := dataset.WriteFile(*out, objs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d objects to %s\n", len(objs), *out)
}

func summarize(w io.Writer, kind string, objs []geom.Object) {
	mbb := geom.MBB(objs)
	ext := geom.MaxExtents(objs)
	var volSum float64
	for i := range objs {
		volSum += objs[i].Volume()
	}
	fmt.Fprintf(w, "dataset %s: %d objects\n", kind, len(objs))
	fmt.Fprintf(w, "  bounds      %v\n", mbb)
	fmt.Fprintf(w, "  max extents %.2f %.2f %.2f\n", ext[0], ext[1], ext[2])
	if len(objs) > 0 {
		fmt.Fprintf(w, "  mean volume %.3f\n", volSum/float64(len(objs)))
	}
}
