// Command quasii-bench regenerates the tables and figures of the QUASII
// paper's evaluation (Section 6). Each figure is a subexperiment that runs
// every index the paper compares on the figure's workload, validates that
// all indexes agree on every query result, and prints the series the paper
// plots.
//
// Usage:
//
//	quasii-bench [-scale small|medium|large] [-seed N] [-shards P] [-goroutines G]
//	             [-workload uniform|clustered|zipf|sequential] [fig...]
//
// With no figure arguments, the paper's figures (fig6a fig6b fig7 fig8 fig9
// fig10 fig11 fig12) run in paper order. The extension experiments gridsweep,
// patterns and throughput run only when named explicitly; throughput measures
// the sharded parallel engine's concurrent queries/sec against the
// global-mutex baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: small, medium or large")
	seed := flag.Int64("seed", 0, "override the dataset/workload RNG seed (0 = scale default)")
	shards := flag.Int("shards", 0, "shard count for the throughput experiment (0 = GOMAXPROCS)")
	goroutines := flag.Int("goroutines", 0, "max client goroutines for the throughput experiment (0 = 8)")
	noStats := flag.Bool("nostats", false,
		"disable QUASII work counters in the throughput experiment (production serving posture)")
	workloadName := flag.String("workload", "uniform",
		"query pattern for the throughput experiment: uniform, clustered, zipf or sequential")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV series into (created if missing)")
	list := flag.Bool("list", false, "list available figures and exit")
	flag.Usage = usage
	flag.Parse()

	if *list {
		names := make([]string, 0, len(experiments.Registry))
		for name := range experiments.Registry {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	scale, ok := experiments.Scales[*scaleName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small, medium or large)\n", *scaleName)
		os.Exit(2)
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	scale.Shards = *shards
	scale.Goroutines = *goroutines
	scale.NoStats = *noStats
	validWorkload := false
	for _, w := range experiments.Workloads {
		if *workloadName == w {
			validWorkload = true
			break
		}
	}
	if !validWorkload {
		fmt.Fprintf(os.Stderr, "unknown workload %q (want %s)\n",
			*workloadName, strings.Join(experiments.Workloads, ", "))
		os.Exit(2)
	}
	scale.Workload = *workloadName

	figs := flag.Args()
	if len(figs) == 0 {
		figs = experiments.Order
	}
	for _, name := range figs {
		driver, ok := experiments.Registry[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list to see the options\n", name)
			os.Exit(2)
		}
		fmt.Printf("=== %s (scale %s, seed %d) ===\n", name, scale.Name, scale.Seed)
		t0 := time.Now()
		result, err := driver(os.Stdout, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, name, result); err != nil {
				fmt.Fprintf(os.Stderr, "%s: writing CSV: %v\n", name, err)
				os.Exit(1)
			}
		}
		fmt.Printf("=== %s done in %v ===\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
}

// writeCSVs dumps the figure's measured series as convergence and cumulative
// CSV files. Series with differing query counts (e.g. two datasets within one
// figure) are grouped by length into separate files.
func writeCSVs(dir, fig string, r *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	groups := make(map[int][]*bench.Series)
	var order []int
	for _, s := range r.Series {
		n := len(s.PerQuery)
		if _, ok := groups[n]; !ok {
			order = append(order, n)
		}
		groups[n] = append(groups[n], s)
	}
	for gi, n := range order {
		suffix := ""
		if len(order) > 1 {
			suffix = fmt.Sprintf("_part%d", gi+1)
		}
		for kind, writer := range map[string]func(f *os.File) error{
			"convergence": func(f *os.File) error { return bench.WriteConvergenceCSV(f, groups[n]...) },
			"cumulative":  func(f *os.File) error { return bench.WriteCumulativeCSV(f, groups[n]...) },
		} {
			path := filepath.Join(dir, fmt.Sprintf("%s_%s%s.csv", fig, kind, suffix))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := writer(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `quasii-bench — regenerate the QUASII paper's evaluation figures

usage: quasii-bench [flags] [figure ...]

Paper figures (default when no figure is named, in paper order):
  fig6a      data-assignment impact: R-Tree vs Grid variants
  fig6b      grid configuration sensitivity
  fig7       convergence of incremental vs static approaches
  fig8       cumulative time of incremental vs static approaches
  fig9       comparative analysis of the incremental approaches
  fig10      uniform workload convergence and cumulative time
  fig11      scalability at two dataset sizes
  fig12      query selectivity impact

Extension experiments (run only when named):
  gridsweep  the grid-resolution parameter sweep
  patterns   QUASII vs R-Tree under adaptive-indexing access patterns
  throughput concurrent q/s: sharded engine vs global-mutex QUASII
             (-shards, -goroutines, -workload uniform|clustered|zipf|sequential)
  readscaling single-shard read scaling: shared read path vs exclusive lock,
             converged and mixed crack/read phases (-goroutines, -workload)

Flags:
`)
	flag.PrintDefaults()
}
