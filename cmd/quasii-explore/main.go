// Command quasii-explore is an interactive demonstration of incremental
// indexing: it loads (or generates) a dataset, then answers range queries
// from stdin with QUASII while reporting how the index refines itself and
// how its per-query latency converges toward a pre-built R-tree's.
//
// Usage:
//
//	quasii-explore [-kind uniform|neuro] [-n 200000] [-seed 1]
//
// Then type queries, one per line, as six numbers:
//
//	x0 y0 z0 x1 y1 z1
//
// Other commands: "auto N" runs N random queries, "knn x y z k" probes the
// k nearest objects, "complete" finishes refinement eagerly, "chart" draws
// the latency history, "stats" prints index statistics, "quit" exits.
//
// Live mode attaches to a running quasii-serve instead of an in-process
// index:
//
//	quasii-explore -live http://localhost:8080 [-interval 1s] [-samples 5]
//	               [-maxdepth 2] [-top 4] [-csv heat.csv]
//
// It waits for /readyz, then polls /stats, /debug/heat and /debug/index,
// rendering a convergence/heat report per sample (text histogram on stdout,
// optional CSV via -csv) and exiting non-zero on any HTTP or JSON failure —
// see live.go.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "uniform", "dataset kind: uniform or neuro")
	n := flag.Int("n", 200000, "number of objects")
	seed := flag.Int64("seed", 1, "RNG seed")
	load := flag.String("load", "", "load a dataset file written by quasii-datagen instead of generating")
	live := flag.String("live", "",
		"poll a running quasii-serve at this base URL instead of exploring in-process")
	liveInterval := flag.Duration("interval", time.Second, "pause between -live samples")
	liveSamples := flag.Int("samples", 5, "number of -live samples")
	liveMaxDepth := flag.Int("maxdepth", 2, "?maxdepth= forwarded to /debug/index in -live mode")
	liveTop := flag.Int("top", 4, "hottest tiles listed per -live sample")
	liveCSV := flag.String("csv", "", "append -live heat grid rows to this CSV file")
	flag.Parse()

	if *live != "" {
		err := runLive(liveOptions{
			url:      *live,
			interval: *liveInterval,
			samples:  *liveSamples,
			maxDepth: *liveMaxDepth,
			topK:     *liveTop,
			csvPath:  *liveCSV,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "quasii-explore:", err)
			os.Exit(1)
		}
		return
	}

	var data []geom.Object
	if *load != "" {
		var err error
		data, err = dataset.ReadFile(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		*kind = *load
	} else {
		switch *kind {
		case "uniform":
			data = dataset.Uniform(*n, *seed)
		case "neuro":
			data = dataset.Neuro(*n, *seed, dataset.NeuroConfig{})
		default:
			fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
			os.Exit(2)
		}
	}

	fmt.Printf("loaded %d %s objects; universe side %.0f\n", len(data), *kind, dataset.UniverseSide)
	fmt.Print("building reference R-tree... ")
	t0 := time.Now()
	ref := rtree.New(data, rtree.Config{})
	fmt.Printf("done in %v\n", time.Since(t0))
	ix := core.New(dataset.Clone(data), core.Config{})
	fmt.Println("QUASII ready instantly — it indexes as you query.")
	fmt.Println(`commands: "x0 y0 z0 x1 y1 z1", "auto N", "knn x y z k", "complete", "chart", "stats", "quit"`)

	var history *bench.Series = &bench.Series{Name: "QUASII"}
	refHistory := &bench.Series{Name: "R-tree"}
	sc := bufio.NewScanner(os.Stdin)
	autoSeed := *seed + 1000
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "quit" || line == "exit":
			if line != "" {
				return
			}
		case line == "stats":
			printStats(ix)
		case line == "complete":
			t0 := time.Now()
			ix.Complete()
			fmt.Printf("refinement completed in %v; %d slices\n", time.Since(t0), ix.NumSlices())
		case line == "chart":
			if len(history.PerQuery) < 2 {
				fmt.Println("run some queries first")
				continue
			}
			bench.Chart(os.Stdout, 64, 12, false, history, refHistory)
		case strings.HasPrefix(line, "knn"):
			runKNN(ix, ref, line)
		case strings.HasPrefix(line, "auto"):
			count := 10
			if fields := strings.Fields(line); len(fields) > 1 {
				if v, err := strconv.Atoi(fields[1]); err == nil && v > 0 {
					count = v
				}
			}
			autoSeed++
			for i, q := range workload.Uniform(dataset.Universe(), count, 1e-3, autoSeed) {
				runQuery(ix, ref, q, fmt.Sprintf("auto %d", i), history, refHistory)
			}
		default:
			q, err := parseQuery(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			runQuery(ix, ref, q, "query", history, refHistory)
		}
	}
}

// runKNN parses "knn x y z k" and probes both indexes.
func runKNN(ix *core.Index, ref *rtree.Tree, line string) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		fmt.Println(`usage: knn x y z k`)
		return
	}
	var vals [3]float64
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(fields[i+1], 64)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		vals[i] = v
	}
	k, err := strconv.Atoi(fields[4])
	if err != nil || k < 1 {
		fmt.Println("error: k must be a positive integer")
		return
	}
	p := geom.Point{vals[0], vals[1], vals[2]}
	t0 := time.Now()
	mine := ix.KNN(p, k)
	mineTime := time.Since(t0)
	t0 = time.Now()
	theirs := ref.KNN(p, k)
	theirsTime := time.Since(t0)
	match := len(mine) == len(theirs)
	for i := 0; match && i < len(mine); i++ {
		if mine[i].DistSq != theirs[i].DistSq {
			match = false
		}
	}
	ids := make([]int32, len(mine))
	for i, nb := range mine {
		ids[i] = nb.ID
	}
	fmt.Printf("knn: %v — QUASII %v, R-tree %v, agree=%v\n", ids, mineTime, theirsTime, match)
}

func parseQuery(line string) (geom.Box, error) {
	fields := strings.Fields(line)
	if len(fields) != 6 {
		return geom.Box{}, fmt.Errorf("want 6 numbers, got %d", len(fields))
	}
	var vals [6]float64
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return geom.Box{}, fmt.Errorf("field %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return geom.NewBox(
		geom.Point{vals[0], vals[1], vals[2]},
		geom.Point{vals[3], vals[4], vals[5]}), nil
}

func runQuery(ix *core.Index, ref *rtree.Tree, q geom.Box, label string, hist, refHist *bench.Series) {
	t0 := time.Now()
	got := ix.Query(q, nil)
	quasiiTime := time.Since(t0)
	t0 = time.Now()
	want := ref.Query(q, nil)
	rtreeTime := time.Since(t0)
	hist.PerQuery = append(hist.PerQuery, quasiiTime)
	hist.Counts = append(hist.Counts, len(got))
	refHist.PerQuery = append(refHist.PerQuery, rtreeTime)
	refHist.Counts = append(refHist.Counts, len(want))
	status := "OK"
	if len(got) != len(want) {
		status = fmt.Sprintf("MISMATCH (r-tree found %d)", len(want))
	}
	fmt.Printf("%s: %d results — QUASII %v, R-tree %v [%s]\n",
		label, len(got), quasiiTime, rtreeTime, status)
}

func printStats(ix *core.Index) {
	st := ix.Stats()
	fmt.Printf("queries %d, cracks %d, objects moved %d, slices %d (created %d), objects tested %d\n",
		st.Queries, st.Cracks, st.CrackedObjects, ix.NumSlices(), st.SlicesCreated, st.ObjectsTested)
}
