// Live mode: instead of driving an in-process index, -live polls a running
// quasii-serve instance and renders what its introspection endpoints expose
// — the convergence counters from /stats, the tile×depth heat grid from
// /debug/heat, and the hottest tiles from /debug/index. The text report goes
// to stdout (a heat histogram per sample); -csv appends machine-readable
// rows for EXPERIMENTS.md-style analysis. Every fetch strictly decodes the
// response into the server's own wire types, so a malformed or drifted
// payload fails the run — scripts/persistence-smoke.sh uses that as its
// JSON validator across the restart cycle.

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/server"
)

type liveOptions struct {
	url      string        // base URL of the running server
	interval time.Duration // pause between samples
	samples  int           // number of polls
	maxDepth int           // ?maxdepth= forwarded to /debug/index
	topK     int           // hottest tiles to list per sample
	csvPath  string        // CSV output file; empty disables
}

// fetchJSON GETs url and strictly decodes the body into v: non-200 status,
// unreadable body, malformed JSON and unknown fields are all errors.
func fetchJSON(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("GET %s: reading body: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, firstLine(body))
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("GET %s: malformed JSON: %w", url, err)
	}
	return nil
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// waitReady polls /readyz until the server reports ready, so a probe
// launched alongside a warm restart does not race the restore. It fails —
// rather than proceeding — when readiness does not arrive in time, which is
// exactly the premature-readiness check the persistence smoke test wants.
func waitReady(client *http.Client, base string, timeout time.Duration) (server.ReadyResponse, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		var ready server.ReadyResponse
		err := fetchJSON(client, base+"/readyz", &ready)
		if err == nil && ready.Ready {
			return ready, nil
		}
		if err == nil {
			lastErr = fmt.Errorf("server not ready (status %q)", ready.Status)
		} else {
			lastErr = err
		}
		if time.Now().After(deadline) {
			return server.ReadyResponse{}, fmt.Errorf("waiting for %s/readyz: %w", base, lastErr)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// runLive is the -live entry point: wait for readiness, then poll and render
// opt.samples convergence/heat reports.
func runLive(opt liveOptions) error {
	client := &http.Client{Timeout: 15 * time.Second}
	base := strings.TrimSuffix(opt.url, "/")

	ready, err := waitReady(client, base, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("connected to %s (ready)\n", base)
	if rec := ready.Recovery; rec != nil {
		fmt.Printf("recovery: snapshot seq %d, %d WAL records replayed, bootstrapped=%v, restore %.3fs\n",
			rec.SnapshotSeq, rec.WALRecordsReplayed, rec.Bootstrapped, rec.RestoreSeconds)
	}

	var csv *os.File
	if opt.csvPath != "" {
		csv, err = os.Create(opt.csvPath)
		if err != nil {
			return err
		}
		defer csv.Close()
		fmt.Fprintln(csv, "sample,shard,level,slices,refined,heat")
	}

	for i := 0; i < opt.samples; i++ {
		if i > 0 {
			time.Sleep(opt.interval)
		}
		var stats server.StatsResponse
		if err := fetchJSON(client, base+"/stats", &stats); err != nil {
			return err
		}
		var heat server.DebugHeatResponse
		if err := fetchJSON(client, base+"/debug/heat", &heat); err != nil {
			return err
		}
		var index server.DebugIndexResponse
		if err := fetchJSON(client, fmt.Sprintf("%s/debug/index?maxdepth=%d", base, opt.maxDepth), &index); err != nil {
			return err
		}
		renderSample(i+1, opt, &stats, &heat, &index)
		if csv != nil {
			writeHeatCSV(csv, i+1, &heat)
		}
	}
	return nil
}

// renderSample prints one convergence/heat report.
func renderSample(sample int, opt liveOptions, stats *server.StatsResponse, heat *server.DebugHeatResponse, index *server.DebugIndexResponse) {
	ix := stats.Index
	fmt.Printf("\n=== sample %d/%d  uptime %.1fs ===\n", sample, opt.samples, stats.UptimeSeconds)
	fmt.Printf("convergence: %d slices refined (of %d created), %d exclusive + %d shared queries, converged=%v\n",
		ix.SlicesRefined, ix.Slices, ix.Queries, ix.SharedQueries, index.Converged)
	fmt.Printf("heat: sample-every %d, total %d sampled touches across %d materialized slices\n",
		heat.HeatSampleEvery, heat.TotalHeat, index.Slices)

	// The tile×depth grid: one bar per tile, scaled to the hottest tile.
	maxHeat := int64(1)
	for _, t := range heat.Tiles {
		if t.TotalHeat > maxHeat {
			maxHeat = t.TotalHeat
		}
	}
	fmt.Println("tile heat (per-level slices:refined:heat):")
	for _, t := range heat.Tiles {
		bar := strings.Repeat("#", int(t.TotalHeat*40/maxHeat))
		cells := make([]string, 0, len(t.Levels))
		for _, c := range t.Levels {
			cells = append(cells, fmt.Sprintf("L%d %d:%d:%d", c.Level, c.Slices, c.Refined, c.Heat))
		}
		fmt.Printf("  shard %-8s %8d |%-40s| %s converged=%v\n",
			t.Shard, t.TotalHeat, bar, strings.Join(cells, "  "), t.Converged)
	}

	// The hottest tiles with their hottest slices — the "which tiles did the
	// work behind the plateau" view.
	tiles := append([]server.DebugTileJSON(nil), index.Tiles...)
	sort.Slice(tiles, func(a, b int) bool { return tiles[a].TotalHeat > tiles[b].TotalHeat })
	k := opt.topK
	if k > len(tiles) {
		k = len(tiles)
	}
	fmt.Printf("hottest %d tiles:\n", k)
	for _, t := range tiles[:k] {
		fmt.Printf("  shard %-8s heat %-8d max-slice %-6d slices %d/%d refined, epoch %d, objects %d\n",
			t.Shard, t.TotalHeat, t.MaxHeat, t.SlicesRefined, t.Slices, t.Epoch, t.Objects)
	}
}

// writeHeatCSV appends one sample's grid as CSV rows.
func writeHeatCSV(w io.Writer, sample int, heat *server.DebugHeatResponse) {
	for _, t := range heat.Tiles {
		for _, c := range t.Levels {
			fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d\n", sample, t.Shard, c.Level, c.Slices, c.Refined, c.Heat)
		}
	}
}
