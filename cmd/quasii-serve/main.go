// Command quasii-serve runs the HTTP/JSON query service over a sharded
// QUASII index: the paper's in-process adaptive index turned into a network
// server with request batching, admission control, live updates, metrics,
// and (with -data-dir) durable persistence with warm restart.
//
// Usage:
//
//	quasii-serve [-addr :8080] [-n 200000] [-dataset uniform|neuro] [-seed 1]
//	             [-shards P] [-workers W] [-batch-window 2ms] [-batch-limit 64]
//	             [-max-inflight 1024] [-exec-slots 0] [-flush-every 4096]
//	             [-data-dir DIR] [-fsync always|interval|never]
//	             [-fsync-interval 100ms] [-checkpoint-every 100000]
//	             [-pprof :6060] [-trace-sample 64] [-slow-threshold 10ms]
//	             [-slowlog-size 128]
//
// Without -data-dir the server builds the requested synthetic dataset (the
// same generators the paper's evaluation uses, so a quasii-loadgen started
// with matching -n/-dataset/-seed can validate every response against a
// local oracle) and serves it from memory only.
//
// With -data-dir the server is durable: on first start the synthetic
// dataset bootstraps the directory, on every later start the index is
// restored from the latest snapshot — all accumulated refinement included,
// so the warm restart skips the convergence cost — and the write-ahead log
// is replayed. /insert and /delete are logged before they are acknowledged
// (-fsync selects the cadence), POST /snapshot checkpoints on demand,
// -checkpoint-every N checkpoints automatically after N accepted updates,
// and SIGTERM/SIGINT triggers a graceful shutdown: stop accepting requests,
// write a final snapshot, truncate the log, exit 0.
//
//	POST /query    {"min":[x,y,z],"max":[x,y,z]}             range query
//	GET  /query?min=x,y,z&max=x,y,z                          curl-friendly form
//	POST /batch    {"queries":[{...},...]}                   many queries, one fan-out
//	POST /knn      {"point":[x,y,z],"k":5}                   k nearest neighbors
//	POST /insert   {"objects":[{"id":7,"min":...,"max":...}]} live insert
//	POST /delete   {"id":7,"hint":{...}}                     live delete
//	POST /snapshot                                           checkpoint now
//	GET  /stats                                              metrics and engine state
//	GET  /metrics                                            Prometheus text exposition
//	GET  /debug/slowlog                                      sampled slow-query traces
//	GET  /healthz                                            liveness
//
// /metrics exposes the full quasii_* registry — per-endpoint latency
// histograms, the shard engine's shared-vs-cracking path split, the
// convergence counters (slices refined, shared-path ratio), and with
// -data-dir the WAL/checkpoint series. -trace-sample N samples one request
// in N for per-stage tracing; sampled requests slower than -slow-threshold
// land in the /debug/slowlog ring. /metrics and /debug/slowlog answer
// outside admission control, so they keep working while the server sheds
// load with 429s.
//
// Overload answers 429 (with Retry-After) once -max-inflight requests are
// in flight; see the README's Serving and Durability sections for the knobs.
//
// With -pprof the standard net/http/pprof handlers are served on a separate
// listener, so production-shaped load (driven by quasii-loadgen) can be
// profiled live without rebuilding:
//
//	quasii-serve -pprof :6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	quasii "repro"
)

// pprofMux builds a dedicated mux carrying only the net/http/pprof
// handlers. Registering them explicitly (instead of blank-importing the
// package) keeps them off http.DefaultServeMux, so nothing in the process —
// not even a library that serves DefaultServeMux by accident — exposes the
// profiling endpoints on the query port.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 200000, "synthetic dataset size")
	datasetName := flag.String("dataset", "uniform", "dataset generator: uniform or neuro")
	seed := flag.Int64("seed", 1, "dataset RNG seed")
	shards := flag.Int("shards", 0, "spatial shard count (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "shard worker-pool bound (0 = auto)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond,
		"coalescing window for singleton /query requests (negative disables)")
	batchLimit := flag.Int("batch-limit", 64, "max queries coalesced into one batch")
	maxInFlight := flag.Int("max-inflight", 1024, "admission budget; excess requests get 429")
	execSlots := flag.Int("exec-slots", 0, "concurrent index executions (0 = GOMAXPROCS)")
	flushEvery := flag.Int("flush-every", 4096, "fold pending updates in after this many (0 = never)")
	dataDir := flag.String("data-dir", "",
		"durable data directory (snapshots + write-ahead log); empty serves from memory only")
	fsync := flag.String("fsync", "always",
		"WAL fsync policy with -data-dir: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond,
		"background WAL sync cadence with -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 100000,
		"write a snapshot and truncate the WAL after this many accepted updates (0 = manual only)")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. :6060); empty disables")
	traceSample := flag.Int("trace-sample", 64,
		"sample one request in N for per-stage tracing (1 = all, 0 disables)")
	slowThreshold := flag.Duration("slow-threshold", 10*time.Millisecond,
		"sampled requests at least this slow enter GET /debug/slowlog (0 = keep all sampled)")
	slowlogSize := flag.Int("slowlog-size", 128, "slow-query ring capacity")
	flag.Parse()

	buildData := func() []quasii.Object {
		switch *datasetName {
		case "uniform":
			return quasii.UniformDataset(*n, *seed)
		case "neuro":
			return quasii.NeuroDataset(*n, *seed, quasii.NeuroConfig{})
		}
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want uniform or neuro)\n", *datasetName)
		os.Exit(2)
		return nil
	}

	shardCfg := quasii.ShardedConfig{Shards: *shards, Workers: *workers}
	var ix *quasii.Sharded
	var store *quasii.Store
	t0 := time.Now()
	if *dataDir != "" {
		policy := quasii.FsyncPolicy(*fsync)
		switch policy {
		case quasii.FsyncAlways, quasii.FsyncInterval, quasii.FsyncNever:
		default:
			fmt.Fprintf(os.Stderr, "unknown -fsync policy %q (want always, interval or never)\n", *fsync)
			os.Exit(2)
		}
		var err error
		store, err = quasii.OpenStore(*dataDir, quasii.StoreConfig{
			Shard:           shardCfg,
			Bootstrap:       buildData,
			Fsync:           policy,
			FsyncEvery:      *fsyncInterval,
			CheckpointEvery: *checkpointEvery,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "quasii-serve: opening %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		ix = store.Index()
		fmt.Printf("quasii-serve: %d objects from %s (snapshot seq %d, fsync %s, opened in %v)\n",
			ix.Len(), *dataDir, store.Seq(), policy, time.Since(t0).Round(time.Millisecond))
	} else {
		data := buildData()
		ix = quasii.NewSharded(data, shardCfg)
		fmt.Printf("quasii-serve: %d %s objects in %d shards (built in %v, GOMAXPROCS %d)\n",
			len(data), *datasetName, ix.NumShards(), time.Since(t0).Round(time.Millisecond),
			runtime.GOMAXPROCS(0))
	}
	fmt.Printf("listening on %s  batch-window %v  batch-limit %d  max-inflight %d  flush-every %d\n",
		*addr, *batchWindow, *batchLimit, *maxInFlight, *flushEvery)

	if *pprofAddr != "" {
		// Profiling runs on its own listener and its own mux, so profile
		// scrapes bypass the query service's admission control and cannot be
		// 429'd away under the very load one wants to profile.
		go func() {
			fmt.Printf("pprof listening on %s (/debug/pprof/)\n", *pprofAddr)
			err := http.ListenAndServe(*pprofAddr, pprofMux())
			fmt.Fprintf(os.Stderr, "quasii-serve: pprof: %v\n", err)
		}()
	}

	serverCfg := quasii.ServerConfig{
		BatchWindow:      *batchWindow,
		BatchLimit:       *batchLimit,
		MaxInFlight:      *maxInFlight,
		ExecSlots:        *execSlots,
		FlushEvery:       *flushEvery,
		TraceSampleEvery: *traceSample,
		SlowThreshold:    *slowThreshold,
		SlowlogSize:      *slowlogSize,
	}
	if store != nil {
		serverCfg.Durability = store
	}
	s := quasii.NewServer(ix, serverCfg)
	if store != nil {
		// One registry serves the whole process: the server instruments
		// itself and the engine in NewServer, the durable store (WAL and
		// checkpoint series) joins the same scrape here.
		store.Instrument(s.Registry())
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	// Graceful shutdown: SIGTERM/SIGINT stops accepting requests, drains
	// in-flight ones, then checkpoints so the next start is a warm restart
	// with no WAL replay.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigCh
		fmt.Printf("quasii-serve: %v: shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "quasii-serve: shutdown: %v\n", err)
		}
		if store != nil {
			if err := store.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "quasii-serve: final snapshot: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("quasii-serve: final snapshot written")
		}
	}()

	err := httpServer.ListenAndServe()
	if err == http.ErrServerClosed {
		<-done // wait for the final snapshot
		return
	}
	fmt.Fprintf(os.Stderr, "quasii-serve: %v\n", err)
	os.Exit(1)
}
