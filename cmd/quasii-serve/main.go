// Command quasii-serve runs the HTTP/JSON query service over a sharded
// QUASII index: the paper's in-process adaptive index turned into a network
// server with request batching, admission control, live updates, metrics,
// (with -data-dir) durable persistence with warm restart, and (with
// -replicate-from) fault-tolerant replication to read replicas.
//
// Usage:
//
//	quasii-serve [-addr :8080] [-n 200000] [-dataset uniform|neuro] [-seed 1]
//	             [-shards P] [-workers W] [-batch-window 2ms] [-batch-limit 64]
//	             [-max-inflight 1024] [-exec-slots 0] [-flush-every 4096]
//	             [-data-dir DIR] [-fsync always|interval|never]
//	             [-fsync-interval 100ms] [-checkpoint-every 100000]
//	             [-retain 2] [-wal-retries 3] [-recover-every 5s]
//	             [-role leader|follower|standalone] [-replicate-from URL]
//	             [-max-lag 0] [-pprof :6060] [-trace-sample 64]
//	             [-slow-threshold 10ms] [-slowlog-size 128] [-heat-sample 16]
//	             [-log-level info] [-log-format text] [-dump-metrics]
//
// Without -data-dir the server builds the requested synthetic dataset (the
// same generators the paper's evaluation uses, so a quasii-loadgen started
// with matching -n/-dataset/-seed can validate every response against a
// local oracle) and serves it from memory only.
//
// With -data-dir the server is durable: on first start the synthetic
// dataset bootstraps the directory, on every later start the index is
// restored from the latest snapshot — all accumulated refinement included,
// so the warm restart skips the convergence cost — and the write-ahead log
// is replayed. /insert and /delete are logged before they are acknowledged
// (-fsync selects the cadence), POST /snapshot checkpoints on demand,
// -checkpoint-every N checkpoints automatically after N accepted updates,
// -retain K keeps the last K snapshot+WAL generations on disk (minimum 2,
// so replication streams always have a stable generation to read),
// -wal-retries bounds the transient-append retry budget before the store
// degrades to read-only, -recover-every sets the degraded store's disk
// re-probe cadence, and SIGTERM/SIGINT triggers a graceful shutdown: stop
// accepting requests, write a final snapshot, truncate the log, exit 0.
//
// Replication. A durable server is a replication leader by default: it
// serves GET /repl/snapshot (the latest checkpoint generation as a
// CRC-framed archive) and GET /repl/wal?from=N (raw WAL frames from global
// sequence N, long-polling at the tail). Start a read replica by pointing
// it at the leader:
//
//	quasii-serve -addr :8081 -data-dir /var/lib/quasii-replica \
//	             -replicate-from http://leader-host:8080
//
// The follower bootstraps from the leader's snapshot, replays it, then
// tails the WAL with bounded exponential backoff — it retries through
// leader restarts and network faults, resuming from its own durable
// position so no record is ever applied twice. Follower /insert and
// /delete answer 503 with an X-Quasii-Leader hint; /readyz answers 503
// until the follower has bootstrapped and is within -max-lag records of
// the leader (0 selects 1024, negative disables the lag gate); /stats and
// /metrics report the replication position (quasii_repl_lag_records,
// quasii_repl_lag_seconds). Failover: POST /repl/promote stops tailing,
// checkpoints the applied state and flips the follower writable — or
// restart the process with -role leader over the same -data-dir. A
// follower also serves /repl/* itself, so replicas can chain.
//
//	POST /query    {"min":[x,y,z],"max":[x,y,z]}             range query
//	GET  /query?min=x,y,z&max=x,y,z                          curl-friendly form
//	POST /batch    {"queries":[{...},...]}                   many queries, one fan-out
//	POST /knn      {"point":[x,y,z],"k":5}                   k nearest neighbors
//	POST /insert   {"objects":[{"id":7,"min":...,"max":...}]} live insert
//	POST /delete   {"id":7,"hint":{...}}                     live delete
//	POST /snapshot                                           checkpoint now
//	GET  /repl/snapshot                                      replication bootstrap stream
//	GET  /repl/wal?from=N&wait=ms                            replication WAL tail
//	POST /repl/promote                                       promote this follower
//	GET  /stats                                              metrics and engine state
//	GET  /metrics                                            Prometheus text exposition
//	GET  /debug/slowlog                                      sampled slow-query traces
//	GET  /debug/index                                        hierarchy snapshot (?maxdepth=N)
//	GET  /debug/heat                                         tile×depth heat grid
//	GET  /healthz                                            liveness
//	GET  /readyz                                             readiness (503 while loading or lagging)
//
// The listener binds before the dataset is built, restored or replicated:
// /healthz answers 200 immediately (the process is alive) while /readyz and
// every other endpoint answer 503 until the index is loaded — so an
// orchestrator probing /readyz never routes traffic into a warm restart's
// replay window or a follower's bootstrap.
//
// /metrics exposes the full quasii_* registry — per-endpoint latency
// histograms, the shard engine's shared-vs-cracking path split, the
// convergence counters (slices refined, shared-path ratio), with -data-dir
// the WAL/checkpoint series, and the quasii_repl_* replication series.
// -trace-sample N samples one request in N for per-stage tracing; sampled
// requests slower than -slow-threshold land in the /debug/slowlog ring.
// -heat-sample N records per-slice access heat for one query in N (negative
// disables), feeding /debug/index and /debug/heat. /metrics and the /debug
// endpoints answer outside admission control, so they keep working while
// the server sheds load with 429s.
//
// Logs are structured (log/slog) on stderr: -log-format selects text or
// json, -log-level selects debug, info, warn or error. stdout stays clean —
// -dump-metrics prints the full metrics exposition for the configured stack
// to stdout and exits, which is how scripts/metrics-lint.sh verifies that
// every registered series carries HELP and TYPE lines.
//
// Overload answers 429 (with Retry-After) once -max-inflight requests are
// in flight; see the README's Serving and Durability sections for the knobs.
//
// With -pprof the standard net/http/pprof handlers are served on a separate
// listener, so production-shaped load (driven by quasii-loadgen) can be
// profiled live without rebuilding:
//
//	quasii-serve -pprof :6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	quasii "repro"
)

// pprofMux builds a dedicated mux carrying only the net/http/pprof
// handlers. Registering them explicitly (instead of blank-importing the
// package) keeps them off http.DefaultServeMux, so nothing in the process —
// not even a library that serves DefaultServeMux by accident — exposes the
// profiling endpoints on the query port.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// newLogger builds the process logger on stderr from the -log-level and
// -log-format flags (stdout is reserved for -dump-metrics output).
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// bootHandler answers while the index is still building, restoring or
// replicating: liveness says the process is up, everything else says come
// back later. The 503s carry Retry-After so impatient clients back off
// politely.
func bootHandler(phase string) http.Handler {
	status := func(code int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if code != http.StatusOK {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(code)
			fmt.Fprintf(w, "{\"status\":\"starting\",\"phase\":%q}\n", phase)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", status(http.StatusOK))
	mux.HandleFunc("/", status(http.StatusServiceUnavailable))
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 200000, "synthetic dataset size")
	datasetName := flag.String("dataset", "uniform", "dataset generator: uniform or neuro")
	seed := flag.Int64("seed", 1, "dataset RNG seed")
	shards := flag.Int("shards", 0, "spatial shard count (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "shard worker-pool bound (0 = auto)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond,
		"coalescing window for singleton /query requests (negative disables)")
	batchLimit := flag.Int("batch-limit", 64, "max queries coalesced into one batch")
	maxInFlight := flag.Int("max-inflight", 1024, "admission budget; excess requests get 429")
	execSlots := flag.Int("exec-slots", 0, "concurrent index executions (0 = GOMAXPROCS)")
	flushEvery := flag.Int("flush-every", 4096, "fold pending updates in after this many (0 = never)")
	dataDir := flag.String("data-dir", "",
		"durable data directory (snapshots + write-ahead log); empty serves from memory only")
	fsync := flag.String("fsync", "always",
		"WAL fsync policy with -data-dir: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond,
		"background WAL sync cadence with -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 100000,
		"write a snapshot and truncate the WAL after this many accepted updates (0 = manual only)")
	retain := flag.Int("retain", 2,
		"snapshot+WAL generations kept on disk after a checkpoint (minimum 2)")
	walRetries := flag.Int("wal-retries", 3,
		"transient WAL append retries before the store degrades to read-only (negative disables)")
	recoverEvery := flag.Duration("recover-every", 5*time.Second,
		"cadence at which a degraded store re-probes the disk for recovery")
	role := flag.String("role", "",
		"replication role: leader, follower or standalone (default: follower with -replicate-from, else leader with -data-dir, else standalone)")
	replicateFrom := flag.String("replicate-from", "",
		"leader base URL to replicate from (follower mode; requires -data-dir)")
	maxLag := flag.Int64("max-lag", 0,
		"follower /readyz catch-up bound in WAL records (0 = default 1024, negative disables)")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. :6060); empty disables")
	traceSample := flag.Int("trace-sample", 64,
		"sample one request in N for per-stage tracing (1 = all, 0 disables)")
	slowThreshold := flag.Duration("slow-threshold", 10*time.Millisecond,
		"sampled requests at least this slow enter GET /debug/slowlog (0 = keep all sampled)")
	slowlogSize := flag.Int("slowlog-size", 128, "slow-query ring capacity")
	heatSample := flag.Int("heat-sample", 0,
		"record per-slice access heat for one query in N (0 = default 16, negative disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	dumpMetrics := flag.Bool("dump-metrics", false,
		"build the configured stack, print its full /metrics exposition to stdout, and exit")
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Resolve the replication role: an explicit -role wins; otherwise
	// -replicate-from selects follower, -data-dir selects leader (a durable
	// server can always ship its WAL) and a memory-only server stands alone.
	resolvedRole := *role
	if resolvedRole == "" {
		switch {
		case *replicateFrom != "":
			resolvedRole = "follower"
		case *dataDir != "":
			resolvedRole = "leader"
		default:
			resolvedRole = "standalone"
		}
	}
	switch resolvedRole {
	case "follower":
		if *replicateFrom == "" {
			logger.Error("-role follower requires -replicate-from")
			os.Exit(2)
		}
		if *dataDir == "" {
			logger.Error("-role follower requires -data-dir (the follower keeps its own durable store)")
			os.Exit(2)
		}
		if *dumpMetrics {
			logger.Error("-dump-metrics cannot run in follower role (it would need a live leader); use leader or standalone")
			os.Exit(2)
		}
	case "leader":
		if *dataDir == "" {
			logger.Error("-role leader requires -data-dir (replication ships the snapshot and WAL)")
			os.Exit(2)
		}
	case "standalone":
		if *replicateFrom != "" {
			logger.Error("-replicate-from conflicts with -role standalone")
			os.Exit(2)
		}
	default:
		logger.Error("unknown -role", "role", *role, "want", "leader, follower or standalone")
		os.Exit(2)
	}

	buildData := func() []quasii.Object {
		switch *datasetName {
		case "uniform":
			return quasii.UniformDataset(*n, *seed)
		case "neuro":
			return quasii.NeuroDataset(*n, *seed, quasii.NeuroConfig{})
		}
		logger.Error("unknown dataset", "dataset", *datasetName, "want", "uniform or neuro")
		os.Exit(2)
		return nil
	}

	// Bind the listener before the long part (dataset build, snapshot
	// restore, WAL replay, replication bootstrap): the boot handler answers
	// /healthz 200 and everything else 503 until the real service swaps in,
	// so orchestrators see a live-but-not-ready process instead of
	// connection refused.
	phase := "building"
	if *dataDir != "" {
		phase = "restoring"
	}
	if resolvedRole == "follower" {
		phase = "replicating"
	}
	var handler atomic.Value // http.Handler: bootHandler, then Server.Handler
	handler.Store(bootHandler(phase))
	httpServer := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(http.Handler).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	serveErr := make(chan error, 1)
	if !*dumpMetrics {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			logger.Error("listen failed", "addr", *addr, "err", err)
			os.Exit(1)
		}
		go func() { serveErr <- httpServer.Serve(ln) }()
		logger.Info("listening", "addr", ln.Addr().String(), "phase", phase, "role", resolvedRole)
	}

	shardCfg := quasii.ShardedConfig{Shards: *shards, Workers: *workers}
	shardCfg.SubConfig.HeatSampleEvery = *heatSample
	storeCfg := quasii.StoreConfig{
		Shard:             shardCfg,
		Fsync:             quasii.FsyncPolicy(*fsync),
		FsyncEvery:        *fsyncInterval,
		CheckpointEvery:   *checkpointEvery,
		AppendRetries:     *walRetries,
		RecoverEvery:      *recoverEvery,
		RetainGenerations: *retain,
		Logger:            logger,
	}
	if *dataDir != "" {
		switch storeCfg.Fsync {
		case quasii.FsyncAlways, quasii.FsyncInterval, quasii.FsyncNever:
		default:
			logger.Error("unknown -fsync policy", "fsync", *fsync, "want", "always, interval or never")
			os.Exit(2)
		}
	}

	// One registry serves the whole process across every role and every
	// state swap: the server instruments itself and the engine on it, the
	// durable store's WAL/checkpoint series join it, and the full
	// quasii_repl_* family is registered up front regardless of role so
	// dashboards and the metrics lint see one stable name set.
	reg := quasii.NewMetricsRegistry()
	replMetrics := quasii.NewReplMetrics(reg)

	serverCfg := quasii.ServerConfig{
		BatchWindow:      *batchWindow,
		BatchLimit:       *batchLimit,
		MaxInFlight:      *maxInFlight,
		ExecSlots:        *execSlots,
		FlushEvery:       *flushEvery,
		TraceSampleEvery: *traceSample,
		SlowThreshold:    *slowThreshold,
		SlowlogSize:      *slowlogSize,
		Telemetry:        reg,
		Logger:           logger,
	}

	// buildServer wires the service for the current state. In follower mode
	// it runs again after a re-bootstrap replaces the store (re-registration
	// on the shared registry returns the existing series, so /metrics stays
	// continuous); every durable server also carries the leader endpoints so
	// replicas can bootstrap from it — and chain through a follower.
	var curServer atomic.Pointer[quasii.Server]
	var curFollower atomic.Pointer[quasii.ReplFollower]
	buildServer := func(ix *quasii.Sharded, store *quasii.Store) *quasii.Server {
		cfg := serverCfg
		if store != nil {
			cfg.Durability = store
			cfg.ReplSource = quasii.NewReplLeader(store, replMetrics, logger)
		}
		if f := curFollower.Load(); f != nil {
			cfg.ReplFollower = f
			cfg.MaxLagRecords = *maxLag
		}
		s := quasii.NewServer(ix, cfg)
		if store != nil {
			store.Instrument(reg)
		}
		curServer.Store(s)
		return s
	}

	var ix *quasii.Sharded
	var store *quasii.Store
	t0 := time.Now()
	switch {
	case resolvedRole == "follower":
		// SIGTERM/SIGINT during the bootstrap fetch aborts cleanly; the
		// follower otherwise retries with backoff until the leader appears,
		// so the two sides can be started in either order.
		bootCtx, stopSig := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
		fol, err := quasii.OpenReplFollower(bootCtx, quasii.ReplFollowerConfig{
			LeaderURL: strings.TrimRight(*replicateFrom, "/"),
			Dir:       *dataDir,
			Store:     storeCfg,
			Logger:    logger,
			Metrics:   replMetrics,
			OnStateSwap: func(st *quasii.Store) {
				// The leader could no longer serve our resume point and the
				// follower re-bootstrapped onto a fresh store: re-wire the
				// service onto it and swap the handler atomically.
				s := buildServer(st.Index(), st)
				handler.Store(s.Handler())
				logger.Info("service re-wired onto re-bootstrapped state",
					"objects", st.Index().Len())
			},
		})
		stopSig()
		if err != nil {
			logger.Error("opening follower failed", "leader", *replicateFrom, "err", err)
			os.Exit(1)
		}
		curFollower.Store(fol)
		store = fol.Store()
		ix = store.Index()
	case *dataDir != "":
		cfg := storeCfg
		cfg.Bootstrap = buildData
		var err error
		store, err = quasii.OpenStore(*dataDir, cfg)
		if err != nil {
			logger.Error("opening data dir failed", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		ix = store.Index()
	default:
		data := buildData()
		ix = quasii.NewSharded(data, shardCfg)
		logger.Info("index built",
			"objects", len(data), "dataset", *datasetName, "shards", ix.NumShards(),
			"elapsed_ms", time.Since(t0).Milliseconds(),
			"gomaxprocs", runtime.GOMAXPROCS(0))
	}

	if *pprofAddr != "" {
		// Profiling runs on its own listener and its own mux, so profile
		// scrapes bypass the query service's admission control and cannot be
		// 429'd away under the very load one wants to profile.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			err := http.ListenAndServe(*pprofAddr, pprofMux())
			logger.Error("pprof server stopped", "err", err)
		}()
	}

	s := buildServer(ix, store)

	if *dumpMetrics {
		if err := s.Registry().WriteText(os.Stdout); err != nil {
			logger.Error("writing metrics dump failed", "err", err)
			os.Exit(1)
		}
		if store != nil {
			if err := store.Close(); err != nil {
				logger.Error("closing store after dump failed", "err", err)
				os.Exit(1)
			}
		}
		return
	}

	// The index is loaded: swap the real service in. Its /readyz answers
	// from here on (Server starts ready; a follower's /readyz still answers
	// 503 until it is within -max-lag records of the leader).
	handler.Store(s.Handler())
	logger.Info("serving",
		"addr", *addr, "role", resolvedRole, "objects", ix.Len(), "shards", ix.NumShards(),
		"batch_window", batchWindow.String(), "batch_limit", *batchLimit,
		"max_inflight", *maxInFlight, "flush_every", *flushEvery,
		"elapsed_ms", time.Since(t0).Milliseconds())

	// Graceful shutdown: SIGTERM/SIGINT flips readiness off (load balancers
	// stop routing), stops accepting requests, drains in-flight ones, then
	// checkpoints so the next start is a warm restart with no WAL replay. A
	// follower stops tailing first; its store close checkpoints the applied
	// state, so its restart resumes from local disk.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigCh
		logger.Info("shutting down", "signal", sig.String())
		curServer.Load().SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			logger.Error("shutdown failed", "err", err)
		}
		if f := curFollower.Load(); f != nil {
			if err := f.Close(); err != nil {
				logger.Error("closing follower failed", "err", err)
				os.Exit(1)
			}
			logger.Info("follower state closed")
		} else if store != nil {
			if err := store.Close(); err != nil {
				logger.Error("final snapshot failed", "err", err)
				os.Exit(1)
			}
			logger.Info("final snapshot written")
		}
	}()

	err = <-serveErr
	if err == http.ErrServerClosed {
		<-done // wait for the final snapshot
		return
	}
	logger.Error("server stopped", "err", err)
	os.Exit(1)
}
