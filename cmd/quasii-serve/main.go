// Command quasii-serve runs the HTTP/JSON query service over a sharded
// QUASII index: the paper's in-process adaptive index turned into a network
// server with request batching, admission control, live updates, and
// metrics.
//
// Usage:
//
//	quasii-serve [-addr :8080] [-n 200000] [-dataset uniform|neuro] [-seed 1]
//	             [-shards P] [-workers W] [-batch-window 2ms] [-batch-limit 64]
//	             [-max-inflight 1024] [-exec-slots 0] [-flush-every 4096]
//	             [-pprof :6060]
//
// The server builds the requested synthetic dataset (the same generators
// the paper's evaluation uses, so a quasii-loadgen started with matching
// -n/-dataset/-seed can validate every response against a local oracle)
// and serves:
//
//	POST /query    {"min":[x,y,z],"max":[x,y,z]}             range query
//	GET  /query?min=x,y,z&max=x,y,z                          curl-friendly form
//	POST /batch    {"queries":[{...},...]}                   many queries, one fan-out
//	POST /knn      {"point":[x,y,z],"k":5}                   k nearest neighbors
//	POST /insert   {"objects":[{"id":7,"min":...,"max":...}]} live insert
//	POST /delete   {"id":7,"hint":{...}}                     live delete
//	GET  /stats                                              metrics and engine state
//	GET  /healthz                                            liveness
//
// Overload answers 429 (with Retry-After) once -max-inflight requests are
// in flight; see the README's Serving section for the knobs.
//
// With -pprof the standard net/http/pprof handlers are served on a separate
// listener, so production-shaped load (driven by quasii-loadgen) can be
// profiled live without rebuilding:
//
//	quasii-serve -pprof :6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served via -pprof
	"os"
	"runtime"
	"time"

	quasii "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 200000, "synthetic dataset size")
	datasetName := flag.String("dataset", "uniform", "dataset generator: uniform or neuro")
	seed := flag.Int64("seed", 1, "dataset RNG seed")
	shards := flag.Int("shards", 0, "spatial shard count (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "shard worker-pool bound (0 = auto)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond,
		"coalescing window for singleton /query requests (negative disables)")
	batchLimit := flag.Int("batch-limit", 64, "max queries coalesced into one batch")
	maxInFlight := flag.Int("max-inflight", 1024, "admission budget; excess requests get 429")
	execSlots := flag.Int("exec-slots", 0, "concurrent index executions (0 = GOMAXPROCS)")
	flushEvery := flag.Int("flush-every", 4096, "fold pending updates in after this many (0 = never)")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. :6060); empty disables")
	flag.Parse()

	var data []quasii.Object
	switch *datasetName {
	case "uniform":
		data = quasii.UniformDataset(*n, *seed)
	case "neuro":
		data = quasii.NeuroDataset(*n, *seed, quasii.NeuroConfig{})
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want uniform or neuro)\n", *datasetName)
		os.Exit(2)
	}

	t0 := time.Now()
	ix := quasii.NewSharded(data, quasii.ShardedConfig{Shards: *shards, Workers: *workers})
	fmt.Printf("quasii-serve: %d %s objects in %d shards (built in %v, GOMAXPROCS %d)\n",
		len(data), *datasetName, ix.NumShards(), time.Since(t0).Round(time.Millisecond),
		runtime.GOMAXPROCS(0))
	fmt.Printf("listening on %s  batch-window %v  batch-limit %d  max-inflight %d  flush-every %d\n",
		*addr, *batchWindow, *batchLimit, *maxInFlight, *flushEvery)

	if *pprofAddr != "" {
		// Profiling runs on its own listener (DefaultServeMux carries the
		// net/http/pprof handlers) so profile scrapes bypass the query
		// service's admission control and cannot be 429'd away under the
		// very load one wants to profile.
		go func() {
			fmt.Printf("pprof listening on %s (/debug/pprof/)\n", *pprofAddr)
			err := http.ListenAndServe(*pprofAddr, nil)
			fmt.Fprintf(os.Stderr, "quasii-serve: pprof: %v\n", err)
		}()
	}

	err := quasii.Serve(*addr, ix, quasii.ServerConfig{
		BatchWindow: *batchWindow,
		BatchLimit:  *batchLimit,
		MaxInFlight: *maxInFlight,
		ExecSlots:   *execSlots,
		FlushEvery:  *flushEvery,
	})
	fmt.Fprintf(os.Stderr, "quasii-serve: %v\n", err)
	os.Exit(1)
}
