package quasii_test

// Soak tests: long, mixed workloads across every index in the module, and a
// data-arrival lifecycle for QUASII. Skipped under -short.

import (
	"bytes"
	"math/rand"
	"testing"

	quasii "repro"
)

// TestSoakMixedWorkloads interleaves uniform, clustered, sequential and
// Zipfian queries (plus occasional degenerate ones) against the full index
// roster, comparing every result set against Scan.
func TestSoakMixedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	data := quasii.NeuroDataset(12000, 901, quasii.NeuroConfig{})
	var queries []quasii.Box
	queries = append(queries, quasii.UniformQueries(120, 1e-3, 902)...)
	queries = append(queries, quasii.ClusteredQueries(data, 4, 30, 1e-4, 150, 903)...)
	queries = append(queries, quasii.SequentialQueries(60, 1e-4, 1)...)
	queries = append(queries, quasii.ZipfQueries(120, 1e-3, 1.3, 904)...)
	// Degenerates: inverted, zero-volume, out-of-universe, whole-universe.
	queries = append(queries,
		quasii.Box{Min: quasii.Point{5, 5, 5}, Max: quasii.Point{1, 1, 1}},
		quasii.BoxAt(quasii.Point{500, 500, 500}, 0),
		quasii.BoxAt(quasii.Point{-9000, -9000, -9000}, 100),
		quasii.Universe(),
	)
	rng := rand.New(rand.NewSource(905))
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })

	oracle := quasii.NewScan(data)
	indexes := allIndexes(data)
	var got, want []int32
	for qi, q := range queries {
		want = sortedIDs(oracle.Query(q, want[:0]))
		for name, ix := range indexes {
			got = sortedIDs(ix.Query(q, got[:0]))
			if !equalIDs(got, want) {
				t.Fatalf("%s query %d (%v): got %d results, scan %d", name, qi, q, len(got), len(want))
			}
		}
	}
}

// TestSoakAppendFlushLifecycle drives a QUASII index through repeated
// query/append/delete/flush/complete cycles on the versioned read path,
// validating against a growing oracle. Rounds pin MVCC versions
// checkpoint-style and hold them across later mutations; at the end every
// pin must still serialize to exactly the state it froze, and releasing
// them all must collapse the version chain back to length 1 (the
// version-GC leak check).
func TestSoakAppendFlushLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(906))
	live := quasii.UniformDataset(4000, 907)
	ix := quasii.NewQUASII(quasii.CloneObjects(live), quasii.QUASIIConfig{Tau: 32})
	nextID := int32(len(live))
	type pinned struct {
		v    *quasii.QUASIIVersion
		want []quasii.Object // live set frozen at pin time
	}
	var pins []pinned
	var got, want []int32
	for round := 0; round < 30; round++ {
		switch rng.Intn(6) {
		case 0: // append a batch
			batch := quasii.UniformDataset(200, int64(908+round))
			for i := range batch {
				batch[i].ID = nextID
				nextID++
			}
			ix.Append(batch...)
			live = append(live, batch...)
		case 1: // flush
			ix.Flush()
		case 2: // complete refinement
			ix.Flush()
			ix.Complete()
		case 3: // delete a few live objects
			for k := 0; k < 5 && len(live) > 0; k++ {
				j := rng.Intn(len(live))
				o := live[j]
				if !ix.Delete(o.ID, o.Box) {
					t.Fatalf("round %d: live id %d not found by delete", round, o.ID)
				}
				live = append(live[:j], live[j+1:]...)
			}
		case 4: // checkpoint-style pin, held across later rounds
			pins = append(pins, pinned{ix.PinVersion(), quasii.CloneObjects(live)})
		default: // queries
		}
		oracle := quasii.NewScan(live)
		for _, q := range quasii.UniformQueries(15, 1e-3, int64(909+round)) {
			got = sortedIDs(ix.Query(q, got[:0]))
			want = sortedIDs(oracle.Query(q, want[:0]))
			if !equalIDs(got, want) {
				t.Fatalf("round %d: got %d results, want %d (live=%d pending=%d)",
					round, len(got), len(want), len(live), ix.Pending())
			}
			// The shared (versioned, non-cracking) read path must agree
			// whenever it can answer.
			if shared, ok := ix.QueryShared(q, nil); ok {
				if !equalIDs(sortedIDs(shared), want) {
					t.Fatalf("round %d: shared path got %d results, want %d",
						round, len(shared), len(want))
				}
			}
		}
	}
	// Every pin — some held across dozens of mutations, flushes included —
	// must still serialize to exactly its frozen state.
	for i, p := range pins {
		var buf bytes.Buffer
		if err := ix.SaveVersion(&buf, p.v); err != nil {
			t.Fatalf("pin %d: SaveVersion: %v", i, err)
		}
		re, err := quasii.Load(&buf)
		if err != nil {
			t.Fatalf("pin %d: Load: %v", i, err)
		}
		oracle := quasii.NewScan(p.want)
		for _, q := range quasii.UniformQueries(10, 1e-3, int64(940+i)) {
			got = sortedIDs(re.Query(q, got[:0]))
			want = sortedIDs(oracle.Query(q, want[:0]))
			if !equalIDs(got, want) {
				t.Fatalf("pin %d: recovered checkpoint got %d results, want %d",
					i, len(got), len(want))
			}
		}
		p.v.Release()
	}
	// The leak check: with all pins released and writers quiesced, garbage
	// collection must have collapsed the chain to the single live version.
	if lv := ix.LiveVersions(); lv != 1 {
		t.Fatalf("live versions after quiescence = %d, want 1 (leaked version)", lv)
	}
	if ix.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(live))
	}
}

// TestSoakKNNAcrossRefinementStages probes kNN on a fresh, a partially
// refined, and a completed index — all must agree with the R-tree.
func TestSoakKNNAcrossRefinementStages(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	data := quasii.UniformDataset(8000, 910)
	ref := quasii.NewRTree(data, quasii.RTreeConfig{})
	probes := quasii.UniformQueries(15, 1e-3, 911)

	stages := map[string]func() *quasii.QUASII{
		"fresh": func() *quasii.QUASII {
			return quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})
		},
		"warmed": func() *quasii.QUASII {
			ix := quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})
			for _, q := range quasii.UniformQueries(100, 1e-3, 912) {
				ix.Query(q, nil)
			}
			return ix
		},
		"completed": func() *quasii.QUASII {
			ix := quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})
			ix.Complete()
			return ix
		},
	}
	for name, mk := range stages {
		ix := mk()
		for pi, probe := range probes {
			p := probe.Center()
			mine := ix.KNN(p, 7)
			theirs := ref.KNN(p, 7)
			if len(mine) != len(theirs) {
				t.Fatalf("%s probe %d: %d vs %d neighbors", name, pi, len(mine), len(theirs))
			}
			for i := range mine {
				if mine[i].DistSq != theirs[i].DistSq {
					t.Fatalf("%s probe %d neighbor %d: dist %g vs %g",
						name, pi, i, mine[i].DistSq, theirs[i].DistSq)
				}
			}
		}
	}
}
