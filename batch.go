package quasii

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// BatchQuery executes many range queries against ix across worker
// goroutines, returning one result slice (object IDs) per query, in query
// order.
//
// The index must be safe for concurrent reads: the static indexes (RTree,
// Grid, TwoLevelGrid, Octree, SFC, Scan) are; the incremental indexes
// (QUASII, SFCracker, Mosaic) mutate during Query and must be wrapped with
// Synchronize first — which serializes them, so parallel batches only pay
// off on static structures (or on a QUASII after Complete, wrapped anyway
// for safety). workers <= 0 means GOMAXPROCS.
func BatchQuery(ix Index, queries []Box, workers int) [][]int32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	results := make([][]int32, len(queries))
	if workers <= 1 {
		for i, q := range queries {
			results[i] = ix.Query(q, nil)
		}
		return results
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(queries) {
					return
				}
				results[i] = ix.Query(queries[i], nil)
			}
		}()
	}
	wg.Wait()
	return results
}

// LoadQUASII reconstructs a QUASII index previously saved with
// (*QUASII).Save, restoring the data array, the pending buffer and the
// full slice hierarchy — an exploration session's accumulated refinement
// survives the process.
func LoadQUASII(r io.Reader) (*QUASII, error) { return core.Load(r) }
