#!/usr/bin/env bash
# Checks that every relative markdown link in the repository's docs resolves
# to an existing file or directory. External (scheme-prefixed) links and
# intra-page anchors are skipped. Run from the repository root:
#
#   scripts/check-docs-links.sh
set -u

fail=0
# All tracked markdown files (top level, docs/, and any nested ones).
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Extract [text](target) link targets, one per line.
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Strip an anchor suffix, if any.
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN: $md -> $target"
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$md" | sed 's/.*(\(.*\))/\1/')
done < <(find . -name '*.md' -not -path './.git/*' -not -path './bin/*' | sed 's|^\./||')

if [ "$fail" -ne 0 ]; then
  echo "markdown cross-link check failed"
  exit 1
fi
echo "all markdown cross-links resolve"
