#!/usr/bin/env bash
# Lint every metric name registered in the source tree against the naming
# convention documented in docs/ARCHITECTURE.md:
#
#   quasii_<subsystem>_<name>_<unit>
#
# where <subsystem> is one of the instrumented layers and the name ends in
# an approved unit suffix (Prometheus-style: _total for counters, a unit
# noun for gauges/histograms). Histogram registration names must not carry
# the _bucket/_sum/_count suffixes — the registry appends those itself.
#
# Run from the repository root. Exits non-zero listing every violation.
set -eu

SUBSYSTEMS='http|server|shard|core|wal|store|fault|durable|repl'
# "degraded" is the boolean-gauge unit of quasii_durable_degraded (0/1);
# "records" the lag unit of quasii_repl_lag_records; "live" the count unit
# of quasii_core_versions_live (MVCC versions currently alive).
UNITS='total|seconds|bytes|ratio|objects|queries|requests|shards|slices|seq|degraded|records|live'

# Every string literal that looks like a metric name, wherever registered.
# Excluded: tests (they register throwaway quasii_test_* names) and
# internal/bench (a scrape *consumer* that reads derived histogram series
# like _count, which are not registration names).
names=$(grep -rhoE '"quasii_[a-z0-9_]+"' --include='*.go' --exclude='*_test.go' \
  --exclude-dir=bench internal/ cmd/ *.go 2>/dev/null | tr -d '"' | sort -u)

if [ -z "$names" ]; then
  echo "metrics-lint: no quasii_* metric names found (wrong directory?)"
  exit 1
fi

fail=0
for name in $names; do
  if ! echo "$name" | grep -qE "^quasii_($SUBSYSTEMS)_[a-z0-9_]+$"; then
    echo "metrics-lint: $name: subsystem must be one of: ${SUBSYSTEMS//|/, }"
    fail=1
    continue
  fi
  if ! echo "$name" | grep -qE "_($UNITS)\$"; then
    echo "metrics-lint: $name: must end in a unit suffix: ${UNITS//|/, }"
    fail=1
  fi
  case "$name" in
    *_bucket|*_sum|*_count)
      echo "metrics-lint: $name: _bucket/_sum/_count are reserved histogram suffixes"
      fail=1 ;;
  esac
done

total=$(echo "$names" | wc -l)
if [ "$fail" -ne 0 ]; then
  echo "metrics-lint: FAILED ($total names checked)"
  exit 1
fi
echo "metrics-lint: $total metric names conform"

# Second pass: every registered series must actually be described on a real
# exposition. -dump-metrics boots a durability-backed server far enough to
# register every subsystem, writes the registry to stdout, and exits; each
# name grepped from the source must carry a # HELP line with prose and a
# # TYPE line naming a valid Prometheus type.
DUMPDIR=$(mktemp -d)
trap 'rm -rf "$DUMPDIR"' EXIT
dump=$(go run ./cmd/quasii-serve -dump-metrics -n 2000 -data-dir "$DUMPDIR/data")

for name in $names; do
  if ! echo "$dump" | grep -qE "^# HELP $name .+"; then
    echo "metrics-lint: $name: missing or empty # HELP on the exposition"
    fail=1
  fi
  if ! echo "$dump" | grep -qE "^# TYPE $name (counter|gauge|histogram)\$"; then
    echo "metrics-lint: $name: missing # TYPE (counter|gauge|histogram)"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "metrics-lint: FAILED (HELP/TYPE coverage)"
  exit 1
fi
echo "metrics-lint: $total series carry HELP and TYPE on the exposition"
