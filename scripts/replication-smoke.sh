#!/usr/bin/env bash
# Process-level replication and failover smoke:
#
#   1. quasii-loadgen -failover-leader/-failover-follower launches a durable
#      leader and a replicating follower as real processes, watches the
#      follower's /readyz answer 503 until it bootstraps and catches up
#      (-max-lag gating), fans oracle-validated reads over both servers,
#      pushes acknowledged writes at the leader, waits for zero replication
#      lag, SIGKILLs the leader mid-load, promotes the follower via
#      POST /repl/promote, and audits that every acknowledged write answers
#      on the promoted follower — zero acked-write loss — and that writes
#      flow again post-promotion. A pre-promotion write against the replica
#      must have been rejected (503), never silently applied.
#   2. A fresh server restarted over the promoted follower's data dir (with
#      -role leader) is oracle-validated once more: the failover left a
#      complete, durable copy of the base dataset behind.
#
# This is the black-box complement to the in-process fault-injection tests
# in internal/repl (torn streams, corrupt frames, stalls) — same protocol,
# real processes, real SIGKILL, real sockets. Run from the repository root.
# Exits non-zero on any failure.
set -eu

N=20000
SEED=1
LEADER_ADDR=127.0.0.1:18092
FOLLOWER_ADDR=127.0.0.1:18093
LEADER_BASE=http://$LEADER_ADDR
FOLLOWER_BASE=http://$FOLLOWER_ADDR
DIR=$(mktemp -d)
SRV_PID=
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/quasii-serve" ./cmd/quasii-serve
go build -o "$DIR/quasii-loadgen" ./cmd/quasii-loadgen

echo "== 1. failover run: replicate, kill the leader mid-load, promote, audit"
# -checkpoint-every is set low on the leader so generations rotate (and old
# ones are garbage-collected) underneath the live replication stream.
OUT=$("$DIR/quasii-loadgen" -addr "$LEADER_BASE" -follower-addr "$FOLLOWER_BASE" \
  -oracle -n $N -seed $SEED -clients 4 -queries 4000 -selectivity 1e-4 \
  -failover-writes 300 \
  -failover-leader "$DIR/quasii-serve -addr $LEADER_ADDR -n $N -seed $SEED -data-dir $DIR/leader -fsync always -checkpoint-every 150 -retain 2 -log-format json" \
  -failover-follower "$DIR/quasii-serve -addr $FOLLOWER_ADDR -data-dir $DIR/follower -replicate-from $LEADER_BASE -max-lag 64 -fsync always -log-format json" \
  | tee /dev/stderr)

# The follower's /readyz must have gated traffic while catching up.
echo "$OUT" | grep -q 'failover: follower readiness gated during catch-up: true' \
  || { echo "follower /readyz never gated during catch-up"; exit 1; }
# The read-only replica must have rejected a direct write.
echo "$OUT" | grep -q 'failover: follower rejected pre-promotion writes: true' \
  || { echo "follower accepted a write before promotion"; exit 1; }
# The headline: zero acknowledged writes lost across the failover.
echo "$OUT" | grep -qE 'failover: [1-9][0-9]* acked writes before kill, 0 lost after promotion' \
  || { echo "acknowledged writes were lost across the failover"; exit 1; }
# The promoted follower accepted new writes.
echo "$OUT" | grep -qE 'failover: [1-9][0-9]* post-promotion writes accepted' \
  || { echo "promoted follower refused writes"; exit 1; }
# And the concurrent read side saw correct answers throughout.
echo "$OUT" | grep -qE 'backpressure: .* 0 errors, 0 oracle mismatches' \
  || { echo "read load saw errors or oracle mismatches during failover"; exit 1; }

echo "== 2. the promoted follower's data dir serves the exact base dataset"
"$DIR/quasii-serve" -addr "$LEADER_ADDR" -role leader -n $N -seed $SEED \
  -data-dir "$DIR/follower" -fsync always -checkpoint-every 0 -log-format json &
SRV_PID=$!
"$DIR/quasii-loadgen" -addr "$LEADER_BASE" -oracle -n $N -seed $SEED \
  -clients 4 -queries 300 -wait 30s

kill -TERM "$SRV_PID"
wait "$SRV_PID" || true
SRV_PID=
echo "replication smoke passed"
