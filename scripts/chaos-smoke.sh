#!/usr/bin/env bash
# Process-level chaos smoke for the full durable serving stack:
#
#   1. quasii-loadgen -chaos launches quasii-serve over a durable data dir,
#      then SIGKILLs and restarts it mid-load while oracle-validating every
#      response — the clients must absorb each restart window (transport
#      retries) and every answer must still match the local scan oracle.
#      The run fails if any restart never recovers (WAL replay stuck), if
#      any response is wrong, or if the post-run /metrics scrape is missing
#      the failure-model series (quasii_durable_degraded,
#      quasii_wal_retry_total, quasii_fault_injected_total).
#   2. A fresh server over the surviving data dir is oracle-validated once
#      more with the traffic cross-check enabled — the state the crashes
#      left behind must still be exactly the base dataset.
#
# This is the black-box complement to the in-process crash-point sweep
# (internal/durable TestCrashPointSweep): same failure model, real
# processes, real SIGKILL, real sockets. Run from the repository root.
# Exits non-zero on any failure.
set -eu

N=20000
SEED=1
ADDR=127.0.0.1:18090
BASE=http://$ADDR
DIR=$(mktemp -d)
SRV_PID=
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/quasii-serve" ./cmd/quasii-serve
go build -o "$DIR/quasii-loadgen" ./cmd/quasii-loadgen

echo "== 1. chaos run: kill/restart mid-load, oracle on every response"
# The workload is sized so the kill cadence lands well inside the run; a
# sluggish CI machine only stretches the run, which gives the kills more
# room, never less.
# -audit-visibility holds the chaos run to read-your-writes across every
# restart window: an acked insert invisible to its own client's re-read —
# even one acked moments before a SIGKILL — fails the run.
OUT=$("$DIR/quasii-loadgen" -addr "$BASE" -oracle -check-metrics \
  -n $N -seed $SEED -clients 4 -queries 30000 -selectivity 1e-4 -audit-visibility \
  -chaos "$DIR/quasii-serve -addr $ADDR -n $N -seed $SEED -data-dir $DIR/data -fsync always -checkpoint-every 0 -log-format json" \
  -chaos-kills 2 -chaos-interval 250ms | tee /dev/stderr)

# The harness must have actually crashed the server and recovered it —
# a chaos run where no kill landed validates nothing.
echo "$OUT" | grep -qE 'chaos: [1-9][0-9]* kills' \
  || { echo "chaos run delivered no kills (workload drained too fast?)"; exit 1; }
KILLS=$(echo "$OUT" | sed -nE 's/^chaos: ([0-9]+) kills, ([0-9]+) recovered restarts.*/\1 \2/p')
[ "${KILLS% *}" = "${KILLS#* }" ] \
  || { echo "not every kill recovered: $KILLS"; exit 1; }
# The clients must have ridden out at least one restart window.
echo "$OUT" | grep -q 'transport errors absorbed' \
  || { echo "no transport retries absorbed despite kills"; exit 1; }
# The durable failure-model series were on the final scrape.
echo "$OUT" | grep -q '^durable: degraded 0,' \
  || { echo "scrape missing (or degraded) quasii_durable_* series"; exit 1; }

echo "== 2. the surviving data dir still serves the exact base dataset"
"$DIR/quasii-serve" -addr "$ADDR" -n $N -seed $SEED -data-dir "$DIR/data" \
  -fsync always -checkpoint-every 0 -log-format json &
SRV_PID=$!
"$DIR/quasii-loadgen" -addr "$BASE" -oracle -n $N -seed $SEED \
  -clients 4 -queries 300 -audit-visibility -wait 30s

kill -TERM "$SRV_PID"
wait "$SRV_PID" || true
SRV_PID=
echo "chaos smoke passed"
