#!/usr/bin/env bash
# Process-level kill-restart smoke for the durability subsystem:
#
#   1. start quasii-serve with a data dir (bootstrap + initial snapshot)
#   2. validate base-dataset query answers with the oracle load generator
#   3. insert an object (ID above the loadgen write base, so the oracle
#      comparison ignores it), SIGTERM the server (graceful: final snapshot)
#   4. restart over the same data dir (warm restart, no re-cracking)
#   5. the inserted object must still be there, and the oracle run must
#      still validate every base-dataset answer
#   6. hard-kill (SIGKILL) after another insert and restart again: the
#      second object must be recovered from the WAL alone
#
# Every leg also runs a quasii-explore -live probe: it blocks on /readyz
# (failing the run if the server claims readiness that never arrives or
# serves traffic before restore completes), then strictly decodes /stats,
# /debug/heat and /debug/index — any malformed or schema-drifted JSON is
# fatal. The probes' text reports accumulate in $HEAT_REPORT and the
# tile×depth grids in $HEAT_CSV (CI uploads both as artifacts).
#
# Run from the repository root. Exits non-zero on any failure.
set -eu

N=20000
SEED=1
ADDR=127.0.0.1:18080
BASE=http://$ADDR
DIR=$(mktemp -d)
HEAT_REPORT=${HEAT_REPORT:-$DIR/heat-report.txt}
HEAT_CSV=${HEAT_CSV:-$DIR/heat-grid.csv}
SRV_PID=
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/quasii-serve" ./cmd/quasii-serve
go build -o "$DIR/quasii-loadgen" ./cmd/quasii-loadgen
go build -o "$DIR/quasii-explore" ./cmd/quasii-explore

start_server() {
  "$DIR/quasii-serve" -addr "$ADDR" -n $N -seed $SEED -data-dir "$DIR/data" \
    -fsync always -checkpoint-every 0 -heat-sample 4 -log-format json &
  SRV_PID=$!
}

wait_healthy() {
  for _ in $(seq 1 200); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server did not become healthy"; exit 1
}

wait_ready() {
  for _ in $(seq 1 200); do
    if curl -fsS "$BASE/readyz" | grep -q '"ready":true'; then return 0; fi
    sleep 0.1
  done
  echo "server did not become ready"; exit 1
}

live_probe() { # $1 = leg label
  echo "---- live probe: $1" >>"$HEAT_REPORT"
  "$DIR/quasii-explore" -live "$BASE" -samples 2 -interval 300ms \
    -maxdepth 2 -top 4 -csv "$DIR/leg.csv" >>"$HEAT_REPORT" \
    || { echo "live probe ($1) failed"; exit 1; }
  # Fold this leg's grid into the combined CSV, tagged with the leg name.
  if [ ! -s "$HEAT_CSV" ]; then
    echo "leg,$(head -1 "$DIR/leg.csv")" >"$HEAT_CSV"
  fi
  tail -n +2 "$DIR/leg.csv" | sed "s/^/$1,/" >>"$HEAT_CSV"
}

query_has_id() { # $1 = id
  curl -fsS -d '{"min":[100,100,100],"max":[110,110,110]}' "$BASE/query" \
    | grep -q "$1"
}

echo "== 1. bootstrap"
start_server
wait_healthy
wait_ready

echo "== 2. oracle validation against the fresh server"
# The -oracle run also scrapes /metrics afterwards and fails on an
# unparsable exposition or counters inconsistent with the traffic driven.
# -audit-visibility holds every leg to read-your-writes: an acked insert a
# same-client re-read cannot see fails the run.
"$DIR/quasii-loadgen" -addr "$BASE" -oracle -n $N -seed $SEED \
  -clients 4 -queries 300 -audit-visibility -wait 10s

echo "== 2a. introspection probe (fresh build, post-traffic heat)"
live_probe fresh

echo "== 2b. /metrics scrape"
METRICS=$(curl -fsS "$BASE/metrics")
# Shape check: every line is blank, a # HELP/# TYPE comment, or a sample.
BAD=$(echo "$METRICS" | grep -vE '^$|^# (HELP|TYPE) |^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+Inf-]+$' || true)
if [ -n "$BAD" ]; then
  echo "unparsable /metrics lines:"; echo "$BAD"; exit 1
fi
# A durable server must expose the persistence series on the same scrape.
for series in quasii_store_wal_size_bytes quasii_wal_appends_total \
              quasii_core_slices_refined_total quasii_core_shared_ratio; do
  echo "$METRICS" | grep -q "^$series" || { echo "/metrics missing $series"; exit 1; }
done

echo "== 3. insert + graceful SIGTERM"
# ID 1073742000 >= 2^30: the loadgen oracle ignores it by design.
curl -fsS -d '{"objects":[{"id":1073742000,"min":[101,101,101],"max":[103,103,103]}]}' \
  "$BASE/insert" >/dev/null
query_has_id 1073742000 || { echo "insert not visible"; exit 1; }
kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "server exited non-zero on SIGTERM"; exit 1; }
SRV_PID=

echo "== 4. warm restart"
start_server
wait_healthy
wait_ready

echo "== 5. recovered state serves correctly"
query_has_id 1073742000 || { echo "insert lost across graceful restart"; exit 1; }
"$DIR/quasii-loadgen" -addr "$BASE" -oracle -n $N -seed $SEED \
  -clients 4 -queries 300 -audit-visibility -wait 10s

echo "== 5a. introspection probe (warm restart)"
live_probe warm-restart

echo "== 6. insert + SIGKILL (WAL-only recovery)"
curl -fsS -d '{"objects":[{"id":1073742001,"min":[104,104,104],"max":[106,106,106]}]}' \
  "$BASE/insert" >/dev/null
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
start_server
wait_healthy
wait_ready
query_has_id 1073742001 || { echo "insert lost across hard kill (WAL replay failed)"; exit 1; }
query_has_id 1073742000 || { echo "earlier insert lost across hard kill"; exit 1; }

echo "== 6a. read-your-writes audit on the WAL-recovered server"
"$DIR/quasii-loadgen" -addr "$BASE" -oracle -n $N -seed $SEED \
  -clients 4 -queries 300 -audit-visibility -wait 10s

echo "== 6b. introspection probe (WAL recovery)"
live_probe wal-recovery

kill -TERM "$SRV_PID"
wait "$SRV_PID" || true
SRV_PID=
echo "persistence smoke passed (heat report: $HEAT_REPORT, grid: $HEAT_CSV)"
