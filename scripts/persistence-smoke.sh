#!/usr/bin/env bash
# Process-level kill-restart smoke for the durability subsystem:
#
#   1. start quasii-serve with a data dir (bootstrap + initial snapshot)
#   2. validate base-dataset query answers with the oracle load generator
#   3. insert an object (ID above the loadgen write base, so the oracle
#      comparison ignores it), SIGTERM the server (graceful: final snapshot)
#   4. restart over the same data dir (warm restart, no re-cracking)
#   5. the inserted object must still be there, and the oracle run must
#      still validate every base-dataset answer
#   6. hard-kill (SIGKILL) after another insert and restart again: the
#      second object must be recovered from the WAL alone
#
# Run from the repository root. Exits non-zero on any failure.
set -eu

N=20000
SEED=1
ADDR=127.0.0.1:18080
BASE=http://$ADDR
DIR=$(mktemp -d)
SRV_PID=
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/quasii-serve" ./cmd/quasii-serve
go build -o "$DIR/quasii-loadgen" ./cmd/quasii-loadgen

start_server() {
  "$DIR/quasii-serve" -addr "$ADDR" -n $N -seed $SEED -data-dir "$DIR/data" \
    -fsync always -checkpoint-every 0 &
  SRV_PID=$!
}

wait_healthy() {
  for _ in $(seq 1 200); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server did not become healthy"; exit 1
}

query_has_id() { # $1 = id
  curl -fsS -d '{"min":[100,100,100],"max":[110,110,110]}' "$BASE/query" \
    | grep -q "$1"
}

echo "== 1. bootstrap"
start_server
wait_healthy

echo "== 2. oracle validation against the fresh server"
# The -oracle run also scrapes /metrics afterwards and fails on an
# unparsable exposition or counters inconsistent with the traffic driven.
"$DIR/quasii-loadgen" -addr "$BASE" -oracle -n $N -seed $SEED \
  -clients 4 -queries 300 -wait 10s

echo "== 2b. /metrics scrape"
METRICS=$(curl -fsS "$BASE/metrics")
# Shape check: every line is blank, a # HELP/# TYPE comment, or a sample.
BAD=$(echo "$METRICS" | grep -vE '^$|^# (HELP|TYPE) |^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+Inf-]+$' || true)
if [ -n "$BAD" ]; then
  echo "unparsable /metrics lines:"; echo "$BAD"; exit 1
fi
# A durable server must expose the persistence series on the same scrape.
for series in quasii_store_wal_size_bytes quasii_wal_appends_total \
              quasii_core_slices_refined_total quasii_core_shared_ratio; do
  echo "$METRICS" | grep -q "^$series" || { echo "/metrics missing $series"; exit 1; }
done

echo "== 3. insert + graceful SIGTERM"
# ID 1073742000 >= 2^30: the loadgen oracle ignores it by design.
curl -fsS -d '{"objects":[{"id":1073742000,"min":[101,101,101],"max":[103,103,103]}]}' \
  "$BASE/insert" >/dev/null
query_has_id 1073742000 || { echo "insert not visible"; exit 1; }
kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "server exited non-zero on SIGTERM"; exit 1; }
SRV_PID=

echo "== 4. warm restart"
start_server
wait_healthy

echo "== 5. recovered state serves correctly"
query_has_id 1073742000 || { echo "insert lost across graceful restart"; exit 1; }
"$DIR/quasii-loadgen" -addr "$BASE" -oracle -n $N -seed $SEED \
  -clients 4 -queries 300 -wait 10s

echo "== 6. insert + SIGKILL (WAL-only recovery)"
curl -fsS -d '{"objects":[{"id":1073742001,"min":[104,104,104],"max":[106,106,106]}]}' \
  "$BASE/insert" >/dev/null
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
start_server
wait_healthy
query_has_id 1073742001 || { echo "insert lost across hard kill (WAL replay failed)"; exit 1; }
query_has_id 1073742000 || { echo "earlier insert lost across hard kill"; exit 1; }

kill -TERM "$SRV_PID"
wait "$SRV_PID" || true
SRV_PID=
echo "persistence smoke passed"
