package quasii_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per figure, delegating to the shared experiment drivers),
// plus micro-benchmarks of the individual indexes and ablation benchmarks
// for QUASII's design choices (τ, assignment coordinate, artificial
// refinement) and SFCracker's interval cap.
//
// Run with: go test -bench=. -benchmem

import (
	"io"
	"testing"

	quasii "repro"
	"repro/internal/bench"
	"repro/internal/experiments"
)

// benchScale keeps whole-figure benchmarks fast enough for -bench=. while
// still exercising every code path of the experiment drivers.
var benchScale = experiments.Scale{
	Name: "bench", UniformN: 20000, NeuroN: 20000,
	ClusteredQueries: 100, UniformQueries: 200, Seed: 1,
	PrintEvery: 50, GridUniform: 16, GridNeuro: 32,
}

func benchFigure(b *testing.B, name string) {
	driver := experiments.Registry[name]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := driver(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper figure.

func BenchmarkFig6aDataAssignment(b *testing.B)    { benchFigure(b, "fig6a") }
func BenchmarkFig6bGridConfiguration(b *testing.B) { benchFigure(b, "fig6b") }
func BenchmarkFig7Convergence(b *testing.B)        { benchFigure(b, "fig7") }
func BenchmarkFig8Cumulative(b *testing.B)         { benchFigure(b, "fig8") }
func BenchmarkFig9Comparative(b *testing.B)        { benchFigure(b, "fig9") }
func BenchmarkFig10UniformWorkload(b *testing.B)   { benchFigure(b, "fig10") }
func BenchmarkFig11Scalability(b *testing.B)       { benchFigure(b, "fig11") }
func BenchmarkFig12Selectivity(b *testing.B)       { benchFigure(b, "fig12") }

// --- Micro-benchmarks: build cost ---

const microN = 100000

func benchData(b *testing.B) []quasii.Object {
	b.Helper()
	return quasii.UniformDataset(microN, 1)
}

func BenchmarkBuildQUASII(b *testing.B) {
	data := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := quasii.CloneObjects(data)
		b.StartTimer()
		quasii.NewQUASII(clone, quasii.QUASIIConfig{})
	}
}

func BenchmarkBuildRTree(b *testing.B) {
	data := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quasii.NewRTree(data, quasii.RTreeConfig{})
	}
}

func BenchmarkBuildGrid(b *testing.B) {
	data := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quasii.NewGrid(data, quasii.GridConfig{Partitions: 48, Universe: quasii.Universe()})
	}
}

func BenchmarkBuildSFC(b *testing.B) {
	data := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quasii.NewSFC(data, quasii.SFCConfig{Universe: quasii.Universe()})
	}
}

// --- Micro-benchmarks: query cost on a converged index ---

func convergedQUASII(b *testing.B, data []quasii.Object, warm []quasii.Box) *quasii.QUASII {
	b.Helper()
	ix := quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})
	var buf []int32
	for _, q := range warm {
		buf = ix.Query(q, buf[:0])
	}
	return ix
}

func BenchmarkQueryConvergedQUASII(b *testing.B) {
	data := benchData(b)
	warm := quasii.UniformQueries(500, 1e-3, 2)
	ix := convergedQUASII(b, data, warm)
	queries := quasii.UniformQueries(64, 1e-3, 3)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.Query(queries[i%len(queries)], buf[:0])
	}
}

func BenchmarkQueryRTree(b *testing.B) {
	data := benchData(b)
	tr := quasii.NewRTree(data, quasii.RTreeConfig{})
	queries := quasii.UniformQueries(64, 1e-3, 3)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.Query(queries[i%len(queries)], buf[:0])
	}
}

func BenchmarkQueryGrid(b *testing.B) {
	data := benchData(b)
	g := quasii.NewGrid(data, quasii.GridConfig{Partitions: 48, Universe: quasii.Universe()})
	queries := quasii.UniformQueries(64, 1e-3, 3)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Query(queries[i%len(queries)], buf[:0])
	}
}

func BenchmarkQueryScan(b *testing.B) {
	data := benchData(b)
	s := quasii.NewScan(data)
	queries := quasii.UniformQueries(64, 1e-3, 3)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.Query(queries[i%len(queries)], buf[:0])
	}
}

func BenchmarkQueryRTreeKNN(b *testing.B) {
	data := benchData(b)
	tr := quasii.NewRTree(data, quasii.RTreeConfig{})
	queries := quasii.UniformQueries(64, 1e-3, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(queries[i%len(queries)].Center(), 10)
	}
}

// --- First-query (data-to-insight) benchmarks ---

func BenchmarkFirstQueryQUASII(b *testing.B) {
	data := benchData(b)
	q := quasii.UniformQueries(1, 1e-3, 4)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := quasii.CloneObjects(data)
		b.StartTimer()
		ix := quasii.NewQUASII(clone, quasii.QUASIIConfig{})
		ix.Query(q, nil)
	}
}

func BenchmarkFirstQuerySFCracker(b *testing.B) {
	data := benchData(b)
	q := quasii.UniformQueries(1, 1e-3, 4)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := quasii.CloneObjects(data)
		b.StartTimer()
		cr := quasii.NewSFCracker(clone, quasii.SFCConfig{Universe: quasii.Universe()})
		cr.Query(q, nil)
	}
}

func BenchmarkFirstQueryMosaic(b *testing.B) {
	data := benchData(b)
	q := quasii.UniformQueries(1, 1e-3, 4)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mo := quasii.NewMosaic(data, quasii.MosaicConfig{Universe: quasii.Universe()})
		mo.Query(q, nil)
	}
}

// --- Ablations: QUASII design choices (DESIGN.md) ---

func benchAblationWorkload(b *testing.B, cfg quasii.QUASIIConfig) {
	b.Helper()
	data := benchData(b)
	queries := quasii.UniformQueries(200, 1e-3, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := quasii.CloneObjects(data)
		b.StartTimer()
		ix := quasii.NewQUASII(clone, cfg)
		var buf []int32
		for _, q := range queries {
			buf = ix.Query(q, buf[:0])
		}
	}
}

// τ sweep: leaf capacity trades refinement work against scan width.
func BenchmarkAblationTau15(b *testing.B)  { benchAblationWorkload(b, quasii.QUASIIConfig{Tau: 15}) }
func BenchmarkAblationTau60(b *testing.B)  { benchAblationWorkload(b, quasii.QUASIIConfig{Tau: 60}) }
func BenchmarkAblationTau240(b *testing.B) { benchAblationWorkload(b, quasii.QUASIIConfig{Tau: 240}) }

// Assignment coordinate: the paper picks the lower corner because it is free;
// center assignment needs symmetric extension.
func BenchmarkAblationAssignLower(b *testing.B) {
	benchAblationWorkload(b, quasii.QUASIIConfig{Assign: quasii.AssignLower})
}
func BenchmarkAblationAssignCenter(b *testing.B) {
	benchAblationWorkload(b, quasii.QUASIIConfig{Assign: quasii.AssignCenter})
}

// Artificial refinement off: slices only ever split at query bounds, so the
// hierarchy degenerates and converged queries scan wide slices.
func BenchmarkAblationNoArtificialRefinement(b *testing.B) {
	benchAblationWorkload(b, quasii.QUASIIConfig{DisableArtificial: true})
}

// SFCracker interval cap: exact decomposition cracks more, capped
// decomposition scans more false positives.
func benchSFCrackerIntervals(b *testing.B, maxIntervals int) {
	b.Helper()
	data := benchData(b)
	queries := quasii.UniformQueries(100, 1e-3, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := quasii.CloneObjects(data)
		b.StartTimer()
		cr := quasii.NewSFCracker(clone, quasii.SFCConfig{Universe: quasii.Universe(), MaxIntervals: maxIntervals})
		var buf []int32
		for _, q := range queries {
			buf = cr.Query(q, buf[:0])
		}
	}
}

func BenchmarkAblationSFCrackerExactIntervals(b *testing.B)  { benchSFCrackerIntervals(b, -1) }
func BenchmarkAblationSFCrackerCappedIntervals(b *testing.B) { benchSFCrackerIntervals(b, 64) }

// --- Extension benchmarks: STR vs dynamic insertion, Z-order vs Hilbert ---

// The paper's stated reason for STR: lower pre-processing cost and less
// overlap than inserting one object at a time.
func BenchmarkBuildDynRTree(b *testing.B) {
	data := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quasii.NewDynRTreeFromData(data, quasii.RTreeConfig{})
	}
}

func BenchmarkQueryDynRTree(b *testing.B) {
	data := benchData(b)
	dt := quasii.NewDynRTreeFromData(data, quasii.RTreeConfig{})
	queries := quasii.UniformQueries(64, 1e-3, 3)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = dt.Query(queries[i%len(queries)], buf[:0])
	}
}

func benchSFCCurve(b *testing.B, curve quasii.SFCConfig) {
	b.Helper()
	data := benchData(b)
	queries := quasii.UniformQueries(100, 1e-3, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := quasii.CloneObjects(data)
		b.StartTimer()
		cr := quasii.NewSFCracker(clone, curve)
		var buf []int32
		for _, q := range queries {
			buf = cr.Query(q, buf[:0])
		}
	}
}

func BenchmarkAblationCurveZOrder(b *testing.B) {
	benchSFCCurve(b, quasii.SFCConfig{Universe: quasii.Universe(), Curve: quasii.CurveZOrder})
}

func BenchmarkAblationCurveHilbert(b *testing.B) {
	benchSFCCurve(b, quasii.SFCConfig{Universe: quasii.Universe(), Curve: quasii.CurveHilbert})
}

// Stochastic refinement: extra random cuts guard against sequential sweeps.
func BenchmarkAblationStochasticUniform(b *testing.B) {
	benchAblationWorkload(b, quasii.QUASIIConfig{Stochastic: true})
}

func benchSequentialWorkload(b *testing.B, cfg quasii.QUASIIConfig) {
	b.Helper()
	data := benchData(b)
	queries := quasii.SequentialQueries(45, 1e-5, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := quasii.CloneObjects(data)
		b.StartTimer()
		ix := quasii.NewQUASII(clone, cfg)
		var buf []int32
		for _, q := range queries {
			buf = ix.Query(q, buf[:0])
		}
	}
}

func BenchmarkAblationSequentialPlain(b *testing.B) {
	benchSequentialWorkload(b, quasii.QUASIIConfig{})
}

func BenchmarkAblationSequentialStochastic(b *testing.B) {
	benchSequentialWorkload(b, quasii.QUASIIConfig{Stochastic: true})
}

// Complete() converts the adaptive index into its converged form eagerly.
func BenchmarkCompleteRefinement(b *testing.B) {
	data := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clone := quasii.CloneObjects(data)
		b.StartTimer()
		ix := quasii.NewQUASII(clone, quasii.QUASIIConfig{})
		ix.Complete()
	}
}

func BenchmarkQueryQUASIIKNN(b *testing.B) {
	data := benchData(b)
	ix := quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{})
	ix.Complete()
	queries := quasii.UniformQueries(64, 1e-3, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.KNN(queries[i%len(queries)].Center(), 10)
	}
}

// R-tree family comparison: STR bulk load vs Guttman vs R* (build cost and
// query performance; leaf overlap is asserted in the test suite).
func BenchmarkBuildRStarTree(b *testing.B) {
	data := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quasii.NewRStarTreeFromData(data, quasii.RTreeConfig{})
	}
}

func BenchmarkQueryRStarTree(b *testing.B) {
	data := benchData(b)
	rs := quasii.NewRStarTreeFromData(data, quasii.RTreeConfig{})
	queries := quasii.UniformQueries(64, 1e-3, 3)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = rs.Query(queries[i%len(queries)], buf[:0])
	}
}

// Two-level grid: the density-adaptive alternative to sweeping a uniform
// grid's resolution per dataset.
func BenchmarkBuildTwoLevelGrid(b *testing.B) {
	data := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quasii.NewTwoLevelGrid(data, quasii.TwoLevelGridConfig{Universe: quasii.Universe()})
	}
}

func BenchmarkQueryTwoLevelGrid(b *testing.B) {
	data := benchData(b)
	g := quasii.NewTwoLevelGrid(data, quasii.TwoLevelGridConfig{Universe: quasii.Universe()})
	queries := quasii.UniformQueries(64, 1e-3, 3)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Query(queries[i%len(queries)], buf[:0])
	}
}

// --- Concurrent throughput: the sharded engine vs the global mutex ---
//
// benchThroughput answers a fixed uniform workload with 8 client goroutines
// draining a shared queue; b.N iterations rebuild the engine each time so
// adaptive indexes start cold. Compare:
//
//	go test -bench 'Throughput' -benchtime 5x
//
// The sharded engine should clear >1.5x the queries/sec of the
// Synchronize(NewQUASII(...)) baseline.

const throughputGoroutines = 8

func benchThroughput(b *testing.B, build func(data []quasii.Object) quasii.Index) {
	data := benchData(b)
	queries := quasii.UniformQueries(2000, 1e-3, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix := build(data)
		b.StartTimer()
		bench.RunParallel("bench", func() bench.QueryIndex { return ix }, queries, throughputGoroutines)
	}
	b.ReportMetric(float64(len(queries))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

func BenchmarkThroughputMutexQUASII(b *testing.B) {
	benchThroughput(b, func(data []quasii.Object) quasii.Index {
		return quasii.Synchronize(quasii.NewQUASII(quasii.CloneObjects(data), quasii.QUASIIConfig{}))
	})
}

func BenchmarkThroughputShardedQUASII(b *testing.B) {
	benchThroughput(b, func(data []quasii.Object) quasii.Index {
		return quasii.NewSharded(data, quasii.ShardedConfig{Shards: throughputGoroutines})
	})
}

func BenchmarkThroughputRWLockRTree(b *testing.B) {
	benchThroughput(b, func(data []quasii.Object) quasii.Index {
		return quasii.SynchronizeStatic(quasii.NewRTree(data, quasii.RTreeConfig{}))
	})
}

// QueryBatch amortizes scheduling over the whole workload.
func BenchmarkThroughputShardedBatch(b *testing.B) {
	data := benchData(b)
	queries := quasii.UniformQueries(2000, 1e-3, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix := quasii.NewSharded(data, quasii.ShardedConfig{Shards: throughputGoroutines})
		b.StartTimer()
		ix.QueryBatch(queries)
	}
	b.ReportMetric(float64(len(queries))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
