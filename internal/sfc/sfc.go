// Package sfc implements the one-dimensional baselines of the QUASII paper:
//
//   - Index — the static SFC approach (Sec. 6.1): objects are mapped to
//     Z-order codes during a pre-processing step, fully sorted, and queried
//     through curve-interval probes with binary search.
//   - Cracker — SFCracker (Sec. 3.1): the same mapping, but the sort is
//     replaced by database cracking: each query's curve intervals crack the
//     code array incrementally. The code transformation of the whole dataset
//     happens lazily inside the first query, which is what makes SFCracker's
//     first query the most expensive among the incremental approaches.
//
// Both map an object to the grid cell of its center and therefore rely on
// query extension (half the maximum object extent per dimension) for
// correctness, inheriting the space-oriented partitioning penalties the
// paper analyzes in Sec. 6.2.
package sfc

import (
	"sort"

	"repro/internal/cracktree"
	"repro/internal/geom"
	"repro/internal/hilbert"
	"repro/internal/zorder"
)

// DefaultMaxIntervals caps the number of curve intervals a single query
// decomposes into. The cap bounds per-query cracking cost at a small
// false-positive price; 0 means exact decomposition.
const DefaultMaxIntervals = 256

// Curve selects the space-filling curve used for the 1-d transformation.
type Curve int

const (
	// ZOrder is the paper's choice ("due to its simplicity").
	ZOrder Curve = iota
	// Hilbert has strictly better locality at a higher encoding cost; the
	// paper cites this trade-off when justifying Z-order.
	Hilbert
)

// Config controls both SFC variants.
type Config struct {
	// Bits per dimension of the curve grid. Default (0) means 10, the
	// paper's choice (32-bit codes).
	Bits uint
	// MaxIntervals caps the per-query curve-interval decomposition.
	// Default (0) means DefaultMaxIntervals; negative means exact.
	MaxIntervals int
	// Universe is the bounding box the grid is laid over. Empty means it is
	// derived from the data.
	Universe geom.Box
	// Curve selects Z-order (default, as in the paper) or Hilbert.
	Curve Curve
}

func (c *Config) defaults(data []geom.Object) {
	if c.Bits == 0 {
		c.Bits = zorder.BitsPerDim
	}
	if c.MaxIntervals == 0 {
		c.MaxIntervals = DefaultMaxIntervals
	} else if c.MaxIntervals < 0 {
		c.MaxIntervals = 0
	}
	if c.Universe.IsEmpty() || c.Universe.Volume() == 0 {
		u := geom.MBB(data)
		if u.IsEmpty() {
			u = geom.Box{Max: geom.Point{1, 1, 1}}
		}
		c.Universe = u
	}
}

// grid maps points to curve cells.
type grid struct {
	universe geom.Box
	bits     uint
	scale    [3]float64
	curve    Curve
}

func newGrid(universe geom.Box, bits uint, curve Curve) grid {
	g := grid{universe: universe, bits: bits, curve: curve}
	cells := float64(uint64(1) << bits)
	for d := 0; d < geom.Dims; d++ {
		span := universe.Max[d] - universe.Min[d]
		if span <= 0 {
			span = 1
		}
		g.scale[d] = cells / span
	}
	return g
}

func (g grid) cellOf(p geom.Point) [3]uint32 {
	var c [3]uint32
	max := zorder.MaxCoord(g.bits)
	for d := 0; d < geom.Dims; d++ {
		v := (p[d] - g.universe.Min[d]) * g.scale[d]
		switch {
		case v < 0:
			c[d] = 0
		case v >= float64(max):
			c[d] = max
		default:
			c[d] = uint32(v)
		}
	}
	return c
}

func (g grid) codeOf(o *geom.Object) uint64 {
	c := g.cellOf(o.Center())
	if g.curve == Hilbert {
		return hilbert.Encode(c[0], c[1], c[2], g.bits)
	}
	return zorder.Encode(c[0], c[1], c[2])
}

// decompose dispatches the range decomposition to the configured curve.
func (g grid) decompose(lo, hi [3]uint32, maxIvs int) []zorder.Interval {
	if g.curve == Hilbert {
		return hilbert.Decompose(lo, hi, g.bits, maxIvs)
	}
	return zorder.Decompose(lo, hi, g.bits, maxIvs)
}

type entry struct {
	code uint64
	obj  geom.Object
}

// Index is the static SFC baseline.
type Index struct {
	grid    grid
	entries []entry
	maxExt  geom.Point
	maxIvs  int
}

// New builds the static SFC index: it transforms every object to its Z-order
// code and fully sorts — the pre-processing step whose cost the paper's
// cumulative plots include.
func New(data []geom.Object, cfg Config) *Index {
	cfg.defaults(data)
	ix := &Index{
		grid:   newGrid(cfg.Universe, cfg.Bits, cfg.Curve),
		maxExt: geom.MaxExtents(data),
		maxIvs: cfg.MaxIntervals,
	}
	ix.entries = make([]entry, len(data))
	for i := range data {
		ix.entries[i] = entry{code: ix.grid.codeOf(&data[i]), obj: data[i]}
	}
	sort.Slice(ix.entries, func(a, b int) bool { return ix.entries[a].code < ix.entries[b].code })
	return ix
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return len(ix.entries) }

// Query appends the IDs of all objects intersecting q to out.
func (ix *Index) Query(q geom.Box, out []int32) []int32 {
	if q.IsEmpty() || len(ix.entries) == 0 {
		return out
	}
	lo, hi := extendedCellRange(ix.grid, q, ix.maxExt)
	for _, iv := range ix.grid.decompose(lo, hi, ix.maxIvs) {
		i := sort.Search(len(ix.entries), func(k int) bool { return ix.entries[k].code >= iv.Lo })
		for ; i < len(ix.entries) && ix.entries[i].code <= iv.Hi; i++ {
			if ix.entries[i].obj.Intersects(q) {
				out = append(out, ix.entries[i].obj.ID)
			}
		}
	}
	return out
}

// extendedCellRange converts q, extended by half the maximum object extent in
// each dimension (center assignment), to an inclusive cell range.
func extendedCellRange(g grid, q geom.Box, maxExt geom.Point) (lo, hi [3]uint32) {
	var half geom.Point
	for d := 0; d < geom.Dims; d++ {
		half[d] = maxExt[d] / 2
	}
	ext := q.Expand(half)
	return g.cellOf(ext.Min), g.cellOf(ext.Max)
}

// Stats counts the cumulative work done by the Cracker.
type Stats struct {
	Queries         int
	Cracks          int
	CrackedEntries  int64
	Intervals       int64
	EntriesTested   int64
	TransformedData bool // first-query code transformation performed
}

// Cracker is SFCracker: incremental cracking over Z-order codes.
type Cracker struct {
	grid    grid
	data    []geom.Object // held until the first query transforms it
	entries []entry
	tree    cracktree.Tree
	maxExt  geom.Point
	maxIvs  int
	stats   Stats
}

// NewCracker prepares an SFCracker over data. No indexing work happens here:
// even the Z-order transformation is deferred to the first query, exactly as
// the paper accounts it.
func NewCracker(data []geom.Object, cfg Config) *Cracker {
	cfg.defaults(data)
	return &Cracker{
		grid:   newGrid(cfg.Universe, cfg.Bits, cfg.Curve),
		data:   data,
		maxExt: geom.MaxExtents(data),
		maxIvs: cfg.MaxIntervals,
	}
}

// Len returns the number of indexed objects.
func (c *Cracker) Len() int {
	if c.entries != nil {
		return len(c.entries)
	}
	return len(c.data)
}

// Stats returns a snapshot of the cumulative work counters.
func (c *Cracker) Stats() Stats { return c.stats }

// Query appends the IDs of all objects intersecting q to out, cracking the
// code array on the query's curve intervals as a side effect.
func (c *Cracker) Query(q geom.Box, out []int32) []int32 {
	c.stats.Queries++
	if c.entries == nil {
		// The first query pays for transforming the whole dataset into the
		// one-dimensional domain.
		c.entries = make([]entry, len(c.data))
		for i := range c.data {
			c.entries[i] = entry{code: c.grid.codeOf(&c.data[i]), obj: c.data[i]}
		}
		c.data = nil
		c.stats.TransformedData = true
	}
	if q.IsEmpty() || len(c.entries) == 0 {
		return out
	}
	lo, hi := extendedCellRange(c.grid, q, c.maxExt)
	for _, iv := range c.grid.decompose(lo, hi, c.maxIvs) {
		c.stats.Intervals++
		pLo := c.crackAt(iv.Lo)
		pHi := c.crackAt(iv.Hi + 1)
		c.stats.EntriesTested += int64(pHi - pLo)
		for i := pLo; i < pHi; i++ {
			if c.entries[i].obj.Intersects(q) {
				out = append(out, c.entries[i].obj.ID)
			}
		}
	}
	return out
}

// crackAt returns the array position where codes >= code begin, cracking the
// enclosing unsorted segment if this boundary is new.
func (c *Cracker) crackAt(code uint64) int {
	if pos, ok := c.tree.Get(code); ok {
		return pos
	}
	segLo := 0
	if _, pos, ok := c.tree.Floor(code); ok {
		segLo = pos
	}
	segHi := len(c.entries)
	if _, pos, ok := c.tree.Ceiling(code); ok {
		segHi = pos
	}
	mid := segLo
	if segLo < segHi {
		i, j := segLo, segHi-1
		for i <= j {
			for i <= j && c.entries[i].code < code {
				i++
			}
			for i <= j && c.entries[j].code >= code {
				j--
			}
			if i < j {
				c.entries[i], c.entries[j] = c.entries[j], c.entries[i]
				i++
				j--
			}
		}
		mid = i
		c.stats.Cracks++
		c.stats.CrackedEntries += int64(segHi - segLo)
	}
	c.tree.Insert(code, mid)
	return mid
}

// CheckInvariants verifies that every recorded crack boundary correctly
// partitions the entry array. Used by tests.
func (c *Cracker) CheckInvariants() error {
	if c.entries == nil {
		return nil
	}
	var err error
	c.tree.Walk(func(key uint64, pos int) bool {
		for i := 0; i < pos; i++ {
			if c.entries[i].code >= key {
				err = errAt(key, pos, i, c.entries[i].code, true)
				return false
			}
		}
		for i := pos; i < len(c.entries); i++ {
			if c.entries[i].code < key {
				err = errAt(key, pos, i, c.entries[i].code, false)
				return false
			}
		}
		return true
	})
	return err
}

type crackViolation struct {
	key   uint64
	pos   int
	index int
	code  uint64
	left  bool
}

func errAt(key uint64, pos, index int, code uint64, left bool) error {
	return &crackViolation{key: key, pos: pos, index: index, code: code, left: left}
}

func (e *crackViolation) Error() string {
	side := "right"
	if e.left {
		side = "left"
	}
	return "crack boundary violated on " + side + " side"
}
