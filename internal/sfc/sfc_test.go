package sfc

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStaticEmpty(t *testing.T) {
	ix := New(nil, Config{})
	if res := ix.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
		t.Fatalf("empty index returned %d results", len(res))
	}
}

func TestStaticMatchesScan(t *testing.T) {
	data := dataset.Uniform(5000, 41)
	oracle := scan.New(data)
	ix := New(data, Config{Universe: dataset.Universe()})
	queries := workload.Uniform(dataset.Universe(), 100, 1e-3, 42)
	for qi, q := range queries {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), len(want))
		}
	}
}

func TestStaticMatchesScanExactDecomposition(t *testing.T) {
	data := dataset.Uniform(2000, 43)
	oracle := scan.New(data)
	ix := New(data, Config{Universe: dataset.Universe(), MaxIntervals: -1})
	queries := workload.Uniform(dataset.Universe(), 30, 1e-3, 44)
	for qi, q := range queries {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestStaticLargeObjects(t *testing.T) {
	// Query extension must catch objects whose center is far from the query.
	data := dataset.RandomBoxes(1000, 45, dataset.Universe())
	oracle := scan.New(data)
	ix := New(data, Config{Universe: dataset.Universe()})
	queries := workload.Uniform(dataset.Universe(), 40, 1e-3, 46)
	for qi, q := range queries {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestCrackerMatchesScan(t *testing.T) {
	data := dataset.Uniform(5000, 47)
	oracle := scan.New(data)
	cr := NewCracker(dataset.Clone(data), Config{Universe: dataset.Universe()})
	queries := workload.Uniform(dataset.Universe(), 120, 1e-3, 48)
	for qi, q := range queries {
		got := sortedIDs(cr.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d results, want %d", qi, len(got), len(want))
		}
		if qi%30 == 0 {
			if err := cr.CheckInvariants(); err != nil {
				t.Fatalf("after query %d: %v", qi, err)
			}
		}
	}
	if err := cr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCrackerClusteredWorkload(t *testing.T) {
	data := dataset.Neuro(4000, 49, dataset.NeuroConfig{})
	oracle := scan.New(data)
	cr := NewCracker(dataset.Clone(data), Config{Universe: dataset.Universe()})
	queries := workload.ClusteredOn(dataset.Universe(), data, 4, 25, 1e-4, 200, 50)
	for qi, q := range queries {
		got := sortedIDs(cr.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestCrackerLazyTransformation(t *testing.T) {
	data := dataset.Uniform(1000, 51)
	cr := NewCracker(dataset.Clone(data), Config{Universe: dataset.Universe()})
	if cr.Stats().TransformedData {
		t.Fatal("transformation should be deferred until the first query")
	}
	cr.Query(workload.Uniform(dataset.Universe(), 1, 1e-3, 52)[0], nil)
	if !cr.Stats().TransformedData {
		t.Fatal("first query should transform the data")
	}
}

func TestCrackerStatsAccumulate(t *testing.T) {
	data := dataset.Uniform(3000, 53)
	cr := NewCracker(dataset.Clone(data), Config{Universe: dataset.Universe()})
	queries := workload.Uniform(dataset.Universe(), 20, 1e-3, 54)
	for _, q := range queries {
		cr.Query(q, nil)
	}
	st := cr.Stats()
	if st.Queries != 20 || st.Cracks == 0 || st.Intervals == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestCrackerCrackingWorkDecreases(t *testing.T) {
	data := dataset.Uniform(20000, 55)
	cr := NewCracker(dataset.Clone(data), Config{Universe: dataset.Universe()})
	queries := workload.Clustered(dataset.Universe(), 1, 100, 1e-4, 100, 56)
	var first, last int64
	for i, q := range queries {
		before := cr.Stats().CrackedEntries
		cr.Query(q, nil)
		work := cr.Stats().CrackedEntries - before
		if i == 0 {
			first = work
		}
		if i == len(queries)-1 {
			last = work
		}
	}
	if first == 0 {
		t.Fatal("first query should crack")
	}
	if last > first {
		t.Fatalf("cracking work grew: first=%d last=%d", first, last)
	}
}

func TestCrackerEmptyData(t *testing.T) {
	cr := NewCracker(nil, Config{})
	if res := cr.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
		t.Fatalf("got %d results from empty cracker", len(res))
	}
}

func TestCrackerRepeatedQueriesStable(t *testing.T) {
	data := dataset.Uniform(2000, 57)
	oracle := scan.New(data)
	cr := NewCracker(dataset.Clone(data), Config{Universe: dataset.Universe()})
	q := workload.Uniform(dataset.Universe(), 1, 1e-2, 58)[0]
	want := sortedIDs(oracle.Query(q, nil))
	for i := 0; i < 5; i++ {
		got := sortedIDs(cr.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("iteration %d: got %d, want %d", i, len(got), len(want))
		}
	}
}

func TestConfigDerivedUniverse(t *testing.T) {
	data := dataset.Uniform(500, 59)
	ix := New(data, Config{}) // universe derived from data MBB
	oracle := scan.New(data)
	q := workload.Uniform(dataset.Universe(), 1, 1e-2, 60)[0]
	got := sortedIDs(ix.Query(q, nil))
	want := sortedIDs(oracle.Query(q, nil))
	if !equalIDs(got, want) {
		t.Fatalf("derived-universe query: got %d, want %d", len(got), len(want))
	}
}

func TestStaticHilbertMatchesScan(t *testing.T) {
	data := dataset.Uniform(4000, 141)
	oracle := scan.New(data)
	ix := New(data, Config{Universe: dataset.Universe(), Curve: Hilbert})
	for qi, q := range workload.Uniform(dataset.Universe(), 60, 1e-3, 142) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestCrackerHilbertMatchesScan(t *testing.T) {
	data := dataset.Uniform(2000, 143)
	oracle := scan.New(data)
	cr := NewCracker(dataset.Clone(data), Config{Universe: dataset.Universe(), Curve: Hilbert})
	for qi, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 144) {
		got := sortedIDs(cr.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
	if err := cr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertFewerIntervalsThanZOrder(t *testing.T) {
	// The locality advantage: on the same workload the Hilbert decomposition
	// needs no more (usually fewer) intervals than Z-order on average.
	data := dataset.Uniform(2000, 145)
	queries := workload.Uniform(dataset.Universe(), 15, 1e-3, 146)
	run := func(curve Curve) int64 {
		cr := NewCracker(dataset.Clone(data), Config{Universe: dataset.Universe(), Curve: curve, MaxIntervals: -1})
		for _, q := range queries {
			cr.Query(q, nil)
		}
		return cr.Stats().Intervals
	}
	z, h := run(ZOrder), run(Hilbert)
	if h > z {
		t.Errorf("Hilbert needed more intervals (%d) than Z-order (%d)", h, z)
	}
}

func TestLenBothVariants(t *testing.T) {
	data := dataset.Uniform(55, 150)
	if got := New(data, Config{}).Len(); got != 55 {
		t.Fatalf("static Len = %d", got)
	}
	cr := NewCracker(dataset.Clone(data), Config{})
	if got := cr.Len(); got != 55 {
		t.Fatalf("cracker Len before transform = %d", got)
	}
	cr.Query(geom.BoxAt(geom.Point{5000, 5000, 5000}, 100), nil)
	if got := cr.Len(); got != 55 {
		t.Fatalf("cracker Len after transform = %d", got)
	}
}
