// Package crack implements the in-place partitioning primitives of database
// cracking (Idreos et al., CIDR 2007) generalized to arbitrary element types
// via a key function. QUASII uses them to slice object arrays on one spatial
// dimension at a time; SFCracker uses them to crack arrays of z-order codes.
//
// All operations reorganize data[lo:hi] in place, exactly like the partition
// step of quicksort, and return the crack positions. They are deliberately
// unstable: cracking cares only about which side of a bound an element lands
// on, not about relative order within a partition.
package crack

// TwoWay partitions data[lo:hi) so that every element with key < pivot ends up
// before every element with key >= pivot. It returns mid such that
//
//	key(data[i]) <  pivot  for lo <= i < mid
//	key(data[i]) >= pivot  for mid <= i < hi
func TwoWay[T any](data []T, lo, hi int, pivot float64, key func(*T) float64) (mid int) {
	i, j := lo, hi-1
	for i <= j {
		for i <= j && key(&data[i]) < pivot {
			i++
		}
		for i <= j && key(&data[j]) >= pivot {
			j--
		}
		if i < j {
			data[i], data[j] = data[j], data[i]
			i++
			j--
		}
	}
	return i
}

// ThreeWay partitions data[lo:hi) into three bands relative to [low, high):
//
//	key <  low          for lo <= i < m1
//	low <= key < high   for m1 <= i < m2
//	key >= high         for m2 <= i < hi
//
// It requires low <= high and is implemented as two sequential two-way cracks,
// mirroring the nested crack-in-two strategy of database cracking.
func ThreeWay[T any](data []T, lo, hi int, low, high float64, key func(*T) float64) (m1, m2 int) {
	m1 = TwoWay(data, lo, hi, low, key)
	m2 = TwoWay(data, m1, hi, high, key)
	return m1, m2
}

// TwoWayInt64 is TwoWay specialized to int64 keys (z-order codes). Kept
// separate to avoid float conversions on the hot path of SFCracker.
func TwoWayInt64[T any](data []T, lo, hi int, pivot int64, key func(*T) int64) (mid int) {
	i, j := lo, hi-1
	for i <= j {
		for i <= j && key(&data[i]) < pivot {
			i++
		}
		for i <= j && key(&data[j]) >= pivot {
			j--
		}
		if i < j {
			data[i], data[j] = data[j], data[i]
			i++
			j--
		}
	}
	return i
}

// Verify reports whether data[lo:hi) is correctly partitioned at mid with
// respect to pivot: all keys before mid are < pivot and all keys from mid on
// are >= pivot. It exists for tests and debugging assertions.
func Verify[T any](data []T, lo, hi, mid int, pivot float64, key func(*T) float64) bool {
	if mid < lo || mid > hi {
		return false
	}
	for i := lo; i < mid; i++ {
		if key(&data[i]) >= pivot {
			return false
		}
	}
	for i := mid; i < hi; i++ {
		if key(&data[i]) < pivot {
			return false
		}
	}
	return true
}
