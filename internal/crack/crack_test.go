package crack

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func keyF(v *float64) float64 { return *v }

func TestTwoWayBasic(t *testing.T) {
	data := []float64{5, 1, 9, 3, 7, 2, 8}
	mid := TwoWay(data, 0, len(data), 5, keyF)
	if !Verify(data, 0, len(data), mid, 5, keyF) {
		t.Fatalf("not partitioned: %v mid=%d", data, mid)
	}
	if mid != 3 {
		t.Fatalf("mid = %d, want 3 (three elements < 5)", mid)
	}
}

func TestTwoWayAllBelow(t *testing.T) {
	data := []float64{1, 2, 3}
	mid := TwoWay(data, 0, len(data), 10, keyF)
	if mid != 3 {
		t.Fatalf("mid = %d, want 3", mid)
	}
}

func TestTwoWayAllAboveOrEqual(t *testing.T) {
	data := []float64{10, 11, 12}
	mid := TwoWay(data, 0, len(data), 10, keyF)
	if mid != 0 {
		t.Fatalf("mid = %d, want 0", mid)
	}
}

func TestTwoWayEmptyRange(t *testing.T) {
	data := []float64{1, 2, 3}
	mid := TwoWay(data, 1, 1, 2, keyF)
	if mid != 1 {
		t.Fatalf("mid = %d, want 1", mid)
	}
}

func TestTwoWaySingleElement(t *testing.T) {
	data := []float64{5}
	if mid := TwoWay(data, 0, 1, 5, keyF); mid != 0 {
		t.Fatalf("pivot == elem: mid = %d, want 0", mid)
	}
	if mid := TwoWay(data, 0, 1, 6, keyF); mid != 1 {
		t.Fatalf("pivot > elem: mid = %d, want 1", mid)
	}
}

func TestTwoWaySubrangeOnly(t *testing.T) {
	data := []float64{100, 5, 1, 9, 3, -100}
	mid := TwoWay(data, 1, 5, 5, keyF)
	if !Verify(data, 1, 5, mid, 5, keyF) {
		t.Fatalf("not partitioned in subrange: %v", data)
	}
	if data[0] != 100 || data[5] != -100 {
		t.Fatalf("elements outside range touched: %v", data)
	}
}

func TestTwoWayDuplicates(t *testing.T) {
	data := []float64{3, 3, 3, 3}
	if mid := TwoWay(data, 0, 4, 3, keyF); mid != 0 {
		t.Fatalf("mid = %d, want 0 (>= pivot goes right)", mid)
	}
	data = []float64{3, 3, 3, 3}
	if mid := TwoWay(data, 0, 4, 3.5, keyF); mid != 4 {
		t.Fatalf("mid = %d, want 4", mid)
	}
}

func TestThreeWayBasic(t *testing.T) {
	data := []float64{9, 2, 7, 4, 1, 6, 3, 8, 5, 0}
	m1, m2 := ThreeWay(data, 0, len(data), 3, 7, keyF)
	for i := 0; i < m1; i++ {
		if data[i] >= 3 {
			t.Fatalf("left band violated at %d: %v", i, data)
		}
	}
	for i := m1; i < m2; i++ {
		if data[i] < 3 || data[i] >= 7 {
			t.Fatalf("middle band violated at %d: %v", i, data)
		}
	}
	for i := m2; i < len(data); i++ {
		if data[i] < 7 {
			t.Fatalf("right band violated at %d: %v", i, data)
		}
	}
	if m1 != 3 || m2 != 7 {
		t.Fatalf("m1,m2 = %d,%d, want 3,7", m1, m2)
	}
}

func TestThreeWayEqualBounds(t *testing.T) {
	data := []float64{5, 1, 9, 3, 7}
	m1, m2 := ThreeWay(data, 0, len(data), 5, 5, keyF)
	if m1 != m2 {
		t.Fatalf("equal bounds should give empty middle band: m1=%d m2=%d", m1, m2)
	}
}

func TestTwoWayInt64(t *testing.T) {
	type entry struct{ code int64 }
	data := []entry{{50}, {10}, {90}, {30}, {70}}
	mid := TwoWayInt64(data, 0, len(data), 50, func(e *entry) int64 { return e.code })
	for i := 0; i < mid; i++ {
		if data[i].code >= 50 {
			t.Fatalf("left band violated: %v", data)
		}
	}
	for i := mid; i < len(data); i++ {
		if data[i].code < 50 {
			t.Fatalf("right band violated: %v", data)
		}
	}
}

func TestVerifyRejectsBadMid(t *testing.T) {
	data := []float64{1, 2}
	if Verify(data, 0, 2, 3, 1.5, keyF) {
		t.Fatal("Verify should reject out-of-range mid")
	}
	if Verify(data, 0, 2, 0, 1.5, keyF) {
		t.Fatal("Verify should reject mid=0 when data[0] < pivot")
	}
}

// Property: TwoWay preserves the multiset of elements and produces a valid
// partition for arbitrary inputs and pivots.
func TestTwoWayProperty(t *testing.T) {
	f := func(vals []float64, pivot float64) bool {
		orig := append([]float64(nil), vals...)
		mid := TwoWay(vals, 0, len(vals), pivot, keyF)
		if !Verify(vals, 0, len(vals), mid, pivot, keyF) {
			return false
		}
		sort.Float64s(orig)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for i := range orig {
			if orig[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ThreeWay's crack positions equal the counts a sequential scan
// would produce, for random data.
func TestThreeWayCountsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(200)
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(rng.Intn(50))
		}
		low := float64(rng.Intn(50))
		high := low + float64(rng.Intn(20))
		var below, mid int
		for _, v := range data {
			if v < low {
				below++
			} else if v < high {
				mid++
			}
		}
		m1, m2 := ThreeWay(data, 0, n, low, high, keyF)
		if m1 != below || m2 != below+mid {
			t.Fatalf("counts mismatch: m1=%d m2=%d want %d %d", m1, m2, below, below+mid)
		}
	}
}
