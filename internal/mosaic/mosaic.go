// Package mosaic implements Mosaic, the space-oriented incremental baseline
// of the QUASII paper (Sec. 3.2): a main-memory adaptation of Space Odyssey's
// incremental strategy. Mosaic builds an octree top-down as a side effect of
// querying — every query splits each overlapping leaf one level deeper
// (re-assigning the leaf's objects to the eight new octants) until the leaf
// meets the capacity threshold or the maximum depth.
//
// The top-down strategy converges quickly but re-partitions data in
// frequently queried areas multiple times, which is exactly the overhead the
// paper measures against QUASII's nested reorganization. Object assignment is
// by center with query extension, inheriting the space-oriented penalties of
// Sec. 6.2.
package mosaic

import (
	"repro/internal/geom"
	"repro/internal/octree"
)

// Config controls Mosaic's refinement.
type Config struct {
	// Capacity is the leaf size below which a leaf is final. Values < 1 mean
	// octree.DefaultCapacity (60, matching the paper's node capacity).
	Capacity int
	// MaxDepth bounds the octree depth (2^depth cells per dimension; the
	// paper's grid counterpart uses 100-220 cells per dimension, i.e. depth
	// 7-8). Values < 1 mean octree.DefaultMaxDepth.
	MaxDepth int
	// Universe is the root cube. Empty means derived from the data.
	Universe geom.Box
}

// Stats counts the cumulative work done by the index.
type Stats struct {
	Queries     int
	Splits      int   // leaf splits performed
	Reassigned  int64 // objects redistributed by splits
	ObjsTested  int64 // objects tested for intersection
	LeavesFinal int   // leaves that reached capacity or max depth
}

// Index is the Mosaic incremental octree.
type Index struct {
	data     []geom.Object
	root     octree.Node
	capacity int
	maxDepth int
	maxExt   geom.Point
	stats    Stats
}

// New prepares a Mosaic index over data. Construction is O(n): all objects
// start in the root cell; every split happens during queries.
func New(data []geom.Object, cfg Config) *Index {
	if cfg.Capacity < 1 {
		cfg.Capacity = octree.DefaultCapacity
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = octree.DefaultMaxDepth
	}
	if cfg.Universe.IsEmpty() || cfg.Universe.Volume() == 0 {
		u := geom.MBB(data)
		if u.IsEmpty() {
			u = geom.Box{Max: geom.Point{1, 1, 1}}
		}
		cfg.Universe = u
	}
	ix := &Index{
		data:     data,
		capacity: cfg.Capacity,
		maxDepth: cfg.MaxDepth,
		maxExt:   geom.MaxExtents(data),
	}
	ix.root = octree.Node{Box: cfg.Universe}
	ix.root.Objs = make([]int32, len(data))
	for i := range data {
		ix.root.Objs[i] = int32(i)
	}
	return ix
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return len(ix.data) }

// Stats returns a snapshot of the cumulative work counters.
func (ix *Index) Stats() Stats { return ix.stats }

// Query appends the IDs of all objects intersecting q to out. As a side
// effect, every leaf overlapping the (extended) query that still exceeds the
// capacity is split one level deeper — Mosaic's incremental step.
func (ix *Index) Query(q geom.Box, out []int32) []int32 {
	ix.stats.Queries++
	if q.IsEmpty() || len(ix.data) == 0 {
		return out
	}
	search := octree.Extended(q, ix.maxExt)
	return ix.query(&ix.root, q, search, out)
}

func (ix *Index) query(n *octree.Node, q, search geom.Box, out []int32) []int32 {
	if !n.Box.Intersects(search) {
		return out
	}
	if n.IsLeaf() {
		// The incremental step: split an overlapping, oversized leaf one
		// level deeper. Leaves created by the current query (same Gen) are
		// not split again — Mosaic refines one level per query (Fig. 2).
		if len(n.Objs) > ix.capacity && n.Depth < ix.maxDepth && n.Gen != ix.stats.Queries {
			ix.stats.Splits++
			ix.stats.Reassigned += int64(len(n.Objs))
			n.Gen = ix.stats.Queries
			n.Split(ix.data)
			// Fall through to the children below.
		} else {
			ix.stats.ObjsTested += int64(len(n.Objs))
			for _, idx := range n.Objs {
				if ix.data[idx].Intersects(q) {
					out = append(out, ix.data[idx].ID)
				}
			}
			return out
		}
	}
	for i := range n.Children {
		out = ix.query(&n.Children[i], q, search, out)
	}
	return out
}

// Leaves returns the current number of leaf cells (a convergence proxy).
func (ix *Index) Leaves() int {
	var count func(n *octree.Node) int
	count = func(n *octree.Node) int {
		if n.IsLeaf() {
			return 1
		}
		total := 0
		for i := range n.Children {
			total += count(&n.Children[i])
		}
		return total
	}
	return count(&ix.root)
}

// CheckInvariants verifies that every object lives in exactly one leaf.
func (ix *Index) CheckInvariants() error {
	seen := make(map[int32]bool, len(ix.data))
	var walk func(n *octree.Node) error
	walk = func(n *octree.Node) error {
		if n.IsLeaf() {
			for _, idx := range n.Objs {
				if seen[idx] {
					return errDup
				}
				seen[idx] = true
			}
			return nil
		}
		if len(n.Objs) != 0 {
			return errInternalObjs
		}
		for i := range n.Children {
			if err := walk(&n.Children[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(&ix.root); err != nil {
		return err
	}
	if len(seen) != len(ix.data) {
		return errLost
	}
	return nil
}

type mosaicError string

func (e mosaicError) Error() string { return "mosaic: " + string(e) }

var (
	errDup          = mosaicError("object assigned to multiple leaves")
	errInternalObjs = mosaicError("internal node holds objects")
	errLost         = mosaicError("object lost from the tree")
)
