package mosaic

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmpty(t *testing.T) {
	ix := New(nil, Config{})
	if res := ix.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestMatchesScanOverSequence(t *testing.T) {
	data := dataset.Uniform(8000, 111)
	oracle := scan.New(data)
	ix := New(data, Config{Capacity: 32, Universe: dataset.Universe()})
	for qi, q := range workload.Uniform(dataset.Universe(), 120, 1e-3, 112) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
		if qi%40 == 0 {
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after query %d: %v", qi, err)
			}
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesScanClustered(t *testing.T) {
	data := dataset.Neuro(6000, 113, dataset.NeuroConfig{})
	oracle := scan.New(data)
	ix := New(data, Config{Capacity: 32, Universe: dataset.Universe()})
	for qi, q := range workload.ClusteredOn(dataset.Universe(), data, 4, 30, 1e-4, 200, 114) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestMatchesScanLargeObjects(t *testing.T) {
	data := dataset.RandomBoxes(1500, 115, dataset.Universe())
	oracle := scan.New(data)
	ix := New(data, Config{Capacity: 16, Universe: dataset.Universe()})
	for qi, q := range workload.Uniform(dataset.Universe(), 50, 1e-3, 116) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestIncrementalSplitting(t *testing.T) {
	data := dataset.Uniform(20000, 117)
	ix := New(data, Config{Capacity: 60, Universe: dataset.Universe()})
	if ix.Leaves() != 1 {
		t.Fatalf("fresh index should have a single leaf, got %d", ix.Leaves())
	}
	q := workload.Uniform(dataset.Universe(), 1, 1e-3, 118)[0]
	ix.Query(q, nil)
	if ix.Leaves() == 1 {
		t.Fatal("query should have split the root")
	}
	st := ix.Stats()
	if st.Splits == 0 || st.Reassigned == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

func TestRepeatedQueriesConverge(t *testing.T) {
	// Repeating one query must eventually stop splitting (leaf count stable).
	data := dataset.Uniform(20000, 119)
	ix := New(data, Config{Capacity: 60, MaxDepth: 6, Universe: dataset.Universe()})
	q := workload.Uniform(dataset.Universe(), 1, 1e-3, 120)[0]
	var prevLeaves int
	for i := 0; i < 20; i++ {
		ix.Query(q, nil)
		leaves := ix.Leaves()
		if i > 10 && leaves != prevLeaves {
			t.Fatalf("still splitting at iteration %d: %d -> %d leaves", i, prevLeaves, leaves)
		}
		prevLeaves = leaves
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTopDownRepartitionsMultipleTimes(t *testing.T) {
	// The paper's criticism: objects in frequently queried areas are
	// reassigned multiple times. Reassigned must exceed the dataset size
	// after enough queries in one region.
	data := dataset.Uniform(30000, 121)
	ix := New(data, Config{Capacity: 30, MaxDepth: 8, Universe: dataset.Universe()})
	queries := workload.Clustered(dataset.Universe(), 1, 50, 1e-2, 100, 122)
	for _, q := range queries {
		ix.Query(q, nil)
	}
	if st := ix.Stats(); st.Reassigned <= int64(len(data)) {
		t.Fatalf("expected repeated repartitioning, reassigned=%d n=%d", st.Reassigned, len(data))
	}
}

func TestDegenerateDuplicateCenters(t *testing.T) {
	b := geom.BoxAt(geom.Point{100, 100, 100}, 2)
	data := make([]geom.Object, 300)
	for i := range data {
		data[i] = geom.Object{Box: b, ID: int32(i)}
	}
	ix := New(data, Config{Capacity: 4, MaxDepth: 4, Universe: dataset.Universe()})
	for i := 0; i < 5; i++ {
		res := ix.Query(geom.BoxAt(geom.Point{100, 100, 100}, 4), nil)
		if len(res) != 300 {
			t.Fatalf("iteration %d: got %d of 300", i, len(res))
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLen(t *testing.T) {
	ix := New(dataset.Uniform(123, 130), Config{Universe: dataset.Universe()})
	if ix.Len() != 123 {
		t.Fatalf("Len = %d, want 123", ix.Len())
	}
}
