// Columnar lane serialization: the on-disk half of the v2 snapshot format.
// A table's seven lanes are written directly — length-prefixed row count,
// then each lane as raw little-endian machine words — so persistence streams
// the same contiguous memory the query kernels run over, with no
// materialization into an array-of-structs and no per-row encoding overhead.
// A trailing CRC-32C over all lane bytes catches bit rot and truncation.

package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/geom"
)

// ioChunkRows is the number of rows encoded per buffered write. 4096 rows of
// one float64 lane is a 32 KiB buffer — large enough to amortize the Write
// calls, small enough to stay cache-resident.
const ioChunkRows = 4096

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteLanes serializes the table's rows to w: a uint64 row count, the six
// coordinate lanes (Min[0..Dims), then Max[0..Dims)) as raw little-endian
// float64 words, the ID lane as little-endian int32 words, and a trailing
// CRC-32C over every lane byte. No geom.Object is materialized.
func (t *Table) WriteLanes(w io.Writer) error {
	var hdr [8]byte
	n := t.Len()
	binary.LittleEndian.PutUint64(hdr[:], uint64(n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.New(crcTable)
	mw := io.MultiWriter(w, crc)
	var buf [8 * ioChunkRows]byte
	for d := 0; d < geom.Dims; d++ {
		if err := writeF64Lane(mw, t.Min[d], buf[:]); err != nil {
			return err
		}
	}
	for d := 0; d < geom.Dims; d++ {
		if err := writeF64Lane(mw, t.Max[d], buf[:]); err != nil {
			return err
		}
	}
	if err := writeI32Lane(mw, t.ID, buf[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
	_, err := w.Write(buf[:4])
	return err
}

// ReadLanes deserializes a table previously written with WriteLanes,
// overwriting t's rows (lanes are reused when large enough). maxRows bounds
// the decoded row count so a corrupt or hostile length prefix cannot force
// an enormous allocation: a non-negative maxRows is an inclusive ceiling
// (0 admits only an empty table); pass a negative value for no bound.
func (t *Table) ReadLanes(r io.Reader, maxRows int) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("reading row count: %w", err)
	}
	n64 := binary.LittleEndian.Uint64(hdr[:])
	if n64 > uint64(math.MaxInt32) || (maxRows >= 0 && n64 > uint64(maxRows)) {
		return fmt.Errorf("row count %d out of range", n64)
	}
	n := int(n64)
	t.resize(n)
	crc := crc32.New(crcTable)
	tr := io.TeeReader(r, crc)
	var buf [8 * ioChunkRows]byte
	for d := 0; d < geom.Dims; d++ {
		if err := readF64Lane(tr, t.Min[d], buf[:]); err != nil {
			return fmt.Errorf("reading min lane %d: %w", d, err)
		}
	}
	for d := 0; d < geom.Dims; d++ {
		if err := readF64Lane(tr, t.Max[d], buf[:]); err != nil {
			return fmt.Errorf("reading max lane %d: %w", d, err)
		}
	}
	if err := readI32Lane(tr, t.ID, buf[:]); err != nil {
		return fmt.Errorf("reading id lane: %w", err)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return fmt.Errorf("reading lane checksum: %w", err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(buf[:4]); got != want {
		return fmt.Errorf("lane checksum mismatch: computed %08x, stored %08x", got, want)
	}
	return nil
}

// resize sets the table to n rows, reusing lane capacity like Reload.
func (t *Table) resize(n int) {
	fits := cap(t.ID) >= n
	for d := 0; d < geom.Dims && fits; d++ {
		fits = cap(t.Min[d]) >= n && cap(t.Max[d]) >= n
	}
	if !fits {
		for d := 0; d < geom.Dims; d++ {
			t.Min[d] = make([]float64, n)
			t.Max[d] = make([]float64, n)
		}
		t.ID = make([]int32, n)
		return
	}
	for d := 0; d < geom.Dims; d++ {
		t.Min[d] = t.Min[d][:n]
		t.Max[d] = t.Max[d][:n]
	}
	t.ID = t.ID[:n]
}

func writeF64Lane(w io.Writer, lane []float64, buf []byte) error {
	for len(lane) > 0 {
		c := len(lane)
		if c > ioChunkRows {
			c = ioChunkRows
		}
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(lane[i]))
		}
		if _, err := w.Write(buf[:8*c]); err != nil {
			return err
		}
		lane = lane[c:]
	}
	return nil
}

func readF64Lane(r io.Reader, lane []float64, buf []byte) error {
	for len(lane) > 0 {
		c := len(lane)
		if c > ioChunkRows {
			c = ioChunkRows
		}
		if _, err := io.ReadFull(r, buf[:8*c]); err != nil {
			return err
		}
		for i := 0; i < c; i++ {
			lane[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		lane = lane[c:]
	}
	return nil
}

func writeI32Lane(w io.Writer, lane []int32, buf []byte) error {
	for len(lane) > 0 {
		c := len(lane)
		if c > 2*ioChunkRows {
			c = 2 * ioChunkRows
		}
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(lane[i]))
		}
		if _, err := w.Write(buf[:4*c]); err != nil {
			return err
		}
		lane = lane[c:]
	}
	return nil
}

func readI32Lane(r io.Reader, lane []int32, buf []byte) error {
	for len(lane) > 0 {
		c := len(lane)
		if c > 2*ioChunkRows {
			c = 2 * ioChunkRows
		}
		if _, err := io.ReadFull(r, buf[:4*c]); err != nil {
			return err
		}
		for i := 0; i < c; i++ {
			lane[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		lane = lane[c:]
	}
	return nil
}
