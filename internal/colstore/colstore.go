// Package colstore is the columnar (structure-of-arrays) storage layout
// behind the QUASII hot path. Objects live as seven contiguous lanes — one
// []float64 per dimension for the lower and upper coordinates plus an
// []int32 identifier lane — instead of an array of 56-byte structs.
//
// The layout exists for the two kernels every query runs:
//
//   - Partition (cracking) streams one 8-byte key lane instead of striding
//     through whole structs, so the comparison scan is pure sequential
//     memory traffic and the per-band bounds tracking reads exactly the two
//     lanes it needs.
//   - ScanIntersect (the bottom-level interval filter) tests each lane
//     against the query interval with branch-light compare-and-mask code
//     over contiguous memory the compiler keeps in cache.
//
// The AoS geom.Object API remains the public surface of the index packages;
// a Table is built from objects once at construction and materialized back
// only for persistence.
package colstore

import (
	"math"

	"repro/internal/geom"
)

// KeyMode selects the representative coordinate of a row in a dimension,
// mirroring core.AssignMode (lower corner, center, upper corner). The
// numeric values must stay aligned with core's constants.
type KeyMode uint8

const (
	// KeyLower uses the row's lower coordinate (the paper's default).
	KeyLower KeyMode = iota
	// KeyCenter uses the row's center coordinate.
	KeyCenter
	// KeyUpper uses the row's upper coordinate.
	KeyUpper
)

// Bounds tracks the exact extent of a row band in one dimension: the
// minimum lower coordinate and the maximum upper coordinate of its rows.
type Bounds struct {
	Min, Max float64
}

// NewBounds returns the identity bounds (empty band).
func NewBounds() Bounds { return Bounds{Min: math.Inf(1), Max: math.Inf(-1)} }

// Table stores n spatial objects as structure-of-arrays: per-dimension
// lower/upper coordinate lanes plus an ID lane, all of equal length. The
// lanes are exported for zero-overhead access from the index hot loops;
// mutating their lengths directly would corrupt the table — use the
// methods.
type Table struct {
	Min [geom.Dims][]float64
	Max [geom.Dims][]float64
	ID  []int32

	// scratch backs the branch-free partition kernel's misplaced-row index
	// vectors. Grown on demand to the largest range partitioned so far and
	// reused across cracks; never visible outside Partition.
	scratch []int32
}

// FromObjects ingests objs into a fresh table. The input slice is not
// retained.
func FromObjects(objs []geom.Object) *Table {
	t := &Table{}
	t.Reload(objs)
	return t
}

// Reload overwrites the table's rows with objs, reusing the existing lanes
// when they are large enough.
func (t *Table) Reload(objs []geom.Object) {
	n := len(objs)
	// Lane capacities can diverge after AppendObjects (append's size-class
	// rounding differs between float64 and int32 lanes), so every lane must
	// clear the bar before the reuse branch is taken.
	fits := cap(t.ID) >= n
	for d := 0; d < geom.Dims && fits; d++ {
		fits = cap(t.Min[d]) >= n && cap(t.Max[d]) >= n
	}
	if !fits {
		for d := 0; d < geom.Dims; d++ {
			t.Min[d] = make([]float64, n)
			t.Max[d] = make([]float64, n)
		}
		t.ID = make([]int32, n)
	} else {
		for d := 0; d < geom.Dims; d++ {
			t.Min[d] = t.Min[d][:n]
			t.Max[d] = t.Max[d][:n]
		}
		t.ID = t.ID[:n]
	}
	for d := 0; d < geom.Dims; d++ {
		min, max := t.Min[d], t.Max[d]
		for i := range objs {
			min[i] = objs[i].Min[d]
			max[i] = objs[i].Max[d]
		}
	}
	for i := range objs {
		t.ID[i] = objs[i].ID
	}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.ID) }

// BoxOf reconstructs row i's bounding box.
func (t *Table) BoxOf(i int) geom.Box {
	var b geom.Box
	for d := 0; d < geom.Dims; d++ {
		b.Min[d] = t.Min[d][i]
		b.Max[d] = t.Max[d][i]
	}
	return b
}

// ObjectAt reconstructs row i as a geom.Object.
func (t *Table) ObjectAt(i int) geom.Object {
	return geom.Object{Box: t.BoxOf(i), ID: t.ID[i]}
}

// Objects materializes every row, appending to out (pass nil for a fresh
// slice). Used by persistence and debugging — never on the query path.
func (t *Table) Objects(out []geom.Object) []geom.Object {
	for i := 0; i < t.Len(); i++ {
		out = append(out, t.ObjectAt(i))
	}
	return out
}

// AppendObjects adds rows for objs at the end of the table.
func (t *Table) AppendObjects(objs []geom.Object) {
	for i := range objs {
		for d := 0; d < geom.Dims; d++ {
			t.Min[d] = append(t.Min[d], objs[i].Min[d])
			t.Max[d] = append(t.Max[d], objs[i].Max[d])
		}
		t.ID = append(t.ID, objs[i].ID)
	}
}

// Truncate shrinks the table to its first n rows.
func (t *Table) Truncate(n int) {
	for d := 0; d < geom.Dims; d++ {
		t.Min[d] = t.Min[d][:n]
		t.Max[d] = t.Max[d][:n]
	}
	t.ID = t.ID[:n]
}

// Compact removes every row whose ID is in dead, preserving the order of
// the survivors, and returns the new length.
func (t *Table) Compact(dead map[int32]struct{}) int {
	if len(dead) == 0 {
		return t.Len()
	}
	w := 0
	for i := 0; i < t.Len(); i++ {
		if _, gone := dead[t.ID[i]]; gone {
			continue
		}
		if w != i {
			for d := 0; d < geom.Dims; d++ {
				t.Min[d][w] = t.Min[d][i]
				t.Max[d][w] = t.Max[d][i]
			}
			t.ID[w] = t.ID[i]
		}
		w++
	}
	t.Truncate(w)
	return w
}

// Swap exchanges rows i and j across all seven lanes.
func (t *Table) Swap(i, j int) {
	for d := 0; d < geom.Dims; d++ {
		t.Min[d][i], t.Min[d][j] = t.Min[d][j], t.Min[d][i]
		t.Max[d][i], t.Max[d][j] = t.Max[d][j], t.Max[d][i]
	}
	t.ID[i], t.ID[j] = t.ID[j], t.ID[i]
}

// MBB returns the minimum bounding box of rows [lo, hi). It runs on every
// slice finalization, so the reductions use the halved-chain lane kernels.
func (t *Table) MBB(lo, hi int) geom.Box {
	box := geom.EmptyBox()
	if lo >= hi {
		return box
	}
	for d := 0; d < geom.Dims; d++ {
		box.Min[d] = minLane(t.Min[d][lo:hi])
		box.Max[d] = maxLane(t.Max[d][lo:hi])
	}
	return box
}

// LaneBounds returns the minimum lower and maximum upper coordinate of
// dimension d over rows [lo, hi) — one dimension's stripe of MBB, for
// callers that already know the other dimensions' bounds.
func (t *Table) LaneBounds(d, lo, hi int) (float64, float64) {
	if lo >= hi {
		return math.Inf(1), math.Inf(-1)
	}
	return minLane(t.Min[d][lo:hi]), maxLane(t.Max[d][lo:hi])
}

// MaxExtents returns, per dimension, the maximum extent (Max-Min) over all
// rows. Query-extension techniques need it to bound how far a row's
// representative coordinate can sit from a query it intersects.
func (t *Table) MaxExtents() geom.Point {
	var ext geom.Point
	for d := 0; d < geom.Dims; d++ {
		min, max := t.Min[d], t.Max[d]
		var e float64
		for k := range min {
			if v := max[k] - min[k]; v > e {
				e = v
			}
		}
		ext[d] = e
	}
	return ext
}

// key returns the representative coordinate of row i in dimension dim.
func (t *Table) key(i, dim int, mode KeyMode) float64 {
	switch mode {
	case KeyCenter:
		return (t.Min[dim][i] + t.Max[dim][i]) / 2
	case KeyUpper:
		return t.Max[dim][i]
	default:
		return t.Min[dim][i]
	}
}

// KeyRange returns the minimum and maximum representative coordinate of
// rows [lo, hi) in dimension dim.
func (t *Table) KeyRange(lo, hi, dim int, mode KeyMode) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	if lo >= hi {
		return min, max
	}
	if mode == KeyLower {
		return minMaxLane(t.Min[dim][lo:hi])
	}
	for i := lo; i < hi; i++ {
		v := t.key(i, dim, mode)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Partition is the cracking kernel: it reorders rows [lo, hi) so rows whose
// representative coordinate in dim is < pivot precede the rest, returning
// the split position together with the exact bounds of both bands in dim.
// Bounds are tracked in the same pass — each row's final side is known
// either when a scan pointer passes it or when it is swapped.
func (t *Table) Partition(lo, hi, dim int, pivot float64, mode KeyMode) (mid int, left, right Bounds) {
	if mode == KeyLower {
		return t.partitionLower(lo, hi, dim, pivot)
	}
	return t.partitionGeneric(lo, hi, dim, pivot, mode)
}

// scalarCutoff is the range size below which the branch-free kernel's
// multi-pass structure costs more than its mispredict savings; small ranges
// (the common case once the hierarchy has deepened) use the scalar
// two-pointer kernel instead.
const scalarCutoff = 128

// partitionLower is the specialized kernel for lower-corner assignment (the
// paper's default): the key lane IS the Min lane, so every pass streams
// contiguous []float64 memory. Large ranges use a branch-free "fancy scan"
// (cracking-literature style): the classic two-pointer loop exits on a
// data-dependent comparison that is a coin flip on unsorted data, so the
// branch predictor misses every other row; instead we (1) count the left
// band branchlessly, (2) collect the misplaced-row indices of both bands
// with unconditional stores and flag-increment cursors, (3) swap exactly
// the misplaced pairs across all seven lanes with no conditionals, and
// (4) reduce the band bounds with unrolled branchless min/max passes over
// the two now-contiguous bands.
func (t *Table) partitionLower(lo, hi, dim int, pivot float64) (mid int, left, right Bounds) {
	key := t.Min[dim]
	up := t.Max[dim]
	if hi-lo <= scalarCutoff {
		return t.partitionLowerScalar(lo, hi, dim, pivot)
	}
	// Pass 1: size the left band. The flag sum is branchless and the range
	// loop over the key segment is bounds-check free.
	cnt := 0
	for _, v := range key[lo:hi] {
		cnt += b2i(v < pivot)
	}
	mid = lo + cnt

	// One-sided outcomes: the whole range is one band; two plain reductions
	// deliver its bounds.
	if mid == hi || mid == lo {
		bd := Bounds{Min: minLane(key[lo:hi]), Max: maxLane(up[lo:hi])}
		if mid == hi {
			return mid, bd, NewBounds()
		}
		return mid, NewBounds(), bd
	}

	if cap(t.scratch) < hi-lo {
		t.scratch = make([]int32, hi-lo)
	}
	posInfBits := math.Float64bits(math.Inf(1))
	negInfBits := math.Float64bits(math.Inf(-1))

	// Pass 2a over [lo, mid): collect the misplaced rows (key belongs
	// right) with an unconditional store + flag-increment cursor, and fold
	// the staying rows into the left band's bounds. The fold is branchless:
	// the comparison flag widens to a bit mask that routes either the
	// coordinate or the identity (±Inf) into the MINSD/MAXSD chain, so the
	// loop carries no data-dependent branch; the movers' contributions are
	// folded later, inside the swap loop, where their values are already in
	// registers.
	a := t.scratch[: mid-lo : mid-lo]
	na := 0
	lmin0, lmin1 := math.Inf(1), math.Inf(1)
	lmax0, lmax1 := math.Inf(-1), math.Inf(-1)
	{
		ks := key[lo:mid]
		us := up[lo:mid][:len(ks)]
		o := 0
		for ; o+1 < len(ks); o += 2 {
			f0 := b2i(ks[o] < pivot) // 1 = stays left
			m0 := -uint64(f0)
			lmin0 = min(lmin0, math.Float64frombits(math.Float64bits(ks[o])&m0|posInfBits&^m0))
			lmax0 = max(lmax0, math.Float64frombits(math.Float64bits(us[o])&m0|negInfBits&^m0))
			a[na] = int32(lo + o)
			na += 1 - f0
			f1 := b2i(ks[o+1] < pivot)
			m1 := -uint64(f1)
			lmin1 = min(lmin1, math.Float64frombits(math.Float64bits(ks[o+1])&m1|posInfBits&^m1))
			lmax1 = max(lmax1, math.Float64frombits(math.Float64bits(us[o+1])&m1|negInfBits&^m1))
			a[na] = int32(lo + o + 1)
			na += 1 - f1
		}
		if o < len(ks) {
			f0 := b2i(ks[o] < pivot)
			m0 := -uint64(f0)
			lmin0 = min(lmin0, math.Float64frombits(math.Float64bits(ks[o])&m0|posInfBits&^m0))
			lmax0 = max(lmax0, math.Float64frombits(math.Float64bits(us[o])&m0|negInfBits&^m0))
			a[na] = int32(lo + o)
			na += 1 - f0
		}
	}
	lmin, lmax := min(lmin0, lmin1), max(lmax0, lmax1)

	// Pass 2b over [mid, hi): collect the rows moving left and fold the
	// staying rows into the right band's bounds, same masking scheme.
	b := t.scratch[mid-lo : hi-lo]
	nb := 0
	rmin0, rmin1 := math.Inf(1), math.Inf(1)
	rmax0, rmax1 := math.Inf(-1), math.Inf(-1)
	{
		ks := key[mid:hi]
		us := up[mid:hi][:len(ks)]
		o := 0
		for ; o+1 < len(ks); o += 2 {
			f0 := b2i(ks[o] < pivot) // 1 = moves left
			m0 := -uint64(f0)
			rmin0 = min(rmin0, math.Float64frombits(math.Float64bits(ks[o])&^m0|posInfBits&m0))
			rmax0 = max(rmax0, math.Float64frombits(math.Float64bits(us[o])&^m0|negInfBits&m0))
			b[nb] = int32(mid + o)
			nb += f0
			f1 := b2i(ks[o+1] < pivot)
			m1 := -uint64(f1)
			rmin1 = min(rmin1, math.Float64frombits(math.Float64bits(ks[o+1])&^m1|posInfBits&m1))
			rmax1 = max(rmax1, math.Float64frombits(math.Float64bits(us[o+1])&^m1|negInfBits&m1))
			b[nb] = int32(mid + o + 1)
			nb += f1
		}
		if o < len(ks) {
			f0 := b2i(ks[o] < pivot)
			m0 := -uint64(f0)
			rmin0 = min(rmin0, math.Float64frombits(math.Float64bits(ks[o])&^m0|posInfBits&m0))
			rmax0 = max(rmax0, math.Float64frombits(math.Float64bits(us[o])&^m0|negInfBits&m0))
			b[nb] = int32(mid + o)
			nb += f0
		}
	}
	rmin, rmax := min(rmin0, rmin1), max(rmax0, rmax1)

	// Pass 3: swap the misplaced pairs across all seven lanes,
	// unconditionally (the counts on both sides are equal, and any pairing
	// works — both index sequences are monotone, so every lane's cache
	// lines are touched in order). The movers' values are already in
	// registers for the swap, so their contributions to the destination
	// band's bounds fold in for free.
	d1, d2 := otherDims(dim)
	min1, max1 := t.Min[d1], t.Max[d1]
	min2, max2 := t.Min[d2], t.Max[d2]
	ids := t.ID
	for p := 0; p < na; p++ {
		x, y := a[p], b[p]
		kx, ky := key[x], key[y]
		ux, uy := up[x], up[y]
		rmin = min(rmin, kx)
		rmax = max(rmax, ux)
		lmin = min(lmin, ky)
		lmax = max(lmax, uy)
		key[x], key[y] = ky, kx
		up[x], up[y] = uy, ux
		min1[x], min1[y] = min1[y], min1[x]
		max1[x], max1[y] = max1[y], max1[x]
		min2[x], min2[y] = min2[y], min2[x]
		max2[x], max2[y] = max2[y], max2[x]
		ids[x], ids[y] = ids[y], ids[x]
	}
	return mid, Bounds{Min: lmin, Max: lmax}, Bounds{Min: rmin, Max: rmax}
}

// minLane reduces the minimum of a lane segment with a halved MINSD chain.
func minLane(lane []float64) float64 {
	mn0, mn1 := math.Inf(1), math.Inf(1)
	k := 0
	for ; k+1 < len(lane); k += 2 {
		mn0 = min(mn0, lane[k])
		mn1 = min(mn1, lane[k+1])
	}
	if k < len(lane) {
		mn0 = min(mn0, lane[k])
	}
	return min(mn0, mn1)
}

// maxLane reduces the maximum of a lane segment with a halved MAXSD chain.
func maxLane(lane []float64) float64 {
	mx0, mx1 := math.Inf(-1), math.Inf(-1)
	k := 0
	for ; k+1 < len(lane); k += 2 {
		mx0 = max(mx0, lane[k])
		mx1 = max(mx1, lane[k+1])
	}
	if k < len(lane) {
		mx0 = max(mx0, lane[k])
	}
	return max(mx0, mx1)
}

// partitionLowerScalar is the two-pointer kernel used for small ranges,
// with all seven lanes hoisted into locals so swaps run inline and the
// bounds tracking lowered to branchless MINSD/MAXSD via the builtin
// min/max.
func (t *Table) partitionLowerScalar(lo, hi, dim int, pivot float64) (mid int, left, right Bounds) {
	d1, d2 := otherDims(dim)
	key := t.Min[dim]
	up := t.Max[dim]
	min1, max1 := t.Min[d1], t.Max[d1]
	min2, max2 := t.Min[d2], t.Max[d2]
	ids := t.ID
	left, right = NewBounds(), NewBounds()
	i, j := lo, hi-1
	for i <= j {
		for i <= j && key[i] < pivot {
			left.Min = min(left.Min, key[i])
			left.Max = max(left.Max, up[i])
			i++
		}
		for i <= j && key[j] >= pivot {
			right.Min = min(right.Min, key[j])
			right.Max = max(right.Max, up[j])
			j--
		}
		if i < j {
			key[i], key[j] = key[j], key[i]
			up[i], up[j] = up[j], up[i]
			min1[i], min1[j] = min1[j], min1[i]
			max1[i], max1[j] = max1[j], max1[i]
			min2[i], min2[j] = min2[j], min2[i]
			max2[i], max2[j] = max2[j], max2[i]
			ids[i], ids[j] = ids[j], ids[i]
			left.Min = min(left.Min, key[i])
			left.Max = max(left.Max, up[i])
			right.Min = min(right.Min, key[j])
			right.Max = max(right.Max, up[j])
			i++
			j--
		}
	}
	return i, left, right
}

// minMaxLane reduces the minimum and maximum of one lane segment in a
// single traversal, two accumulator pairs per bound to halve the chains.
func minMaxLane(lane []float64) (float64, float64) {
	mn0, mn1 := math.Inf(1), math.Inf(1)
	mx0, mx1 := math.Inf(-1), math.Inf(-1)
	k := 0
	for ; k+1 < len(lane); k += 2 {
		mn0 = min(mn0, lane[k])
		mx0 = max(mx0, lane[k])
		mn1 = min(mn1, lane[k+1])
		mx1 = max(mx1, lane[k+1])
	}
	if k < len(lane) {
		mn0 = min(mn0, lane[k])
		mx0 = max(mx0, lane[k])
	}
	return min(mn0, mn1), max(mx0, mx1)
}

// b2i converts a comparison result to 0/1 without a branch.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// otherDims returns the two dimensions complementing dim (compile-time
// constant fan-out for Dims == 3).
func otherDims(dim int) (int, int) {
	switch dim {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	default:
		return 0, 1
	}
}

// partitionGeneric handles the ablation assignment modes (center/upper
// representative coordinates).
func (t *Table) partitionGeneric(lo, hi, dim int, pivot float64, mode KeyMode) (mid int, left, right Bounds) {
	min := t.Min[dim]
	max := t.Max[dim]
	left, right = NewBounds(), NewBounds()
	add := func(b *Bounds, k int) {
		if min[k] < b.Min {
			b.Min = min[k]
		}
		if max[k] > b.Max {
			b.Max = max[k]
		}
	}
	i, j := lo, hi-1
	for i <= j {
		for i <= j && t.key(i, dim, mode) < pivot {
			add(&left, i)
			i++
		}
		for i <= j && t.key(j, dim, mode) >= pivot {
			add(&right, j)
			j--
		}
		if i < j {
			t.Swap(i, j)
			add(&left, i)
			add(&right, j)
			i++
			j--
		}
	}
	return i, left, right
}

// ScanIntersect appends the positions of every row in [lo, hi) whose box
// intersects q. The test is branch-light: all six interval comparisons are
// evaluated unconditionally per row and combined with bitwise AND, so the
// loop runs over seven contiguous lanes with a single conditional append —
// no short-circuit branches for the predictor to miss.
func (t *Table) ScanIntersect(lo, hi int, q geom.Box, out []int32) []int32 {
	if lo >= hi {
		return out
	}
	min0 := t.Min[0][lo:hi]
	n := len(min0)
	max0 := t.Max[0][lo:hi][:n]
	min1 := t.Min[1][lo:hi][:n]
	max1 := t.Max[1][lo:hi][:n]
	min2 := t.Min[2][lo:hi][:n]
	max2 := t.Max[2][lo:hi][:n]
	qlo0, qhi0 := q.Min[0], q.Max[0]
	qlo1, qhi1 := q.Min[1], q.Max[1]
	qlo2, qhi2 := q.Min[2], q.Max[2]
	for k := range min0 {
		ok := b2i(min0[k] <= qhi0) & b2i(max0[k] >= qlo0) &
			b2i(min1[k] <= qhi1) & b2i(max1[k] >= qlo1) &
			b2i(min2[k] <= qhi2) & b2i(max2[k] >= qlo2)
		if ok != 0 {
			out = append(out, int32(lo+k))
		}
	}
	return out
}

// CountIntersect returns the number of rows in [lo, hi) whose box
// intersects q — ScanIntersect without the output vector, for count-only
// callers (shared-path Count) that want to stay allocation-free. The flag
// sum is fully branchless.
func (t *Table) CountIntersect(lo, hi int, q geom.Box) int {
	if lo >= hi {
		return 0
	}
	min0 := t.Min[0][lo:hi]
	n := len(min0)
	max0 := t.Max[0][lo:hi][:n]
	min1 := t.Min[1][lo:hi][:n]
	max1 := t.Max[1][lo:hi][:n]
	min2 := t.Min[2][lo:hi][:n]
	max2 := t.Max[2][lo:hi][:n]
	qlo0, qhi0 := q.Min[0], q.Max[0]
	qlo1, qhi1 := q.Min[1], q.Max[1]
	qlo2, qhi2 := q.Min[2], q.Max[2]
	cnt := 0
	for k := range min0 {
		cnt += b2i(min0[k] <= qhi0) & b2i(max0[k] >= qlo0) &
			b2i(min1[k] <= qhi1) & b2i(max1[k] >= qlo1) &
			b2i(min2[k] <= qhi2) & b2i(max2[k] >= qlo2)
	}
	return cnt
}

// MinDistSq returns the squared minimum distance between point p and row
// i's box (0 when p lies inside). Used by kNN candidate ranking.
func (t *Table) MinDistSq(i int, p geom.Point) float64 {
	var sum float64
	for d := 0; d < geom.Dims; d++ {
		switch {
		case p[d] < t.Min[d][i]:
			diff := t.Min[d][i] - p[d]
			sum += diff * diff
		case p[d] > t.Max[d][i]:
			diff := p[d] - t.Max[d][i]
			sum += diff * diff
		}
	}
	return sum
}
