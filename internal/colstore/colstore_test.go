package colstore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func randomObjects(n int, seed int64) []geom.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]geom.Object, n)
	for i := range objs {
		var min, max geom.Point
		for d := 0; d < geom.Dims; d++ {
			min[d] = rng.Float64() * 1000
			max[d] = min[d] + rng.Float64()*100
		}
		objs[i] = geom.Object{Box: geom.Box{Min: min, Max: max}, ID: int32(i)}
	}
	return objs
}

func TestRoundTrip(t *testing.T) {
	objs := randomObjects(500, 1)
	tab := FromObjects(objs)
	if tab.Len() != len(objs) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(objs))
	}
	back := tab.Objects(nil)
	for i := range objs {
		if back[i] != objs[i] {
			t.Fatalf("row %d: %+v != %+v", i, back[i], objs[i])
		}
		if tab.ObjectAt(i) != objs[i] {
			t.Fatalf("ObjectAt(%d) mismatch", i)
		}
	}
}

func TestMBBAndMaxExtentsMatchAoS(t *testing.T) {
	objs := randomObjects(300, 2)
	tab := FromObjects(objs)
	if got, want := tab.MBB(0, len(objs)), geom.MBB(objs); got != want {
		t.Fatalf("MBB = %v, want %v", got, want)
	}
	if got, want := tab.MBB(50, 120), geom.MBB(objs[50:120]); got != want {
		t.Fatalf("sub MBB = %v, want %v", got, want)
	}
	if got, want := tab.MaxExtents(), geom.MaxExtents(objs); got != want {
		t.Fatalf("MaxExtents = %v, want %v", got, want)
	}
	empty := FromObjects(nil)
	if !empty.MBB(0, 0).IsEmpty() {
		t.Fatal("empty MBB should be empty")
	}
}

func TestScanIntersectMatchesAoS(t *testing.T) {
	objs := dataset.Uniform(2000, 3)
	tab := FromObjects(objs)
	rng := rand.New(rand.NewSource(4))
	for qi := 0; qi < 50; qi++ {
		var a, b geom.Point
		for d := 0; d < geom.Dims; d++ {
			a[d] = rng.Float64() * dataset.UniverseSide
			b[d] = a[d] + rng.Float64()*dataset.UniverseSide/4
		}
		q := geom.Box{Min: a, Max: b}
		lo := rng.Intn(len(objs))
		hi := lo + rng.Intn(len(objs)-lo)
		got := tab.ScanIntersect(lo, hi, q, nil)
		var want []int32
		for j := lo; j < hi; j++ {
			if objs[j].Intersects(q) {
				want = append(want, int32(j))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %d [%d,%d): got %d hits, want %d", qi, lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d hit %d: %d != %d", qi, i, got[i], want[i])
			}
		}
	}
}

func TestPartitionAllModes(t *testing.T) {
	for _, mode := range []KeyMode{KeyLower, KeyCenter, KeyUpper} {
		objs := randomObjects(1000, 5+int64(mode))
		tab := FromObjects(objs)
		dim := 1
		pivot := 500.0
		mid, left, right := tab.Partition(0, tab.Len(), dim, pivot, mode)

		key := func(i int) float64 { return tab.key(i, dim, mode) }
		wantLeft, wantRight := NewBounds(), NewBounds()
		for i := 0; i < mid; i++ {
			if key(i) >= pivot {
				t.Fatalf("mode %d: row %d key %g >= pivot on left side", mode, i, key(i))
			}
			if tab.Min[dim][i] < wantLeft.Min {
				wantLeft.Min = tab.Min[dim][i]
			}
			if tab.Max[dim][i] > wantLeft.Max {
				wantLeft.Max = tab.Max[dim][i]
			}
		}
		for i := mid; i < tab.Len(); i++ {
			if key(i) < pivot {
				t.Fatalf("mode %d: row %d key %g < pivot on right side", mode, i, key(i))
			}
			if tab.Min[dim][i] < wantRight.Min {
				wantRight.Min = tab.Min[dim][i]
			}
			if tab.Max[dim][i] > wantRight.Max {
				wantRight.Max = tab.Max[dim][i]
			}
		}
		if left != wantLeft || right != wantRight {
			t.Fatalf("mode %d: bounds (%v, %v), want (%v, %v)", mode, left, right, wantLeft, wantRight)
		}

		// The partition is a permutation: every original row survives.
		seen := make(map[int32]bool, tab.Len())
		for i := 0; i < tab.Len(); i++ {
			seen[tab.ID[i]] = true
			if tab.ObjectAt(i).Box != objs[tab.ID[i]].Box {
				t.Fatalf("mode %d: row %d lanes desynced from ID", mode, i)
			}
		}
		if len(seen) != len(objs) {
			t.Fatalf("mode %d: %d distinct IDs after partition, want %d", mode, len(seen), len(objs))
		}
	}
}

func TestPartitionSubRange(t *testing.T) {
	objs := randomObjects(400, 9)
	tab := FromObjects(objs)
	before := tab.Objects(nil)
	lo, hi := 100, 300
	mid, _, _ := tab.Partition(lo, hi, 0, 500, KeyLower)
	if mid < lo || mid > hi {
		t.Fatalf("mid %d outside [%d,%d]", mid, lo, hi)
	}
	// Rows outside [lo,hi) are untouched.
	for i := 0; i < lo; i++ {
		if tab.ObjectAt(i) != before[i] {
			t.Fatalf("row %d before range was moved", i)
		}
	}
	for i := hi; i < tab.Len(); i++ {
		if tab.ObjectAt(i) != before[i] {
			t.Fatalf("row %d after range was moved", i)
		}
	}
}

func TestKeyRange(t *testing.T) {
	objs := randomObjects(200, 11)
	tab := FromObjects(objs)
	for _, mode := range []KeyMode{KeyLower, KeyCenter, KeyUpper} {
		min, max := tab.KeyRange(20, 180, 2, mode)
		wantMin, wantMax := math.Inf(1), math.Inf(-1)
		for i := 20; i < 180; i++ {
			v := tab.key(i, 2, mode)
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
		}
		if min != wantMin || max != wantMax {
			t.Fatalf("mode %d: KeyRange = (%g,%g), want (%g,%g)", mode, min, max, wantMin, wantMax)
		}
	}
}

func TestAppendCompactTruncate(t *testing.T) {
	objs := randomObjects(100, 13)
	tab := FromObjects(objs[:50])
	tab.AppendObjects(objs[50:])
	if tab.Len() != 100 {
		t.Fatalf("Len after append = %d", tab.Len())
	}
	dead := map[int32]struct{}{3: {}, 40: {}, 99: {}}
	n := tab.Compact(dead)
	if n != 97 || tab.Len() != 97 {
		t.Fatalf("Compact -> %d rows, want 97", n)
	}
	for i := 0; i < tab.Len(); i++ {
		if _, gone := dead[tab.ID[i]]; gone {
			t.Fatalf("dead ID %d survived compaction", tab.ID[i])
		}
	}
	// Survivor order is preserved.
	prev := int32(-1)
	for i := 0; i < tab.Len(); i++ {
		if tab.ID[i] <= prev {
			t.Fatalf("order not preserved at row %d", i)
		}
		prev = tab.ID[i]
	}
	tab.Truncate(10)
	if tab.Len() != 10 {
		t.Fatalf("Truncate -> %d rows", tab.Len())
	}
}

func TestReloadReusesLanes(t *testing.T) {
	big := randomObjects(1000, 17)
	tab := FromObjects(big)
	lane := &tab.Min[0][0]
	small := randomObjects(100, 19)
	tab.Reload(small)
	if tab.Len() != 100 {
		t.Fatalf("Len after reload = %d", tab.Len())
	}
	if &tab.Min[0][0] != lane {
		t.Fatal("Reload reallocated lanes despite sufficient capacity")
	}
	for i := range small {
		if tab.ObjectAt(i) != small[i] {
			t.Fatalf("row %d wrong after reload", i)
		}
	}
}

func TestMinDistSq(t *testing.T) {
	objs := randomObjects(100, 23)
	tab := FromObjects(objs)
	p := geom.Point{500, 500, 500}
	for i := range objs {
		if got, want := tab.MinDistSq(i, p), objs[i].MinDistSq(p); got != want {
			t.Fatalf("row %d: MinDistSq = %g, want %g", i, got, want)
		}
	}
}
