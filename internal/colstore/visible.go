package colstore

import "repro/internal/geom"

// Delta-merge kernels: the MVCC read path layers an immutable tombstone set
// over the lanes, so the bottom-level filters need variants that apply the
// tombstone check inside the scan loop. Keeping the check fused (rather
// than post-filtering a materialized position vector) preserves the single
// sequential pass over the seven lanes and keeps the converged read path at
// zero allocations: the only state is the caller's output slice and the
// shared (read-only) tombstone map.

// ScanIntersectVisible appends the IDs — not positions — of every row in
// [lo, hi) whose box intersects q and whose ID is not tombstoned in dead.
// The six interval comparisons stay branch-free; the map lookup runs only
// for rows that already passed the geometric test, so a converged read with
// no tombstones pays nothing beyond ScanIntersect plus the ID lane load.
// dead may be nil.
func (t *Table) ScanIntersectVisible(lo, hi int, q geom.Box, dead map[int32]struct{}, out []int32) []int32 {
	if lo >= hi {
		return out
	}
	min0 := t.Min[0][lo:hi]
	n := len(min0)
	max0 := t.Max[0][lo:hi][:n]
	min1 := t.Min[1][lo:hi][:n]
	max1 := t.Max[1][lo:hi][:n]
	min2 := t.Min[2][lo:hi][:n]
	max2 := t.Max[2][lo:hi][:n]
	ids := t.ID[lo:hi][:n]
	qlo0, qhi0 := q.Min[0], q.Max[0]
	qlo1, qhi1 := q.Min[1], q.Max[1]
	qlo2, qhi2 := q.Min[2], q.Max[2]
	if len(dead) == 0 {
		for k := range min0 {
			ok := b2i(min0[k] <= qhi0) & b2i(max0[k] >= qlo0) &
				b2i(min1[k] <= qhi1) & b2i(max1[k] >= qlo1) &
				b2i(min2[k] <= qhi2) & b2i(max2[k] >= qlo2)
			if ok != 0 {
				out = append(out, ids[k])
			}
		}
		return out
	}
	for k := range min0 {
		ok := b2i(min0[k] <= qhi0) & b2i(max0[k] >= qlo0) &
			b2i(min1[k] <= qhi1) & b2i(max1[k] >= qlo1) &
			b2i(min2[k] <= qhi2) & b2i(max2[k] >= qlo2)
		if ok != 0 {
			if _, gone := dead[ids[k]]; !gone {
				out = append(out, ids[k])
			}
		}
	}
	return out
}

// CountIntersectVisible counts the rows in [lo, hi) whose box intersects q
// and whose ID is not tombstoned in dead — CountIntersect with the
// visibility check fused in, for count-only callers that must stay
// allocation-free even while deletes are pending. dead may be nil.
func (t *Table) CountIntersectVisible(lo, hi int, q geom.Box, dead map[int32]struct{}) int {
	if lo >= hi {
		return 0
	}
	if len(dead) == 0 {
		return t.CountIntersect(lo, hi, q)
	}
	min0 := t.Min[0][lo:hi]
	n := len(min0)
	max0 := t.Max[0][lo:hi][:n]
	min1 := t.Min[1][lo:hi][:n]
	max1 := t.Max[1][lo:hi][:n]
	min2 := t.Min[2][lo:hi][:n]
	max2 := t.Max[2][lo:hi][:n]
	ids := t.ID[lo:hi][:n]
	qlo0, qhi0 := q.Min[0], q.Max[0]
	qlo1, qhi1 := q.Min[1], q.Max[1]
	qlo2, qhi2 := q.Min[2], q.Max[2]
	cnt := 0
	for k := range min0 {
		ok := b2i(min0[k] <= qhi0) & b2i(max0[k] >= qlo0) &
			b2i(min1[k] <= qhi1) & b2i(max1[k] >= qlo1) &
			b2i(min2[k] <= qhi2) & b2i(max2[k] >= qlo2)
		if ok != 0 {
			if _, gone := dead[ids[k]]; !gone {
				cnt++
			}
		}
	}
	return cnt
}

// Clone returns a deep copy of the table's rows. The partition scratch is
// not carried over. core.Flush clones before compacting whenever a pinned
// version still references the current lanes, so the pinned reader's view
// stays immutable while the live index rebuilds in place.
func (t *Table) Clone() *Table {
	n := t.Len()
	c := &Table{}
	for d := 0; d < geom.Dims; d++ {
		c.Min[d] = append(make([]float64, 0, n), t.Min[d]...)
		c.Max[d] = append(make([]float64, 0, n), t.Max[d]...)
	}
	c.ID = append(make([]int32, 0, n), t.ID...)
	return c
}
