package colstore

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomTable(n int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]geom.Object, n)
	for i := range objs {
		var b geom.Box
		for d := 0; d < geom.Dims; d++ {
			lo := rng.Float64() * 1000
			b.Min[d] = lo
			b.Max[d] = lo + rng.Float64()*10
		}
		objs[i] = geom.Object{Box: b, ID: int32(i)}
	}
	return FromObjects(objs)
}

func tablesEqual(a, b *Table) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.ObjectAt(i) != b.ObjectAt(i) {
			return false
		}
	}
	return true
}

func TestLaneRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, ioChunkRows, ioChunkRows + 1, 3*ioChunkRows + 17} {
		src := randomTable(n, int64(n)+1)
		var buf bytes.Buffer
		if err := src.WriteLanes(&buf); err != nil {
			t.Fatalf("n=%d: WriteLanes: %v", n, err)
		}
		var dst Table
		if err := dst.ReadLanes(&buf, -1); err != nil {
			t.Fatalf("n=%d: ReadLanes: %v", n, err)
		}
		if !tablesEqual(src, &dst) {
			t.Fatalf("n=%d: round trip changed table contents", n)
		}
		if buf.Len() != 0 {
			t.Fatalf("n=%d: %d unread bytes after ReadLanes", n, buf.Len())
		}
	}
}

func TestLaneReuseAcrossReads(t *testing.T) {
	big := randomTable(5000, 1)
	small := randomTable(10, 2)
	var bigBuf, smallBuf bytes.Buffer
	if err := big.WriteLanes(&bigBuf); err != nil {
		t.Fatal(err)
	}
	if err := small.WriteLanes(&smallBuf); err != nil {
		t.Fatal(err)
	}
	var dst Table
	if err := dst.ReadLanes(&bigBuf, -1); err != nil {
		t.Fatal(err)
	}
	if err := dst.ReadLanes(&smallBuf, -1); err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(small, &dst) {
		t.Fatal("reused table does not match second payload")
	}
}

func TestLaneChecksumDetectsCorruption(t *testing.T) {
	src := randomTable(100, 3)
	var buf bytes.Buffer
	if err := src.WriteLanes(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x40 // flip one lane bit
	var dst Table
	if err := dst.ReadLanes(bytes.NewReader(raw), -1); err == nil {
		t.Fatal("corrupted lanes decoded without error")
	}
}

func TestLaneRowBound(t *testing.T) {
	src := randomTable(100, 4)
	var buf bytes.Buffer
	if err := src.WriteLanes(&buf); err != nil {
		t.Fatal(err)
	}
	var dst Table
	if err := dst.ReadLanes(bytes.NewReader(buf.Bytes()), 50); err == nil {
		t.Fatal("row count above maxRows decoded without error")
	}
	if err := dst.ReadLanes(bytes.NewReader(buf.Bytes()), 100); err != nil {
		t.Fatalf("row count at maxRows rejected: %v", err)
	}
}

func TestLaneTruncationDetected(t *testing.T) {
	src := randomTable(200, 5)
	var buf bytes.Buffer
	if err := src.WriteLanes(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	var dst Table
	if err := dst.ReadLanes(bytes.NewReader(raw[:len(raw)-5]), -1); err == nil {
		t.Fatal("truncated lanes decoded without error")
	}
}
