package colstore

// Layout-comparison benchmarks: the same cracking and scanning kernels run
// against the columnar table and against a reference array-of-structs
// implementation (the seed's layout), inside one binary. Because both
// variants run back to back they are immune to machine drift, which makes
// them the durable record of what the SoA layout buys on this hardware —
// the numbers in BENCH_PR3.json come from here and from the core
// microbenchmarks.

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// aosPartition replicates the seed's AoS cracking kernel (two-pointer
// partition with in-pass bounds tracking over []geom.Object).
func aosPartition(data []geom.Object, lo, hi, dim int, pivot float64) (int, Bounds, Bounds) {
	left := Bounds{Min: math.Inf(1), Max: math.Inf(-1)}
	right := Bounds{Min: math.Inf(1), Max: math.Inf(-1)}
	add := func(b *Bounds, o *geom.Object) {
		if o.Min[dim] < b.Min {
			b.Min = o.Min[dim]
		}
		if o.Max[dim] > b.Max {
			b.Max = o.Max[dim]
		}
	}
	i, j := lo, hi-1
	for i <= j {
		for i <= j && data[i].Min[dim] < pivot {
			add(&left, &data[i])
			i++
		}
		for i <= j && data[j].Min[dim] >= pivot {
			add(&right, &data[j])
			j--
		}
		if i < j {
			data[i], data[j] = data[j], data[i]
			add(&left, &data[i])
			add(&right, &data[j])
			i++
			j--
		}
	}
	return i, left, right
}

// aosScan replicates the seed's AoS leaf scan (Box.Intersects per object).
func aosScan(data []geom.Object, q geom.Box, out []int32) []int32 {
	for j := range data {
		if data[j].Intersects(q) {
			out = append(out, int32(j))
		}
	}
	return out
}

func benchPartitionSoA(b *testing.B, n int) {
	objs := dataset.Uniform(n, 42)
	t := FromObjects(objs)
	t.Partition(0, n, 0, 5000, KeyLower) // warm the scratch buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t.Reload(objs)
		b.StartTimer()
		t.Partition(0, n, 0, 5000, KeyLower)
	}
}

func benchPartitionAoS(b *testing.B, n int) {
	objs := dataset.Uniform(n, 42)
	data := make([]geom.Object, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(data, objs)
		b.StartTimer()
		aosPartition(data, 0, n, 0, 5000)
	}
}

func BenchmarkLayoutPartitionSoA1M(b *testing.B)   { benchPartitionSoA(b, 1<<20) }
func BenchmarkLayoutPartitionAoS1M(b *testing.B)   { benchPartitionAoS(b, 1<<20) }
func BenchmarkLayoutPartitionSoA128k(b *testing.B) { benchPartitionSoA(b, 1<<17) }
func BenchmarkLayoutPartitionAoS128k(b *testing.B) { benchPartitionAoS(b, 1<<17) }

func BenchmarkLayoutScanSoA(b *testing.B) {
	const n = 1 << 17
	objs := dataset.Uniform(n, 43)
	t := FromObjects(objs)
	q := geom.BoxAt(geom.Point{5000, 5000, 5000}, 2000)
	var out []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = t.ScanIntersect(0, n, q, out[:0])
	}
	if len(out) == 0 {
		b.Fatal("query matched nothing")
	}
}

func BenchmarkLayoutScanAoS(b *testing.B) {
	const n = 1 << 17
	objs := dataset.Uniform(n, 43)
	q := geom.BoxAt(geom.Point{5000, 5000, 5000}, 2000)
	var out []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = aosScan(objs, q, out[:0])
	}
	if len(out) == 0 {
		b.Fatal("query matched nothing")
	}
}
