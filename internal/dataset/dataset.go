// Package dataset generates the evaluation datasets of the QUASII paper
// (Section 6.1) and a synthetic substitute for its proprietary neuroscience
// data.
//
// Uniform reproduces the paper's synthetic dataset exactly: boxes uniformly
// distributed in a cubic universe of 10 000 units per side, with 99 % of the
// boxes between 1 and 10 units per side and 1 % between 10 and 1000 units.
//
// Neuro substitutes the 450-million-cylinder rat-brain model (21 GB of
// proprietary Human Brain Project data) with a Gaussian-cluster mixture of
// small boxes: the properties the experiments depend on are (a) heavy spatial
// skew — dense regions that defeat a uniformly configured grid — and
// (b) small, elongated objects. A mixture of dense Gaussian clusters over a
// sparse uniform background reproduces both. The substitution is recorded in
// DESIGN.md.
//
// All generators are deterministic for a given seed.
package dataset

import (
	"math/rand"

	"repro/internal/geom"
)

// UniverseSide is the side length of the cubic universe used by the paper's
// synthetic datasets.
const UniverseSide = 10000.0

// Universe returns the cubic universe box used by all generators.
func Universe() geom.Box {
	return geom.Box{
		Min: geom.Point{0, 0, 0},
		Max: geom.Point{UniverseSide, UniverseSide, UniverseSide},
	}
}

// Uniform generates n boxes matching the paper's synthetic dataset: centers
// uniform in the universe, side lengths uniform in [1,10] for 99 % of the
// objects and in [10,1000] for the remaining 1 % (independently per
// dimension, clamped to the universe).
func Uniform(n int, seed int64) []geom.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]geom.Object, n)
	for i := range objs {
		var min, max geom.Point
		large := rng.Float64() < 0.01
		for d := 0; d < geom.Dims; d++ {
			var side float64
			if large {
				side = 10 + rng.Float64()*990
			} else {
				side = 1 + rng.Float64()*9
			}
			lo := rng.Float64() * (UniverseSide - side)
			min[d] = lo
			max[d] = lo + side
		}
		objs[i] = geom.Object{Box: geom.Box{Min: min, Max: max}, ID: int32(i)}
	}
	return objs
}

// NeuroConfig parameterizes the clustered "neuroscience-like" dataset.
type NeuroConfig struct {
	// Clusters is the number of dense Gaussian clusters. Default 50.
	Clusters int
	// ClusterSigma is the standard deviation of object centers around their
	// cluster center, in universe units. Default 250.
	ClusterSigma float64
	// BackgroundFrac is the fraction of objects drawn uniformly from the
	// whole universe instead of a cluster. Default 0.1.
	BackgroundFrac float64
	// MaxSide is the largest object side length. Objects are small and
	// elongated (cylinder-like aspect ratios). Default 8.
	MaxSide float64
}

func (c *NeuroConfig) defaults() {
	if c.Clusters <= 0 {
		c.Clusters = 50
	}
	if c.ClusterSigma <= 0 {
		c.ClusterSigma = 250
	}
	if c.BackgroundFrac < 0 || c.BackgroundFrac > 1 {
		c.BackgroundFrac = 0.1
	}
	if c.MaxSide <= 0 {
		c.MaxSide = 8
	}
}

// Neuro generates n clustered boxes standing in for the paper's rat-brain
// dataset. Cluster sizes follow a Zipf-like skew so some regions are far
// denser than others, which is what makes uniform grids hard to configure
// (paper Fig. 6b).
func Neuro(n int, seed int64, cfg NeuroConfig) []geom.Object {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))

	centers := make([]geom.Point, cfg.Clusters)
	for i := range centers {
		for d := 0; d < geom.Dims; d++ {
			centers[i][d] = rng.Float64() * UniverseSide
		}
	}
	// Zipf-ish cluster weights: cluster k gets weight 1/(k+1).
	weights := make([]float64, cfg.Clusters)
	var total float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	cum := make([]float64, cfg.Clusters)
	acc := 0.0
	for i := range weights {
		acc += weights[i] / total
		cum[i] = acc
	}

	objs := make([]geom.Object, n)
	for i := range objs {
		var center geom.Point
		if rng.Float64() < cfg.BackgroundFrac {
			for d := 0; d < geom.Dims; d++ {
				center[d] = rng.Float64() * UniverseSide
			}
		} else {
			u := rng.Float64()
			k := 0
			for k < len(cum)-1 && cum[k] < u {
				k++
			}
			for d := 0; d < geom.Dims; d++ {
				center[d] = clamp(centers[k][d]+rng.NormFloat64()*cfg.ClusterSigma, 0, UniverseSide)
			}
		}
		// Elongated, cylinder-like boxes: one long axis, two short ones.
		long := rng.Intn(geom.Dims)
		var min, max geom.Point
		for d := 0; d < geom.Dims; d++ {
			side := 0.5 + rng.Float64()*(cfg.MaxSide-0.5)
			if d != long {
				side /= 4
			}
			min[d] = clamp(center[d]-side/2, 0, UniverseSide)
			max[d] = clamp(center[d]+side/2, 0, UniverseSide)
			if max[d] <= min[d] {
				max[d] = min[d] + 0.01
			}
		}
		objs[i] = geom.Object{Box: geom.Box{Min: min, Max: max}, ID: int32(i)}
	}
	return objs
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RandomBoxes generates n boxes with corners drawn uniformly from within
// bounds — a generic helper for tests that want unconstrained shapes.
func RandomBoxes(n int, seed int64, bounds geom.Box) []geom.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]geom.Object, n)
	for i := range objs {
		var a, b geom.Point
		for d := 0; d < geom.Dims; d++ {
			span := bounds.Max[d] - bounds.Min[d]
			a[d] = bounds.Min[d] + rng.Float64()*span
			b[d] = bounds.Min[d] + rng.Float64()*span
		}
		objs[i] = geom.Object{Box: geom.NewBox(a, b), ID: int32(i)}
	}
	return objs
}

// Clone returns a deep copy of objs. Indexes that reorganize their input in
// place (QUASII, SFCracker) get clones so experiments can share one dataset.
func Clone(objs []geom.Object) []geom.Object {
	out := make([]geom.Object, len(objs))
	copy(out, objs)
	return out
}
