package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/geom"
)

// fileMagic identifies the binary dataset format: a header line, an object
// count, then per object six little-endian float64 coordinates and an int32
// ID.
const fileMagic = "QSII1\n"

// Write serializes objects to w in the binary dataset format.
func Write(w io.Writer, objs []geom.Object) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(objs))); err != nil {
		return err
	}
	for i := range objs {
		rec := [6]float64{
			objs[i].Min[0], objs[i].Min[1], objs[i].Min[2],
			objs[i].Max[0], objs[i].Max[1], objs[i].Max[2],
		}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, objs[i].ID); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes objects written by Write.
func Read(r io.Reader) ([]geom.Object, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if string(head) != fileMagic {
		return nil, fmt.Errorf("not a quasii dataset stream (bad magic %q)", head)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("reading count: %w", err)
	}
	const maxReasonable = 1 << 33
	if count > maxReasonable {
		return nil, fmt.Errorf("implausible object count %d", count)
	}
	objs := make([]geom.Object, count)
	for i := range objs {
		var rec [6]float64
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("object %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &objs[i].ID); err != nil {
			return nil, fmt.Errorf("object %d id: %w", i, err)
		}
		objs[i].Min = geom.Point{rec[0], rec[1], rec[2]}
		objs[i].Max = geom.Point{rec[3], rec[4], rec[5]}
	}
	return objs, nil
}

// WriteFile writes objects to the named file in the binary dataset format.
func WriteFile(path string, objs []geom.Object) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, objs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a dataset file written by WriteFile.
func ReadFile(path string) ([]geom.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	objs, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return objs, nil
}
