package dataset

import (
	"testing"

	"repro/internal/geom"
)

func TestUniformProperties(t *testing.T) {
	const n = 20000
	objs := Uniform(n, 1)
	if len(objs) != n {
		t.Fatalf("len = %d, want %d", len(objs), n)
	}
	universe := Universe()
	var large int
	seen := make(map[int32]bool, n)
	for i := range objs {
		o := &objs[i]
		if seen[o.ID] {
			t.Fatalf("duplicate ID %d", o.ID)
		}
		seen[o.ID] = true
		if o.Box.IsEmpty() {
			t.Fatalf("object %d has empty box", i)
		}
		if !universe.Contains(o.Box) {
			t.Fatalf("object %d %v outside universe", i, o.Box)
		}
		for d := 0; d < geom.Dims; d++ {
			side := o.Max[d] - o.Min[d]
			if side < 1 || side > 1000 {
				t.Fatalf("object %d side %g out of [1,1000]", i, side)
			}
			if side > 10 {
				large++
				break
			}
		}
	}
	// ~1% of objects are large; allow generous slack.
	frac := float64(large) / n
	if frac < 0.002 || frac > 0.05 {
		t.Errorf("large-object fraction = %.4f, want ~0.01", frac)
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, b := Uniform(500, 7), Uniform(500, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Uniform not deterministic")
		}
	}
}

func TestNeuroProperties(t *testing.T) {
	const n = 20000
	objs := Neuro(n, 2, NeuroConfig{})
	if len(objs) != n {
		t.Fatalf("len = %d", len(objs))
	}
	universe := Universe()
	for i := range objs {
		if objs[i].Box.IsEmpty() {
			t.Fatalf("object %d empty", i)
		}
		if !universe.Contains(objs[i].Box) {
			t.Fatalf("object %d outside universe", i)
		}
	}
	ext := geom.MaxExtents(objs)
	for d := 0; d < geom.Dims; d++ {
		if ext[d] > 10 {
			t.Errorf("neuro objects should be small; max extent[%d] = %g", d, ext[d])
		}
	}
}

func TestNeuroIsSkewed(t *testing.T) {
	// Split the universe into 64 blocks; the clustered dataset must have a
	// much higher max-block density than the uniform dataset.
	count := func(objs []geom.Object) (max, nonEmpty int) {
		blocks := make(map[[3]int]int)
		for i := range objs {
			c := objs[i].Center()
			key := [3]int{int(c[0] / 2500), int(c[1] / 2500), int(c[2] / 2500)}
			blocks[key]++
		}
		for _, v := range blocks {
			if v > max {
				max = v
			}
			nonEmpty++
		}
		return max, nonEmpty
	}
	maxN, _ := count(Neuro(10000, 3, NeuroConfig{}))
	maxU, _ := count(Uniform(10000, 3))
	if maxN < 2*maxU {
		t.Errorf("neuro max block density %d not clearly above uniform %d", maxN, maxU)
	}
}

func TestNeuroConfigDefaults(t *testing.T) {
	var cfg NeuroConfig
	cfg.defaults()
	if cfg.Clusters != 50 || cfg.ClusterSigma != 250 || cfg.MaxSide != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
	custom := NeuroConfig{Clusters: 3, ClusterSigma: 10, MaxSide: 2, BackgroundFrac: 0.5}
	custom.defaults()
	if custom.Clusters != 3 || custom.ClusterSigma != 10 || custom.MaxSide != 2 || custom.BackgroundFrac != 0.5 {
		t.Fatalf("custom config overwritten: %+v", custom)
	}
}

func TestRandomBoxesWithinBounds(t *testing.T) {
	bounds := geom.Box{Min: geom.Point{-10, 0, 5}, Max: geom.Point{10, 20, 25}}
	objs := RandomBoxes(1000, 4, bounds)
	for i := range objs {
		if !bounds.Contains(objs[i].Box) {
			t.Fatalf("object %d %v outside bounds", i, objs[i].Box)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Uniform(100, 5)
	b := Clone(a)
	b[0].Min[0] = -999
	if a[0].Min[0] == -999 {
		t.Fatal("Clone shares backing storage")
	}
	if len(b) != len(a) {
		t.Fatalf("clone length %d != %d", len(b), len(a))
	}
}

func TestUniverse(t *testing.T) {
	u := Universe()
	if u.Min != (geom.Point{0, 0, 0}) {
		t.Errorf("universe min = %v", u.Min)
	}
	if u.Max != (geom.Point{UniverseSide, UniverseSide, UniverseSide}) {
		t.Errorf("universe max = %v", u.Max)
	}
}

func TestZeroCountGenerators(t *testing.T) {
	if objs := Uniform(0, 1); len(objs) != 0 {
		t.Error("Uniform(0) should be empty")
	}
	if objs := Neuro(0, 1, NeuroConfig{}); len(objs) != 0 {
		t.Error("Neuro(0) should be empty")
	}
}
