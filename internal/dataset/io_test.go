package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	objs := Uniform(1000, 42)
	var buf bytes.Buffer
	if err := Write(&buf, objs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("read %d objects, want %d", len(got), len(objs))
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Fatalf("object %d mismatch: %v != %v", i, got[i], objs[i])
		}
	}
}

func TestWriteReadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("read %d objects from empty stream", len(got))
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOTQS\nxxxxxxxxxx"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("expected magic error, got %v", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	objs := Uniform(10, 1)
	var buf bytes.Buffer
	if err := Write(&buf, objs); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-20]
	if _, err := Read(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestReadRejectsImplausibleCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(fileMagic)
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // count = 2^64-1
	if _, err := Read(&buf); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	objs := Neuro(500, 7, NeuroConfig{})
	if err := WriteFile(path, objs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(objs) {
		t.Fatalf("read %d, want %d", len(got), len(objs))
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Fatalf("object %d mismatch", i)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}
