package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 100; i++ {
		if tp := tr.Begin("query"); tp != nil {
			sampled++
			tr.Finish(tp)
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 with 1-in-4, want 25", sampled)
	}
	// Disabled tracer never samples.
	off := NewTracer(TraceConfig{SampleEvery: 0})
	if off.Begin("query") != nil {
		t.Fatal("SampleEvery=0 should never sample")
	}
}

func TestTracerSlowlogContent(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TraceConfig{SampleEvery: 1, SlowThreshold: 0, LogSize: 8})
	tr.Instrument(reg)
	tp := tr.Begin("query")
	if tp == nil {
		t.Fatal("SampleEvery=1 must sample")
	}
	tp.AddStage(StageCoalesce, 2*time.Millisecond)
	tp.AddStage(StageShared, 1*time.Millisecond)
	tp.SetFanout(3)
	tp.AddSharedProbe()
	tp.AddSharedProbe()
	tp.AddExclusiveProbe()
	tp.SetBatchSize(5)
	tp.SetResults(17)
	tr.Finish(tp)

	log := tr.Slowlog()
	if len(log) != 1 {
		t.Fatalf("slowlog has %d entries, want 1", len(log))
	}
	e := log[0]
	if e.Endpoint != "query" {
		t.Fatalf("endpoint = %q", e.Endpoint)
	}
	if e.Stages["coalesce"] < 2000 {
		t.Fatalf("coalesce stage = %dµs, want ≥ 2000", e.Stages["coalesce"])
	}
	if e.FanoutShards != 3 || e.SharedProbes != 2 || e.ExclusiveProbes != 1 {
		t.Fatalf("fanout/shared/exclusive = %d/%d/%d", e.FanoutShards, e.SharedProbes, e.ExclusiveProbes)
	}
	if e.BatchSize != 5 || e.Results != 17 {
		t.Fatalf("batch/results = %d/%d", e.BatchSize, e.Results)
	}
	if got := reg.Counter("quasii_server_traces_sampled_total", "").Value(); got != 1 {
		t.Fatalf("sampled counter = %d, want 1", got)
	}
	if got := reg.Counter("quasii_server_slow_queries_total", "").Value(); got != 1 {
		t.Fatalf("slow counter = %d, want 1", got)
	}
}

func TestTracerSlowThresholdFilters(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 1, SlowThreshold: time.Hour})
	tp := tr.Begin("query")
	tr.Finish(tp)
	if len(tr.Slowlog()) != 0 {
		t.Fatal("sub-threshold trace must not reach the slowlog")
	}
}

func TestTracerRingWrapNewestFirst(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 1, LogSize: 4})
	for i := 0; i < 10; i++ {
		tp := tr.Begin("query")
		tp.SetResults(i)
		tr.Finish(tp)
	}
	log := tr.Slowlog()
	if len(log) != 4 {
		t.Fatalf("ring kept %d, want 4", len(log))
	}
	for i, want := range []int{9, 8, 7, 6} {
		if log[i].Results != want {
			t.Fatalf("log[%d].Results = %d, want %d (newest first)", i, log[i].Results, want)
		}
	}
}

func TestTracerPoolReuseResetsState(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 1})
	tp := tr.Begin("query")
	tp.SetFanout(9)
	tp.AddStage(StageCrack, time.Second)
	tr.Finish(tp)
	// The next Begin likely reuses the pooled Trace; all fields must be reset.
	tp2 := tr.Begin("knn")
	tr.Finish(tp2)
	log := tr.Slowlog()
	e := log[0] // newest
	if e.Endpoint != "knn" || e.FanoutShards != 0 || len(e.Stages) != 0 {
		t.Fatalf("pooled trace leaked state: %+v", e)
	}
}

// TestTracerConcurrent exercises sampling, concurrent stage recording on a
// shared trace (modelling shard fan-out goroutines), and ring insertion
// under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TraceConfig{SampleEvery: 2, LogSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tp := tr.Begin("query")
				if tp == nil {
					continue
				}
				var inner sync.WaitGroup
				for s := 0; s < 4; s++ {
					inner.Add(1)
					go func() {
						defer inner.Done()
						tp.AddStage(StageShared, time.Microsecond)
						tp.AddSharedProbe()
					}()
				}
				inner.Wait()
				tr.Finish(tp)
			}
		}()
	}
	wg.Wait()
	if len(tr.Slowlog()) != 64 {
		t.Fatalf("ring should be full, got %d", len(tr.Slowlog()))
	}
}
