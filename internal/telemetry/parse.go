// A strict parser for the Prometheus text exposition the registry renders.
// It closes the loop on our own output: the e2e tests, the loadgen oracle's
// client-vs-server latency cross-check, and the CI smoke script all scrape
// GET /metrics and refuse to proceed when a line fails to parse — so a
// rendering regression is caught by three independent consumers, not by a
// dashboard going quietly blank.
//
// The grammar accepted is deliberately the subset WriteText emits (plus
// whitespace tolerance): "# HELP"/"# TYPE" comments, then sample lines
// `name{label="value",...} number`. It is not a general Prometheus parser —
// exotic escapes, exemplars, and timestamps are rejected loudly.

package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed metric sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is a parsed /metrics payload.
type Scrape struct {
	// Types maps family name to its declared TYPE (counter, gauge,
	// histogram, untyped).
	Types map[string]string
	// Samples holds every sample line in input order. Histogram series
	// appear under their rendered names (name_bucket, name_sum, name_count).
	Samples []Sample
}

// Label returns s's value for key, or "".
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParseText parses a Prometheus text-format payload. Any malformed line is
// an error — consumers of our own exposition treat parse failure as a bug,
// never as data to skip.
func ParseText(text string) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string)}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, " \t\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := sc.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		sc.Samples = append(sc.Samples, s)
	}
	return sc, nil
}

// parseComment handles "# HELP name text" and "# TYPE name kind" lines.
// Other comments are tolerated; malformed TYPE lines are not.
func (sc *Scrape) parseComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare "#" comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		sc.Types[fields[2]] = fields[3]
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	}
	return nil
}

// parseSample parses one `name{l="v",...} value` line.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	// Metric name: up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.IndexByte(rest, '}')
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" || strings.ContainsAny(rest, " \t") {
		// A trailing field would be a timestamp (or garbage) — WriteText
		// never emits one, so its presence means we are not parsing our
		// own exposition.
		return s, fmt.Errorf("expected single value in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, line)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the body between '{' and '}'.
func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := rest[:eq]
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value")
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, fmt.Errorf("dangling escape")
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("unknown escape \\%c", rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value")
		}
		labels[key] = val.String()
		if rest != "" {
			if rest[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels")
			}
			rest = rest[1:]
		}
	}
	return labels, nil
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(name) > 0
}

func validLabelName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(name) > 0
}

// Value returns the single sample for name whose labels match want exactly
// (ignoring any extra labels in the sample when want is nil). ok reports
// whether a match was found.
func (sc *Scrape) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range sc.Samples {
		if s.Name != name {
			continue
		}
		if matchLabels(s.Labels, want) {
			return s.Value, true
		}
	}
	return 0, false
}

func matchLabels(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// HistogramQuantile estimates quantile q (0..1) from the rendered
// <name>_bucket series carrying the given non-le labels, using linear
// interpolation within the bucket that holds the target rank — the same
// estimate promql's histogram_quantile computes. ok is false when the
// histogram is absent or empty.
func (sc *Scrape) HistogramQuantile(name string, labels map[string]string, q float64) (float64, bool) {
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	for _, s := range sc.Samples {
		if s.Name != name+"_bucket" || !matchLabels(s.Labels, labels) {
			continue
		}
		le, err := parseLE(s.Label("le"))
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: le, count: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0, false
	}
	rank := q * total
	for i, b := range buckets {
		if b.count < rank {
			continue
		}
		if i == len(buckets)-1 && math.IsInf(b.le, 1) {
			// Rank lands in the overflow bucket: the best point estimate
			// is the highest finite bound.
			if i == 0 {
				return 0, false
			}
			return buckets[i-1].le, true
		}
		lower, lowerCount := 0.0, 0.0
		if i > 0 {
			lower, lowerCount = buckets[i-1].le, buckets[i-1].count
		}
		width := b.count - lowerCount
		if width <= 0 {
			return b.le, true
		}
		return lower + (b.le-lower)*(rank-lowerCount)/width, true
	}
	return buckets[len(buckets)-1].le, true
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
