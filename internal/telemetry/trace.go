// Sampled per-query stage tracing. One request in every SampleEvery gets a
// Trace that rides down the stack — admission, coalescing window, shard
// fan-out, the shared-vs-budgeted-exclusive split, response encoding — and
// lands in a fixed-size ring buffer when its total latency crosses the slow
// threshold. GET /debug/slowlog renders the ring, so "why was that query
// slow" is answerable from a running server: was it parked in the batching
// window, fanned out too wide, or stuck cracking a cold region?
//
// The unsampled hot path pays exactly one atomic add per request; a sampled
// request draws its Trace from a pool, so steady-state tracing allocates
// nothing either. Stage recording is atomic because a traced query's shard
// fan-out touches the trace from several goroutines at once.

package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one phase of a traced request's life.
type Stage int

const (
	// StageAdmission: waiting for / passing admission control.
	StageAdmission Stage = iota
	// StageCoalesce: parked in the batching window waiting for companions.
	StageCoalesce
	// StageFanout: total shard fan-out execution (submit to merge).
	StageFanout
	// StageShared: inside sub-index shared (read-locked) query walks,
	// including failed attempts that fell back to the exclusive path.
	StageShared
	// StageCrack: inside budgeted-exclusive (write-locked, cracking) query
	// execution.
	StageCrack
	// StageEncode: JSON-encoding and writing the response.
	StageEncode
	numStages
)

// stageNames are the JSON/display names, indexed by Stage.
var stageNames = [numStages]string{
	"admission", "coalesce", "fanout", "shared", "crack", "encode",
}

// Trace accumulates the stage timings of one sampled request. Stage adds
// are atomic: a fanned-out query records shard stages from several
// goroutines. All methods are nil-safe no-ops so call sites need no
// sampled-or-not branches.
type Trace struct {
	endpoint  string
	start     time.Time
	stages    [numStages]atomic.Int64 // nanoseconds per stage
	fanout    atomic.Int64            // shards the query overlapped
	shared    atomic.Int64            // shard probes answered on the shared path
	exclusive atomic.Int64            // shard probes that fell back to the exclusive path
	batch     atomic.Int64            // companions in the coalesced batch (incl. self)
	results   atomic.Int64            // result IDs returned
}

// AddStage adds d to stage s.
func (t *Trace) AddStage(s Stage, d time.Duration) {
	if t != nil {
		t.stages[s].Add(int64(d))
	}
}

// StageSince adds the time elapsed since t0 to stage s.
func (t *Trace) StageSince(s Stage, t0 time.Time) {
	if t != nil {
		t.stages[s].Add(int64(time.Since(t0)))
	}
}

// SetFanout records how many shards the query overlapped.
func (t *Trace) SetFanout(n int) {
	if t != nil {
		t.fanout.Store(int64(n))
	}
}

// AddSharedProbe counts one shard probe answered on the shared read path.
func (t *Trace) AddSharedProbe() {
	if t != nil {
		t.shared.Add(1)
	}
}

// AddExclusiveProbe counts one shard probe that fell back to the
// budgeted-exclusive (cracking) path.
func (t *Trace) AddExclusiveProbe() {
	if t != nil {
		t.exclusive.Add(1)
	}
}

// SetBatchSize records the size of the coalesced batch the query rode in.
func (t *Trace) SetBatchSize(n int) {
	if t != nil {
		t.batch.Store(int64(n))
	}
}

// SetResults records the result cardinality.
func (t *Trace) SetResults(n int) {
	if t != nil {
		t.results.Store(int64(n))
	}
}

// TraceEntry is one completed trace as the slow-query log stores and
// serves it (GET /debug/slowlog).
type TraceEntry struct {
	Endpoint        string           `json:"endpoint"`
	Start           time.Time        `json:"start"`
	TotalMicros     int64            `json:"total_us"`
	Stages          map[string]int64 `json:"stages_us"`
	FanoutShards    int              `json:"fanout_shards"`
	SharedProbes    int              `json:"shared_probes"`
	ExclusiveProbes int              `json:"exclusive_probes"`
	BatchSize       int              `json:"batch_size"`
	Results         int              `json:"results"`
}

// TraceConfig tunes a Tracer. The zero value disables sampling.
type TraceConfig struct {
	// SampleEvery traces one request in every SampleEvery. 1 traces all,
	// 0 or negative disables tracing.
	SampleEvery int
	// SlowThreshold is the minimum total latency for a sampled trace to
	// enter the slow-query log. 0 logs every sampled trace (the ring is
	// bounded regardless).
	SlowThreshold time.Duration
	// LogSize is the slow-query ring capacity. 0 selects 128.
	LogSize int
}

// Tracer samples requests and keeps the slow-query ring. Safe for
// concurrent use; a nil *Tracer never samples.
type Tracer struct {
	every   int64
	slow    int64 // nanoseconds
	n       atomic.Int64
	pool    sync.Pool
	sampled *Counter // registry counters, nil when not attached
	logged  *Counter
	dropped *Counter

	mu   sync.Mutex
	ring []TraceEntry
	next int
	full bool
}

// NewTracer builds a tracer. Attach registry counters with Instrument.
func NewTracer(cfg TraceConfig) *Tracer {
	size := cfg.LogSize
	if size <= 0 {
		size = 128
	}
	t := &Tracer{
		every: int64(cfg.SampleEvery),
		slow:  int64(cfg.SlowThreshold),
		ring:  make([]TraceEntry, size),
	}
	t.pool.New = func() interface{} { return new(Trace) }
	return t
}

// Instrument registers the tracer's own meta-counters on reg.
func (t *Tracer) Instrument(reg *Registry) {
	if t == nil {
		return
	}
	t.sampled = reg.Counter("quasii_server_traces_sampled_total",
		"Requests sampled for stage tracing.")
	t.logged = reg.Counter("quasii_server_slow_queries_total",
		"Sampled traces that crossed the slow threshold into the slowlog.")
	t.dropped = reg.Counter("quasii_server_slowlog_dropped_total",
		"Slowlog entries overwritten by ring wraparound before being scraped.")
}

// Begin returns a fresh Trace when this request is sampled, nil otherwise.
// The nil result is safe to use everywhere — every Trace method no-ops on
// nil — so callers thread it unconditionally.
func (t *Tracer) Begin(endpoint string) *Trace {
	if t == nil || t.every <= 0 {
		return nil
	}
	if t.n.Add(1)%t.every != 0 {
		return nil
	}
	t.sampled.Inc()
	tr := t.pool.Get().(*Trace)
	tr.endpoint = endpoint
	tr.start = time.Now()
	for i := range tr.stages {
		tr.stages[i].Store(0)
	}
	tr.fanout.Store(0)
	tr.shared.Store(0)
	tr.exclusive.Store(0)
	tr.batch.Store(0)
	tr.results.Store(0)
	return tr
}

// Finish completes tr: computes the total, files it into the slow-query
// ring when it crossed the threshold, and returns the Trace to the pool.
// tr must not be used afterwards. Nil-safe on both receivers.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	total := time.Since(tr.start)
	if int64(total) >= t.slow {
		t.logged.Inc()
		e := TraceEntry{
			Endpoint:        tr.endpoint,
			Start:           tr.start,
			TotalMicros:     total.Microseconds(),
			Stages:          make(map[string]int64, numStages),
			FanoutShards:    int(tr.fanout.Load()),
			SharedProbes:    int(tr.shared.Load()),
			ExclusiveProbes: int(tr.exclusive.Load()),
			BatchSize:       int(tr.batch.Load()),
			Results:         int(tr.results.Load()),
		}
		for i := Stage(0); i < numStages; i++ {
			if ns := tr.stages[i].Load(); ns > 0 {
				e.Stages[stageNames[i]] = time.Duration(ns).Microseconds()
			}
		}
		t.mu.Lock()
		// Once the ring has wrapped, every write evicts the oldest entry;
		// the dropped counter makes that loss visible so a scraper knows
		// when its window is too small (or its cadence too slow) for the
		// trace rate.
		if t.full {
			t.dropped.Inc()
		}
		t.ring[t.next] = e
		t.next = (t.next + 1) % len(t.ring)
		if t.next == 0 {
			t.full = true
		}
		t.mu.Unlock()
	}
	t.pool.Put(tr)
}

// Slowlog snapshots the ring, newest first.
func (t *Tracer) Slowlog() []TraceEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	out := make([]TraceEntry, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}
