// Package telemetry is the observability subsystem: a dependency-free
// metrics registry rendered in the Prometheus text exposition format, plus
// sampled per-query stage tracing with a ring-buffered slow-query log (see
// trace.go). It exists so the serving stack can prove — not just claim —
// QUASII's incremental convergence under live load: per-query cost falling
// as the index refines is a time-series, and this package is where that
// series comes from.
//
// # Design constraints
//
// The query hot path the columnar engine fought for is allocation-free, so
// the instrumentation must be too:
//
//   - Counters and gauges are single atomic words; Inc/Add/Set never
//     allocate and never take a lock.
//   - Histograms have fixed buckets chosen at registration; Observe is a
//     linear scan over ≤ ~20 bounds plus two atomic adds.
//   - Every metric method is nil-receiver-safe, so a layer built without a
//     registry carries exactly one nil check per event.
//   - Scrape-time collection (OnScrape hooks + CounterFunc/GaugeFunc) moves
//     the cost of lock-taking engine statistics (shard.Stats walks every
//     shard under its read lock) off the query path entirely: the engine's
//     existing counters are read when /metrics is scraped, not maintained
//     redundantly per query.
//
// # Naming convention
//
// Metric names follow quasii_<subsystem>_<name>_<unit>: the subsystem is
// the emitting layer (http, server, shard, core, wal, store), the unit is
// the final token (total for monotone counters, seconds, bytes, ratio, or
// the counted noun — objects, queries, requests, shards, slices).
// scripts/metrics-lint.sh enforces the convention against a live scrape.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the families a registry can hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotone cumulative count: one atomic word. The zero value
// is ready to use; all methods are nil-safe no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be ≥ 0 to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value: one atomic word. All methods are
// nil-safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Observe performs a linear scan
// over the bounds plus two atomic adds — no locks, no allocation. All
// methods are nil-safe no-ops.
type Histogram struct {
	bounds []float64      // sorted upper bounds, excluding +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets is the default latency histogram layout: 10µs to 2.5s in
// a 1-2.5-5 progression, wide enough for a cold crack-heavy query and fine
// enough to resolve a converged sub-100µs one.
var DurationBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5,
}

// SizeBuckets is the default layout for small-cardinality size metrics
// (batch occupancy, fan-out width): exact powers of two up to 256.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// child is one labeled instance inside a family.
type child struct {
	labels  []Label
	key     string // canonical rendered label set, family-unique
	counter *Counter
	gauge   *Gauge
	fn      func() float64 // CounterFunc/GaugeFunc collection
	hist    *Histogram
}

// family is all instances sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	bounds     []float64 // histogram families only
	children   []*child
	byKey      map[string]*child
}

// Registry holds metric families and renders them as Prometheus text. A nil
// *Registry is valid everywhere: registration returns nil metrics (whose
// methods no-op), so instrumented layers need no enabled/disabled branches.
// Registration is idempotent — asking for an existing name+labels returns
// the existing metric — so layers can be instrumented independently and
// restarts of a sub-system re-attach instead of panicking.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnScrape registers f to run at the start of every scrape (WriteText),
// before any CounterFunc/GaugeFunc is read. Layers whose statistics are
// expensive to collect (e.g. walking every shard under its lock) register
// one hook that snapshots everything, and cheap funcs that read the cached
// snapshot.
func (r *Registry) OnScrape(f func()) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, f)
	r.mu.Unlock()
}

// labelKey renders a sorted, canonical form of labels used both for lookup
// and for the exposition output.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	// %q already escapes backslash, quote and newline the way the format
	// wants them; it is applied by labelKey's %q verb, so only values that
	// would double-escape need care — none of ours do. Kept as a separate
	// function so a future richer escaping has one home.
	return v
}

// register returns the child for name+labels, creating family and child as
// needed. kind and bounds must agree with any prior registration of name.
func (r *Registry) register(name, help string, kind metricKind, bounds []float64, labels []Label) *child {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, byKey: make(map[string]*child)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	key := labelKey(labels)
	if c := f.byKey[key]; c != nil {
		return c
	}
	c := &child{labels: labels, key: key}
	switch kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		b := f.bounds
		c.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}
	f.byKey[key] = c
	f.children = append(f.children, c)
	return c
}

// Counter registers (or returns the existing) counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, nil, labels).counter
}

// Gauge registers (or returns the existing) gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, nil, labels).gauge
}

// CounterFunc registers a counter whose value is read from f at scrape
// time — for monotone statistics a lower layer already maintains (the
// engine's cumulative work counters), so the hot path is not taxed twice.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	if r == nil || f == nil {
		return
	}
	r.register(name, help, kindCounter, nil, labels).fn = f
}

// GaugeFunc registers a gauge read from f at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	if r == nil || f == nil {
		return
	}
	r.register(name, help, kindGauge, nil, labels).fn = f
}

// Histogram registers (or returns the existing) histogram name{labels} with
// the given bucket upper bounds (sorted ascending, +Inf implied). All
// children of one family share the bounds of the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, buckets, labels).hist
}

// WriteText renders every family in the Prometheus text exposition format
// (version 0.0.4), running the OnScrape hooks first.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	fams := append([]*family{}, r.families...)
	r.mu.Unlock()
	// Hooks run outside the registry lock: they may take engine locks and
	// must not block concurrent registration.
	for _, h := range hooks {
		h()
	}
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.children {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	switch f.kind {
	case kindCounter, kindGauge:
		v := 0.0
		switch {
		case c.fn != nil:
			v = c.fn()
		case c.counter != nil:
			v = float64(c.counter.Value())
		case c.gauge != nil:
			v = float64(c.gauge.Value())
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced(c.key), formatValue(v))
		return err
	case kindHistogram:
		h := c.hist
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := labelKey([]Label{L("le", formatValue(bound))})
			key := c.key
			if key != "" {
				key += ","
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s%s} %d\n", f.name, key, le, cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		key := c.key
		if key != "" {
			key += ","
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, key, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(c.key), formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(c.key), h.Count())
		return err
	}
	return nil
}

func braced(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

// formatValue renders a float the way the exposition format expects:
// integral values without a decimal point, everything else in shortest
// round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler returns an http.Handler serving the scrape output — mount it on
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
