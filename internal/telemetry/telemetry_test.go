package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("quasii_test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("quasii_test_depth_objects", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("quasii_test_x_total", "x")
	g := r.Gauge("quasii_test_x_objects", "x")
	h := r.Histogram("quasii_test_x_seconds", "x", DurationBuckets)
	r.CounterFunc("quasii_test_y_total", "y", func() float64 { return 1 })
	r.GaugeFunc("quasii_test_y_objects", "y", func() float64 { return 1 })
	r.OnScrape(func() {})
	// All of these must be no-ops, not panics.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveDuration(time.Millisecond)
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}
	var tr *Tracer
	tp := tr.Begin("query")
	tp.AddStage(StageShared, time.Millisecond)
	tr.Finish(tp)
	if tr.Slowlog() != nil {
		t.Fatal("nil tracer slowlog should be nil")
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("quasii_test_hits_total", "hits", L("endpoint", "/query"))
	b := r.Counter("quasii_test_hits_total", "hits", L("endpoint", "/query"))
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	other := r.Counter("quasii_test_hits_total", "hits", L("endpoint", "/stats"))
	if a == other {
		t.Fatal("different labels should return a different child")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("quasii_test_thing_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("quasii_test_thing_total", "x")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("quasii_test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("sum = %g, want 5.605", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`quasii_test_latency_seconds_bucket{le="0.01"} 1`,
		`quasii_test_latency_seconds_bucket{le="0.1"} 3`,
		`quasii_test_latency_seconds_bucket{le="1"} 4`,
		`quasii_test_latency_seconds_bucket{le="+Inf"} 5`,
		`quasii_test_latency_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRenderParseRoundtrip drives the renderer's output straight into the
// strict parser the loadgen cross-check and smoke script use.
func TestRenderParseRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("quasii_test_requests_total", "requests", L("endpoint", "/query")).Add(42)
	r.Counter("quasii_test_requests_total", "requests", L("endpoint", "/stats")).Add(7)
	r.Gauge("quasii_test_live_objects", "live").Set(123456)
	r.GaugeFunc("quasii_test_ratio", "ratio", func() float64 { return 0.75 })
	h := r.Histogram("quasii_test_wait_seconds", "wait", DurationBuckets)
	h.Observe(30e-6)
	h.Observe(0.2)
	hooked := false
	r.OnScrape(func() { hooked = true })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !hooked {
		t.Fatal("OnScrape hook did not run")
	}
	sc, err := ParseText(b.String())
	if err != nil {
		t.Fatalf("our own exposition failed to parse: %v\n%s", err, b.String())
	}
	if sc.Types["quasii_test_requests_total"] != "counter" {
		t.Fatalf("TYPE = %q, want counter", sc.Types["quasii_test_requests_total"])
	}
	if sc.Types["quasii_test_wait_seconds"] != "histogram" {
		t.Fatalf("TYPE = %q, want histogram", sc.Types["quasii_test_wait_seconds"])
	}
	if v, ok := sc.Value("quasii_test_requests_total", map[string]string{"endpoint": "/query"}); !ok || v != 42 {
		t.Fatalf("requests{/query} = %v,%v want 42", v, ok)
	}
	if v, ok := sc.Value("quasii_test_ratio", nil); !ok || v != 0.75 {
		t.Fatalf("ratio = %v,%v want 0.75", v, ok)
	}
	if v, ok := sc.Value("quasii_test_wait_seconds_count", nil); !ok || v != 2 {
		t.Fatalf("wait count = %v,%v want 2", v, ok)
	}
}

func TestParserRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"quasii x",                // non-numeric value
		`quasii{l="v} 1`,          // unterminated label value
		`quasii{l=v} 1`,           // unquoted label value
		"1name 2",                 // bad metric name
		"# TYPE quasii_x wibble",  // unknown type
		"quasii_x 1 1700000000",   // timestamps not in our grammar
		`quasii_x{l="a" m="b"} 1`, // missing comma
		`quasii_x{l="\q"} 1`,      // unknown escape
	} {
		if _, err := ParseText(bad); err == nil {
			t.Errorf("ParseText(%q) accepted garbage", bad)
		}
	}
}

func TestParserAcceptsEscapes(t *testing.T) {
	sc, err := ParseText(`quasii_x{l="a\"b\\c\nd"} 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Samples[0].Label("l"); got != "a\"b\\c\nd" {
		t.Fatalf("unescaped = %q", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("quasii_test_q_seconds", "q", []float64{0.01, 0.1, 1})
	// 100 observations: 50 in (0,0.01], 40 in (0.01,0.1], 10 in (0.1,1].
	for i := 0; i < 50; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(b.String())
	if err != nil {
		t.Fatal(err)
	}
	p50, ok := sc.HistogramQuantile("quasii_test_q_seconds", nil, 0.50)
	if !ok {
		t.Fatal("no histogram found")
	}
	// Rank 50 is exactly the top of the first bucket.
	if math.Abs(p50-0.01) > 1e-9 {
		t.Fatalf("p50 = %g, want 0.01", p50)
	}
	p90, ok := sc.HistogramQuantile("quasii_test_q_seconds", nil, 0.90)
	if !ok || p90 < 0.01 || p90 > 0.1 {
		t.Fatalf("p90 = %g, want within (0.01, 0.1]", p90)
	}
	p99, ok := sc.HistogramQuantile("quasii_test_q_seconds", nil, 0.99)
	if !ok || p99 < 0.1 || p99 > 1 {
		t.Fatalf("p99 = %g, want within (0.1, 1]", p99)
	}
}

// TestConcurrentHotPath is the -race stress on the registry hot path:
// counters, gauges, and histograms hammered from many goroutines while a
// scraper renders concurrently. Verifies both race-freedom and that no
// increment is lost.
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("quasii_test_stress_total", "stress")
	g := r.Gauge("quasii_test_stress_objects", "stress")
	h := r.Histogram("quasii_test_stress_seconds", "stress", DurationBuckets)

	const workers = 8
	const perWorker = 5000
	var workersWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scraper.
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
			if _, err := ParseText(b.String()); err != nil {
				t.Errorf("mid-flight scrape unparsable: %v", err)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) * 1e-5)
				// Concurrent registration of the same metric must be safe
				// and return the shared instance.
				if i%1000 == 0 {
					r.Counter("quasii_test_stress_total", "stress").Inc()
				}
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	scraperWG.Wait()

	want := int64(workers*perWorker + workers*(perWorker/1000))
	if got := c.Value(); got != want {
		t.Fatalf("counter lost increments: got %d, want %d", got, want)
	}
	if got := g.Value(); got != int64(workers*perWorker) {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != int64(workers*perWorker) {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterMonotonicAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("quasii_test_mono_total", "mono")
	var last float64 = -1
	for i := 0; i < 50; i++ {
		c.Add(int64(i % 3))
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		sc, err := ParseText(b.String())
		if err != nil {
			t.Fatal(err)
		}
		v, ok := sc.Value("quasii_test_mono_total", nil)
		if !ok {
			t.Fatal("counter missing from scrape")
		}
		if v < last {
			t.Fatalf("counter went backwards: %g after %g", v, last)
		}
		last = v
	}
}
