// Package cracktree provides the cracker index used by SFCracker: an ordered
// map from crack key (a Morton code boundary) to the array position where the
// partition at that key begins. It is a treap — a randomized balanced binary
// search tree — giving O(log n) expected insert and lookup, which matters
// because a single spatial query cracks the array at up to two boundaries per
// curve interval (the paper reports ~197 intervals per query).
//
// Priorities are derived deterministically from the key by an avalanche hash,
// keeping the whole reproduction seed-stable.
package cracktree

// Tree is an ordered key→position map. The zero value is an empty tree.
type Tree struct {
	root *node
	size int
}

type node struct {
	key         uint64
	pos         int
	prio        uint64
	left, right *node
}

// hash64 is SplitMix64's finalizer — a statelessly deterministic priority.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// Len returns the number of crack boundaries stored.
func (t *Tree) Len() int { return t.size }

// Get returns the position recorded for key, if present.
func (t *Tree) Get(key uint64) (pos int, ok bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.pos, true
		}
	}
	return 0, false
}

// Insert records pos for key. Inserting an existing key overwrites its
// position (cracking never needs this, but it keeps the map semantics clean).
func (t *Tree) Insert(key uint64, pos int) {
	inserted := false
	t.root = insert(t.root, key, pos, &inserted)
	if inserted {
		t.size++
	}
}

func insert(n *node, key uint64, pos int, inserted *bool) *node {
	if n == nil {
		*inserted = true
		return &node{key: key, pos: pos, prio: hash64(key)}
	}
	switch {
	case key < n.key:
		n.left = insert(n.left, key, pos, inserted)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	case key > n.key:
		n.right = insert(n.right, key, pos, inserted)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	default:
		n.pos = pos
	}
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// Floor returns the entry with the greatest key <= key.
func (t *Tree) Floor(key uint64) (k uint64, pos int, ok bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			k, pos, ok = n.key, n.pos, true
			n = n.right
		default:
			return n.key, n.pos, true
		}
	}
	return k, pos, ok
}

// Ceiling returns the entry with the smallest key > key (a strict successor).
func (t *Tree) Ceiling(key uint64) (k uint64, pos int, ok bool) {
	n := t.root
	for n != nil {
		if key < n.key {
			k, pos, ok = n.key, n.pos, true
			n = n.left
		} else {
			n = n.right
		}
	}
	return k, pos, ok
}

// Walk visits all entries in ascending key order until fn returns false.
func (t *Tree) Walk(fn func(key uint64, pos int) bool) {
	walk(t.root, fn)
}

func walk(n *node, fn func(uint64, int) bool) bool {
	if n == nil {
		return true
	}
	if !walk(n.left, fn) {
		return false
	}
	if !fn(n.key, n.pos) {
		return false
	}
	return walk(n.right, fn)
}
