package cracktree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Fatal("empty tree should have length 0")
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty tree should fail")
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor on empty tree should fail")
	}
	if _, _, ok := tr.Ceiling(5); ok {
		t.Fatal("Ceiling on empty tree should fail")
	}
}

func TestInsertGet(t *testing.T) {
	var tr Tree
	tr.Insert(10, 100)
	tr.Insert(5, 50)
	tr.Insert(20, 200)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	for _, tt := range []struct {
		key uint64
		pos int
	}{{10, 100}, {5, 50}, {20, 200}} {
		pos, ok := tr.Get(tt.key)
		if !ok || pos != tt.pos {
			t.Fatalf("Get(%d) = %d,%v, want %d", tt.key, pos, ok, tt.pos)
		}
	}
	if _, ok := tr.Get(7); ok {
		t.Fatal("Get(7) should miss")
	}
}

func TestInsertOverwrite(t *testing.T) {
	var tr Tree
	tr.Insert(10, 1)
	tr.Insert(10, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after duplicate insert", tr.Len())
	}
	if pos, _ := tr.Get(10); pos != 2 {
		t.Fatalf("pos = %d, want 2 (overwritten)", pos)
	}
}

func TestFloorCeiling(t *testing.T) {
	var tr Tree
	for _, k := range []uint64{10, 20, 30} {
		tr.Insert(k, int(k)*10)
	}
	tests := []struct {
		key      uint64
		floorKey uint64
		floorOK  bool
		ceilKey  uint64
		ceilOK   bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 20, true},
		{15, 10, true, 20, true},
		{30, 30, true, 0, false},
		{35, 30, true, 0, false},
	}
	for _, tt := range tests {
		k, _, ok := tr.Floor(tt.key)
		if ok != tt.floorOK || (ok && k != tt.floorKey) {
			t.Errorf("Floor(%d) = %d,%v, want %d,%v", tt.key, k, ok, tt.floorKey, tt.floorOK)
		}
		k, _, ok = tr.Ceiling(tt.key)
		if ok != tt.ceilOK || (ok && k != tt.ceilKey) {
			t.Errorf("Ceiling(%d) = %d,%v, want %d,%v", tt.key, k, ok, tt.ceilKey, tt.ceilOK)
		}
	}
}

func TestWalkOrdered(t *testing.T) {
	var tr Tree
	keys := []uint64{50, 10, 90, 30, 70, 20, 80}
	for _, k := range keys {
		tr.Insert(k, int(k))
	}
	var got []uint64
	tr.Walk(func(k uint64, pos int) bool {
		got = append(got, k)
		return true
	})
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("walk visited %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("walk order wrong at %d: %v", i, got)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	var tr Tree
	for k := uint64(0); k < 10; k++ {
		tr.Insert(k, 0)
	}
	count := 0
	tr.Walk(func(k uint64, pos int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("walk visited %d, want 3", count)
	}
}

// Property: against a reference sorted-map implementation, with random
// interleaved operations.
func TestTreeMatchesReferenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr Tree
		ref := make(map[uint64]int)
		for op := 0; op < 300; op++ {
			key := uint64(rng.Intn(100))
			switch rng.Intn(3) {
			case 0:
				pos := rng.Intn(1000)
				tr.Insert(key, pos)
				ref[key] = pos
			case 1:
				pos, ok := tr.Get(key)
				wantPos, wantOK := ref[key]
				if ok != wantOK || (ok && pos != wantPos) {
					return false
				}
			case 2:
				k, pos, ok := tr.Floor(key)
				var wantK uint64
				wantOK := false
				for rk := range ref {
					if rk <= key && (!wantOK || rk > wantK) {
						wantK, wantOK = rk, true
					}
				}
				if ok != wantOK || (ok && (k != wantK || pos != ref[wantK])) {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Treap balance sanity: a million sequential inserts must stay fast; we proxy
// by checking Walk visits everything for ascending insertions (worst case for
// an unbalanced BST) without stack overflow.
func TestSequentialInsertBalance(t *testing.T) {
	var tr Tree
	const n = 200000
	for k := uint64(0); k < n; k++ {
		tr.Insert(k, int(k))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	count := 0
	tr.Walk(func(k uint64, pos int) bool { count++; return true })
	if count != n {
		t.Fatalf("walk visited %d, want %d", count, n)
	}
}
