package cracktree

import (
	"math/rand"
	"testing"
)

func BenchmarkInsertRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var tr Tree
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Uint64(), i)
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	var tr Tree
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i), i)
	}
}

func BenchmarkFloorCeiling(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	var tr Tree
	for i := 0; i < 100000; i++ {
		tr.Insert(rng.Uint64(), i)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		if _, pos, ok := tr.Floor(rng.Uint64()); ok {
			sink += pos
		}
		if _, pos, ok := tr.Ceiling(rng.Uint64()); ok {
			sink += pos
		}
	}
	_ = sink
}
