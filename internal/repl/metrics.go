package repl

import (
	"math"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Metrics is the replication instrumentation, shared by both roles so a
// single registration covers every series regardless of how the process
// started (a leader's lag gauges just stay 0, a pure follower's stream
// counters likewise). All fields no-op when the struct or a field is nil.
type Metrics struct {
	// Follower side.
	LagRecords *telemetry.Gauge   // records behind the leader's next sequence
	Applied    *telemetry.Counter // records applied from the leader
	Reconnects *telemetry.Counter // failed fetches that triggered backoff
	Bootstraps *telemetry.Counter // full snapshot bootstraps (initial + re-)
	Promotions *telemetry.Counter // follower → leader promotions

	// Leader side.
	SnapshotStreams *telemetry.Counter // /repl/snapshot responses served
	WALStreams      *telemetry.Counter // /repl/wal 200 responses served
	ShippedRecords  *telemetry.Counter // WAL frames shipped to followers

	// FaultsInjected counts replication-transport faults delivered by a
	// FaultTransport (the link-level analogue of quasii_fault_injected_total).
	FaultsInjected *telemetry.Counter

	// lagSecondsBits backs the quasii_repl_lag_seconds gauge: float64 bits
	// of "seconds since this follower was last fully caught up" (0 while
	// caught up), set by the follower's lag bookkeeping.
	lagSecondsBits atomic.Uint64
}

// SetLagSeconds publishes the lag-age gauge.
func (m *Metrics) SetLagSeconds(v float64) {
	if m == nil {
		return
	}
	m.lagSecondsBits.Store(math.Float64bits(v))
}

// NewMetrics registers the full replication family on reg. Nil reg returns
// nil, which every consumer tolerates.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		LagRecords: reg.Gauge("quasii_repl_lag_records",
			"Records the follower is behind the leader's next sequence (0 when caught up or not a follower)."),
		Applied: reg.Counter("quasii_repl_applied_total",
			"WAL records applied from the replication stream."),
		Reconnects: reg.Counter("quasii_repl_reconnects_total",
			"Replication fetches that failed and entered backoff."),
		Bootstraps: reg.Counter("quasii_repl_bootstraps_total",
			"Full snapshot bootstraps performed by the follower (initial and recovery)."),
		Promotions: reg.Counter("quasii_repl_promotions_total",
			"Follower-to-leader promotions."),
		SnapshotStreams: reg.Counter("quasii_repl_snapshot_streams_total",
			"Snapshot archives streamed to bootstrapping followers."),
		WALStreams: reg.Counter("quasii_repl_wal_streams_total",
			"WAL record streams served to tailing followers."),
		ShippedRecords: reg.Counter("quasii_repl_shipped_records_total",
			"WAL records shipped to followers."),
		FaultsInjected: reg.Counter("quasii_repl_fault_injected_total",
			"Replication-transport faults injected by the test fault transport."),
	}
	reg.GaugeFunc("quasii_repl_lag_seconds",
		"Seconds since the follower was last fully caught up (0 while caught up or not a follower).",
		func() float64 { return math.Float64frombits(m.lagSecondsBits.Load()) })
	return m
}
