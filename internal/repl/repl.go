// Package repl replicates a durable store over HTTP: a Leader serves its
// latest checkpoint generation (GET /repl/snapshot) and framed WAL records
// from any retained global sequence (GET /repl/wal?from=N, long-polling at
// the tail); a Follower bootstraps from the snapshot, replays it through
// the normal shard restore path, then tails the leader applying records as
// they arrive — every fetch wrapped in bounded exponential backoff with
// jitter and per-request timeouts, resuming from its own durable
// next-sequence so a flaky or partitioned link can never corrupt or
// duplicate state.
//
// # Wire protocol
//
// Both endpoints answer application/octet-stream with three headers:
// X-Quasii-Repl-Gen (the generation served), X-Quasii-Repl-Start-Seq (the
// global sequence of the first byte of the body) and X-Quasii-Repl-Next-Seq
// (the leader's next sequence at response time — the follower's lag
// reference).
//
// /repl/snapshot streams the pinned live generation as a flat archive of
// CRC-framed files (see WriteArchive) terminated by an explicit sentinel,
// so a connection cut mid-stream is always detectable.
//
// /repl/wal?from=N&wait=ms streams raw WAL frames starting exactly at
// sequence N; each frame carries its own CRC (the on-disk format shipped
// verbatim), so the follower re-verifies every record and a torn stream
// ends cleanly at a frame boundary. 204 means the long poll expired with
// nothing new; 410 Gone means N predates retained history and the follower
// must re-bootstrap; 409 Conflict means N is ahead of the leader's log (a
// diverged pair) and likewise forces a re-bootstrap.
//
// # Guarantees
//
// Replication is asynchronous: a leader acknowledges writes before any
// follower has them, so promotion after a leader crash can lose the last
// lag window of acknowledged writes (bound it by gating clients on the
// follower's /readyz max-lag). What is guaranteed: a follower never serves
// a record the leader did not durably log, never applies a record twice,
// and never applies a corrupt one — every failure mode of the link ends in
// the follower caught up or cleanly re-bootstrapping.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Endpoint paths and header names shared by leader and follower.
const (
	PathSnapshot = "/repl/snapshot"
	PathWAL      = "/repl/wal"
	PathPromote  = "/repl/promote"

	HdrGen      = "X-Quasii-Repl-Gen"
	HdrStartSeq = "X-Quasii-Repl-Start-Seq"
	HdrNextSeq  = "X-Quasii-Repl-Next-Seq"
)

// ErrTornStream reports a snapshot archive that ended before its sentinel
// or failed a file CRC — the footprint of a connection cut or corrupted in
// flight. The fetched state is discarded and the bootstrap retried.
var ErrTornStream = errors.New("repl: snapshot stream torn or corrupt")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Archive framing: a flat sequence of files, each
//
//	uint32 name length | name | uint64 size | uint32 CRC-32C | bytes
//
// (little-endian), terminated by a zero name length. The terminator is what
// makes truncation detectable: a reader that hits EOF before it knows the
// stream is torn.
const (
	maxArchiveName = 4096
	maxArchiveFile = 1 << 31
)

// WriteArchive streams every regular file of dir (a flat snapshot
// directory) to w in the archive framing, ending with the sentinel.
func WriteArchive(w io.Writer, dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var hdr [16]byte
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(name)))
		if _, err := w.Write(hdr[:4]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, name); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(hdr[0:], uint64(len(data)))
		binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(data, crcTable))
		if _, err := w.Write(hdr[:12]); err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(hdr[0:], 0)
	_, err = w.Write(hdr[:4])
	return err
}

// ReadArchive reads an archive stream into dir (created if needed), fsyncs
// every file and the directory, and fails with ErrTornStream on any
// truncation or CRC mismatch. File names are confined to dir.
func ReadArchive(r io.Reader, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(r, hdr[:4]); err != nil {
			return fmt.Errorf("%w: reading name length: %v", ErrTornStream, err)
		}
		nameLen := binary.LittleEndian.Uint32(hdr[0:])
		if nameLen == 0 {
			return syncDir(dir) // sentinel: complete archive
		}
		if nameLen > maxArchiveName {
			return fmt.Errorf("%w: name length %d", ErrTornStream, nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return fmt.Errorf("%w: reading name: %v", ErrTornStream, err)
		}
		name := string(nameBuf)
		if name != filepath.Base(name) || name == "." || name == ".." || strings.ContainsAny(name, "/\\") {
			return fmt.Errorf("%w: unsafe file name %q", ErrTornStream, name)
		}
		if _, err := io.ReadFull(r, hdr[:12]); err != nil {
			return fmt.Errorf("%w: reading file header: %v", ErrTornStream, err)
		}
		size := binary.LittleEndian.Uint64(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[8:])
		if size > maxArchiveFile {
			return fmt.Errorf("%w: file size %d", ErrTornStream, size)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(r, data); err != nil {
			return fmt.Errorf("%w: reading %s: %v", ErrTornStream, name, err)
		}
		if crc32.Checksum(data, crcTable) != want {
			return fmt.Errorf("%w: crc mismatch on %s", ErrTornStream, name)
		}
		if err := writeFileSync(filepath.Join(dir, name), data); err != nil {
			return err
		}
	}
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so its entries survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
