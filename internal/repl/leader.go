package repl

import (
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/durable"
	"repro/internal/wal"
)

// Leader serves a durable store's state to followers. It implements the
// serving layer's ReplSource hooks; both handlers are safe for concurrent
// use and pin the generation they stream so a checkpoint landing mid-
// transfer can never garbage-collect it underneath them.
type Leader struct {
	store  *durable.Store
	m      *Metrics
	logger *slog.Logger
	// maxWait caps a single /repl/wal long poll; followers re-poll.
	maxWait time.Duration
}

// NewLeader wires a leader over store. Metrics and logger may be nil.
func NewLeader(store *durable.Store, m *Metrics, logger *slog.Logger) *Leader {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Leader{store: store, m: m, logger: logger, maxWait: 30 * time.Second}
}

// ServeSnapshot streams the live checkpoint generation as a CRC-framed
// archive (GET /repl/snapshot).
func (l *Leader) ServeSnapshot(w http.ResponseWriter, r *http.Request) {
	gen, start, dir, release, err := l.store.AcquireSnapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HdrGen, strconv.FormatUint(gen, 10))
	w.Header().Set(HdrStartSeq, strconv.FormatUint(start, 10))
	w.Header().Set(HdrNextSeq, strconv.FormatUint(l.store.NextSeq(), 10))
	if err := WriteArchive(w, dir); err != nil {
		// Headers are long gone; the follower detects the cut by the
		// missing sentinel. Log and move on.
		l.logger.Warn("snapshot stream aborted", "generation", gen, "err", err)
		return
	}
	if l.m != nil {
		l.m.SnapshotStreams.Inc()
	}
	l.logger.Info("snapshot streamed to follower",
		"generation", gen, "start_seq", start, "remote", r.RemoteAddr)
}

// ServeWAL streams raw WAL frames from a global sequence (GET
// /repl/wal?from=N&wait=ms). With wait, an empty tail long-polls until a
// record lands or the window expires (204). 410 means N was garbage-
// collected, 409 that N is ahead of this leader's log — both tell the
// follower to re-bootstrap.
func (l *Leader) ServeWAL(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		http.Error(w, "repl: ?from must be a positive sequence number", http.StatusBadRequest)
		return
	}
	var wait time.Duration
	if raw := r.URL.Query().Get("wait"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms < 0 {
			http.Error(w, "repl: ?wait must be non-negative milliseconds", http.StatusBadRequest)
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > l.maxWait {
		wait = l.maxWait
	}

	if from > l.store.NextSeq() {
		http.Error(w, durable.ErrSeqAhead.Error(), http.StatusConflict)
		return
	}

	// Long-poll: arm the notification channel before re-checking the
	// sequence, so a record landing between the check and the wait can
	// never be missed.
	deadline := time.Now().Add(wait)
	for l.store.NextSeq() <= from {
		notify := l.store.UpdateNotify()
		if l.store.NextSeq() > from {
			break
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			w.Header().Set(HdrNextSeq, strconv.FormatUint(l.store.NextSeq(), 10))
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := time.NewTimer(remain)
		select {
		case <-notify:
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
		t.Stop()
	}

	gen, start, path, release, err := l.store.AcquireWAL(from)
	switch {
	case errors.Is(err, durable.ErrSeqTruncated):
		http.Error(w, err.Error(), http.StatusGone)
		return
	case errors.Is(err, durable.ErrSeqAhead):
		http.Error(w, err.Error(), http.StatusConflict)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()

	rd, err := wal.OpenReader(path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer rd.Close()
	skipped, err := rd.Skip(from - start)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	first, ok, err := rd.Next()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if skipped < from-start || !ok {
		// The log's intact prefix ends before a record the sequence
		// counter promised: rotted or truncated history. Same recovery as
		// GC'd history — the follower re-bootstraps from the snapshot.
		l.logger.Error("wal history unreadable before requested sequence",
			"generation", gen, "from", from, "intact_skipped", skipped)
		http.Error(w, durable.ErrSeqTruncated.Error(), http.StatusGone)
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HdrGen, strconv.FormatUint(gen, 10))
	w.Header().Set(HdrStartSeq, strconv.FormatUint(from, 10))
	w.Header().Set(HdrNextSeq, strconv.FormatUint(l.store.NextSeq(), 10))
	shipped := int64(0)
	for {
		if _, werr := w.Write(first); werr != nil {
			break // follower went away; it will resume from its own seq
		}
		shipped++
		first, ok, err = rd.Next()
		if err != nil || !ok {
			break
		}
	}
	if l.m != nil {
		l.m.WALStreams.Inc()
		l.m.ShippedRecords.Add(shipped)
	}
}
