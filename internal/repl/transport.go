package repl

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultKind names a replication-link failure mode — the transport-level
// analogue of faultfs's write faults. Every kind a real network exhibits
// at the granularity the protocol must survive: requests that never
// arrive, requests that hang until the client times out, bodies cut mid-
// frame, and bytes flipped in flight.
type FaultKind int

const (
	// FaultError fails the request outright (connection refused/reset).
	FaultError FaultKind = iota
	// FaultStall sleeps Delay then fails — exercising the per-request
	// timeout (a stall longer than the client timeout surfaces as
	// context.DeadlineExceeded, exactly like a partitioned peer).
	FaultStall
	// FaultTruncate delivers only Bytes of the response body, then EOF:
	// a torn stream. Frames after the cut must be re-fetched, never
	// half-applied.
	FaultTruncate
	// FaultCorrupt flips one bit of the body byte at offset Bytes:
	// payload corruption the per-frame CRCs must catch.
	FaultCorrupt
)

// FaultRule matches requests and names the fault to deliver. Matching and
// firing mirror faultfs.Rule: a Path substring filter, then Every / Prob /
// Times gating, all driven by the transport's seeded generator so runs are
// reproducible.
type FaultRule struct {
	// Path substring the request URL path must contain ("" matches all).
	Path string
	Kind FaultKind
	// Every fires on every Nth matching request (1 = all); when 0, Prob
	// fires randomly with that probability.
	Every int
	Prob  float64
	// Times bounds total firings (0 = unlimited).
	Times int
	// Bytes is the truncate-after length (FaultTruncate) or corrupt-at
	// offset (FaultCorrupt).
	Bytes int64
	// Delay is the stall duration (FaultStall).
	Delay time.Duration
}

type faultRuleState struct {
	FaultRule
	matches int
	fired   int
}

// FaultTransport wraps an http.RoundTripper with deterministic, seeded
// fault injection on the replication link. Safe for concurrent use.
type FaultTransport struct {
	under    http.RoundTripper
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*faultRuleState
	injected atomic.Int64
	m        *Metrics
}

// NewFaultTransport wraps under (nil selects http.DefaultTransport) with
// the given rules, driven by a deterministic generator seeded with seed.
func NewFaultTransport(under http.RoundTripper, seed int64, rules ...FaultRule) *FaultTransport {
	if under == nil {
		under = http.DefaultTransport
	}
	t := &FaultTransport{under: under, rng: rand.New(rand.NewSource(seed))}
	for i := range rules {
		t.rules = append(t.rules, &faultRuleState{FaultRule: rules[i]})
	}
	return t
}

// SetMetrics attaches a counter that moves with Injected().
func (t *FaultTransport) SetMetrics(m *Metrics) {
	t.mu.Lock()
	t.m = m
	t.mu.Unlock()
}

// Injected reports how many faults have been delivered.
func (t *FaultTransport) Injected() int64 { return t.injected.Load() }

// pick returns the first rule that fires for this request, if any.
func (t *FaultTransport) pick(path string) *faultRuleState {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.rules {
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.matches++
		if r.Times > 0 && r.fired >= r.Times {
			continue
		}
		fire := false
		if r.Every > 0 {
			fire = r.matches%r.Every == 0
		} else if r.Prob > 0 {
			fire = t.rng.Float64() < r.Prob
		}
		if fire {
			r.fired++
			return r
		}
	}
	return nil
}

func (t *FaultTransport) note() {
	t.injected.Add(1)
	t.mu.Lock()
	m := t.m
	t.mu.Unlock()
	if m != nil {
		m.FaultsInjected.Inc()
	}
}

// RoundTrip delivers the request, or the fault a rule selected.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	r := t.pick(req.URL.Path)
	if r == nil {
		return t.under.RoundTrip(req)
	}
	switch r.Kind {
	case FaultError:
		t.note()
		return nil, fmt.Errorf("repl fault injected: connection error on %s", req.URL.Path)
	case FaultStall:
		t.note()
		timer := time.NewTimer(r.Delay)
		defer timer.Stop()
		select {
		case <-timer.C:
			return nil, fmt.Errorf("repl fault injected: stall on %s", req.URL.Path)
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	case FaultTruncate:
		resp, err := t.under.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		t.note()
		resp.Body = &truncateBody{rc: resp.Body, remain: r.Bytes}
		resp.ContentLength = -1
		return resp, nil
	case FaultCorrupt:
		resp, err := t.under.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		t.note()
		resp.Body = &corruptBody{rc: resp.Body, at: r.Bytes}
		return resp, nil
	}
	return t.under.RoundTrip(req)
}

// truncateBody delivers remain bytes then reports EOF, simulating a
// connection cut mid-stream.
type truncateBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	return n, err
}

func (b *truncateBody) Close() error { return b.rc.Close() }

// corruptBody flips one bit of the byte at offset at.
type corruptBody struct {
	rc  io.ReadCloser
	at  int64
	off int64
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if n > 0 && b.at >= b.off && b.at < b.off+int64(n) {
		p[b.at-b.off] ^= 0x40
	}
	b.off += int64(n)
	return n, err
}

func (b *corruptBody) Close() error { return b.rc.Close() }
