package repl

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/wal"
)

// errRebootstrap tells the tail loop the leader can no longer serve this
// follower's resume point (history GC'd, or a diverged pair) and the only
// safe recovery is a fresh bootstrap.
var errRebootstrap = errors.New("repl: leader cannot serve resume point, re-bootstrap required")

// FollowerOptions configures Open.
type FollowerOptions struct {
	// LeaderURL is the leader's base URL (e.g. "http://10.0.0.1:8080").
	LeaderURL string
	// Dir is the follower's own data directory: it gets a full durable
	// store (snapshot generations + WAL), so a restart resumes from local
	// state without re-bootstrapping.
	Dir string
	// Store carries the durable-store knobs (shard config, fsync policy,
	// checkpoint cadence, retention, retry budget). Bootstrap must be nil
	// — the follower's bootstrap is the leader's snapshot.
	Store durable.Options

	// PollWait is the long-poll window a tail fetch asks the leader to
	// hold. 0 selects 2s.
	PollWait time.Duration
	// RequestTimeout bounds one WAL fetch end to end. 0 selects
	// PollWait + 10s (the poll window plus transfer headroom).
	RequestTimeout time.Duration
	// SnapshotTimeout bounds the bootstrap snapshot fetch. 0 selects 5m.
	SnapshotTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential retry backoff between
	// failed fetches. 0 selects 50ms / 3s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed drives the backoff jitter (reproducible tests). 0 selects 1.
	Seed int64

	// Transport is the HTTP transport for leader fetches; nil selects
	// http.DefaultTransport. Tests install a FaultTransport here.
	Transport http.RoundTripper
	// OnStateSwap is invoked (from the tail goroutine) after a
	// re-bootstrap replaces the follower's store: the previous index is
	// dead and the serving layer must re-wire onto the new one.
	OnStateSwap func(*durable.Store)

	Logger  *slog.Logger
	Metrics *Metrics
}

func (o *FollowerOptions) withDefaults() FollowerOptions {
	d := *o
	if d.PollWait <= 0 {
		d.PollWait = 2 * time.Second
	}
	if d.RequestTimeout <= 0 {
		d.RequestTimeout = d.PollWait + 10*time.Second
	}
	if d.SnapshotTimeout <= 0 {
		d.SnapshotTimeout = 5 * time.Minute
	}
	if d.BackoffMin <= 0 {
		d.BackoffMin = 50 * time.Millisecond
	}
	if d.BackoffMax <= 0 {
		d.BackoffMax = 3 * time.Second
	}
	if d.Seed == 0 {
		d.Seed = 1
	}
	if d.Logger == nil {
		d.Logger = slog.New(slog.DiscardHandler)
	}
	return d
}

// Follower owns a durable store kept in sync with a leader. It serves the
// normal read path through Store().Index() while read-only; Promote flips
// it into a writable leader. All methods are safe for concurrent use.
type Follower struct {
	opts   FollowerOptions
	logger *slog.Logger
	m      *Metrics
	client *http.Client

	store atomic.Pointer[durable.Store]

	writable     atomic.Bool
	bootstrapped atomic.Bool
	// leaderNext mirrors the leader's next sequence from the most recent
	// response; the lag reference.
	leaderNext atomic.Uint64
	// caughtUpAt is the unix-nano instant lag was last observed 0 (the
	// follower's start instant until then): the lag-seconds reference.
	caughtUpAt atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand

	stopOnce sync.Once
	stopCh   chan struct{}
	runDone  chan struct{}
}

// Open brings up a follower: resume from local state in Dir when present,
// otherwise bootstrap from the leader's snapshot (retrying with backoff
// until ctx expires), then start tailing the leader's WAL in the
// background. The returned follower is immediately readable.
func Open(ctx context.Context, opts FollowerOptions) (*Follower, error) {
	if opts.LeaderURL == "" {
		return nil, errors.New("repl: FollowerOptions.LeaderURL is required")
	}
	if opts.Dir == "" {
		return nil, errors.New("repl: FollowerOptions.Dir is required")
	}
	if opts.Store.Bootstrap != nil {
		return nil, errors.New("repl: FollowerOptions.Store.Bootstrap must be nil (the leader's snapshot is the bootstrap)")
	}
	o := opts.withDefaults()
	f := &Follower{
		opts:    o,
		logger:  o.Logger,
		m:       o.Metrics,
		client:  &http.Client{Transport: o.Transport},
		rng:     rand.New(rand.NewSource(o.Seed)),
		stopCh:  make(chan struct{}),
		runDone: make(chan struct{}),
	}
	f.caughtUpAt.Store(time.Now().UnixNano())

	has, err := durable.HasState(o.Dir)
	if err != nil {
		return nil, err
	}
	if has {
		st, err := durable.Open(o.Dir, f.storeOpts())
		if err != nil {
			// Local state unreadable: treat it like a torn bootstrap and
			// fetch fresh — the leader is the source of truth.
			f.logger.Warn("follower state unreadable, re-bootstrapping", "dir", o.Dir, "err", err)
		} else {
			f.store.Store(st)
			f.bootstrapped.Store(true)
			f.logger.Info("follower resumed from local state",
				"dir", o.Dir, "next_seq", st.NextSeq())
		}
	}
	if f.store.Load() == nil {
		if err := f.bootstrapRetry(ctx); err != nil {
			return nil, err
		}
	}
	go f.run()
	return f, nil
}

// storeOpts is the follower's durable configuration: caller knobs with the
// bootstrap forced off.
func (f *Follower) storeOpts() durable.Options {
	so := f.opts.Store
	so.Bootstrap = nil
	if so.Logger == nil {
		so.Logger = f.logger
	}
	return so
}

// Store returns the follower's current durable store (replaced only by a
// re-bootstrap, which announces itself via OnStateSwap).
func (f *Follower) Store() *durable.Store { return f.store.Load() }

// LeaderURL returns the configured leader base URL.
func (f *Follower) LeaderURL() string { return f.opts.LeaderURL }

// Writable reports whether the follower has been promoted.
func (f *Follower) Writable() bool { return f.writable.Load() }

// ReplProbe reports the follower's replication position: the last applied
// global sequence, the leader's last observed next sequence, the lag in
// records and in seconds (time since last caught up), and whether the
// follower has completed a bootstrap. The tuple form satisfies the serving
// layer's probe interface without a type dependency.
func (f *Follower) ReplProbe() (appliedSeq, leaderSeq uint64, lagRecords int64, lagSeconds float64, bootstrapped bool) {
	st := f.store.Load()
	if st == nil {
		return 0, f.leaderNext.Load(), 0, 0, false
	}
	next := st.NextSeq()
	appliedSeq = next - 1
	leaderSeq = f.leaderNext.Load()
	if leaderSeq > next {
		lagRecords = int64(leaderSeq - next)
	}
	if lagRecords > 0 && !f.writable.Load() {
		lagSeconds = time.Since(time.Unix(0, f.caughtUpAt.Load())).Seconds()
	}
	return appliedSeq, leaderSeq, lagRecords, lagSeconds, f.bootstrapped.Load()
}

// noteLag refreshes the lag gauges after a poll.
func (f *Follower) noteLag() {
	_, _, lagRec, _, _ := f.ReplProbe()
	if lagRec == 0 {
		f.caughtUpAt.Store(time.Now().UnixNano())
	}
	if f.m != nil {
		f.m.LagRecords.Set(lagRec)
	}
	_, _, _, lagSec, _ := f.ReplProbe()
	f.m.SetLagSeconds(lagSec)
}

// run is the tail loop: poll, apply, back off on failure, re-bootstrap
// when the leader says the resume point is unservable.
func (f *Follower) run() {
	defer close(f.runDone)
	backoff := f.opts.BackoffMin
	for {
		select {
		case <-f.stopCh:
			return
		default:
		}
		err := f.pollOnce()
		if err == nil {
			backoff = f.opts.BackoffMin
			continue
		}
		if errors.Is(err, errRebootstrap) {
			f.logger.Warn("leader cannot serve resume point, re-bootstrapping")
			if rerr := f.rebootstrap(); rerr != nil {
				f.logger.Warn("re-bootstrap failed, backing off", "err", rerr)
				if !f.sleep(backoff) {
					return
				}
				backoff = f.nextBackoff(backoff)
			} else {
				backoff = f.opts.BackoffMin
			}
			continue
		}
		if f.m != nil {
			f.m.Reconnects.Inc()
		}
		f.logger.Warn("replication fetch failed, backing off",
			"err", err, "backoff", backoff.String())
		if !f.sleep(backoff) {
			return
		}
		backoff = f.nextBackoff(backoff)
	}
}

// sleep waits d plus jitter, or until the loop is stopped (false).
func (f *Follower) sleep(d time.Duration) bool {
	f.rngMu.Lock()
	jitter := time.Duration(f.rng.Int63n(int64(d)/2 + 1))
	f.rngMu.Unlock()
	t := time.NewTimer(d + jitter)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.stopCh:
		return false
	}
}

func (f *Follower) nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > f.opts.BackoffMax {
		d = f.opts.BackoffMax
	}
	return d
}

// pollOnce fetches and applies one batch of WAL records from the
// follower's own durable next-sequence — the resume point that makes every
// retry idempotent: a record is fetched again only if its append never
// committed locally.
func (f *Follower) pollOnce() error {
	st := f.store.Load()
	from := st.NextSeq()
	url := fmt.Sprintf("%s%s?from=%d&wait=%d",
		f.opts.LeaderURL, PathWAL, from, f.opts.PollWait.Milliseconds())
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	f.noteLeaderNext(resp.Header.Get(HdrNextSeq))

	switch resp.StatusCode {
	case http.StatusOK:
		// Stream-decode and apply. Each applied record goes through the
		// follower's own WAL before it is acknowledged, so the local
		// next-sequence — the next resume point — only moves when the
		// record is durable here. A torn or corrupt frame ends the batch
		// cleanly; everything after it is re-fetched next poll.
		dec := wal.NewStreamDecoder(resp.Body)
		var rec wal.Record
		applied := int64(0)
		var aerr error
		for {
			ok, derr := dec.Next(&rec)
			if derr != nil || !ok {
				break
			}
			switch rec.Op {
			case wal.OpInsert:
				aerr = st.Insert(rec.Objects...)
			case wal.OpDelete:
				_, aerr = st.Delete(rec.ID, rec.Hint)
			default:
				aerr = fmt.Errorf("repl: unknown opcode %d", rec.Op)
			}
			if aerr != nil {
				break
			}
			applied++
		}
		if f.m != nil {
			f.m.Applied.Add(applied)
		}
		f.noteLag()
		if aerr != nil {
			// A local apply failure (e.g. the follower's own disk
			// degraded) is a transient: back off and retry from the same
			// sequence once the store recovers.
			return fmt.Errorf("applying replicated record: %w", aerr)
		}
		return nil
	case http.StatusNoContent:
		f.noteLag()
		return nil
	case http.StatusGone, http.StatusConflict:
		return errRebootstrap
	default:
		return fmt.Errorf("repl: leader answered %s to wal fetch", resp.Status)
	}
}

func (f *Follower) noteLeaderNext(raw string) {
	if raw == "" {
		return
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return
	}
	// Monotonic max: responses can arrive reordered relative to the
	// leader's progress.
	for {
		cur := f.leaderNext.Load()
		if v <= cur || f.leaderNext.CompareAndSwap(cur, v) {
			return
		}
	}
}

// bootstrapRetry runs bootstrap attempts with backoff until one succeeds
// or ctx expires.
func (f *Follower) bootstrapRetry(ctx context.Context) error {
	backoff := f.opts.BackoffMin
	for {
		err := f.bootstrapOnce(ctx)
		if err == nil {
			return nil
		}
		f.logger.Warn("bootstrap attempt failed", "err", err)
		select {
		case <-ctx.Done():
			return fmt.Errorf("repl: bootstrap: %w (last error: %v)", ctx.Err(), err)
		case <-time.After(backoff):
		}
		backoff = f.nextBackoff(backoff)
	}
}

// bootstrapOnce wipes Dir and installs a fresh generation fetched from the
// leader: archive into snap-G.fetch, rename into place, point CURRENT at
// it, open the store. Any failure leaves a directory the next attempt (or
// a process restart) wipes again — never a half-installed CURRENT.
func (f *Follower) bootstrapOnce(ctx context.Context) error {
	fctx, cancel := context.WithTimeout(ctx, f.opts.SnapshotTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, f.opts.LeaderURL+PathSnapshot, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: leader answered %s to snapshot fetch", resp.Status)
	}
	gen, err := strconv.ParseUint(resp.Header.Get(HdrGen), 10, 64)
	if err != nil {
		return fmt.Errorf("repl: bad %s header: %w", HdrGen, err)
	}
	if err := os.RemoveAll(f.opts.Dir); err != nil {
		return err
	}
	if err := os.MkdirAll(f.opts.Dir, 0o755); err != nil {
		return err
	}
	final := durable.SnapshotDir(f.opts.Dir, gen)
	tmp := final + ".fetch"
	if err := ReadArchive(resp.Body, tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(f.opts.Dir); err != nil {
		return err
	}
	if err := durable.InstallCurrent(f.opts.Dir, gen); err != nil {
		return err
	}
	st, err := durable.Open(f.opts.Dir, f.storeOpts())
	if err != nil {
		return fmt.Errorf("opening bootstrapped state: %w", err)
	}
	f.store.Store(st)
	f.bootstrapped.Store(true)
	f.caughtUpAt.Store(time.Now().UnixNano())
	if f.m != nil {
		f.m.Bootstraps.Inc()
	}
	f.noteLeaderNext(resp.Header.Get(HdrNextSeq))
	f.logger.Info("follower bootstrapped from leader snapshot",
		"generation", gen, "next_seq", st.NextSeq(), "leader", f.opts.LeaderURL)
	return nil
}

// rebootstrap retires the current store and fetches fresh state. Reads
// keep serving the old index until the swap lands.
func (f *Follower) rebootstrap() error {
	f.bootstrapped.Store(false)
	if st := f.store.Load(); st != nil {
		if err := st.Close(); err != nil && !errors.Is(err, durable.ErrClosed) {
			f.logger.Warn("closing stale follower store", "err", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.SnapshotTimeout)
	defer cancel()
	if err := f.bootstrapOnce(ctx); err != nil {
		return err
	}
	if f.opts.OnStateSwap != nil {
		f.opts.OnStateSwap(f.store.Load())
	}
	return nil
}

// stopTail stops the tail loop and waits for it to exit.
func (f *Follower) stopTail() {
	f.stopOnce.Do(func() { close(f.stopCh) })
	<-f.runDone
}

// Promote stops tailing, checkpoints the applied state to a fresh
// generation (proving the local disk writable end to end), and flips the
// follower writable. Idempotent: promoting a promoted follower returns the
// live generation. On checkpoint failure the follower stays read-only and
// Promote may be retried.
func (f *Follower) Promote() (uint64, error) {
	st := f.store.Load()
	if st == nil || !f.bootstrapped.Load() {
		return 0, errors.New("repl: cannot promote before bootstrap completes")
	}
	if f.writable.Load() {
		return st.Seq(), nil
	}
	f.stopTail()
	seq, err := st.Checkpoint()
	if err != nil {
		return 0, fmt.Errorf("promotion checkpoint: %w", err)
	}
	f.writable.Store(true)
	if f.m != nil {
		f.m.Promotions.Inc()
		f.m.LagRecords.Set(0)
		f.m.SetLagSeconds(0)
	}
	f.logger.Info("follower promoted to leader", "snapshot_seq", seq)
	return seq, nil
}

// Close stops tailing and closes the store.
func (f *Follower) Close() error {
	f.stopTail()
	if st := f.store.Load(); st != nil {
		if err := st.Close(); err != nil && !errors.Is(err, durable.ErrClosed) {
			return err
		}
	}
	return nil
}
