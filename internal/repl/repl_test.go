package repl

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// newLeaderStore opens a durable store bootstrapped with data in a fresh
// temp dir. FsyncNever keeps the tests fast; durability per se is the
// durable package's problem, replication only needs the record stream.
func newLeaderStore(t *testing.T, data []geom.Object) *durable.Store {
	t.Helper()
	st, err := durable.Open(t.TempDir(), durable.Options{
		Shard:     shard.Config{Shards: 2},
		Bootstrap: func() []geom.Object { return data },
		Fsync:     durable.FsyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// leaderServer mounts the leader's two replication handlers on a plain mux
// — the protocol needs nothing from the serving layer.
func leaderServer(t *testing.T, l *Leader) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc(PathSnapshot, l.ServeSnapshot)
	mux.HandleFunc(PathWAL, l.ServeWAL)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// followerOpts returns tight-timing follower options pointed at leaderURL,
// with rt (nil = default transport) on the link.
func followerOpts(t *testing.T, leaderURL string, rt http.RoundTripper) FollowerOptions {
	t.Helper()
	return FollowerOptions{
		LeaderURL:  leaderURL,
		Dir:        filepath.Join(t.TempDir(), "follower"),
		Store:      durable.Options{Shard: shard.Config{Shards: 2}, Fsync: durable.FsyncNever},
		PollWait:   100 * time.Millisecond,
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		Transport:  rt,
	}
}

// applyWrites drives n insert operations (IDs base..base+n-1, boxes drawn
// from the dataset's own geometry) at st, deleting every third one again —
// the same mixed write stream the durable crash tests use.
func applyWrites(t *testing.T, st *durable.Store, data []geom.Object, base int32, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		obj := geom.Object{Box: data[i%len(data)].Box, ID: base + int32(i)}
		if err := st.Insert(obj); err != nil {
			t.Fatalf("insert %d: %v", obj.ID, err)
		}
		if i%3 == 0 {
			if _, err := st.Delete(obj.ID, obj.Box); err != nil {
				t.Fatalf("delete %d: %v", obj.ID, err)
			}
		}
	}
}

func universeIDs(st *durable.Store) []int32 {
	ids := append([]int32(nil), st.Index().Query(dataset.Universe(), nil)...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// waitCaughtUp polls until the follower's durable next-sequence equals the
// leader's. Call only after the leader's writers are done.
func waitCaughtUp(t *testing.T, f *Follower, leader *durable.Store, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		fs := f.Store()
		if fs != nil && fs.NextSeq() == leader.NextSeq() {
			return
		}
		if time.Now().After(deadline) {
			var got uint64
			if fs != nil {
				got = fs.NextSeq()
			}
			t.Fatalf("follower never caught up: follower next_seq %d, leader %d", got, leader.NextSeq())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// requireSameState asserts leader and follower answer the full-universe
// query with identical ID sets — a duplicate-applied record would surface
// as a doubled ID, a lost one as a missing ID — and agree on the sequence.
func requireSameState(t *testing.T, leader, follower *durable.Store) {
	t.Helper()
	if ln, fn := leader.NextSeq(), follower.NextSeq(); ln != fn {
		t.Fatalf("sequence mismatch: leader next_seq %d, follower %d", ln, fn)
	}
	lids, fids := universeIDs(leader), universeIDs(follower)
	if len(lids) != len(fids) {
		t.Fatalf("object count mismatch: leader %d, follower %d", len(lids), len(fids))
	}
	for i := range lids {
		if lids[i] != fids[i] {
			t.Fatalf("ID set diverges at %d: leader %d, follower %d", i, lids[i], fids[i])
		}
	}
}

func TestFollowerBootstrapAndTail(t *testing.T) {
	data := dataset.Uniform(1000, 11)
	st := newLeaderStore(t, data)
	srv := leaderServer(t, NewLeader(st, nil, nil))

	f, err := Open(context.Background(), followerOpts(t, srv.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Bootstrap alone must reproduce the dataset.
	requireSameState(t, st, f.Store())

	// Live writes ship through the tail.
	applyWrites(t, st, data, 1_000_000, 30)
	waitCaughtUp(t, f, st, 10*time.Second)
	requireSameState(t, st, f.Store())

	applied, leaderSeq, lagRec, _, boot := f.ReplProbe()
	if !boot {
		t.Fatal("ReplProbe: not bootstrapped after bootstrap")
	}
	if lagRec != 0 {
		t.Fatalf("ReplProbe: lag %d records after catch-up", lagRec)
	}
	if want := st.NextSeq() - 1; applied != want {
		t.Fatalf("ReplProbe: applied seq %d, want %d", applied, want)
	}
	if leaderSeq != st.NextSeq() {
		t.Fatalf("ReplProbe: observed leader seq %d, want %d", leaderSeq, st.NextSeq())
	}
	if f.Writable() {
		t.Fatal("follower writable before promotion")
	}
}

// TestFollowerFaultInjection drives every transport failure mode the link
// can exhibit — dropped connections, stalls, bodies cut mid-frame, bit
// flips — against a live write stream and requires the follower to end
// exactly caught up: every record applied exactly once, none corrupt,
// none duplicated. The transport analogue of the faultfs crash sweep.
func TestFollowerFaultInjection(t *testing.T) {
	cases := []struct {
		name  string
		rules []FaultRule
	}{
		{"connection-errors", []FaultRule{
			{Path: PathWAL, Kind: FaultError, Every: 3},
		}},
		{"stalls", []FaultRule{
			{Path: PathWAL, Kind: FaultStall, Every: 4, Delay: 30 * time.Millisecond},
		}},
		{"torn-wal-stream", []FaultRule{
			// Cut the body mid-frame: a partial batch applies, the torn
			// frame must not, and the next poll resumes exactly there.
			{Path: PathWAL, Kind: FaultTruncate, Every: 3, Bytes: 200},
		}},
		{"corrupt-wal-frame", []FaultRule{
			// Flip a payload bit: the per-frame CRC must reject it and end
			// the batch cleanly before the bad record.
			{Path: PathWAL, Kind: FaultCorrupt, Every: 3, Bytes: 10},
		}},
		{"torn-snapshot-bootstrap", []FaultRule{
			// First bootstrap attempt delivers a cut archive; the missing
			// sentinel must fail it and the retry must succeed.
			{Path: PathSnapshot, Kind: FaultTruncate, Every: 1, Times: 1, Bytes: 64},
		}},
		{"corrupt-snapshot-bootstrap", []FaultRule{
			{Path: PathSnapshot, Kind: FaultCorrupt, Every: 1, Times: 1, Bytes: 100},
		}},
		{"everything-at-once", []FaultRule{
			{Path: PathSnapshot, Kind: FaultTruncate, Every: 1, Times: 1, Bytes: 64},
			{Path: PathWAL, Kind: FaultError, Every: 5},
			{Path: PathWAL, Kind: FaultTruncate, Every: 4, Bytes: 150},
			{Path: PathWAL, Kind: FaultCorrupt, Every: 3, Bytes: 12},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := dataset.Uniform(500, 23)
			st := newLeaderStore(t, data)
			srv := leaderServer(t, NewLeader(st, nil, nil))
			ft := NewFaultTransport(nil, 42, tc.rules...)

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			f, err := Open(ctx, followerOpts(t, srv.URL, ft))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			// First burst lands while the link is (about to be) failing.
			applyWrites(t, st, data, 2_000_000, 30)

			// The tail never stops polling (expired long polls count as
			// matching requests), so every Every-gated rule fires if we
			// wait. Require at least one real injection before the second
			// burst — otherwise the case proves nothing.
			deadline := time.Now().Add(20 * time.Second)
			for ft.Injected() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("no faults were injected: the case proved nothing")
				}
				time.Sleep(5 * time.Millisecond)
			}

			// Second burst ships through the now-demonstrably-faulty link.
			applyWrites(t, st, data, 2_100_000, 30)
			waitCaughtUp(t, f, st, 20*time.Second)
			requireSameState(t, st, f.Store())
		})
	}
}

// TestFollowerRebootstrapAfterTruncatedHistory parks a follower, advances
// the leader far enough that generation GC discards the follower's resume
// point, and requires the reopened follower to take the 410 as a clean
// re-bootstrap: state swapped via OnStateSwap, final state identical.
func TestFollowerRebootstrapAfterTruncatedHistory(t *testing.T) {
	data := dataset.Uniform(800, 7)
	st := newLeaderStore(t, data)
	srv := leaderServer(t, NewLeader(st, nil, nil))
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)

	opts := followerOpts(t, srv.URL, nil)
	opts.Metrics = m
	f1, err := Open(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	applyWrites(t, st, data, 3_000_000, 6)
	waitCaughtUp(t, f1, st, 10*time.Second)
	resumeSeq := f1.Store().NextSeq()
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}

	// Two checkpoints with the default retention (2) garbage-collect the
	// bootstrap generation — and with it every record before the first
	// rotation, including the parked follower's resume point.
	leaderDir := st.Dir()
	applyWrites(t, st, data, 3_100_000, 10)
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyWrites(t, st, data, 3_200_000, 10)
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(durable.WALPath(leaderDir, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("generation 1 WAL still present after GC (err %v)", err)
	}
	if _, _, _, release, err := st.AcquireWAL(resumeSeq); err == nil {
		release()
		t.Fatalf("seq %d still servable: the test never forced a re-bootstrap", resumeSeq)
	} else if !errors.Is(err, durable.ErrSeqTruncated) {
		t.Fatalf("AcquireWAL(%d) = %v, want ErrSeqTruncated", resumeSeq, err)
	}

	var swapped atomic.Int64
	opts.OnStateSwap = func(ns *durable.Store) {
		if ns == nil {
			t.Error("OnStateSwap delivered a nil store")
		}
		swapped.Add(1)
	}
	f2, err := Open(context.Background(), opts) // resumes stale local state
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()

	waitCaughtUp(t, f2, st, 20*time.Second)
	requireSameState(t, st, f2.Store())
	if swapped.Load() == 0 {
		t.Fatal("OnStateSwap never fired: follower did not re-bootstrap")
	}
	if got := m.Bootstraps.Value(); got < 2 {
		t.Fatalf("bootstraps counter %d, want >= 2 (initial + recovery)", got)
	}
}

func TestFollowerPromote(t *testing.T) {
	data := dataset.Uniform(600, 13)
	st := newLeaderStore(t, data)
	srv := leaderServer(t, NewLeader(st, nil, nil))

	f, err := Open(context.Background(), followerOpts(t, srv.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	applyWrites(t, st, data, 4_000_000, 9)
	waitCaughtUp(t, f, st, 10*time.Second)

	seq, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Writable() {
		t.Fatal("follower not writable after Promote")
	}
	again, err := f.Promote()
	if err != nil || again != seq {
		t.Fatalf("second Promote = (%d, %v), want idempotent (%d, nil)", again, err, seq)
	}

	// Promotion stopped the tail synchronously: leader writes no longer
	// arrive, and the promoted store takes writes of its own.
	before := f.Store().NextSeq()
	applyWrites(t, st, data, 4_100_000, 3)
	if got := f.Store().NextSeq(); got != before {
		t.Fatalf("promoted follower still tailing: next_seq moved %d -> %d", before, got)
	}
	obj := geom.Object{Box: data[0].Box, ID: 4_200_000}
	if err := f.Store().Insert(obj); err != nil {
		t.Fatalf("insert on promoted follower: %v", err)
	}
	ids := f.Store().Index().Query(obj.Box, nil)
	found := false
	for _, id := range ids {
		found = found || id == obj.ID
	}
	if !found {
		t.Fatal("post-promotion write not readable")
	}
}

// TestServeWALStatusCodes exercises the wire contract directly: 400 on a
// malformed cursor, 409 ahead of the log, 204 on an expired empty poll,
// and a 200 whose frames decode to exactly the leader's record count.
func TestServeWALStatusCodes(t *testing.T) {
	data := dataset.Uniform(300, 3)
	st := newLeaderStore(t, data)
	srv := leaderServer(t, NewLeader(st, nil, nil))
	applyWrites(t, st, data, 5_000_000, 5)
	next := st.NextSeq()

	get := func(url string) *http.Response {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get(srv.URL + PathWAL); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing ?from: %s, want 400", resp.Status)
	}
	if resp := get(srv.URL + PathWAL + "?from=0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?from=0: %s, want 400", resp.Status)
	}
	resp := get(srv.URL + PathWAL + "?from=" + itoa(next+10))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("?from ahead of log: %s, want 409", resp.Status)
	}
	resp = get(srv.URL + PathWAL + "?from=" + itoa(next) + "&wait=0")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("empty tail with wait=0: %s, want 204", resp.Status)
	}
	if got := resp.Header.Get(HdrNextSeq); got != itoa(next) {
		t.Fatalf("204 %s header %q, want %d", HdrNextSeq, got, next)
	}

	resp = get(srv.URL + PathWAL + "?from=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full history fetch: %s, want 200", resp.Status)
	}
	dec := wal.NewStreamDecoder(resp.Body)
	var rec wal.Record
	var n uint64
	for {
		ok, err := dec.Next(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if want := next - 1; n != want {
		t.Fatalf("streamed %d records, want %d", n, want)
	}
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }

// TestArchiveRoundTrip proves the snapshot framing detects every way a
// stream can lie: truncation anywhere, a flipped payload bit, a missing
// sentinel, and path-escaping file names.
func TestArchiveRoundTrip(t *testing.T) {
	src := t.TempDir()
	files := map[string][]byte{
		"CURRENT":       []byte("snap-0000001\n"),
		"shard-0.col":   bytes.Repeat([]byte{0xAB, 0x00, 0x3C}, 400),
		"REPLMETA.json": []byte(`{"version":1,"start_seq":1}` + "\n"),
		"empty":         {},
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(src, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteArchive(&buf, src); err != nil {
		t.Fatal(err)
	}

	dst := t.TempDir()
	if err := ReadArchive(bytes.NewReader(buf.Bytes()), dst); err != nil {
		t.Fatal(err)
	}
	for name, want := range files {
		got, err := os.ReadFile(filepath.Join(dst, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: round-trip mismatch", name)
		}
	}

	// Every proper prefix is a torn stream: the sentinel can never be
	// mistaken for present.
	for _, cut := range []int{0, 1, 4, 17, buf.Len() / 2, buf.Len() - 1} {
		err := ReadArchive(bytes.NewReader(buf.Bytes()[:cut]), t.TempDir())
		if !errors.Is(err, ErrTornStream) {
			t.Fatalf("cut at %d: err %v, want ErrTornStream", cut, err)
		}
	}

	// A flipped payload bit fails the file CRC.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)/2] ^= 0x20
	if err := ReadArchive(bytes.NewReader(bad), t.TempDir()); !errors.Is(err, ErrTornStream) {
		t.Fatalf("corrupt archive: err %v, want ErrTornStream", err)
	}
}

func TestArchiveRejectsUnsafeNames(t *testing.T) {
	for _, name := range []string{"../evil", "a/b", `a\b`, ".", ".."} {
		var buf bytes.Buffer
		var hdr [16]byte
		putU32(hdr[:], uint32(len(name)))
		buf.Write(hdr[:4])
		io.WriteString(&buf, name)
		putU32(hdr[:], 0) // size 0
		putU32(hdr[4:], 0)
		putU32(hdr[8:], 0) // crc of empty payload (unchecked before the name check)
		buf.Write(hdr[:12])
		if err := ReadArchive(bytes.NewReader(buf.Bytes()), t.TempDir()); !errors.Is(err, ErrTornStream) {
			t.Fatalf("name %q: err %v, want ErrTornStream", name, err)
		}
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
