// ReadScaling is an extension experiment (not a paper figure): single-shard
// read scaling of the concurrent read-path engine. QUASII converges toward
// R-tree-like behaviour because converged slices are never cracked again;
// this experiment measures whether the serving stack actually cashes that
// in — whether queries over a converged shard scale with client goroutines
// on the shared read path, against the exclusive-lock baseline
// (shard.Config.DisableSharedReads) that serializes them.

package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/shard"
)

// ReadScaling sweeps client goroutines over one shard in two phases
// (converged, then mixed crack/read on a cold index) for the shared-path
// engine and the exclusive-lock baseline. Engines must agree on the total
// result cardinality in every cell.
func ReadScaling(w io.Writer, sc Scale) (*Result, error) {
	r := &Result{Figure: "readscaling"}
	data := uniformData(sc)
	queries, err := WorkloadQueries(sc.Workload, data, sc.UniformQueries, selUniform, 0, sc.Seed+300)
	if err != nil {
		return nil, err
	}
	maxG := sc.Goroutines
	if maxG < 1 {
		maxG = 8
	}
	var gs []int
	for g := 1; g < maxG; g *= 2 {
		gs = append(gs, g)
	}
	gs = append(gs, maxG)

	build := func(disableShared, converged bool) bench.QueryIndex {
		ix := shard.New(data, shard.Config{
			Shards:             1,
			Workers:            1,
			DisableSharedReads: disableShared,
			SubConfig:          core.Config{DisableStats: sc.NoStats},
		})
		if converged {
			ix.Complete()
		}
		return ix
	}
	cfg := bench.ReadScalingConfig{
		Engines: []bench.ReadScaleEngine{
			{Name: "exclusive", Build: func(conv bool) bench.QueryIndex { return build(true, conv) }},
			{Name: "shared", Build: func(conv bool) bench.QueryIndex { return build(false, conv) }},
		},
		Queries:    queries,
		Goroutines: gs,
	}
	fmt.Fprintf(w, "  uniform dataset n=%d, %d %s queries on ONE shard, goroutine sweep %v\n\n",
		len(data), len(queries), workloadOrDefault(sc.Workload), gs)
	points, err := bench.RunReadScaling(cfg)
	if err != nil {
		return nil, fmt.Errorf("readscaling: %w", err)
	}
	bench.PrintReadScaling(w, points)

	// Headline: converged shared vs exclusive at the top goroutine count.
	var exQPS, shQPS float64
	for _, p := range points {
		if p.Phase == "converged" && p.Goroutines == maxG {
			switch p.Engine {
			case "exclusive":
				exQPS = p.QPS
			case "shared":
				shQPS = p.QPS
			}
		}
	}
	if exQPS > 0 {
		r.note("converged, %d goroutines, one shard: shared read path %.0f q/s vs exclusive lock %.0f q/s (%.2fx)",
			maxG, shQPS, exQPS, shQPS/exQPS)
	}
	r.note("all cells validated: shared and exclusive returned identical total result cardinalities")
	return r, nil
}

func workloadOrDefault(wl string) string {
	if wl == "" {
		return "uniform"
	}
	return wl
}
