// Package experiments contains one driver per table/figure of the QUASII
// paper's evaluation (Section 6). Each driver generates the figure's
// workload, runs every index the figure compares, validates that all indexes
// returned identical result cardinalities, and prints the same rows/series
// the paper plots. The drivers are shared by cmd/quasii-bench and by the
// repository's testing.B benchmarks.
//
// Scales: the paper ran 450 M – 1 B objects on a 768 GB machine; the drivers
// default to laptop-scale datasets. Relative behaviour (who wins, roughly by
// what factor, where the crossovers fall) is scale-stable, which Fig. 11's
// two-scale run demonstrates.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/gridfile"
	"repro/internal/mosaic"
	"repro/internal/rtree"
	"repro/internal/scan"
	"repro/internal/sfc"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale sets the experiment sizes. The paper values are in comments.
type Scale struct {
	Name             string
	UniformN         int   // paper: 500 M
	NeuroN           int   // paper: 450 M
	ClusteredQueries int   // paper: 500 (5 clusters x 100)
	UniformQueries   int   // paper: 10 000
	Seed             int64 // RNG seed for datasets and workloads
	PrintEvery       int   // row sampling for the convergence/cumulative tables
	// GridUniform / GridNeuro are the per-dataset grid resolutions (paper:
	// 100 and 220, obtained by parameter sweep; ours are swept at this scale
	// by FigGridSweep).
	GridUniform int
	GridNeuro   int
	// Shards / Goroutines parameterize the Throughput extension experiment:
	// the sharded engine's partition count (0 = GOMAXPROCS) and the maximum
	// concurrent client count (0 = 8).
	Shards     int
	Goroutines int
	// NoStats disables the QUASII work counters in the Throughput
	// experiment's engines (core.Config.DisableStats), measuring the index
	// without instrumentation overhead — the production serving posture.
	NoStats bool
	// Workload selects the query pattern for the Throughput experiment:
	// "uniform" (default), "clustered", "zipf" or "sequential" — the access
	// patterns of the adaptive-indexing literature (see internal/workload).
	Workload string
}

// Workloads lists the valid Scale.Workload values.
var Workloads = []string{"uniform", "clustered", "zipf", "sequential"}

// WorkloadQueries generates n queries of the named pattern over the
// universe with the paper's parameterization (clustered centers sit on
// data, as the paper's workload does; skew ≤ 0 selects 1.2). It is shared
// by the throughput experiment and cmd/quasii-loadgen so both sides
// measure the same workloads.
func WorkloadQueries(name string, data []geom.Object, n int, sel, skew float64, seed int64) ([]geom.Box, error) {
	if skew <= 0 {
		skew = 1.2
	}
	switch name {
	case "", "uniform":
		return workload.Uniform(dataset.Universe(), n, sel, seed), nil
	case "clustered":
		// 5 clusters as in the paper; round perCluster up and truncate so
		// the caller gets exactly n queries.
		perCluster := (n + 4) / 5
		if perCluster < 1 {
			perCluster = 1
		}
		qs := workload.ClusteredOn(dataset.Universe(), data, 5, perCluster, sel, clusterSigma, seed)
		if len(qs) > n {
			qs = qs[:n]
		}
		return qs, nil
	case "zipf":
		return workload.Zipf(dataset.Universe(), n, sel, skew, seed), nil
	case "sequential":
		return workload.Sequential(dataset.Universe(), n, sel, 0), nil
	}
	return nil, fmt.Errorf("unknown workload %q (want uniform, clustered, zipf or sequential)", name)
}

// Small is the test/bench scale: fast enough for go test.
var Small = Scale{
	Name: "small", UniformN: 30000, NeuroN: 30000,
	ClusteredQueries: 200, UniformQueries: 600, Seed: 1,
	PrintEvery: 25, GridUniform: 24, GridNeuro: 48,
}

// Medium is the default CLI scale.
var Medium = Scale{
	Name: "medium", UniformN: 300000, NeuroN: 300000,
	ClusteredQueries: 500, UniformQueries: 2000, Seed: 1,
	PrintEvery: 50, GridUniform: 48, GridNeuro: 96,
}

// Large stresses the asymptotics (minutes of runtime).
var Large = Scale{
	Name: "large", UniformN: 2000000, NeuroN: 2000000,
	ClusteredQueries: 500, UniformQueries: 10000, Seed: 1,
	PrintEvery: 100, GridUniform: 80, GridNeuro: 160,
}

// Scales maps names to presets for the CLI.
var Scales = map[string]Scale{"small": Small, "medium": Medium, "large": Large}

// clusterSigma is the Gaussian spread of query centers around their cluster
// center, in universe units.
const clusterSigma = 200

// Selectivity constants from the paper.
const (
	selClustered = 1e-4 // 0.01 % (clustered workloads, Figs. 6-9)
	selUniform   = 1e-3 // 0.1 %  (uniform workloads, Figs. 10-11)
)

// Result carries the measured series of one experiment for programmatic
// inspection (EXPERIMENTS.md generation and tests).
type Result struct {
	Figure string
	Series []*bench.Series
	Notes  []string
}

func (r *Result) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Result) byName(name string) *bench.Series {
	for _, s := range r.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Get returns the series with the given name, or nil.
func (r *Result) Get(name string) *bench.Series { return r.byName(name) }

// validate cross-checks result cardinalities and records the outcome.
func (r *Result) validate() error {
	if err := bench.ValidateCounts(r.Series...); err != nil {
		return fmt.Errorf("%s: result mismatch across indexes: %w", r.Figure, err)
	}
	r.note("all %d indexes returned identical result counts on every query", len(r.Series))
	return nil
}

// neuroData and uniformData centralize dataset generation per scale.
func neuroData(sc Scale) []geom.Object {
	return dataset.Neuro(sc.NeuroN, sc.Seed, dataset.NeuroConfig{})
}

func uniformData(sc Scale) []geom.Object {
	return dataset.Uniform(sc.UniformN, sc.Seed)
}

func clusteredQueries(sc Scale, data []geom.Object) []geom.Box {
	perCluster := sc.ClusteredQueries / 5
	if perCluster < 1 {
		perCluster = 1
	}
	return workload.ClusteredOn(dataset.Universe(), data, 5, perCluster, selClustered, clusterSigma, sc.Seed+100)
}

// Fig6a reproduces Figure 6a: the impact of the data-assignment strategy.
// R-Tree vs GridQueryExt vs GridReplication, 500 clustered queries of 0.01 %
// selectivity on the neuro dataset; the metric is total query execution time.
func Fig6a(w io.Writer, sc Scale) (*Result, error) {
	data := neuroData(sc)
	queries := clusteredQueries(sc, data)
	r := &Result{Figure: "fig6a"}

	r.Series = append(r.Series,
		bench.Run("R-Tree", func() bench.QueryIndex {
			return rtree.New(data, rtree.Config{})
		}, queries),
		bench.Run("GridQueryExt", func() bench.QueryIndex {
			return grid.New(data, grid.Config{Partitions: sc.GridNeuro, Universe: dataset.Universe()})
		}, queries),
		bench.Run("GridReplication", func() bench.QueryIndex {
			return grid.New(data, grid.Config{Partitions: sc.GridNeuro, Assign: grid.Replication, Universe: dataset.Universe()})
		}, queries),
	)
	if err := r.validate(); err != nil {
		return r, err
	}
	fmt.Fprintf(w, "Figure 6a — query execution time (%d clustered queries, sel %.3g%%, neuro %d objects)\n",
		len(queries), selClustered*100, len(data))
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %-16s query-time %v\n", s.Name, stats.Sum(s.PerQuery))
	}
	rt, gq, gr := r.byName("R-Tree"), r.byName("GridQueryExt"), r.byName("GridReplication")
	r.note("R-Tree speedup vs GridQueryExt: %.2fx", stats.Ratio(stats.Sum(gq.PerQuery), stats.Sum(rt.PerQuery)))
	r.note("R-Tree speedup vs GridReplication: %.2fx", stats.Ratio(stats.Sum(gr.PerQuery), stats.Sum(rt.PerQuery)))
	for _, n := range r.Notes {
		fmt.Fprintln(w, "  note:", n)
	}
	return r, nil
}

// Fig6b reproduces Figure 6b: grid configuration sensitivity. Both datasets
// are run with both per-dataset best resolutions; the wrong configuration
// must hurt.
func Fig6b(w io.Writer, sc Scale) (*Result, error) {
	uni := uniformData(sc)
	neuro := neuroData(sc)
	uniQ := clusteredQueries(sc, uni)
	neuroQ := clusteredQueries(sc, neuro)
	r := &Result{Figure: "fig6b"}

	runGrid := func(name string, data []geom.Object, parts int, queries []geom.Box) *bench.Series {
		return bench.Run(name, func() bench.QueryIndex {
			return grid.New(data, grid.Config{Partitions: parts, Universe: dataset.Universe()})
		}, queries)
	}
	uniA := runGrid(fmt.Sprintf("Uniform/%d", sc.GridUniform), uni, sc.GridUniform, uniQ)
	uniB := runGrid(fmt.Sprintf("Uniform/%d", sc.GridNeuro), uni, sc.GridNeuro, uniQ)
	neuroA := runGrid(fmt.Sprintf("Neuro/%d", sc.GridUniform), neuro, sc.GridUniform, neuroQ)
	neuroB := runGrid(fmt.Sprintf("Neuro/%d", sc.GridNeuro), neuro, sc.GridNeuro, neuroQ)
	// Extension: the two-level grid needs no per-dataset resolution — its
	// sub-grids adapt to density (Sec. 7.2's grid-file answer).
	run2L := func(name string, data []geom.Object, queries []geom.Box) *bench.Series {
		return bench.Run(name, func() bench.QueryIndex {
			return gridfile.New(data, gridfile.Config{Universe: dataset.Universe()})
		}, queries)
	}
	uni2L := run2L("Uniform/2level", uni, uniQ)
	neuro2L := run2L("Neuro/2level", neuro, neuroQ)
	r.Series = []*bench.Series{uniA, uniB, uni2L, neuroA, neuroB, neuro2L}
	// Validation within each dataset only (different datasets differ).
	if err := bench.ValidateCounts(uniA, uniB, uni2L); err != nil {
		return r, fmt.Errorf("fig6b uniform: %w", err)
	}
	if err := bench.ValidateCounts(neuroA, neuroB, neuro2L); err != nil {
		return r, fmt.Errorf("fig6b neuro: %w", err)
	}
	fmt.Fprintf(w, "Figure 6b — grid configuration sensitivity (query time, %d clustered queries)\n", len(uniQ))
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %-16s query-time %v\n", s.Name, stats.Sum(s.PerQuery))
	}
	r.note("uniform dataset: resolution %d vs %d -> %v vs %v", sc.GridUniform, sc.GridNeuro,
		stats.Sum(uniA.PerQuery), stats.Sum(uniB.PerQuery))
	r.note("neuro dataset: resolution %d vs %d -> %v vs %v", sc.GridUniform, sc.GridNeuro,
		stats.Sum(neuroA.PerQuery), stats.Sum(neuroB.PerQuery))
	for _, n := range r.Notes {
		fmt.Fprintln(w, "  note:", n)
	}
	return r, nil
}

// incrementalSeries runs the full roster of Figs. 7-9: Scan, the three
// incremental approaches, and their static counterparts, all on the shared
// clustered neuro workload.
func incrementalSeries(sc Scale) (*Result, []geom.Box) {
	data := neuroData(sc)
	queries := clusteredQueries(sc, data)
	r := &Result{}
	r.Series = append(r.Series,
		bench.Run("Scan", func() bench.QueryIndex {
			return scan.New(data)
		}, queries),
		bench.Run("SFC", func() bench.QueryIndex {
			return sfc.New(data, sfc.Config{Universe: dataset.Universe()})
		}, queries),
		bench.Run("SFCracker", func() bench.QueryIndex {
			return sfc.NewCracker(dataset.Clone(data), sfc.Config{Universe: dataset.Universe()})
		}, queries),
		bench.Run("Grid", func() bench.QueryIndex {
			return grid.New(data, grid.Config{Partitions: sc.GridNeuro, Universe: dataset.Universe()})
		}, queries),
		bench.Run("Mosaic", func() bench.QueryIndex {
			return mosaic.New(data, mosaic.Config{Universe: dataset.Universe()})
		}, queries),
		bench.Run("R-Tree", func() bench.QueryIndex {
			return rtree.New(data, rtree.Config{})
		}, queries),
		bench.Run("QUASII", func() bench.QueryIndex {
			return core.New(dataset.Clone(data), core.Config{})
		}, queries),
	)
	return r, queries
}

// Fig7 reproduces Figure 7: per-query convergence of each incremental
// approach against its static counterpart and Scan, in three panels.
func Fig7(w io.Writer, sc Scale) (*Result, error) {
	r, queries := incrementalSeries(sc)
	r.Figure = "fig7"
	if err := r.validate(); err != nil {
		return r, err
	}
	fmt.Fprintf(w, "Figure 7 — convergence (%d clustered queries, sel %.3g%%, neuro %d objects)\n",
		len(queries), selClustered*100, sc.NeuroN)
	fmt.Fprintln(w, "\n(a) one-dimensional")
	bench.PrintConvergence(w, sc.PrintEvery, r.byName("SFC"), r.byName("SFCracker"), r.byName("Scan"))
	fmt.Fprintln(w, "\n(b) space-oriented")
	bench.PrintConvergence(w, sc.PrintEvery, r.byName("Grid"), r.byName("Mosaic"), r.byName("Scan"))
	fmt.Fprintln(w, "\n(c) data-oriented")
	bench.PrintConvergence(w, sc.PrintEvery, r.byName("R-Tree"), r.byName("QUASII"), r.byName("Scan"))
	tail := len(queries) / 10
	for _, pair := range [][2]string{{"SFCracker", "SFC"}, {"Mosaic", "Grid"}, {"QUASII", "R-Tree"}} {
		inc, st := r.byName(pair[0]), r.byName(pair[1])
		r.note("%s converged tail mean %v vs static %s %v", pair[0], inc.TailMean(tail), pair[1], st.TailMean(tail))
	}
	for _, n := range r.Notes {
		fmt.Fprintln(w, "note:", n)
	}
	return r, nil
}

// Fig8 reproduces Figure 8: cumulative execution time (including the build
// step of the static approaches), three panels, with break-even notes.
func Fig8(w io.Writer, sc Scale) (*Result, error) {
	r, queries := incrementalSeries(sc)
	r.Figure = "fig8"
	if err := r.validate(); err != nil {
		return r, err
	}
	fmt.Fprintf(w, "Figure 8 — cumulative time incl. build (%d clustered queries, neuro %d objects)\n",
		len(queries), sc.NeuroN)
	fmt.Fprintln(w, "\n(a) one-dimensional")
	bench.PrintCumulative(w, sc.PrintEvery, r.byName("SFC"), r.byName("SFCracker"), r.byName("Scan"))
	fmt.Fprintln(w, "\n(b) space-oriented")
	bench.PrintCumulative(w, sc.PrintEvery, r.byName("Grid"), r.byName("Mosaic"), r.byName("Scan"))
	fmt.Fprintln(w, "\n(c) data-oriented")
	bench.PrintCumulative(w, sc.PrintEvery, r.byName("R-Tree"), r.byName("QUASII"), r.byName("Scan"))
	for _, pair := range [][2]string{{"SFCracker", "SFC"}, {"Mosaic", "Grid"}, {"QUASII", "R-Tree"}} {
		inc, st := r.byName(pair[0]), r.byName(pair[1])
		be := bench.BreakEven(inc, st)
		if be < 0 {
			r.note("%s never exceeds cumulative time of %s within %d queries", pair[0], pair[1], len(queries))
		} else {
			r.note("%s exceeds cumulative time of %s after %d queries", pair[0], pair[1], be)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintln(w, "note:", n)
	}
	return r, nil
}

// Fig9 reproduces Figure 9: the comparative analysis of the incremental
// approaches — (a) convergence against R-Tree and Scan, (b) cumulative time
// against Grid — plus the paper's headline data-to-insight ratios.
func Fig9(w io.Writer, sc Scale) (*Result, error) {
	r, queries := incrementalSeries(sc)
	r.Figure = "fig9"
	if err := r.validate(); err != nil {
		return r, err
	}
	fmt.Fprintf(w, "Figure 9 — comparative analysis (%d clustered queries, neuro %d objects)\n", len(queries), sc.NeuroN)
	fmt.Fprintln(w, "\n(a) convergence")
	bench.PrintConvergence(w, sc.PrintEvery,
		r.byName("Scan"), r.byName("R-Tree"), r.byName("QUASII"), r.byName("Mosaic"), r.byName("SFCracker"))
	fmt.Fprintln(w)
	bench.Chart(w, 72, 14, false,
		r.byName("Scan"), r.byName("R-Tree"), r.byName("QUASII"), r.byName("Mosaic"), r.byName("SFCracker"))
	fmt.Fprintln(w, "\n(b) cumulative")
	bench.PrintCumulative(w, sc.PrintEvery,
		r.byName("QUASII"), r.byName("Mosaic"), r.byName("SFCracker"), r.byName("Grid"))
	fmt.Fprintln(w)
	bench.Chart(w, 72, 14, true,
		r.byName("QUASII"), r.byName("Mosaic"), r.byName("SFCracker"), r.byName("Grid"))

	scanS, q := r.byName("Scan"), r.byName("QUASII")
	mo, sf := r.byName("Mosaic"), r.byName("SFCracker")
	rt, gr := r.byName("R-Tree"), r.byName("Grid")
	r.note("first query: Scan %v, QUASII %v (%.1fx), Mosaic %v (%.1fx), SFCracker %v (%.1fx)",
		scanS.FirstQuery(), q.FirstQuery(), stats.Ratio(q.FirstQuery(), scanS.FirstQuery()),
		mo.FirstQuery(), stats.Ratio(mo.FirstQuery(), scanS.FirstQuery()),
		sf.FirstQuery(), stats.Ratio(sf.FirstQuery(), scanS.FirstQuery()))
	r.note("data-to-insight: QUASII %.1fx faster than R-Tree, %.1fx faster than Grid",
		stats.Ratio(rt.FirstQuery(), q.FirstQuery()), stats.Ratio(gr.FirstQuery(), q.FirstQuery()))
	tail := len(queries) / 10
	r.note("converged tail mean: QUASII %v, R-Tree %v, Mosaic %v (%.2fx), SFCracker %v (%.2fx)",
		q.TailMean(tail), rt.TailMean(tail),
		mo.TailMean(tail), stats.Ratio(mo.TailMean(tail), q.TailMean(tail)),
		sf.TailMean(tail), stats.Ratio(sf.TailMean(tail), q.TailMean(tail)))
	r.note("cumulative after %d queries: QUASII %v = %.0f%% of R-Tree %v, %.0f%% of Grid %v",
		len(queries), q.Total(), 100*stats.Ratio(q.Total(), rt.Total()), rt.Total(),
		100*stats.Ratio(q.Total(), gr.Total()), gr.Total())
	for _, n := range r.Notes {
		fmt.Fprintln(w, "note:", n)
	}
	return r, nil
}

// Fig10 reproduces Figure 10: the uniform workload — convergence and
// cumulative time for the first 500 and last 100 of a long uniform query
// sequence, QUASII vs R-Tree vs Grid (and Scan when the scale allows).
func Fig10(w io.Writer, sc Scale) (*Result, error) {
	data := uniformData(sc)
	queries := workload.Uniform(dataset.Universe(), sc.UniformQueries, selUniform, sc.Seed+200)
	r := &Result{Figure: "fig10"}

	includeScan := int64(sc.UniformN)*int64(sc.UniformQueries) <= 5e9/25
	r.Series = append(r.Series,
		bench.Run("R-Tree", func() bench.QueryIndex { return rtree.New(data, rtree.Config{}) }, queries),
		bench.Run("QUASII", func() bench.QueryIndex {
			return core.New(dataset.Clone(data), core.Config{})
		}, queries),
		bench.Run("Grid", func() bench.QueryIndex {
			return grid.New(data, grid.Config{Partitions: sc.GridUniform, Universe: dataset.Universe()})
		}, queries),
	)
	if includeScan {
		r.Series = append(r.Series, bench.Run("Scan", func() bench.QueryIndex { return scan.New(data) }, queries))
	} else {
		r.note("Scan omitted at this scale (O(n) per query would dominate wall-clock)")
	}
	if err := r.validate(); err != nil {
		return r, err
	}
	head := 500
	if head > len(queries) {
		head = len(queries)
	}
	tailN := 100
	if tailN > len(queries) {
		tailN = len(queries)
	}
	rt, q, gr := r.byName("R-Tree"), r.byName("QUASII"), r.byName("Grid")
	headSeries := func(s *bench.Series) *bench.Series {
		return &bench.Series{Name: s.Name, Build: s.Build, PerQuery: s.PerQuery[:head], Counts: s.Counts[:head]}
	}
	tailSeries := func(s *bench.Series) *bench.Series {
		n := len(s.PerQuery)
		return &bench.Series{Name: s.Name, Build: s.Build + stats.Sum(s.PerQuery[:n-tailN]),
			PerQuery: s.PerQuery[n-tailN:], Counts: s.Counts[n-tailN:]}
	}
	fmt.Fprintf(w, "Figure 10 — uniform workload (%d queries, sel %.3g%%, uniform %d objects)\n",
		len(queries), selUniform*100, sc.UniformN)
	fmt.Fprintf(w, "\n(a) convergence, first %d queries\n", head)
	panels := []*bench.Series{headSeries(rt), headSeries(q)}
	if s := r.byName("Scan"); s != nil {
		panels = append(panels, headSeries(s))
	}
	bench.PrintConvergence(w, sc.PrintEvery, panels...)
	fmt.Fprintf(w, "\n(b) convergence, last %d queries\n", tailN)
	panels = []*bench.Series{tailSeries(rt), tailSeries(q)}
	if s := r.byName("Scan"); s != nil {
		panels = append(panels, tailSeries(s))
	}
	bench.PrintConvergence(w, sc.PrintEvery/2+1, panels...)
	fmt.Fprintf(w, "\n(c) cumulative, first %d queries\n", head)
	bench.PrintCumulative(w, sc.PrintEvery, headSeries(rt), headSeries(q), headSeries(gr))
	fmt.Fprintf(w, "\n(d) cumulative, last %d queries\n", tailN)
	bench.PrintCumulative(w, sc.PrintEvery/2+1, tailSeries(rt), tailSeries(q), tailSeries(gr))

	r.note("after %d queries QUASII cumulative = %.0f%% of R-Tree, %.0f%% of Grid",
		len(queries), 100*stats.Ratio(q.Total(), rt.Total()), 100*stats.Ratio(q.Total(), gr.Total()))
	r.note("data-to-insight: %.1fx vs R-Tree, %.1fx vs Grid",
		stats.Ratio(rt.FirstQuery(), q.FirstQuery()), stats.Ratio(gr.FirstQuery(), q.FirstQuery()))
	r.note("QUASII tail-%d mean %v vs R-Tree %v (%.1f%% slower)",
		tailN, q.TailMean(tailN), rt.TailMean(tailN),
		100*(stats.Ratio(q.TailMean(tailN), rt.TailMean(tailN))-1))
	for _, n := range r.Notes {
		fmt.Fprintln(w, "note:", n)
	}
	return r, nil
}

// Fig11 reproduces Figure 11: scalability — cumulative time of QUASII vs
// R-Tree (split into build and query) at two dataset sizes (1x and 2x).
func Fig11(w io.Writer, sc Scale) (*Result, error) {
	r := &Result{Figure: "fig11"}
	fmt.Fprintf(w, "Figure 11 — scalability (uniform workload, %d queries, sel %.3g%%)\n",
		sc.UniformQueries, selUniform*100)
	for _, mult := range []int{1, 2} {
		n := sc.UniformN * mult
		data := dataset.Uniform(n, sc.Seed)
		queries := workload.Uniform(dataset.Universe(), sc.UniformQueries, selUniform, sc.Seed+200)
		rt := bench.Run(fmt.Sprintf("R-Tree/%dx", mult), func() bench.QueryIndex {
			return rtree.New(data, rtree.Config{})
		}, queries)
		q := bench.Run(fmt.Sprintf("QUASII/%dx", mult), func() bench.QueryIndex {
			return core.New(dataset.Clone(data), core.Config{})
		}, queries)
		if err := bench.ValidateCounts(rt, q); err != nil {
			return r, fmt.Errorf("fig11 %dx: %w", mult, err)
		}
		r.Series = append(r.Series, rt, q)
		fmt.Fprintf(w, "  %-12s build %12v  query %12v  total %12v\n",
			rt.Name, rt.Build, stats.Sum(rt.PerQuery), rt.Total())
		fmt.Fprintf(w, "  %-12s build %12v  query %12v  total %12v\n",
			q.Name, q.Build, stats.Sum(q.PerQuery), q.Total())
		r.note("%dx (%d objects): QUASII total = %.0f%% of R-Tree; data-to-insight %.1fx",
			mult, n, 100*stats.Ratio(q.Total(), rt.Total()),
			stats.Ratio(rt.FirstQuery(), q.FirstQuery()))
	}
	for _, n := range r.Notes {
		fmt.Fprintln(w, "note:", n)
	}
	return r, nil
}

// Fig12 reproduces Figure 12: the impact of query selectivity on the
// cumulative time of QUASII vs R-Tree (0.001 %, 1 %, 10 %).
func Fig12(w io.Writer, sc Scale) (*Result, error) {
	r := &Result{Figure: "fig12"}
	data := uniformData(sc)
	nQueries := sc.UniformQueries / 2
	if nQueries < 10 {
		nQueries = 10
	}
	fmt.Fprintf(w, "Figure 12 — selectivity impact (uniform workload, %d queries, uniform %d objects)\n",
		nQueries, sc.UniformN)
	for _, sel := range []float64{1e-5, 1e-2, 1e-1} {
		queries := workload.Uniform(dataset.Universe(), nQueries, sel, sc.Seed+300)
		rt := bench.Run(fmt.Sprintf("R-Tree/%.3g%%", sel*100), func() bench.QueryIndex {
			return rtree.New(data, rtree.Config{})
		}, queries)
		q := bench.Run(fmt.Sprintf("QUASII/%.3g%%", sel*100), func() bench.QueryIndex {
			return core.New(dataset.Clone(data), core.Config{})
		}, queries)
		if err := bench.ValidateCounts(rt, q); err != nil {
			return r, fmt.Errorf("fig12 sel %g: %w", sel, err)
		}
		r.Series = append(r.Series, rt, q)
		fmt.Fprintf(w, "  %-14s build %12v  query %12v  total %12v\n",
			rt.Name, rt.Build, stats.Sum(rt.PerQuery), rt.Total())
		fmt.Fprintf(w, "  %-14s build %12v  query %12v  total %12v\n",
			q.Name, q.Build, stats.Sum(q.PerQuery), q.Total())
		be := bench.BreakEven(q, rt)
		beStr := "never"
		if be >= 0 {
			beStr = fmt.Sprintf("after %d queries", be)
		}
		r.note("sel %.3g%%: QUASII total = %.0f%% of R-Tree, break-even %s",
			sel*100, 100*stats.Ratio(q.Total(), rt.Total()), beStr)
	}
	for _, n := range r.Notes {
		fmt.Fprintln(w, "note:", n)
	}
	return r, nil
}

// GridSweep is the parameter sweep the paper performs to configure Grid:
// query time as a function of grid resolution, per dataset.
func GridSweep(w io.Writer, sc Scale) (*Result, error) {
	r := &Result{Figure: "gridsweep"}
	fmt.Fprintln(w, "Grid resolution sweep (total query time per resolution)")
	for _, ds := range []struct {
		name string
		data []geom.Object
	}{{"uniform", uniformData(sc)}, {"neuro", neuroData(sc)}} {
		queries := clusteredQueries(sc, ds.data)
		fmt.Fprintf(w, "  dataset %s:\n", ds.name)
		for _, parts := range []int{8, 16, 24, 32, 48, 64, 96, 128} {
			s := bench.Run(fmt.Sprintf("%s/%d", ds.name, parts), func() bench.QueryIndex {
				return grid.New(ds.data, grid.Config{Partitions: parts, Universe: dataset.Universe()})
			}, queries)
			r.Series = append(r.Series, s)
			fmt.Fprintf(w, "    partitions %4d: build %12v query %12v\n", parts, s.Build, stats.Sum(s.PerQuery))
		}
	}
	return r, nil
}

// Registry maps figure names to drivers for the CLI.
var Registry = map[string]func(io.Writer, Scale) (*Result, error){
	"fig6a":       Fig6a,
	"fig6b":       Fig6b,
	"fig7":        Fig7,
	"fig8":        Fig8,
	"fig9":        Fig9,
	"fig10":       Fig10,
	"fig11":       Fig11,
	"fig12":       Fig12,
	"gridsweep":   GridSweep,
	"patterns":    Patterns,
	"throughput":  Throughput,
	"readscaling": ReadScaling,
}

// Order lists the figures in paper order for "run everything".
var Order = []string{"fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}

// Patterns is an extension experiment (not a paper figure): QUASII vs R-Tree
// under the access patterns of the adaptive-indexing literature — uniform
// random, sequential sweep (worst case for cracking: no refinement reuse),
// and Zipfian hotspots (best case: heavy reuse).
func Patterns(w io.Writer, sc Scale) (*Result, error) {
	r := &Result{Figure: "patterns"}
	data := uniformData(sc)
	n := sc.UniformQueries
	if n < 10 {
		n = 10
	}
	kinds := []struct {
		name    string
		queries []geom.Box
	}{
		{"uniform", workload.Uniform(dataset.Universe(), n, selUniform, sc.Seed+400)},
		{"sequential", workload.Sequential(dataset.Universe(), n, selUniform, 0)},
		{"zipf", workload.Zipf(dataset.Universe(), n, selUniform, 1.2, sc.Seed+401)},
	}
	fmt.Fprintf(w, "Workload patterns — QUASII vs R-Tree (%d queries, sel %.3g%%, uniform %d objects)\n",
		n, selUniform*100, sc.UniformN)
	for _, k := range kinds {
		rt := bench.Run("R-Tree/"+k.name, func() bench.QueryIndex {
			return rtree.New(data, rtree.Config{})
		}, k.queries)
		q := bench.Run("QUASII/"+k.name, func() bench.QueryIndex {
			return core.New(dataset.Clone(data), core.Config{})
		}, k.queries)
		qs := bench.Run("QUASII-stoch/"+k.name, func() bench.QueryIndex {
			return core.New(dataset.Clone(data), core.Config{Stochastic: true})
		}, k.queries)
		if err := bench.ValidateCounts(rt, q, qs); err != nil {
			return r, fmt.Errorf("patterns %s: %w", k.name, err)
		}
		r.Series = append(r.Series, rt, q, qs)
		be := bench.BreakEven(q, rt)
		beStr := "never"
		if be >= 0 {
			beStr = fmt.Sprintf("after %d queries", be)
		}
		fmt.Fprintf(w, "  %-18s total %12v (stochastic %12v, R-Tree %12v), tail mean %10v (R-Tree %10v), break-even %s\n",
			k.name, q.Total(), qs.Total(), rt.Total(), q.TailMean(n/10), rt.TailMean(n/10), beStr)
		r.note("%s: QUASII total = %.0f%% of R-Tree, break-even %s",
			k.name, 100*stats.Ratio(q.Total(), rt.Total()), beStr)
	}
	for _, note := range r.Notes {
		fmt.Fprintln(w, "note:", note)
	}
	return r, nil
}
