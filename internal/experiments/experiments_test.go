package experiments

import (
	"io"
	"strings"
	"testing"
)

// tiny is a minimal scale so experiment drivers run inside go test.
var tiny = Scale{
	Name: "tiny", UniformN: 4000, NeuroN: 4000,
	ClusteredQueries: 50, UniformQueries: 80, Seed: 1,
	PrintEvery: 10, GridUniform: 12, GridNeuro: 24,
}

func TestAllFiguresRunAndValidate(t *testing.T) {
	for _, name := range Order {
		name := name
		t.Run(name, func(t *testing.T) {
			r, err := Registry[name](io.Discard, tiny)
			if err != nil {
				t.Fatalf("%s failed: %v", name, err)
			}
			if len(r.Series) == 0 {
				t.Fatalf("%s produced no series", name)
			}
		})
	}
}

func TestPatternsRuns(t *testing.T) {
	r, err := Patterns(io.Discard, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 9 {
		t.Fatalf("patterns produced %d series, want 9", len(r.Series))
	}
}

func TestGridSweepRuns(t *testing.T) {
	r, err := GridSweep(io.Discard, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 16 {
		t.Fatalf("sweep produced %d series, want 16", len(r.Series))
	}
}

func TestFig9HeadlineShapes(t *testing.T) {
	// The qualitative claims of the paper that must hold at any scale:
	// QUASII's first query beats the static indexes' build+first-query.
	r, err := Fig9(io.Discard, tiny)
	if err != nil {
		t.Fatal(err)
	}
	q := r.Get("QUASII")
	rt := r.Get("R-Tree")
	if q == nil || rt == nil {
		t.Fatal("missing series")
	}
	if q.FirstQuery() >= rt.FirstQuery() {
		t.Errorf("data-to-insight: QUASII %v not faster than R-Tree %v", q.FirstQuery(), rt.FirstQuery())
	}
	sfc := r.Get("SFCracker")
	if q.FirstQuery() >= sfc.FirstQuery() {
		t.Errorf("first query: QUASII %v not faster than SFCracker %v", q.FirstQuery(), sfc.FirstQuery())
	}
}

func TestFigOutputContainsTables(t *testing.T) {
	var sb strings.Builder
	if _, err := Fig7(&sb, tiny); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 7", "QUASII", "SFCracker", "Mosaic", "query"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 output missing %q", want)
		}
	}
}

func TestScalesRegistered(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		if _, ok := Scales[name]; !ok {
			t.Errorf("scale %q not registered", name)
		}
	}
}

func TestThroughputRuns(t *testing.T) {
	sc := tiny
	sc.Shards = 4
	sc.Goroutines = 4
	var sb strings.Builder
	r, err := Throughput(&sb, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Notes) == 0 {
		t.Fatal("throughput recorded no notes")
	}
	out := sb.String()
	for _, want := range []string{"mutex+quasii", "rwlock+rtree", "sharded(4)", "queries/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
