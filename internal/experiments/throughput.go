// Throughput is an extension experiment (not a paper figure): concurrent
// query throughput of the sharded parallel engine (internal/shard) against
// the mutex-serialized QUASII the paper's single-threaded evaluation implies,
// and against a read-write-locked static R-tree as the static ceiling.

package experiments

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rtree"
	"repro/internal/shard"
	"repro/internal/syncidx"
)

// Throughput runs the uniform workload at increasing client counts against
// three concurrency-safe engines:
//
//   - mutex+quasii:  Synchronize(QUASII) — one global lock, the baseline
//   - rwlock+rtree:  RWrap(RTree) — static index, fully parallel reads
//   - sharded(P):    shard.New with sc.Shards QUASII shards
//
// and prints per-client-count throughput tables. All engines must agree on
// the total result cardinality of the workload.
func Throughput(w io.Writer, sc Scale) (*Result, error) {
	r := &Result{Figure: "throughput"}
	data := uniformData(sc)
	queries, err := WorkloadQueries(sc.Workload, data, sc.UniformQueries, selUniform, 0, sc.Seed+200)
	if err != nil {
		return nil, err
	}

	shards := sc.Shards
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	maxG := sc.Goroutines
	if maxG < 1 {
		maxG = 8
	}

	engines := []struct {
		name  string
		build func() bench.QueryIndex
	}{
		{"mutex+quasii", func() bench.QueryIndex {
			return syncidx.Wrap(core.New(dataset.Clone(data), core.Config{DisableStats: sc.NoStats}))
		}},
		{"rwlock+rtree", func() bench.QueryIndex {
			return syncidx.RWrap(rtree.New(data, rtree.Config{}))
		}},
		{fmt.Sprintf("sharded(%d)", shards), func() bench.QueryIndex {
			return shard.New(data, shard.Config{
				Shards:    shards,
				SubConfig: core.Config{DisableStats: sc.NoStats},
			})
		}},
	}

	wl := sc.Workload
	if wl == "" {
		wl = "uniform"
	}
	fmt.Fprintf(w, "  uniform dataset n=%d, %d %s queries, selectivity %g, up to %d clients, %d shards\n\n",
		len(data), len(queries), wl, selUniform, maxG, shards)

	// Client counts: powers of two up to maxG, always ending at maxG itself
	// (so -goroutines 6 actually measures 1, 2, 4 and 6 clients).
	var clientCounts []int
	for g := 1; g < maxG; g *= 2 {
		clientCounts = append(clientCounts, g)
	}
	clientCounts = append(clientCounts, maxG)

	for _, g := range clientCounts {
		var series []*bench.ThroughputSeries
		for _, e := range engines {
			series = append(series, bench.RunParallel(e.name, e.build, queries, g))
		}
		if err := bench.ValidateResults(series...); err != nil {
			return nil, fmt.Errorf("throughput: %w", err)
		}
		bench.PrintThroughput(w, series...)
		fmt.Fprintln(w)
		if g == maxG {
			base, shd := series[0], series[len(series)-1]
			r.note("at %d clients: sharded(%d) %.0f q/s vs mutex+quasii %.0f q/s (%.2fx)",
				g, shards, shd.QPS(), base.QPS(), shd.QPS()/base.QPS())
		}
	}
	r.note("all engines returned identical total result cardinalities at every client count")
	return r, nil
}
