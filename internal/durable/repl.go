package durable

// Replication surface: everything a WAL-shipping leader needs from the
// store, and the directory-layout helpers a bootstrapping follower needs.
//
// Every record the store ever accepted has an implicit global sequence
// number: record i (0-based) of generation G has sequence startSeq(G) + i,
// where startSeq(G) — persisted as REPLMETA.json inside the generation's
// snapshot directory — is the number of records accepted before the
// generation was cut. The WAL frame format carries no sequence field;
// numbering follows purely from position, so the on-disk format is
// unchanged and pre-replication directories read as startSeq 1. NextSeq is
// the sequence the next accepted record will get; a follower that has
// applied records up to (but excluding) sequence S resumes by asking the
// leader for S.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/faultfs"
)

var (
	// ErrSeqTruncated reports that the requested sequence predates the
	// oldest retained generation: its records were garbage-collected and
	// can never be served again. A follower recovers by re-bootstrapping
	// from the current snapshot.
	ErrSeqTruncated = errors.New("durable: sequence predates retained history")
	// ErrSeqAhead reports a requested sequence beyond the live log — the
	// follower believes it has applied records this store never accepted
	// (a diverged or wiped leader). The follower must re-bootstrap.
	ErrSeqAhead = errors.New("durable: sequence is beyond the live log")
)

// replMetaName is the per-generation metadata file inside a snapshot
// directory. It rides along when the directory is archived to a follower.
const replMetaName = "REPLMETA.json"

type replMeta struct {
	Version  int    `json:"version"`
	StartSeq uint64 `json:"start_seq"`
}

// writeReplMeta records startSeq in dir (fsynced; the enclosing snapshot
// rename publishes it atomically with the rest of the generation).
func writeReplMeta(fsys faultfs.FS, dir string, startSeq uint64) error {
	raw, err := json.Marshal(replMeta{Version: 1, StartSeq: startSeq})
	if err != nil {
		return err
	}
	f, err := fsys.Create(filepath.Join(dir, replMetaName))
	if err != nil {
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readReplMeta returns the generation's start sequence. A missing file is a
// pre-replication generation and reads as 1.
func readReplMeta(fsys faultfs.FS, dir string) (uint64, error) {
	raw, err := fsys.ReadFile(filepath.Join(dir, replMetaName))
	if errors.Is(err, os.ErrNotExist) {
		return 1, nil
	}
	if err != nil {
		return 0, err
	}
	var m replMeta
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", replMetaName, err)
	}
	if m.StartSeq == 0 {
		return 1, nil
	}
	return m.StartSeq, nil
}

// NextSeq returns the global sequence number the next accepted record will
// carry (1-based; NextSeq-1 records have been accepted so far).
func (s *Store) NextSeq() uint64 { return s.nextSeq.Load() }

// UpdateNotify returns a channel closed when the next record is accepted.
// Callers waiting for log growth re-arm by calling it again after each
// wake-up — the long-poll primitive behind /repl/wal tail-following.
func (s *Store) UpdateNotify() <-chan struct{} {
	s.notifyMu.Lock()
	ch := s.notifyCh
	s.notifyMu.Unlock()
	return ch
}

// broadcastUpdate wakes every UpdateNotify waiter.
func (s *Store) broadcastUpdate() {
	s.notifyMu.Lock()
	close(s.notifyCh)
	s.notifyCh = make(chan struct{})
	s.notifyMu.Unlock()
}

// retain returns the effective generation-retention count (minimum 2: a
// bootstrapping follower must be able to stream a stable generation while
// a checkpoint lands).
func (s *Store) retain() uint64 {
	k := s.opts.RetainGenerations
	if k < 2 {
		k = 2
	}
	return uint64(k)
}

// registerGen records a generation's start sequence. Called by rotateTo
// once the generation is live.
func (s *Store) registerGen(gen, startSeq uint64) {
	s.genMu.Lock()
	s.genStart[gen] = startSeq
	s.genMu.Unlock()
}

// gcGenerations deletes generations older than the retention window,
// skipping any a replication stream has pinned. Caller holds updMu
// exclusively; failures are cosmetic (dead weight on disk) and are retried
// implicitly at the next checkpoint.
func (s *Store) gcGenerations() {
	keep := s.retain()
	s.genMu.Lock()
	defer s.genMu.Unlock()
	for gen := range s.genStart {
		if gen+keep > s.seq || s.genPins[gen] > 0 {
			continue
		}
		s.fs.RemoveAll(filepath.Join(s.dir, snapDirName(gen)))
		s.fs.Remove(filepath.Join(s.dir, walName(gen)))
		delete(s.genStart, gen)
		s.logger.Info("garbage-collected old generation", "snapshot_seq", gen)
	}
}

// scanGenerations rebuilds the generation table from the directory at Open:
// every retained snap-* directory (at or below the live generation) is
// registered with its persisted start sequence.
func (s *Store) scanGenerations() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "snap-") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		var gen uint64
		if _, err := fmt.Sscanf(name, "snap-%d", &gen); err != nil || gen == 0 || gen > s.seq {
			continue
		}
		start, err := readReplMeta(s.fs, filepath.Join(s.dir, name))
		if err != nil {
			s.logger.Warn("skipping generation with unreadable replication metadata",
				"snapshot_seq", gen, "err", err)
			continue
		}
		s.genStart[gen] = start
	}
	return nil
}

// pinGen increments a generation's pin count, blocking its GC, and returns
// the matching release. Caller holds updMu (either side).
func (s *Store) pinGen(gen uint64) func() {
	s.genMu.Lock()
	s.genPins[gen]++
	s.genMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.genMu.Lock()
			if s.genPins[gen]--; s.genPins[gen] <= 0 {
				delete(s.genPins, gen)
			}
			s.genMu.Unlock()
		})
	}
}

// AcquireSnapshot pins the live generation against garbage collection and
// returns its identity: generation number, start sequence, and directory
// path. The caller streams the directory, then calls release — until then
// no checkpoint will delete it (checkpoints still land; only this
// generation's GC is deferred).
func (s *Store) AcquireSnapshot() (gen, startSeq uint64, dir string, release func(), err error) {
	s.updMu.RLock()
	defer s.updMu.RUnlock()
	gen = s.seq
	s.genMu.Lock()
	startSeq, ok := s.genStart[gen]
	s.genMu.Unlock()
	if !ok {
		return 0, 0, "", nil, fmt.Errorf("durable: live generation %d not in generation table", gen)
	}
	return gen, startSeq, filepath.Join(s.dir, snapDirName(gen)), s.pinGen(gen), nil
}

// AcquireWAL locates the generation whose WAL holds the record with global
// sequence seq, pins it, and returns the generation, its start sequence,
// and the WAL file path (the record is frame number seq-startSeq within
// it). seq == NextSeq() is valid and names the empty tail of the live log.
// ErrSeqTruncated means the history was garbage-collected; ErrSeqAhead
// means seq has never been assigned.
func (s *Store) AcquireWAL(seq uint64) (gen, startSeq uint64, path string, release func(), err error) {
	s.updMu.RLock()
	defer s.updMu.RUnlock()
	if seq > s.nextSeq.Load() {
		return 0, 0, "", nil, ErrSeqAhead
	}
	s.genMu.Lock()
	found := false
	for g, st := range s.genStart {
		if st <= seq && (!found || g > gen) {
			gen, startSeq, found = g, st, true
		}
	}
	s.genMu.Unlock()
	if !found {
		return 0, 0, "", nil, ErrSeqTruncated
	}
	return gen, startSeq, filepath.Join(s.dir, walName(gen)), s.pinGen(gen), nil
}

// Directory-layout helpers for follower bootstrap: a follower fetches a
// leader generation, installs it under these names, points CURRENT at it
// with InstallCurrent, and hands the directory to Open.

// SnapshotDir returns the snapshot directory path for generation gen.
func SnapshotDir(dir string, gen uint64) string {
	return filepath.Join(dir, snapDirName(gen))
}

// WALPath returns the WAL file path for generation gen.
func WALPath(dir string, gen uint64) string {
	return filepath.Join(dir, walName(gen))
}

// HasState reports whether dir holds an installed generation (a readable
// CURRENT file).
func HasState(dir string) (bool, error) {
	_, ok, err := readCurrent(faultfs.OS{}, dir)
	return ok, err
}

// InstallCurrent atomically points dir's CURRENT at generation gen. The
// generation's snapshot directory must already be in place and synced.
func InstallCurrent(dir string, gen uint64) error {
	return writeCurrent(faultfs.OS{}, dir, gen)
}
