// Package durable makes the sharded serving stack restartable: a Store
// owns a shard.Index, a data directory, and a write-ahead log, and keeps
// the invariant
//
//	durable state = latest complete snapshot + WAL tail
//
// at all times. Opening a directory restores the latest snapshot (every
// shard's accumulated refinement included — nothing is re-cracked) and
// replays the WAL records accepted after it was taken; a checkpoint writes
// a fresh snapshot and retires the log.
//
// # Directory layout
//
//	CURRENT          text file naming the live snapshot sequence ("7\n")
//	snap-0000007/    snapshot directory (shard files + manifest, see
//	                 shard.Snapshot); immutable once CURRENT names it
//	wal-0000007.log  updates accepted since snapshot 7
//
// # Crash safety and the zero-pause checkpoint
//
// A checkpoint never pauses updates for the duration of the snapshot.
// Rotation runs in four phases:
//
//  1. Prepare (updates flowing): the successor WAL file and the snapshot
//     staging directory are created.
//  2. The cut (updates paused — the only such instants, microseconds): the
//     live log is swapped to the successor WAL and every shard's current
//     MVCC version is pinned (shard.Index.PinVersions). Everything
//     acknowledged before the cut is in the pinned versions and the old
//     WAL; everything after goes to the successor WAL and stays visible to
//     readers immediately.
//  3. Publish (updates flowing): the pinned versions are serialized
//     (shard.Index.SnapshotPinnedFS — updates landing meanwhile cannot
//     perturb them), the directory is fsynced and renamed into place, and
//     CURRENT is atomically pointed at the new generation.
//  4. Retire: the store's in-memory generation advances, the pins are
//     released (letting the sub-indexes garbage-collect the superseded
//     versions), and generations beyond the retention window are deleted.
//
// A crash before the CURRENT rename recovers from the old snapshot plus
// the WAL CHAIN: the old generation's complete WAL followed by any
// successor WALs a mid-checkpoint crash left behind (records are numbered
// by position, so the chain replays in order with no gaps or overlaps);
// Open then rolls the chain forward into a fresh checkpoint so the
// invariant "one live WAL" is restored. A crash after the rename recovers
// from the new snapshot plus the successor WAL. Updates themselves are
// logged before they are applied or acknowledged, so the WAL can only run
// ahead of the in-memory state, never behind — replaying an unacknowledged
// tail record after a crash is benign, losing an acknowledged one is
// impossible (under FsyncAlways; the other policies trade the fsync for a
// bounded window). A checkpoint that fails after its cut leaves the store
// correct but mid-chain (live WAL one generation ahead of CURRENT); the
// next successful checkpoint — or recovery — reconverges, which is why
// generation numbers may skip after a failed attempt.
package durable

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
	"repro/internal/geom"
	"repro/internal/ioerr"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// FsyncPolicy names the WAL sync cadence. See wal.SyncPolicy.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs every update before acknowledging it (default).
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval fsyncs on a background cadence (Options.FsyncEvery):
	// a crash loses at most that window of acknowledged updates.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves flushing to the operating system.
	FsyncNever FsyncPolicy = "never"
)

// Options configures Open.
type Options struct {
	// Shard carries the engine's runtime knobs (Workers, CrackBudget,
	// DisableSharedReads, SubConfig), applied both when bootstrapping and
	// when restoring. Shard.New must be nil — persistence requires the
	// default QUASII sub-indexes.
	Shard shard.Config
	// Bootstrap supplies the initial dataset when the directory holds no
	// snapshot yet. Nil bootstraps an empty index.
	Bootstrap func() []geom.Object
	// Fsync selects the WAL durability/latency trade-off. Empty selects
	// FsyncAlways.
	Fsync FsyncPolicy
	// FsyncEvery is the background sync cadence under FsyncInterval.
	// 0 selects 100ms.
	FsyncEvery time.Duration
	// CheckpointEvery triggers an automatic checkpoint after that many
	// accepted update operations (insert batches and deletes). 0 disables
	// automatic checkpointing; Checkpoint and Close still snapshot.
	CheckpointEvery int
	// Logger receives the store's structured log records: restore/replay
	// provenance, checkpoint rotations, and background checkpoint failures
	// (which have no caller to return an error to). Nil discards them.
	Logger *slog.Logger
	// FS is the file system the WAL and snapshot writers run on. Nil
	// selects the real one (faultfs.OS); tests and the chaos harness
	// install a faultfs.FaultFS to inject fsync errors, ENOSPC, torn
	// writes, and crash points at every write/rename/sync site.
	FS faultfs.FS
	// AppendRetries bounds how many times a transiently-failed WAL append
	// (ENOSPC, EAGAIN, EINTR) is retried before the store gives up and
	// enters degraded mode. 0 selects 3; negative disables retries.
	AppendRetries int
	// RetryBackoff is the first retry's sleep; it doubles per attempt.
	// 0 selects 5ms.
	RetryBackoff time.Duration
	// RecoverEvery is the cadence at which a degraded store probes the
	// disk (by attempting a checkpoint to a fresh generation) to discover
	// the fault has cleared. 0 selects 5s.
	RecoverEvery time.Duration
	// RetainGenerations keeps that many snapshot+WAL generations on disk
	// (a checkpoint garbage-collects older ones). Minimum and default 2:
	// a bootstrapping follower must always be able to stream a stable
	// generation while a new checkpoint lands underneath it.
	RetainGenerations int
}

// Store is a durable sharded index. Queries go straight to Index() — the
// store adds no read-path overhead — while Insert and Delete are logged
// before they are applied. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	ix   *shard.Index

	// updMu orders updates against the checkpoint CUT: updates hold it
	// shared, a checkpoint holds it exclusively only across the WAL swap
	// and version pinning (microseconds) so the cut is precise — nothing
	// acknowledged is missing from the pinned versions, nothing in the
	// successor WAL is already inside them. The snapshot itself is written
	// outside the lock, from the pins.
	updMu sync.RWMutex
	// opMu makes one update's append+apply atomic with respect to other
	// updates, so the WAL's record order always equals the order the
	// operations reached the index: without it, a concurrent insert and
	// delete of the same ID could apply in one order and replay in the
	// other, making recovered state diverge from the acknowledged live
	// state. Updates were already near-serial (the WAL mutex plus the
	// per-update fsync), so the lost concurrency is the index apply only.
	// Always acquired inside updMu's read side, never the other way.
	opMu sync.Mutex
	log  *wal.Log
	seq  uint64
	// walSeq is the generation of the live WAL. Equal to seq except
	// between a checkpoint's cut and its publish (and after a checkpoint
	// that failed post-cut), when the live WAL runs one or more
	// generations ahead of CURRENT. Read and written under ckptMu (plus
	// updMu exclusively for the cut itself); Open is single-threaded.
	walSeq uint64

	// ckptMu serializes whole checkpoints (the updMu exclusive section is
	// only part of one).
	ckptMu sync.Mutex

	// Replication bookkeeping (see repl.go): nextSeq is the global
	// sequence the next accepted record will carry; genStart maps each
	// retained generation to its start sequence; genPins blocks GC of
	// generations a replication stream is reading. genMu is only ever
	// taken inside updMu (either side), never the other way around.
	nextSeq  atomic.Uint64
	genMu    sync.Mutex
	genStart map[uint64]uint64
	genPins  map[uint64]int
	// notifyCh is closed-and-replaced on every accepted record — the
	// broadcast behind UpdateNotify (long-polling WAL followers).
	notifyMu sync.Mutex
	notifyCh chan struct{}

	updates   atomic.Int64 // accepted update ops since the last checkpoint
	ckptGate  atomic.Bool  // an automatic checkpoint is in flight
	closed    atomic.Bool
	syncStop  chan struct{}
	syncGroup sync.WaitGroup

	// fs is Options.FS or the real file system; never nil after Open.
	fs faultfs.FS

	// Degraded read-only mode: set when persistent I/O failure makes the
	// WAL untrustworthy. Writes fail fast with ioerr.ErrDegraded (503 at
	// the HTTP layer), reads keep flowing, and a background probe retries a
	// checkpoint until the disk proves writable again. degradedReason holds
	// a string; recGate keeps one probe loop per degraded episode.
	degraded       atomic.Bool
	degradedReason atomic.Value // string
	recGate        atomic.Bool
	recStop        chan struct{}
	recGroup       sync.WaitGroup

	// Checkpoint bookkeeping for DurabilityStats, maintained with or
	// without a registry attached: completed checkpoints since Open, the
	// duration of the latest one, and the update pause (the cut window) of
	// the latest one, both in nanoseconds.
	ckptCount   atomic.Int64
	ckptLastNS  atomic.Int64
	ckptPauseNS atomic.Int64

	// logger is Options.Logger or a discard handler; never nil after Open.
	logger *slog.Logger

	// Recovery provenance, written once by Open and immutable afterwards
	// (see RecoveryInfo): what the live index was built from.
	restoreSeq          uint64  // snapshot restored from; 0 when bootstrapped
	restoreReplayed     int64   // WAL records replayed on top of it
	restoreBootstrapped bool    // true when Open built fresh state
	restoreSeconds      float64 // wall time of the restore/bootstrap

	// Telemetry, nil until Instrument attaches a registry (see
	// telemetry.go). walMetrics is re-attached to each rotated log.
	walMetrics    *wal.Metrics
	mUpdates      *telemetry.Counter
	mCkpts        *telemetry.Counter
	mCkptFailures *telemetry.Counter
	mCkptDur      *telemetry.Histogram
	mCkptPause    *telemetry.Histogram
	mRetries      *telemetry.Counter
}

// ErrClosed is returned by update operations on a closed store.
var ErrClosed = errors.New("durable: store is closed")

const currentName = "CURRENT"

func snapDirName(seq uint64) string { return fmt.Sprintf("snap-%07d", seq) }
func walName(seq uint64) string     { return fmt.Sprintf("wal-%07d.log", seq) }

// Open restores (or bootstraps) a durable store in dir, creating the
// directory if needed. When a snapshot exists, the index is restored from
// it and the matching WAL is replayed; otherwise Options.Bootstrap supplies
// the initial data and an initial checkpoint is written before Open
// returns, so a crash immediately after Open loses nothing.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Shard.New != nil {
		return nil, shard.ErrNotPersistable
	}
	s := &Store{dir: dir, opts: opts}
	s.fs = opts.FS
	if s.fs == nil {
		s.fs = faultfs.OS{}
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s.degradedReason.Store("")
	s.recStop = make(chan struct{})
	s.genStart = make(map[uint64]uint64)
	s.genPins = make(map[uint64]int)
	s.notifyCh = make(chan struct{})
	s.logger = opts.Logger
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}

	start := time.Now()
	seq, ok, err := readCurrent(s.fs, dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		// The bootstrap dataset lives in snapshot 1, not the WAL, so it
		// consumes no sequence numbers: the first logged record is seq 1.
		s.nextSeq.Store(1)
		if err := s.bootstrap(); err != nil {
			return nil, err
		}
		s.restoreBootstrapped = true
		s.restoreSeconds = time.Since(start).Seconds()
		s.logger.Info("durable store bootstrapped",
			"dir", dir, "snapshot_seq", s.seq,
			"objects", s.ix.ApproxLen(),
			"fsync", s.fsyncName(),
			"elapsed_ms", time.Since(start).Milliseconds())
	} else {
		s.seq = seq
		s.ix, err = shard.Restore(filepath.Join(dir, snapDirName(seq)), opts.Shard)
		if err != nil {
			return nil, fmt.Errorf("restoring snapshot %d: %w", seq, err)
		}
		// One pass over the log: replay the intact records, truncate the
		// torn tail, keep the handle open for appending.
		var replayed int
		s.log, replayed, err = wal.OpenReplayFS(s.fs, filepath.Join(dir, walName(seq)), s.walPolicy(), s.applyRecord)
		if err != nil {
			return nil, fmt.Errorf("replaying wal %d: %w", seq, err)
		}
		s.walSeq = seq
		if err := s.scanGenerations(); err != nil {
			return nil, fmt.Errorf("scanning generations: %w", err)
		}
		startSeq := s.genStart[seq]
		if startSeq == 0 {
			// CURRENT names a generation the scan rejected — nothing to
			// serve replication from, but the store itself is intact.
			startSeq = 1
			s.genStart[seq] = 1
		}
		next := startSeq + uint64(replayed)
		// A crash (or failure) mid-checkpoint leaves successor WALs past
		// the CURRENT generation: records accepted after that checkpoint's
		// cut. Replay the whole chain in order — numbering is positional,
		// so the chain continues exactly where the previous WAL stopped.
		chain := 0
		for {
			g := s.walSeq + 1
			path := filepath.Join(dir, walName(g))
			if _, statErr := os.Stat(path); statErr != nil {
				break
			}
			s.registerGen(g, next)
			oldLog := s.log
			var n int
			s.log, n, err = wal.OpenReplayFS(s.fs, path, s.walPolicy(), s.applyRecord)
			if err != nil {
				return nil, fmt.Errorf("replaying successor wal %d: %w", g, err)
			}
			oldLog.Close()
			next += uint64(n)
			replayed += n
			s.walSeq = g
			chain++
		}
		s.nextSeq.Store(next)
		s.restoreSeq = seq
		s.restoreReplayed = int64(replayed)
		s.logger.Info("durable store restored",
			"dir", dir, "snapshot_seq", seq,
			"wal_chain", chain+1,
			"wal_records_replayed", replayed,
			"wal_truncated_bytes", s.log.TruncatedBytes(),
			"objects", s.ix.ApproxLen(),
			"fsync", s.fsyncName(),
			"elapsed_ms", time.Since(start).Milliseconds())
		if t := s.log.TruncatedBytes(); t > 0 {
			// A torn tail is the footprint of a crash mid-append — benign
			// (the record was never acknowledged under FsyncAlways) but
			// worth its own line at warn.
			s.logger.Warn("wal tail truncated", "bytes", t, "wal_seq", s.walSeq)
		}
		if chain > 0 {
			// Roll the chain forward into a fresh generation so the store
			// leaves Open with the steady-state invariant (one live WAL,
			// CURRENT naming its snapshot) restored. The rolled-forward
			// snapshot contains every replayed record, so the superseded
			// chain retires at the next GC.
			oldLog := s.log
			if err := s.rotateTo(s.walSeq + 1); err != nil {
				return nil, fmt.Errorf("rolling forward wal chain: %w", err)
			}
			oldLog.Close()
			s.gcGenerations()
			s.logger.Info("rolled forward interrupted checkpoint",
				"snapshot_seq", s.seq, "chain_replayed", chain)
		}
		s.restoreSeconds = time.Since(start).Seconds()
	}

	if s.walPolicy() == wal.SyncInterval {
		every := opts.FsyncEvery
		if every <= 0 {
			every = 100 * time.Millisecond
		}
		s.syncStop = make(chan struct{})
		s.syncGroup.Add(1)
		go s.syncLoop(every)
	}
	return s, nil
}

// fsyncName is the configured fsync policy as a log-friendly string.
func (s *Store) fsyncName() string {
	if s.opts.Fsync == "" {
		return string(FsyncAlways)
	}
	return string(s.opts.Fsync)
}

func (s *Store) walPolicy() wal.SyncPolicy {
	switch s.opts.Fsync {
	case FsyncInterval:
		return wal.SyncInterval
	case FsyncNever:
		return wal.SyncNever
	default:
		return wal.SyncAlways
	}
}

// applyRecord replays one WAL record into the index.
func (s *Store) applyRecord(r *wal.Record) error {
	switch r.Op {
	case wal.OpInsert:
		return s.ix.Insert(r.Objects...)
	case wal.OpDelete:
		_, err := s.ix.Delete(r.ID, r.Hint)
		return err
	}
	return fmt.Errorf("unknown wal opcode %d", r.Op)
}

// bootstrap builds the index from Options.Bootstrap and writes snapshot 1.
func (s *Store) bootstrap() error {
	var data []geom.Object
	if s.opts.Bootstrap != nil {
		data = s.opts.Bootstrap()
	}
	s.ix = shard.New(data, s.opts.Shard)
	return s.rotateTo(1)
}

// Index returns the underlying sharded index. Queries (Query, QueryBatch,
// KNN, Stats, ...) go directly through it; updates that must survive a
// restart go through the store's Insert/Delete instead.
func (s *Store) Index() *shard.Index { return s.ix }

// Seq returns the sequence number of the live snapshot.
func (s *Store) Seq() uint64 {
	s.updMu.RLock()
	defer s.updMu.RUnlock()
	return s.seq
}

// WALSize returns the current write-ahead log length in bytes.
func (s *Store) WALSize() int64 {
	s.updMu.RLock()
	defer s.updMu.RUnlock()
	return s.log.Size()
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// RecoveryInfo reports what Open built the live index from: the snapshot
// sequence restored (0 when none existed), the WAL records replayed on top,
// whether the store bootstrapped fresh state, and the restore wall time in
// seconds. The values are fixed at Open, so reads are lock-free; the tuple
// return satisfies server.DurabilityRecoverer without a type dependency.
func (s *Store) RecoveryInfo() (snapshotSeq uint64, walRecordsReplayed int64, bootstrapped bool, restoreSeconds float64) {
	return s.restoreSeq, s.restoreReplayed, s.restoreBootstrapped, s.restoreSeconds
}

// Insert durably inserts objs: the operation is appended to the WAL (and
// fsynced, per policy) before it is applied or acknowledged. While the
// store is degraded it fails fast with ioerr.ErrDegraded; a fresh append
// failure that survives the bounded retries enters degraded mode (the
// operation is not applied — the index holds exactly the acknowledged
// writes).
func (s *Store) Insert(objs ...geom.Object) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.degraded.Load() {
		return ioerr.ErrDegraded
	}
	s.updMu.RLock()
	s.opMu.Lock()
	err := s.appendRetry(func() error { return s.log.AppendInsert(objs) })
	logged := err == nil
	if logged {
		// The record is durable: it owns the next global sequence number
		// whether or not the in-memory apply below succeeds (replay and
		// replication both serve from the log, not the index).
		s.nextSeq.Add(1)
		err = s.ix.Insert(objs...)
	}
	s.opMu.Unlock()
	s.updMu.RUnlock()
	if logged {
		s.broadcastUpdate()
	}
	if err == nil {
		s.noteUpdate()
		return nil
	}
	if !logged {
		return s.degradeOn(err)
	}
	return err
}

// Delete durably deletes the object with the given ID (see shard.Delete for
// the hint semantics), logging before applying. Degraded-mode and retry
// semantics match Insert.
func (s *Store) Delete(id int32, hint geom.Box) (bool, error) {
	if s.closed.Load() {
		return false, ErrClosed
	}
	if s.degraded.Load() {
		return false, ioerr.ErrDegraded
	}
	s.updMu.RLock()
	s.opMu.Lock()
	err := s.appendRetry(func() error { return s.log.AppendDelete(id, hint) })
	logged := err == nil
	var found bool
	if logged {
		s.nextSeq.Add(1)
		found, err = s.ix.Delete(id, hint)
	}
	s.opMu.Unlock()
	s.updMu.RUnlock()
	if logged {
		s.broadcastUpdate()
	}
	if err == nil {
		s.noteUpdate()
		return found, nil
	}
	if !logged {
		return false, s.degradeOn(err)
	}
	return found, err
}

// appendRetry runs one WAL append, retrying transiently-classified
// failures (ENOSPC, EAGAIN, EINTR — the append self-repaired, the file is
// still trustworthy) with exponential backoff, at most Options.
// AppendRetries times. Fatal failures (EIO, a failed fsync, a broken log)
// return immediately: retrying against a file in unknown state is how
// acknowledged writes get lost. Called with opMu held, so the backoff
// sleeps stall only other writers, never reads.
func (s *Store) appendRetry(append func() error) error {
	err := append()
	if err == nil {
		return nil
	}
	retries := s.opts.AppendRetries
	if retries == 0 {
		retries = 3
	}
	backoff := s.opts.RetryBackoff
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}
	for i := 0; i < retries; i++ {
		if ioerr.Classify(err) != ioerr.Transient || s.log.Broken() != nil {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
		s.mRetries.Inc()
		s.logger.Warn("retrying wal append after transient failure",
			"attempt", i+1, "err", err)
		if err = append(); err == nil {
			return nil
		}
	}
	return err
}

// degradeOn flips the store into degraded read-only mode because of cause
// (a WAL append failure that exhausted its retries, or a fatal I/O error)
// and starts the background recovery probe. It returns the error update
// callers should surface: ioerr.ErrDegraded wrapping the cause, so the
// HTTP layer answers 503 + Retry-After for the triggering write exactly as
// it will for every write until recovery.
func (s *Store) degradeOn(cause error) error {
	if s.degraded.CompareAndSwap(false, true) {
		s.degradedReason.Store(cause.Error())
		s.logger.Error("entering degraded read-only mode",
			"cause", cause, "class", ioerr.Classify(cause).String())
		s.startRecovery()
	}
	return fmt.Errorf("%w (cause: %w)", ioerr.ErrDegraded, cause)
}

// Degraded reports whether the store is in degraded read-only mode, and
// the failure that put it there. The tuple form satisfies the serving
// layer's probe interface without a type dependency.
func (s *Store) Degraded() (bool, string) {
	if !s.degraded.Load() {
		return false, ""
	}
	reason, _ := s.degradedReason.Load().(string)
	return true, reason
}

// startRecovery launches the degraded-mode probe loop (one per episode).
func (s *Store) startRecovery() {
	if !s.recGate.CompareAndSwap(false, true) {
		return
	}
	every := s.opts.RecoverEvery
	if every <= 0 {
		every = 5 * time.Second
	}
	s.recGroup.Add(1)
	go func() {
		defer s.recGroup.Done()
		defer s.recGate.Store(false)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-s.recStop:
				return
			case <-t.C:
			}
			if s.closed.Load() {
				return
			}
			// A full checkpoint to a fresh generation is the recovery
			// probe: it exercises every write site (snapshot files, a new
			// WAL, the CURRENT rename, directory fsyncs) on fresh files,
			// so its success proves the disk writable again — and leaves
			// the store on a clean generation with an empty, trustworthy
			// log. checkpointLocked clears the degraded flag on success.
			if _, err := s.Checkpoint(); err != nil {
				if errors.Is(err, ErrClosed) {
					return
				}
				s.logger.Warn("degraded-mode recovery probe failed", "err", err)
				continue
			}
			return
		}
	}()
}

// noteUpdate counts one accepted update and triggers the automatic
// checkpoint once the threshold is crossed. The checkpoint runs detached —
// the unlucky update that crossed the line should not pay for writing every
// shard — and the gate keeps at most one in flight.
func (s *Store) noteUpdate() {
	s.mUpdates.Inc()
	n := s.updates.Add(1)
	if s.opts.CheckpointEvery <= 0 || n < int64(s.opts.CheckpointEvery) {
		return
	}
	if s.ckptGate.CompareAndSwap(false, true) {
		go func() {
			defer s.ckptGate.Store(false)
			if _, err := s.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				// Detached from any update call, so the log is the only
				// place this failure can surface (the failure counter moves
				// too, inside checkpointLocked).
				s.logger.Error("automatic checkpoint failed", "err", err)
			}
		}()
	}
}

// Checkpoint writes a new snapshot and retires the current WAL, returning
// the new snapshot sequence. Updates are NOT paused for the snapshot: the
// checkpoint pins every shard's MVCC version during a microsecond cut (the
// only instants updates wait) and serializes the pinned views while new
// writes keep landing in the successor WAL. Queries are never blocked;
// concurrent checkpoints are serialized.
func (s *Store) Checkpoint() (uint64, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.closed.Load() {
		return 0, ErrClosed
	}
	return s.checkpointPinned()
}

// checkpointPinned is the zero-pause rotation (phases per the package doc:
// prepare → cut → publish → retire). Caller holds ckptMu; updMu is taken
// exclusively only for the cut and the final generation swap.
func (s *Store) checkpointPinned() (uint64, error) {
	start := time.Now()
	newSeq := s.walSeq + 1
	tmp := filepath.Join(s.dir, snapDirName(newSeq)+".tmp")
	final := filepath.Join(s.dir, snapDirName(newSeq))

	// Phase 1 — prepare, updates flowing: the successor WAL and the
	// snapshot staging directory. A failure here leaves the store entirely
	// on its old generation.
	fail := func(err error) (uint64, error) {
		s.mCkptFailures.Inc()
		return 0, err
	}
	if err := s.fs.RemoveAll(tmp); err != nil {
		return fail(err)
	}
	if err := s.fs.MkdirAll(tmp, 0o755); err != nil {
		return fail(err)
	}
	newLog, err := wal.CreateFS(s.fs, filepath.Join(s.dir, walName(newSeq)), s.walPolicy())
	if err != nil {
		s.fs.RemoveAll(tmp)
		return fail(err)
	}
	if s.walMetrics != nil {
		newLog.SetMetrics(s.walMetrics)
	}

	// Phase 2 — the cut. Everything acknowledged before it is in the
	// pinned versions and the retiring WAL; everything after goes to the
	// successor WAL. This exclusive section is the whole update pause:
	// one log-pointer swap plus one version pin per shard.
	cutStart := time.Now()
	s.updMu.Lock()
	pins, err := s.ix.PinVersions()
	if err != nil {
		// Nothing swapped yet: roll the prepared files back and keep
		// running on the old generation.
		s.updMu.Unlock()
		newLog.Close()
		s.fs.Remove(filepath.Join(s.dir, walName(newSeq)))
		s.fs.RemoveAll(tmp)
		return fail(err)
	}
	cutSeq := s.nextSeq.Load()
	oldLog := s.log
	s.log = newLog
	s.walSeq = newSeq
	s.registerGen(newSeq, cutSeq)
	s.updMu.Unlock()
	pause := time.Since(cutStart)
	s.ckptPauseNS.Store(int64(pause))
	s.mCkptPause.ObserveDuration(pause)
	defer pins.Release()

	// Phase 3 — publish, updates flowing: serialize the pinned versions,
	// fsync, rename into place, point CURRENT at the new generation. A
	// failure from here on leaves the store mid-chain but correct: records
	// keep landing in the successor WAL, CURRENT still names the old
	// generation, and recovery (or the next checkpoint) replays the chain.
	if err := s.ix.SnapshotPinnedFS(tmp, s.fs, pins); err != nil {
		s.fs.RemoveAll(tmp)
		return fail(err)
	}
	if err := writeReplMeta(s.fs, tmp, cutSeq); err != nil {
		s.fs.RemoveAll(tmp)
		return fail(err)
	}
	if err := s.fs.RemoveAll(final); err != nil {
		return fail(err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return fail(err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fail(err)
	}
	if err := writeCurrent(s.fs, s.dir, newSeq); err != nil {
		return fail(err)
	}

	// Phase 4 — retire: advance the in-memory generation, release the old
	// log, garbage-collect generations beyond the retention window
	// (keeping at least the previous one so a bootstrapping follower can
	// finish streaming it; GC failures are cosmetic dead weight).
	s.updMu.Lock()
	s.seq = newSeq
	s.gcGenerations()
	s.updMu.Unlock()
	oldLog.Close()
	s.updates.Store(0)
	elapsed := time.Since(start)
	s.ckptCount.Add(1)
	s.ckptLastNS.Store(int64(elapsed))
	s.mCkpts.Inc()
	s.mCkptDur.ObserveDuration(elapsed)
	if s.degraded.Swap(false) {
		// The rotation just proved every write site good on fresh files:
		// the store is durable again, writes may flow.
		s.degradedReason.Store("")
		s.logger.Info("degraded mode cleared by successful checkpoint",
			"snapshot_seq", newSeq)
	}
	s.logger.Info("checkpoint complete",
		"snapshot_seq", newSeq, "objects", s.ix.ApproxLen(),
		"elapsed_ms", elapsed.Milliseconds(),
		"update_pause_us", pause.Microseconds())
	return newSeq, nil
}

// rotateTo writes snapshot newSeq from the LIVE index, opens its (empty)
// WAL, and atomically points CURRENT at the new generation — in that
// order, so a failure at any step leaves the store entirely on the
// previous generation, and a crash at any instant recovers a consistent
// generation. It is the Open-time rotation (bootstrap and WAL-chain
// roll-forward, both single-threaded — no updates exist to pause); the
// runtime checkpoint is checkpointPinned, which snapshots pinned versions
// instead. The caller retires the previous generation's files.
func (s *Store) rotateTo(newSeq uint64) error {
	tmp := filepath.Join(s.dir, snapDirName(newSeq)+".tmp")
	final := filepath.Join(s.dir, snapDirName(newSeq))
	if err := s.fs.RemoveAll(tmp); err != nil {
		return err
	}
	if err := s.fs.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	if err := s.ix.SnapshotFS(tmp, s.fs); err != nil {
		s.fs.RemoveAll(tmp)
		return err
	}
	// Persist the generation's start sequence alongside the shard files so
	// a follower restoring this snapshot knows where its WAL tail begins.
	// No update can land mid-rotation (the caller holds updMu exclusively),
	// so nextSeq is exact.
	if err := writeReplMeta(s.fs, tmp, s.nextSeq.Load()); err != nil {
		s.fs.RemoveAll(tmp)
		return err
	}
	if err := s.fs.RemoveAll(final); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	log, err := wal.CreateFS(s.fs, filepath.Join(s.dir, walName(newSeq)), s.walPolicy())
	if err != nil {
		return err
	}
	if s.walMetrics != nil {
		log.SetMetrics(s.walMetrics)
	}
	if err := writeCurrent(s.fs, s.dir, newSeq); err != nil {
		log.Close()
		s.fs.Remove(filepath.Join(s.dir, walName(newSeq)))
		return err
	}
	s.log = log
	s.seq = newSeq
	s.walSeq = newSeq
	s.registerGen(newSeq, s.nextSeq.Load())
	return nil
}

// Close checkpoints (so restart needs no WAL replay) and releases the WAL.
// The store must not be used afterwards.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return ErrClosed
	}
	if s.syncStop != nil {
		close(s.syncStop)
		s.syncGroup.Wait()
	}
	// Stop the degraded-mode probe before taking ckptMu: the probe may be
	// mid-Checkpoint holding it, and waiting while holding it would
	// deadlock.
	close(s.recStop)
	s.recGroup.Wait()
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	seq, err := s.checkpointPinned()
	if err != nil {
		s.logger.Error("final checkpoint on close failed", "err", err)
		if s.log != nil {
			s.log.Close()
		}
		return err
	}
	s.logger.Info("durable store closed", "snapshot_seq", seq)
	return s.log.Close()
}

// syncLoop is the FsyncInterval cadence.
func (s *Store) syncLoop(every time.Duration) {
	defer s.syncGroup.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.syncStop:
			return
		case <-t.C:
			s.updMu.RLock()
			log := s.log
			s.updMu.RUnlock()
			if log != nil {
				log.Sync()
			}
		}
	}
}

// readCurrent parses CURRENT; ok == false means no snapshot exists yet.
func readCurrent(fsys faultfs.FS, dir string) (uint64, bool, error) {
	raw, err := fsys.ReadFile(filepath.Join(dir, currentName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	seq, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("parsing %s: %w", currentName, err)
	}
	return seq, true, nil
}

// writeCurrent atomically points CURRENT at seq: write a temp file, fsync,
// rename over, fsync the directory.
func writeCurrent(fsys faultfs.FS, dir string, seq uint64) error {
	tmp := filepath.Join(dir, currentName+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "%d\n", seq); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, currentName)); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
