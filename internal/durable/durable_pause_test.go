// The zero-update-pause proof for the pinned checkpoint. A gate file
// system stalls the snapshot's shard-file writes — the phase that used to
// run under the exclusive update lock — and while the checkpoint hangs
// there mid-rotation, updates must be accepted, acknowledged and visible.
// Afterwards the two recovery legs are checked against their oracles: the
// pinned snapshot alone restores to exactly the pre-cut state, and a full
// (crash-style, no Close) reopen replays the successor WAL back to the
// final acknowledged state.

package durable

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultfs"
	"repro/internal/geom"
	"repro/internal/shard"
)

// gateFS passes everything through to the wrapped FS except that, once
// armed, Create calls whose path contains match block until the gate
// channel is closed. The first blocked call closes entered.
type gateFS struct {
	faultfs.FS
	match   string
	armed   atomic.Bool
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func newGateFS(match string) *gateFS {
	return &gateFS{
		FS:      faultfs.OS{},
		match:   match,
		gate:    make(chan struct{}),
		entered: make(chan struct{}),
	}
}

func (g *gateFS) Create(name string) (faultfs.File, error) {
	if g.armed.Load() && strings.Contains(name, g.match) {
		g.once.Do(func() { close(g.entered) })
		<-g.gate
	}
	return g.FS.Create(name)
}

func universeWriteIDs(ix *shard.Index) map[int32]struct{} {
	ids := ix.Query(geom.UniverseBox(), nil)
	set := make(map[int32]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}

func TestCheckpointZeroUpdatePause(t *testing.T) {
	dir := t.TempDir()
	gate := newGateFS("shard-")
	base := dataset.Uniform(400, 41)
	store, err := Open(dir, Options{
		Shard:     shard.Config{Shards: 2},
		Bootstrap: func() []geom.Object { return base },
		Fsync:     FsyncNever,
		FS:        gate,
	})
	if err != nil {
		t.Fatal(err)
	}

	mkObjs := func(first int32, n int) []geom.Object {
		objs := make([]geom.Object, n)
		for i := range objs {
			objs[i] = geom.Object{
				Box: geom.BoxAt(base[i%len(base)].Center(), 1),
				ID:  first + int32(i),
			}
		}
		return objs
	}
	setA := mkObjs(1_000_000, 50)
	if err := store.Insert(setA...); err != nil {
		t.Fatal(err)
	}

	// Arm the gate and start the checkpoint. Its cut (WAL swap + version
	// pin) happens before any snapshot file is created, so by the time the
	// gate reports entered, the checkpoint is mid-rotation with the pins
	// held — exactly the window that used to pause updates.
	gate.armed.Store(true)
	type ckptRes struct {
		seq uint64
		err error
	}
	done := make(chan ckptRes, 1)
	go func() {
		seq, err := store.Checkpoint()
		done <- ckptRes{seq, err}
	}()
	select {
	case <-gate.entered:
	case res := <-done:
		t.Fatalf("checkpoint finished (seq %d, err %v) without writing a shard file", res.seq, res.err)
	case <-time.After(30 * time.Second):
		t.Fatal("checkpoint never reached the snapshot write")
	}

	// Updates while the checkpoint hangs mid-rotation: they must be acked
	// promptly (a watchdog, not a latency assertion) and immediately
	// visible to live queries.
	setB := mkObjs(2_000_000, 50)
	ackedB := make(chan error, 1)
	go func() { ackedB <- store.Insert(setB...) }()
	select {
	case err := <-ackedB:
		if err != nil {
			t.Fatalf("insert during checkpoint: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("updates paused: insert blocked while checkpoint mid-rotation")
	}
	live := universeWriteIDs(store.Index())
	for _, o := range append(append([]geom.Object(nil), setA...), setB...) {
		if _, ok := live[o.ID]; !ok {
			t.Fatalf("acked insert %d invisible while checkpoint mid-rotation", o.ID)
		}
	}
	select {
	case res := <-done:
		t.Fatalf("checkpoint completed (seq %d, err %v) while its shard write was gated", res.seq, res.err)
	default:
	}

	// Release the gate; the checkpoint must complete and record a cut
	// pause far below the snapshot's wall time (the pause is the WAL swap
	// plus per-shard pinning, not the file writes).
	close(gate.gate)
	var res ckptRes
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("checkpoint did not finish after gate release")
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	if pause := time.Duration(store.ckptPauseNS.Load()); pause <= 0 || pause > time.Second {
		t.Fatalf("recorded update pause %v, want (0s, 1s]", pause)
	}

	// Recovery leg 1 — the pinned snapshot alone: restoring the generation
	// the checkpoint wrote must yield exactly the pre-cut oracle state
	// (base + A), with nothing from B, even though B was acked before the
	// snapshot files were written.
	re, err := shard.Restore(SnapshotDir(dir, res.seq), shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := universeWriteIDs(re)
	if want := len(base) + len(setA); len(snap) != want {
		t.Fatalf("pinned snapshot restored %d objects, want %d", len(snap), want)
	}
	for _, o := range setA {
		if _, ok := snap[o.ID]; !ok {
			t.Fatalf("pre-cut insert %d missing from pinned snapshot", o.ID)
		}
	}
	for _, o := range setB {
		if _, ok := snap[o.ID]; ok {
			t.Fatalf("post-cut insert %d leaked into pinned snapshot", o.ID)
		}
	}

	// Recovery leg 2 — crash-style reopen (no Close, so no extra
	// checkpoint): the successor WAL replays B on top of the snapshot,
	// recovering the full acknowledged state.
	reopened, err := Open(dir, Options{
		Shard:     shard.Config{Shards: 2},
		Bootstrap: func() []geom.Object { return base },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Seq(); got != res.seq {
		t.Fatalf("reopened at generation %d, checkpoint wrote %d", got, res.seq)
	}
	full := universeWriteIDs(reopened.Index())
	for _, o := range append(append([]geom.Object(nil), setA...), setB...) {
		if _, ok := full[o.ID]; !ok {
			t.Fatalf("acked insert %d lost across recovery", o.ID)
		}
	}
	if want := len(base) + len(setA) + len(setB); len(full) != want {
		t.Fatalf("recovered %d objects, want %d", len(full), want)
	}
	if err := reopened.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}
