package durable

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultfs"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/workload"
)

func sortedCopy(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCrashRecoveryEquivalence is the kill-restart oracle test: a durable
// store takes mixed concurrent traffic (readers querying, writers running
// insert/delete streams over disjoint ID ranges), is then abandoned without
// Close — the in-process equivalent of a hard stop, legitimate because
// FsyncAlways makes every acknowledged update durable before it returns —
// and reopened from disk. Every query against the reopened store must match
// a never-restarted oracle engine that received exactly the same updates.
// Run under -race: the reader/writer phase is genuinely concurrent.
func TestCrashRecoveryEquivalence(t *testing.T) {
	data := dataset.Uniform(6000, 81)
	dir := t.TempDir()
	store, err := Open(dir, Options{
		Shard:     shard.Config{Shards: 4},
		Bootstrap: func() []geom.Object { return data },
		Fsync:     FsyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := shard.New(data, shard.Config{Shards: 4})

	queries := workload.Uniform(dataset.Universe(), 150, 1e-3, 82)
	const writers, readers, opsPerWriter = 3, 3, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int32(1_000_000 + w*100_000) // disjoint ID range per writer
			for i := 0; i < opsPerWriter; i++ {
				id := base + int32(i)
				obj := geom.Object{Box: geom.BoxAt(queries[(w*opsPerWriter+i)%len(queries)].Center(), 2), ID: id}
				if err := store.Insert(obj); err != nil {
					t.Error(err)
					return
				}
				if err := oracle.Insert(obj); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 { // delete a third of them again
					if _, err := store.Delete(id, obj.Box); err != nil {
						t.Error(err)
						return
					}
					if _, err := oracle.Delete(id, obj.Box); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				store.Index().Query(queries[(r*200+i)%len(queries)], nil)
			}
		}(r)
	}
	wg.Wait()

	// Hard stop: no Close, no final checkpoint. Recovery must come from the
	// bootstrap snapshot plus the WAL tail alone.
	if store.Seq() != 1 {
		t.Fatalf("unexpected checkpoint during run: seq %d", store.Seq())
	}
	if store.WALSize() == 0 {
		t.Fatal("WAL empty after writes")
	}

	reopened, err := Open(dir, Options{
		Shard: shard.Config{Shards: 4},
		Bootstrap: func() []geom.Object {
			t.Error("bootstrap called on reopen: snapshot not found")
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()

	if got, want := reopened.Index().Len(), oracle.Len(); got != want {
		t.Fatalf("recovered Len %d, oracle %d", got, want)
	}
	for qi, q := range queries {
		got := sortedCopy(reopened.Index().Query(q, nil))
		want := sortedCopy(oracle.Query(q, nil))
		if !sameIDs(got, want) {
			t.Fatalf("query %d after recovery: got %d IDs, oracle %d", qi, len(got), len(want))
		}
	}
	// The recovered store is a full citizen: more updates, checkpoint, reopen.
	if err := reopened.Insert(geom.Object{Box: geom.BoxAt(geom.Point{9, 9, 9}, 1), ID: 2_000_001}); err != nil {
		t.Fatal(err)
	}
	if _, err := reopened.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir, Options{
		Shard:     shard.Config{Shards: 2},
		Bootstrap: func() []geom.Object { return dataset.Uniform(500, 83) },
		Fsync:     FsyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 20; i++ {
		if err := store.Insert(geom.Object{Box: geom.BoxAt(geom.Point{float64(i), 1, 1}, 1), ID: 500_000 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if store.WALSize() == 0 {
		t.Fatal("WAL empty before checkpoint")
	}
	seq, err := store.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("checkpoint seq %d, want 2", seq)
	}
	if store.WALSize() != 0 {
		t.Fatalf("WAL size %d after checkpoint, want 0", store.WALSize())
	}
	// The previous generation stays within the retention window (default
	// keeps the last 2, so a bootstrapping follower can finish streaming
	// it)...
	if _, err := os.Stat(filepath.Join(dir, snapDirName(1))); err != nil {
		t.Fatalf("generation 1 should be retained after one checkpoint: %v", err)
	}
	// ...and a second checkpoint pushes it out: only generations 2 and 3
	// remain.
	if _, err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapDirName(1))); !os.IsNotExist(err) {
		t.Fatalf("generation 1 snapshot still present after falling out of retention: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatalf("generation 1 wal still present after falling out of retention: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapDirName(2))); err != nil {
		t.Fatalf("generation 2 should be retained: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir, Options{Shard: shard.Config{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got := reopened.Index().Query(geom.BoxAt(geom.Point{5, 1, 1}, 0.5), nil)
	found := false
	for _, id := range got {
		if id == 500_005 {
			found = true
		}
	}
	if !found {
		t.Fatal("post-checkpoint reopen lost an inserted object")
	}
}

func TestAutomaticCheckpoint(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir, Options{
		Shard:           shard.Config{Shards: 2},
		Bootstrap:       func() []geom.Object { return dataset.Uniform(300, 84) },
		Fsync:           FsyncNever,
		CheckpointEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for i := int32(0); i < 25; i++ {
		if err := store.Insert(geom.Object{Box: geom.BoxAt(geom.Point{1, 2, 3}, 1), ID: 600_000 + i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for store.Seq() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after threshold (seq %d)", store.Seq())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseThenReopenNeedsNoWAL(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir, Options{
		Shard:     shard.Config{Shards: 2},
		Bootstrap: func() []geom.Object { return dataset.Uniform(400, 85) },
		Fsync:     FsyncInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := geom.Object{Box: geom.BoxAt(geom.Point{7, 7, 7}, 1), ID: 700_001}
	if err := store.Insert(obj); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != ErrClosed {
		t.Fatalf("second Close: %v, want ErrClosed", err)
	}
	if err := store.Insert(obj); err != ErrClosed {
		t.Fatalf("Insert after Close: %v, want ErrClosed", err)
	}

	seq, ok, err := readCurrent(faultfs.OS{}, dir)
	if err != nil || !ok {
		t.Fatalf("CURRENT unreadable: ok=%v err=%v", ok, err)
	}
	// Close checkpointed, so the live WAL must be empty.
	fi, err := os.Stat(filepath.Join(dir, walName(seq)))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("WAL size %d after Close, want 0", fi.Size())
	}
	reopened, err := Open(dir, Options{Shard: shard.Config{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Index().Query(obj.Box, nil); !sameIDs(sortedCopy(got), []int32{700_001}) {
		t.Fatalf("object lost across Close/reopen: %v", got)
	}
}

func TestBootstrapEmptyStore(t *testing.T) {
	store, err := Open(t.TempDir(), Options{Shard: shard.Config{Shards: 2}, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Index().Len() != 0 {
		t.Fatalf("empty bootstrap has %d objects", store.Index().Len())
	}
	if err := store.Insert(geom.Object{Box: geom.BoxAt(geom.Point{1, 1, 1}, 1), ID: 1}); err != nil {
		t.Fatal(err)
	}
	if got := store.Index().Query(geom.BoxAt(geom.Point{1, 1, 1}, 2), nil); len(got) != 1 {
		t.Fatalf("insert into empty store invisible: %v", got)
	}
}
