package durable

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/faultfs"
	"repro/internal/geom"
	"repro/internal/ioerr"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// sweepOp is one step of the deterministic crash-sweep workload: an insert,
// a delete, or a checkpoint (which changes no logical state).
type sweepOp struct {
	insert  *geom.Object
	delID   int32
	delHint geom.Box
	ckpt    bool
}

func sweepWorkload() []sweepOp {
	at := func(x float64, id int32) *geom.Object {
		o := geom.Object{Box: geom.BoxAt(geom.Point{x, x, x}, 2), ID: id}
		return &o
	}
	del := func(x float64, id int32) sweepOp {
		return sweepOp{delID: id, delHint: geom.BoxAt(geom.Point{x, x, x}, 2)}
	}
	return []sweepOp{
		{insert: at(10, 1_000_001)},
		{insert: at(30, 1_000_002)},
		{insert: at(50, 1_000_003)},
		del(30, 1_000_002),
		{ckpt: true},
		{insert: at(70, 1_000_004)},
		{insert: at(90, 1_000_005)},
		del(70, 1_000_004),
		{ckpt: true},
		{insert: at(110, 1_000_006)},
		del(10, 1_000_001),
		{insert: at(130, 1_000_007)},
	}
}

// sweepModel returns the expected live write-path IDs after the first n
// workload ops applied on top of the base dataset.
func sweepModel(ops []sweepOp, n int) map[int32]bool {
	ids := make(map[int32]bool)
	for i := 0; i < n && i < len(ops); i++ {
		switch {
		case ops[i].insert != nil:
			ids[ops[i].insert.ID] = true
		case ops[i].delID != 0:
			delete(ids, ops[i].delID)
		}
	}
	return ids
}

const sweepWriteBase = 1_000_000

// sweepIDs queries the whole universe and returns the write-path IDs (the
// base dataset is identical across runs, so only the workload IDs can
// differ).
func sweepIDs(ix *shard.Index) map[int32]bool {
	all := ix.Query(dataset.Universe(), nil)
	ids := make(map[int32]bool)
	for _, id := range all {
		if id >= sweepWriteBase {
			ids[id] = true
		}
	}
	return ids
}

func sameIDSet(a, b map[int32]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// runSweepWorkload opens a store over fsys and drives the workload,
// returning the store (nil if Open itself failed) and the number of ops
// acknowledged before the first failure. Every op is attempted; once the
// crash latch trips they all fail fast, so the acked ops are a prefix.
func runSweepWorkload(t *testing.T, dir string, fsys faultfs.FS, base []geom.Object, ops []sweepOp) (*Store, int) {
	t.Helper()
	store, err := Open(dir, Options{
		Shard:        shard.Config{Shards: 2},
		Bootstrap:    func() []geom.Object { return base },
		Fsync:        FsyncAlways,
		FS:           fsys,
		RecoverEvery: time.Hour, // keep the probe out of the sweep
	})
	if err != nil {
		return nil, 0
	}
	acked := len(ops)
	failed := false
	for i, op := range ops {
		var err error
		switch {
		case op.insert != nil:
			err = store.Insert(*op.insert)
		case op.delID != 0:
			_, err = store.Delete(op.delID, op.delHint)
		case op.ckpt:
			_, err = store.Checkpoint()
		}
		if err != nil && !failed {
			failed = true
			acked = i
		}
		if err == nil && failed {
			t.Fatalf("op %d succeeded after an earlier op failed: acked set is not a prefix", i)
		}
	}
	return store, acked
}

// TestCrashPointSweep is the registered-write-site chaos harness: it first
// counts every mutating file-system operation the full workload performs
// (bootstrap, WAL appends and fsyncs, two checkpoint rotations), then
// replays the workload once per site with a crash injected exactly there,
// reopens the directory with the real file system, and checks the
// recovered index against the acked-prefix oracle. The one permitted
// divergence is the in-flight op: logged to the WAL but failed before
// acknowledgement, its replay after the crash is benign (prefix+1).
func TestCrashPointSweep(t *testing.T) {
	base := dataset.Uniform(120, 91)
	ops := sweepWorkload()

	counter := faultfs.New(nil, faultfs.Config{})
	store, acked := runSweepWorkload(t, t.TempDir(), counter, base, ops)
	if store == nil || acked != len(ops) {
		t.Fatalf("fault-free pass failed: store=%v acked=%d/%d", store != nil, acked, len(ops))
	}
	steps := counter.Steps()
	if steps < 20 {
		t.Fatalf("suspiciously few write sites counted: %d", steps)
	}
	t.Logf("sweeping %d crash points over %d ops", steps, len(ops))

	for k := int64(1); k <= steps; k++ {
		dir := t.TempDir()
		ff := faultfs.New(nil, faultfs.Config{CrashStep: k})
		store, acked := runSweepWorkload(t, dir, ff, base, ops)
		if store != nil {
			if !ff.Crashed() && acked != len(ops) {
				t.Fatalf("crash step %d: op failed without the latch tripping", k)
			}
			store.Close() // stops background goroutines; errors expected post-crash
		}

		reopened, err := Open(dir, Options{
			Shard:     shard.Config{Shards: 2},
			Bootstrap: func() []geom.Object { return base },
		})
		if err != nil {
			t.Fatalf("crash step %d: recovery open failed: %v", k, err)
		}
		got := sweepIDs(reopened.Index())
		exact := sweepModel(ops, acked)
		inflight := sweepModel(ops, acked+1)
		if !sameIDSet(got, exact) && !sameIDSet(got, inflight) {
			t.Fatalf("crash step %d: recovered write-IDs %v, want acked prefix %v or prefix+in-flight %v (acked %d/%d ops)",
				k, got, exact, inflight, acked, len(ops))
		}
		if got, want := reopened.Index().Len(), len(base)+len(got); got != want {
			// len cross-check so a base-dataset object lost to the crash
			// cannot hide behind the write-ID filter.
			t.Fatalf("crash step %d: recovered Len %d, want %d", k, got, want)
		}
		if err := reopened.Close(); err != nil {
			t.Fatalf("crash step %d: close after recovery: %v", k, err)
		}
	}
}

// TestDegradedModeOnPersistentFsyncFailure drives the store into degraded
// read-only mode with an unremitting fsync fault, checks that reads keep
// answering while writes fail fast with ErrDegraded, then clears the fault
// and waits for the background checkpoint probe to restore read-write
// service.
func TestDegradedModeOnPersistentFsyncFailure(t *testing.T) {
	base := dataset.Uniform(300, 92)
	ff := faultfs.New(nil, faultfs.Config{})
	reg := telemetry.NewRegistry()
	store, err := Open(t.TempDir(), Options{
		Shard:        shard.Config{Shards: 2},
		Bootstrap:    func() []geom.Object { return base },
		Fsync:        FsyncAlways,
		FS:           ff,
		RecoverEvery: 20 * time.Millisecond,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	store.Instrument(reg)
	defer store.Close()

	good := geom.Object{Box: geom.BoxAt(geom.Point{20, 20, 20}, 2), ID: 2_000_001}
	if err := store.Insert(good); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}

	// The disk starts failing every fsync.
	ff.SetRules([]*faultfs.Rule{{Kind: faultfs.KindErr, Op: faultfs.OpSync}})
	victim := geom.Object{Box: geom.BoxAt(geom.Point{40, 40, 40}, 2), ID: 2_000_002}
	err = store.Insert(victim)
	if !errors.Is(err, ioerr.ErrDegraded) {
		t.Fatalf("insert under fsync failure: %v, want ErrDegraded", err)
	}
	if deg, reason := store.Degraded(); !deg || reason == "" {
		t.Fatalf("Degraded() = %v, %q after persistent fsync failure", deg, reason)
	}
	// The failed insert must not be in the index: acked state only.
	if ids := store.Index().Query(victim.Box, nil); len(ids) != 0 {
		t.Fatalf("unacknowledged insert visible in the index: %v", ids)
	}
	// Writes fail fast now...
	if err := store.Insert(victim); !errors.Is(err, ioerr.ErrDegraded) {
		t.Fatalf("second insert: %v, want fast ErrDegraded", err)
	}
	if _, err := store.Delete(good.ID, good.Box); !errors.Is(err, ioerr.ErrDegraded) {
		t.Fatalf("delete while degraded: %v, want ErrDegraded", err)
	}
	// ...but reads keep flowing, converged data included.
	if ids := store.Index().Query(good.Box, nil); len(ids) == 0 {
		t.Fatal("converged read returned nothing while degraded")
	}

	// The operator fixes the disk; the checkpoint probe must clear the
	// flag without intervention.
	ff.SetRules(nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if deg, _ := store.Degraded(); !deg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store did not leave degraded mode after faults cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Read-write service is back and durable.
	if err := store.Insert(victim); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	if ids := store.Index().Query(victim.Box, nil); len(ids) == 0 {
		t.Fatal("post-recovery insert not visible")
	}
}

// TestTransientENOSPCRetriesWithoutDegrading: a short ENOSPC burst is
// absorbed by the bounded retry — the write eventually acks and the store
// never degrades.
func TestTransientENOSPCRetriesWithoutDegrading(t *testing.T) {
	ff := faultfs.New(nil, faultfs.Config{})
	store, err := Open(t.TempDir(), Options{
		Shard:        shard.Config{Shards: 2},
		Bootstrap:    func() []geom.Object { return dataset.Uniform(100, 93) },
		Fsync:        FsyncNever,
		FS:           ff,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ff.SetRules([]*faultfs.Rule{{
		Kind: faultfs.KindENOSPC, Op: faultfs.OpWrite, PathContains: "wal-", Times: 2,
	}})
	obj := geom.Object{Box: geom.BoxAt(geom.Point{60, 60, 60}, 2), ID: 3_000_001}
	if err := store.Insert(obj); err != nil {
		t.Fatalf("insert with transient ENOSPC burst: %v", err)
	}
	if deg, _ := store.Degraded(); deg {
		t.Fatal("transient burst must not degrade the store")
	}
	if ff.Injected() != 2 {
		t.Fatalf("injected = %d, want 2 (both ENOSPC hits consumed)", ff.Injected())
	}
	if ids := store.Index().Query(obj.Box, nil); len(ids) == 0 {
		t.Fatal("retried insert not visible")
	}
}

// TestExhaustedRetriesDegrade: ENOSPC that outlasts the retry budget is a
// persistent fault and must flip the store into degraded mode.
func TestExhaustedRetriesDegrade(t *testing.T) {
	ff := faultfs.New(nil, faultfs.Config{})
	store, err := Open(t.TempDir(), Options{
		Shard:         shard.Config{Shards: 2},
		Bootstrap:     func() []geom.Object { return dataset.Uniform(100, 94) },
		Fsync:         FsyncNever,
		FS:            ff,
		AppendRetries: 2,
		RetryBackoff:  time.Millisecond,
		RecoverEvery:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ff.SetRules([]*faultfs.Rule{{Kind: faultfs.KindENOSPC, Op: faultfs.OpWrite}})
	obj := geom.Object{Box: geom.BoxAt(geom.Point{60, 60, 60}, 2), ID: 3_000_002}
	err = store.Insert(obj)
	if !errors.Is(err, ioerr.ErrDegraded) {
		t.Fatalf("insert with persistent ENOSPC: %v, want ErrDegraded", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("degraded error should carry its cause; got %v", err)
	}
	ff.SetRules(nil)
}

// TestFailedCheckpointLeavesOldGeneration: a checkpoint rotation that dies
// mid-way (rename fault) is an error, not an outage — the store keeps
// serving and accepting writes on the old generation, and the next attempt
// succeeds.
func TestFailedCheckpointLeavesOldGeneration(t *testing.T) {
	ff := faultfs.New(nil, faultfs.Config{})
	store, err := Open(t.TempDir(), Options{
		Shard:     shard.Config{Shards: 2},
		Bootstrap: func() []geom.Object { return dataset.Uniform(100, 95) },
		Fsync:     FsyncNever,
		FS:        ff,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	obj := geom.Object{Box: geom.BoxAt(geom.Point{80, 80, 80}, 2), ID: 4_000_001}
	if err := store.Insert(obj); err != nil {
		t.Fatal(err)
	}
	seqBefore := store.Seq()

	ff.SetRules([]*faultfs.Rule{{
		Kind: faultfs.KindErr, Op: faultfs.OpRename, PathContains: "snap-", Times: 1,
	}})
	if _, err := store.Checkpoint(); err == nil {
		t.Fatal("checkpoint must surface the injected rename failure")
	}
	if store.Seq() != seqBefore {
		t.Fatalf("failed checkpoint moved seq %d -> %d", seqBefore, store.Seq())
	}
	// Still read-write on the old generation.
	obj2 := geom.Object{Box: geom.BoxAt(geom.Point{85, 85, 85}, 2), ID: 4_000_002}
	if err := store.Insert(obj2); err != nil {
		t.Fatalf("insert after failed checkpoint: %v", err)
	}
	// Fault consumed; the next checkpoint rotates cleanly. The failed
	// attempt died after its cut (the rename is in the publish phase), so
	// the live WAL already ran one generation ahead of CURRENT and the
	// retry lands on a fresh generation: seqBefore+2, not +1 — generation
	// numbers may skip, sequence numbers never do.
	seq, err := store.Checkpoint()
	if err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
	if seq != seqBefore+2 {
		t.Fatalf("retried checkpoint seq %d, want %d", seq, seqBefore+2)
	}
	if ids := store.Index().Query(obj2.Box, nil); len(ids) == 0 {
		t.Fatal("object lost across failed-then-retried checkpoint")
	}
}
