package durable

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/wal"
)

func openReplStore(t *testing.T, retain int) (*Store, []geom.Object) {
	t.Helper()
	data := dataset.Uniform(400, 31)
	st, err := Open(t.TempDir(), Options{
		Shard:             shard.Config{Shards: 2},
		Bootstrap:         func() []geom.Object { return data },
		Fsync:             FsyncNever,
		RetainGenerations: retain,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, data
}

// advance lands n insert records (IDs base..base+n-1) on st.
func advance(t *testing.T, st *Store, data []geom.Object, base int32, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := st.Insert(geom.Object{Box: data[i%len(data)].Box, ID: base + int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotPinSurvivesCheckpoints is the bootstrap-vs-GC race pinned
// down: a replication stream acquires the live generation, checkpoints roll
// the store far past the retention window, and the pinned generation's
// snapshot directory and WAL must stay on disk until the stream releases
// them — then the next checkpoint may collect them.
func TestSnapshotPinSurvivesCheckpoints(t *testing.T) {
	st, data := openReplStore(t, 2)

	gen, startSeq, dir, release, err := st.AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || startSeq != 1 {
		t.Fatalf("live generation (%d, start %d), want (1, 1)", gen, startSeq)
	}

	// Three checkpoints put the live generation at 4; with retention 2 an
	// unpinned generation 1 would be long gone.
	for i := 0; i < 3; i++ {
		advance(t, st, data, int32(10_000*(i+1)), 5)
		if _, err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("pinned snapshot directory collected mid-stream: %v", err)
	}
	if _, err := os.Stat(WALPath(st.Dir(), gen)); err != nil {
		t.Fatalf("pinned generation's WAL collected mid-stream: %v", err)
	}
	// An unpinned middle generation (2) is already gone, proving GC ran
	// around the pin rather than not at all.
	if _, err := os.Stat(SnapshotDir(st.Dir(), 2)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("generation 2 not collected (err %v): GC never ran", err)
	}

	release()
	release() // idempotent: a double release must not unpin someone else's stream
	advance(t, st, data, 50_000, 5)
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("released generation still on disk (err %v)", err)
	}
}

// TestAcquireWALSeqMapping pins the sequence arithmetic: every retained
// sequence maps to the generation whose start precedes it, the empty tail
// is addressable, the future is ErrSeqAhead, and collected history is
// ErrSeqTruncated.
func TestAcquireWALSeqMapping(t *testing.T) {
	st, data := openReplStore(t, 2)

	advance(t, st, data, 1000, 4) // seqs 1..4 in generation 1
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	advance(t, st, data, 2000, 3) // seqs 5..7 in generation 2

	gen, start, _, release, err := st.AcquireWAL(6)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if gen != 2 || start != 5 {
		t.Fatalf("seq 6 mapped to (gen %d, start %d), want (2, 5)", gen, start)
	}

	// The empty tail (seq == NextSeq) is valid: it's what a caught-up
	// follower long-polls on.
	if _, _, _, release, err = st.AcquireWAL(st.NextSeq()); err != nil {
		t.Fatalf("AcquireWAL(NextSeq) = %v, want success", err)
	}
	release()
	if _, _, _, _, err = st.AcquireWAL(st.NextSeq() + 1); !errors.Is(err, ErrSeqAhead) {
		t.Fatalf("AcquireWAL beyond log = %v, want ErrSeqAhead", err)
	}

	// Roll generation 1 out of retention; its sequences become history.
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	advance(t, st, data, 3000, 2)
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err = st.AcquireWAL(1); !errors.Is(err, ErrSeqTruncated) {
		t.Fatalf("AcquireWAL(1) after GC = %v, want ErrSeqTruncated", err)
	}
}

// decodeTailFrame extracts the single inserted ID from a raw WAL frame.
func decodeTailFrame(t *testing.T, frame []byte) int32 {
	t.Helper()
	var rec wal.Record
	ok, err := wal.NewStreamDecoder(bytes.NewReader(frame)).Next(&rec)
	if err != nil || !ok {
		t.Fatalf("decoding shipped frame: ok %v err %v", ok, err)
	}
	if rec.Op != wal.OpInsert || len(rec.Objects) != 1 {
		t.Fatalf("unexpected record: op %d, %d objects", rec.Op, len(rec.Objects))
	}
	return rec.Objects[0].ID
}

// TestFaultTolerantWALTailing is the concurrent exactly-once contract of
// the replication read side, table-driven: a reader tails the store's WAL
// from sequence N via AcquireWAL + OpenReader + Skip — the leader's
// per-request pattern — while a writer appends and (in the rotation cases)
// checkpoints retire generations underneath it. The reader must observe
// every record exactly once in sequence order — record i carrying exactly
// the payload sequence i implies, never duplicated, skipped or shifted —
// or hit a clean ErrSeqTruncated it recovers from by re-basing on the live
// snapshot, exactly like a re-bootstrapping follower. Run under -race.
func TestFaultTolerantWALTailing(t *testing.T) {
	const idBase = 7_000_000
	cases := []struct {
		name       string
		seed       int // records written by the main goroutine before the writer starts
		writes     int // records written by the concurrent writer
		tail       int // records written after the parked reader is released
		ckptEvery  int // writer checkpoints after every N of its records (0 = never)
		parkReader bool
	}{
		{"append-only", 0, 120, 0, 0, false},
		{"checkpoint-rotation", 0, 120, 0, 25, false},
		// The reader consumes a seed burst, parks; the writer's rotations
		// retire the reader's cursor out of retention; the released reader
		// must hit ErrSeqTruncated, re-base, and still converge on the tail
		// burst exactly once.
		{"truncated-history-rebase", 10, 120, 20, 30, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, data := openReplStore(t, 2)
			total := tc.seed + tc.writes + tc.tail
			// Record i (0-based, across all bursts) gets sequence i+1 and
			// carries ID idBase+i: the payload each sequence implies.
			writeOne := func(i int) error {
				return st.Insert(geom.Object{Box: data[i%len(data)].Box, ID: idBase + int32(i)})
			}
			for i := 0; i < tc.seed; i++ {
				if err := writeOne(i); err != nil {
					t.Fatal(err)
				}
			}

			parked := make(chan struct{})   // reader -> writer: seed burst consumed
			released := make(chan struct{}) // writer -> reader: rotations done
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				if tc.parkReader {
					<-parked
				}
				for i := 0; i < tc.writes; i++ {
					if err := writeOne(tc.seed + i); err != nil {
						t.Error(err)
						return
					}
					if tc.ckptEvery > 0 && (i+1)%tc.ckptEvery == 0 {
						if _, err := st.Checkpoint(); err != nil {
							t.Error(err)
							return
						}
					}
				}
				if tc.parkReader {
					close(released)
				}
				for i := 0; i < tc.tail; i++ {
					if err := writeOne(tc.seed + tc.writes + i); err != nil {
						t.Error(err)
						return
					}
				}
			}()

			seen := make(map[uint64]int32)
			base, seq := uint64(1), uint64(1)
			rebased, signalled, writerRunning := false, false, true
			deadline := time.Now().Add(30 * time.Second)
			for {
				if time.Now().After(deadline) {
					t.Fatalf("tail never converged: cursor %d, store %d", seq, st.NextSeq())
				}
				_, start, path, release, err := st.AcquireWAL(seq)
				if errors.Is(err, ErrSeqTruncated) {
					// Clean truncation: the cursor's history is gone. The
					// recovery is a re-bootstrap — re-base on the live
					// snapshot and discard everything seen so far.
					_, newBase, _, rel, serr := st.AcquireSnapshot()
					if serr != nil {
						t.Fatal(serr)
					}
					rel()
					base, seq = newBase, newBase
					seen = make(map[uint64]int32)
					rebased = true
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				rd, err := wal.OpenReader(path)
				if err != nil {
					release()
					t.Fatal(err)
				}
				skipped, err := rd.Skip(seq - start)
				if err != nil {
					t.Fatal(err)
				}
				if skipped == seq-start {
					for {
						frame, ok, rerr := rd.Next()
						if rerr != nil {
							t.Fatal(rerr)
						}
						if !ok {
							break // clean end of the intact prefix (live append boundary)
						}
						id := decodeTailFrame(t, frame)
						if prev, dup := seen[seq]; dup {
							t.Fatalf("seq %d delivered twice (IDs %d then %d)", seq, prev, id)
						}
						seen[seq] = id
						seq++
					}
				}
				rd.Close()
				release()

				if tc.parkReader && !signalled && seq > uint64(tc.seed) {
					signalled = true
					close(parked)
					<-released
				}
				if writerRunning {
					select {
					case <-writerDone:
						writerRunning = false
					default:
					}
				}
				if !writerRunning && seq == st.NextSeq() {
					break
				}
				time.Sleep(time.Millisecond)
			}

			if tc.parkReader && !rebased {
				t.Fatal("rotation never outran the cursor: the rebase path went unexercised")
			}
			// Exactly-once, in order, correctly attributed: every sequence
			// from the final base to the log head was delivered once, with
			// exactly the ID its sequence implies.
			next := st.NextSeq()
			if want := uint64(total) + 1; next != want {
				t.Fatalf("store next_seq %d, want %d", next, want)
			}
			if uint64(len(seen)) != next-base {
				t.Fatalf("delivered %d records, want %d (base %d, next %d)", len(seen), next-base, base, next)
			}
			for s := base; s < next; s++ {
				id, ok := seen[s]
				if !ok {
					t.Fatalf("seq %d never delivered", s)
				}
				if want := idBase + int32(s-1); id != want {
					t.Fatalf("seq %d delivered ID %d, want %d", s, id, want)
				}
			}
		})
	}
}
