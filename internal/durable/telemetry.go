// Registry wiring for the durable store: WAL append/fsync latency and
// volume, checkpoint count/duration/failures, and the live WAL size. The
// wal.Metrics value is owned here and re-attached to every successor log a
// checkpoint rotation creates, so the quasii_wal_* series are continuous
// across rotations instead of resetting with each generation.

package durable

import (
	"repro/internal/faultfs"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Instrument registers the store's metrics on reg and attaches WAL
// instrumentation to the current (and every future) log. Call it once,
// right after Open. A nil registry is a no-op.
func (s *Store) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mUpdates = reg.Counter("quasii_store_updates_total",
		"Accepted durable update operations (insert batches and deletes).")
	s.mCkpts = reg.Counter("quasii_store_checkpoints_total",
		"Checkpoints completed since the store opened.")
	s.mCkptFailures = reg.Counter("quasii_store_checkpoint_failures_total",
		"Checkpoint attempts that failed and left the store on its old generation.")
	s.mCkptDur = reg.Histogram("quasii_store_checkpoint_duration_seconds",
		"Wall time of one checkpoint: snapshot write, WAL rotation, retirement.",
		telemetry.DurationBuckets)
	s.mCkptPause = reg.Histogram("quasii_durable_checkpoint_pause_seconds",
		"Update pause of one checkpoint — the cut only (WAL swap plus per-shard version pin); the snapshot itself writes with updates flowing.",
		telemetry.DurationBuckets)
	reg.GaugeFunc("quasii_store_wal_size_bytes",
		"Current write-ahead log length.",
		func() float64 { return float64(s.WALSize()) })
	reg.GaugeFunc("quasii_store_snapshot_seq",
		"Sequence number of the live snapshot generation.",
		func() float64 { return float64(s.Seq()) })
	s.mRetries = reg.Counter("quasii_wal_retry_total",
		"WAL appends retried after a transient failure (ENOSPC, EAGAIN, EINTR).")
	reg.GaugeFunc("quasii_durable_degraded",
		"1 while the store is in degraded read-only mode (writes 503, reads flow), 0 otherwise.",
		func() float64 {
			if d, _ := s.Degraded(); d {
				return 1
			}
			return 0
		})
	reg.CounterFunc("quasii_fault_injected_total",
		"Faults injected by the fault-injection file system; 0 (and inert) when the store runs on the real one.",
		func() float64 {
			if ff, ok := s.fs.(*faultfs.FaultFS); ok {
				return float64(ff.Injected())
			}
			return 0
		})

	m := &wal.Metrics{
		Appends: reg.Counter("quasii_wal_appends_total",
			"Records committed to the write-ahead log."),
		AppendedBytes: reg.Counter("quasii_wal_appended_bytes_total",
			"Framed bytes committed to the write-ahead log."),
		AppendSeconds: reg.Histogram("quasii_wal_append_duration_seconds",
			"Commit latency of one WAL record, fsync included under the always policy.",
			telemetry.DurationBuckets),
		Fsyncs: reg.Counter("quasii_wal_fsyncs_total",
			"Explicit WAL fsyncs (per-append or interval cadence)."),
		FsyncSeconds: reg.Histogram("quasii_wal_fsync_duration_seconds",
			"Latency of one WAL fsync.",
			telemetry.DurationBuckets),
	}
	s.updMu.Lock()
	s.walMetrics = m
	if s.log != nil {
		s.log.SetMetrics(m)
	}
	s.updMu.Unlock()
}

// DurabilityStats reports the durability state the serving layer folds into
// /stats: the live snapshot sequence, the WAL length in bytes, checkpoints
// completed since Open, and the duration of the most recent one (0 before
// the first). The tuple form keeps the serving layer decoupled — it
// type-asserts a small interface instead of importing this package.
func (s *Store) DurabilityStats() (snapshotSeq uint64, walBytes int64, checkpoints int64, lastCheckpointSeconds float64) {
	s.updMu.RLock()
	snapshotSeq = s.seq
	walBytes = s.log.Size()
	s.updMu.RUnlock()
	checkpoints = s.ckptCount.Load()
	lastCheckpointSeconds = float64(s.ckptLastNS.Load()) / 1e9
	return
}
