// Package syncidx provides a mutex wrapper that makes any index safe for
// concurrent use. Incremental indexes (QUASII, SFCracker, Mosaic) mutate
// their internal structure during Query — that is the whole point of
// adaptive indexing — so even read-only workloads against them need mutual
// exclusion. Wrap serializes all queries with a single mutex; it favours
// simplicity and correctness over parallel scalability, which the paper does
// not address (its evaluation is single-threaded). RWrap is the read-write
// variant for static indexes, whose read-only queries may run concurrently.
// For parallel scalability over incremental indexes, see internal/shard.
package syncidx

import (
	"sync"

	"repro/internal/geom"
)

// Queryable is the minimal index interface the wrapper serializes.
type Queryable interface {
	Len() int
	Query(q geom.Box, out []int32) []int32
}

// Index wraps an underlying index with a mutex.
type Index struct {
	mu    sync.Mutex
	inner Queryable
}

// Wrap returns a concurrency-safe view of ix. All accesses to ix must go
// through the wrapper from then on.
func Wrap(ix Queryable) *Index { return &Index{inner: ix} }

// Len returns the number of indexed objects.
func (s *Index) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Len()
}

// Query answers a range query under the lock. Unlike the raw indexes it
// allocates the result slice itself when out is nil, so concurrent callers
// do not share buffers by accident.
func (s *Index) Query(q geom.Box, out []int32) []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Query(q, out)
}

// Do runs fn with exclusive access to the underlying index, for operations
// beyond Query (e.g. DynTree.Insert or QUASII stats snapshots).
func (s *Index) Do(fn func(inner Queryable)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.inner)
}

// RWIndex wraps a *static* index with a read-write mutex: queries take the
// read lock and run concurrently, mutations go through Do under the write
// lock. It is ONLY correct for indexes whose Query does not mutate internal
// state — RTree, DynTree, RStar, Grid, TwoLevelGrid, Octree, SFC and Scan
// qualify; the incremental indexes (QUASII, SFCracker, Mosaic) crack their
// data on every query and must use Wrap instead.
type RWIndex struct {
	mu    sync.RWMutex
	inner Queryable
}

// RWrap returns a read-concurrent view of the static index ix. All accesses
// to ix must go through the wrapper from then on.
func RWrap(ix Queryable) *RWIndex { return &RWIndex{inner: ix} }

// Len returns the number of indexed objects under the read lock.
func (s *RWIndex) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Len()
}

// Query answers a range query under the read lock; concurrent readers
// proceed in parallel.
func (s *RWIndex) Query(q geom.Box, out []int32) []int32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Query(q, out)
}

// Do runs fn with exclusive (write-locked) access to the underlying index,
// for mutations such as DynTree.Insert.
func (s *RWIndex) Do(fn func(inner Queryable)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.inner)
}
