package syncidx

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rtree"
	"repro/internal/scan"
	"repro/internal/workload"
)

// TestConcurrentQueriesOnQUASII hammers a wrapped QUASII index from many
// goroutines; run with -race. Each goroutine validates its own results
// against a private scan oracle.
func TestConcurrentQueriesOnQUASII(t *testing.T) {
	data := dataset.Uniform(5000, 401)
	ix := Wrap(core.New(dataset.Clone(data), core.Config{Tau: 32}))
	oracle := scan.New(data)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			queries := workload.Uniform(dataset.Universe(), 40, 1e-3, seed)
			var got, want []int32
			for qi, q := range queries {
				got = ix.Query(q, got[:0])
				want = oracle.Query(q, want[:0])
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(got) != len(want) {
					errs <- "length mismatch"
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- "content mismatch"
						return
					}
				}
				_ = qi
			}
		}(500 + int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestLenUnderConcurrency(t *testing.T) {
	data := dataset.Uniform(1000, 402)
	ix := Wrap(core.New(data, core.Config{}))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if ix.Len() != 1000 {
					panic("bad len")
				}
			}
		}()
	}
	wg.Wait()
}

func TestDoGrantsExclusiveAccess(t *testing.T) {
	data := dataset.Uniform(500, 403)
	inner := core.New(dataset.Clone(data), core.Config{})
	ix := Wrap(inner)
	for _, q := range workload.Uniform(dataset.Universe(), 5, 1e-2, 404) {
		ix.Query(q, nil)
	}
	var queries int
	ix.Do(func(in Queryable) {
		queries = in.(*core.Index).Stats().Queries
	})
	if queries != 5 {
		t.Fatalf("queries = %d, want 5", queries)
	}
}

// TestRWrapConcurrentReaders hammers a read-write-wrapped static R-tree from
// many goroutines; run with -race. Readers proceed in parallel and must all
// agree with a private scan oracle.
func TestRWrapConcurrentReaders(t *testing.T) {
	data := dataset.Uniform(5000, 405)
	ix := RWrap(rtree.New(data, rtree.Config{}))
	oracle := scan.New(data)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			queries := workload.Uniform(dataset.Universe(), 40, 1e-3, seed)
			var got, want []int32
			for _, q := range queries {
				got = ix.Query(q, got[:0])
				want = oracle.Query(q, want[:0])
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(got) != len(want) {
					errs <- "length mismatch"
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- "content mismatch"
						return
					}
				}
			}
			if ix.Len() != len(data) {
				errs <- "bad len"
			}
		}(600 + int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestRWrapDoExcludesReaders interleaves write-locked mutations of a dynamic
// R-tree with concurrent readers; run with -race. Readers only ever observe
// a multiple of the insertion batch size.
func TestRWrapDoExcludesReaders(t *testing.T) {
	const batch = 100
	ix := RWrap(rtree.NewDyn(rtree.Config{}))
	objs := dataset.Uniform(10*batch, 406)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(objs); i += batch {
			ix.Do(func(in Queryable) {
				dt := in.(*rtree.DynTree)
				for _, o := range objs[i : i+batch] {
					dt.Insert(o)
				}
			})
		}
	}()
	errs := make(chan string, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if n := ix.Len(); n%batch != 0 {
					errs <- "observed a torn insertion batch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
