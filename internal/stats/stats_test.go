package stats

import (
	"testing"
	"time"
)

func ds(vals ...int) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v)
	}
	return out
}

func TestMean(t *testing.T) {
	if got := Mean(ds(1, 2, 3)); got != 2 {
		t.Errorf("Mean = %d, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %d, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum(ds(1, 2, 3, 4)); got != 10 {
		t.Errorf("Sum = %d, want 10", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %d", got)
	}
}

func TestPercentile(t *testing.T) {
	data := ds(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	if got := Percentile(data, 0); got != 10 {
		t.Errorf("p0 = %d, want 10", got)
	}
	if got := Percentile(data, 100); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	if got := Percentile(data, 50); got != 60 {
		t.Errorf("p50 = %d, want 60", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
	// Unsorted input must not be mutated.
	unsorted := ds(5, 1, 3)
	Percentile(unsorted, 50)
	if unsorted[0] != 5 || unsorted[1] != 1 || unsorted[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestCumulative(t *testing.T) {
	got := Cumulative(ds(1, 2, 3))
	want := ds(1, 3, 6)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cumulative = %v, want %v", got, want)
		}
	}
	if got := Cumulative(nil); len(got) != 0 {
		t.Errorf("Cumulative(nil) = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	data := ds(5, 1, 9, 3)
	if got := Min(data); got != 1 {
		t.Errorf("Min = %d", got)
	}
	if got := Max(data); got != 9 {
		t.Errorf("Max = %d", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(10, 4); got != 2.5 {
		t.Errorf("Ratio = %g, want 2.5", got)
	}
	if got := Ratio(10, 0); got != 0 {
		t.Errorf("Ratio by zero = %g, want 0", got)
	}
}
