// Package stats provides the summary-statistics helpers shared by the
// experiment harness (internal/bench, internal/experiments) and the serving
// metrics (internal/server): mean, sum, min/max, percentiles over duration
// samples, running cumulative series, and the speedup ratios the QUASII
// paper reports. All helpers tolerate empty inputs (returning zero) so
// report generation never branches on sample counts.
package stats

import (
	"sort"
	"time"
)

// Mean returns the arithmetic mean of ds, or 0 for an empty slice.
func Mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Sum returns the total of ds.
func Sum(ds []time.Duration) time.Duration {
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum
}

// Percentile returns the p-th percentile (0-100) of ds using nearest-rank on
// a sorted copy. It returns 0 for an empty slice.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p / 100 * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Cumulative returns the running sum of ds.
func Cumulative(ds []time.Duration) []time.Duration {
	out := make([]time.Duration, len(ds))
	var sum time.Duration
	for i, d := range ds {
		sum += d
		out[i] = sum
	}
	return out
}

// Min returns the smallest element, or 0 for an empty slice.
func Min(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Max returns the largest element, or 0 for an empty slice.
func Max(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	m := ds[0]
	for _, d := range ds[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

// Ratio returns a/b as a float, or 0 when b is 0.
func Ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
