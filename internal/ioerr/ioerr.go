// Package ioerr classifies I/O errors for the durability stack and defines
// the degraded-mode sentinel the HTTP layer maps onto 503.
//
// The classification follows the post-fsyncgate consensus on what a storage
// engine may and may not assume about failed I/O:
//
//   - ENOSPC, EAGAIN and EINTR are transient: the operation failed cleanly,
//     the file state is exactly what it was before, and retrying after
//     backoff (an operator freeing disk space, a signal window passing) is
//     sound.
//   - A failed fsync is fatal, always. The kernel may have dropped the
//     dirty pages that failed to reach the platter, so after one failed
//     fsync the in-kernel view of the file can silently diverge from what a
//     later successful fsync would imply was durable. The only sound
//     response is to stop trusting the file and rebuild durability from a
//     fresh one — which is what degraded mode's recovery-by-checkpoint
//     does.
//   - EIO and everything unrecognized are fatal: the bytes on disk are in
//     an unknown state.
//
// This package sits below durable and beside server so both can agree on
// error semantics without the HTTP layer importing the storage engine's
// internals.
package ioerr

import (
	"errors"
	"syscall"
)

// ErrDegraded is returned by write operations while the store is in
// degraded read-only mode. The HTTP layer maps it to 503 + Retry-After;
// reads are unaffected.
var ErrDegraded = errors.New("store degraded: persistent I/O failure, writes suspended")

// Class is the retryability of a failed I/O operation.
type Class int

const (
	// Transient failures left the file untouched; bounded retry with
	// backoff is sound.
	Transient Class = iota
	// Fatal failures leave the file in an unknown state; the operation
	// must not be retried against the same file.
	Fatal
)

func (c Class) String() string {
	if c == Transient {
		return "transient"
	}
	return "fatal"
}

// Classify reports whether err is worth retrying. nil is not a valid input
// (callers classify failures, not successes); it returns Fatal to be safe.
func Classify(err error) Class {
	switch {
	case errors.Is(err, syscall.ENOSPC),
		errors.Is(err, syscall.EAGAIN),
		errors.Is(err, syscall.EINTR),
		errors.Is(err, syscall.EDQUOT):
		return Transient
	}
	return Fatal
}
