package ioerr

import (
	"errors"
	"fmt"
	"io/fs"
	"syscall"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{syscall.ENOSPC, Transient},
		{syscall.EAGAIN, Transient},
		{syscall.EINTR, Transient},
		{syscall.EDQUOT, Transient},
		{syscall.EIO, Fatal},
		{syscall.EBADF, Fatal},
		{errors.New("opaque"), Fatal},
		// Wrapped errnos classify through the chain, as the WAL and
		// faultfs both wrap.
		{fmt.Errorf("append: %w", syscall.ENOSPC), Transient},
		{&fs.PathError{Op: "write", Path: "wal", Err: syscall.ENOSPC}, Transient},
		{fmt.Errorf("fsync: %w", syscall.EIO), Fatal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if Transient.String() != "transient" || Fatal.String() != "fatal" {
		t.Fatal("Class.String drifted")
	}
}
