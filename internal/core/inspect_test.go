package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

// collectReports flattens a report tree depth-first.
func collectReports(list []SliceReport) []*SliceReport {
	var out []*SliceReport
	var walk func([]SliceReport)
	walk = func(l []SliceReport) {
		for i := range l {
			out = append(out, &l[i])
			walk(l[i].Children)
		}
	}
	walk(list)
	return out
}

// TestInspectStructure pins the snapshot invariants on a converged index:
// the census matches NumSlices, sibling ranges partition their parent,
// every node is refined/converged, and maxDepth truncates Children without
// perturbing the aggregates.
func TestInspectStructure(t *testing.T) {
	data := dataset.Uniform(6000, 11)
	ix := New(dataset.Clone(data), Config{})
	for _, q := range workload.Uniform(dataset.Universe(), 32, 1e-3, 12) {
		ix.Query(q, nil)
	}
	ix.Complete()

	full := ix.Inspect(0)
	if full.Slices != ix.NumSlices() {
		t.Fatalf("census says %d slices, NumSlices says %d", full.Slices, ix.NumSlices())
	}
	if !full.Converged || full.SlicesRefined != full.Slices {
		t.Fatalf("completed index not fully converged in report: %+v", full)
	}
	if full.Epoch != ix.Epoch() {
		t.Fatalf("report epoch %d != index epoch %d", full.Epoch, ix.Epoch())
	}
	if full.Objects != 6000 {
		t.Fatalf("report objects = %d, want 6000", full.Objects)
	}
	var checkTree func(list []SliceReport, lo, hi, level int)
	checkTree = func(list []SliceReport, lo, hi, level int) {
		pos := lo
		for i := range list {
			s := &list[i]
			if s.Level != level {
				t.Fatalf("slice at level %d, want %d", s.Level, level)
			}
			if s.Lo != pos {
				t.Fatalf("level %d: slice starts at %d, want %d", level, s.Lo, pos)
			}
			if s.Count != s.Hi-s.Lo {
				t.Fatalf("count %d != hi-lo %d", s.Count, s.Hi-s.Lo)
			}
			pos = s.Hi
			if len(s.Children) > 0 {
				if s.ChildSlices != len(s.Children) {
					t.Fatalf("child_slices %d != len(children) %d", s.ChildSlices, len(s.Children))
				}
				checkTree(s.Children, s.Lo, s.Hi, level+1)
			}
		}
		if pos != hi {
			t.Fatalf("level %d: siblings end at %d, want %d", level, pos, hi)
		}
	}
	checkTree(full.Root, 0, full.Objects, 0)

	// Truncation: depth 1 keeps no children but the same top-level census
	// and the same subtree aggregates on the level-0 nodes.
	top := ix.Inspect(1)
	if top.Slices != full.Slices || top.SlicesRefined != full.SlicesRefined {
		t.Fatalf("truncated census (%d/%d) differs from full (%d/%d)",
			top.Slices, top.SlicesRefined, full.Slices, full.SlicesRefined)
	}
	if len(top.Root) != len(full.Root) {
		t.Fatalf("truncated root has %d slices, full has %d", len(top.Root), len(full.Root))
	}
	for i := range top.Root {
		if len(top.Root[i].Children) != 0 {
			t.Fatalf("maxDepth=1 report still carries children")
		}
		if top.Root[i].ChildSlices != full.Root[i].ChildSlices {
			t.Fatalf("truncation changed child_slices: %d != %d",
				top.Root[i].ChildSlices, full.Root[i].ChildSlices)
		}
		if top.Root[i].SubtreeHeat != full.Root[i].SubtreeHeat {
			t.Fatalf("truncation changed subtree_heat")
		}
		if !top.Root[i].Converged {
			t.Fatal("truncation lost the converged flag")
		}
	}
}

// TestHeatSampling pins the sampling contract: HeatSampleEvery=1 records
// every touched slice on the exclusive path, negative disables tracking
// entirely, and the heat census sums the per-slice counters.
func TestHeatSampling(t *testing.T) {
	data := dataset.Uniform(4000, 13)
	queries := workload.Uniform(dataset.Universe(), 64, 1e-3, 14)

	ix := New(dataset.Clone(data), Config{HeatSampleEvery: 1})
	ix.Complete()
	for _, q := range queries {
		ix.Query(q, nil)
	}
	rep := ix.Inspect(0)
	if rep.TotalHeat == 0 {
		t.Fatal("HeatSampleEvery=1 recorded no heat")
	}
	if rep.HeatSampleEvery != 1 {
		t.Fatalf("report sampling period = %d, want 1", rep.HeatSampleEvery)
	}
	var sum, max int64
	for _, s := range collectReports(rep.Root) {
		sum += s.Heat
		if s.Heat > max {
			max = s.Heat
		}
	}
	if sum != rep.TotalHeat || max != rep.MaxHeat {
		t.Fatalf("census heat (total %d, max %d) != walked heat (total %d, max %d)",
			rep.TotalHeat, rep.MaxHeat, sum, max)
	}
	slices, refined, byLevel := rep.HeatByLevel()
	var levelSum int64
	nSlices, nRefined := 0, 0
	for d := 0; d < geom.Dims; d++ {
		levelSum += byLevel[d]
		nSlices += slices[d]
		nRefined += refined[d]
	}
	if levelSum != rep.TotalHeat || nSlices != rep.Slices || nRefined != rep.SlicesRefined {
		t.Fatalf("HeatByLevel (%d heat, %d slices, %d refined) disagrees with census (%d, %d, %d)",
			levelSum, nSlices, nRefined, rep.TotalHeat, rep.Slices, rep.SlicesRefined)
	}

	// Negative disables: identical workload, zero heat.
	off := New(dataset.Clone(data), Config{HeatSampleEvery: -1})
	off.Complete()
	for _, q := range queries {
		off.Query(q, nil)
	}
	if rep := off.Inspect(0); rep.TotalHeat != 0 || rep.HeatSampleEvery != 0 {
		t.Fatalf("disabled heat tracking still recorded: %+v", rep)
	}
}

// TestHeatMonotoneUnderConcurrentSharedReads drives many concurrent
// shared-path queries (every one sampled) and checks the counters only ever
// grow — the -race run of this test is the proof the atomic touch counters
// are safe under the shared read path's concurrency.
func TestHeatMonotoneUnderConcurrentSharedReads(t *testing.T) {
	data := dataset.Uniform(8000, 15)
	ix := New(dataset.Clone(data), Config{HeatSampleEvery: 1})
	ix.Complete()
	queries := workload.Uniform(dataset.Universe(), 128, 1e-3, 16)

	before := ix.Inspect(0).TotalHeat
	const readers = 8
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var out []int32
			for i, q := range queries {
				var ok bool
				out, ok = ix.QueryShared(q, out[:0])
				if !ok {
					t.Errorf("reader %d: shared query %d fell back on a converged index", r, i)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	after := ix.Inspect(0)
	if after.TotalHeat <= before {
		t.Fatalf("heat did not grow under concurrent shared reads: %d -> %d", before, after.TotalHeat)
	}
	// Every touched slice of every query recorded: at least one touch per
	// query per reader (each query walks at least its level-0 slice).
	if min := int64(readers * len(queries)); after.TotalHeat < min {
		t.Fatalf("total heat %d < %d minimum touches", after.TotalHeat, min)
	}
}

// TestInspectDoesNotPerturbPersistedState pins the read-only contract:
// Save, then Inspect (full depth, heat enabled and recorded), then Save
// again — byte-identical snapshots. Heat counters live outside the
// persisted state on purpose (a restored index starts cold).
func TestInspectDoesNotPerturbPersistedState(t *testing.T) {
	data := dataset.Uniform(5000, 17)
	ix := New(dataset.Clone(data), Config{HeatSampleEvery: 1})
	for _, q := range workload.Uniform(dataset.Universe(), 48, 1e-3, 18) {
		ix.Query(q, nil)
	}

	var before bytes.Buffer
	if err := ix.Save(&before); err != nil {
		t.Fatal(err)
	}
	_ = ix.Inspect(0)
	_ = ix.Inspect(1)
	var after bytes.Buffer
	if err := ix.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("Inspect changed the persisted snapshot bytes")
	}

	// Round-trip: the restored index reports the same structure, cold heat.
	restored, err := Load(bytes.NewReader(after.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := ix.Inspect(0), restored.Inspect(0)
	if a.Slices != b.Slices || a.SlicesRefined != b.SlicesRefined || a.Objects != b.Objects {
		t.Fatalf("restored census (%d/%d/%d) differs from original (%d/%d/%d)",
			b.Slices, b.SlicesRefined, b.Objects, a.Slices, a.SlicesRefined, a.Objects)
	}
	if b.TotalHeat != 0 {
		t.Fatalf("restored index carries %d heat; snapshots must not persist it", b.TotalHeat)
	}
	if b.HeatSampleEvery != 1 {
		t.Fatalf("restored index lost the sampling config: %d", b.HeatSampleEvery)
	}
}

// TestConvergedQueryNoAllocsWithHeat pins the acceptance criterion: the
// converged exclusive query path allocates nothing with heat tracking
// enabled at its default sampling rate — the touch counter is an atomic add
// on an existing node, never a heap object.
func TestConvergedQueryNoAllocsWithHeat(t *testing.T) {
	data := dataset.Uniform(100_000, 19)
	ix := New(data, Config{DisableStats: true, HeatSampleEvery: DefaultHeatSampleEvery})
	ix.Complete()
	queries := workload.Uniform(dataset.Universe(), 256, 1e-4, 20)
	out := make([]int32, 0, 4096)
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		out = ix.Query(queries[i%len(queries)], out[:0])
		i++
	})
	if allocs != 0 {
		t.Fatalf("converged query with heat tracking allocates %.1f/op, want 0", allocs)
	}
}
