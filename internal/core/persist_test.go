package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func TestPersistRoundTrip(t *testing.T) {
	data := dataset.Uniform(5000, 1001)
	oracle := scan.New(data)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	warm := workload.Uniform(dataset.Universe(), 80, 1e-3, 1002)
	for _, q := range warm {
		ix.Query(q, nil)
	}
	statsBefore := ix.Stats()
	slicesBefore := ix.NumSlices()

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSlices() != slicesBefore {
		t.Fatalf("slices = %d, want %d", loaded.NumSlices(), slicesBefore)
	}
	if loaded.Stats() != statsBefore {
		t.Fatalf("stats = %+v, want %+v", loaded.Stats(), statsBefore)
	}
	// The reloaded index answers correctly and keeps refining.
	for qi, q := range workload.Uniform(dataset.Universe(), 60, 1e-3, 1003) {
		got := sortedIDs(loaded.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d after reload: got %d, want %d", qi, len(got), len(want))
		}
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistRefinementPreserved(t *testing.T) {
	// Queries on a reloaded, fully-converged index must crack nothing.
	data := dataset.Uniform(4000, 1004)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	ix.Complete()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	before := loaded.Stats().Cracks
	for _, q := range workload.Uniform(dataset.Universe(), 30, 1e-3, 1005) {
		loaded.Query(q, nil)
	}
	if after := loaded.Stats().Cracks; after != before {
		t.Fatalf("reloaded converged index cracked: %d -> %d", before, after)
	}
}

func TestPersistWithPending(t *testing.T) {
	data := dataset.Uniform(1000, 1006)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	ix.Append(geom.Object{Box: geom.BoxAt(geom.Point{1, 2, 3}, 1), ID: 424242})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", loaded.Pending())
	}
	res := loaded.Query(geom.BoxAt(geom.Point{1, 2, 3}, 2), nil)
	found := false
	for _, id := range res {
		if id == 424242 {
			found = true
		}
	}
	if !found {
		t.Fatal("pending object lost in round trip")
	}
}

func TestPersistEmptyIndex(t *testing.T) {
	ix := New(nil, Config{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res := loaded.Query(geom.BoxAt(geom.Point{0, 0, 0}, 10), nil); len(res) != 0 {
		t.Fatalf("empty reload returned %d results", len(res))
	}
}

func TestSaveWritesV2Magic(t *testing.T) {
	ix := New(dataset.Uniform(100, 1010), Config{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(magicV2)) {
		t.Fatalf("Save did not write the v2 magic, got prefix %q", buf.Bytes()[:8])
	}
}

func TestLoadV1Snapshot(t *testing.T) {
	// A legacy (gob-only) snapshot must keep loading through the same Load.
	data := dataset.Uniform(3000, 1011)
	oracle := scan.New(data)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	for _, q := range workload.Uniform(dataset.Universe(), 50, 1e-3, 1012) {
		ix.Query(q, nil)
	}
	var buf bytes.Buffer
	if err := ix.saveV1(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("loading v1 snapshot: %v", err)
	}
	if loaded.NumSlices() != ix.NumSlices() {
		t.Fatalf("slices = %d, want %d", loaded.NumSlices(), ix.NumSlices())
	}
	for qi, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 1013) {
		got := sortedIDs(loaded.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d after v1 load: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestMigrateV1ToV2(t *testing.T) {
	// v1 → load → save (v2) → load must preserve structure, buffers and
	// query answers: the upgrade path for pre-columnar snapshots.
	data := dataset.Uniform(2000, 1014)
	oracle := scan.New(data)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	for _, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 1015) {
		ix.Query(q, nil)
	}
	ix.Append(geom.Object{Box: geom.BoxAt(geom.Point{5, 5, 5}, 1), ID: 555555})
	ix.Delete(data[7].ID, data[7].Box)

	var v1 bytes.Buffer
	if err := ix.saveV1(&v1); err != nil {
		t.Fatal(err)
	}
	mid, err := Load(&v1)
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := mid.Save(&v2); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v2.Bytes(), []byte(magicV2)) {
		t.Fatal("migrated snapshot is not v2")
	}
	final, err := Load(&v2)
	if err != nil {
		t.Fatal(err)
	}
	if final.NumSlices() != ix.NumSlices() {
		t.Fatalf("slices = %d, want %d", final.NumSlices(), ix.NumSlices())
	}
	if final.Pending() != 1 || final.Deleted() != 1 {
		t.Fatalf("pending/deleted = %d/%d, want 1/1", final.Pending(), final.Deleted())
	}
	deletedID := data[7].ID
	for qi, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 1016) {
		want := sortedIDs(oracle.Query(q, nil))
		// Apply the update stream to the oracle answer.
		w := want[:0]
		for _, id := range want {
			if id != deletedID {
				w = append(w, id)
			}
		}
		want = w
		if q.Intersects(geom.BoxAt(geom.Point{5, 5, 5}, 1)) {
			want = sortedIDs(append(want, 555555))
		}
		got := sortedIDs(final.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d after migration: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestLoadRejectsTamperedV2Header(t *testing.T) {
	ix := New(dataset.Uniform(500, 1017), Config{Tau: 16})
	for _, q := range workload.Uniform(dataset.Universe(), 10, 1e-2, 1018) {
		ix.Query(q, nil)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Blow up the header length prefix (bytes 8..16).
	for i := 8; i < 16; i++ {
		raw[i] = 0xff
	}
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("tampered header length accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("this is not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsCorruptStructure(t *testing.T) {
	// Encode a snapshot whose slice ranges are inconsistent; Load must
	// reject it via CheckInvariants.
	data := dataset.Uniform(100, 1007)
	ix := New(dataset.Clone(data), Config{Tau: 8})
	ix.Query(workload.Uniform(dataset.Universe(), 1, 1e-2, 1008)[0], nil)
	// Corrupt: shrink the data lanes so slice ranges dangle.
	ix.data.Truncate(50)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
