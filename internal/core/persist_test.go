package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func TestPersistRoundTrip(t *testing.T) {
	data := dataset.Uniform(5000, 1001)
	oracle := scan.New(data)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	warm := workload.Uniform(dataset.Universe(), 80, 1e-3, 1002)
	for _, q := range warm {
		ix.Query(q, nil)
	}
	statsBefore := ix.Stats()
	slicesBefore := ix.NumSlices()

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSlices() != slicesBefore {
		t.Fatalf("slices = %d, want %d", loaded.NumSlices(), slicesBefore)
	}
	if loaded.Stats() != statsBefore {
		t.Fatalf("stats = %+v, want %+v", loaded.Stats(), statsBefore)
	}
	// The reloaded index answers correctly and keeps refining.
	for qi, q := range workload.Uniform(dataset.Universe(), 60, 1e-3, 1003) {
		got := sortedIDs(loaded.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d after reload: got %d, want %d", qi, len(got), len(want))
		}
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistRefinementPreserved(t *testing.T) {
	// Queries on a reloaded, fully-converged index must crack nothing.
	data := dataset.Uniform(4000, 1004)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	ix.Complete()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	before := loaded.Stats().Cracks
	for _, q := range workload.Uniform(dataset.Universe(), 30, 1e-3, 1005) {
		loaded.Query(q, nil)
	}
	if after := loaded.Stats().Cracks; after != before {
		t.Fatalf("reloaded converged index cracked: %d -> %d", before, after)
	}
}

func TestPersistWithPending(t *testing.T) {
	data := dataset.Uniform(1000, 1006)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	ix.Append(geom.Object{Box: geom.BoxAt(geom.Point{1, 2, 3}, 1), ID: 424242})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", loaded.Pending())
	}
	res := loaded.Query(geom.BoxAt(geom.Point{1, 2, 3}, 2), nil)
	found := false
	for _, id := range res {
		if id == 424242 {
			found = true
		}
	}
	if !found {
		t.Fatal("pending object lost in round trip")
	}
}

func TestPersistEmptyIndex(t *testing.T) {
	ix := New(nil, Config{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res := loaded.Query(geom.BoxAt(geom.Point{0, 0, 0}, 10), nil); len(res) != 0 {
		t.Fatalf("empty reload returned %d results", len(res))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("this is not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsCorruptStructure(t *testing.T) {
	// Encode a snapshot whose slice ranges are inconsistent; Load must
	// reject it via CheckInvariants.
	data := dataset.Uniform(100, 1007)
	ix := New(dataset.Clone(data), Config{Tau: 8})
	ix.Query(workload.Uniform(dataset.Universe(), 1, 1e-2, 1008)[0], nil)
	// Corrupt: shrink the data lanes so slice ranges dangle.
	ix.data.Truncate(50)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}
