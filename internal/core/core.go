// Package core implements QUASII, the QUery-Aware Spatial Incremental Index
// of Pavlovic et al. (EDBT 2018).
//
// QUASII indexes 3-d boxes in main memory as a side effect of range-query
// execution. The data array is cracked (partially partitioned in place) on the
// bounds of each incoming query, one dimension at a time: a query first slices
// the array on x, then slices the matching x-slice on y, then on z. The
// resulting slices form a d-level hierarchy (one level per dimension) that is
// refined further by every subsequent query. Slices that grow small enough
// (below the per-level threshold τ) are final and carry an exact minimum
// bounding box; larger slices carry an open-ended box bounded only in the
// dimensions already sliced.
//
// Objects are assigned to slices by a single representative coordinate (the
// paper uses the lower corner). Because a volumetric object can overhang its
// slice, refinement cracks on a query range extended by the maximum object
// extent, and the search over sibling slices is extended by the maximum slice
// extent — the "query extension" technique of Stefanakis et al.
//
// Storage is columnar (internal/colstore): the objects live as seven
// contiguous lanes (per-dimension min/max plus IDs) so the cracking kernel
// streams one key lane and the bottom-level scan is a branch-light interval
// filter over contiguous memory. The AoS geom.Object API remains the public
// surface — New ingests objects into the lanes, queries return IDs.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/geom"
)

// AssignMode selects the representative coordinate used to assign an object
// to a slice.
type AssignMode int

const (
	// AssignLower assigns by the object's lower corner (the paper's choice:
	// free, since it is part of the stored MBB).
	AssignLower AssignMode = iota
	// AssignCenter assigns by the object's center. Kept as an ablation; it
	// requires a symmetric half-extent query extension.
	AssignCenter
	// AssignUpper assigns by the object's upper corner — the paper's
	// footnote notes it "can equally be used". It mirrors AssignLower: the
	// query extension moves to the upper side.
	AssignUpper
)

// Config controls QUASII's behaviour. The zero value is usable: it selects
// the paper's defaults (τ = 60, lower-coordinate assignment, artificial
// refinement enabled).
type Config struct {
	// Tau is the maximum number of objects in a fully refined slice at the
	// finest (z) level. The paper uses 60. Values < 1 mean 60.
	Tau int
	// Assign selects the representative coordinate for slice assignment.
	Assign AssignMode
	// DisableArtificial turns off artificial (midpoint) refinement. Only the
	// query bounds then crack the data; slices may stay arbitrarily large.
	// This exists purely for the ablation benchmarks — the paper argues the
	// hierarchy degenerates without it.
	DisableArtificial bool
	// Stochastic adds a random pre-cut when refining large slices, the
	// stochastic-cracking defence (Halim et al., VLDB 2012) against
	// sequential workloads that otherwise re-scan an ever-shrinking
	// unrefined tail on every query.
	Stochastic bool
	// Seed drives the deterministic RNG behind Stochastic. 0 means 1.
	Seed int64
	// DisableStats turns off the cumulative work counters so instrumentation
	// stops taxing the query hot loop (Stats then reports zeros). The index
	// is single-threaded by contract, so the counters are plain integers —
	// this flag exists for deployments that wrap every index in a shard lock
	// and take their metrics at the serving layer instead.
	DisableStats bool
	// HeatSampleEvery records per-slice access heat for one query in every
	// N: a sampled query atomically increments the touch counter of every
	// slice it descends through or scans, on both the exclusive and the
	// shared read path. The counters feed Inspect (and, above it, the
	// serving layer's /debug/index and /debug/heat); sampling keeps the
	// converged query path allocation-free and inside its overhead budget.
	// 0 selects DefaultHeatSampleEvery; negative disables heat tracking
	// entirely, mirroring DisableStats.
	HeatSampleEvery int
}

// DefaultTau is the leaf-slice capacity used by the paper's evaluation.
const DefaultTau = 60

// DefaultHeatSampleEvery is the access-heat sampling period when
// Config.HeatSampleEvery is 0: one query in 16 records its slice touches,
// cheap enough to leave on in production while still resolving hot regions
// after a few hundred queries.
const DefaultHeatSampleEvery = 16

// Stats counts the work performed by the index since Build. All counters are
// cumulative and monotone; they exist to explain convergence behaviour.
// With Config.DisableStats set, every counter stays zero.
type Stats struct {
	Queries        int   // queries executed on the exclusive path
	Cracks         int   // two-way partition passes over some sub-array
	CrackedObjects int64 // total objects moved across all crack passes (upper bound: elements scanned)
	SlicesCreated  int   // slices materialized (all levels)
	SlicesRefined  int   // slices finalized with an exact MBB — the paper's convergence curve
	ObjectsTested  int64 // objects tested for final intersection
	ResultObjects  int64 // objects reported
	SharedQueries  int64 // queries answered on the optimistic shared read path (see shared.go)
}

// slice is one node of QUASII's hierarchy. It covers data[lo:hi) and lives at
// one level (0 = x, 1 = y, 2 = z). Children, if any, partition [lo,hi) at the
// next level and are sorted by lo. Nodes are arena-allocated (see arena.go).
type slice struct {
	level    int
	lo, hi   int
	box      geom.Box // exact MBB once refined; open-ended before
	children *sliceList
	refined  bool // size() <= tau[level] and box is the exact MBB
	// heat counts sampled query touches (see Config.HeatSampleEvery).
	// Atomic because shared-path queries record concurrently; monotone for
	// the lifetime of the node. A slice replaced by refinement takes its
	// heat to the grave — converged slices, the ones heat is for, are never
	// replaced. Not persisted: a restored index starts cold.
	heat atomic.Int64
}

func (s *slice) size() int { return s.hi - s.lo }

// sliceList is an ordered list of sibling slices plus the bookkeeping needed
// to search it: the maximum box extent (in the level's dimension) among its
// members. The maximum is maintained monotonically — removing a wide slice
// does not shrink it — which is conservative but always correct.
type sliceList struct {
	slices []*slice
	maxExt float64
}

// lowerBound returns the index of the first slice whose lower bound in dim
// is >= key — the sibling binary search of the query fast path. Callers
// must have checked the AssignLower precondition (sibling Min is monotone
// only under lower-corner assignment) and that maxExt is finite. The search
// is hand-rolled so the hot path carries no sort.Search closure.
func (l *sliceList) lowerBound(key float64, dim int) int {
	lo, hi := 0, len(l.slices)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if l.slices[m].box.Min[dim] < key {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

func (l *sliceList) noteExtent(s *slice, dim int) {
	if e := s.box.Max[dim] - s.box.Min[dim]; e > l.maxExt && !math.IsInf(e, 1) {
		l.maxExt = e
	} else if math.IsInf(e, 1) {
		// An open-ended slice can reach anywhere; fall back to scanning from
		// the start of the list when searching.
		l.maxExt = math.Inf(1)
	}
}

// Index is a QUASII index over a columnar data table it owns and reorganizes
// in place.
type Index struct {
	cfg     Config
	data    *colstore.Table
	root    *sliceList
	tau     [geom.Dims]int
	rng     *rand.Rand // deterministic source for stochastic refinement
	arena   sliceArena // chunked allocator for slice nodes
	noStats bool
	stats   Stats

	// live is the head of the MVCC version chain (see version.go): pending
	// inserts, tombstones and the derived extent bookkeeping live in
	// immutable Version values published with an atomic swap. Readers load
	// it once and never block on writers; verMu serializes the writers.
	live  atomic.Pointer[Version]
	verMu sync.Mutex

	// epoch is the crack epoch: a monotonic counter bumped by every
	// *structural* mutation (crack, splice, finalization, child creation,
	// flush). Data changes (Append, Delete) publish versions instead and do
	// not move it, so the optimistic shared read path (shared.go) — which
	// validates the epoch to detect a racing structural writer — never
	// bails because of an update. Atomic because shared readers load it
	// without holding the caller's exclusive lock.
	epoch atomic.Uint64
	// sharedQueries counts queries answered on the shared read path. It is
	// the one counter that path maintains (atomically: shared queries run
	// concurrently with each other); the plain Stats counters stay exclusive
	// to the write path.
	sharedQueries atomic.Int64
	// remCracks is the crack budget of the query in flight: the number of
	// partition passes it may still perform. -1 means unlimited (the
	// default); 0 makes refine leave slices uncracked, to be finished by
	// later queries, with correctness preserved by scanning the unrefined
	// ranges. Set by QueryBudgeted, reset to -1 afterwards.
	remCracks int

	// heatEvery is the resolved access-heat sampling period (0 = disabled);
	// heatTick is the query counter it divides. The tick is atomic because
	// shared-path queries sample concurrently; recordHeat caches the
	// decision for the exclusive query in flight (single-threaded under the
	// caller's write lock, like remCracks).
	heatEvery  int64
	heatTick   atomic.Int64
	recordHeat bool
}

// heatEveryFor resolves Config.HeatSampleEvery to the stored period.
func heatEveryFor(cfg Config) int64 {
	switch {
	case cfg.HeatSampleEvery < 0:
		return 0
	case cfg.HeatSampleEvery == 0:
		return DefaultHeatSampleEvery
	default:
		return int64(cfg.HeatSampleEvery)
	}
}

// sampleHeat decides whether the query now starting records slice heat.
// Safe to call concurrently (shared-path queries sample independently).
func (ix *Index) sampleHeat() bool {
	e := ix.heatEvery
	if e == 0 {
		return false
	}
	return ix.heatTick.Add(1)%e == 0
}

// touchHeat records one sampled query touch on s.
func (s *slice) touchHeat(record bool) {
	if record {
		s.heat.Add(1)
	}
}

// New builds a QUASII index over data. The objects are ingested into the
// index's columnar lanes (the input slice is not retained); queries
// reorganize the lanes in place. Building is O(n) — it only copies the
// coordinates, computes the per-dimension maximum extents and the τ
// thresholds; all indexing work happens during queries.
func New(data []geom.Object, cfg Config) *Index {
	if cfg.Tau < 1 {
		cfg.Tau = DefaultTau
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ix := &Index{
		cfg:       cfg,
		data:      colstore.FromObjects(data),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		noStats:   cfg.DisableStats,
		remCracks: -1,
		heatEvery: heatEveryFor(cfg),
	}
	maxExt := ix.data.MaxExtents()
	dataMBB := ix.data.MBB(0, ix.data.Len())
	ix.computeTaus()
	if len(data) == 0 {
		ix.root = &sliceList{}
		ix.initVersion(nil, nil, maxExt, dataMBB)
		return ix
	}
	initial := ix.newSlice(0, 0, len(data), geom.UniverseBox())
	ix.root = &sliceList{slices: []*slice{initial}, maxExt: math.Inf(1)}
	if !ix.noStats {
		ix.stats.SlicesCreated = len(ix.root.slices)
	}
	ix.initVersion(nil, nil, maxExt, dataMBB)
	return ix
}

// computeTaus derives per-level thresholds from the bottom-level capacity:
// r = ceil((n/τ)^(1/d)), τ_{l-1} = r·τ_l (paper, Eq. 1).
func (ix *Index) computeTaus() {
	tau := ix.cfg.Tau
	n := ix.data.Len()
	parts := float64(n) / float64(tau)
	if parts < 1 {
		parts = 1
	}
	r := int(math.Ceil(math.Cbrt(parts)))
	if r < 1 {
		r = 1
	}
	ix.tau[geom.Dims-1] = tau
	for l := geom.Dims - 2; l >= 0; l-- {
		ix.tau[l] = ix.tau[l+1] * r
	}
}

// Len returns the number of live objects at the current version: indexed
// plus appended, minus tombstoned ones. Safe to call concurrently with
// writers (it reads one immutable version).
func (ix *Index) Len() int {
	v := ix.live.Load()
	return v.table.Len() + len(v.pending) - len(v.deleted)
}

// Stats returns a snapshot of the cumulative work counters. SharedQueries is
// folded in from its atomic home, so Stats may be called under shared access
// concurrently with shared-path queries.
func (ix *Index) Stats() Stats {
	st := ix.stats
	st.SharedQueries = ix.sharedQueries.Load()
	return st
}

// Tau returns the refinement threshold at the given level (0 = x).
func (ix *Index) Tau(level int) int { return ix.tau[level] }

// keyMode maps the configured assignment mode onto the storage layer's
// representative-coordinate selector.
func (ix *Index) keyMode() colstore.KeyMode {
	switch ix.cfg.Assign {
	case AssignCenter:
		return colstore.KeyCenter
	case AssignUpper:
		return colstore.KeyUpper
	default:
		return colstore.KeyLower
	}
}

// extendLo and extendHi return how far the query's lower/upper bound must be
// relaxed in dimension d so that the representative coordinates of all
// intersecting objects fall inside the extended range.
func (ix *Index) extendLo(d int) float64 {
	switch ix.cfg.Assign {
	case AssignCenter:
		return ix.live.Load().maxExt[d] / 2
	case AssignUpper:
		return 0 // upper(o) >= ql whenever o intersects q
	default:
		return ix.live.Load().maxExt[d]
	}
}

func (ix *Index) extendHi(d int) float64 {
	switch ix.cfg.Assign {
	case AssignCenter:
		return ix.live.Load().maxExt[d] / 2
	case AssignUpper:
		return ix.live.Load().maxExt[d]
	default:
		return 0 // lower-coordinate assignment: lower(o) <= qu whenever o intersects q
	}
}

// Query returns the IDs of all objects whose boxes intersect q, appending
// them to out. As a side effect it refines the index around q. On a
// converged index the call is allocation-free when out has capacity.
func (ix *Index) Query(q geom.Box, out []int32) []int32 {
	v := ix.live.Load()
	start := len(out)
	out = ix.queryPositions(q, out)
	// The traversal collects array positions (valid for the whole call:
	// refinement only reorders ranges not yet scanned); translate to IDs in
	// place, filtering tombstoned objects.
	ids := ix.data.ID
	if v.deleted == nil {
		for i := start; i < len(out); i++ {
			out[i] = ids[out[i]]
		}
	} else {
		w := start
		for i := start; i < len(out); i++ {
			id := ids[out[i]]
			if _, dead := v.deleted[id]; dead {
				continue
			}
			out[w] = id
			w++
		}
		out = out[:w]
	}
	// Appended objects are unindexed until Flush; scan them linearly,
	// skipping any that were tombstoned while still pending.
	if len(v.pending) > 0 && !q.IsEmpty() {
		for i := range v.pending {
			if v.pending[i].Intersects(q) {
				if _, dead := v.deleted[v.pending[i].ID]; !dead {
					out = append(out, v.pending[i].ID)
				}
			}
		}
	}
	return out
}

// QueryBudgeted answers q exactly like Query but performs at most budget
// crack (partition) passes, leaving the remaining refinement to later
// queries: once the budget is spent, oversized slices are answered by
// scanning their rows instead of cracking them, so results stay exact while
// the mutation work per call is bounded. This is the paper's incremental
// philosophy applied to lock hold time — the sharded engine uses it to keep
// exclusive sections short so concurrent shared readers never stall behind a
// cold region. A negative budget means unlimited (identical to Query).
func (ix *Index) QueryBudgeted(q geom.Box, out []int32, budget int) []int32 {
	if budget < 0 {
		budget = -1
	}
	ix.remCracks = budget
	out = ix.Query(q, out)
	ix.remCracks = -1
	return out
}

// queryPositions is Query's engine: it appends the data-array positions of
// matching objects instead of their IDs (used by KNN to reach the boxes).
func (ix *Index) queryPositions(q geom.Box, out []int32) []int32 {
	if !ix.noStats {
		ix.stats.Queries++
	}
	if ix.data.Len() == 0 || q.IsEmpty() {
		return out
	}
	ix.recordHeat = ix.sampleHeat()
	return ix.queryList(q, ix.root, 0, out)
}

// Count returns the number of objects intersecting q. On a converged index
// it counts via the read-only shared walk — no refinement, no allocation —
// so callers like /stats probes never force the exclusive path; otherwise it
// falls back to Query (refining the index as a side effect).
func (ix *Index) Count(q geom.Box) int {
	if n, ok := ix.CountShared(q); ok {
		return n
	}
	res := ix.Query(q, nil)
	return len(res)
}

// queryList implements Algorithm 1 of the paper on one sibling list.
func (ix *Index) queryList(q geom.Box, list *sliceList, dim int, out []int32) []int32 {
	// Binary search for the first slice that could overlap q in this
	// dimension, extending the search key by the maximum slice extent.
	// Sibling boxes' Min is monotone only under lower-corner assignment
	// (bands partition the representative coordinate, and Min *is* the
	// representative there); the ablation modes scan the whole list and rely
	// on the per-slice box test.
	fastPath := ix.cfg.Assign == AssignLower && !math.IsInf(list.maxExt, 1)
	var i int
	if fastPath {
		i = list.lowerBound(q.Min[dim]-list.maxExt, dim)
	}

	// Replacements produced by refinement: original index -> new slices.
	var replaced map[int][]*slice

	for ; i < len(list.slices); i++ {
		s := list.slices[i]
		if fastPath && s.box.Min[dim] > q.Max[dim] {
			break
		}
		if !s.box.Intersects(q) {
			continue
		}
		// Steady-state fast path: a slice already meeting its threshold is
		// finalized in place and never replaced, so the converged query path
		// performs no refinement bookkeeping (and no allocation).
		if s.size() <= ix.tau[dim] {
			ix.finalize(s)
			if !s.box.Intersects(q) {
				continue // the exact MBB ruled q out
			}
			out = ix.processSlice(s, q, dim, out)
			continue
		}
		refinedSlices := ix.refine(s, q)
		for _, t := range refinedSlices {
			if !t.box.Intersects(q) {
				continue
			}
			out = ix.processSlice(t, q, dim, out)
		}
		if len(refinedSlices) != 1 || refinedSlices[0] != s {
			if replaced == nil {
				replaced = make(map[int][]*slice)
			}
			replaced[i] = refinedSlices
		}
	}

	if replaced != nil {
		ix.splice(list, replaced, dim)
	}
	return out
}

// processSlice scans a bottom-level slice or descends into the next level.
func (ix *Index) processSlice(s *slice, q geom.Box, dim int, out []int32) []int32 {
	s.touchHeat(ix.recordHeat)
	if dim == geom.Dims-1 {
		return ix.scanSlice(s, q, out)
	}
	if s.children == nil {
		ix.createDefaultChild(s)
	}
	return ix.queryList(q, s.children, dim+1, out)
}

// scanSlice tests every object of a bottom-level slice against q using the
// columnar branch-light interval filter.
func (ix *Index) scanSlice(s *slice, q geom.Box, out []int32) []int32 {
	before := len(out)
	out = ix.data.ScanIntersect(s.lo, s.hi, q, out)
	if !ix.noStats {
		ix.stats.ObjectsTested += int64(s.size())
		ix.stats.ResultObjects += int64(len(out) - before)
	}
	return out
}

// createDefaultChild gives a refined slice a single child covering its whole
// range at the next level, to be refined by subsequent processing.
func (ix *Index) createDefaultChild(s *slice) {
	child := ix.newSlice(s.level+1, s.lo, s.hi, s.box)
	// The parent's box is a valid (possibly loose) bound for the child. The
	// child is final only if it already meets its own level's threshold.
	child.refined = s.refined && child.size() <= ix.tau[child.level]
	s.children = &sliceList{slices: []*slice{child}}
	s.children.noteExtent(child, child.level)
	ix.epoch.Add(1)
	if !ix.noStats {
		ix.stats.SlicesCreated++
	}
}

// splice replaces refined entries of list with their replacements, keeping
// the list sorted by lo. Replacement slices occupy exactly the replaced
// slice's [lo,hi) range and are sorted, so order is preserved without a full
// sort (the paper re-sorts; splicing is the equivalent O(n) merge).
func (ix *Index) splice(list *sliceList, replaced map[int][]*slice, dim int) {
	grown := 0
	for _, r := range replaced {
		grown += len(r) - 1
	}
	out := make([]*slice, 0, len(list.slices)+grown)
	for i, s := range list.slices {
		if r, ok := replaced[i]; ok {
			out = append(out, r...)
			continue
		}
		out = append(out, s)
	}
	list.slices = out
	// Recompute the max slice extent from scratch: replacing a wide slice
	// with narrow fragments should shrink the search extension, and the
	// initial slice's infinite extent must not stick around.
	list.maxExt = 0
	for _, s := range out {
		list.noteExtent(s, dim)
	}
	ix.epoch.Add(1)
}

// refine implements Algorithm 2: slice s is cracked on the (extended) query
// bounds in its dimension, and resulting fragments that still exceed τ and
// overlap the query are split artificially until they meet the threshold.
// It returns the slices replacing s, sorted by lo; a slice already meeting
// its threshold is returned unchanged (after finalization).
func (ix *Index) refine(s *slice, q geom.Box) []*slice {
	dim := s.level
	if s.size() <= ix.tau[dim] {
		ix.finalize(s)
		return []*slice{s}
	}
	// Crack budget exhausted: leave the slice uncracked. The caller still
	// answers correctly — processSlice descends (creating pass-through
	// children) until the bottom level scans the whole range — and a later
	// query with fresh budget finishes the refinement.
	if ix.remCracks == 0 {
		return []*slice{s}
	}

	// Extended crack bounds: every object intersecting q has its
	// representative coordinate within [lo, hi].
	lo := q.Min[dim] - ix.extendLo(dim)
	hi := q.Max[dim] + ix.extendHi(dim)
	// Make the middle band inclusive of hi, matching the paper's [xl, xu].
	hiExcl := math.Nextafter(hi, math.Inf(1))

	// Slice bounds in dim: use the recorded box when finite (exact for
	// fragments created by cracking); scan only for the initial open slice.
	// The recorded Max is the max upper coordinate, which over-approximates
	// the representative-coordinate range — the worst case is a crack pass
	// that yields an empty band, which makeFragments drops.
	sMin, sMax := s.box.Min[dim], s.box.Max[dim]
	if math.IsInf(sMin, -1) || math.IsInf(sMax, 1) {
		sMin, sMax = ix.lowerRange(s, dim)
	}

	// Stochastic cracking: pre-cut large slices at a random coordinate so a
	// sequential sweep cannot keep every query cracking the same shrinking
	// tail. Each half is then refined normally (recursing only into halves
	// the query touches).
	if ix.cfg.Stochastic && s.size() > 2*ix.tau[dim] && sMax > sMin {
		cut := ix.stochasticCut(sMin, sMax)
		if halves := ix.crackTwo(s, dim, cut); len(halves) == 2 {
			result := make([]*slice, 0, 4)
			for _, h := range halves {
				if h.size() > ix.tau[dim] && h.box.Max[dim] >= lo && h.box.Min[dim] <= hi {
					result = append(result, ix.refine(h, q)...)
				} else {
					if h.size() <= ix.tau[dim] {
						ix.finalize(h)
					}
					result = append(result, h)
				}
			}
			return result
		} else if len(halves) == 1 {
			// Degenerate cut; continue refining the (rebounded) survivor.
			s = halves[0]
			sMin, sMax = s.box.Min[dim], s.box.Max[dim]
			if s.size() <= ix.tau[dim] {
				ix.finalize(s)
				return []*slice{s}
			}
		}
	}

	var bands []*slice
	switch {
	case lo > sMin && hi < sMax: // both bounds interior: three-way
		bands = ix.crackThree(s, dim, lo, hiExcl)
	case lo > sMin: // only the lower bound interior: two-way at lo
		bands = ix.crackTwo(s, dim, lo)
	case hi < sMax: // only the upper bound interior: two-way just past hi
		bands = ix.crackTwo(s, dim, hiExcl)
	default: // query contains the slice: artificial midpoint split
		bands = ix.crackTwo(s, dim, artificialCut(sMin, sMax))
	}

	// Artificial refinement: fragments that still exceed τ and overlap the
	// extended query range are split at midpoints until they comply.
	result := make([]*slice, 0, len(bands)+2)
	for _, b := range bands {
		if !ix.cfg.DisableArtificial &&
			b.size() > ix.tau[dim] &&
			b.box.Max[dim] >= lo && b.box.Min[dim] <= hi {
			result = ix.artificial(b, dim, lo, hi, result)
		} else {
			result = append(result, b)
		}
	}
	return result
}

// artificial recursively splits slice b at the midpoint of its representative
// coordinate range until every query-overlapping fragment meets τ, appending
// the fragments to out in lo order.
func (ix *Index) artificial(b *slice, dim int, qlo, qhi float64, out []*slice) []*slice {
	if b.size() <= ix.tau[dim] {
		ix.finalize(b)
		return append(out, b)
	}
	if ix.remCracks == 0 {
		return append(out, b) // budget exhausted: later queries finish the split
	}
	bMin, bMax := ix.lowerRange(b, dim)
	if bMax <= bMin {
		// All representative coordinates coincide: the slice cannot be split
		// spatially. Accept it as final (degenerate duplicate-heavy data).
		ix.finalize(b)
		return append(out, b)
	}
	cut := artificialCut(bMin, bMax)
	halves := ix.crackTwo(b, dim, cut)
	for _, h := range halves {
		if h.size() > ix.tau[dim] && h.box.Max[dim] >= qlo && h.box.Min[dim] <= qhi {
			out = ix.artificial(h, dim, qlo, qhi, out)
		} else {
			if h.size() <= ix.tau[dim] {
				ix.finalize(h)
			}
			out = append(out, h)
		}
	}
	return out
}

// artificialCut picks the midpoint split coordinate for range (lo, hi). The
// paper floors the midpoint; we keep the untruncated midpoint since the data
// domain is continuous, guarding against a cut equal to lo (which would make
// no progress on pathological ranges).
func artificialCut(lo, hi float64) float64 {
	c := (lo + hi) / 2
	if c <= lo {
		c = math.Nextafter(lo, math.Inf(1))
	}
	return c
}

// crackThree partitions s into up to three non-empty fragments around
// [low, highExcl) of the representative coordinate. Fragment boxes carry the
// exact extent in the cracked dimension and stay open in the others.
func (ix *Index) crackThree(s *slice, dim int, low, highExcl float64) []*slice {
	m1, lb, _ := ix.partition(s.lo, s.hi, dim, low)
	m2, mb, rb := ix.partition(m1, s.hi, dim, highExcl)
	return ix.makeFragments(s, dim,
		[]int{s.lo, m1, m2, s.hi}, []colstore.Bounds{lb, mb, rb})
}

// crackTwo partitions s into up to two non-empty fragments at pivot.
func (ix *Index) crackTwo(s *slice, dim int, pivot float64) []*slice {
	m, lb, rb := ix.partition(s.lo, s.hi, dim, pivot)
	return ix.makeFragments(s, dim, []int{s.lo, m, s.hi}, []colstore.Bounds{lb, rb})
}

// partition delegates to the columnar cracking kernel: it reorders rows
// [lo, hi) so rows with representative coordinate < pivot precede the rest,
// returning the split position together with the exact bounds of both bands
// in dim.
func (ix *Index) partition(lo, hi int, dim int, pivot float64) (mid int, left, right colstore.Bounds) {
	if !ix.noStats {
		ix.stats.Cracks++
		ix.stats.CrackedObjects += int64(hi - lo)
	}
	if ix.remCracks > 0 {
		ix.remCracks--
	}
	ix.epoch.Add(1)
	return ix.data.Partition(lo, hi, dim, pivot, ix.keyMode())
}

// makeFragments materializes the non-empty fragments delimited by cuts
// (cuts[0] == s.lo, cuts[len-1] == s.hi) with the matching per-band bounds.
// Each fragment inherits s's box in the dimensions not yet sliced and gets
// exact bounds in dim; fragments small enough are finalized with a full MBB.
func (ix *Index) makeFragments(s *slice, dim int, cuts []int, bds []colstore.Bounds) []*slice {
	frags := make([]*slice, 0, len(cuts)-1)
	for k := 0; k+1 < len(cuts); k++ {
		lo, hi := cuts[k], cuts[k+1]
		if lo >= hi {
			continue
		}
		f := ix.newSlice(dim, lo, hi, s.box)
		f.box.Min[dim] = bds[k].Min
		f.box.Max[dim] = bds[k].Max
		if f.size() <= ix.tau[dim] {
			ix.finalizeFragment(f, dim)
		}
		frags = append(frags, f)
		if !ix.noStats {
			ix.stats.SlicesCreated++
		}
	}
	return frags
}

// finalize marks s as fully refined in its dimension and computes its exact
// MBB (the paper computes full MBBs only for completely refined slices).
func (ix *Index) finalize(s *slice) {
	if s.refined {
		return
	}
	s.box = ix.data.MBB(s.lo, s.hi)
	s.refined = true
	if !ix.noStats {
		ix.stats.SlicesRefined++
	}
	ix.epoch.Add(1)
}

// finalizeFragment finalizes a fragment fresh out of a crack pass: its box
// is already exact in the cracked dimension (the partition kernel tracked
// those bounds in-pass), so only the other dimensions' lanes are reduced.
func (ix *Index) finalizeFragment(f *slice, dim int) {
	for d := 0; d < geom.Dims; d++ {
		if d == dim {
			continue
		}
		f.box.Min[d], f.box.Max[d] = ix.data.LaneBounds(d, f.lo, f.hi)
	}
	f.refined = true
	if !ix.noStats {
		ix.stats.SlicesRefined++
	}
	// No epoch bump: the fragment is not yet reachable from the hierarchy
	// (its partition pass already bumped, and splice will bump on attach).
}

// --- Introspection and invariant checking (used by tests and tools) ---

// Depth returns the number of hierarchy levels (== geom.Dims).
func (ix *Index) Depth() int { return geom.Dims }

// NumSlices returns the total number of slices currently materialized.
func (ix *Index) NumSlices() int {
	var n int
	var walk func(l *sliceList)
	walk = func(l *sliceList) {
		for _, s := range l.slices {
			n++
			if s.children != nil {
				walk(s.children)
			}
		}
	}
	if ix.root != nil {
		walk(ix.root)
	}
	return n
}

// CheckInvariants validates the structural invariants of the index:
//
//  1. sibling slices are sorted by lo and partition their parent's range,
//  2. children cover exactly their parent's [lo,hi),
//  3. refined slices respect τ (except degenerate duplicate-coordinate
//     slices) and their box contains all their objects,
//  4. every slice's box, where finite, bounds its objects' extents in the
//     already-sliced dimension.
//
// It returns an error describing the first violation found.
func (ix *Index) CheckInvariants() error {
	if ix.root == nil {
		return nil
	}
	return ix.checkList(ix.root, 0, ix.data.Len(), 0)
}

func (ix *Index) checkList(l *sliceList, lo, hi, level int) error {
	if len(l.slices) == 0 {
		if lo != hi {
			return fmt.Errorf("level %d: empty slice list for non-empty range [%d,%d)", level, lo, hi)
		}
		return nil
	}
	pos := lo
	for k, s := range l.slices {
		if s.level != level {
			return fmt.Errorf("slice %d at level %d, want %d", k, s.level, level)
		}
		if s.lo != pos {
			return fmt.Errorf("level %d: slice %d starts at %d, want %d (gap/overlap)", level, k, s.lo, pos)
		}
		if s.hi < s.lo {
			return fmt.Errorf("level %d: slice %d has inverted range [%d,%d)", level, k, s.lo, s.hi)
		}
		pos = s.hi
		if s.refined {
			mbb := ix.data.MBB(s.lo, s.hi)
			if !s.box.Contains(mbb) && s.size() > 0 {
				return fmt.Errorf("level %d: refined slice %d box %v does not contain objects MBB %v", level, k, s.box, mbb)
			}
		}
		// Exact-dimension bound check: finite bounds must cover objects.
		for j := s.lo; j < s.hi; j++ {
			if !math.IsInf(s.box.Min[level], -1) && ix.data.Min[level][j] < s.box.Min[level]-1e-9 {
				return fmt.Errorf("level %d: slice %d lower bound %g violated by object %d (%g)",
					level, k, s.box.Min[level], j, ix.data.Min[level][j])
			}
			if !math.IsInf(s.box.Max[level], 1) && ix.data.Max[level][j] > s.box.Max[level]+1e-9 {
				return fmt.Errorf("level %d: slice %d upper bound %g violated by object %d (%g)",
					level, k, s.box.Max[level], j, ix.data.Max[level][j])
			}
		}
		if s.children != nil {
			if err := ix.checkList(s.children, s.lo, s.hi, level+1); err != nil {
				return err
			}
		}
	}
	if pos != hi {
		return fmt.Errorf("level %d: slices end at %d, want %d", level, pos, hi)
	}
	return nil
}

// lowerRange returns the min and max representative coordinate of s's objects
// in dimension dim (a lane scan; used before a slice has exact bounds in dim).
func (ix *Index) lowerRange(s *slice, dim int) (lo, hi float64) {
	return ix.data.KeyRange(s.lo, s.hi, dim, ix.keyMode())
}
