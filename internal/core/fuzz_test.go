package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
)

// FuzzQueryEquivalence drives QUASII with fuzzer-chosen dataset shapes, τ,
// assignment modes and query streams, requiring exact agreement with Scan
// and intact structural invariants. Run `go test -fuzz=FuzzQueryEquivalence
// ./internal/core` to explore beyond the seed corpus.
func FuzzQueryEquivalence(f *testing.F) {
	f.Add(int64(1), 100, 8, uint8(0), false)
	f.Add(int64(2), 500, 1, uint8(1), true)
	f.Add(int64(3), 50, 60, uint8(2), false)
	f.Add(int64(4), 900, 16, uint8(0), true)

	f.Fuzz(func(t *testing.T, seed int64, n, tau int, mode uint8, stochastic bool) {
		if n < 0 {
			n = -n
		}
		n = n%1000 + 1
		if tau < 1 {
			tau = 1
		}
		tau = tau%200 + 1
		assign := AssignMode(mode % 3)

		rng := rand.New(rand.NewSource(seed))
		data := make([]geom.Object, n)
		for i := range data {
			var min, max geom.Point
			for d := 0; d < geom.Dims; d++ {
				min[d] = rng.Float64() * 1000
				max[d] = min[d] + rng.Float64()*rng.Float64()*200
			}
			data[i] = geom.Object{Box: geom.Box{Min: min, Max: max}, ID: int32(i)}
		}
		oracle := scan.New(data)
		ix := New(dataset.Clone(data), Config{
			Tau: tau, Assign: assign, Stochastic: stochastic, Seed: seed,
		})
		var got, want []int32
		for qi := 0; qi < 25; qi++ {
			var a, b geom.Point
			for d := 0; d < geom.Dims; d++ {
				a[d] = rng.Float64()*1200 - 100
				b[d] = a[d] + rng.Float64()*300
			}
			q := geom.Box{Min: a, Max: b}
			got = sortedIDs(ix.Query(q, got[:0]))
			want = sortedIDs(oracle.Query(q, want[:0]))
			if !equalIDs(got, want) {
				t.Fatalf("seed=%d n=%d tau=%d mode=%d stoch=%v query %d: got %d results, want %d",
					seed, n, tau, assign, stochastic, qi, len(got), len(want))
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}
