package core

// Equivalence coverage for the columnar (SoA) storage engine: the fuzz seed
// corpus of fuzz_test.go replayed deterministically, the oracle suite under
// the instrumentation-free configuration, and the allocation contract of
// the converged query path. Together with the runEquivalence tests in
// core_test.go (which now all run against the SoA-backed index), these pin
// the refactor to bit-identical results vs the seed's AoS behaviour.

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

// fuzzSeedCase mirrors one f.Add seed of FuzzQueryEquivalence.
type fuzzSeedCase struct {
	seed       int64
	n, tau     int
	mode       uint8
	stochastic bool
}

var fuzzSeeds = []fuzzSeedCase{
	{1, 100, 8, 0, false},
	{2, 500, 1, 1, true},
	{3, 50, 60, 2, false},
	{4, 900, 16, 0, true},
	// Extra corners beyond the fuzz corpus: τ=1 upper assignment, big τ.
	{5, 777, 1, 2, true},
	{6, 333, 200, 1, false},
}

// TestEquivalenceFuzzSeeds replays the fuzz seed corpus as a deterministic
// test, running the exact generation and query logic of the fuzz target so
// the corpus stays covered in plain `go test` runs.
func TestEquivalenceFuzzSeeds(t *testing.T) {
	for _, c := range fuzzSeeds {
		n := c.n%1000 + 1
		tau := c.tau%200 + 1
		assign := AssignMode(c.mode % 3)

		rng := rand.New(rand.NewSource(c.seed))
		data := make([]geom.Object, n)
		for i := range data {
			var min, max geom.Point
			for d := 0; d < geom.Dims; d++ {
				min[d] = rng.Float64() * 1000
				max[d] = min[d] + rng.Float64()*rng.Float64()*200
			}
			data[i] = geom.Object{Box: geom.Box{Min: min, Max: max}, ID: int32(i)}
		}
		oracle := scan.New(data)
		ix := New(dataset.Clone(data), Config{
			Tau: tau, Assign: assign, Stochastic: c.stochastic, Seed: c.seed,
		})
		var got, want []int32
		for qi := 0; qi < 25; qi++ {
			var a, b geom.Point
			for d := 0; d < geom.Dims; d++ {
				a[d] = rng.Float64()*1200 - 100
				b[d] = a[d] + rng.Float64()*300
			}
			q := geom.Box{Min: a, Max: b}
			got = sortedIDs(ix.Query(q, got[:0]))
			want = sortedIDs(oracle.Query(q, want[:0]))
			if !equalIDs(got, want) {
				t.Fatalf("seed=%d n=%d tau=%d mode=%d stoch=%v query %d: got %d results, want %d",
					c.seed, n, tau, assign, c.stochastic, qi, len(got), len(want))
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("seed=%d: invariants: %v", c.seed, err)
		}
	}
}

func TestEquivalenceDisableStats(t *testing.T) {
	data := dataset.Uniform(4000, 71)
	queries := workload.Uniform(dataset.Universe(), 120, 1e-3, 72)
	runEquivalence(t, data, queries, Config{Tau: 32, DisableStats: true})
}

func TestDisableStatsKeepsCountersZero(t *testing.T) {
	data := dataset.Uniform(2000, 73)
	ix := New(dataset.Clone(data), Config{DisableStats: true})
	for _, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 74) {
		ix.Query(q, nil)
	}
	if st := ix.Stats(); st != (Stats{}) {
		t.Fatalf("counters moved despite DisableStats: %+v", st)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConvergedQueryDoesNotAllocate pins the tentpole's allocation contract:
// once the index is fully refined, Query with a pre-sized output buffer must
// not allocate.
func TestConvergedQueryDoesNotAllocate(t *testing.T) {
	data := dataset.Uniform(50000, 75)
	ix := New(dataset.Clone(data), Config{})
	ix.Complete()
	queries := workload.Uniform(dataset.Universe(), 64, 1e-4, 76)
	out := make([]int32, 0, 4096)
	// Warm up once (first touches may finalize default children).
	for _, q := range queries {
		out = ix.Query(q, out[:0])
	}
	avg := testing.AllocsPerRun(50, func() {
		for _, q := range queries {
			out = ix.Query(q, out[:0])
		}
	})
	if avg != 0 {
		t.Fatalf("converged Query allocates %.1f times per %d queries, want 0", avg, len(queries))
	}
}

// TestSoAOrderInsensitivity: the branch-free crack kernel places rows within
// a band in a different physical order than the seed's two-pointer kernel.
// QUASII treats bands as unordered sets, so results, invariants, and
// persistence round-trips must be unaffected — this exercises a workload
// with deletes and appends on top to cover the compaction paths too.
func TestSoAOrderInsensitivity(t *testing.T) {
	data := dataset.Uniform(3000, 77)
	ix := New(dataset.Clone(data), Config{Tau: 24})
	oracle := scan.New(data)
	queries := workload.Uniform(dataset.Universe(), 60, 1e-3, 78)
	for _, q := range queries[:30] {
		ix.Query(q, nil)
	}
	// Delete a handful of objects, append replacements, flush, and re-check.
	for id := int32(0); id < 20; id++ {
		if !ix.Delete(id, data[id].Box) {
			t.Fatalf("object %d not found for deletion", id)
		}
	}
	ix.Flush()
	live := dataset.Clone(data[20:])
	oracle = scan.New(live)
	var got, want []int32
	for qi, q := range queries[30:] {
		got = sortedIDs(ix.Query(q, got[:0]))
		want = sortedIDs(oracle.Query(q, want[:0]))
		if !equalIDs(got, want) {
			t.Fatalf("query %d after delete+flush: got %d results, want %d", qi, len(got), len(want))
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
