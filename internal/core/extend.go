// Extensions beyond the paper's core algorithm, each motivated by its text:
//
//   - stochastic refinement (Config.Stochastic): the paper builds on database
//     cracking and cites stochastic cracking (Halim et al., VLDB 2012), which
//     fixes cracking's pathological behaviour under sequential workloads by
//     adding random cuts. The same idea applies per dimension here.
//   - Complete: finish refinement eagerly (e.g. in idle time), turning the
//     adaptive index into its fully converged form.
//   - Append/Delete/Flush: accept updates after construction; the paper
//     assumes a static setting (Sec. 2), so arrivals are buffered, deletions
//     tombstoned, and both merged/compacted on demand.

package core

import (
	"math"

	"repro/internal/geom"
)

// stochasticCut returns a random cut coordinate within (lo, hi) drawn from
// the index's deterministic RNG, used to pre-split big slices so worst-case
// (sequential) workloads cannot keep every query on an unrefined tail.
func (ix *Index) stochasticCut(lo, hi float64) float64 {
	c := lo + ix.rng.Float64()*(hi-lo)
	if c <= lo || c >= hi {
		c = (lo + hi) / 2
	}
	return c
}

// Complete finishes all outstanding refinement: every slice on every level
// is split down to its τ threshold and every refined slice receives its
// exact bounding box, exactly as if enough queries had touched the whole
// universe. Afterwards queries perform no further cracking. Typical use is
// converting the adaptive index into its converged form during idle time.
func (ix *Index) Complete() {
	if ix.root == nil {
		return
	}
	ix.completeList(ix.root, 0)
}

func (ix *Index) completeList(list *sliceList, dim int) {
	var out []*slice
	for _, s := range list.slices {
		out = append(out, ix.completeSlice(s, dim)...)
	}
	list.slices = out
	list.maxExt = 0
	for _, s := range out {
		list.noteExtent(s, dim)
		if dim < geom.Dims-1 {
			if s.children == nil {
				ix.createDefaultChild(s)
			}
			ix.completeList(s.children, dim+1)
		}
	}
}

// completeSlice splits s at midpoints until every fragment meets τ,
// finalizing all fragments. It returns the replacement slices in lo order.
func (ix *Index) completeSlice(s *slice, dim int) []*slice {
	if s.size() <= ix.tau[dim] {
		ix.finalize(s)
		return []*slice{s}
	}
	sMin, sMax := ix.lowerRange(s, dim)
	if sMax <= sMin {
		ix.finalize(s)
		return []*slice{s}
	}
	halves := ix.crackTwo(s, dim, artificialCut(sMin, sMax))
	out := make([]*slice, 0, 2)
	for _, h := range halves {
		out = append(out, ix.completeSlice(h, dim)...)
	}
	return out
}

// Append registers new objects with the index. The paper assumes all data is
// available up front (static setting); arrivals are therefore buffered and
// scanned linearly by every query until Flush folds them into the indexed
// lanes. IDs need not be unique, but results are reported by ID.
//
// Append publishes a new version (see version.go) and is safe under the
// shard's shared lock, concurrently with readers and other writers.
func (ix *Index) Append(objs ...geom.Object) {
	ix.AppendVersioned(objs...)
}

// Pending returns the number of appended objects not yet folded into the
// indexed lanes (tombstoned-while-pending entries included until Flush).
func (ix *Index) Pending() int { return len(ix.live.Load().pending) }

// Delete removes the object with the given ID, using hint (typically the
// object's own box) to locate it. Deletion is logical — a tombstone filters
// the object out of all results immediately — and physical on the next
// Flush, which compacts the lanes and restarts refinement. It reports
// whether a visible object was found; an ID already tombstoned reads as
// absent. IDs are assumed unique for deletion; with duplicates every object
// carrying the ID disappears from results.
//
// Delete may refine the index around hint, so it requires the exclusive
// lock; DeleteShared is the escalation-free variant for converged regions.
func (ix *Index) Delete(id int32, hint geom.Box) bool {
	cur := ix.live.Load()
	if _, dead := cur.deleted[id]; dead {
		return false
	}
	// A pending object is tombstoned exactly like an indexed one: the
	// version's pending slice is immutable, and Flush drops tombstoned
	// entries instead of folding them in.
	for i := range cur.pending {
		if cur.pending[i].ID == id && cur.pending[i].Intersects(hint) {
			ix.deleteVersioned(id)
			return true
		}
	}
	// Locate in the indexed lanes (refines around hint as a side effect).
	for _, pos := range ix.queryPositions(hint, nil) {
		if ix.data.ID[pos] == id {
			ix.deleteVersioned(id)
			return true
		}
	}
	return false
}

// Deleted returns the number of tombstoned objects awaiting compaction.
func (ix *Index) Deleted() int { return len(ix.live.Load().deleted) }

// Flush folds all appended objects into the indexed lanes and compacts away
// tombstoned ones. The slice hierarchy restarts from a single unrefined
// slice — subsequent queries rebuild it incrementally, which is the
// adaptive-indexing answer to bulk updates (refining the merge is future
// work the paper leaves open).
//
// Flush requires the exclusive lock. If any version in the chain is pinned
// (a checkpoint mid-write), the lanes are cloned first so the pinned view
// keeps its frozen generation; otherwise compaction is in place as before.
func (ix *Index) Flush() {
	cur := ix.live.Load()
	if len(cur.pending) == 0 && len(cur.deleted) == 0 {
		return
	}
	ix.epoch.Add(1)
	if ix.chainPinned() {
		// A pinned version references the current lanes; rebuilding must
		// not touch them. The clone becomes the live table, the pinned
		// version keeps the superseded one (its root and tau fields were
		// captured at publish and stay consistent with it).
		ix.data = ix.data.Clone()
	}
	if len(cur.deleted) > 0 {
		ix.data.Compact(cur.deleted)
	}
	if len(cur.pending) > 0 {
		live := cur.pending
		if len(cur.deleted) > 0 {
			// Drop tombstoned-while-pending objects instead of resurrecting
			// them. Copy — cur.pending's backing array is shared COW state.
			live = make([]geom.Object, 0, len(cur.pending))
			for i := range cur.pending {
				if _, dead := cur.deleted[cur.pending[i].ID]; !dead {
					live = append(live, cur.pending[i])
				}
			}
		}
		ix.data.AppendObjects(live)
	}
	ix.computeTaus()
	initial := ix.newSlice(0, 0, ix.data.Len(), geom.UniverseBox())
	ix.root = &sliceList{slices: []*slice{initial}, maxExt: math.Inf(1)}
	if !ix.noStats {
		ix.stats.SlicesCreated++
	}
	// Publish the fresh base version: no deltas, new table/root generation.
	ix.verMu.Lock()
	ix.publishLocked(&Version{
		seq:     ix.live.Load().seq + 1,
		maxExt:  cur.maxExt,
		dataMBB: cur.dataMBB,
		table:   ix.data,
		root:    ix.root,
		tau:     ix.tau,
	})
	ix.verMu.Unlock()
}
