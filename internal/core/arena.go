package core

import "repro/internal/geom"

// sliceArena allocates slice nodes in fixed-size chunks so refinement does
// not pay one heap allocation (plus GC scan pressure) per slice. Nodes are
// never freed individually: a chunk stays reachable while any of its nodes
// is referenced from the hierarchy, which bounds waste to one chunk of
// superseded nodes per live chunk in the worst case — small next to the
// lanes, and refinement converges so the total node count is bounded by
// O(n/τ) per level.
type sliceArena struct {
	chunk []slice
}

// arenaChunkSize balances allocation amortization against the waste of a
// partially dead chunk being pinned by a few live nodes.
const arenaChunkSize = 256

func (a *sliceArena) alloc() *slice {
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]slice, 0, arenaChunkSize)
	}
	a.chunk = a.chunk[:len(a.chunk)+1]
	return &a.chunk[len(a.chunk)-1]
}

// newSlice returns an arena-backed slice node covering data[lo:hi) at the
// given level.
func (ix *Index) newSlice(level, lo, hi int, box geom.Box) *slice {
	s := ix.arena.alloc()
	s.level, s.lo, s.hi = level, lo, hi
	s.box = box
	s.children = nil
	s.refined = false
	s.heat.Store(0)
	return s
}
