// Persistence: a QUASII index is the product of the queries executed against
// it, so being able to save and reload one preserves an exploration
// session's accumulated refinement — the incremental-indexing equivalent of
// shipping a pre-built index. Encoding uses encoding/gob over an exported
// snapshot of the slice hierarchy and the (reorganized) data array.

package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/colstore"
	"repro/internal/geom"
)

// snapshot is the gob-encoded on-disk form of an Index.
type snapshot struct {
	Version int
	Cfg     Config
	Data    []geom.Object
	Pending []geom.Object
	Deleted []int32
	MaxExt  geom.Point
	DataMBB geom.Box
	Tau     [geom.Dims]int
	Root    *snapList
	Stats   Stats
}

type snapList struct {
	MaxExt float64
	Slices []snapSlice
}

type snapSlice struct {
	Lo, Hi   int
	Box      geom.Box
	Refined  bool
	Children *snapList
}

const snapshotVersion = 1

// Save serializes the index — data rows (materialized from the columnar
// lanes so the on-disk format stays the AoS object array of version 1),
// pending buffer, and the full slice hierarchy with its refinement state —
// to w.
func (ix *Index) Save(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Cfg:     ix.cfg,
		Data:    ix.data.Objects(make([]geom.Object, 0, ix.data.Len())),
		Pending: ix.pending,
		Deleted: deletedIDs(ix.deleted),
		MaxExt:  ix.maxExt,
		DataMBB: ix.dataMBB,
		Tau:     ix.tau,
		Root:    encodeList(ix.root),
		Stats:   ix.Stats(), // folds the atomic SharedQueries counter in
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reconstructs an index previously serialized with Save.
func Load(r io.Reader) (*Index, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding quasii snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("unsupported quasii snapshot version %d", snap.Version)
	}
	seed := snap.Cfg.Seed
	if seed == 0 {
		seed = 1
	}
	ix := &Index{
		cfg:       snap.Cfg,
		data:      colstore.FromObjects(snap.Data),
		pending:   snap.Pending,
		deleted:   deletedSet(snap.Deleted),
		maxExt:    snap.MaxExt,
		dataMBB:   snap.DataMBB,
		tau:       snap.Tau,
		rng:       rand.New(rand.NewSource(seed)),
		noStats:   snap.Cfg.DisableStats,
		stats:     snap.Stats,
		remCracks: -1,
	}
	// SharedQueries lives in an atomic counter outside the plain Stats block;
	// move the persisted value back home so Stats() keeps folding it in.
	ix.sharedQueries.Store(snap.Stats.SharedQueries)
	ix.stats.SharedQueries = 0
	ix.root = ix.decodeList(snap.Root, 0)
	if ix.root == nil {
		ix.root = &sliceList{}
	}
	// Bounds-check every slice range before the structural invariant check,
	// which indexes into the data lanes and would panic on dangling ranges.
	if err := checkRanges(ix.root, ix.data.Len()); err != nil {
		return nil, fmt.Errorf("corrupt quasii snapshot: %w", err)
	}
	if err := ix.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("corrupt quasii snapshot: %w", err)
	}
	return ix, nil
}

func checkRanges(l *sliceList, n int) error {
	for _, s := range l.slices {
		if s.lo < 0 || s.hi < s.lo || s.hi > n {
			return fmt.Errorf("slice range [%d,%d) out of bounds for %d objects", s.lo, s.hi, n)
		}
		if s.children != nil {
			if err := checkRanges(s.children, n); err != nil {
				return err
			}
		}
	}
	return nil
}

func encodeList(l *sliceList) *snapList {
	if l == nil {
		return nil
	}
	out := &snapList{MaxExt: l.maxExt, Slices: make([]snapSlice, len(l.slices))}
	for i, s := range l.slices {
		out.Slices[i] = snapSlice{
			Lo: s.lo, Hi: s.hi, Box: s.box, Refined: s.refined,
			Children: encodeList(s.children),
		}
	}
	return out
}

func (ix *Index) decodeList(l *snapList, level int) *sliceList {
	if l == nil {
		return nil
	}
	out := &sliceList{maxExt: l.MaxExt, slices: make([]*slice, len(l.Slices))}
	for i, s := range l.Slices {
		n := ix.newSlice(level, s.Lo, s.Hi, s.Box)
		n.refined = s.Refined
		n.children = ix.decodeList(s.Children, level+1)
		out.slices[i] = n
	}
	return out
}

func deletedIDs(set map[int32]struct{}) []int32 {
	if len(set) == 0 {
		return nil
	}
	out := make([]int32, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

func deletedSet(ids []int32) map[int32]struct{} {
	if len(ids) == 0 {
		return nil
	}
	set := make(map[int32]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}
