// Persistence: a QUASII index is the product of the queries executed against
// it, so being able to save and reload one preserves an exploration
// session's accumulated refinement — the incremental-indexing equivalent of
// shipping a pre-built index.
//
// Two on-disk formats exist:
//
//   - Version 2 (written by Save): a magic header, a length-prefixed gob
//     block carrying the configuration, slice hierarchy and update buffers,
//     and then the columnar lanes serialized directly (raw little-endian
//     lane words with a trailing CRC — see colstore.WriteLanes). Writing
//     streams the same contiguous memory the query kernels run over; no
//     array-of-structs is materialized.
//   - Version 1 (legacy, gob only): the whole snapshot — including the data
//     as a []geom.Object — in a single gob stream. Load transparently reads
//     both; new snapshots are always v2.

package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/colstore"
	"repro/internal/geom"
)

// snapshot is the gob-encoded on-disk form of a version-1 Index.
type snapshot struct {
	Version int
	Cfg     Config
	Data    []geom.Object
	Pending []geom.Object
	Deleted []int32
	MaxExt  geom.Point
	DataMBB geom.Box
	Tau     [geom.Dims]int
	Root    *snapList
	Stats   Stats
}

// snapshotV2 is the gob-encoded metadata block of a version-2 snapshot: the
// v1 snapshot minus the data array, which follows as raw columnar lanes.
type snapshotV2 struct {
	Cfg     Config
	DataLen int // rows in the lane block that follows
	Pending []geom.Object
	Deleted []int32
	MaxExt  geom.Point
	DataMBB geom.Box
	Tau     [geom.Dims]int
	Root    *snapList
	Stats   Stats
}

type snapList struct {
	MaxExt float64
	Slices []snapSlice
}

type snapSlice struct {
	Lo, Hi   int
	Box      geom.Box
	Refined  bool
	Children *snapList
}

const snapshotVersion = 1

// magicV2 starts every version-2 snapshot. A version-1 stream is a bare gob
// stream, which cannot begin with these bytes (a gob message starts with a
// small varint length), so Load can dispatch on an 8-byte peek.
const magicV2 = "QZSNAP2\n"

// maxHeaderBytes bounds the v2 metadata block so a corrupt length prefix
// cannot force an enormous allocation. The hierarchy of an index with n
// objects has O(n/τ) slices; 1 GiB of gob covers any realistic index.
const maxHeaderBytes = 1 << 30

// Save serializes the index to w in the version-2 columnar format: magic,
// a length-prefixed gob block (configuration, update buffers, the full
// slice hierarchy with its refinement state), then the data lanes written
// directly from columnar storage. It snapshots the live version; see
// SaveVersion for checkpointing an explicitly pinned one.
func (ix *Index) Save(w io.Writer) error {
	return ix.SaveVersion(w, ix.live.Load())
}

// SaveVersion serializes v's view of the index — its base lanes, the slice
// hierarchy describing them, and its delta buffers — in the same version-2
// format Save writes; Load cannot tell the difference. This is what makes
// the zero-pause durable checkpoint possible: the checkpoint pins a version
// at the cut, updates keep publishing new versions, and the snapshot
// written afterwards is exactly the pinned view. The caller must hold at
// least the shared lock (a current-generation version's lanes may still be
// reordered in place by cracking; the lock excludes that; a superseded
// generation is frozen either way, but the lock also keeps the rule
// simple).
func (ix *Index) SaveVersion(w io.Writer, v *Version) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magicV2); err != nil {
		return err
	}
	head := snapshotV2{
		Cfg:     ix.cfg,
		DataLen: v.table.Len(),
		Pending: v.pending,
		Deleted: deletedIDs(v.deleted),
		MaxExt:  v.maxExt,
		DataMBB: v.dataMBB,
		Tau:     v.tau,
		Root:    encodeList(v.root),
		Stats:   ix.Stats(), // folds the atomic SharedQueries counter in
	}
	var hb bytes.Buffer
	if err := gob.NewEncoder(&hb).Encode(&head); err != nil {
		return fmt.Errorf("encoding quasii snapshot header: %w", err)
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(hb.Len()))
	if _, err := bw.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := bw.Write(hb.Bytes()); err != nil {
		return err
	}
	if err := v.table.WriteLanes(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// saveV1 writes the legacy single-gob format. It is kept (unexported) so
// tests can exercise the v1 load path and the v1→v2 migration without
// checked-in binary fixtures.
func (ix *Index) saveV1(w io.Writer) error {
	v := ix.live.Load()
	snap := snapshot{
		Version: snapshotVersion,
		Cfg:     ix.cfg,
		Data:    ix.data.Objects(make([]geom.Object, 0, ix.data.Len())),
		Pending: v.pending,
		Deleted: deletedIDs(v.deleted),
		MaxExt:  v.maxExt,
		DataMBB: v.dataMBB,
		Tau:     ix.tau,
		Root:    encodeList(ix.root),
		Stats:   ix.Stats(),
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reconstructs an index previously serialized with Save, accepting
// both the version-2 columnar format and legacy version-1 gob snapshots.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	peek, err := br.Peek(len(magicV2))
	if err == nil && string(peek) == magicV2 {
		return loadV2(br)
	}
	// Not a v2 magic (or too short to carry one): try the v1 gob stream.
	var snap snapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding quasii snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("unsupported quasii snapshot version %d", snap.Version)
	}
	return buildIndex(snap.Cfg, colstore.FromObjects(snap.Data), snap.Pending,
		snap.Deleted, snap.MaxExt, snap.DataMBB, snap.Tau, snap.Root, snap.Stats)
}

// loadV2 decodes the version-2 format after the magic has been peeked.
func loadV2(br *bufio.Reader) (*Index, error) {
	if _, err := br.Discard(len(magicV2)); err != nil {
		return nil, err
	}
	var lenBuf [8]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("reading quasii snapshot header length: %w", err)
	}
	hlen := binary.LittleEndian.Uint64(lenBuf[:])
	if hlen > maxHeaderBytes {
		return nil, fmt.Errorf("quasii snapshot header length %d out of range", hlen)
	}
	hb := make([]byte, int(hlen))
	if _, err := io.ReadFull(br, hb); err != nil {
		return nil, fmt.Errorf("reading quasii snapshot header: %w", err)
	}
	var head snapshotV2
	if err := gob.NewDecoder(bytes.NewReader(hb)).Decode(&head); err != nil {
		return nil, fmt.Errorf("decoding quasii snapshot header: %w", err)
	}
	if head.DataLen < 0 {
		return nil, fmt.Errorf("corrupt quasii snapshot: negative row count %d", head.DataLen)
	}
	data := &colstore.Table{}
	if err := data.ReadLanes(br, head.DataLen); err != nil {
		return nil, fmt.Errorf("decoding quasii snapshot lanes: %w", err)
	}
	if data.Len() != head.DataLen {
		return nil, fmt.Errorf("corrupt quasii snapshot: header says %d rows, lanes carry %d",
			head.DataLen, data.Len())
	}
	return buildIndex(head.Cfg, data, head.Pending, head.Deleted,
		head.MaxExt, head.DataMBB, head.Tau, head.Root, head.Stats)
}

// buildIndex reconstructs an Index from decoded snapshot fields (shared by
// both format versions) and validates its structural invariants.
func buildIndex(cfg Config, data *colstore.Table, pending []geom.Object, deleted []int32,
	maxExt geom.Point, dataMBB geom.Box, tau [geom.Dims]int, root *snapList, st Stats) (*Index, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	ix := &Index{
		cfg:       cfg,
		data:      data,
		tau:       tau,
		rng:       rand.New(rand.NewSource(seed)),
		noStats:   cfg.DisableStats,
		stats:     st,
		remCracks: -1,
		heatEvery: heatEveryFor(cfg),
	}
	// SharedQueries lives in an atomic counter outside the plain Stats block;
	// move the persisted value back home so Stats() keeps folding it in.
	ix.sharedQueries.Store(st.SharedQueries)
	ix.stats.SharedQueries = 0
	ix.root = ix.decodeList(root, 0)
	if ix.root == nil {
		ix.root = &sliceList{}
	}
	ix.initVersion(pending, deletedSet(deleted), maxExt, dataMBB)
	// Bounds-check every slice range before the structural invariant check,
	// which indexes into the data lanes and would panic on dangling ranges.
	if err := checkRanges(ix.root, ix.data.Len()); err != nil {
		return nil, fmt.Errorf("corrupt quasii snapshot: %w", err)
	}
	if err := ix.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("corrupt quasii snapshot: %w", err)
	}
	return ix, nil
}

func checkRanges(l *sliceList, n int) error {
	for _, s := range l.slices {
		if s.lo < 0 || s.hi < s.lo || s.hi > n {
			return fmt.Errorf("slice range [%d,%d) out of bounds for %d objects", s.lo, s.hi, n)
		}
		if s.children != nil {
			if err := checkRanges(s.children, n); err != nil {
				return err
			}
		}
	}
	return nil
}

func encodeList(l *sliceList) *snapList {
	if l == nil {
		return nil
	}
	out := &snapList{MaxExt: l.maxExt, Slices: make([]snapSlice, len(l.slices))}
	for i, s := range l.slices {
		out.Slices[i] = snapSlice{
			Lo: s.lo, Hi: s.hi, Box: s.box, Refined: s.refined,
			Children: encodeList(s.children),
		}
	}
	return out
}

func (ix *Index) decodeList(l *snapList, level int) *sliceList {
	if l == nil {
		return nil
	}
	out := &sliceList{maxExt: l.MaxExt, slices: make([]*slice, len(l.Slices))}
	for i, s := range l.Slices {
		n := ix.newSlice(level, s.Lo, s.Hi, s.Box)
		n.refined = s.Refined
		n.children = ix.decodeList(s.Children, level+1)
		out.slices[i] = n
	}
	return out
}

func deletedIDs(set map[int32]struct{}) []int32 {
	if len(set) == 0 {
		return nil
	}
	out := make([]int32, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

func deletedSet(ids []int32) map[int32]struct{} {
	if len(ids) == 0 {
		return nil
	}
	set := make(map[int32]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}
