// Index introspection: a read-only snapshot of the slice hierarchy with the
// sampled access-heat counters folded in. This is the observation layer under
// the serving stack's /debug/index and /debug/heat endpoints — the data that
// turns "slices_refined flattened at N" into "these tiles, these slices, this
// depth did the work". Inspect mutates nothing (it does not even tick the
// heat sampler), so it can run under a shard's read lock concurrently with
// shared-path queries; the heat counters it reads are atomics.

package core

import "repro/internal/geom"

// SliceReport is one node of the hierarchy snapshot. Ranges are data-array
// positions, exactly as the slice holds them.
type SliceReport struct {
	// Level is the hierarchy level: 0 = x, 1 = y, 2 = z.
	Level int `json:"level"`
	// Lo and Hi delimit the covered data range [Lo,Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Count is Hi-Lo, the number of objects under this slice.
	Count int `json:"count"`
	// Box is the slice's bounding box: the exact MBB once refined,
	// open-ended (±Inf in unsliced dimensions) before.
	Box geom.Box `json:"box"`
	// Refined reports whether the slice is final: at or below τ for its
	// level, carrying an exact MBB.
	Refined bool `json:"refined"`
	// Converged reports whether the whole subtree is final — every
	// descendant refined down to the bottom level. A query landing entirely
	// in converged subtrees stays on the shared read path.
	Converged bool `json:"converged"`
	// Heat is this node's own sampled touch counter; SubtreeHeat adds every
	// descendant's. Multiply by the sampling period for an estimate of real
	// touches.
	Heat        int64 `json:"heat"`
	SubtreeHeat int64 `json:"subtree_heat"`
	// ChildSlices counts direct children even when Children is truncated by
	// maxDepth.
	ChildSlices int `json:"child_slices"`
	// Children partition [Lo,Hi) at the next level, sorted by Lo. Omitted
	// beyond the requested depth; the aggregate fields above still cover the
	// full subtree.
	Children []SliceReport `json:"children,omitempty"`
}

// InspectReport is a point-in-time snapshot of the index structure.
type InspectReport struct {
	// Objects counts rows in the indexed data array (tombstoned rows
	// included until compaction); Pending and Deleted count unindexed
	// appends and tombstones.
	Objects int `json:"objects"`
	Pending int `json:"pending"`
	Deleted int `json:"deleted"`
	// Tau is the per-level refinement threshold vector (τ_x, τ_y, τ_z).
	Tau [geom.Dims]int `json:"tau"`
	// Epoch is the crack epoch at snapshot time; two snapshots with equal
	// epochs describe the identical structure.
	Epoch uint64 `json:"epoch"`
	// Converged mirrors Index.Converged: no pending inserts and every
	// materialized slice refined.
	Converged bool `json:"converged"`
	// Slices and SlicesRefined count materialized and refined nodes across
	// all levels — the structural census, not the cumulative Stats
	// counters (which survive restarts and count superseded nodes).
	Slices        int `json:"slices"`
	SlicesRefined int `json:"slices_refined"`
	// HeatSampleEvery is the resolved sampling period (0 when heat tracking
	// is disabled); TotalHeat and MaxHeat aggregate the counters across the
	// hierarchy.
	HeatSampleEvery int   `json:"heat_sample_every"`
	TotalHeat       int64 `json:"total_heat"`
	MaxHeat         int64 `json:"max_heat"`
	// Root holds the level-0 (x) slices.
	Root []SliceReport `json:"root,omitempty"`
}

// Inspect walks the hierarchy and returns its snapshot. maxDepth limits how
// many levels of Children the report materializes: 1 keeps only the level-0
// slices, 2 adds their children, and so on; values <= 0 or >= geom.Dims mean
// the full hierarchy. The walk always descends to the bottom regardless, so
// the per-node aggregates (SubtreeHeat, Converged, ChildSlices) and the
// top-level census are exact even in a truncated report.
//
// Inspect is read-only and does not perturb persistable state: Save before
// and after produce identical bytes. Callers must hold whatever lock guards
// the exclusive path (the shard layer's read lock suffices — the walk is
// structurally a shared-path reader).
func (ix *Index) Inspect(maxDepth int) InspectReport {
	if maxDepth <= 0 || maxDepth > geom.Dims {
		maxDepth = geom.Dims
	}
	v := ix.live.Load()
	rep := InspectReport{
		Objects:         ix.data.Len(),
		Pending:         len(v.pending),
		Deleted:         len(v.deleted),
		Tau:             ix.tau,
		Epoch:           ix.epoch.Load(),
		HeatSampleEvery: int(ix.heatEvery),
	}
	if ix.root != nil {
		rep.Root = ix.inspectList(ix.root, maxDepth, &rep)
	}
	rep.Converged = len(v.pending) == 0 && converged(rep.Root)
	return rep
}

// inspectList snapshots one sibling list, accumulating the census into rep.
func (ix *Index) inspectList(l *sliceList, maxDepth int, rep *InspectReport) []SliceReport {
	if len(l.slices) == 0 {
		return nil
	}
	out := make([]SliceReport, len(l.slices))
	for i, s := range l.slices {
		r := SliceReport{
			Level:   s.level,
			Lo:      s.lo,
			Hi:      s.hi,
			Count:   s.size(),
			Box:     s.box,
			Refined: s.refined,
			Heat:    s.heat.Load(),
		}
		rep.Slices++
		if s.refined {
			rep.SlicesRefined++
		}
		if r.Heat > rep.MaxHeat {
			rep.MaxHeat = r.Heat
		}
		rep.TotalHeat += r.Heat
		r.SubtreeHeat = r.Heat
		r.Converged = r.Refined && s.level == geom.Dims-1
		if s.children != nil {
			children := ix.inspectList(s.children, maxDepth, rep)
			r.ChildSlices = len(children)
			r.Converged = r.Refined && converged(children)
			for i := range children {
				r.SubtreeHeat += children[i].SubtreeHeat
			}
			if s.level+1 < maxDepth {
				r.Children = children
			}
		}
		out[i] = r
	}
	return out
}

// converged reports whether every report in the list covers a fully refined
// subtree. An empty list is vacuously converged (an empty index is).
func converged(list []SliceReport) bool {
	for i := range list {
		if !list[i].Converged {
			return false
		}
	}
	return true
}

// HeatByLevel buckets the snapshot's slice census and heat per hierarchy
// level — the index-side half of the serving layer's tile×depth heat grid.
// The returned arrays are indexed by level (0 = x .. geom.Dims-1 = z). It
// walks the materialized Children, so the grid is only complete for a
// full-depth snapshot (Inspect with maxDepth <= 0).
func (r *InspectReport) HeatByLevel() (slices, refined [geom.Dims]int, heat [geom.Dims]int64) {
	var walk func([]SliceReport)
	walk = func(list []SliceReport) {
		for i := range list {
			s := &list[i]
			if s.Level >= 0 && s.Level < geom.Dims {
				slices[s.Level]++
				if s.Refined {
					refined[s.Level]++
				}
				heat[s.Level] += s.Heat
			}
			walk(s.Children)
		}
	}
	walk(r.Root)
	return
}
