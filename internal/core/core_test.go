package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

// sortedIDs normalizes a result set for comparison.
func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyIndex(t *testing.T) {
	ix := New(nil, Config{})
	res := ix.Query(geom.Box{Min: geom.Point{0, 0, 0}, Max: geom.Point{1, 1, 1}}, nil)
	if len(res) != 0 {
		t.Fatalf("empty index returned %d results", len(res))
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleObject(t *testing.T) {
	data := []geom.Object{{Box: geom.Box{Min: geom.Point{1, 1, 1}, Max: geom.Point{2, 2, 2}}, ID: 7}}
	ix := New(data, Config{Tau: 4})
	hit := ix.Query(geom.Box{Min: geom.Point{0, 0, 0}, Max: geom.Point{3, 3, 3}}, nil)
	if len(hit) != 1 || hit[0] != 7 {
		t.Fatalf("hit = %v, want [7]", hit)
	}
	miss := ix.Query(geom.Box{Min: geom.Point{5, 5, 5}, Max: geom.Point{6, 6, 6}}, nil)
	if len(miss) != 0 {
		t.Fatalf("miss = %v, want []", miss)
	}
}

func TestEmptyQueryBox(t *testing.T) {
	data := dataset.Uniform(100, 1)
	ix := New(data, Config{})
	q := geom.Box{Min: geom.Point{5, 5, 5}, Max: geom.Point{1, 1, 1}} // inverted
	if res := ix.Query(q, nil); len(res) != 0 {
		t.Fatalf("inverted query returned %d results", len(res))
	}
}

func TestQueryOutsideUniverse(t *testing.T) {
	data := dataset.Uniform(500, 2)
	ix := New(dataset.Clone(data), Config{Tau: 16})
	q := geom.Box{Min: geom.Point{-5000, -5000, -5000}, Max: geom.Point{-1000, -1000, -1000}}
	if res := ix.Query(q, nil); len(res) != 0 {
		t.Fatalf("out-of-universe query returned %d results", len(res))
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCoveringUniverse(t *testing.T) {
	data := dataset.Uniform(2000, 3)
	ix := New(dataset.Clone(data), Config{Tau: 16})
	q := dataset.Universe()
	res := ix.Query(q, nil)
	if len(res) != len(data) {
		t.Fatalf("universe query returned %d of %d objects", len(res), len(data))
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// runEquivalence drives the same query sequence through QUASII and Scan and
// requires identical result sets after every query, checking structural
// invariants along the way.
func runEquivalence(t *testing.T, data []geom.Object, queries []geom.Box, cfg Config) {
	t.Helper()
	oracle := scan.New(data)
	ix := New(dataset.Clone(data), cfg)
	var got, want []int32
	for qi, q := range queries {
		got = ix.Query(q, got[:0])
		want = oracle.Query(q, want[:0])
		if !equalIDs(sortedIDs(got), sortedIDs(want)) {
			t.Fatalf("query %d (%v): got %d results, scan %d", qi, q, len(got), len(want))
		}
		if qi%25 == 0 {
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("after query %d: %v", qi, err)
			}
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalenceUniformData(t *testing.T) {
	data := dataset.Uniform(5000, 11)
	queries := workload.Uniform(dataset.Universe(), 150, 1e-3, 12)
	runEquivalence(t, data, queries, Config{Tau: 32})
}

func TestEquivalenceClusteredWorkload(t *testing.T) {
	data := dataset.Neuro(5000, 13, dataset.NeuroConfig{})
	queries := workload.ClusteredOn(dataset.Universe(), data, 5, 30, 1e-4, 200, 14)
	runEquivalence(t, data, queries, Config{Tau: 32})
}

func TestEquivalenceHighSelectivity(t *testing.T) {
	data := dataset.Uniform(3000, 15)
	queries := workload.Uniform(dataset.Universe(), 40, 0.1, 16) // 10% queries
	runEquivalence(t, data, queries, Config{Tau: 32})
}

func TestEquivalenceCenterAssignment(t *testing.T) {
	data := dataset.Uniform(3000, 17)
	queries := workload.Uniform(dataset.Universe(), 100, 1e-3, 18)
	runEquivalence(t, data, queries, Config{Tau: 32, Assign: AssignCenter})
}

func TestEquivalenceNoArtificialRefinement(t *testing.T) {
	data := dataset.Uniform(3000, 19)
	queries := workload.Uniform(dataset.Universe(), 100, 1e-3, 20)
	runEquivalence(t, data, queries, Config{Tau: 32, DisableArtificial: true})
}

func TestEquivalenceTinyTau(t *testing.T) {
	data := dataset.Uniform(1000, 21)
	queries := workload.Uniform(dataset.Universe(), 80, 1e-2, 22)
	runEquivalence(t, data, queries, Config{Tau: 1})
}

func TestEquivalenceLargeObjects(t *testing.T) {
	// Boxes with corners anywhere in the universe: extreme extents stress the
	// query-extension logic.
	data := dataset.RandomBoxes(1500, 23, dataset.Universe())
	queries := workload.Uniform(dataset.Universe(), 80, 1e-3, 24)
	runEquivalence(t, data, queries, Config{Tau: 16})
}

func TestEquivalenceDuplicatePoints(t *testing.T) {
	// All objects identical: slices cannot be split spatially; the degenerate
	// guard must terminate refinement.
	b := geom.Box{Min: geom.Point{100, 100, 100}, Max: geom.Point{101, 101, 101}}
	data := make([]geom.Object, 500)
	for i := range data {
		data[i] = geom.Object{Box: b, ID: int32(i)}
	}
	queries := []geom.Box{
		{Min: geom.Point{0, 0, 0}, Max: geom.Point{200, 200, 200}},
		{Min: geom.Point{100.5, 100.5, 100.5}, Max: geom.Point{102, 102, 102}},
		{Min: geom.Point{0, 0, 0}, Max: geom.Point{50, 50, 50}},
	}
	runEquivalence(t, data, queries, Config{Tau: 8})
}

func TestEquivalenceZeroExtentObjects(t *testing.T) {
	// Point objects (zero extent in every dimension).
	rng := rand.New(rand.NewSource(25))
	data := make([]geom.Object, 2000)
	for i := range data {
		var p geom.Point
		for d := 0; d < geom.Dims; d++ {
			p[d] = rng.Float64() * 1000
		}
		data[i] = geom.Object{Box: geom.Box{Min: p, Max: p}, ID: int32(i)}
	}
	universe := geom.Box{Max: geom.Point{1000, 1000, 1000}}
	queries := workload.Uniform(universe, 100, 1e-2, 26)
	runEquivalence(t, data, queries, Config{Tau: 16})
}

func TestRepeatedIdenticalQueries(t *testing.T) {
	data := dataset.Uniform(4000, 27)
	q := workload.Uniform(dataset.Universe(), 1, 1e-3, 28)[0]
	oracle := scan.New(data)
	want := sortedIDs(oracle.Query(q, nil))
	ix := New(dataset.Clone(data), Config{Tau: 32})
	for i := 0; i < 10; i++ {
		got := sortedIDs(ix.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("iteration %d: got %d results, want %d", i, len(got), len(want))
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceRefinesTowardTau(t *testing.T) {
	data := dataset.Uniform(20000, 29)
	ix := New(dataset.Clone(data), Config{Tau: 60})
	queries := workload.Uniform(dataset.Universe(), 300, 1e-2, 30)
	for _, q := range queries {
		ix.Query(q, nil)
	}
	if ix.NumSlices() < 10 {
		t.Fatalf("expected substantial refinement, got %d slices", ix.NumSlices())
	}
	st := ix.Stats()
	if st.Cracks == 0 || st.SlicesCreated == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

func TestCrackingWorkDecreases(t *testing.T) {
	// The amount of data reorganized per query must shrink as the index
	// converges — QUASII's core claim.
	data := dataset.Uniform(30000, 31)
	ix := New(dataset.Clone(data), Config{})
	queries := workload.Uniform(dataset.Universe(), 200, 1e-3, 32)
	var firstWork, lastWork int64
	for i, q := range queries {
		before := ix.Stats().CrackedObjects
		ix.Query(q, nil)
		work := ix.Stats().CrackedObjects - before
		if i == 0 {
			firstWork = work
		}
		if i == len(queries)-1 {
			lastWork = work
		}
	}
	if firstWork == 0 {
		t.Fatal("first query should crack data")
	}
	if lastWork*4 > firstWork {
		t.Fatalf("cracking work did not decrease: first=%d last=%d", firstWork, lastWork)
	}
}

func TestTauLevels(t *testing.T) {
	data := dataset.Uniform(100000, 33)
	ix := New(data, Config{Tau: 60})
	// r = ceil((100000/60)^(1/3)) = ceil(11.86) = 12.
	if got := ix.Tau(2); got != 60 {
		t.Errorf("tau_z = %d, want 60", got)
	}
	if got := ix.Tau(1); got != 720 {
		t.Errorf("tau_y = %d, want 720", got)
	}
	if got := ix.Tau(0); got != 8640 {
		t.Errorf("tau_x = %d, want 8640", got)
	}
}

func TestTauDefault(t *testing.T) {
	ix := New(dataset.Uniform(100, 34), Config{})
	if ix.Tau(geom.Dims-1) != DefaultTau {
		t.Fatalf("default tau = %d, want %d", ix.Tau(geom.Dims-1), DefaultTau)
	}
}

func TestCountMatchesQuery(t *testing.T) {
	data := dataset.Uniform(2000, 35)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	q := workload.Uniform(dataset.Universe(), 1, 1e-2, 36)[0]
	want := len(ix.Query(q, nil))
	ix2 := New(dataset.Clone(data), Config{Tau: 32})
	if got := ix2.Count(q); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

// Property test: for random small datasets and random query sequences, QUASII
// and Scan agree and invariants hold. testing/quick drives the seeds.
func TestEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		data := dataset.RandomBoxes(n, seed, geom.Box{Max: geom.Point{500, 500, 500}})
		// Shrink most boxes so results are selective.
		for i := range data {
			for d := 0; d < geom.Dims; d++ {
				if data[i].Max[d]-data[i].Min[d] > 50 {
					data[i].Max[d] = data[i].Min[d] + 50
				}
			}
		}
		oracle := scan.New(data)
		ix := New(dataset.Clone(data), Config{Tau: 1 + rng.Intn(20)})
		for qi := 0; qi < 30; qi++ {
			var a, b geom.Point
			for d := 0; d < geom.Dims; d++ {
				a[d] = rng.Float64() * 500
				b[d] = a[d] + rng.Float64()*100
			}
			q := geom.Box{Min: a, Max: b}
			got := sortedIDs(ix.Query(q, nil))
			want := sortedIDs(oracle.Query(q, nil))
			if !equalIDs(got, want) {
				t.Logf("seed %d query %d: got %d want %d", seed, qi, len(got), len(want))
				return false
			}
		}
		return ix.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsMonotone(t *testing.T) {
	data := dataset.Uniform(5000, 37)
	ix := New(dataset.Clone(data), Config{})
	queries := workload.Uniform(dataset.Universe(), 50, 1e-3, 38)
	var prev Stats
	for _, q := range queries {
		ix.Query(q, nil)
		st := ix.Stats()
		if st.Queries <= prev.Queries || st.Cracks < prev.Cracks ||
			st.ObjectsTested < prev.ObjectsTested || st.SlicesCreated < prev.SlicesCreated {
			t.Fatalf("stats not monotone: %+v -> %+v", prev, st)
		}
		prev = st
	}
	if prev.Queries != len(queries) {
		t.Fatalf("Queries = %d, want %d", prev.Queries, len(queries))
	}
}

func TestEquivalenceUpperAssignment(t *testing.T) {
	data := dataset.Uniform(3000, 61)
	queries := workload.Uniform(dataset.Universe(), 100, 1e-3, 62)
	runEquivalence(t, data, queries, Config{Tau: 32, Assign: AssignUpper})
}

func TestEquivalenceUpperAssignmentLargeObjects(t *testing.T) {
	data := dataset.RandomBoxes(1500, 63, dataset.Universe())
	queries := workload.Uniform(dataset.Universe(), 60, 1e-3, 64)
	runEquivalence(t, data, queries, Config{Tau: 16, Assign: AssignUpper})
}

func knnBrute(data []geom.Object, p geom.Point, k int) []Neighbor {
	nn := make([]Neighbor, len(data))
	for i := range data {
		nn[i] = Neighbor{ID: data[i].ID, DistSq: data[i].MinDistSq(p)}
	}
	sort.Slice(nn, func(i, j int) bool {
		if nn[i].DistSq != nn[j].DistSq {
			return nn[i].DistSq < nn[j].DistSq
		}
		return nn[i].ID < nn[j].ID
	})
	if k > len(nn) {
		k = len(nn)
	}
	return nn[:k]
}

func TestKNNMatchesBruteForce(t *testing.T) {
	data := dataset.Uniform(4000, 65)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	queries := workload.Uniform(dataset.Universe(), 25, 1e-3, 66)
	for qi, q := range queries {
		p := q.Center()
		got := ix.KNN(p, 10)
		want := knnBrute(data, p, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d neighbors, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].DistSq != want[i].DistSq {
				t.Fatalf("query %d neighbor %d: dist %g, want %g", qi, i, got[i].DistSq, want[i].DistSq)
			}
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKNNRefinesIndex(t *testing.T) {
	data := dataset.Uniform(20000, 67)
	ix := New(dataset.Clone(data), Config{})
	before := ix.NumSlices()
	ix.KNN(geom.Point{5000, 5000, 5000}, 10)
	if ix.NumSlices() <= before {
		t.Fatal("KNN should refine the index as a side effect")
	}
}

func TestKNNEdgeCases(t *testing.T) {
	data := dataset.Uniform(50, 68)
	ix := New(dataset.Clone(data), Config{Tau: 8})
	if nn := ix.KNN(geom.Point{0, 0, 0}, 0); nn != nil {
		t.Fatalf("k=0 should return nil, got %v", nn)
	}
	if nn := ix.KNN(geom.Point{0, 0, 0}, 500); len(nn) != 50 {
		t.Fatalf("k>n should return all %d, got %d", 50, len(nn))
	}
	empty := New(nil, Config{})
	if nn := empty.KNN(geom.Point{0, 0, 0}, 5); nn != nil {
		t.Fatalf("empty index KNN = %v", nn)
	}
	// Probe far outside the universe.
	far := ix.KNN(geom.Point{1e6, 1e6, 1e6}, 3)
	want := knnBrute(data, geom.Point{1e6, 1e6, 1e6}, 3)
	if len(far) != 3 || far[0].DistSq != want[0].DistSq {
		t.Fatalf("far probe: got %v, want %v", far, want)
	}
}

func TestQueryPositionsStableWithinCall(t *testing.T) {
	// Query's ID translation relies on collected positions staying valid for
	// the duration of the call; a query spanning many slices exercises it.
	data := dataset.Uniform(20000, 69)
	oracle := scan.New(data)
	ix := New(dataset.Clone(data), Config{Tau: 16})
	q := workload.Uniform(dataset.Universe(), 1, 0.3, 70)[0] // 30% of the universe
	got := sortedIDs(ix.Query(q, nil))
	want := sortedIDs(oracle.Query(q, nil))
	if !equalIDs(got, want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
}
