package core

// Microbenchmarks for the three hot kernels of the query path: the cracking
// partition pass, the bottom-level slice scan, and end-to-end queries on a
// fully converged index. They exist so layout changes (AoS vs SoA) and
// allocation regressions are measurable in isolation; CI runs them as a
// smoke and BENCH_PR3.json records the before/after comparison.

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

// resetData restores the index's data lanes to the master ordering so every
// partition pass starts from the same (unsorted) state.
func (ix *Index) resetData(master []geom.Object) {
	ix.data.Reload(master)
}

// BenchmarkPartition measures one two-way crack pass over 1M objects —
// the kernel every query-driven refinement runs, dominated by the key scan,
// the element swaps, and the per-band bounds tracking.
func BenchmarkPartition(b *testing.B) {
	const n = 1 << 20
	master := dataset.Uniform(n, 42)
	ix := New(dataset.Clone(master), Config{})
	pivot := dataset.UniverseSide / 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix.resetData(master)
		b.StartTimer()
		mid, _, _ := ix.partition(0, n, 0, pivot)
		if mid <= 0 || mid >= n {
			b.Fatalf("degenerate partition at %d", mid)
		}
	}
}

// BenchmarkScanSlice measures the bottom-level interval filter over a large
// contiguous range — the per-object intersection test every query pays in
// each leaf slice it overlaps.
func BenchmarkScanSlice(b *testing.B) {
	const n = 1 << 17
	data := dataset.Uniform(n, 43)
	ix := New(data, Config{})
	s := &slice{level: geom.Dims - 1, lo: 0, hi: n, box: geom.UniverseBox()}
	q := workload.Uniform(dataset.Universe(), 1, 0.01, 44)[0]
	var out []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = ix.scanSlice(s, q, out[:0])
	}
	if len(out) == 0 {
		b.Fatal("query matched nothing")
	}
}

// BenchmarkQueryConverged measures steady-state queries against a fully
// refined index — the regime the serving layer lives in, where the R-tree
// comparison of the paper applies and allocations per query should be zero.
func BenchmarkQueryConverged(b *testing.B) {
	const n = 200_000
	data := dataset.Uniform(n, 45)
	ix := New(data, Config{})
	ix.Complete()
	queries := workload.Uniform(dataset.Universe(), 1024, 1e-4, 46)
	var out []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = ix.Query(queries[i%len(queries)], out[:0])
	}
}

// BenchmarkQueryConvergedHeat is BenchmarkQueryConverged with access-heat
// tracking at its default sampling rate — the pair quantifies the cost of
// the introspection layer on the hot path (budget: within 3%, 0 allocs/op).
func BenchmarkQueryConvergedHeat(b *testing.B) {
	const n = 200_000
	data := dataset.Uniform(n, 45)
	ix := New(data, Config{HeatSampleEvery: DefaultHeatSampleEvery})
	ix.Complete()
	queries := workload.Uniform(dataset.Universe(), 1024, 1e-4, 46)
	var out []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = ix.Query(queries[i%len(queries)], out[:0])
	}
}

// BenchmarkQueryCrackHeavy measures the adaptive regime: a burst of queries
// against a fresh index, dominated by cracking rather than scanning.
func BenchmarkQueryCrackHeavy(b *testing.B) {
	const n = 1 << 18
	master := dataset.Uniform(n, 47)
	queries := workload.Uniform(dataset.Universe(), 64, 1e-3, 48)
	var out []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix := New(dataset.Clone(master), Config{})
		b.StartTimer()
		for _, q := range queries {
			out = ix.Query(q, out[:0])
		}
	}
}
