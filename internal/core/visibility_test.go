// The version-visibility harness: every read must see exactly the writes
// published at or before its pin, across cracks, checkpoints, flushes and
// concurrent load. Three layers of attack:
//
//   - A deterministic script runner interleaves inserts, shared and
//     exclusive deletes, cracking queries, shared queries, flushes and
//     checkpoint-style pins against a map oracle, auditing every pinned
//     version both structurally (lanes + pending minus tombstones) and
//     through the pinned query walk, and round-tripping pinned versions
//     through SaveVersion/Load to prove a checkpoint recovers the pinned
//     state, not the live one.
//   - A concurrent test runs writers, pinned readers and an exclusive
//     cracker/flusher under the shard-style RWMutex discipline, logging the
//     publishing sequence of every acked write; afterwards each read's
//     snapshot is replayed against the log — the visible set at pin seq S
//     must be exactly {inserts ≤ S} minus {deletes ≤ S}.
//   - FuzzVersionVisibility feeds the script runner fuzzer-chosen seeds,
//     lengths, τ and assignment modes.

package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// visibleIDs computes a version's visible set structurally: lane membership
// plus pending entries, minus tombstones. Lane membership is stable under
// the shared lock even while cracking reorders rows, so this is the ground
// truth a pinned reader must observe.
func visibleIDs(v *Version) []int32 {
	ids := make([]int32, 0, v.table.Len()+len(v.pending))
	for i := 0; i < v.table.Len(); i++ {
		id := v.table.ID[i]
		if _, dead := v.deleted[id]; !dead {
			ids = append(ids, id)
		}
	}
	for i := range v.pending {
		if _, dead := v.deleted[v.pending[i].ID]; !dead {
			ids = append(ids, v.pending[i].ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func genVisObjects(rng *rand.Rand, n int, firstID int32) []geom.Object {
	objs := make([]geom.Object, n)
	for i := range objs {
		var min, max geom.Point
		for d := 0; d < geom.Dims; d++ {
			min[d] = rng.Float64() * 1000
			max[d] = min[d] + rng.Float64()*rng.Float64()*200
		}
		objs[i] = geom.Object{Box: geom.Box{Min: min, Max: max}, ID: firstID + int32(i)}
	}
	return objs
}

func randVisBox(rng *rand.Rand) geom.Box {
	var a, b geom.Point
	for d := 0; d < geom.Dims; d++ {
		a[d] = rng.Float64()*1200 - 100
		b[d] = a[d] + rng.Float64()*300
	}
	return geom.Box{Min: a, Max: b}
}

func oracleQueryIDs(oracle map[int32]geom.Object, q geom.Box) []int32 {
	ids := make([]int32, 0, len(oracle))
	for id, o := range oracle {
		if o.Intersects(q) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func oracleAllIDs(oracle map[int32]geom.Object) []int32 {
	ids := make([]int32, 0, len(oracle))
	for id := range oracle {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func cloneOracle(oracle map[int32]geom.Object) map[int32]geom.Object {
	c := make(map[int32]geom.Object, len(oracle))
	for id, o := range oracle {
		c[id] = o
	}
	return c
}

// auditPin verifies a pinned version against the oracle captured at pin
// time: the structural visible set must match exactly, and whenever the
// pinned query walk can answer (the touched region is refined), its answer
// must match too — for the universe and for random boxes.
func auditPin(t *testing.T, rng *rand.Rand, ix *Index, v *Version, want map[int32]geom.Object, step int) {
	t.Helper()
	wantIDs := oracleAllIDs(want)
	if got := visibleIDs(v); !equalIDs(got, wantIDs) {
		t.Fatalf("step %d: pinned version seq %d sees %d ids, oracle has %d",
			step, v.Seq(), len(got), len(wantIDs))
	}
	if got, ok := ix.queryAtVersion(v, geom.UniverseBox(), nil); ok {
		if !equalIDs(sortedIDs(got), wantIDs) {
			t.Fatalf("step %d: pinned universe query at seq %d returned %d ids, oracle has %d",
				step, v.Seq(), len(got), len(wantIDs))
		}
	}
	for i := 0; i < 3; i++ {
		q := randVisBox(rng)
		got, ok := ix.queryAtVersion(v, q, nil)
		if !ok {
			continue // region still unrefined: the exclusive path owns it
		}
		if want := oracleQueryIDs(want, q); !equalIDs(sortedIDs(got), want) {
			t.Fatalf("step %d: pinned box query at seq %d returned %d ids, oracle says %d",
				step, v.Seq(), len(got), len(want))
		}
	}
}

// runVisibilityScript is the deterministic interleaving harness shared by
// the table test and the fuzz target.
func runVisibilityScript(t *testing.T, seed int64, steps, tau int, assign AssignMode) {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(200) + 50
	data := genVisObjects(rng, n, 0)
	oracle := make(map[int32]geom.Object, n)
	for _, o := range data {
		oracle[o.ID] = o
	}
	ix := New(dataset.Clone(data), Config{Tau: tau, Assign: assign, Seed: seed})
	nextID := int32(n)
	lastSeq := ix.DataVersion()

	type pinRec struct {
		v    *Version
		want map[int32]geom.Object
	}
	var pins []pinRec

	for step := 0; step < steps; step++ {
		switch r := rng.Intn(100); {
		case r < 25: // insert a batch through the versioned writer
			k := rng.Intn(3) + 1
			objs := genVisObjects(rng, k, nextID)
			nextID += int32(k)
			seq := ix.AppendVersioned(objs...)
			if seq <= lastSeq {
				t.Fatalf("step %d: append published seq %d after %d", step, seq, lastSeq)
			}
			lastSeq = seq
			for _, o := range objs {
				oracle[o.ID] = o
			}
		case r < 40: // delete a live object, shared path with escalation
			ids := oracleAllIDs(oracle)
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			hint := oracle[id].Box
			seq, found, ok := ix.deleteSharedSeq(id, hint)
			if !ok {
				// Unrefined region: escalate to the exclusive path, exactly
				// like the shard layer does.
				found = ix.Delete(id, hint)
				seq = ix.DataVersion()
			}
			if !found {
				t.Fatalf("step %d: live id %d not found by delete", step, id)
			}
			if seq <= lastSeq {
				t.Fatalf("step %d: delete published seq %d after %d", step, seq, lastSeq)
			}
			lastSeq = seq
			delete(oracle, id)
		case r < 58: // cracking query: refines and must match the oracle
			q := randVisBox(rng)
			got := sortedIDs(ix.Query(q, nil))
			if want := oracleQueryIDs(oracle, q); !equalIDs(got, want) {
				t.Fatalf("step %d: cracking query got %d ids, want %d", step, len(got), len(want))
			}
		case r < 72: // shared query: when it answers, it answers exactly
			q := randVisBox(rng)
			got, ok := ix.QueryShared(q, nil)
			if ok {
				if want := oracleQueryIDs(oracle, q); !equalIDs(sortedIDs(got), want) {
					t.Fatalf("step %d: shared query got %d ids, want %d", step, len(got), len(want))
				}
			}
		case r < 80: // flush: folds deltas, restarts refinement, bumps seq
			ix.Flush()
			lastSeq = ix.DataVersion()
		case r < 92: // checkpoint start: pin the live version, freeze the oracle
			pins = append(pins, pinRec{ix.PinVersion(), cloneOracle(oracle)})
		default: // checkpoint body: audit, serialize, recover, compare, release
			if len(pins) == 0 {
				continue
			}
			i := rng.Intn(len(pins))
			p := pins[i]
			auditPin(t, rng, ix, p.v, p.want, step)
			var buf bytes.Buffer
			if err := ix.SaveVersion(&buf, p.v); err != nil {
				t.Fatalf("step %d: SaveVersion: %v", step, err)
			}
			re, err := Load(&buf)
			if err != nil {
				t.Fatalf("step %d: Load: %v", step, err)
			}
			got := sortedIDs(re.Query(geom.UniverseBox(), nil))
			if want := oracleAllIDs(p.want); !equalIDs(got, want) {
				t.Fatalf("step %d: recovered checkpoint has %d ids, pinned oracle has %d",
					step, len(got), len(want))
			}
			p.v.Release()
			pins = append(pins[:i], pins[i+1:]...)
		}
	}

	// Drain outstanding pins with a final audit each: a pin taken 300 steps
	// ago must still see exactly its own oracle.
	for _, p := range pins {
		auditPin(t, rng, ix, p.v, p.want, steps)
		p.v.Release()
	}
	if lv := ix.LiveVersions(); lv != 1 {
		t.Fatalf("live versions after releasing all pins = %d, want 1 (leaked version)", lv)
	}
	got := sortedIDs(ix.Query(geom.UniverseBox(), nil))
	if want := oracleAllIDs(oracle); !equalIDs(got, want) {
		t.Fatalf("final state has %d ids, oracle has %d", len(got), len(want))
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestVersionAccessors pins a version mid-delta and checks the exported
// view of its state: delta sizes, the public DeleteShared wrapper, and the
// live head the accessors read through.
func TestVersionAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix := New(genVisObjects(rng, 50, 0), Config{Tau: 8})
	pendingObjs := genVisObjects(rng, 3, 100)
	ix.AppendVersioned(pendingObjs...)
	if found, ok := ix.DeleteShared(pendingObjs[0].ID, pendingObjs[0].Box); !found || !ok {
		t.Fatalf("DeleteShared(pending) = (%v, %v), want (true, true)", found, ok)
	}
	v := ix.PinVersion()
	defer v.Release()
	if v != ix.liveVersion() {
		t.Fatal("PinVersion did not return the live head")
	}
	if v.PendingLen() != 3 {
		t.Fatalf("PendingLen = %d, want 3 (tombstoned pending entries stay until Flush)", v.PendingLen())
	}
	if v.DeletedLen() != 1 {
		t.Fatalf("DeletedLen = %d, want 1", v.DeletedLen())
	}
	if found, ok := ix.DeleteShared(pendingObjs[0].ID, pendingObjs[0].Box); found || !ok {
		t.Fatalf("double DeleteShared = (%v, %v), want (false, true)", found, ok)
	}
}

func TestVersionVisibilityScript(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runVisibilityScript(t, seed, 400, int(seed%50)+4, AssignMode(seed%3))
		})
	}
}

// FuzzVersionVisibility explores random interleavings of
// insert/delete/query/checkpoint/crack/flush steps against the snapshot
// oracle. Run `go test -fuzz=FuzzVersionVisibility ./internal/core` to go
// beyond the seed corpus.
func FuzzVersionVisibility(f *testing.F) {
	f.Add(int64(1), 100, 8, uint8(0))
	f.Add(int64(2), 300, 1, uint8(1))
	f.Add(int64(3), 50, 60, uint8(2))
	f.Add(int64(4), 250, 16, uint8(0))

	f.Fuzz(func(t *testing.T, seed int64, steps, tau int, mode uint8) {
		if steps < 0 {
			steps = -steps
		}
		steps = steps%400 + 20
		if tau < 1 {
			tau = 1
		}
		tau = tau%200 + 1
		runVisibilityScript(t, seed, steps, tau, AssignMode(mode%3))
	})
}

// TestVersionVisibilityConcurrent runs versioned writers, pinned readers
// and an exclusive cracker/flusher under the shard-style RWMutex
// discipline. Every write logs the sequence number its publish returned;
// every read records the pinned seq and the visible set it observed. The
// replay then holds each read to the exact standard: visible(S) ==
// {initial} ∪ {inserts ≤ S} \ {deletes ≤ S}.
func TestVersionVisibilityConcurrent(t *testing.T) {
	const (
		writers      = 4
		readers      = 4
		opsPerWriter = 250
		readsPerGo   = 150
	)
	rng := rand.New(rand.NewSource(99))
	initial := genVisObjects(rng, 200, 0)
	ix := New(dataset.Clone(initial), Config{Tau: 16})
	// Pre-crack so a good fraction of pinned query walks can answer.
	for i := 0; i < 40; i++ {
		ix.Query(randVisBox(rng), nil)
	}

	var mu sync.RWMutex // plays the shard's per-shard RWMutex
	type opRec struct {
		seq uint64
		id  int32
		del bool
	}
	type readRec struct {
		seq uint64
		ids []int32
	}
	var logMu sync.Mutex
	oplog := make([]opRec, 0, writers*opsPerWriter)
	reads := make([]readRec, 0, readers*readsPerGo)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			base := int32(10000 * (w + 1)) // private ID range per writer
			var mine []geom.Object
			next := base
			for i := 0; i < opsPerWriter; i++ {
				if rng.Intn(3) != 0 || len(mine) == 0 {
					o := genVisObjects(rng, 1, next)[0]
					next++
					mu.RLock()
					seq := ix.AppendVersioned(o)
					mu.RUnlock()
					logMu.Lock()
					oplog = append(oplog, opRec{seq, o.ID, false})
					logMu.Unlock()
					mine = append(mine, o)
				} else {
					j := rng.Intn(len(mine))
					o := mine[j]
					mu.RLock()
					seq, found, ok := ix.deleteSharedSeq(o.ID, o.Box)
					mu.RUnlock()
					if !ok {
						mu.Lock()
						found = ix.Delete(o.ID, o.Box)
						seq = ix.DataVersion()
						mu.Unlock()
					}
					if !found {
						t.Errorf("writer %d: own live id %d not found by delete", w, o.ID)
						return
					}
					logMu.Lock()
					oplog = append(oplog, opRec{seq, o.ID, true})
					logMu.Unlock()
					mine = append(mine[:j], mine[j+1:]...)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			local := make([]readRec, 0, readsPerGo)
			for i := 0; i < readsPerGo; i++ {
				mu.RLock()
				v := ix.PinVersion()
				ids := visibleIDs(v)
				// The pinned query walk, raced against live writers, must
				// agree with the structural set whenever it can answer.
				if q, ok := ix.queryAtVersion(v, geom.UniverseBox(), nil); ok {
					if !equalIDs(sortedIDs(q), ids) {
						t.Errorf("reader %d: pinned walk at seq %d returned %d ids, structural set has %d",
							r, v.Seq(), len(q), len(ids))
					}
				}
				v.Release()
				mu.RUnlock()
				local = append(local, readRec{v.Seq(), ids})
			}
			logMu.Lock()
			reads = append(reads, local...)
			logMu.Unlock()
		}(r)
	}
	wg.Add(1)
	go func() { // the exclusive path: cracking queries and flushes
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 120; i++ {
			mu.Lock()
			if i%29 == 28 {
				ix.Flush()
			} else {
				ix.Query(randVisBox(rng), nil)
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Replay: each publish got a unique sequence, so sorting the log by seq
	// reconstructs the exact write history.
	sort.Slice(oplog, func(i, j int) bool { return oplog[i].seq < oplog[j].seq })
	for i := 1; i < len(oplog); i++ {
		if oplog[i].seq == oplog[i-1].seq {
			t.Fatalf("two writes published the same seq %d", oplog[i].seq)
		}
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i].seq < reads[j].seq })
	oracle := make(map[int32]struct{}, len(initial))
	for _, o := range initial {
		oracle[o.ID] = struct{}{}
	}
	next := 0
	for _, rd := range reads {
		for next < len(oplog) && oplog[next].seq <= rd.seq {
			if oplog[next].del {
				delete(oracle, oplog[next].id)
			} else {
				oracle[oplog[next].id] = struct{}{}
			}
			next++
		}
		want := make([]int32, 0, len(oracle))
		for id := range oracle {
			want = append(want, id)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !equalIDs(rd.ids, want) {
			t.Fatalf("read pinned at seq %d saw %d ids, oracle replay says %d",
				rd.seq, len(rd.ids), len(want))
		}
	}

	if lv := ix.LiveVersions(); lv != 1 {
		t.Fatalf("live versions after quiescence = %d, want 1", lv)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
