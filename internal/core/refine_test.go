package core

// White-box tests of Algorithm 2's slicing decisions: three-way when both
// query bounds fall inside a slice, two-way when one does, artificial
// midpoint split when the query contains the slice, and the τ-driven
// finalization rules.

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// lineData places n unit boxes at x = 0..n-1 (y, z fixed) so crack positions
// are exactly predictable.
func lineData(n int) []geom.Object {
	data := make([]geom.Object, n)
	for i := range data {
		x := float64(i)
		data[i] = geom.Object{
			Box: geom.Box{Min: geom.Point{x, 0, 0}, Max: geom.Point{x + 0.5, 1, 1}},
			ID:  int32(i),
		}
	}
	return data
}

// rootSlices returns the x-level slice ranges after the given queries.
func rootSlices(ix *Index) [][2]int {
	var out [][2]int
	for _, s := range ix.root.slices {
		out = append(out, [2]int{s.lo, s.hi})
	}
	return out
}

func TestThreeWaySliceWhenQueryInterior(t *testing.T) {
	// 100 objects, query x in [30.2, 39.8]: both bounds interior. τ = 20
	// gives τ_x = 80, so the initial slice cracks but none of the three
	// resulting bands (30, 10, 60 objects) triggers artificial refinement:
	// exactly [0,30), [30,40), [40,100) — the extended lower bound is 29.7
	// (max extent 0.5), so objects 30..39 sit in the middle band.
	data := lineData(100)
	ix := New(data, Config{Tau: 20})
	q := geom.Box{Min: geom.Point{30.2, 0, 0}, Max: geom.Point{39.8, 1, 1}}
	ix.Query(q, nil)
	got := rootSlices(ix)
	if len(got) != 3 {
		t.Fatalf("root slices = %v, want 3 bands", got)
	}
	if got[0] != [2]int{0, 30} || got[1] != [2]int{30, 40} || got[2] != [2]int{40, 100} {
		t.Fatalf("bands = %v, want [0,30) [30,40) [40,100)", got)
	}
}

func TestTwoWaySliceWhenOneBoundInterior(t *testing.T) {
	// Query from before the data to x=49.8: only the upper bound interior.
	data := lineData(100)
	ix := New(data, Config{Tau: 20})
	q := geom.Box{Min: geom.Point{-10, 0, 0}, Max: geom.Point{49.8, 1, 1}}
	ix.Query(q, nil)
	got := rootSlices(ix)
	if len(got) != 2 {
		t.Fatalf("root slices = %v, want 2 bands", got)
	}
	if got[0] != [2]int{0, 50} || got[1] != [2]int{50, 100} {
		t.Fatalf("bands = %v, want [0,50) [50,100)", got)
	}
}

func TestArtificialSliceWhenQueryContainsSlice(t *testing.T) {
	// A query covering everything: the default case splits at the midpoint.
	data := lineData(100)
	ix := New(data, Config{Tau: 20})
	q := geom.Box{Min: geom.Point{-10, -10, -10}, Max: geom.Point{200, 200, 200}}
	ix.Query(q, nil)
	got := rootSlices(ix)
	if len(got) != 2 {
		t.Fatalf("root slices = %v, want 2 halves", got)
	}
	// Midpoint of lower-coordinate range [0, 99.5] is ~49.75 -> split at 50.
	if got[0][1] != 50 {
		t.Fatalf("artificial split at %d, want 50 (bands %v)", got[0][1], got)
	}
}

func TestArtificialRefinementEnforcesTau(t *testing.T) {
	// With a small tau, every query-overlapping slice must end <= tau_x.
	data := lineData(256)
	ix := New(data, Config{Tau: 4})
	q := geom.Box{Min: geom.Point{100.2, 0, 0}, Max: geom.Point{149.8, 1, 1}}
	ix.Query(q, nil)
	tauX := ix.Tau(0)
	for _, s := range ix.root.slices {
		overlaps := s.box.Max[0] >= q.Min[0]-ix.live.Load().maxExt[0] && s.box.Min[0] <= q.Max[0]
		if overlaps && s.size() > tauX {
			t.Fatalf("query-overlapping slice [%d,%d) exceeds tau_x=%d", s.lo, s.hi, tauX)
		}
	}
}

func TestNonOverlappingSlicesStayCoarse(t *testing.T) {
	// Bands outside the query must not be refined further (lazy refinement).
	data := lineData(1000)
	ix := New(data, Config{Tau: 4})
	q := geom.Box{Min: geom.Point{10.2, 0, 0}, Max: geom.Point{19.8, 1, 1}}
	ix.Query(q, nil)
	last := ix.root.slices[len(ix.root.slices)-1]
	if last.size() < 900 {
		t.Fatalf("right band should remain coarse, got size %d", last.size())
	}
	if last.refined {
		t.Fatal("untouched band should not be finalized")
	}
}

func TestFinalizedSliceHasExactMBB(t *testing.T) {
	data := lineData(64)
	ix := New(data, Config{Tau: 20})
	q := geom.Box{Min: geom.Point{20.2, 0, 0}, Max: geom.Point{29.8, 1, 1}}
	ix.Query(q, nil)
	for _, s := range ix.root.slices {
		if !s.refined {
			continue
		}
		want := ix.data.MBB(s.lo, s.hi)
		if s.box != want {
			t.Fatalf("refined slice [%d,%d) box %v != exact MBB %v", s.lo, s.hi, s.box, want)
		}
	}
}

func TestOpenEndedBoxesBeforeRefinement(t *testing.T) {
	// An unrefined x-slice has exact bounds in x but infinite bounds in y/z.
	data := lineData(1000)
	ix := New(data, Config{Tau: 4})
	q := geom.Box{Min: geom.Point{10.2, 0, 0}, Max: geom.Point{19.8, 1, 1}}
	ix.Query(q, nil)
	var sawOpen bool
	for _, s := range ix.root.slices {
		if s.refined {
			continue
		}
		if math.IsInf(s.box.Min[0], -1) || math.IsInf(s.box.Max[0], 1) {
			t.Fatalf("unrefined slice missing exact x bounds: %v", s.box)
		}
		if math.IsInf(s.box.Min[1], -1) && math.IsInf(s.box.Max[2], 1) {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Fatal("expected at least one open-ended slice box")
	}
}

func TestChildLevelsFollowDimensions(t *testing.T) {
	data := lineData(512)
	ix := New(data, Config{Tau: 8})
	q := geom.Box{Min: geom.Point{100.2, 0.1, 0.1}, Max: geom.Point{119.8, 0.9, 0.9}}
	ix.Query(q, nil)
	var walk func(l *sliceList, level int)
	walk = func(l *sliceList, level int) {
		for _, s := range l.slices {
			if s.level != level {
				t.Fatalf("slice level %d at depth %d", s.level, level)
			}
			if s.children != nil {
				if level == geom.Dims-1 {
					t.Fatal("bottom-level slice has children")
				}
				walk(s.children, level+1)
			}
		}
	}
	walk(ix.root, 0)
}

func TestBinarySearchSkipsLeadingSlices(t *testing.T) {
	// After refinement, a far-right query must not touch (test) objects in
	// far-left slices: ObjectsTested stays near the result size.
	data := lineData(10000)
	ix := New(data, Config{Tau: 16})
	// Refine broadly first.
	for i := 0; i < 20; i++ {
		lo := float64(i * 500)
		ix.Query(geom.Box{Min: geom.Point{lo, 0, 0}, Max: geom.Point{lo + 200, 1, 1}}, nil)
	}
	before := ix.Stats().ObjectsTested
	res := ix.Query(geom.Box{Min: geom.Point{9000.2, 0, 0}, Max: geom.Point{9099.8, 1, 1}}, nil)
	tested := ix.Stats().ObjectsTested - before
	if len(res) == 0 {
		t.Fatal("query found nothing")
	}
	if tested > int64(len(res))*4+int64(ix.Tau(2))*4 {
		t.Fatalf("tested %d objects for %d results — search not selective", tested, len(res))
	}
}
