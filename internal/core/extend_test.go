package core

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func TestEquivalenceStochastic(t *testing.T) {
	data := dataset.Uniform(5000, 501)
	queries := workload.Uniform(dataset.Universe(), 120, 1e-3, 502)
	runEquivalence(t, data, queries, Config{Tau: 32, Stochastic: true})
}

func TestEquivalenceStochasticSequential(t *testing.T) {
	data := dataset.Uniform(5000, 503)
	queries := workload.Sequential(dataset.Universe(), 150, 1e-3, 0)
	runEquivalence(t, data, queries, Config{Tau: 32, Stochastic: true, Seed: 7})
}

func TestStochasticDeterministicForSeed(t *testing.T) {
	data := dataset.Uniform(3000, 504)
	queries := workload.Uniform(dataset.Universe(), 50, 1e-3, 505)
	run := func(seed int64) Stats {
		ix := New(dataset.Clone(data), Config{Stochastic: true, Seed: seed})
		for _, q := range queries {
			ix.Query(q, nil)
		}
		return ix.Stats()
	}
	a, b := run(9), run(9)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := run(10)
	if a == c {
		t.Fatal("different seeds produced identical work counters (suspicious)")
	}
}

func TestStochasticTamesSequentialWorkload(t *testing.T) {
	// Under a single-pass fine-grained sequential sweep, plain cracking
	// re-partitions the shrinking unrefined tail on every query; the
	// stochastic pre-cut must reduce the total objects moved. (On coarse
	// sweeps the pre-cut is mild overhead — the classic stochastic-cracking
	// trade-off.)
	data := dataset.Uniform(40000, 506)
	queries := workload.Sequential(dataset.Universe(), 45, 1e-5, 0)
	run := func(cfg Config) int64 {
		ix := New(dataset.Clone(data), cfg)
		for _, q := range queries {
			ix.Query(q, nil)
		}
		return ix.Stats().CrackedObjects
	}
	plain := run(Config{})
	stochastic := run(Config{Stochastic: true})
	if stochastic >= plain {
		t.Fatalf("stochastic moved %d objects, plain %d — no improvement", stochastic, plain)
	}
}

func TestCompleteRefinesEverything(t *testing.T) {
	data := dataset.Uniform(10000, 507)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	ix.Complete()
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// After Complete, queries crack nothing.
	before := ix.Stats().Cracks
	for _, q := range workload.Uniform(dataset.Universe(), 50, 1e-3, 508) {
		ix.Query(q, nil)
	}
	if after := ix.Stats().Cracks; after != before {
		t.Fatalf("queries still cracked after Complete: %d -> %d", before, after)
	}
}

func TestCompleteMatchesScan(t *testing.T) {
	data := dataset.Uniform(5000, 509)
	oracle := scan.New(data)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	ix.Complete()
	for qi, q := range workload.Uniform(dataset.Universe(), 80, 1e-3, 510) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestCompleteAfterPartialRefinement(t *testing.T) {
	data := dataset.Uniform(8000, 511)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	for _, q := range workload.Uniform(dataset.Universe(), 30, 1e-3, 512) {
		ix.Query(q, nil)
	}
	ix.Complete()
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res := ix.Query(dataset.Universe(), nil)
	if len(res) != len(data) {
		t.Fatalf("universe query found %d of %d", len(res), len(data))
	}
}

func TestCompleteEmptyIndex(t *testing.T) {
	ix := New(nil, Config{})
	ix.Complete() // must not panic
}

func TestAppendVisibleBeforeFlush(t *testing.T) {
	data := dataset.Uniform(1000, 513)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	extra := geom.Object{Box: geom.BoxAt(geom.Point{42, 42, 42}, 2), ID: 99999}
	ix.Append(extra)
	if ix.Len() != 1001 || ix.Pending() != 1 {
		t.Fatalf("Len=%d Pending=%d", ix.Len(), ix.Pending())
	}
	res := ix.Query(geom.BoxAt(geom.Point{42, 42, 42}, 4), nil)
	found := false
	for _, id := range res {
		if id == 99999 {
			found = true
		}
	}
	if !found {
		t.Fatal("appended object invisible before Flush")
	}
}

func TestFlushIntegratesAppended(t *testing.T) {
	base := dataset.Uniform(2000, 514)
	extra := dataset.Uniform(500, 515)
	for i := range extra {
		extra[i].ID += 10000
	}
	ix := New(dataset.Clone(base), Config{Tau: 32})
	for _, q := range workload.Uniform(dataset.Universe(), 20, 1e-3, 516) {
		ix.Query(q, nil) // pre-refine, then invalidate via Flush
	}
	ix.Append(extra...)
	ix.Flush()
	if ix.Pending() != 0 || ix.Len() != 2500 {
		t.Fatalf("Pending=%d Len=%d", ix.Pending(), ix.Len())
	}
	all := append(dataset.Clone(base), extra...)
	oracle := scan.New(all)
	for qi, q := range workload.Uniform(dataset.Universe(), 60, 1e-3, 517) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d after flush: got %d, want %d", qi, len(got), len(want))
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushNoPendingIsNoop(t *testing.T) {
	data := dataset.Uniform(500, 518)
	ix := New(dataset.Clone(data), Config{Tau: 16})
	for _, q := range workload.Uniform(dataset.Universe(), 10, 1e-2, 519) {
		ix.Query(q, nil)
	}
	slices := ix.NumSlices()
	ix.Flush()
	if ix.NumSlices() != slices {
		t.Fatal("Flush without pending data reset the hierarchy")
	}
}

func TestKNNWithPendingObjects(t *testing.T) {
	data := dataset.Uniform(2000, 520)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	target := geom.Object{Box: geom.BoxAt(geom.Point{7777, 7777, 7777}, 1), ID: 55555}
	ix.Append(target)
	nn := ix.KNN(geom.Point{7777, 7777, 7777}, 1)
	if len(nn) != 1 || nn[0].ID != 55555 {
		t.Fatalf("KNN missed the appended nearest object: %v", nn)
	}
}

func TestStochasticWithClusteredWorkloadStillCorrect(t *testing.T) {
	data := dataset.Neuro(4000, 521, dataset.NeuroConfig{})
	oracle := scan.New(data)
	ix := New(dataset.Clone(data), Config{Stochastic: true})
	var got, want []int32
	for qi, q := range workload.ClusteredOn(dataset.Universe(), data, 4, 25, 1e-4, 200, 522) {
		got = ix.Query(q, got[:0])
		want = oracle.Query(q, want[:0])
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestDeleteHidesObjectImmediately(t *testing.T) {
	data := dataset.Uniform(2000, 530)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	victim := data[1234]
	if !ix.Delete(victim.ID, victim.Box) {
		t.Fatal("Delete failed to find the object")
	}
	if ix.Deleted() != 1 || ix.Len() != 1999 {
		t.Fatalf("Deleted=%d Len=%d", ix.Deleted(), ix.Len())
	}
	res := ix.Query(victim.Box, nil)
	for _, id := range res {
		if id == victim.ID {
			t.Fatal("deleted object still returned")
		}
	}
}

func TestDeleteThenFlushCompacts(t *testing.T) {
	data := dataset.Uniform(2000, 531)
	ix := New(dataset.Clone(data), Config{Tau: 32})
	rng := rand.New(rand.NewSource(532))
	removed := make(map[int32]bool)
	for _, i := range rng.Perm(len(data))[:500] {
		if !ix.Delete(data[i].ID, data[i].Box) {
			t.Fatalf("Delete(%d) failed", data[i].ID)
		}
		removed[data[i].ID] = true
	}
	ix.Flush()
	if ix.Deleted() != 0 || ix.Len() != 1500 {
		t.Fatalf("after flush: Deleted=%d Len=%d", ix.Deleted(), ix.Len())
	}
	// Remaining objects must exactly match the survivors.
	live := make([]geom.Object, 0, 1500)
	for _, o := range data {
		if !removed[o.ID] {
			live = append(live, o)
		}
	}
	oracle := scan.New(live)
	for qi, q := range workload.Uniform(dataset.Universe(), 50, 1e-3, 533) {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d after compaction: got %d, want %d", qi, len(got), len(want))
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeletePendingObject(t *testing.T) {
	ix := New(dataset.Uniform(100, 534), Config{})
	o := geom.Object{Box: geom.BoxAt(geom.Point{5, 5, 5}, 1), ID: 7777}
	ix.Append(o)
	if !ix.Delete(7777, o.Box) {
		t.Fatal("Delete of pending object failed")
	}
	// Deletion is a tombstone even for pending objects (the version's
	// pending slice is immutable); the object must be invisible everywhere
	// and Flush must not resurrect it.
	if ix.Len() != 100 {
		t.Fatalf("Len = %d after deleting the pending object", ix.Len())
	}
	if got := ix.Query(o.Box, nil); containsID(got, 7777) {
		t.Fatal("deleted pending object still visible to Query")
	}
	if ix.Delete(7777, o.Box) {
		t.Fatal("second Delete of the same ID reported success")
	}
	ix.Flush()
	if ix.Pending() != 0 || ix.Deleted() != 0 {
		t.Fatalf("Pending=%d Deleted=%d after Flush", ix.Pending(), ix.Deleted())
	}
	if got := ix.Query(o.Box, nil); containsID(got, 7777) {
		t.Fatal("Flush resurrected a tombstoned pending object")
	}
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func TestDeleteMissing(t *testing.T) {
	ix := New(dataset.Uniform(100, 535), Config{})
	if ix.Delete(99999, dataset.Universe()) {
		t.Fatal("Delete of missing ID reported success")
	}
	if ix.Len() != 100 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestDeleteSurvivesPersistence(t *testing.T) {
	data := dataset.Uniform(500, 536)
	ix := New(dataset.Clone(data), Config{Tau: 16})
	victim := data[42]
	ix.Delete(victim.ID, victim.Box)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Deleted() != 1 || loaded.Len() != 499 {
		t.Fatalf("Deleted=%d Len=%d after reload", loaded.Deleted(), loaded.Len())
	}
	for _, id := range loaded.Query(victim.Box, nil) {
		if id == victim.ID {
			t.Fatal("tombstone lost in round trip")
		}
	}
}
