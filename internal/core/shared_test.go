package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

// TestEpochMonotonic pins the crack-epoch contract: the epoch never
// decreases, moves across every kind of structural mutation, and stands
// still on a converged index — the property the optimistic shared read
// path's validation depends on.
func TestEpochMonotonic(t *testing.T) {
	data := dataset.Uniform(5000, 1)
	ix := New(dataset.Clone(data), Config{})
	queries := workload.Uniform(dataset.Universe(), 64, 1e-3, 2)

	last := ix.Epoch()
	check := func(op string) {
		e := ix.Epoch()
		if e < last {
			t.Fatalf("epoch decreased after %s: %d -> %d", op, last, e)
		}
		last = e
	}

	// A cracking query must move the epoch.
	ix.Query(queries[0], nil)
	if ix.Epoch() == 0 {
		t.Fatal("cracking query did not move the epoch")
	}
	check("first query")

	for _, q := range queries {
		ix.Query(q, nil)
		check("query")
	}
	// Data changes publish versions instead of moving the crack epoch:
	// DataVersion must advance, the epoch must stand still, so shared
	// readers are never invalidated by a write burst.
	dv := ix.DataVersion()
	ix.Append(geom.Object{Box: geom.BoxAt(geom.Point{1, 2, 3}, 1), ID: 99_999})
	if ix.Epoch() != last {
		t.Fatal("Append moved the crack epoch (data changes must not)")
	}
	if ix.DataVersion() != dv+1 {
		t.Fatalf("Append moved DataVersion %d -> %d, want +1", dv, ix.DataVersion())
	}
	check("append")
	if !ix.Delete(99_999, geom.BoxAt(geom.Point{1, 2, 3}, 1)) {
		t.Fatal("Delete missed the appended object")
	}
	if ix.DataVersion() != dv+2 {
		t.Fatalf("Delete moved DataVersion to %d, want %d", ix.DataVersion(), dv+2)
	}
	check("delete")
	ix.Flush()
	check("flush")
	ix.Complete()
	check("complete")

	// Converged: repeated queries must leave the epoch untouched, so shared
	// readers never invalidate each other.
	e := ix.Epoch()
	for _, q := range queries {
		ix.Query(q, nil)
	}
	if ix.Epoch() != e {
		t.Fatalf("queries on a converged index moved the epoch: %d -> %d", e, ix.Epoch())
	}
}

// TestQuerySharedMatchesExclusive verifies the shared read path returns
// exactly what Query would, across converged, pending, and tombstoned
// states — and that it bails (rather than answering wrong) on a cold index.
func TestQuerySharedMatchesExclusive(t *testing.T) {
	data := dataset.Uniform(8000, 3)
	ix := New(dataset.Clone(data), Config{})
	queries := workload.Uniform(dataset.Universe(), 128, 1e-3, 4)

	// Cold index: any query that touches data must fall back.
	if _, ok := ix.QueryShared(queries[0], nil); ok {
		t.Fatal("shared path succeeded on a cold index")
	}

	ix.Complete()
	if !ix.Converged() {
		t.Fatal("Complete left the index unconverged")
	}
	sc := scan.New(dataset.Clone(data))
	for i, q := range queries {
		got, ok := ix.QueryShared(q, nil)
		if !ok {
			t.Fatalf("query %d: shared path bailed on a converged index", i)
		}
		want := sc.Query(q, nil)
		assertSameIDs(t, got, want)
	}

	// Pending objects are served read-only by the shared path.
	obj := geom.Object{Box: geom.BoxAt(queries[0].Center(), 1), ID: 500_000}
	ix.Append(obj)
	got, ok := ix.QueryShared(obj.Box, nil)
	if !ok {
		t.Fatal("shared path bailed with pending objects")
	}
	if !containsID32(got, obj.ID) {
		t.Fatal("shared path missed a pending object")
	}

	// Tombstones filter shared results immediately.
	if !ix.Delete(data[0].ID, data[0].Box) {
		t.Fatal("Delete missed an indexed object")
	}
	got, ok = ix.QueryShared(data[0].Box, nil)
	if !ok {
		t.Fatal("shared path bailed with tombstones")
	}
	if containsID32(got, data[0].ID) {
		t.Fatal("shared path returned a tombstoned object")
	}
}

// TestCountSharedMatchesCount pins Count's shared-walk fast path: exact on
// a converged index (with and without tombstones/pending) and refusing
// cleanly on a cold one.
func TestCountSharedMatchesCount(t *testing.T) {
	data := dataset.Uniform(6000, 5)
	ix := New(dataset.Clone(data), Config{})
	queries := workload.Uniform(dataset.Universe(), 64, 1e-3, 6)

	if _, ok := ix.CountShared(queries[0]); ok {
		t.Fatal("CountShared succeeded on a cold index")
	}
	ix.Complete()
	sc := scan.New(dataset.Clone(data))
	for i, q := range queries {
		n, ok := ix.CountShared(q)
		if !ok {
			t.Fatalf("query %d: CountShared bailed on a converged index", i)
		}
		if want := len(sc.Query(q, nil)); n != want {
			t.Fatalf("query %d: CountShared = %d, scan = %d", i, n, want)
		}
		if got := ix.Count(q); got != n {
			t.Fatalf("query %d: Count = %d disagrees with CountShared = %d", i, got, n)
		}
	}
	// Tombstoned objects disappear from counts.
	before, _ := ix.CountShared(data[0].Box)
	ix.Delete(data[0].ID, data[0].Box)
	after, ok := ix.CountShared(data[0].Box)
	if !ok {
		t.Fatal("CountShared bailed with tombstones")
	}
	if after != before-1 {
		t.Fatalf("CountShared with tombstone = %d, want %d", after, before-1)
	}
}

// TestKNNSharedMatchesKNN verifies shared KNN equals exclusive KNN on a
// converged index, and bails whenever exclusive work (Flush) would be
// needed.
func TestKNNSharedMatchesKNN(t *testing.T) {
	data := dataset.Uniform(4000, 7)
	ix := New(dataset.Clone(data), Config{})
	ix.Complete()
	probes := workload.Uniform(dataset.Universe(), 32, 1e-4, 8)
	for i, q := range probes {
		p := q.Center()
		got, ok := ix.KNNShared(p, 10)
		if !ok {
			t.Fatalf("probe %d: KNNShared bailed on a converged index", i)
		}
		want := ix.KNN(p, 10)
		if len(got) != len(want) {
			t.Fatalf("probe %d: KNNShared returned %d neighbors, KNN %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("probe %d neighbor %d: shared %+v, exclusive %+v", i, j, got[j], want[j])
			}
		}
	}
	// Pending objects no longer evict KNN readers: the shared path merges
	// them into the candidate ranking, so the freshly appended object at
	// the probe point must come back first.
	ix.Append(geom.Object{Box: geom.BoxAt(geom.Point{5, 5, 5}, 1), ID: 600_000})
	nn, ok := ix.KNNShared(geom.Point{5, 5, 5}, 3)
	if !ok {
		t.Fatal("KNNShared bailed on pending objects (MVCC path must serve them)")
	}
	if len(nn) != 3 || nn[0].ID != 600_000 || nn[0].DistSq != 0 {
		t.Fatalf("KNNShared with pending: got %+v, want appended object first", nn)
	}
	// And a tombstone must hide the object again without a bail.
	if !ix.Delete(600_000, geom.BoxAt(geom.Point{5, 5, 5}, 1)) {
		t.Fatal("Delete missed the appended object")
	}
	nn, ok = ix.KNNShared(geom.Point{5, 5, 5}, 3)
	if !ok {
		t.Fatal("KNNShared bailed on tombstones")
	}
	for _, n := range nn {
		if n.ID == 600_000 {
			t.Fatal("KNNShared returned a tombstoned object")
		}
	}
}

// TestQueryBudgeted verifies budgeted queries stay exact at every budget —
// including zero — and that repeated budgeted queries still converge the
// index, with invariants intact throughout.
func TestQueryBudgeted(t *testing.T) {
	data := dataset.Uniform(10_000, 9)
	queries := workload.Uniform(dataset.Universe(), 96, 1e-3, 10)
	sc := scan.New(dataset.Clone(data))
	for _, budget := range []int{0, 1, 4, 64, -1} {
		ix := New(dataset.Clone(data), Config{})
		for i, q := range queries {
			got := ix.QueryBudgeted(q, nil, budget)
			assertSameIDs(t, got, sc.Query(q, nil))
			if err := ix.CheckInvariants(); err != nil {
				t.Fatalf("budget %d, query %d: invariants: %v", budget, i, err)
			}
		}
	}
	// A positive budget must still make progress: replaying one query often
	// enough converges its region, flipping it onto the shared path.
	ix := New(dataset.Clone(data), Config{})
	q := queries[0]
	for i := 0; i < 10_000; i++ {
		ix.QueryBudgeted(q, nil, 4)
		if _, ok := ix.QueryShared(q, nil); ok {
			return
		}
	}
	t.Fatal("10k budgeted replays of one query never converged its region")
}

func assertSameIDs(t *testing.T, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	seen := make(map[int32]int, len(got))
	for _, id := range got {
		seen[id]++
	}
	for _, id := range want {
		if seen[id] == 0 {
			t.Fatalf("missing ID %d", id)
		}
		seen[id]--
	}
}

func containsID32(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
