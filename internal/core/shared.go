// The optimistic shared read path. QUASII converges toward R-tree-like
// behaviour precisely because, after enough queries, most slices are final
// and never cracked again — so the steady state the paper celebrates is a
// read-mostly structure that should be queried under shared access, not
// behind an exclusive lock. The entry points below walk the slice hierarchy
// without mutating anything: no finalization, no child creation, no
// cracking, no plain-counter stats. A query whose touched region is fully
// refined is answered in place; any slice that still needs work makes the
// walk bail out so the caller can retry on the exclusive path (Query /
// QueryBudgeted), which alone mutates the hierarchy and bumps the crack
// epoch.
//
// # Safety contract
//
// Any number of shared-path calls may run concurrently with each other.
// They must not run concurrently with the exclusive path or with updates —
// the sharded engine guarantees that with a per-shard RWMutex (readers take
// the read lock, cracking queries the write lock). The crack epoch is the
// belt to that suspenders: every walk records the epoch first and validates
// it after, so even a misuse race (a writer sneaking in between the
// caller's decision and the walk) is detected and turned into a fallback
// instead of a wrong answer.

package core

import (
	"math"

	"repro/internal/geom"
)

// Epoch returns the crack epoch: a monotonic counter that moves on every
// structural mutation and stands still exactly when the index does. Two
// equal Epoch reads bracketing a shared walk prove the walk saw a frozen
// structure. Safe to call concurrently with anything.
func (ix *Index) Epoch() uint64 { return ix.epoch.Load() }

// Converged reports whether a query touching the whole universe would stay
// on the shared path: no pending inserts and every materialized slice
// refined down to the bottom level. It is a read-only full walk — O(slices)
// — intended for scheduling decisions, not hot loops.
func (ix *Index) Converged() bool {
	if len(ix.pending) > 0 {
		return false
	}
	var walk func(l *sliceList, dim int) bool
	walk = func(l *sliceList, dim int) bool {
		for _, s := range l.slices {
			if !s.refined {
				return false
			}
			if dim < geom.Dims-1 {
				if s.children == nil || !walk(s.children, dim+1) {
					return false
				}
			}
		}
		return true
	}
	return ix.root == nil || walk(ix.root, 0)
}

// QueryShared answers q on the optimistic shared read path: a read-only
// walk over the already-refined slice hierarchy. On success it appends the
// matching IDs to out (exactly what Query would return) and reports true.
// It reports false — with out unchanged — when any touched slice still
// needs refinement or the crack epoch moved mid-walk; the caller must then
// retry on the exclusive path. On a converged index the call is
// allocation-free when out has capacity.
func (ix *Index) QueryShared(q geom.Box, out []int32) ([]int32, bool) {
	start := len(out)
	e := ix.epoch.Load()
	if ix.data.Len() > 0 && !q.IsEmpty() {
		var ok bool
		out, ok = ix.queryListShared(q, ix.root, 0, out, ix.sampleHeat())
		if !ok || ix.epoch.Load() != e {
			return out[:start], false
		}
		// Translate array positions to IDs in place, filtering tombstones —
		// the same post-pass as Query, reading the lanes only.
		ids := ix.data.ID
		if ix.deleted == nil {
			for i := start; i < len(out); i++ {
				out[i] = ids[out[i]]
			}
		} else {
			w := start
			for i := start; i < len(out); i++ {
				id := ids[out[i]]
				if _, dead := ix.deleted[id]; dead {
					continue
				}
				out[w] = id
				w++
			}
			out = out[:w]
		}
	}
	// Appended objects are unindexed until Flush; scanning them linearly is
	// read-only, so the shared path serves them too.
	if len(ix.pending) > 0 && !q.IsEmpty() {
		for i := range ix.pending {
			if ix.pending[i].Intersects(q) {
				out = append(out, ix.pending[i].ID)
			}
		}
	}
	// Honors DisableStats like every other counter — and keeps the one
	// shared cache line off the hot path when instrumentation is off.
	if !ix.noStats {
		ix.sharedQueries.Add(1)
	}
	return out, true
}

// queryListShared is the read-only mirror of queryList: same sibling binary
// search, same descent, but any slice that the exclusive path would have to
// touch — finalize, give a child, or crack — aborts the walk instead. heat
// is threaded as a parameter (not an Index field) because any number of
// shared walks run concurrently; the only mutation a sampled walk performs
// is the atomic touch counter, which is still "read-only" structurally.
func (ix *Index) queryListShared(q geom.Box, list *sliceList, dim int, out []int32, heat bool) ([]int32, bool) {
	fastPath := ix.cfg.Assign == AssignLower && !math.IsInf(list.maxExt, 1)
	var i int
	if fastPath {
		i = list.lowerBound(q.Min[dim]-list.maxExt, dim)
	}
	for ; i < len(list.slices); i++ {
		s := list.slices[i]
		if fastPath && s.box.Min[dim] > q.Max[dim] {
			break
		}
		if !s.box.Intersects(q) {
			continue
		}
		if !s.refined {
			return out, false // needs finalization or cracking: exclusive work
		}
		s.touchHeat(heat)
		if dim == geom.Dims-1 {
			out = ix.data.ScanIntersect(s.lo, s.hi, q, out)
			continue
		}
		if s.children == nil {
			return out, false // lazy child creation is exclusive work
		}
		var ok bool
		out, ok = ix.queryListShared(q, s.children, dim+1, out, heat)
		if !ok {
			return out, false
		}
	}
	return out, true
}

// CountShared counts the objects intersecting q on the shared read path,
// reporting false when the walk would need exclusive work. Without
// tombstones the count comes from a walk that never materializes positions
// (the colstore count kernel), so it is allocation-free regardless of the
// result cardinality.
func (ix *Index) CountShared(q geom.Box) (int, bool) {
	if len(ix.deleted) > 0 {
		// Tombstone filtering needs the ID lane per match; collect positions
		// through the ordinary shared walk instead of duplicating it.
		res, ok := ix.QueryShared(q, nil)
		return len(res), ok
	}
	e := ix.epoch.Load()
	n := 0
	if ix.data.Len() > 0 && !q.IsEmpty() {
		var ok bool
		n, ok = ix.countListShared(q, ix.root, 0, ix.sampleHeat())
		if !ok || ix.epoch.Load() != e {
			return 0, false
		}
	}
	if !q.IsEmpty() {
		for i := range ix.pending {
			if ix.pending[i].Intersects(q) {
				n++
			}
		}
	}
	if !ix.noStats {
		ix.sharedQueries.Add(1)
	}
	return n, true
}

// countListShared mirrors queryListShared but only counts matches.
func (ix *Index) countListShared(q geom.Box, list *sliceList, dim int, heat bool) (int, bool) {
	fastPath := ix.cfg.Assign == AssignLower && !math.IsInf(list.maxExt, 1)
	var i int
	if fastPath {
		i = list.lowerBound(q.Min[dim]-list.maxExt, dim)
	}
	n := 0
	for ; i < len(list.slices); i++ {
		s := list.slices[i]
		if fastPath && s.box.Min[dim] > q.Max[dim] {
			break
		}
		if !s.box.Intersects(q) {
			continue
		}
		if !s.refined {
			return 0, false
		}
		s.touchHeat(heat)
		if dim == geom.Dims-1 {
			n += ix.data.CountIntersect(s.lo, s.hi, q)
			continue
		}
		if s.children == nil {
			return 0, false
		}
		c, ok := ix.countListShared(q, s.children, dim+1, heat)
		if !ok {
			return 0, false
		}
		n += c
	}
	return n, true
}

// KNNShared answers a k-nearest-neighbor query on the shared read path. It
// reports false when the probed region is not yet converged, or when
// pending inserts or tombstones require the exclusive path's Flush. The
// search mirrors KNN: an expanding probe cube plus one exactness pass, all
// probes read-only. The probes never record heat: a single KNN re-walks the
// same slices once per expansion, which would overweight them in the map.
func (ix *Index) KNNShared(p geom.Point, k int) ([]Neighbor, bool) {
	if len(ix.pending) > 0 || len(ix.deleted) > 0 {
		return nil, false // KNN folds updates in first (Flush): exclusive work
	}
	if k <= 0 || ix.data.Len() == 0 {
		return nil, true
	}
	if k > ix.data.Len() {
		k = ix.data.Len()
	}
	e := ix.epoch.Load()
	span := ix.dataMBB
	side := math.Cbrt(span.Volume() * 2 * float64(k) / float64(ix.data.Len()))
	if side <= 0 || math.IsNaN(side) {
		side = 1
	}
	maxSide := 0.0
	for d := 0; d < geom.Dims; d++ {
		if e := span.Extent(d); e > maxSide {
			maxSide = e
		}
	}
	var pos []int32
	var ok bool
	for {
		pos, ok = ix.queryListShared(geom.BoxAt(p, side), ix.root, 0, pos[:0], false)
		if !ok {
			return nil, false
		}
		if len(pos) >= k || side > 2*maxSide+1 {
			break
		}
		side *= 2
	}
	if len(pos) < k {
		pos, ok = ix.queryListShared(span.Expand(geom.Point{1, 1, 1}), ix.root, 0, pos[:0], false)
		if !ok {
			return nil, false
		}
	}
	nn := ix.rank(pos, p, k)
	if len(nn) >= k {
		radius := math.Sqrt(nn[k-1].DistSq)
		pos, ok = ix.queryListShared(geom.BoxAt(p, 2*radius+1e-9), ix.root, 0, pos[:0], false)
		if !ok {
			return nil, false
		}
		nn = ix.rank(pos, p, k)
	}
	if ix.epoch.Load() != e {
		return nil, false
	}
	if !ix.noStats {
		ix.sharedQueries.Add(1)
	}
	return nn, true
}
