// The shared read path. QUASII converges toward R-tree-like behaviour
// precisely because, after enough queries, most slices are final and never
// cracked again — so the steady state the paper celebrates is a read-mostly
// structure that should be queried under shared access, not behind an
// exclusive lock. The entry points below pin a version (an atomic load of
// the MVCC head — see version.go) and walk the slice hierarchy without
// mutating anything: no finalization, no child creation, no cracking, no
// plain-counter stats. A query whose touched region is fully refined is
// answered in place against the pinned version's view — lanes plus visible
// deltas — regardless of how many appends and deletes race with it. Only a
// slice that still needs structural work makes the walk bail out so the
// caller can retry on the exclusive path (Query / QueryBudgeted), which
// alone mutates the hierarchy and bumps the crack epoch.
//
// # Safety contract
//
// Any number of shared-path calls may run concurrently with each other and
// with version-publishing writers (Append, Delete via DeleteShared). They
// must not run concurrently with the exclusive path — cracking queries and
// Flush — which the sharded engine guarantees with a per-shard RWMutex.
// The crack epoch is the belt to those suspenders: every walk records the
// epoch first and validates it after, so even a misuse race (a structural
// writer sneaking in between the caller's decision and the walk) is
// detected and turned into a fallback instead of a wrong answer. Data
// changes no longer move the epoch, so a write burst cannot evict readers.

package core

import (
	"math"

	"repro/internal/geom"
)

// Epoch returns the crack epoch: a monotonic counter that moves on every
// structural mutation and stands still exactly when the hierarchy does.
// Two equal Epoch reads bracketing a shared walk prove the walk saw a
// frozen structure. Data changes (Append/Delete) do not move it — they
// publish versions; see DataVersion. Safe to call concurrently.
func (ix *Index) Epoch() uint64 { return ix.epoch.Load() }

// Converged reports whether a query touching the whole universe would stay
// on the shared path: no pending inserts and every materialized slice
// refined down to the bottom level. It is a read-only full walk — O(slices)
// — intended for scheduling decisions, not hot loops.
func (ix *Index) Converged() bool {
	if len(ix.live.Load().pending) > 0 {
		return false
	}
	var walk func(l *sliceList, dim int) bool
	walk = func(l *sliceList, dim int) bool {
		for _, s := range l.slices {
			if !s.refined {
				return false
			}
			if dim < geom.Dims-1 {
				if s.children == nil || !walk(s.children, dim+1) {
					return false
				}
			}
		}
		return true
	}
	return ix.root == nil || walk(ix.root, 0)
}

// QueryShared answers q on the shared read path: it pins the live version
// and performs a read-only walk over the already-refined slice hierarchy,
// merging the version's deltas (pending inserts, tombstones) in stream. On
// success it appends the matching IDs to out (exactly what Query would
// return at the pinned version) and reports true. It reports false — with
// out unchanged — only when a touched slice still needs refinement or the
// structure moved mid-walk; concurrent appends and deletes never cause a
// bail. On a converged index the call is allocation-free when out has
// capacity.
func (ix *Index) QueryShared(q geom.Box, out []int32) ([]int32, bool) {
	start := len(out)
	v := ix.live.Load()
	e := ix.epoch.Load()
	if v.table.Len() > 0 && !q.IsEmpty() {
		var ok bool
		out, ok = ix.queryListVisible(q, ix.root, 0, v.deleted, out, ix.sampleHeat())
		if !ok || ix.epoch.Load() != e {
			return out[:start], false
		}
	}
	// The version's pending objects are unindexed until Flush; scanning
	// them linearly is read-only, so the shared path serves them too.
	if len(v.pending) > 0 && !q.IsEmpty() {
		for i := range v.pending {
			if v.pending[i].Intersects(q) {
				if _, dead := v.deleted[v.pending[i].ID]; !dead {
					out = append(out, v.pending[i].ID)
				}
			}
		}
	}
	// Honors DisableStats like every other counter — and keeps the one
	// shared cache line off the hot path when instrumentation is off.
	if !ix.noStats {
		ix.sharedQueries.Add(1)
	}
	return out, true
}

// queryAtVersion answers q against an arbitrary pinned version's view — the
// harness entry point for auditing that a pinned read sees exactly the
// writes published at or before its pin. For a current-generation version
// it reuses the live walk; for a version whose table was superseded by a
// Flush it walks the frozen generation the version captured. Same locking
// contract as QueryShared.
func (ix *Index) queryAtVersion(v *Version, q geom.Box, out []int32) ([]int32, bool) {
	root := v.root
	if v.table.Len() > 0 && !q.IsEmpty() && root != nil {
		var ok bool
		out, ok = ix.queryTableVisible(v.table, q, root, 0, v.deleted, out)
		if !ok {
			return out, false
		}
	}
	if len(v.pending) > 0 && !q.IsEmpty() {
		for i := range v.pending {
			if v.pending[i].Intersects(q) {
				if _, dead := v.deleted[v.pending[i].ID]; !dead {
					out = append(out, v.pending[i].ID)
				}
			}
		}
	}
	return out, true
}

// queryListVisible is the read-only mirror of queryList with the version's
// tombstone filter fused into the bottom-level scan (colstore's
// ScanIntersectVisible appends surviving IDs directly — no position
// translation pass). Any slice the exclusive path would have to touch —
// finalize, give a child, or crack — aborts the walk instead. heat is
// threaded as a parameter (not an Index field) because any number of
// shared walks run concurrently; the only mutation a sampled walk performs
// is the atomic touch counter, which is still "read-only" structurally.
func (ix *Index) queryListVisible(q geom.Box, list *sliceList, dim int, del map[int32]struct{}, out []int32, heat bool) ([]int32, bool) {
	fastPath := ix.cfg.Assign == AssignLower && !math.IsInf(list.maxExt, 1)
	var i int
	if fastPath {
		i = list.lowerBound(q.Min[dim]-list.maxExt, dim)
	}
	for ; i < len(list.slices); i++ {
		s := list.slices[i]
		if fastPath && s.box.Min[dim] > q.Max[dim] {
			break
		}
		if !s.box.Intersects(q) {
			continue
		}
		if !s.refined {
			return out, false // needs finalization or cracking: exclusive work
		}
		s.touchHeat(heat)
		if dim == geom.Dims-1 {
			out = ix.data.ScanIntersectVisible(s.lo, s.hi, q, del, out)
			continue
		}
		if s.children == nil {
			return out, false // lazy child creation is exclusive work
		}
		var ok bool
		out, ok = ix.queryListVisible(q, s.children, dim+1, del, out, heat)
		if !ok {
			return out, false
		}
	}
	return out, true
}

// queryTableVisible is queryListVisible against an explicit (possibly
// superseded) table — the frozen-generation walk behind queryAtVersion and
// SaveVersion consistency checks. It records no heat.
func (ix *Index) queryTableVisible(t tableLike, q geom.Box, list *sliceList, dim int, del map[int32]struct{}, out []int32) ([]int32, bool) {
	fastPath := ix.cfg.Assign == AssignLower && !math.IsInf(list.maxExt, 1)
	var i int
	if fastPath {
		i = list.lowerBound(q.Min[dim]-list.maxExt, dim)
	}
	for ; i < len(list.slices); i++ {
		s := list.slices[i]
		if fastPath && s.box.Min[dim] > q.Max[dim] {
			break
		}
		if !s.box.Intersects(q) {
			continue
		}
		if !s.refined {
			return out, false
		}
		if dim == geom.Dims-1 {
			out = t.ScanIntersectVisible(s.lo, s.hi, q, del, out)
			continue
		}
		if s.children == nil {
			return out, false
		}
		var ok bool
		out, ok = ix.queryTableVisible(t, q, s.children, dim+1, del, out)
		if !ok {
			return out, false
		}
	}
	return out, true
}

// tableLike is the slice of the colstore API the frozen-generation walk
// needs; it exists so the walk is explicit about touching only v.table.
type tableLike interface {
	ScanIntersectVisible(lo, hi int, q geom.Box, dead map[int32]struct{}, out []int32) []int32
}

// queryListShared is the position-collecting read-only walk (no tombstone
// filtering — callers that need the raw lane positions, like the KNN
// ranking and the shared delete locator, post-filter by ID).
func (ix *Index) queryListShared(q geom.Box, list *sliceList, dim int, out []int32, heat bool) ([]int32, bool) {
	fastPath := ix.cfg.Assign == AssignLower && !math.IsInf(list.maxExt, 1)
	var i int
	if fastPath {
		i = list.lowerBound(q.Min[dim]-list.maxExt, dim)
	}
	for ; i < len(list.slices); i++ {
		s := list.slices[i]
		if fastPath && s.box.Min[dim] > q.Max[dim] {
			break
		}
		if !s.box.Intersects(q) {
			continue
		}
		if !s.refined {
			return out, false // needs finalization or cracking: exclusive work
		}
		s.touchHeat(heat)
		if dim == geom.Dims-1 {
			out = ix.data.ScanIntersect(s.lo, s.hi, q, out)
			continue
		}
		if s.children == nil {
			return out, false // lazy child creation is exclusive work
		}
		var ok bool
		out, ok = ix.queryListShared(q, s.children, dim+1, out, heat)
		if !ok {
			return out, false
		}
	}
	return out, true
}

// CountShared counts the objects intersecting q on the shared read path,
// reporting false when the walk would need exclusive work. The count walk
// never materializes positions — tombstones are filtered by the fused
// colstore count kernel — so it is allocation-free regardless of result
// cardinality or how many deletes are in flight.
func (ix *Index) CountShared(q geom.Box) (int, bool) {
	v := ix.live.Load()
	e := ix.epoch.Load()
	n := 0
	if v.table.Len() > 0 && !q.IsEmpty() {
		var ok bool
		n, ok = ix.countListShared(q, ix.root, 0, v.deleted, ix.sampleHeat())
		if !ok || ix.epoch.Load() != e {
			return 0, false
		}
	}
	if !q.IsEmpty() {
		for i := range v.pending {
			if v.pending[i].Intersects(q) {
				if _, dead := v.deleted[v.pending[i].ID]; !dead {
					n++
				}
			}
		}
	}
	if !ix.noStats {
		ix.sharedQueries.Add(1)
	}
	return n, true
}

// countListShared mirrors queryListVisible but only counts matches.
func (ix *Index) countListShared(q geom.Box, list *sliceList, dim int, del map[int32]struct{}, heat bool) (int, bool) {
	fastPath := ix.cfg.Assign == AssignLower && !math.IsInf(list.maxExt, 1)
	var i int
	if fastPath {
		i = list.lowerBound(q.Min[dim]-list.maxExt, dim)
	}
	n := 0
	for ; i < len(list.slices); i++ {
		s := list.slices[i]
		if fastPath && s.box.Min[dim] > q.Max[dim] {
			break
		}
		if !s.box.Intersects(q) {
			continue
		}
		if !s.refined {
			return 0, false
		}
		s.touchHeat(heat)
		if dim == geom.Dims-1 {
			n += ix.data.CountIntersectVisible(s.lo, s.hi, q, del)
			continue
		}
		if s.children == nil {
			return 0, false
		}
		c, ok := ix.countListShared(q, s.children, dim+1, del, heat)
		if !ok {
			return 0, false
		}
		n += c
	}
	return n, true
}

// KNNShared answers a k-nearest-neighbor query on the shared read path
// against the pinned version's view: lane candidates are post-filtered by
// the tombstone set and every visible pending object joins the candidate
// ranking, so — unlike the exclusive KNN, which folds updates in with a
// Flush — a write burst no longer evicts KNN readers. It reports false
// only when the probed region is not yet converged. The probes never
// record heat: a single KNN re-walks the same slices once per expansion,
// which would overweight them in the map.
func (ix *Index) KNNShared(p geom.Point, k int) ([]Neighbor, bool) {
	v := ix.live.Load()
	if k <= 0 {
		return nil, true
	}
	visible := v.table.Len() + len(v.pending) - len(v.deleted)
	if visible <= 0 {
		return nil, true
	}
	if k > visible {
		k = visible
	}
	e := ix.epoch.Load()
	span := v.dataMBB
	n := v.table.Len()
	if n == 0 {
		// Everything lives in pending: rank it directly.
		nn := ix.rankVisible(nil, v, p, k)
		if !ix.noStats {
			ix.sharedQueries.Add(1)
		}
		return nn, true
	}
	side := math.Cbrt(span.Volume() * 2 * float64(k) / float64(n))
	if side <= 0 || math.IsNaN(side) {
		side = 1
	}
	maxSide := 0.0
	for d := 0; d < geom.Dims; d++ {
		if e := span.Extent(d); e > maxSide {
			maxSide = e
		}
	}
	var pos []int32
	var ok bool
	for {
		pos, ok = ix.queryListShared(geom.BoxAt(p, side), ix.root, 0, pos[:0], false)
		if !ok {
			return nil, false
		}
		if len(pos) >= k || side > 2*maxSide+1 {
			break
		}
		side *= 2
	}
	nn := ix.rankVisible(pos, v, p, k)
	if len(nn) < k {
		// Tombstones (or a far-away p) starved the probe cube: widen to
		// everything so the ranking below is exact.
		pos, ok = ix.queryListShared(span.Expand(geom.Point{1, 1, 1}), ix.root, 0, pos[:0], false)
		if !ok {
			return nil, false
		}
		nn = ix.rankVisible(pos, v, p, k)
	}
	if len(nn) >= k {
		radius := math.Sqrt(nn[k-1].DistSq)
		pos, ok = ix.queryListShared(geom.BoxAt(p, 2*radius+1e-9), ix.root, 0, pos[:0], false)
		if !ok {
			return nil, false
		}
		nn = ix.rankVisible(pos, v, p, k)
	}
	if ix.epoch.Load() != e {
		return nil, false
	}
	if !ix.noStats {
		ix.sharedQueries.Add(1)
	}
	return nn, true
}
