package core

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Neighbor is one k-nearest-neighbor result: an object ID and its squared
// box distance to the query point.
type Neighbor struct {
	ID     int32
	DistSq float64
}

// KNN returns the k objects nearest to p (by minimum box distance), closest
// first. The paper positions range queries as "the building block for many
// other spatial queries" (Sec. 2); KNN is implemented exactly that way: a
// search cube sized from the data density doubles until it holds k
// candidates, and one final query at the k-th candidate's distance
// guarantees no closer object is missed. Like every QUASII query, each probe
// refines the index around p as a side effect.
func (ix *Index) KNN(p geom.Point, k int) []Neighbor {
	ix.Flush() // fold any appended objects so position-based ranking sees them
	if k <= 0 || ix.data.Len() == 0 {
		return nil
	}
	if k > ix.data.Len() {
		k = ix.data.Len()
	}
	span := ix.dataMBB
	// Initial cube: volume sized for an expected 2k objects under a uniform
	// density assumption; clamped to a sane floor.
	side := math.Cbrt(span.Volume() * 2 * float64(k) / float64(ix.data.Len()))
	if side <= 0 || math.IsNaN(side) {
		side = 1
	}
	maxSide := 0.0
	for d := 0; d < geom.Dims; d++ {
		if e := span.Extent(d); e > maxSide {
			maxSide = e
		}
	}
	var pos []int32
	for {
		pos = ix.queryPositions(geom.BoxAt(p, side), pos[:0])
		if len(pos) >= k || side > 2*maxSide+1 {
			break
		}
		side *= 2
	}
	if len(pos) < k {
		// p is far outside the data (or k is close to n): the capped probe
		// cube ran out before collecting k candidates, and a partial
		// candidate set is not necessarily the nearest one. Widen to
		// everything so the ranking below is exact.
		pos = ix.queryPositions(span.Expand(geom.Point{1, 1, 1}), pos[:0])
	}
	nn := ix.rank(pos, p, k)
	if len(nn) < k {
		return nn
	}
	// Exactness pass: the k-th candidate bounds the true kNN radius.
	radius := math.Sqrt(nn[k-1].DistSq)
	pos = ix.queryPositions(geom.BoxAt(p, 2*radius+1e-9), pos[:0])
	return ix.rank(pos, p, k)
}

// rank converts data positions into the k nearest Neighbors, sorted by
// distance (ID as a deterministic tie-break).
func (ix *Index) rank(pos []int32, p geom.Point, k int) []Neighbor {
	nn := make([]Neighbor, 0, len(pos))
	for _, j := range pos {
		nn = append(nn, Neighbor{ID: ix.data.ID[j], DistSq: ix.data.MinDistSq(int(j), p)})
	}
	sort.Slice(nn, func(i, j int) bool {
		if nn[i].DistSq != nn[j].DistSq {
			return nn[i].DistSq < nn[j].DistSq
		}
		return nn[i].ID < nn[j].ID
	})
	if len(nn) > k {
		nn = nn[:k]
	}
	return nn
}
