package core

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Neighbor is one k-nearest-neighbor result: an object ID and its squared
// box distance to the query point.
type Neighbor struct {
	ID     int32
	DistSq float64
}

// KNN returns the k objects nearest to p (by minimum box distance), closest
// first. The paper positions range queries as "the building block for many
// other spatial queries" (Sec. 2); KNN is implemented exactly that way: a
// search cube sized from the data density doubles until it holds k
// candidates, and one final query at the k-th candidate's distance
// guarantees no closer object is missed. Like every QUASII query, each probe
// refines the index around p as a side effect.
func (ix *Index) KNN(p geom.Point, k int) []Neighbor {
	ix.Flush() // fold any appended objects so position-based ranking sees them
	if k <= 0 || ix.data.Len() == 0 {
		return nil
	}
	if k > ix.data.Len() {
		k = ix.data.Len()
	}
	span := ix.live.Load().dataMBB
	// Initial cube: volume sized for an expected 2k objects under a uniform
	// density assumption; clamped to a sane floor.
	side := math.Cbrt(span.Volume() * 2 * float64(k) / float64(ix.data.Len()))
	if side <= 0 || math.IsNaN(side) {
		side = 1
	}
	maxSide := 0.0
	for d := 0; d < geom.Dims; d++ {
		if e := span.Extent(d); e > maxSide {
			maxSide = e
		}
	}
	var pos []int32
	for {
		pos = ix.queryPositions(geom.BoxAt(p, side), pos[:0])
		if len(pos) >= k || side > 2*maxSide+1 {
			break
		}
		side *= 2
	}
	if len(pos) < k {
		// p is far outside the data (or k is close to n): the capped probe
		// cube ran out before collecting k candidates, and a partial
		// candidate set is not necessarily the nearest one. Widen to
		// everything so the ranking below is exact.
		pos = ix.queryPositions(span.Expand(geom.Point{1, 1, 1}), pos[:0])
	}
	nn := ix.rank(pos, p, k)
	if len(nn) < k {
		return nn
	}
	// Exactness pass: the k-th candidate bounds the true kNN radius.
	radius := math.Sqrt(nn[k-1].DistSq)
	pos = ix.queryPositions(geom.BoxAt(p, 2*radius+1e-9), pos[:0])
	return ix.rank(pos, p, k)
}

// rank converts data positions into the k nearest Neighbors, sorted by
// distance (ID as a deterministic tie-break).
func (ix *Index) rank(pos []int32, p geom.Point, k int) []Neighbor {
	nn := make([]Neighbor, 0, len(pos))
	for _, j := range pos {
		nn = append(nn, Neighbor{ID: ix.data.ID[j], DistSq: ix.data.MinDistSq(int(j), p)})
	}
	return sortTrim(nn, k)
}

// rankVisible is rank for the shared MVCC path: lane positions whose ID is
// tombstoned in v are dropped, and every visible pending object of v joins
// the candidate set (pending objects are few and unindexed, so ranking all
// of them is both cheap and what keeps the result exact regardless of the
// probe geometry).
func (ix *Index) rankVisible(pos []int32, v *Version, p geom.Point, k int) []Neighbor {
	nn := make([]Neighbor, 0, len(pos)+len(v.pending))
	for _, j := range pos {
		id := v.table.ID[j]
		if _, dead := v.deleted[id]; dead {
			continue
		}
		nn = append(nn, Neighbor{ID: id, DistSq: v.table.MinDistSq(int(j), p)})
	}
	for i := range v.pending {
		o := &v.pending[i]
		if _, dead := v.deleted[o.ID]; dead {
			continue
		}
		nn = append(nn, Neighbor{ID: o.ID, DistSq: boxMinDistSq(o.Box, p)})
	}
	return sortTrim(nn, k)
}

// sortTrim orders candidates by distance (ID tie-break) and keeps the k
// nearest.
func sortTrim(nn []Neighbor, k int) []Neighbor {
	sort.Slice(nn, func(i, j int) bool {
		if nn[i].DistSq != nn[j].DistSq {
			return nn[i].DistSq < nn[j].DistSq
		}
		return nn[i].ID < nn[j].ID
	})
	if len(nn) > k {
		nn = nn[:k]
	}
	return nn
}

// boxMinDistSq returns the squared minimum distance between p and box b —
// the AoS twin of colstore's MinDistSq, for pending objects that have no
// lane row yet.
func boxMinDistSq(b geom.Box, p geom.Point) float64 {
	var sum float64
	for d := 0; d < geom.Dims; d++ {
		switch {
		case p[d] < b.Min[d]:
			diff := b.Min[d] - p[d]
			sum += diff * diff
		case p[d] > b.Max[d]:
			diff := p[d] - b.Max[d]
			sum += diff * diff
		}
	}
	return sum
}
