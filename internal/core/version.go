// MVCC version chain: the index's mutable update state — pending inserts,
// tombstones, and the derived extent bookkeeping — lives in immutable,
// sequence-tagged Version values layered over the columnar lanes instead of
// in plain Index fields. A reader loads the live version once (an atomic
// pointer read) and walks lanes + visible deltas against that frozen view;
// a writer builds the successor version and publishes it with an atomic
// swap. Readers therefore never block on writers and never retry because of
// a data change — the crack epoch, which used to move on every Append and
// Delete, now moves only for structural reorganizations (cracks, splices,
// finalizations, flushes) that genuinely invalidate an in-flight walk.
//
// # Copy-on-write discipline
//
// pending grows append-only between flushes and successive versions share
// its backing array: version v reads only pending[:len_v], and the slots
// beyond len_v are written exactly once (by the serialized writer that
// publishes the next version) before that next version is published. The
// atomic publish gives the happens-before edge, so the sharing is race-free
// by construction. deleted is a map and maps cannot be shared that way: a
// delete copies it. Flush starts both fresh.
//
// # Locking contract
//
// Writers (Append, Delete, DeleteShared, Flush) serialize on verMu, so any
// number of them may run under the shard's *shared* lock concurrently with
// readers. The exclusive lock is still required for structural work —
// cracking queries and Flush — exactly as before. PinVersion/Release must
// be called while holding at least the same shared lock the readers use;
// that exclusion is what lets Flush decide safely whether a pinned version
// still references the current lanes (and clone them if so).
//
// # Garbage collection
//
// Every publish and every pin release truncates the chain: predecessors
// that are not pinned are spliced out (their view is unreachable — readers
// only ever load the head, and pinned holders keep their own pointer).
// After quiescence the chain is exactly one version long; the shard layer's
// CheckInvariants enforces a configurable upper bound (the GC horizon).

package core

import (
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/geom"
)

// Version is one immutable snapshot of the index's update state. A Version
// obtained from PinVersion stays valid — its pending slice, tombstone set,
// and base table are never mutated — until Release. The zero Version is not
// meaningful; versions are created only by the index.
type Version struct {
	seq     uint64
	pending []geom.Object      // appended objects not yet folded into the lanes
	deleted map[int32]struct{} // tombstoned IDs (lane rows and pending entries)
	maxExt  geom.Point         // max object extent per dimension at this version
	dataMBB geom.Box           // bounding box of all data at this version

	// table, root and tau identify the base the deltas layer over. They
	// track the index's live fields until a Flush supersedes them, at which
	// point this version keeps the superseded (now frozen) generation. The
	// table's rows may still be reordered in place by cracking while this
	// version is current-generation — content, not membership, changes — so
	// serializing a pinned version must happen under the same lock that
	// excludes cracking (the shard's read lock).
	table *colstore.Table
	root  *sliceList
	tau   [geom.Dims]int

	pins  atomic.Int64
	prev  atomic.Pointer[Version]
	owner *Index
}

// Seq returns the version's sequence number: the value DataVersion reported
// when this version was live. Strictly increasing along the chain.
func (v *Version) Seq() uint64 { return v.seq }

// PendingLen and DeletedLen expose the delta sizes of this version's view.
func (v *Version) PendingLen() int { return len(v.pending) }
func (v *Version) DeletedLen() int { return len(v.deleted) }

// Release unpins the version and lets garbage collection splice it out of
// the chain. Call exactly once per PinVersion, holding at least the shared
// lock (the same contract as PinVersion).
func (v *Version) Release() {
	ix := v.owner
	ix.verMu.Lock()
	v.pins.Add(-1)
	ix.gcLocked()
	ix.verMu.Unlock()
}

// liveVersion returns the current head of the version chain. Always
// non-nil on an index built by New or Load.
func (ix *Index) liveVersion() *Version { return ix.live.Load() }

// DataVersion returns the sequence number of the live version — the real
// version counter the crack epoch generalized into. It moves on every
// accepted data change (Append, Delete, Flush) and is untouched by
// structural refinement.
func (ix *Index) DataVersion() uint64 { return ix.live.Load().seq }

// LiveVersions returns the current length of the version chain (head
// included). 1 means fully collected: no superseded version is reachable.
func (ix *Index) LiveVersions() int {
	ix.verMu.Lock()
	defer ix.verMu.Unlock()
	n := 0
	for v := ix.live.Load(); v != nil; v = v.prev.Load() {
		n++
	}
	return n
}

// PinVersion pins the live version against garbage collection and returns
// it. The caller must hold at least the shared lock guarding this index and
// must call Release exactly once. While pinned, the version's view survives
// any number of appends, deletes, flushes and checkpoints.
func (ix *Index) PinVersion() *Version {
	ix.verMu.Lock()
	v := ix.live.Load()
	v.pins.Add(1)
	ix.verMu.Unlock()
	return v
}

// publishLocked installs nv as the new live version and truncates the
// chain. Caller holds verMu.
func (ix *Index) publishLocked(nv *Version) {
	nv.owner = ix
	nv.prev.Store(ix.live.Load())
	ix.live.Store(nv)
	ix.gcLocked()
}

// gcLocked splices every unpinned predecessor out of the chain, keeping the
// head and every pinned version (a pinned version's own prev pointers keep
// collapsing too, so released pins cannot resurrect intermediates). Caller
// holds verMu.
func (ix *Index) gcLocked() {
	cur := ix.live.Load()
	for {
		next := cur.prev.Load()
		if next == nil {
			return
		}
		if next.pins.Load() > 0 {
			cur = next
			continue
		}
		cur.prev.Store(next.prev.Load())
	}
}

// chainPinned reports whether any version in the chain is pinned. Flush
// consults it (under the exclusive lock, which excludes new pins by the
// locking contract) to decide whether the lanes must be cloned before
// compaction so pinned views stay immutable.
func (ix *Index) chainPinned() bool {
	for v := ix.live.Load(); v != nil; v = v.prev.Load() {
		if v.pins.Load() > 0 {
			return true
		}
	}
	return false
}

// initVersion installs the index's first version from its freshly built
// state. Called by New, Load, and nowhere else.
func (ix *Index) initVersion(pending []geom.Object, deleted map[int32]struct{}, maxExt geom.Point, dataMBB geom.Box) {
	v := &Version{
		seq:     1,
		pending: pending,
		deleted: deleted,
		maxExt:  maxExt,
		dataMBB: dataMBB,
		table:   ix.data,
		root:    ix.root,
		tau:     ix.tau,
		owner:   ix,
	}
	ix.live.Store(v)
}

// AppendVersioned registers new objects and returns the sequence number of
// the version that made them visible: a reader pinned at or after that
// sequence is guaranteed to see them. Safe under the shared lock,
// concurrently with readers and other writers.
func (ix *Index) AppendVersioned(objs ...geom.Object) uint64 {
	ix.verMu.Lock()
	defer ix.verMu.Unlock()
	cur := ix.live.Load()
	nv := &Version{
		seq: cur.seq + 1,
		// Append-only COW: old versions read only their own prefix.
		pending: append(cur.pending, objs...),
		deleted: cur.deleted,
		maxExt:  cur.maxExt,
		dataMBB: cur.dataMBB,
		table:   cur.table,
		root:    cur.root,
		tau:     cur.tau,
	}
	for i := range objs {
		for d := 0; d < geom.Dims; d++ {
			if e := objs[i].Max[d] - objs[i].Min[d]; e > nv.maxExt[d] {
				nv.maxExt[d] = e
			}
		}
		nv.dataMBB = nv.dataMBB.Extend(objs[i].Box)
	}
	ix.publishLocked(nv)
	return nv.seq
}

// deleteVersioned publishes a tombstone for id onto the live version and
// returns the publishing sequence. Caller has already established that id
// is visible (present and not yet tombstoned). Safe under the shared lock.
func (ix *Index) deleteVersioned(id int32) uint64 {
	ix.verMu.Lock()
	defer ix.verMu.Unlock()
	cur := ix.live.Load()
	del := make(map[int32]struct{}, len(cur.deleted)+1)
	for k := range cur.deleted {
		del[k] = struct{}{}
	}
	del[id] = struct{}{}
	nv := &Version{
		seq:     cur.seq + 1,
		pending: cur.pending,
		deleted: del,
		maxExt:  cur.maxExt,
		dataMBB: cur.dataMBB,
		table:   cur.table,
		root:    cur.root,
		tau:     cur.tau,
	}
	ix.publishLocked(nv)
	return nv.seq
}

// DeleteShared removes the object with the given ID without taking the
// exclusive path, using hint to locate it through the read-only shared
// walk. found reports whether a visible object carrying id intersected
// hint; ok reports whether the shared walk could decide at all — ok ==
// false means the hint region still needs refinement and the caller must
// escalate to the exclusive Delete. Safe under the shared lock.
func (ix *Index) DeleteShared(id int32, hint geom.Box) (found, ok bool) {
	_, found, ok = ix.deleteSharedSeq(id, hint)
	return found, ok
}

// deleteSharedSeq is DeleteShared reporting the sequence number of the
// version that published the tombstone (0 when nothing was deleted) — the
// visibility harness correlates it with pinned reads.
func (ix *Index) deleteSharedSeq(id int32, hint geom.Box) (seq uint64, found, ok bool) {
	ix.verMu.Lock()
	cur := ix.live.Load()
	// A pending object: tombstone it directly.
	for i := range cur.pending {
		if cur.pending[i].ID == id && cur.pending[i].Intersects(hint) {
			if _, dead := cur.deleted[id]; !dead {
				seq = ix.deleteSharedLocked(cur, id)
				ix.verMu.Unlock()
				return seq, true, true
			}
		}
	}
	ix.verMu.Unlock()
	if _, dead := cur.deleted[id]; dead {
		// Already tombstoned: invisible, nothing to delete.
		return 0, false, true
	}
	if cur.table.Len() == 0 || hint.IsEmpty() {
		return 0, false, true
	}
	// Locate in the indexed lanes via the read-only walk. Positions are
	// stable for the whole call: structural reorganization needs the
	// exclusive lock the caller's shared lock excludes.
	pos, walkOK := ix.queryListShared(hint, ix.root, 0, nil, false)
	if !walkOK {
		return 0, false, false
	}
	for _, p := range pos {
		if ix.data.ID[p] == id {
			// Re-take verMu and re-check under it: a concurrent writer may
			// have tombstoned id between the scan above and now.
			ix.verMu.Lock()
			cur = ix.live.Load()
			if _, dead := cur.deleted[id]; dead {
				ix.verMu.Unlock()
				return 0, false, true
			}
			seq = ix.deleteSharedLocked(cur, id)
			ix.verMu.Unlock()
			return seq, true, true
		}
	}
	return 0, false, true
}

// deleteSharedLocked publishes cur's successor carrying one extra
// tombstone and returns the publishing sequence. Caller holds verMu and
// has verified id is visible in cur.
func (ix *Index) deleteSharedLocked(cur *Version, id int32) uint64 {
	del := make(map[int32]struct{}, len(cur.deleted)+1)
	for k := range cur.deleted {
		del[k] = struct{}{}
	}
	del[id] = struct{}{}
	nv := &Version{
		seq:     cur.seq + 1,
		pending: cur.pending,
		deleted: del,
		maxExt:  cur.maxExt,
		dataMBB: cur.dataMBB,
		table:   cur.table,
		root:    cur.root,
		tau:     cur.tau,
	}
	ix.publishLocked(nv)
	return nv.seq
}
