package octree

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil, Config{})
	if res := tr.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
		t.Fatalf("got %d results", len(res))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesScan(t *testing.T) {
	data := dataset.Uniform(8000, 101)
	oracle := scan.New(data)
	tr := New(data, Config{Capacity: 32, Universe: dataset.Universe()})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for qi, q := range workload.Uniform(dataset.Universe(), 80, 1e-3, 102) {
		got := sortedIDs(tr.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestMatchesScanLargeObjects(t *testing.T) {
	data := dataset.RandomBoxes(1500, 103, dataset.Universe())
	oracle := scan.New(data)
	tr := New(data, Config{Capacity: 16, Universe: dataset.Universe()})
	for qi, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 104) {
		got := sortedIDs(tr.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestLeavesGrowWithData(t *testing.T) {
	small := New(dataset.Uniform(100, 105), Config{Capacity: 10, Universe: dataset.Universe()})
	large := New(dataset.Uniform(10000, 105), Config{Capacity: 10, Universe: dataset.Universe()})
	if large.Leaves() <= small.Leaves() {
		t.Fatalf("leaves: small=%d large=%d", small.Leaves(), large.Leaves())
	}
}

func TestMaxDepthBoundsSplitting(t *testing.T) {
	// Densely duplicated centers would split forever without the depth bound.
	b := geom.BoxAt(geom.Point{10, 10, 10}, 1)
	data := make([]geom.Object, 500)
	for i := range data {
		data[i] = geom.Object{Box: b, ID: int32(i)}
	}
	tr := New(data, Config{Capacity: 4, MaxDepth: 5, Universe: dataset.Universe()})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res := tr.Query(geom.BoxAt(geom.Point{10, 10, 10}, 2), nil)
	if len(res) != 500 {
		t.Fatalf("got %d of 500", len(res))
	}
}

func TestOctantIndexing(t *testing.T) {
	n := Node{Box: geom.Box{Max: geom.Point{2, 2, 2}}}
	tests := []struct {
		p    geom.Point
		want int
	}{
		{geom.Point{0.5, 0.5, 0.5}, 0},
		{geom.Point{1.5, 0.5, 0.5}, 1},
		{geom.Point{0.5, 1.5, 0.5}, 2},
		{geom.Point{0.5, 0.5, 1.5}, 4},
		{geom.Point{1.5, 1.5, 1.5}, 7},
	}
	for _, tt := range tests {
		if got := n.Octant(tt.p); got != tt.want {
			t.Errorf("Octant(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestSplitPartitionsChildren(t *testing.T) {
	data := dataset.Uniform(100, 106)
	n := Node{Box: dataset.Universe()}
	for i := range data {
		n.Objs = append(n.Objs, int32(i))
	}
	n.Split(data)
	if n.IsLeaf() || len(n.Objs) != 0 {
		t.Fatal("split node should be internal and empty")
	}
	total := 0
	for i := range n.Children {
		c := &n.Children[i]
		total += len(c.Objs)
		for _, idx := range c.Objs {
			if c.Octant(data[idx].Center()) != 0 && !c.Box.ContainsPoint(data[idx].Center()) {
				t.Fatalf("object %d center %v outside child box %v", idx, data[idx].Center(), c.Box)
			}
		}
	}
	if total != len(data) {
		t.Fatalf("children hold %d of %d objects", total, len(data))
	}
}

func TestLenAndExtended(t *testing.T) {
	tr := New(dataset.Uniform(77, 107), Config{Universe: dataset.Universe()})
	if tr.Len() != 77 {
		t.Fatalf("Len = %d, want 77", tr.Len())
	}
	// Extension is half the max extent per dimension (center assignment).
	q := geom.BoxAt(geom.Point{10, 10, 10}, 2)
	ext := Extended(q, geom.Point{4, 6, 8})
	want := geom.Box{Min: geom.Point{7, 6, 5}, Max: geom.Point{13, 14, 15}}
	if ext != want {
		t.Fatalf("Extended = %v, want %v", ext, want)
	}
}
