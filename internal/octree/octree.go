// Package octree implements the space-oriented hierarchical substrate behind
// Mosaic: a 3-d octree that recursively halves space into eight equal
// octants (Jackins & Tanimoto, 1980). Objects are assigned to leaves by their
// center (query-extension assignment), so queries must be extended by half
// the maximum object extent per dimension.
//
// The package offers a static index (fully built at construction, splitting
// leaves that exceed capacity) used both as a standalone baseline and as the
// structural basis for the incremental Mosaic index in package mosaic.
package octree

import (
	"repro/internal/geom"
)

// DefaultCapacity is the leaf capacity (objects per leaf before a split).
const DefaultCapacity = 60

// DefaultMaxDepth bounds the tree depth; 2^depth cells per dimension.
const DefaultMaxDepth = 8

// Config controls octree construction.
type Config struct {
	// Capacity is the leaf split threshold. Values < 1 mean DefaultCapacity.
	Capacity int
	// MaxDepth bounds the depth. Values < 1 mean DefaultMaxDepth.
	MaxDepth int
	// Universe is the root cube. Empty means derived from data.
	Universe geom.Box
}

func (c *Config) defaults(data []geom.Object) {
	if c.Capacity < 1 {
		c.Capacity = DefaultCapacity
	}
	if c.MaxDepth < 1 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.Universe.IsEmpty() || c.Universe.Volume() == 0 {
		u := geom.MBB(data)
		if u.IsEmpty() {
			u = geom.Box{Max: geom.Point{1, 1, 1}}
		}
		c.Universe = u
	}
}

// Node is one octree cell. Exported so package mosaic can drive query-time
// splits over the same structure.
type Node struct {
	Box      geom.Box
	Depth    int
	Children *[8]Node // nil for leaves
	Objs     []int32  // object indices, leaves only
	Gen      int      // query generation that created this node (used by mosaic)
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Children == nil }

// Octant returns the child index (0-7) of the octant of n containing p,
// with bit 0 = x-high, bit 1 = y-high, bit 2 = z-high.
func (n *Node) Octant(p geom.Point) int {
	c := n.Box.Center()
	idx := 0
	if p[0] >= c[0] {
		idx |= 1
	}
	if p[1] >= c[1] {
		idx |= 2
	}
	if p[2] >= c[2] {
		idx |= 4
	}
	return idx
}

// Split materializes n's eight children and redistributes its objects by
// center. n keeps no objects afterwards. data is the shared object array the
// indices point into.
func (n *Node) Split(data []geom.Object) {
	var children [8]Node
	c := n.Box.Center()
	for i := 0; i < 8; i++ {
		b := n.Box
		if i&1 != 0 {
			b.Min[0] = c[0]
		} else {
			b.Max[0] = c[0]
		}
		if i&2 != 0 {
			b.Min[1] = c[1]
		} else {
			b.Max[1] = c[1]
		}
		if i&4 != 0 {
			b.Min[2] = c[2]
		} else {
			b.Max[2] = c[2]
		}
		children[i] = Node{Box: b, Depth: n.Depth + 1, Gen: n.Gen}
	}
	for _, idx := range n.Objs {
		oct := n.Octant(data[idx].Center())
		children[oct].Objs = append(children[oct].Objs, idx)
	}
	n.Objs = nil
	n.Children = &children
}

// Tree is a static octree index.
type Tree struct {
	data   []geom.Object
	root   Node
	cfg    Config
	maxExt geom.Point
	leaves int
}

// New builds a static octree: all objects are inserted and leaves split
// eagerly until capacity or max depth is reached.
func New(data []geom.Object, cfg Config) *Tree {
	cfg.defaults(data)
	t := &Tree{data: data, cfg: cfg, maxExt: geom.MaxExtents(data)}
	t.root = Node{Box: cfg.Universe}
	t.root.Objs = make([]int32, len(data))
	for i := range data {
		t.root.Objs[i] = int32(i)
	}
	t.leaves = 1
	t.refine(&t.root)
	return t
}

func (t *Tree) refine(n *Node) {
	if len(n.Objs) <= t.cfg.Capacity || n.Depth >= t.cfg.MaxDepth {
		return
	}
	n.Split(t.data)
	t.leaves += 7
	for i := range n.Children {
		t.refine(&n.Children[i])
	}
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return len(t.data) }

// Leaves returns the current number of leaf cells.
func (t *Tree) Leaves() int { return t.leaves }

// Query appends the IDs of all objects intersecting q to out.
func (t *Tree) Query(q geom.Box, out []int32) []int32 {
	if q.IsEmpty() || len(t.data) == 0 {
		return out
	}
	search := extended(q, t.maxExt)
	return t.query(&t.root, q, search, out)
}

func (t *Tree) query(n *Node, q, search geom.Box, out []int32) []int32 {
	if !n.Box.Intersects(search) {
		return out
	}
	if n.IsLeaf() {
		for _, idx := range n.Objs {
			if t.data[idx].Intersects(q) {
				out = append(out, t.data[idx].ID)
			}
		}
		return out
	}
	for i := range n.Children {
		out = t.query(&n.Children[i], q, search, out)
	}
	return out
}

// extended grows q by half the max object extent per dimension — the query
// extension required by center-based assignment.
func extended(q geom.Box, maxExt geom.Point) geom.Box {
	var half geom.Point
	for d := 0; d < geom.Dims; d++ {
		half[d] = maxExt[d] / 2
	}
	return q.Expand(half)
}

// Extended is the exported form of the query-extension helper, shared with
// package mosaic.
func Extended(q geom.Box, maxExt geom.Point) geom.Box { return extended(q, maxExt) }

// CheckInvariants verifies that every object is registered in exactly one
// leaf and that the leaf's cube contains the object's center (clamped to the
// universe). Used by tests.
func (t *Tree) CheckInvariants() error {
	seen := make(map[int32]bool, len(t.data))
	if err := t.check(&t.root, seen); err != nil {
		return err
	}
	if len(seen) != len(t.data) {
		return errInvariant("object count mismatch")
	}
	return nil
}

func (t *Tree) check(n *Node, seen map[int32]bool) error {
	if n.IsLeaf() {
		for _, idx := range n.Objs {
			if seen[idx] {
				return errInvariant("object assigned to multiple leaves")
			}
			seen[idx] = true
		}
		return nil
	}
	if len(n.Objs) != 0 {
		return errInvariant("internal node holds objects")
	}
	for i := range n.Children {
		if err := t.check(&n.Children[i], seen); err != nil {
			return err
		}
	}
	return nil
}

type errInvariant string

func (e errInvariant) Error() string { return "octree: " + string(e) }
