package grid

import (
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyGrid(t *testing.T) {
	for _, assign := range []Assignment{QueryExtension, Replication} {
		ix := New(nil, Config{Assign: assign})
		if res := ix.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
			t.Fatalf("assign %v: got %d results", assign, len(res))
		}
	}
}

func TestMatchesScanBothAssignments(t *testing.T) {
	data := dataset.Uniform(8000, 81)
	oracle := scan.New(data)
	queries := workload.Uniform(dataset.Universe(), 80, 1e-3, 82)
	for _, assign := range []Assignment{QueryExtension, Replication} {
		ix := New(data, Config{Partitions: 32, Assign: assign, Universe: dataset.Universe()})
		for qi, q := range queries {
			got := sortedIDs(ix.Query(q, nil))
			want := sortedIDs(oracle.Query(q, nil))
			if !equalIDs(got, want) {
				t.Fatalf("assign %v query %d: got %d, want %d", assign, qi, len(got), len(want))
			}
		}
	}
}

func TestMatchesScanLargeObjects(t *testing.T) {
	// Large objects overlap many cells: replication factor high, extension
	// radius large. Both must stay correct.
	data := dataset.RandomBoxes(1000, 83, dataset.Universe())
	oracle := scan.New(data)
	queries := workload.Uniform(dataset.Universe(), 30, 1e-3, 84)
	for _, assign := range []Assignment{QueryExtension, Replication} {
		ix := New(data, Config{Partitions: 16, Assign: assign, Universe: dataset.Universe()})
		for qi, q := range queries {
			got := sortedIDs(ix.Query(q, nil))
			want := sortedIDs(oracle.Query(q, nil))
			if !equalIDs(got, want) {
				t.Fatalf("assign %v query %d: got %d, want %d", assign, qi, len(got), len(want))
			}
		}
	}
}

func TestReplicationNoDuplicates(t *testing.T) {
	data := dataset.RandomBoxes(500, 85, dataset.Universe())
	ix := New(data, Config{Partitions: 8, Assign: Replication, Universe: dataset.Universe()})
	q := dataset.Universe()
	res := ix.Query(q, nil)
	seen := make(map[int32]bool, len(res))
	for _, id := range res {
		if seen[id] {
			t.Fatalf("duplicate id %d in result", id)
		}
		seen[id] = true
	}
	if len(res) != len(data) {
		t.Fatalf("universe query returned %d of %d", len(res), len(data))
	}
}

func TestReplicationFactorExceedsOne(t *testing.T) {
	data := dataset.RandomBoxes(500, 86, dataset.Universe())
	rep := New(data, Config{Partitions: 16, Assign: Replication, Universe: dataset.Universe()})
	ext := New(data, Config{Partitions: 16, Assign: QueryExtension, Universe: dataset.Universe()})
	if rep.ReplicatedEntries() <= int64(len(data)) {
		t.Fatalf("replication entries = %d, want > %d", rep.ReplicatedEntries(), len(data))
	}
	if ext.ReplicatedEntries() != int64(len(data)) {
		t.Fatalf("query-extension entries = %d, want %d", ext.ReplicatedEntries(), len(data))
	}
}

func TestCandidateCountExtensionConsidersMore(t *testing.T) {
	// Query extension inspects more candidates than the final result size —
	// the Fig. 6a effect.
	data := dataset.Uniform(20000, 87)
	ix := New(data, Config{Partitions: 32, Universe: dataset.Universe()})
	q := workload.Uniform(dataset.Universe(), 1, 1e-3, 88)[0]
	cand := ix.CandidateCount(q)
	res := len(ix.Query(q, nil))
	if cand < int64(res) {
		t.Fatalf("candidates %d < results %d", cand, res)
	}
	if cand == 0 {
		t.Fatal("no candidates inspected")
	}
}

func TestDefaultPartitions(t *testing.T) {
	ix := New(dataset.Uniform(100, 89), Config{})
	if ix.Partitions() != DefaultPartitions {
		t.Fatalf("partitions = %d, want %d", ix.Partitions(), DefaultPartitions)
	}
}

func TestQueryOutsideUniverse(t *testing.T) {
	data := dataset.Uniform(1000, 90)
	ix := New(data, Config{Partitions: 16, Universe: dataset.Universe()})
	q := geom.Box{Min: geom.Point{-100, -100, -100}, Max: geom.Point{-50, -50, -50}}
	if res := ix.Query(q, nil); len(res) != 0 {
		t.Fatalf("got %d results outside the universe", len(res))
	}
}

func TestEpochWrapReset(t *testing.T) {
	data := dataset.Uniform(200, 91)
	ix := New(data, Config{Partitions: 4, Assign: Replication, Universe: dataset.Universe()})
	ix.curEpoch = ^uint32(0) - 1 // force a wrap within two queries
	oracle := scan.New(data)
	q := workload.Uniform(dataset.Universe(), 1, 1e-2, 92)[0]
	for i := 0; i < 3; i++ {
		got := sortedIDs(ix.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("after epoch wrap iteration %d: got %d, want %d", i, len(got), len(want))
		}
	}
}
