// Package grid implements the uniform-grid baseline of the QUASII paper with
// both object-assignment strategies analyzed in Sec. 6.2:
//
//   - query extension (GridQueryExt): an object is assigned to the single
//     cell containing its center; queries are extended by half the maximum
//     object extent per dimension to stay correct (Stefanakis et al.).
//   - replication (GridReplication): an object is assigned to every cell its
//     box overlaps; queries must de-duplicate results.
//
// The grid resolution (partitions per dimension) is the configuration knob
// whose data-dependence the paper demonstrates in Fig. 6b.
package grid

import (
	"repro/internal/geom"
)

// Assignment selects the object-to-cell assignment strategy.
type Assignment int

const (
	// QueryExtension assigns by center and extends queries (no duplicates).
	QueryExtension Assignment = iota
	// Replication assigns to all overlapping cells (duplicates possible).
	Replication
)

// Config controls grid construction.
type Config struct {
	// Partitions is the number of cells per dimension. The paper sweeps this
	// and uses 100 (uniform data) / 220 (neuro data). Values < 1 mean 64.
	Partitions int
	// Assign selects the assignment strategy. Default QueryExtension.
	Assign Assignment
	// Universe is the box the grid covers. Empty means derived from data.
	Universe geom.Box
}

// DefaultPartitions is the fallback grid resolution.
const DefaultPartitions = 64

// Index is a uniform grid over 3-d boxes.
type Index struct {
	data     []geom.Object
	universe geom.Box
	parts    int
	scale    [3]float64
	cells    [][]int32 // object indices per cell
	assign   Assignment
	maxExt   geom.Point
	// visited stamps for replication de-duplication (epoch per object).
	stamp      []uint32
	curEpoch   uint32
	replicated int64 // total cell entries (>= len(data) under replication)
}

// New builds a uniform grid index over data. The input slice is referenced,
// not copied, and never reorganized.
func New(data []geom.Object, cfg Config) *Index {
	if cfg.Partitions < 1 {
		cfg.Partitions = DefaultPartitions
	}
	if cfg.Universe.IsEmpty() || cfg.Universe.Volume() == 0 {
		u := geom.MBB(data)
		if u.IsEmpty() {
			u = geom.Box{Max: geom.Point{1, 1, 1}}
		}
		cfg.Universe = u
	}
	ix := &Index{
		data:     data,
		universe: cfg.Universe,
		parts:    cfg.Partitions,
		assign:   cfg.Assign,
		maxExt:   geom.MaxExtents(data),
	}
	for d := 0; d < geom.Dims; d++ {
		span := ix.universe.Max[d] - ix.universe.Min[d]
		if span <= 0 {
			span = 1
		}
		ix.scale[d] = float64(ix.parts) / span
	}
	p := ix.parts
	ix.cells = make([][]int32, p*p*p)
	switch ix.assign {
	case Replication:
		ix.stamp = make([]uint32, len(data))
		for i := range data {
			lo := ix.cellCoords(data[i].Min)
			hi := ix.cellCoords(data[i].Max)
			for x := lo[0]; x <= hi[0]; x++ {
				for y := lo[1]; y <= hi[1]; y++ {
					for z := lo[2]; z <= hi[2]; z++ {
						c := ix.cellIndex(x, y, z)
						ix.cells[c] = append(ix.cells[c], int32(i))
						ix.replicated++
					}
				}
			}
		}
	default:
		for i := range data {
			cc := ix.cellCoords(data[i].Center())
			c := ix.cellIndex(cc[0], cc[1], cc[2])
			ix.cells[c] = append(ix.cells[c], int32(i))
		}
	}
	return ix
}

// cellCoords maps a point to clamped integer cell coordinates.
func (ix *Index) cellCoords(p geom.Point) [3]int {
	var c [3]int
	for d := 0; d < geom.Dims; d++ {
		v := int((p[d] - ix.universe.Min[d]) * ix.scale[d])
		if v < 0 {
			v = 0
		}
		if v >= ix.parts {
			v = ix.parts - 1
		}
		c[d] = v
	}
	return c
}

func (ix *Index) cellIndex(x, y, z int) int {
	return (z*ix.parts+y)*ix.parts + x
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return len(ix.data) }

// Partitions returns the configured cells per dimension.
func (ix *Index) Partitions() int { return ix.parts }

// ReplicatedEntries returns the total number of cell entries. Under
// replication this exceeds Len(); the ratio is the replication factor the
// paper blames for GridReplication's slowdown.
func (ix *Index) ReplicatedEntries() int64 {
	if ix.assign == Replication {
		return ix.replicated
	}
	return int64(len(ix.data))
}

// Query appends the IDs of all objects intersecting q to out.
func (ix *Index) Query(q geom.Box, out []int32) []int32 {
	if q.IsEmpty() || len(ix.data) == 0 {
		return out
	}
	search := q
	if ix.assign == QueryExtension {
		var half geom.Point
		for d := 0; d < geom.Dims; d++ {
			half[d] = ix.maxExt[d] / 2
		}
		search = q.Expand(half)
	}
	lo := ix.cellCoords(search.Min)
	hi := ix.cellCoords(search.Max)
	if ix.assign == Replication {
		ix.curEpoch++
		if ix.curEpoch == 0 { // epoch wrap: reset stamps
			for i := range ix.stamp {
				ix.stamp[i] = 0
			}
			ix.curEpoch = 1
		}
	}
	for z := lo[2]; z <= hi[2]; z++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for x := lo[0]; x <= hi[0]; x++ {
				for _, idx := range ix.cells[ix.cellIndex(x, y, z)] {
					if ix.assign == Replication {
						if ix.stamp[idx] == ix.curEpoch {
							continue
						}
						ix.stamp[idx] = ix.curEpoch
					}
					if ix.data[idx].Intersects(q) {
						out = append(out, ix.data[idx].ID)
					}
				}
			}
		}
	}
	return out
}

// Count returns the number of objects intersecting q.
func (ix *Index) Count(q geom.Box) int { return len(ix.Query(q, nil)) }

// CandidateCount returns how many cell entries a query for q would inspect —
// the "objects considered for intersection" metric of Fig. 6a.
func (ix *Index) CandidateCount(q geom.Box) int64 {
	if q.IsEmpty() || len(ix.data) == 0 {
		return 0
	}
	search := q
	if ix.assign == QueryExtension {
		var half geom.Point
		for d := 0; d < geom.Dims; d++ {
			half[d] = ix.maxExt[d] / 2
		}
		search = q.Expand(half)
	}
	lo := ix.cellCoords(search.Min)
	hi := ix.cellCoords(search.Max)
	var n int64
	for z := lo[2]; z <= hi[2]; z++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for x := lo[0]; x <= hi[0]; x++ {
				n += int64(len(ix.cells[ix.cellIndex(x, y, z)]))
			}
		}
	}
	return n
}
