// Serving-layer failure modes: degraded-store writes answering 503 with
// Retry-After while reads and probes keep flowing, and request contexts
// (client disconnect, per-request deadline) cutting index work short.

package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/ioerr"
	"repro/internal/shard"
)

// flakyStore is a Durability stub whose writes fail with ErrDegraded while
// the degraded flag is up, mirroring internal/durable.Store's contract.
type flakyStore struct {
	ix       *shard.Index
	degraded atomic.Bool
	reason   string
}

func (f *flakyStore) Insert(objs ...geom.Object) error {
	if f.degraded.Load() {
		return ioerr.ErrDegraded
	}
	return f.ix.Insert(objs...)
}

func (f *flakyStore) Delete(id int32, hint geom.Box) (bool, error) {
	if f.degraded.Load() {
		return false, ioerr.ErrDegraded
	}
	return f.ix.Delete(id, hint)
}

func (f *flakyStore) Checkpoint() (uint64, error) {
	if f.degraded.Load() {
		return 0, ioerr.ErrDegraded
	}
	return 1, nil
}

func (f *flakyStore) Degraded() (bool, string) {
	if f.degraded.Load() {
		return true, f.reason
	}
	return false, ""
}

func TestDegradedStoreWritesShedReadsServe(t *testing.T) {
	data := dataset.Uniform(2000, 71)
	ix := shard.New(data, shard.Config{Shards: 4})
	store := &flakyStore{ix: ix, reason: "wal append: fsync failed"}
	s := New(ix, Config{Durability: store, BatchWindow: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	store.degraded.Store(true)

	// Writes shed with 503 + Retry-After.
	obj := ObjectJSON{ID: 900_001}
	obj.Min = [geom.Dims]float64{1, 1, 1}
	obj.Max = [geom.Dims]float64{2, 2, 2}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/insert",
		strings.NewReader(`{"objects":[{"id":900001,"min":[1,1,1],"max":[2,2,2]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/insert while degraded: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/insert 503 missing Retry-After")
	}

	var del DeleteResponse
	if st := call(t, client, http.MethodPost, ts.URL+"/delete",
		DeleteRequest{ID: data[0].ID, Hint: BoxToJSON(data[0].Box)}, &del); st != http.StatusServiceUnavailable {
		t.Fatalf("/delete while degraded: %d, want 503", st)
	}
	if st := call(t, client, http.MethodPost, ts.URL+"/snapshot", struct{}{}, nil); st != http.StatusServiceUnavailable {
		t.Fatalf("/snapshot while degraded: %d, want 503", st)
	}

	// Reads keep serving.
	var qr QueryResponse
	q := QueryRequest{BoxJSON: BoxToJSON(geom.BoxAt(data[0].Center(), 1))}
	if st := call(t, client, http.MethodPost, ts.URL+"/query", q, &qr); st != http.StatusOK {
		t.Fatalf("/query while degraded: %d, want 200", st)
	}

	// /readyz stays 200 (traffic should still route here) but says degraded.
	var ready ReadyResponse
	if st := call(t, client, http.MethodGet, ts.URL+"/readyz", nil, &ready); st != http.StatusOK {
		t.Fatalf("/readyz while degraded: %d, want 200", st)
	}
	if !ready.Degraded || ready.Status != "degraded" || ready.DegradedReason == "" {
		t.Fatalf("/readyz degraded report: %+v", ready)
	}

	// Healing clears everything.
	store.degraded.Store(false)
	var ins InsertResponse
	if st := call(t, client, http.MethodPost, ts.URL+"/insert",
		InsertRequest{Objects: []ObjectJSON{obj}}, &ins); st != http.StatusOK {
		t.Fatalf("/insert after heal: %d, want 200", st)
	}
	ready = ReadyResponse{} // omitempty fields would otherwise keep stale values
	if st := call(t, client, http.MethodGet, ts.URL+"/readyz", nil, &ready); st != http.StatusOK || ready.Degraded || ready.Status != "ready" {
		t.Fatalf("/readyz after heal: status %d, %+v", st, ready)
	}
}

func TestCancelledRequestAnswers503(t *testing.T) {
	data := dataset.Uniform(1000, 72)
	ix := shard.New(data, shard.Config{Shards: 4})
	s := New(ix, Config{BatchWindow: -1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := strings.NewReader(`{"queries":[{"min":[0,0,0],"max":[1,1,1]}]}`)
	req := httptest.NewRequest(http.MethodPost, "/batch", body).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled /batch: %d, want 503", rec.Code)
	}
	if s.mCancelled.Value() != 1 {
		t.Fatalf("quasii_http_cancelled_total = %d, want 1", s.mCancelled.Value())
	}

	// Updates observe cancellation before touching the WAL/index.
	req = httptest.NewRequest(http.MethodPost, "/insert",
		strings.NewReader(`{"objects":[{"id":900001,"min":[1,1,1],"max":[2,2,2]}]}`)).WithContext(ctx)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled /insert: %d, want 503", rec.Code)
	}
	if n := ix.Query(geom.BoxAt(geom.Point{1.5, 1.5, 1.5}, 0.1), nil); len(n) != 0 {
		t.Fatalf("cancelled insert reached the index: %v", n)
	}

	req = httptest.NewRequest(http.MethodPost, "/knn",
		strings.NewReader(`{"point":[0,0,0],"k":3}`)).WithContext(ctx)
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled /knn: %d, want 503", rec.Code)
	}
}

func TestRequestTimeoutExpires(t *testing.T) {
	data := dataset.Uniform(1000, 73)
	ix := shard.New(data, shard.Config{Shards: 4})
	// A 1ns deadline has always expired by the time the fan-out checks it;
	// the coalescing window is disabled so /query takes the immediate path
	// where the context reaches the shard engine directly.
	s := New(ix, Config{BatchWindow: -1, RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var qr QueryResponse
	st := call(t, ts.Client(), http.MethodPost, ts.URL+"/query",
		QueryRequest{BoxJSON: BoxToJSON(dataset.Universe())}, &qr)
	if st != http.StatusServiceUnavailable {
		t.Fatalf("/query past deadline: %d, want 503", st)
	}
	if s.mCancelled.Value() == 0 {
		t.Fatal("deadline expiry not counted in quasii_http_cancelled_total")
	}
}
