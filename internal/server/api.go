// Wire types of the HTTP/JSON query service. They are shared by the server
// handlers, the load generator (internal/bench), and the examples, so the
// two sides cannot drift apart.

package server

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/telemetry"
)

// BoxJSON is a 3-d axis-aligned box on the wire.
type BoxJSON struct {
	Min [geom.Dims]float64 `json:"min"`
	Max [geom.Dims]float64 `json:"max"`
}

// Box converts to the internal geometry type.
func (b BoxJSON) Box() geom.Box { return geom.Box{Min: b.Min, Max: b.Max} }

// BoxToJSON converts from the internal geometry type.
func BoxToJSON(b geom.Box) BoxJSON { return BoxJSON{Min: b.Min, Max: b.Max} }

// validate rejects NaN/Inf coordinates and inverted boxes before they reach
// the index (an inverted box would silently match nothing; NaN poisons the
// shard routing comparisons).
func (b BoxJSON) validate() error {
	for d := 0; d < geom.Dims; d++ {
		if math.IsNaN(b.Min[d]) || math.IsInf(b.Min[d], 0) ||
			math.IsNaN(b.Max[d]) || math.IsInf(b.Max[d], 0) {
			return fmt.Errorf("box coordinate %d is not finite", d)
		}
		if b.Min[d] > b.Max[d] {
			return fmt.Errorf("box min[%d] > max[%d] (%g > %g)", d, d, b.Min[d], b.Max[d])
		}
	}
	return nil
}

// ObjectJSON is a spatial object on the wire.
type ObjectJSON struct {
	ID int32 `json:"id"`
	BoxJSON
}

// Object converts to the internal geometry type.
func (o ObjectJSON) Object() geom.Object { return geom.Object{Box: o.Box(), ID: o.ID} }

// QueryRequest is the body of POST /query: one range query.
type QueryRequest struct {
	BoxJSON
}

// QueryResponse answers /query.
type QueryResponse struct {
	IDs   []int32 `json:"ids"`
	Count int     `json:"count"`
}

// BatchRequest is the body of POST /batch: many range queries answered as
// one QueryBatch fan-out over the shard worker pool.
type BatchRequest struct {
	Queries []BoxJSON `json:"queries"`
}

// BatchResponse answers /batch; Results is indexed like Queries.
type BatchResponse struct {
	Results [][]int32 `json:"results"`
}

// KNNRequest is the body of POST /knn.
type KNNRequest struct {
	Point [geom.Dims]float64 `json:"point"`
	K     int                `json:"k"`
}

// NeighborJSON is one kNN result on the wire.
type NeighborJSON struct {
	ID     int32   `json:"id"`
	DistSq float64 `json:"dist_sq"`
}

// KNNResponse answers /knn, nearest first.
type KNNResponse struct {
	Neighbors []NeighborJSON `json:"neighbors"`
}

// InsertRequest is the body of POST /insert.
type InsertRequest struct {
	Objects []ObjectJSON `json:"objects"`
}

// InsertResponse answers /insert. Pending is a lock-free estimate of the
// inserted objects not yet folded into the indexed arrays (the exact,
// per-shard-locked count is on /stats; see Config.FlushEvery).
type InsertResponse struct {
	Inserted int `json:"inserted"`
	Pending  int `json:"pending"`
}

// DeleteRequest is the body of POST /delete. Hint is the box used to locate
// the object — typically the object's own bounding box.
type DeleteRequest struct {
	ID   int32   `json:"id"`
	Hint BoxJSON `json:"hint"`
}

// DeleteResponse answers /delete.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// SnapshotResponse answers POST /snapshot: the sequence number of the
// checkpoint that was written.
type SnapshotResponse struct {
	Seq uint64 `json:"seq"`
}

// SlowlogResponse answers GET /debug/slowlog: the ring of sampled traces
// that crossed the slow threshold, newest first.
type SlowlogResponse struct {
	Traces []telemetry.TraceEntry `json:"traces"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// RuntimeInfo identifies the serving process: binary version (module
// version or VCS revision), Go toolchain, and the GOMAXPROCS the engine's
// defaults derive from. Shared by /healthz and /stats.
type RuntimeInfo struct {
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// HealthResponse answers /healthz (liveness: the process accepts requests).
// Role is the replication role: "standalone", "leader", or "follower".
type HealthResponse struct {
	Status  string      `json:"status"`
	Objects int         `json:"objects"`
	Shards  int         `json:"shards"`
	Role    string      `json:"role"`
	Runtime RuntimeInfo `json:"runtime"`
}

// ReplInfo reports the replication position of a follower-mode server on
// /readyz and /stats. AppliedSeq is the last global WAL sequence applied
// locally; LeaderSeq the leader's next sequence as of the last response;
// LagRecords/LagSeconds the distance between them (records behind, and
// seconds since last fully caught up). Writable flips true at promotion.
type ReplInfo struct {
	Role         string  `json:"role"`
	LeaderURL    string  `json:"leader_url"`
	AppliedSeq   uint64  `json:"applied_seq"`
	LeaderSeq    uint64  `json:"leader_seq"`
	LagRecords   int64   `json:"lag_records"`
	LagSeconds   float64 `json:"lag_seconds"`
	Bootstrapped bool    `json:"bootstrapped"`
	Writable     bool    `json:"writable"`
}

// PromoteResponse answers POST /repl/promote: the sequence of the
// promotion checkpoint and the server's new role.
type PromoteResponse struct {
	Seq  uint64 `json:"seq"`
	Role string `json:"role"`
}

// RecoveryInfo reports where the running index came from: the snapshot it
// was restored from (0 = none), the WAL records replayed on top, whether
// the store bootstrapped fresh state, and how long the restore took.
type RecoveryInfo struct {
	SnapshotSeq        uint64  `json:"snapshot_seq"`
	WALRecordsReplayed int64   `json:"wal_records_replayed"`
	Bootstrapped       bool    `json:"bootstrapped"`
	RestoreSeconds     float64 `json:"restore_seconds"`
}

// ReadyResponse answers /readyz (readiness: state is loaded and traffic is
// safe). Recovery is present when the server runs over a durable store.
// Degraded reports the store's read-only fallback: the probe stays 200 —
// converged reads keep serving, so traffic should still route here — but
// Status says "degraded" and writes answer 503 until the disk heals.
type ReadyResponse struct {
	Ready          bool          `json:"ready"`
	Status         string        `json:"status"`
	Degraded       bool          `json:"degraded,omitempty"`
	DegradedReason string        `json:"degraded_reason,omitempty"`
	Recovery       *RecoveryInfo `json:"recovery,omitempty"`
	// Repl is present in follower mode: the probe answers 503 while the
	// follower is bootstrapping or lagging past the configured bound.
	Repl *ReplInfo `json:"repl,omitempty"`
}

// EndpointStats is the per-endpoint slice of /stats: request counts and the
// latency distribution over a sliding window of recent requests.
type EndpointStats struct {
	Count      int64   `json:"count"`
	Errors     int64   `json:"errors"`
	Rejected   int64   `json:"rejected"`
	RatePerSec float64 `json:"rate_per_sec"`
	MeanMicros int64   `json:"mean_us"`
	P50Micros  int64   `json:"p50_us"`
	P95Micros  int64   `json:"p95_us"`
	P99Micros  int64   `json:"p99_us"`
}

// BatcherStats reports the query-coalescing behaviour on /stats.
type BatcherStats struct {
	Batches        int64   `json:"batches"`
	BatchedQueries int64   `json:"batched_queries"`
	AvgBatchSize   float64 `json:"avg_batch_size"`
	WindowMicros   int64   `json:"window_us"`
}

// AdmissionStats reports the backpressure state on /stats.
type AdmissionStats struct {
	InFlight    int64 `json:"in_flight"`
	MaxInFlight int64 `json:"max_in_flight"`
	ExecSlots   int   `json:"exec_slots"`
	Rejected    int64 `json:"rejected_total"`
}

// IndexStats reports the shard engine state on /stats.
type IndexStats struct {
	Objects     int `json:"objects"`
	Shards      int `json:"shards"`
	MinShardLen int `json:"min_shard_len"`
	MaxShardLen int `json:"max_shard_len"`
	OverflowLen int `json:"overflow_len"`
	// Quarantined counts shards disabled after a sub-index panic; their
	// objects are unreachable until the process restarts and recovers.
	Quarantined int `json:"quarantined_shards"`
	Pending     int `json:"pending"`
	Deleted     int `json:"deleted"`
	Queries     int `json:"core_queries"`
	Cracks      int `json:"core_cracks"`
	Slices      int `json:"core_slices_created"`
	// SlicesRefined counts slices finalized with an exact MBB — the
	// convergence curve: it rises as the workload cracks the index toward
	// its steady state and flattens once converged.
	SlicesRefined int   `json:"core_slices_refined"`
	Tested        int64 `json:"core_objects_tested"`
	// SharedQueries counts queries answered on the lock-shared read path
	// (converged regions); core_queries counts the exclusive-path ones.
	SharedQueries int64 `json:"core_shared_queries"`
}

// DurabilityStats reports the persistence state on /stats. All-zero with
// Enabled false when the server runs without a durability hook.
type DurabilityStats struct {
	Enabled               bool    `json:"enabled"`
	SnapshotSeq           uint64  `json:"snapshot_seq"`
	WALBytes              int64   `json:"wal_bytes"`
	Checkpoints           int64   `json:"checkpoints"`
	LastCheckpointSeconds float64 `json:"last_checkpoint_seconds"`
}

// StatsResponse answers GET /stats. Role is the replication role; Repl is
// present in follower mode.
type StatsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Runtime       RuntimeInfo              `json:"runtime"`
	Role          string                   `json:"role"`
	Repl          *ReplInfo                `json:"repl,omitempty"`
	Index         IndexStats               `json:"index"`
	Admission     AdmissionStats           `json:"admission"`
	Batcher       BatcherStats             `json:"batcher"`
	Durability    DurabilityStats          `json:"durability"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}
