package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/shard"
	"repro/internal/workload"
)

// newTestServer builds a sharded index over data and mounts the service on
// an httptest server.
func newTestServer(t *testing.T, data []geom.Object, cfg Config) (*httptest.Server, *shard.Index) {
	t.Helper()
	ix := shard.New(data, shard.Config{Shards: 4})
	s := New(ix, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, ix
}

// call POSTs (or GETs, when body is nil) and decodes the JSON answer into
// out, returning the HTTP status.
func call(t *testing.T, client *http.Client, method, url string, body, out interface{}) int {
	t.Helper()
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		reader = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode < 400 {
			t.Fatalf("%s %s: decoding %d response: %v", method, url, resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func sorted(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeBase is the first ID used for test-inserted objects; every dataset
// ID stays below it, so responses split cleanly into base and write IDs.
const writeBase int32 = 1 << 24

// TestEndToEndMixedWorkload replays a mixed read/write workload from
// concurrent clients and checks every response against a Scan oracle. The
// base dataset is immutable; each client owns a private ID range for its
// inserts/deletes, so for every query result the base-ID part must exactly
// match the oracle, the own-ID part must exactly match the client's live
// set, and foreign in-flight IDs are ignored. Run with -race.
func TestEndToEndMixedWorkload(t *testing.T) {
	data := dataset.Uniform(5000, 91)
	ts, _ := newTestServer(t, data, Config{
		BatchWindow: 500 * time.Microsecond,
		FlushEvery:  64,
	})
	oracle := scan.New(data)

	const clients = 8
	const rounds = 40
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			base := writeBase + int32(c)*100000
			owned := make(map[int32]geom.Object) // my live inserted objects
			queries := workload.Uniform(dataset.Universe(), rounds, 1e-3, int64(300+c))
			inserts := dataset.Uniform(rounds, int64(400+c))

			checkQuery := func(q geom.Box, ids []int32) bool {
				var gotBase, gotOwn []int32
				for _, id := range ids {
					switch {
					case id < writeBase:
						gotBase = append(gotBase, id)
					case id >= base && id < base+100000:
						gotOwn = append(gotOwn, id)
					}
				}
				var wantOwn []int32
				for id, o := range owned {
					if o.Intersects(q) {
						wantOwn = append(wantOwn, id)
					}
				}
				wantBase := oracle.Query(q, nil)
				if !equal(sorted(gotBase), sorted(wantBase)) {
					errs <- fmt.Sprintf("client %d: base IDs: got %d want %d", c, len(gotBase), len(wantBase))
					return false
				}
				if !equal(sorted(gotOwn), sorted(wantOwn)) {
					errs <- fmt.Sprintf("client %d: own IDs: got %v want %v", c, gotOwn, wantOwn)
					return false
				}
				return true
			}

			for r := 0; r < rounds; r++ {
				// Range query with full oracle check.
				var qresp QueryResponse
				status := call(t, client, http.MethodPost, ts.URL+"/query",
					QueryRequest{BoxToJSON(queries[r])}, &qresp)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("client %d: /query status %d", c, status)
					return
				}
				if !checkQuery(queries[r], qresp.IDs) {
					return
				}

				// Insert an object, then read-your-write on its box.
				o := inserts[r]
				o.ID = base + int32(r)
				var iresp InsertResponse
				status = call(t, client, http.MethodPost, ts.URL+"/insert",
					InsertRequest{Objects: []ObjectJSON{{ID: o.ID, BoxJSON: BoxToJSON(o.Box)}}}, &iresp)
				if status != http.StatusOK || iresp.Inserted != 1 {
					errs <- fmt.Sprintf("client %d: /insert status %d resp %+v", c, status, iresp)
					return
				}
				owned[o.ID] = o
				status = call(t, client, http.MethodPost, ts.URL+"/query",
					QueryRequest{BoxToJSON(o.Box)}, &qresp)
				if status != http.StatusOK {
					errs <- fmt.Sprintf("client %d: /query status %d", c, status)
					return
				}
				if !checkQuery(o.Box, qresp.IDs) {
					return
				}

				// Delete every third inserted object and verify it is gone.
				if r%3 == 0 {
					var dresp DeleteResponse
					status = call(t, client, http.MethodPost, ts.URL+"/delete",
						DeleteRequest{ID: o.ID, Hint: BoxToJSON(o.Box)}, &dresp)
					if status != http.StatusOK || !dresp.Deleted {
						errs <- fmt.Sprintf("client %d: /delete status %d resp %+v", c, status, dresp)
						return
					}
					delete(owned, o.ID)
					status = call(t, client, http.MethodPost, ts.URL+"/query",
						QueryRequest{BoxToJSON(o.Box)}, &qresp)
					if status != http.StatusOK {
						errs <- fmt.Sprintf("client %d: /query status %d", c, status)
						return
					}
					if !checkQuery(o.Box, qresp.IDs) {
						return
					}
				}

				// Periodic batch request with the same oracle.
				if r%10 == 5 {
					batchQ := workload.Uniform(dataset.Universe(), 8, 1e-3, int64(500+c*100+r))
					breq := BatchRequest{}
					for _, q := range batchQ {
						breq.Queries = append(breq.Queries, BoxToJSON(q))
					}
					var bresp BatchResponse
					status = call(t, client, http.MethodPost, ts.URL+"/batch", breq, &bresp)
					if status != http.StatusOK || len(bresp.Results) != len(batchQ) {
						errs <- fmt.Sprintf("client %d: /batch status %d, %d results", c, status, len(bresp.Results))
						return
					}
					for qi, ids := range bresp.Results {
						if !checkQuery(batchQ[qi], ids) {
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The server must have coalesced at least some queries and auto-flushed.
	var st StatsResponse
	if status := call(t, http.DefaultClient, http.MethodGet, ts.URL+"/stats", nil, &st); status != http.StatusOK {
		t.Fatalf("/stats status %d", status)
	}
	if st.Batcher.Batches == 0 || st.Batcher.BatchedQueries < st.Batcher.Batches {
		t.Errorf("batcher stats implausible: %+v", st.Batcher)
	}
	if st.Index.Pending >= 5000 {
		t.Errorf("auto-flush never ran: %d pending", st.Index.Pending)
	}
	if st.Endpoints["query"].Count == 0 || st.Endpoints["insert"].Count == 0 {
		t.Errorf("endpoint metrics missing: %+v", st.Endpoints)
	}
}

// TestKNNEndpoint checks /knn against brute force over the dataset.
func TestKNNEndpoint(t *testing.T) {
	data := dataset.Uniform(2000, 95)
	ts, _ := newTestServer(t, data, Config{})
	for _, p := range []geom.Point{{100, 200, 300}, {9000, 9000, 9000}} {
		var resp KNNResponse
		status := call(t, http.DefaultClient, http.MethodPost, ts.URL+"/knn",
			KNNRequest{Point: p, K: 10}, &resp)
		if status != http.StatusOK {
			t.Fatalf("/knn status %d", status)
		}
		if len(resp.Neighbors) != 10 {
			t.Fatalf("got %d neighbors, want 10", len(resp.Neighbors))
		}
		// Brute-force oracle.
		type cand struct {
			id int32
			d  float64
		}
		cands := make([]cand, len(data))
		for i := range data {
			cands[i] = cand{data[i].ID, data[i].MinDistSq(p)}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].id < cands[j].id
		})
		for i, n := range resp.Neighbors {
			if n.ID != cands[i].id || n.DistSq != cands[i].d {
				t.Fatalf("neighbor %d = %+v, want {%d %g}", i, n, cands[i].id, cands[i].d)
			}
		}
	}
}

// TestBackpressure verifies overload turns into immediate 429s: with an
// admission budget of 1 and a long batching window, a burst of concurrent
// queries must see rejections, and every accepted answer must be correct.
func TestBackpressure(t *testing.T) {
	data := dataset.Uniform(1000, 97)
	ts, _ := newTestServer(t, data, Config{
		BatchWindow: 50 * time.Millisecond,
		MaxInFlight: 1,
	})
	oracle := scan.New(data)
	q := workload.Uniform(dataset.Universe(), 1, 1e-2, 5)[0]
	want := sorted(oracle.Query(q, nil))

	const burst = 30
	var ok, rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp QueryResponse
			status := call(t, &http.Client{}, http.MethodPost, ts.URL+"/query",
				QueryRequest{BoxToJSON(q)}, &resp)
			mu.Lock()
			defer mu.Unlock()
			switch status {
			case http.StatusOK:
				ok++
				if !equal(sorted(resp.IDs), want) {
					t.Errorf("accepted query answered wrong: %d IDs, want %d", len(resp.IDs), len(want))
				}
			case http.StatusTooManyRequests:
				rejected++
			default:
				t.Errorf("unexpected status %d", status)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Error("no query was accepted")
	}
	if rejected == 0 {
		t.Error("no query was rejected despite MaxInFlight=1")
	}
	var st StatsResponse
	call(t, http.DefaultClient, http.MethodGet, ts.URL+"/stats", nil, &st)
	if st.Admission.Rejected != rejected {
		t.Errorf("admission.rejected = %d, want %d", st.Admission.Rejected, rejected)
	}
	if st.Endpoints["query"].Rejected != rejected {
		t.Errorf("endpoint rejected = %d, want %d", st.Endpoints["query"].Rejected, rejected)
	}
}

// TestValidationAndMethods checks the 4xx paths.
func TestValidationAndMethods(t *testing.T) {
	data := dataset.Uniform(200, 99)
	ts, _ := newTestServer(t, data, Config{BatchWindow: -1})
	cl := http.DefaultClient

	// Inverted box.
	if s := call(t, cl, http.MethodPost, ts.URL+"/query",
		QueryRequest{BoxJSON{Min: [3]float64{5, 0, 0}, Max: [3]float64{1, 1, 1}}}, nil); s != http.StatusBadRequest {
		t.Errorf("inverted box: status %d, want 400", s)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// Bad k.
	if s := call(t, cl, http.MethodPost, ts.URL+"/knn", KNNRequest{K: 0}, nil); s != http.StatusBadRequest {
		t.Errorf("k=0: status %d, want 400", s)
	}
	// Wrong method.
	if s := call(t, cl, http.MethodDelete, ts.URL+"/query", nil, nil); s != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /query: status %d, want 405", s)
	}
	if s := call(t, cl, http.MethodPost, ts.URL+"/stats", struct{}{}, nil); s != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats: status %d, want 405", s)
	}
	// Empty insert.
	if s := call(t, cl, http.MethodPost, ts.URL+"/insert", InsertRequest{}, nil); s != http.StatusBadRequest {
		t.Errorf("empty insert: status %d, want 400", s)
	}

	// GET /query with curl-style params works and matches the oracle.
	oracle := scan.New(data)
	u := geom.MBB(data)
	var qresp QueryResponse
	url := fmt.Sprintf("%s/query?min=%g,%g,%g&max=%g,%g,%g", ts.URL,
		u.Min[0], u.Min[1], u.Min[2], u.Max[0], u.Max[1], u.Max[2])
	if s := call(t, cl, http.MethodGet, url, nil, &qresp); s != http.StatusOK {
		t.Fatalf("GET /query: status %d", s)
	}
	if want := sorted(oracle.Query(u, nil)); !equal(sorted(qresp.IDs), want) {
		t.Errorf("GET /query: got %d IDs, want %d", len(qresp.IDs), len(want))
	}
	// Bad params.
	if s := call(t, cl, http.MethodGet, ts.URL+"/query?min=1,2&max=3,4,5", nil, nil); s != http.StatusBadRequest {
		t.Errorf("short min: status %d, want 400", s)
	}
}

// TestHealthz checks the liveness endpoint.
func TestHealthz(t *testing.T) {
	data := dataset.Uniform(300, 101)
	ts, ix := newTestServer(t, data, Config{})
	var h HealthResponse
	if s := call(t, http.DefaultClient, http.MethodGet, ts.URL+"/healthz", nil, &h); s != http.StatusOK {
		t.Fatalf("/healthz status %d", s)
	}
	if h.Status != "ok" || h.Objects != len(data) || h.Shards != ix.NumShards() {
		t.Errorf("healthz = %+v", h)
	}
}

// TestBatchLimitFiresEarly: a full batch must not wait out its window.
func TestBatchLimitFiresEarly(t *testing.T) {
	data := dataset.Uniform(500, 103)
	ts, _ := newTestServer(t, data, Config{
		BatchWindow: 10 * time.Second, // would time the test out if waited
		BatchLimit:  4,
	})
	q := workload.Uniform(dataset.Universe(), 1, 1e-2, 7)[0]
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			call(t, &http.Client{}, http.MethodPost, ts.URL+"/query", QueryRequest{BoxToJSON(q)}, nil)
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("full batch did not fire before its window")
	}
}
