// Package server is the network serving subsystem: an HTTP/JSON query
// service over the sharded parallel engine (internal/shard). It is the
// layer that turns the adaptive-indexing library into a system handling
// concurrent traffic:
//
//   - /query     one range query; singletons arriving within the batching
//     window are coalesced into one QueryBatch fan-out (group commit for
//     reads)
//   - /batch     many range queries in one request, scheduled across the
//     shard worker pool
//   - /knn       k-nearest-neighbor search
//   - /insert    live inserts, routed to the shard owning each object's tile
//   - /delete    live deletes (tombstoned immediately, compacted on flush)
//   - /stats     per-endpoint latency/QPS metrics, admission and batching
//     counters, aggregated shard/QUASII statistics
//   - /healthz   liveness
//   - /readyz    readiness (503 until restored state is loaded)
//   - /snapshot  admin checkpoint trigger (requires Config.Durability):
//     writes a fresh snapshot, truncates the write-ahead log
//
// Observability endpoints stay outside admission control so they answer
// while the server sheds load: /metrics (Prometheus text), /debug/slowlog
// (sampled slow traces), /debug/index (hierarchy snapshot with per-slice
// heat) and /debug/heat (tile×depth heat grid); see debug.go.
//
// With Config.Durability set (see internal/durable), /insert and /delete
// are appended to a write-ahead log before they are applied or
// acknowledged, so a restarted server recovers every acknowledged update.
//
// Overload never grows goroutines without bound: a fixed admission budget
// (Config.MaxInFlight) turns excess requests into immediate 429s, and a
// small execution-slot semaphore keeps the index work itself at hardware
// parallelism. See admission.go and batcher.go.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/ioerr"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// Config tunes the serving layer. The zero value is production-usable:
// a 2ms batching window, 1024 admitted requests, GOMAXPROCS execution
// slots, and no automatic flushing.
type Config struct {
	// BatchWindow is how long the first singleton /query of a batch waits
	// for companions before executing. 0 selects the 2ms default; negative
	// disables coalescing (each query executes immediately).
	BatchWindow time.Duration
	// BatchLimit caps the queries coalesced into one batch; a full batch
	// fires before its window ends. 0 selects 64.
	BatchLimit int
	// MaxInFlight is the admission budget: the maximum number of requests
	// admitted concurrently (parked in a batching window, waiting for an
	// execution slot, or executing). Requests beyond it receive 429
	// immediately. 0 selects 1024.
	MaxInFlight int
	// ExecSlots bounds the requests concurrently executing index work
	// (batch fan-outs, kNN, updates). 0 selects GOMAXPROCS.
	ExecSlots int
	// FlushEvery folds pending updates into the shards' indexed arrays
	// after every N accepted update objects, bounding the O(pending) scan
	// cost each query pays. 0 disables automatic flushing (pending objects
	// are still visible — just served from the append buffers).
	FlushEvery int
	// MaxBodyBytes caps a request body. 0 selects 8 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds the index work of one request: the handler's
	// context (already cancelled when the client disconnects) additionally
	// expires after this long, and the shard fan-out observes it between
	// probes. Expired requests answer 503 with Retry-After. 0 disables the
	// deadline; client-disconnect cancellation is always on.
	RequestTimeout time.Duration
	// MaxBatch caps queries per /batch request and objects per /insert
	// request; MaxK caps /knn's k. 0 selects 4096.
	MaxBatch int
	MaxK     int
	// Durability, when non-nil, routes /insert and /delete through a
	// write-ahead log before they reach the index and enables the admin
	// POST /snapshot endpoint (internal/durable.Store satisfies it). Nil
	// keeps the in-memory-only behaviour; /snapshot then answers 501.
	Durability Durability
	// Telemetry is the metrics registry GET /metrics renders. The server
	// instruments itself and the engine on it; callers that also own the
	// durability store should instrument it on the same registry. Nil makes
	// the server create a private registry, so /metrics always answers.
	Telemetry *telemetry.Registry
	// TraceSampleEvery samples one request in every N for per-stage tracing
	// (admission wait, coalescing window, shard fan-out, shared/crack split,
	// response encode); sampled traces above SlowThreshold land in the
	// slow-query ring served at GET /debug/slowlog. 1 traces everything,
	// 0 disables tracing.
	TraceSampleEvery int
	// SlowThreshold is the minimum sampled-request latency that enters the
	// slowlog. 0 keeps every sampled trace (the ring is bounded regardless).
	SlowThreshold time.Duration
	// SlowlogSize is the slow-query ring capacity. 0 selects 128.
	SlowlogSize int
	// Logger receives the server's structured log records (request
	// failures, background flush errors, lifecycle events). Nil discards
	// them — the library stays silent unless a caller opts in, and the
	// handlers never pay for record formatting.
	Logger *slog.Logger
	// ReplSource, when non-nil, mounts the replication-leader endpoints
	// (GET /repl/snapshot, GET /repl/wal) outside admission control —
	// replica catch-up must work while the server sheds query load.
	// internal/repl.Leader satisfies it.
	ReplSource ReplSource
	// ReplFollower, when non-nil, puts the server in follower mode: writes
	// answer 503 with a leader hint until the follower is promoted
	// (POST /repl/promote), /readyz gates on replication lag, and /stats,
	// /healthz report the replication role. internal/repl.Follower
	// satisfies it.
	ReplFollower ReplFollower
	// MaxLagRecords is the /readyz catch-up bound in follower mode: the
	// probe answers 503 while the follower is more than this many records
	// behind the leader. 0 selects 1024; negative disables lag gating
	// (bootstrap completion still gates).
	MaxLagRecords int64
}

// Durability is the optional persistence hook behind the serving layer:
// updates that must survive a restart are routed through it (logged before
// they are acknowledged), and Checkpoint writes a fresh snapshot, returning
// its sequence number. internal/durable.Store is the canonical
// implementation.
type Durability interface {
	Insert(objs ...geom.Object) error
	Delete(id int32, hint geom.Box) (bool, error)
	Checkpoint() (uint64, error)
}

// DurabilityStatser is the optional durability-state probe: a Durability
// implementation that also satisfies it (internal/durable.Store does) gets
// its state folded into /stats. The tuple return keeps this package
// decoupled from the store's types.
type DurabilityStatser interface {
	DurabilityStats() (snapshotSeq uint64, walBytes int64, checkpoints int64, lastCheckpointSeconds float64)
}

// DurabilityRecoverer is the optional recovery-state probe: a Durability
// implementation that also satisfies it (internal/durable.Store does) gets
// its warm-restart provenance folded into /readyz, so the probe can report
// what the running index was restored from. Same tuple-return decoupling as
// DurabilityStatser.
type DurabilityRecoverer interface {
	RecoveryInfo() (snapshotSeq uint64, walRecordsReplayed int64, bootstrapped bool, restoreSeconds float64)
}

// DurabilityDegrader is the optional degraded-state probe: a Durability
// implementation that also satisfies it (internal/durable.Store does) gets
// its read-only fallback surfaced on /readyz. While degraded, the server
// keeps answering reads (the probe stays 200 so traffic still routes here)
// and turns writes into 503 + Retry-After.
type DurabilityDegrader interface {
	Degraded() (degraded bool, reason string)
}

// ReplSource serves the replication-leader side: streaming the live
// checkpoint generation and WAL records to followers. The handlers own the
// full request (query parsing, long-poll semantics, status codes); the
// server contributes routing, method filtering, and metrics.
type ReplSource interface {
	ServeSnapshot(http.ResponseWriter, *http.Request)
	ServeWAL(http.ResponseWriter, *http.Request)
}

// ReplFollower is the follower-mode probe and control surface. The tuple
// returns keep this package decoupled from internal/repl, matching the
// Durability* probes.
type ReplFollower interface {
	// ReplProbe reports the replication position: last applied global
	// sequence, the leader's last observed next sequence, lag in records
	// and seconds, and whether bootstrap has completed.
	ReplProbe() (appliedSeq, leaderSeq uint64, lagRecords int64, lagSeconds float64, bootstrapped bool)
	// Writable reports whether the follower has been promoted; until then
	// the server answers writes with 503 + the leader hint.
	Writable() bool
	// LeaderURL is the leader this follower replicates from (the hint).
	LeaderURL() string
	// Promote flips the follower writable (POST /repl/promote), returning
	// the promotion checkpoint's sequence.
	Promote() (uint64, error)
}

func (cfg Config) withDefaults() Config {
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	if cfg.BatchWindow < 0 {
		cfg.BatchWindow = 0 // batcher treats 0 as "execute immediately"
	}
	if cfg.BatchLimit <= 0 {
		cfg.BatchLimit = 64
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1024
	}
	if cfg.ExecSlots <= 0 {
		cfg.ExecSlots = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 4096
	}
	return cfg
}

// Server is the HTTP query service. Create it with New, mount Handler into
// any http.Server (or httptest.Server), or call ListenAndServe.
type Server struct {
	ix      *shard.Index
	cfg     Config
	adm     *admission
	bat     *batcher
	met     map[string]*endpointMetrics
	mux     *http.ServeMux
	start   time.Time
	updates atomic.Int64 // accepted update objects since the last auto-flush
	pending atomic.Int64 // cheap estimate of unfolded inserts (see /insert)

	reg    *telemetry.Registry // never nil after New
	tracer *telemetry.Tracer   // never nil after New; samples per Config
	log    *slog.Logger        // never nil after New; discards by default

	// mCancelled counts requests whose context ended (client disconnect or
	// RequestTimeout) before their index work completed.
	mCancelled *telemetry.Counter

	// ready gates /readyz. New sets it true — an in-process server over an
	// already-built index is ready the moment it exists — and process
	// embeddings that restore state after binding the listener (quasii-serve
	// warm restart) flip it through SetReady.
	ready atomic.Bool
}

// New wires a server over the given sharded index.
func New(ix *shard.Index, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{ix: ix, cfg: cfg, start: time.Now()}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.ready.Store(true)
	s.reg = cfg.Telemetry
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.tracer = telemetry.NewTracer(telemetry.TraceConfig{
		SampleEvery:   cfg.TraceSampleEvery,
		SlowThreshold: cfg.SlowThreshold,
		LogSize:       cfg.SlowlogSize,
	})
	s.tracer.Instrument(s.reg)
	ix.Instrument(s.reg)
	s.adm = newAdmission(cfg.MaxInFlight, cfg.ExecSlots)
	s.bat = newBatcher(ix, s.adm, cfg.BatchWindow, cfg.BatchLimit)
	s.instrument()
	s.met = make(map[string]*endpointMetrics)
	s.mux = http.NewServeMux()
	s.route("/query", true, []string{http.MethodPost, http.MethodGet}, s.handleQuery)
	s.route("/batch", true, []string{http.MethodPost}, s.handleBatch)
	s.route("/knn", true, []string{http.MethodPost}, s.handleKNN)
	s.route("/insert", true, []string{http.MethodPost}, s.handleInsert)
	s.route("/delete", true, []string{http.MethodPost}, s.handleDelete)
	// /stats read-locks every shard (it rides with the shared read path on
	// a converged engine, but still queues behind cracking writers), so it
	// goes through admission like any other request; /healthz stays outside
	// admission but is lock-free, so a busy-but-healthy server always
	// answers its liveness probe.
	s.route("/stats", true, []string{http.MethodGet}, s.handleStats)
	s.route("/healthz", false, []string{http.MethodGet}, s.handleHealthz)
	// /readyz is the readiness probe: like /healthz it bypasses admission,
	// but it answers 503 until the embedding process declares its state
	// loaded (SetReady) — a warm-restarting server is alive long before it
	// is safe to route traffic to.
	s.route("/readyz", false, []string{http.MethodGet}, s.handleReadyz)
	// /snapshot writes every shard under its read lock, so it rides with
	// query traffic but must still hold an admission slot like any other
	// index-touching request.
	s.route("/snapshot", true, []string{http.MethodPost}, s.handleSnapshot)
	// /metrics and /debug/slowlog stay outside admission: an overloaded
	// server shedding load with 429s is exactly the moment observability
	// must keep answering. The scrape's shard walk rides the read path.
	s.route("/metrics", false, []string{http.MethodGet}, s.handleMetrics)
	s.route("/debug/slowlog", false, []string{http.MethodGet}, s.handleSlowlog)
	// The introspection endpoints (debug.go) join them outside admission;
	// their shard walk rides the read path like a /metrics scrape.
	s.route("/debug/index", false, []string{http.MethodGet}, s.handleDebugIndex)
	s.route("/debug/heat", false, []string{http.MethodGet}, s.handleDebugHeat)
	// Replication stays outside admission: a follower catching up (or a
	// long-polling tail) must not compete with — or be shed alongside —
	// query traffic, and /repl/promote is the failover control plane,
	// needed most exactly when the cluster is in trouble.
	if cfg.ReplSource != nil {
		s.route("/repl/snapshot", false, []string{http.MethodGet}, cfg.ReplSource.ServeSnapshot)
		s.route("/repl/wal", false, []string{http.MethodGet}, cfg.ReplSource.ServeWAL)
	}
	if cfg.ReplFollower != nil {
		s.route("/repl/promote", false, []string{http.MethodPost}, s.handlePromote)
	}
	return s
}

// role names the server's replication role: "follower" until a configured
// follower is promoted ("leader" afterwards), "leader" when it serves
// replication without being one, "standalone" otherwise.
func (s *Server) role() string {
	if f := s.cfg.ReplFollower; f != nil {
		if f.Writable() {
			return "leader"
		}
		return "follower"
	}
	if s.cfg.ReplSource != nil {
		return "leader"
	}
	return "standalone"
}

// handlePromote flips a follower writable (POST /repl/promote): replication
// tailing stops, the applied state is checkpointed to a fresh generation,
// and writes start answering. Idempotent.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	f := s.cfg.ReplFollower
	seq, err := f.Promote()
	if err != nil {
		s.log.Error("promotion failed", "err", err)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
		return
	}
	s.log.Info("follower promoted via /repl/promote", "snapshot_seq", seq)
	writeJSON(w, http.StatusOK, PromoteResponse{Seq: seq, Role: s.role()})
}

// followerRejectsWrites answers a write reaching an unpromoted follower:
// 503 + Retry-After (the role can change at any moment via promotion) and
// the leader's URL so a smart client can redirect itself.
func (s *Server) followerRejectsWrites(w http.ResponseWriter) bool {
	f := s.cfg.ReplFollower
	if f == nil || f.Writable() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set("X-Quasii-Leader", f.LeaderURL())
	writeJSON(w, http.StatusServiceUnavailable,
		ErrorResponse{Error: "read-only follower: write to the leader at " + f.LeaderURL()})
	return true
}

// SetReady flips the /readyz readiness state. Embedding processes call
// SetReady(false) before long state loads (snapshot restore, WAL replay) and
// SetReady(true) once traffic is safe; New starts servers ready.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Registry returns the server's metrics registry (the one /metrics
// renders) so callers can instrument adjacent subsystems — the durable
// store, custom collectors — onto the same scrape.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// instrument registers the serving-layer metrics that are not per-endpoint
// (those attach in route).
func (s *Server) instrument() {
	s.reg.GaugeFunc("quasii_http_in_flight_requests",
		"Requests holding an admission slot right now.",
		func() float64 { return float64(s.adm.inflight.Load()) })
	s.reg.CounterFunc("quasii_http_rejected_total",
		"Requests rejected with 429 at admission.",
		func() float64 { return float64(s.adm.rejected.Load()) })
	s.reg.CounterFunc("quasii_server_batches_total",
		"Coalesced batches executed (a lone query counts as a batch of one).",
		func() float64 { return float64(s.bat.batches.Load()) })
	s.reg.CounterFunc("quasii_server_batched_queries_total",
		"Queries answered through the coalescing path.",
		func() float64 { return float64(s.bat.queries.Load()) })
	s.bat.mOccupancy = s.reg.Histogram("quasii_server_batch_occupancy_queries",
		"Queries per executed coalesced batch.", telemetry.SizeBuckets)
	s.reg.GaugeFunc("quasii_server_uptime_seconds",
		"Seconds since the server was created.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.mCancelled = s.reg.Counter("quasii_http_cancelled_total",
		"Requests abandoned mid-flight: client disconnected or the per-request deadline expired.")
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

// handleSlowlog renders the slow-query ring, newest first.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	entries := s.tracer.Slowlog()
	if entries == nil {
		entries = []telemetry.TraceEntry{}
	}
	writeJSON(w, http.StatusOK, SlowlogResponse{Traces: entries})
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe runs the service on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	return s.httpServer(addr).ListenAndServe()
}

// Serve runs the service on an existing listener (useful for :0 ports).
func (s *Server) Serve(l net.Listener) error {
	return s.httpServer(l.Addr().String()).Serve(l)
}

func (s *Server) httpServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// statusWriter records the response status so the metrics wrapper can count
// errors.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// route registers one endpoint behind method filtering, optional admission
// control, and latency metrics (both the /stats ring-buffer percentiles and
// the /metrics registry series).
func (s *Server) route(path string, admit bool, methods []string, h http.HandlerFunc) {
	name := strings.TrimPrefix(path, "/")
	m := &endpointMetrics{}
	s.met[name] = m
	lbl := telemetry.L("endpoint", name)
	mReq := s.reg.Counter("quasii_http_requests_total",
		"Requests received, by endpoint (method-filtered; includes rejects).", lbl)
	mErr := s.reg.Counter("quasii_http_errors_total",
		"Requests answered with a 4xx/5xx status, by endpoint.", lbl)
	mRej := s.reg.Counter("quasii_http_rejected_endpoint_total",
		"Requests rejected with 429 at admission, by endpoint.", lbl)
	mDur := s.reg.Histogram("quasii_http_request_duration_seconds",
		"Wall time of handled requests (admission rejects excluded), by endpoint.",
		telemetry.DurationBuckets, lbl)
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		allowed := false
		for _, meth := range methods {
			if r.Method == meth {
				allowed = true
				break
			}
		}
		if !allowed {
			writeJSON(w, http.StatusMethodNotAllowed,
				ErrorResponse{Error: fmt.Sprintf("method %s not allowed on %s", r.Method, path)})
			return
		}
		mReq.Inc()
		if admit {
			if !s.adm.admit() {
				m.reject()
				mRej.Inc()
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests,
					ErrorResponse{Error: "server at capacity, retry later"})
				return
			}
			defer s.adm.done()
		}
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		d := time.Since(t0)
		m.observe(d, sw.status >= 400)
		mDur.ObserveDuration(d)
		if sw.status >= 400 {
			mErr.Inc()
			// 5xx means the server failed the request, which an operator
			// needs to see; 4xx is the client's problem and stays at debug
			// so a misbehaving client cannot flood the log at default level.
			lvl := slog.LevelDebug
			if sw.status >= 500 {
				lvl = slog.LevelWarn
			}
			s.log.Log(r.Context(), lvl, "request failed",
				"endpoint", name, "method", r.Method, "status", sw.status,
				"duration_ms", float64(d)/float64(time.Millisecond))
		}
	})
}

// encBufPool recycles the JSON encode buffers so responses do not allocate
// a fresh buffer per request; buffers that ballooned past the reuse ceiling
// are dropped instead of pinning memory.
var encBufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

const maxEncBufCap = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	writeJSONSized(w, status, v, 0)
}

// writeJSONSized encodes v into a pooled buffer — grown up front to
// sizeHint bytes when the caller can predict the response size from its
// result counts — and writes it out in one shot with an explicit
// Content-Length.
func writeJSONSized(w http.ResponseWriter, status int, v interface{}, sizeHint int) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if sizeHint > 0 {
		buf.Grow(sizeHint)
	}
	_ = json.NewEncoder(buf).Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxEncBufCap {
		encBufPool.Put(buf)
	}
}

func badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
}

// decodeJSON reads the (size-capped) body into v.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	return json.NewDecoder(r.Body).Decode(v)
}

// handleQuery answers one range query, coalescing concurrent singletons
// into QueryBatch fan-outs. GET accepts ?min=x,y,z&max=x,y,z for curl
// convenience; POST takes a QueryRequest body.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if r.Method == http.MethodGet {
		box, err := boxFromParams(r)
		if err != nil {
			badRequest(w, err)
			return
		}
		req.BoxJSON = box
	} else if err := s.decodeJSON(w, r, &req); err != nil {
		badRequest(w, fmt.Errorf("decoding query: %w", err))
		return
	}
	if err := req.validate(); err != nil {
		badRequest(w, err)
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	tr := s.tracer.Begin("query")
	ids, err := s.bat.do(ctx, req.Box(), tr)
	if err != nil {
		s.tracer.Finish(tr)
		s.writeCancelled(w, err)
		return
	}
	if ids == nil {
		ids = []int32{}
	}
	tr.SetResults(len(ids))
	// ~11 bytes per ID plus the envelope; the result buffer goes back to
	// the shard pool once the response bytes are encoded.
	encStart := traceNow(tr)
	writeJSONSized(w, http.StatusOK, QueryResponse{IDs: ids, Count: len(ids)}, 32+11*len(ids))
	tr.StageSince(telemetry.StageEncode, encStart)
	s.tracer.Finish(tr)
	shard.PutResultBuf(ids)
}

// traceNow reads the clock only when a trace is live, so unsampled requests
// skip the time syscall entirely.
func traceNow(tr *telemetry.Trace) time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

// boxFromParams parses ?min=x,y,z&max=x,y,z.
func boxFromParams(r *http.Request) (BoxJSON, error) {
	var b BoxJSON
	min, err := parsePoint(r.URL.Query().Get("min"))
	if err != nil {
		return b, fmt.Errorf("min: %w", err)
	}
	max, err := parsePoint(r.URL.Query().Get("max"))
	if err != nil {
		return b, fmt.Errorf("max: %w", err)
	}
	b.Min, b.Max = min, max
	return b, nil
}

func parsePoint(s string) ([geom.Dims]float64, error) {
	var p [geom.Dims]float64
	parts := strings.Split(s, ",")
	if len(parts) != geom.Dims {
		return p, fmt.Errorf("want %d comma-separated coordinates, got %q", geom.Dims, s)
	}
	for d, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return p, err
		}
		p[d] = v
	}
	return p, nil
}

// handleBatch answers many queries as one worker-pool fan-out.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		badRequest(w, fmt.Errorf("decoding batch: %w", err))
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		badRequest(w, fmt.Errorf("batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	boxes := make([]geom.Box, len(req.Queries))
	for i, q := range req.Queries {
		if err := q.validate(); err != nil {
			badRequest(w, fmt.Errorf("query %d: %w", i, err))
			return
		}
		boxes[i] = q.Box()
	}
	tr := s.tracer.Begin("batch")
	tr.SetBatchSize(len(boxes))
	// A traced /batch threads the one batch-level trace through every
	// sub-query, so shared/exclusive probe counts aggregate over the whole
	// request.
	var traces []*telemetry.Trace
	if tr != nil {
		traces = make([]*telemetry.Trace, len(boxes))
		for i := range traces {
			traces[i] = tr
		}
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	var results [][]int32
	var err error
	s.adm.execTraced(tr, func() {
		t0 := traceNow(tr)
		results, err = s.ix.QueryBatchTracedCtx(ctx, boxes, traces)
		tr.StageSince(telemetry.StageFanout, t0)
	})
	if err != nil {
		s.tracer.Finish(tr)
		// Answered sub-queries hold pooled buffers; recycle before bailing.
		shard.RecycleResults(results)
		s.writeCancelled(w, err)
		return
	}
	total := 0
	for i := range results {
		if results[i] == nil {
			results[i] = []int32{}
		}
		total += len(results[i])
	}
	tr.SetResults(total)
	encStart := traceNow(tr)
	writeJSONSized(w, http.StatusOK, BatchResponse{Results: results}, 32+11*total+4*len(results))
	tr.StageSince(telemetry.StageEncode, encStart)
	s.tracer.Finish(tr)
	shard.RecycleResults(results)
}

// handleKNN answers a k-nearest-neighbor query.
func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req KNNRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		badRequest(w, fmt.Errorf("decoding knn: %w", err))
		return
	}
	for d := 0; d < geom.Dims; d++ {
		if math.IsNaN(req.Point[d]) || math.IsInf(req.Point[d], 0) {
			badRequest(w, fmt.Errorf("point coordinate %d is not finite", d))
			return
		}
	}
	if req.K <= 0 || req.K > s.cfg.MaxK {
		badRequest(w, fmt.Errorf("k must be in [1, %d], got %d", s.cfg.MaxK, req.K))
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	tr := s.tracer.Begin("knn")
	var nn []NeighborJSON
	var err error
	s.adm.execTraced(tr, func() {
		t0 := traceNow(tr)
		found, kerr := s.ix.KNNCtx(ctx, geom.Point(req.Point), req.K)
		tr.StageSince(telemetry.StageFanout, t0)
		err = kerr
		nn = make([]NeighborJSON, len(found))
		for i, n := range found {
			nn[i] = NeighborJSON{ID: n.ID, DistSq: n.DistSq}
		}
	})
	if err != nil {
		s.tracer.Finish(tr)
		if ctxErr(err) {
			s.writeCancelled(w, err)
			return
		}
		writeJSON(w, http.StatusNotImplemented, ErrorResponse{Error: err.Error()})
		return
	}
	tr.SetResults(len(nn))
	encStart := traceNow(tr)
	writeJSONSized(w, http.StatusOK, KNNResponse{Neighbors: nn}, 32+48*len(nn))
	tr.StageSince(telemetry.StageEncode, encStart)
	s.tracer.Finish(tr)
}

// handleInsert routes new objects into the engine.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.followerRejectsWrites(w) {
		return
	}
	var req InsertRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		badRequest(w, fmt.Errorf("decoding insert: %w", err))
		return
	}
	if len(req.Objects) == 0 {
		badRequest(w, errors.New("no objects to insert"))
		return
	}
	if len(req.Objects) > s.cfg.MaxBatch {
		badRequest(w, fmt.Errorf("insert of %d objects exceeds limit %d", len(req.Objects), s.cfg.MaxBatch))
		return
	}
	objs := make([]geom.Object, len(req.Objects))
	for i, o := range req.Objects {
		if err := o.validate(); err != nil {
			badRequest(w, fmt.Errorf("object %d: %w", i, err))
			return
		}
		objs[i] = o.Object()
	}
	// Updates observe the context only BEFORE starting: once the WAL append
	// begins the operation runs to completion, because aborting between the
	// durable log and the in-memory apply would tear the two apart.
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	var err error
	s.adm.exec(func() {
		if err = ctx.Err(); err != nil {
			return
		}
		if s.cfg.Durability != nil {
			err = s.cfg.Durability.Insert(objs...)
		} else {
			err = s.ix.Insert(objs...)
		}
	})
	if err != nil {
		if ctxErr(err) {
			s.writeCancelled(w, err)
			return
		}
		writeUpdateErr(w, err)
		return
	}
	// Pending is a lock-free estimate: sampling the engine's exact count
	// would lock every shard on the insert hot path. /stats reports the
	// authoritative number.
	pending := s.pending.Add(int64(len(objs)))
	s.maybeFlush(len(objs))
	writeJSON(w, http.StatusOK, InsertResponse{Inserted: len(objs), Pending: int(pending)})
}

// handleDelete removes one object.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.followerRejectsWrites(w) {
		return
	}
	var req DeleteRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		badRequest(w, fmt.Errorf("decoding delete: %w", err))
		return
	}
	if err := req.Hint.validate(); err != nil {
		badRequest(w, fmt.Errorf("hint: %w", err))
		return
	}
	// Same pre-start-only context discipline as /insert.
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	var found bool
	var err error
	s.adm.exec(func() {
		if err = ctx.Err(); err != nil {
			return
		}
		if s.cfg.Durability != nil {
			found, err = s.cfg.Durability.Delete(req.ID, req.Hint.Box())
		} else {
			found, err = s.ix.Delete(req.ID, req.Hint.Box())
		}
	})
	if err != nil {
		if ctxErr(err) {
			s.writeCancelled(w, err)
			return
		}
		writeUpdateErr(w, err)
		return
	}
	if found {
		s.maybeFlush(1)
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: found})
}

// updateErrStatus maps an update failure onto an HTTP status: a sub-index
// without update support is a permanent 501, a degraded store (persistent
// disk failure, writes suspended while reads keep serving) is 503 so
// clients back off and retry once the disk heals, anything else (WAL I/O
// failure, a store mid-shutdown) is a retryable-by-semantics 500.
func updateErrStatus(err error) int {
	if errors.Is(err, shard.ErrNotUpdatable) {
		return http.StatusNotImplemented
	}
	if errors.Is(err, ioerr.ErrDegraded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// writeUpdateErr answers a failed update, attaching Retry-After to the
// statuses that deserve a retry (degraded mode heals itself in the
// background, so "later" is meaningful advice).
func writeUpdateErr(w http.ResponseWriter, err error) {
	status := updateErrStatus(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// reqCtx derives the context a request's index work runs under: the
// request's own context (cancelled when the client disconnects) bounded by
// the configured per-request deadline, when any.
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

// writeCancelled answers a request whose context ended mid-flight. A blown
// deadline gets a real 503 + Retry-After; a disconnected client never reads
// the body, but the status still feeds the error metrics honestly.
func (s *Server) writeCancelled(w http.ResponseWriter, err error) {
	s.mCancelled.Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
}

// ctxErr reports whether err is a context cancellation/expiry.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// maybeFlush folds pending updates in once enough have accumulated. The
// CAS claims the threshold crossing for exactly one caller (a racing loser
// leaves the counter above the threshold, so the very next update retries);
// the counter never goes negative, keeping the flush cadence at FlushEvery.
func (s *Server) maybeFlush(n int) {
	if s.cfg.FlushEvery <= 0 {
		return
	}
	f := int64(s.cfg.FlushEvery)
	if u := s.updates.Add(int64(n)); u >= f && s.updates.CompareAndSwap(u, u-f) {
		// Detached: the unlucky client that crossed the threshold should not
		// pay for folding every shard. Still bounded by the exec slots, and
		// Flush is safe concurrently with everything (per-shard locks).
		go s.adm.exec(func() {
			if err := s.ix.Flush(); err != nil {
				// Detached from any request, so the log is the only place
				// this failure can surface.
				s.log.Error("background flush failed", "err", err)
			}
			s.pending.Store(0)
		})
	}
}

// handleStats reports the serving metrics and engine state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(s.start)
	st := s.ix.Stats()
	resp := StatsResponse{
		UptimeSeconds: uptime.Seconds(),
		Runtime:       runtimeInfo(),
		Role:          s.role(),
		Repl:          s.replInfo(),
		Index: IndexStats{
			Objects:       st.Objects,
			Shards:        st.Shards,
			MinShardLen:   st.MinShardLen,
			MaxShardLen:   st.MaxShardLen,
			OverflowLen:   st.OverflowLen,
			Quarantined:   st.Quarantined,
			Pending:       st.Pending,
			Deleted:       st.Deleted,
			Queries:       st.Core.Queries,
			Cracks:        st.Core.Cracks,
			Slices:        st.Core.SlicesCreated,
			SlicesRefined: st.Core.SlicesRefined,
			Tested:        st.Core.ObjectsTested,
			SharedQueries: st.Core.SharedQueries,
		},
		Admission: s.adm.stats(),
		Batcher:   s.bat.stats(),
		Endpoints: make(map[string]EndpointStats, len(s.met)),
	}
	if ds, ok := s.cfg.Durability.(DurabilityStatser); ok {
		seq, walBytes, ckpts, last := ds.DurabilityStats()
		resp.Durability = DurabilityStats{
			Enabled:               true,
			SnapshotSeq:           seq,
			WALBytes:              walBytes,
			Checkpoints:           ckpts,
			LastCheckpointSeconds: last,
		}
	}
	for name, m := range s.met {
		resp.Endpoints[name] = m.snapshot(uptime)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshot is the admin checkpoint trigger: it writes a fresh
// snapshot and truncates the write-ahead log, answering with the new
// snapshot sequence. Without a Durability hook it answers 501.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Durability == nil {
		writeJSON(w, http.StatusNotImplemented,
			ErrorResponse{Error: "server runs without durability (no -data-dir)"})
		return
	}
	var seq uint64
	var err error
	s.adm.exec(func() { seq, err = s.cfg.Durability.Checkpoint() })
	if err != nil {
		writeUpdateErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Seq: seq})
}

// buildVersion resolves the binary's version once: the module version when
// built from a tagged checkout, otherwise the VCS revision debug.ReadBuildInfo
// embeds, otherwise "unknown" (tests, go run).
var buildVersion = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	rev, dirty := "", false
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			dirty = kv.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
})

// runtimeInfo snapshots the process identity shared by /healthz and /stats.
func runtimeInfo() RuntimeInfo {
	return RuntimeInfo{
		Version:    buildVersion(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// handleHealthz is the liveness probe. It must answer even while every
// shard lock is held by cracking queries, so it reads only lock-free state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:  "ok",
		Objects: s.ix.ApproxLen(),
		Shards:  s.ix.NumShards(),
		Role:    s.role(),
		Runtime: runtimeInfo(),
	})
}

// replInfo snapshots the follower probe for /stats and /readyz; nil when
// the server is not in follower mode.
func (s *Server) replInfo() *ReplInfo {
	f := s.cfg.ReplFollower
	if f == nil {
		return nil
	}
	applied, leaderSeq, lagRec, lagSec, boot := f.ReplProbe()
	return &ReplInfo{
		Role:         s.role(),
		LeaderURL:    f.LeaderURL(),
		AppliedSeq:   applied,
		LeaderSeq:    leaderSeq,
		LagRecords:   lagRec,
		LagSeconds:   lagSec,
		Bootstrapped: boot,
		Writable:     f.Writable(),
	}
}

// maxLag resolves the configured /readyz catch-up bound.
func (s *Server) maxLag() int64 {
	if s.cfg.MaxLagRecords == 0 {
		return 1024
	}
	return s.cfg.MaxLagRecords
}

// handleReadyz is the readiness probe: 503 until the embedding process has
// declared its state loaded (see SetReady), 200 with the recovery provenance
// afterwards. Like /healthz it reads only lock-free state, so it answers
// while every shard lock is held.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{Ready: s.ready.Load(), Status: "ready"}
	if dr, ok := s.cfg.Durability.(DurabilityRecoverer); ok {
		seq, replayed, bootstrapped, secs := dr.RecoveryInfo()
		resp.Recovery = &RecoveryInfo{
			SnapshotSeq:        seq,
			WALRecordsReplayed: replayed,
			Bootstrapped:       bootstrapped,
			RestoreSeconds:     secs,
		}
	}
	// Degraded is visible but not unready: converged reads keep serving, so
	// the probe stays 200 and load balancers keep routing — only writes shed
	// (503 from the update handlers) until the store heals itself.
	if dd, ok := s.cfg.Durability.(DurabilityDegrader); ok {
		if deg, reason := dd.Degraded(); deg {
			resp.Degraded = true
			resp.DegradedReason = reason
			if resp.Ready {
				resp.Status = "degraded"
			}
		}
	}
	// Follower mode gates readiness on catch-up: a replica still
	// bootstrapping, or lagging past the configured bound, answers 503 so
	// load balancers stop routing reads to stale state. A promoted
	// follower is a leader and gates on nothing.
	if repl := s.replInfo(); repl != nil {
		resp.Repl = repl
		if !repl.Writable {
			if !repl.Bootstrapped {
				resp.Ready = false
				resp.Status = "replicating"
			} else if bound := s.maxLag(); bound >= 0 && repl.LagRecords > bound {
				resp.Ready = false
				resp.Status = "lagging"
			}
		}
	}
	status := http.StatusOK
	if !resp.Ready {
		if resp.Status == "ready" {
			resp.Status = "loading"
		}
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}
