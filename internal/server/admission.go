// Admission control: overload must turn into fast 429s, not into goroutine
// pile-up. Two bounds compose:
//
//   - MaxInFlight caps the requests admitted at all (parked in the batching
//     window, waiting for an execution slot, or executing). A request
//     arriving beyond the cap is rejected immediately with 429 — the
//     cheapest possible path, one atomic add — so an overloaded server
//     degrades into a fast rejection machine instead of an OOM.
//   - A small execution-slot semaphore serializes the heavy index work
//     (QueryBatch fan-outs, kNN probes, update routing). Admitted requests
//     beyond the slot count park on the semaphore; the bound on how many
//     can park is exactly MaxInFlight.

package server

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// admission implements the two-level bound.
type admission struct {
	inflight atomic.Int64
	max      int64
	rejected atomic.Int64
	slots    chan struct{}
}

func newAdmission(maxInFlight int, execSlots int) *admission {
	return &admission{max: int64(maxInFlight), slots: make(chan struct{}, execSlots)}
}

// admit reserves an in-flight slot, reporting false (reject with 429) when
// the server is at capacity. Every successful admit must be paired with a
// done.
func (a *admission) admit() bool {
	if a.inflight.Add(1) > a.max {
		a.inflight.Add(-1)
		a.rejected.Add(1)
		return false
	}
	return true
}

// done releases the in-flight slot.
func (a *admission) done() { a.inflight.Add(-1) }

// exec runs f while holding one of the execution slots, blocking until one
// frees up. Only admitted requests call it, so at most MaxInFlight callers
// ever park here.
func (a *admission) exec(f func()) {
	a.slots <- struct{}{}
	defer func() { <-a.slots }()
	f()
}

// execTraced is exec with the slot wait attributed to the trace's admission
// stage. A nil trace takes the plain path — no clock reads.
func (a *admission) execTraced(tr *telemetry.Trace, f func()) {
	if tr == nil {
		a.exec(f)
		return
	}
	t0 := time.Now()
	a.slots <- struct{}{}
	tr.StageSince(telemetry.StageAdmission, t0)
	defer func() { <-a.slots }()
	f()
}

// stats snapshots the admission state for /stats.
func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		InFlight:    a.inflight.Load(),
		MaxInFlight: a.max,
		ExecSlots:   cap(a.slots),
		Rejected:    a.rejected.Load(),
	}
}
