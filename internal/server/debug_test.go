package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/workload"
)

// newDebugServer builds a server over a known 3-shard index with heat
// tracking on every touch, so the introspection payloads are fully
// deterministic in shape.
func newDebugServer(t *testing.T, data []geom.Object, cfg Config) (*httptest.Server, *shard.Index, *Server) {
	t.Helper()
	ix := shard.New(data, shard.Config{
		Shards:    3,
		SubConfig: core.Config{HeatSampleEvery: 1},
	})
	s := New(ix, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, ix, s
}

// TestDebugIndexEndpoint drives a converged 3-shard build end to end and
// checks /debug/index: tile layout, census aggregation, heat presence, and
// ?maxdepth= truncation semantics.
func TestDebugIndexEndpoint(t *testing.T) {
	data := dataset.Uniform(6000, 171)
	ts, ix, _ := newDebugServer(t, data, Config{BatchWindow: -1})
	client := ts.Client()

	for _, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 172) {
		var qr QueryResponse
		if code := call(t, client, http.MethodPost, ts.URL+"/query",
			QueryRequest{BoxJSON: BoxToJSON(q)}, &qr); code != http.StatusOK {
			t.Fatalf("query: %d", code)
		}
	}
	ix.Complete()

	var full DebugIndexResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/debug/index", nil, &full); code != http.StatusOK {
		t.Fatalf("GET /debug/index: %d", code)
	}
	if full.Shards != 3 {
		t.Fatalf("shards = %d, want 3", full.Shards)
	}
	if full.Objects != len(data) {
		t.Fatalf("objects = %d, want %d", full.Objects, len(data))
	}
	if len(full.Tiles) < 3 {
		t.Fatalf("tiles = %d, want >= 3 (spatial shards, overflow optional)", len(full.Tiles))
	}
	if !full.Converged {
		t.Fatal("completed index not reported converged")
	}
	if full.SlicesRefined != full.Slices || full.Slices == 0 {
		t.Fatalf("census %d/%d refined, want fully refined and non-empty",
			full.SlicesRefined, full.Slices)
	}
	if full.TotalHeat == 0 {
		t.Fatal("no heat recorded with HeatSampleEvery=1")
	}
	wantObjects, wantSlices, wantHeat := 0, 0, int64(0)
	seen := map[string]bool{}
	for _, tile := range full.Tiles {
		if seen[tile.Shard] {
			t.Fatalf("duplicate tile name %q", tile.Shard)
		}
		seen[tile.Shard] = true
		if !tile.Supported {
			t.Fatalf("tile %q does not support introspection", tile.Shard)
		}
		wantObjects += tile.Objects
		wantSlices += tile.Slices
		wantHeat += tile.TotalHeat
	}
	if wantObjects != full.Objects || wantSlices != full.Slices || wantHeat != full.TotalHeat {
		t.Fatalf("tile sums (%d objects, %d slices, %d heat) != aggregates (%d, %d, %d)",
			wantObjects, wantSlices, wantHeat, full.Objects, full.Slices, full.TotalHeat)
	}
	for i := 0; i < 3; i++ {
		if !seen[string('0'+byte(i))] {
			t.Fatalf("missing spatial tile %d in %v", i, seen)
		}
	}

	// Depth truncation drops children but keeps the full-depth census.
	var top DebugIndexResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/debug/index?maxdepth=1", nil, &top); code != http.StatusOK {
		t.Fatalf("GET /debug/index?maxdepth=1: %d", code)
	}
	if top.MaxDepth != 1 {
		t.Fatalf("echoed maxdepth = %d, want 1", top.MaxDepth)
	}
	if top.Slices != full.Slices || top.TotalHeat != full.TotalHeat {
		t.Fatalf("truncated census (%d slices, %d heat) != full (%d, %d)",
			top.Slices, top.TotalHeat, full.Slices, full.TotalHeat)
	}
	for _, tile := range top.Tiles {
		for _, s := range tile.Root {
			if len(s.Children) != 0 {
				t.Fatalf("tile %q still carries children at maxdepth=1", tile.Shard)
			}
		}
	}

	// Malformed and out-of-range depths: reject garbage, clamp numbers.
	if code := call(t, client, http.MethodGet, ts.URL+"/debug/index?maxdepth=bogus", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("maxdepth=bogus: %d, want 400", code)
	}
	var deep DebugIndexResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/debug/index?maxdepth=99", nil, &deep); code != http.StatusOK {
		t.Fatalf("maxdepth=99: %d", code)
	}
	if deep.MaxDepth != geom.Dims {
		t.Fatalf("maxdepth=99 clamps to %d, want %d", deep.MaxDepth, geom.Dims)
	}
}

// TestDebugHeatEndpoint checks the tile×depth grid: per-level cells sum to
// the tile totals and the grid agrees with the full hierarchy report.
func TestDebugHeatEndpoint(t *testing.T) {
	data := dataset.Uniform(5000, 173)
	ts, _, _ := newDebugServer(t, data, Config{BatchWindow: -1})
	client := ts.Client()

	for _, q := range workload.Uniform(dataset.Universe(), 30, 1e-3, 174) {
		var qr QueryResponse
		if code := call(t, client, http.MethodPost, ts.URL+"/query",
			QueryRequest{BoxJSON: BoxToJSON(q)}, &qr); code != http.StatusOK {
			t.Fatalf("query: %d", code)
		}
	}

	var heat DebugHeatResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/debug/heat", nil, &heat); code != http.StatusOK {
		t.Fatalf("GET /debug/heat: %d", code)
	}
	if heat.HeatSampleEvery != 1 {
		t.Fatalf("heat_sample_every = %d, want 1", heat.HeatSampleEvery)
	}
	if heat.TotalHeat == 0 {
		t.Fatal("grid reports zero heat after queries")
	}
	var sum int64
	for _, tile := range heat.Tiles {
		var tileSum int64
		for _, c := range tile.Levels {
			if c.Level < 0 || c.Level >= geom.Dims {
				t.Fatalf("cell level %d out of range", c.Level)
			}
			if c.Refined > c.Slices {
				t.Fatalf("tile %q L%d: refined %d > slices %d", tile.Shard, c.Level, c.Refined, c.Slices)
			}
			tileSum += c.Heat
		}
		if tileSum != tile.TotalHeat {
			t.Fatalf("tile %q level cells sum to %d, total says %d", tile.Shard, tileSum, tile.TotalHeat)
		}
		sum += tileSum
	}
	if sum != heat.TotalHeat {
		t.Fatalf("grid sums to %d, total says %d", sum, heat.TotalHeat)
	}

	var index DebugIndexResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/debug/index", nil, &index); code != http.StatusOK {
		t.Fatalf("GET /debug/index: %d", code)
	}
	if index.TotalHeat != heat.TotalHeat {
		t.Fatalf("/debug/index heat %d != /debug/heat %d", index.TotalHeat, heat.TotalHeat)
	}
}

// TestReadyzEndpoint pins the readiness contract: ready from construction,
// 503 after SetReady(false) — the drain signal — and /healthz (liveness)
// unaffected either way.
func TestReadyzEndpoint(t *testing.T) {
	data := dataset.Uniform(1000, 175)
	ts, _, s := newDebugServer(t, data, Config{BatchWindow: -1})
	client := ts.Client()

	var ready ReadyResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/readyz", nil, &ready); code != http.StatusOK {
		t.Fatalf("GET /readyz: %d", code)
	}
	if !ready.Ready || ready.Status != "ready" {
		t.Fatalf("fresh server not ready: %+v", ready)
	}

	s.SetReady(false)
	if code := call(t, client, http.MethodGet, ts.URL+"/readyz", nil, &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz while draining: %d, want 503", code)
	}
	if ready.Ready {
		t.Fatal("draining server claims ready")
	}
	var health HealthResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("liveness broke during drain: %d", code)
	}
	if health.Runtime.GoVersion == "" || health.Runtime.GOMAXPROCS <= 0 || health.Runtime.Version == "" {
		t.Fatalf("healthz runtime info incomplete: %+v", health.Runtime)
	}

	s.SetReady(true)
	if code := call(t, client, http.MethodGet, ts.URL+"/readyz", nil, &ready); code != http.StatusOK {
		t.Fatalf("GET /readyz after re-enable: %d", code)
	}
}

// TestSlowlogDropped overflows a tiny trace ring and checks the wraparound
// is accounted for: every request sampled and logged, the ring holds only
// its capacity, and the excess shows up in the dropped counter.
func TestSlowlogDropped(t *testing.T) {
	const ringSize, n = 4, 20
	data := dataset.Uniform(2000, 177)
	ts, _, _ := newDebugServer(t, data, Config{
		BatchWindow:      -1,
		TraceSampleEvery: 1,
		SlowThreshold:    0,
		SlowlogSize:      ringSize,
	})
	client := ts.Client()

	for _, q := range workload.Uniform(dataset.Universe(), n, 1e-3, 178) {
		var qr QueryResponse
		if code := call(t, client, http.MethodPost, ts.URL+"/query",
			QueryRequest{BoxJSON: BoxToJSON(q)}, &qr); code != http.StatusOK {
			t.Fatalf("query: %d", code)
		}
	}

	var slow SlowlogResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/debug/slowlog", nil, &slow); code != http.StatusOK {
		t.Fatalf("GET /debug/slowlog: %d", code)
	}
	if len(slow.Traces) != ringSize {
		t.Fatalf("slowlog holds %d traces, want ring capacity %d", len(slow.Traces), ringSize)
	}

	sc := scrape(t, client, ts.URL)
	if v := mustValue(t, sc, "quasii_server_traces_sampled_total", nil); v != n {
		t.Fatalf("traces sampled = %g, want %d", v, n)
	}
	if v := mustValue(t, sc, "quasii_server_slow_queries_total", nil); v != n {
		t.Fatalf("slow queries = %g, want %d", v, n)
	}
	if v := mustValue(t, sc, "quasii_server_slowlog_dropped_total", nil); v != n-ringSize {
		t.Fatalf("slowlog dropped = %g, want %d", v, n-ringSize)
	}
}
