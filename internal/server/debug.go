// The index-introspection debug endpoints:
//
//   - GET /debug/index  the full hierarchy snapshot (shard.IndexReport) as
//     JSON, per-slice heat included; ?maxdepth=N truncates the per-tile
//     slice trees to N levels (aggregates stay exact)
//   - GET /debug/heat   the compact tile×depth heat grid: per shard, per
//     hierarchy level, slice/refined counts and summed heat
//
// Both stay outside admission control next to /debug/slowlog — introspection
// must answer while the server sheds load — but unlike the slowlog they take
// each shard's read lock in turn, so they ride with shared readers and queue
// behind cracking writers exactly like /stats does.
//
// Box coordinates cross the wire as strings, not JSON numbers: unrefined
// slices carry ±Inf bounds in not-yet-sliced dimensions, which JSON numbers
// cannot represent (the same reason the snapshot manifest strings its boxes).

package server

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/shard"
)

// DebugBoxJSON is a geom.Box on the debug wire: coordinates as strings so
// ±Inf survives JSON. strconv round-trips every finite float64 exactly.
type DebugBoxJSON struct {
	Min [geom.Dims]string `json:"min"`
	Max [geom.Dims]string `json:"max"`
}

func debugBox(b geom.Box) DebugBoxJSON {
	var out DebugBoxJSON
	for d := 0; d < geom.Dims; d++ {
		out.Min[d] = strconv.FormatFloat(b.Min[d], 'g', -1, 64)
		out.Max[d] = strconv.FormatFloat(b.Max[d], 'g', -1, 64)
	}
	return out
}

// DebugSliceJSON is one hierarchy node on the debug wire; fields mirror
// core.SliceReport.
type DebugSliceJSON struct {
	Level       int              `json:"level"`
	Lo          int              `json:"lo"`
	Hi          int              `json:"hi"`
	Count       int              `json:"count"`
	Box         DebugBoxJSON     `json:"box"`
	Refined     bool             `json:"refined"`
	Converged   bool             `json:"converged"`
	Heat        int64            `json:"heat"`
	SubtreeHeat int64            `json:"subtree_heat"`
	ChildSlices int              `json:"child_slices"`
	Children    []DebugSliceJSON `json:"children,omitempty"`
}

func debugSlices(list []core.SliceReport) []DebugSliceJSON {
	if len(list) == 0 {
		return nil
	}
	out := make([]DebugSliceJSON, len(list))
	for i := range list {
		s := &list[i]
		out[i] = DebugSliceJSON{
			Level:       s.Level,
			Lo:          s.Lo,
			Hi:          s.Hi,
			Count:       s.Count,
			Box:         debugBox(s.Box),
			Refined:     s.Refined,
			Converged:   s.Converged,
			Heat:        s.Heat,
			SubtreeHeat: s.SubtreeHeat,
			ChildSlices: s.ChildSlices,
			Children:    debugSlices(s.Children),
		}
	}
	return out
}

// DebugTileJSON is one shard's snapshot on the debug wire: the tile identity
// plus the sub-index report flattened in.
type DebugTileJSON struct {
	Shard     string       `json:"shard"`
	Tile      DebugBoxJSON `json:"tile"`
	Bounds    DebugBoxJSON `json:"bounds"`
	Objects   int          `json:"objects"`
	Supported bool         `json:"supported"`

	Pending         int              `json:"pending"`
	Deleted         int              `json:"deleted"`
	Tau             [geom.Dims]int   `json:"tau"`
	Epoch           uint64           `json:"epoch"`
	Converged       bool             `json:"converged"`
	Slices          int              `json:"slices"`
	SlicesRefined   int              `json:"slices_refined"`
	HeatSampleEvery int              `json:"heat_sample_every"`
	TotalHeat       int64            `json:"total_heat"`
	MaxHeat         int64            `json:"max_heat"`
	Root            []DebugSliceJSON `json:"root,omitempty"`
}

// DebugIndexResponse answers GET /debug/index.
type DebugIndexResponse struct {
	Shards  int          `json:"shards"`
	Workers int          `json:"workers"`
	Objects int          `json:"objects"`
	TileMBB DebugBoxJSON `json:"tile_mbb"`
	// MaxDepth is the effective truncation depth of the per-tile trees
	// (after clamping ?maxdepth= to [1, dims]).
	MaxDepth int `json:"max_depth"`
	// Converged, Slices, SlicesRefined and TotalHeat aggregate over every
	// tile whose sub-index supports introspection.
	Converged     bool  `json:"converged"`
	Slices        int   `json:"slices"`
	SlicesRefined int   `json:"slices_refined"`
	TotalHeat     int64 `json:"total_heat"`

	Tiles []DebugTileJSON `json:"tiles"`
}

// HeatCellJSON is one (tile, level) cell of the /debug/heat grid.
type HeatCellJSON struct {
	Level   int   `json:"level"`
	Slices  int   `json:"slices"`
	Refined int   `json:"refined"`
	Heat    int64 `json:"heat"`
}

// HeatTileJSON is one grid row: a shard with its per-level cells.
type HeatTileJSON struct {
	Shard     string         `json:"shard"`
	Objects   int            `json:"objects"`
	Converged bool           `json:"converged"`
	TotalHeat int64          `json:"total_heat"`
	Levels    []HeatCellJSON `json:"levels"`
}

// DebugHeatResponse answers GET /debug/heat: the tile×depth heat grid.
type DebugHeatResponse struct {
	// HeatSampleEvery is the engine's sampling period (0 when heat tracking
	// is disabled; counters then stay at zero). Multiply heat by it for an
	// estimate of real slice touches.
	HeatSampleEvery int            `json:"heat_sample_every"`
	TotalHeat       int64          `json:"total_heat"`
	Tiles           []HeatTileJSON `json:"tiles"`
}

// handleDebugIndex renders the hierarchy snapshot. ?maxdepth=N keeps only N
// levels of each tile's slice tree (1 = level-0 slices only); absent, 0 or
// out-of-range values mean the full hierarchy.
func (s *Server) handleDebugIndex(w http.ResponseWriter, r *http.Request) {
	maxDepth := 0
	if v := r.URL.Query().Get("maxdepth"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			badRequest(w, fmt.Errorf("maxdepth: %w", err))
			return
		}
		maxDepth = n
	}
	if maxDepth <= 0 || maxDepth > geom.Dims {
		maxDepth = geom.Dims
	}
	rep := s.ix.Inspect(maxDepth)
	resp := DebugIndexResponse{
		Shards:    rep.Shards,
		Workers:   rep.Workers,
		Objects:   rep.Objects,
		TileMBB:   debugBox(rep.TileMBB),
		MaxDepth:  maxDepth,
		Converged: true,
		Tiles:     make([]DebugTileJSON, 0, len(rep.Tiles)),
	}
	for i := range rep.Tiles {
		t := &rep.Tiles[i]
		tile := DebugTileJSON{
			Shard:     t.Shard,
			Tile:      debugBox(t.Tile),
			Bounds:    debugBox(t.Bounds),
			Objects:   t.Objects,
			Supported: t.Supported,
		}
		if t.Supported {
			tile.Pending = t.Index.Pending
			tile.Deleted = t.Index.Deleted
			tile.Tau = t.Index.Tau
			tile.Epoch = t.Index.Epoch
			tile.Converged = t.Index.Converged
			tile.Slices = t.Index.Slices
			tile.SlicesRefined = t.Index.SlicesRefined
			tile.HeatSampleEvery = t.Index.HeatSampleEvery
			tile.TotalHeat = t.Index.TotalHeat
			tile.MaxHeat = t.Index.MaxHeat
			tile.Root = debugSlices(t.Index.Root)
			resp.Slices += t.Index.Slices
			resp.SlicesRefined += t.Index.SlicesRefined
			resp.TotalHeat += t.Index.TotalHeat
			resp.Converged = resp.Converged && t.Index.Converged
		} else {
			resp.Converged = false
		}
		resp.Tiles = append(resp.Tiles, tile)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugHeat renders the tile×depth heat grid: the same census as
// /debug/index, bucketed per hierarchy level and stripped of the slice trees
// — small enough to poll every second.
func (s *Server) handleDebugHeat(w http.ResponseWriter, r *http.Request) {
	rep := s.ix.Inspect(0) // full depth: the grid needs every level
	resp := DebugHeatResponse{Tiles: make([]HeatTileJSON, 0, len(rep.Tiles))}
	for i := range rep.Tiles {
		t := &rep.Tiles[i]
		row := HeatTileJSON{Shard: t.Shard, Objects: t.Objects}
		if t.Supported {
			row.Converged = t.Index.Converged
			row.TotalHeat = t.Index.TotalHeat
			slices, refined, heat := t.Index.HeatByLevel()
			row.Levels = make([]HeatCellJSON, geom.Dims)
			for lvl := 0; lvl < geom.Dims; lvl++ {
				row.Levels[lvl] = HeatCellJSON{
					Level:   lvl,
					Slices:  slices[lvl],
					Refined: refined[lvl],
					Heat:    heat[lvl],
				}
			}
			if t.Index.HeatSampleEvery > resp.HeatSampleEvery {
				resp.HeatSampleEvery = t.Index.HeatSampleEvery
			}
			resp.TotalHeat += t.Index.TotalHeat
		}
		resp.Tiles = append(resp.Tiles, row)
	}
	writeJSON(w, http.StatusOK, resp)
}

// Inspect exposes the engine snapshot to in-process callers (tests, tools
// embedding the server). The HTTP surface is /debug/index.
func (s *Server) Inspect(maxDepth int) shard.IndexReport { return s.ix.Inspect(maxDepth) }
