package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/geom"
	"repro/internal/shard"
)

func TestSnapshotEndpointWithoutDurability(t *testing.T) {
	ts, _ := newTestServer(t, dataset.Uniform(500, 91), Config{})
	var er ErrorResponse
	if code := call(t, ts.Client(), http.MethodPost, ts.URL+"/snapshot", nil, &er); code != http.StatusNotImplemented {
		t.Fatalf("POST /snapshot without durability: %d, want 501", code)
	}
}

// TestServeSnapshotRestartCycle is the in-process serve → insert →
// /snapshot → "restart" (new store + server over the same directory) →
// query cycle: the HTTP-level half of the durability story.
func TestServeSnapshotRestartCycle(t *testing.T) {
	data := dataset.Uniform(2000, 92)
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.Options{
		Shard:     shard.Config{Shards: 2},
		Bootstrap: func() []geom.Object { return data },
		Fsync:     durable.FsyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(store.Index(), Config{Durability: store})
	ts := httptest.NewServer(s.Handler())

	obj := ObjectJSON{ID: 910_001, BoxJSON: BoxToJSON(geom.BoxAt(geom.Point{42, 42, 42}, 2))}
	var ir InsertResponse
	if code := call(t, ts.Client(), http.MethodPost, ts.URL+"/insert",
		InsertRequest{Objects: []ObjectJSON{obj}}, &ir); code != http.StatusOK {
		t.Fatalf("insert: %d", code)
	}
	var sr SnapshotResponse
	if code := call(t, ts.Client(), http.MethodPost, ts.URL+"/snapshot", nil, &sr); code != http.StatusOK {
		t.Fatalf("snapshot: %d", code)
	}
	if sr.Seq < 2 {
		t.Fatalf("snapshot seq %d, want >= 2", sr.Seq)
	}
	ts.Close()
	// Hard stop: the store is abandoned, not Closed. The checkpoint (plus
	// an empty WAL) must carry the full state.

	reopened, err := durable.Open(dir, durable.Options{Shard: shard.Config{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	s2 := New(reopened.Index(), Config{Durability: reopened})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var qr QueryResponse
	if code := call(t, ts2.Client(), http.MethodPost, ts2.URL+"/query",
		QueryRequest{BoxJSON: obj.BoxJSON}, &qr); code != http.StatusOK {
		t.Fatalf("query after restart: %d", code)
	}
	found := false
	for _, id := range qr.IDs {
		if id == obj.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted object missing after restart: %v", qr.IDs)
	}

	// Deletes are durable too: delete, checkpoint via the endpoint, reopen.
	var dr DeleteResponse
	if code := call(t, ts2.Client(), http.MethodPost, ts2.URL+"/delete",
		DeleteRequest{ID: obj.ID, Hint: obj.BoxJSON}, &dr); code != http.StatusOK || !dr.Deleted {
		t.Fatalf("delete after restart: code %d deleted %v", code, dr.Deleted)
	}
	ts2.Close()
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := durable.Open(dir, durable.Options{Shard: shard.Config{Shards: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if got := final.Index().Query(obj.Box(), nil); len(got) != 0 {
		t.Fatalf("deleted object resurrected after second restart: %v", got)
	}
}
