// End-to-end observability tests: scrape GET /metrics over HTTP, parse the
// exposition strictly, and hold the registry to its contract — well-formed
// output, monotone counters under concurrent load, a rising convergence
// series, and a populated slowlog when tracing is on.

package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/durable"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// scrape GETs /metrics and strictly parses the exposition.
func scrape(t *testing.T, client *http.Client, base string) *telemetry.Scrape {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	sc, err := telemetry.ParseText(string(body))
	if err != nil {
		t.Fatalf("unparsable /metrics exposition: %v", err)
	}
	return sc
}

// mustValue reads one sample or fails.
func mustValue(t *testing.T, sc *telemetry.Scrape, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := sc.Value(name, labels)
	if !ok {
		t.Fatalf("metric %s%v missing from scrape", name, labels)
	}
	return v
}

// TestMetricsEndpoint drives traffic through every layer and checks that
// the scrape exposes coherent serving, engine, and convergence series.
func TestMetricsEndpoint(t *testing.T) {
	data := dataset.Uniform(4000, 131)
	ts, _ := newTestServer(t, data, Config{BatchWindow: -1})
	client := ts.Client()

	queries := workload.Uniform(dataset.Universe(), 50, 1e-3, 132)
	for _, q := range queries {
		var qr QueryResponse
		if code := call(t, client, http.MethodPost, ts.URL+"/query",
			QueryRequest{BoxJSON: BoxToJSON(q)}, &qr); code != http.StatusOK {
			t.Fatalf("query: %d", code)
		}
	}

	sc := scrape(t, client, ts.URL)

	if v := mustValue(t, sc, "quasii_http_requests_total", map[string]string{"endpoint": "query"}); v != 50 {
		t.Fatalf("quasii_http_requests_total{endpoint=query} = %g, want 50", v)
	}
	if v := mustValue(t, sc, "quasii_http_request_duration_seconds_count", map[string]string{"endpoint": "query"}); v != 50 {
		t.Fatalf("request duration count = %g, want 50", v)
	}
	if v := mustValue(t, sc, "quasii_server_batches_total", nil); v != 50 {
		t.Fatalf("quasii_server_batches_total = %g, want 50 (window disabled)", v)
	}
	// The engine answered real queries, so the core counters must have moved
	// and the early workload must have refined slices (the convergence curve).
	if v := mustValue(t, sc, "quasii_core_slices_refined_total", nil); v <= 0 {
		t.Fatalf("quasii_core_slices_refined_total = %g, want > 0 after a cold-start workload", v)
	}
	if v := mustValue(t, sc, "quasii_shard_fanout_width_shards_count", nil); v != 50 {
		t.Fatalf("fanout histogram count = %g, want 50", v)
	}
	if v := mustValue(t, sc, "quasii_shard_count_shards", nil); v != 4 {
		t.Fatalf("quasii_shard_count_shards = %g, want 4", v)
	}
	if v := mustValue(t, sc, "quasii_shard_total_objects", nil); v != float64(len(data)) {
		t.Fatalf("quasii_shard_total_objects = %g, want %d", v, len(data))
	}
	// Per-shard gauges carry the shard label.
	if _, ok := sc.Value("quasii_shard_live_objects", map[string]string{"shard": "0"}); !ok {
		t.Fatal(`quasii_shard_live_objects{shard="0"} missing`)
	}
	// Shared + exclusive path counts partition the per-shard probes.
	shared := mustValue(t, sc, "quasii_shard_shared_queries_total", nil)
	excl := mustValue(t, sc, "quasii_shard_exclusive_queries_total", nil)
	if shared+excl <= 0 {
		t.Fatalf("shared (%g) + exclusive (%g) probes = 0, want > 0", shared, excl)
	}
	// A duration histogram quantile must be computable from the buckets.
	if _, ok := sc.HistogramQuantile("quasii_http_request_duration_seconds",
		map[string]string{"endpoint": "query"}, 0.95); !ok {
		t.Fatal("p95 not computable from quasii_http_request_duration_seconds buckets")
	}
}

// TestMetricsCountersMonotonic scrapes concurrently with load and asserts
// every counter is non-decreasing between consecutive scrapes.
func TestMetricsCountersMonotonic(t *testing.T) {
	data := dataset.Uniform(3000, 137)
	ts, _ := newTestServer(t, data, Config{})
	client := ts.Client()

	const workers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			queries := workload.Uniform(dataset.Universe(), 200, 1e-3, seed)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var qr QueryResponse
				call(t, client, http.MethodPost, ts.URL+"/query",
					QueryRequest{BoxJSON: BoxToJSON(queries[i%len(queries)])}, &qr)
			}
		}(int64(140 + w))
	}

	type key struct{ name, labels string }
	flat := func(m map[string]string) string {
		parts := make([]string, 0, len(m))
		for k, v := range m {
			parts = append(parts, k+"="+v)
		}
		return strings.Join(parts, ",")
	}
	prev := map[key]float64{}
	for round := 0; round < 10; round++ {
		sc := scrape(t, client, ts.URL)
		for name, typ := range sc.Types {
			if typ != "counter" {
				continue
			}
			for _, s := range sc.Samples {
				if s.Name != name {
					continue
				}
				k := key{name, flat(s.Labels)}
				if last, ok := prev[k]; ok && s.Value < last {
					t.Fatalf("counter %s{%s} went backwards: %g -> %g", name, k.labels, last, s.Value)
				}
				prev[k] = s.Value
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSlowlogEndpoint traces every request with a zero slow threshold, so
// each sampled query must land in the ring with populated stages.
func TestSlowlogEndpoint(t *testing.T) {
	data := dataset.Uniform(3000, 151)
	ts, _ := newTestServer(t, data, Config{
		BatchWindow:      -1,
		TraceSampleEvery: 1,
		SlowThreshold:    0,
		SlowlogSize:      16,
	})
	client := ts.Client()

	queries := workload.Uniform(dataset.Universe(), 8, 1e-3, 152)
	for _, q := range queries {
		var qr QueryResponse
		if code := call(t, client, http.MethodPost, ts.URL+"/query",
			QueryRequest{BoxJSON: BoxToJSON(q)}, &qr); code != http.StatusOK {
			t.Fatalf("query: %d", code)
		}
	}

	var slow SlowlogResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/debug/slowlog", nil, &slow); code != http.StatusOK {
		t.Fatalf("GET /debug/slowlog: %d", code)
	}
	if len(slow.Traces) != 8 {
		t.Fatalf("slowlog has %d traces, want 8", len(slow.Traces))
	}
	for i, e := range slow.Traces {
		if e.Endpoint != "query" {
			t.Fatalf("trace %d endpoint %q, want query", i, e.Endpoint)
		}
		if e.BatchSize != 1 {
			t.Fatalf("trace %d batch size %d, want 1 (immediate path)", i, e.BatchSize)
		}
		if e.FanoutShards <= 0 {
			t.Fatalf("trace %d fanout %d, want > 0", i, e.FanoutShards)
		}
		if e.SharedProbes+e.ExclusiveProbes <= 0 {
			t.Fatalf("trace %d has no shard probes", i)
		}
	}
	// The tracer meta-counters must agree with what we drove through.
	sc := scrape(t, client, ts.URL)
	if v := mustValue(t, sc, "quasii_server_traces_sampled_total", nil); v != 8 {
		t.Fatalf("traces sampled = %g, want 8", v)
	}
	if v := mustValue(t, sc, "quasii_server_slow_queries_total", nil); v != 8 {
		t.Fatalf("slow queries = %g, want 8", v)
	}
}

// TestStatsDurabilitySection checks that a durability-backed server folds
// WAL and checkpoint state into /stats, and that the matching quasii_store_*
// and quasii_wal_* series appear on a shared registry.
func TestStatsDurabilitySection(t *testing.T) {
	data := dataset.Uniform(1500, 161)
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.Options{
		Shard:     shard.Config{Shards: 2},
		Bootstrap: func() []geom.Object { return data },
		Fsync:     durable.FsyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := telemetry.NewRegistry()
	store.Instrument(reg)
	s := New(store.Index(), Config{Durability: store, Telemetry: reg})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	client := ts.Client()

	obj := ObjectJSON{ID: 920_001, BoxJSON: BoxToJSON(geom.BoxAt(geom.Point{7, 7, 7}, 1))}
	var ir InsertResponse
	if code := call(t, client, http.MethodPost, ts.URL+"/insert",
		InsertRequest{Objects: []ObjectJSON{obj}}, &ir); code != http.StatusOK {
		t.Fatalf("insert: %d", code)
	}
	var sr SnapshotResponse
	if code := call(t, client, http.MethodPost, ts.URL+"/snapshot", nil, &sr); code != http.StatusOK {
		t.Fatalf("snapshot: %d", code)
	}

	var st StatsResponse
	if code := call(t, client, http.MethodGet, ts.URL+"/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if !st.Durability.Enabled {
		t.Fatal("stats durability section not enabled with a durable store")
	}
	if st.Durability.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", st.Durability.Checkpoints)
	}
	if st.Durability.SnapshotSeq != sr.Seq {
		t.Fatalf("snapshot seq %d, want %d", st.Durability.SnapshotSeq, sr.Seq)
	}
	if st.Durability.LastCheckpointSeconds <= 0 {
		t.Fatal("last checkpoint duration not recorded")
	}

	sc := scrape(t, client, ts.URL)
	if v := mustValue(t, sc, "quasii_store_checkpoints_total", nil); v != 1 {
		t.Fatalf("quasii_store_checkpoints_total = %g, want 1", v)
	}
	if v := mustValue(t, sc, "quasii_wal_appends_total", nil); v < 1 {
		t.Fatalf("quasii_wal_appends_total = %g, want >= 1 (insert was logged)", v)
	}
	if v := mustValue(t, sc, "quasii_store_updates_total", nil); v != 1 {
		t.Fatalf("quasii_store_updates_total = %g, want 1", v)
	}
}

// TestStatsDurabilityDisabled: without a store the section stays zeroed.
func TestStatsDurabilityDisabled(t *testing.T) {
	ts, _ := newTestServer(t, dataset.Uniform(300, 171), Config{})
	var st StatsResponse
	if code := call(t, ts.Client(), http.MethodGet, ts.URL+"/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Durability.Enabled {
		t.Fatal("durability section enabled without a store")
	}
}
