// Query coalescing: singleton /query requests arriving within a short
// window are merged into one shard.Index.QueryBatch fan-out. Under high
// concurrency this replaces N independent walks over the shard set (each
// taking and releasing per-shard locks) with one batch scheduled across the
// worker pool — the server-side analogue of group commit. The window is the
// latency the first query of a batch donates to its successors; keep it a
// small fraction of the typical query time (the default is 2ms).

package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// batch is one in-flight coalescing window. Submitters append their box,
// remember their slot, and block on done; the leader (first submitter)
// executes the whole batch and closes done.
type batch struct {
	boxes   []geom.Box
	traces  []*telemetry.Trace // aligned with boxes; all-nil when nothing is sampled
	results [][]int32
	// execStart is when the leader began executing the batch; submitters read
	// it after done closes to attribute their coalescing-window wait.
	execStart time.Time
	fire      chan struct{} // closed when the batch fills up before the window ends
	done      chan struct{} // closed after results are populated
}

// batcher coalesces queries into batches of at most limit boxes per window.
type batcher struct {
	ix     *shard.Index
	adm    *admission
	window time.Duration
	limit  int

	mu  sync.Mutex
	cur *batch

	batches atomic.Int64
	queries atomic.Int64

	// mOccupancy observes how many queries each executed batch carried
	// (1 for every immediate-path query). Set once by Server.instrument.
	mOccupancy *telemetry.Histogram
}

func newBatcher(ix *shard.Index, adm *admission, window time.Duration, limit int) *batcher {
	return &batcher{ix: ix, adm: adm, window: window, limit: limit}
}

// do answers one query, possibly coalesced with concurrent ones. With a
// zero window the query executes immediately (still under an execution
// slot). tr, when non-nil, collects stage timings for the sampled trace.
// ctx covers this submitter only: the immediate path threads it into the
// shard fan-out, and a coalesced submitter stops waiting when it ends —
// the batch leader keeps executing on behalf of the other waiters (it
// coalesces many clients, so no single client's disconnect aborts it).
func (b *batcher) do(ctx context.Context, q geom.Box, tr *telemetry.Trace) ([]int32, error) {
	if b.window <= 0 {
		// The result buffer comes from the shard pool; handleQuery returns
		// it after encoding the response.
		var out []int32
		var err error
		b.adm.execTraced(tr, func() {
			t0 := time.Now()
			out, err = b.ix.QueryTracedCtx(ctx, q, shard.GetResultBuf(), tr)
			tr.StageSince(telemetry.StageFanout, t0)
		})
		b.mOccupancy.Observe(1)
		tr.SetBatchSize(1)
		b.batches.Add(1)
		b.queries.Add(1)
		if err != nil {
			shard.PutResultBuf(out)
			return nil, err
		}
		return out, nil
	}
	submitted := time.Now()
	b.mu.Lock()
	bt := b.cur
	if bt == nil {
		bt = &batch{fire: make(chan struct{}), done: make(chan struct{})}
		b.cur = bt
		go b.run(bt)
	}
	slot := len(bt.boxes)
	bt.boxes = append(bt.boxes, q)
	bt.traces = append(bt.traces, tr)
	if b.limit > 0 && len(bt.boxes) >= b.limit {
		// Full before the window closed: detach so the next submitter opens
		// a fresh batch, and wake the leader early. Detaching under mu
		// guarantees fire is closed exactly once.
		b.cur = nil
		close(bt.fire)
	}
	b.mu.Unlock()
	select {
	case <-bt.done:
	case <-ctx.Done():
		// Abandon the slot: the leader still executes and closes done, but
		// nobody collects results[slot] — its pooled buffer falls to the GC,
		// which is the price of not making every waiter hostage to the
		// slowest client's patience.
		return nil, ctx.Err()
	}
	if tr != nil {
		// Time parked in the coalescing window (and behind the leader's slot
		// wait) before the batch actually started executing.
		tr.AddStage(telemetry.StageCoalesce, bt.execStart.Sub(submitted))
		tr.SetBatchSize(len(bt.boxes))
	}
	return bt.results[slot], nil
}

// run is the batch leader: it sleeps out the window (or a full batch),
// detaches the batch, executes it on the shard worker pool, and releases
// the waiters.
func (b *batcher) run(bt *batch) {
	timer := time.NewTimer(b.window)
	select {
	case <-timer.C:
	case <-bt.fire:
		timer.Stop()
	}
	b.mu.Lock()
	if b.cur == bt {
		b.cur = nil
	}
	boxes := bt.boxes // no appends can arrive after the detach
	b.mu.Unlock()

	b.adm.exec(func() {
		bt.execStart = time.Now()
		bt.results = b.ix.QueryBatchTraced(boxes, bt.traces)
		fanout := time.Since(bt.execStart)
		for _, tr := range bt.traces {
			tr.AddStage(telemetry.StageFanout, fanout)
		}
	})
	b.mOccupancy.Observe(float64(len(boxes)))
	b.batches.Add(1)
	b.queries.Add(int64(len(boxes)))
	close(bt.done)
}

// stats snapshots the coalescing counters for /stats.
func (b *batcher) stats() BatcherStats {
	s := BatcherStats{
		Batches:        b.batches.Load(),
		BatchedQueries: b.queries.Load(),
		WindowMicros:   b.window.Microseconds(),
	}
	if s.Batches > 0 {
		s.AvgBatchSize = float64(s.BatchedQueries) / float64(s.Batches)
	}
	return s
}
