// Per-endpoint request metrics: counts plus a sliding latency window whose
// percentiles internal/stats computes on demand. A fixed-size ring keeps
// the cost per request at one lock-protected store; /stats pays the sort.

package server

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// latencyWindow is the number of recent samples the percentiles cover.
const latencyWindow = 2048

// endpointMetrics tracks one endpoint.
type endpointMetrics struct {
	mu       sync.Mutex
	count    int64
	errors   int64
	rejected int64
	ring     [latencyWindow]time.Duration
	filled   int
	next     int
}

// observe records one served request.
func (m *endpointMetrics) observe(d time.Duration, isError bool) {
	m.mu.Lock()
	m.count++
	if isError {
		m.errors++
	}
	m.ring[m.next] = d
	m.next = (m.next + 1) % latencyWindow
	if m.filled < latencyWindow {
		m.filled++
	}
	m.mu.Unlock()
}

// reject records one 429.
func (m *endpointMetrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// snapshot computes the endpoint's stats; uptime turns the cumulative count
// into a rate.
func (m *endpointMetrics) snapshot(uptime time.Duration) EndpointStats {
	m.mu.Lock()
	window := append([]time.Duration(nil), m.ring[:m.filled]...)
	s := EndpointStats{Count: m.count, Errors: m.errors, Rejected: m.rejected}
	m.mu.Unlock()
	if uptime > 0 {
		s.RatePerSec = float64(s.Count) / uptime.Seconds()
	}
	s.MeanMicros = stats.Mean(window).Microseconds()
	s.P50Micros = stats.Percentile(window, 50).Microseconds()
	s.P95Micros = stats.Percentile(window, 95).Microseconds()
	s.P99Micros = stats.Percentile(window, 99).Microseconds()
	return s
}
