// Package workload generates the query workloads of the QUASII paper
// (Section 6.1): clustered range queries mimicking exploratory analysis of
// brain-model regions, and uniform range queries for the non-skewed
// experiments. Query volume is expressed as a selectivity — a fraction of the
// universe volume — exactly as in the paper (e.g. 0.01 % = 1e-4).
//
// Beyond the paper, the package provides the access patterns of the
// adaptive-indexing literature: Sequential (an adjacent sweep, cracking's
// worst case — no refinement reuse) and Zipf (hotspot skew, its best case).
// All generators are deterministic in their seed, which the oracle-validated
// serving tests (internal/bench's load generator) rely on to rebuild the
// exact server workload client-side.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// SideForSelectivity returns the side length of a cubic query whose volume is
// frac (e.g. 1e-4 for 0.01 %) of the universe volume.
func SideForSelectivity(universe geom.Box, frac float64) float64 {
	return math.Cbrt(universe.Volume() * frac)
}

// Clustered generates numClusters clusters of perCluster cubic queries each,
// concatenated cluster by cluster (the paper executes all queries of one
// cluster before moving to the next). Cluster centers are uniform in the
// universe; query centers follow a Gaussian around their cluster center with
// standard deviation sigma (in universe units). Queries are clamped into the
// universe. The paper uses 5 clusters × 100 queries with a fixed query volume
// of 0.01 % of the universe.
func Clustered(universe geom.Box, numClusters, perCluster int, selectivity, sigma float64, seed int64) []geom.Box {
	rng := rand.New(rand.NewSource(seed))
	side := SideForSelectivity(universe, selectivity)
	queries := make([]geom.Box, 0, numClusters*perCluster)
	for c := 0; c < numClusters; c++ {
		var cc geom.Point
		for d := 0; d < geom.Dims; d++ {
			span := universe.Max[d] - universe.Min[d]
			cc[d] = universe.Min[d] + rng.Float64()*span
		}
		for i := 0; i < perCluster; i++ {
			var center geom.Point
			for d := 0; d < geom.Dims; d++ {
				center[d] = cc[d] + rng.NormFloat64()*sigma
			}
			queries = append(queries, clampedCube(universe, center, side))
		}
	}
	return queries
}

// ClusteredOn is like Clustered but places cluster centers on the given data
// so clustered workloads hit populated regions of skewed datasets (the paper
// validates model regions, which by construction contain data).
func ClusteredOn(universe geom.Box, data []geom.Object, numClusters, perCluster int, selectivity, sigma float64, seed int64) []geom.Box {
	if len(data) == 0 {
		return Clustered(universe, numClusters, perCluster, selectivity, sigma, seed)
	}
	rng := rand.New(rand.NewSource(seed))
	side := SideForSelectivity(universe, selectivity)
	queries := make([]geom.Box, 0, numClusters*perCluster)
	for c := 0; c < numClusters; c++ {
		cc := data[rng.Intn(len(data))].Center()
		for i := 0; i < perCluster; i++ {
			var center geom.Point
			for d := 0; d < geom.Dims; d++ {
				center[d] = cc[d] + rng.NormFloat64()*sigma
			}
			queries = append(queries, clampedCube(universe, center, side))
		}
	}
	return queries
}

// Uniform generates n cubic queries with the given selectivity, centers
// uniform in the universe (paper Sec. 6.6: up to 10 000 uniform queries).
func Uniform(universe geom.Box, n int, selectivity float64, seed int64) []geom.Box {
	rng := rand.New(rand.NewSource(seed))
	side := SideForSelectivity(universe, selectivity)
	queries := make([]geom.Box, n)
	for i := range queries {
		var center geom.Point
		for d := 0; d < geom.Dims; d++ {
			span := universe.Max[d] - universe.Min[d]
			center[d] = universe.Min[d] + rng.Float64()*span
		}
		queries[i] = clampedCube(universe, center, side)
	}
	return queries
}

// clampedCube builds the cube of the given side around center, shifted to lie
// inside the universe (so every query has the intended volume).
func clampedCube(universe geom.Box, center geom.Point, side float64) geom.Box {
	var b geom.Box
	for d := 0; d < geom.Dims; d++ {
		span := universe.Max[d] - universe.Min[d]
		s := side
		if s > span {
			s = span
		}
		lo := center[d] - s/2
		if lo < universe.Min[d] {
			lo = universe.Min[d]
		}
		if lo+s > universe.Max[d] {
			lo = universe.Max[d] - s
		}
		b.Min[d] = lo
		b.Max[d] = lo + s
	}
	return b
}

// Sequential generates n queries of the given selectivity sweeping across
// the universe along dimension dim (adjacent, non-overlapping steps that wrap
// around). This is the "sequential" pattern of the adaptive indexing
// literature — the worst case for cracking-style indexes because no query
// reuses earlier refinement.
func Sequential(universe geom.Box, n int, selectivity float64, dim int) []geom.Box {
	if dim < 0 || dim >= geom.Dims {
		dim = 0
	}
	side := SideForSelectivity(universe, selectivity)
	queries := make([]geom.Box, n)
	span := universe.Max[dim] - universe.Min[dim]
	var center geom.Point
	for d := 0; d < geom.Dims; d++ {
		center[d] = (universe.Min[d] + universe.Max[d]) / 2
	}
	for i := range queries {
		c := center
		offset := universe.Min[dim] + side/2 + float64(i)*side
		// Wrap around the universe, shifting laterally on each pass so
		// successive sweeps do not retrace the exact same region.
		pass := 0
		for offset > universe.Max[dim]-side/2 && span > side {
			offset -= span - side
			pass++
		}
		c[dim] = offset
		lateral := (dim + 1) % geom.Dims
		c[lateral] += float64(pass) * side
		queries[i] = clampedCube(universe, c, side)
	}
	return queries
}

// Zipf generates n queries whose centers follow a Zipfian distribution over
// a grid of hotspot cells: cell ranks are drawn with P(k) ∝ 1/k^skew, so a
// few regions absorb most queries — a heavily skewed exploratory pattern.
func Zipf(universe geom.Box, n int, selectivity, skew float64, seed int64) []geom.Box {
	if skew <= 0 {
		skew = 1
	}
	rng := rand.New(rand.NewSource(seed))
	side := SideForSelectivity(universe, selectivity)
	const cells = 64 // hotspot cells per dimension basis (4x4x4)
	// Pre-compute hotspot centers in a shuffled order so rank does not
	// correlate with position.
	centers := make([]geom.Point, cells)
	for i := range centers {
		for d := 0; d < geom.Dims; d++ {
			span := universe.Max[d] - universe.Min[d]
			centers[i][d] = universe.Min[d] + rng.Float64()*span
		}
	}
	zipf := rand.NewZipf(rng, skew+1, 1, cells-1)
	queries := make([]geom.Box, n)
	for i := range queries {
		hot := centers[zipf.Uint64()]
		var c geom.Point
		for d := 0; d < geom.Dims; d++ {
			c[d] = hot[d] + rng.NormFloat64()*side
		}
		queries[i] = clampedCube(universe, c, side)
	}
	return queries
}
