package workload

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestSideForSelectivity(t *testing.T) {
	u := dataset.Universe()
	side := SideForSelectivity(u, 1e-3)
	wantVol := u.Volume() * 1e-3
	gotVol := side * side * side
	if math.Abs(gotVol-wantVol)/wantVol > 1e-9 {
		t.Fatalf("volume = %g, want %g", gotVol, wantVol)
	}
}

func checkQueries(t *testing.T, queries []geom.Box, universe geom.Box, selectivity float64) {
	t.Helper()
	wantVol := universe.Volume() * selectivity
	for i, q := range queries {
		if q.IsEmpty() {
			t.Fatalf("query %d empty", i)
		}
		if !universe.Contains(q) {
			t.Fatalf("query %d %v outside universe", i, q)
		}
		if math.Abs(q.Volume()-wantVol)/wantVol > 1e-6 {
			t.Fatalf("query %d volume %g, want %g", i, q.Volume(), wantVol)
		}
	}
}

func TestUniformQueries(t *testing.T) {
	u := dataset.Universe()
	queries := Uniform(u, 500, 1e-3, 1)
	if len(queries) != 500 {
		t.Fatalf("len = %d", len(queries))
	}
	checkQueries(t, queries, u, 1e-3)
}

func TestClusteredQueries(t *testing.T) {
	u := dataset.Universe()
	queries := Clustered(u, 5, 100, 1e-4, 200, 2)
	if len(queries) != 500 {
		t.Fatalf("len = %d", len(queries))
	}
	checkQueries(t, queries, u, 1e-4)
}

func TestClusteredQueriesAreClustered(t *testing.T) {
	u := dataset.Universe()
	queries := Clustered(u, 5, 100, 1e-4, 100, 3)
	// Mean distance between consecutive queries within a cluster must be far
	// below the mean distance across cluster boundaries.
	dist := func(a, b geom.Box) float64 {
		ca, cb := a.Center(), b.Center()
		var s float64
		for d := 0; d < geom.Dims; d++ {
			s += (ca[d] - cb[d]) * (ca[d] - cb[d])
		}
		return math.Sqrt(s)
	}
	var within, across float64
	var nw, na int
	for i := 1; i < len(queries); i++ {
		if i%100 == 0 {
			across += dist(queries[i-1], queries[i])
			na++
		} else {
			within += dist(queries[i-1], queries[i])
			nw++
		}
	}
	if na == 0 || nw == 0 {
		t.Fatal("bad test setup")
	}
	if within/float64(nw)*3 > across/float64(na) {
		t.Errorf("within-cluster mean dist %.1f not clearly below across-cluster %.1f",
			within/float64(nw), across/float64(na))
	}
}

func TestClusteredOnTargetsData(t *testing.T) {
	// Data confined to one corner: clustered-on queries must all be near it.
	data := dataset.RandomBoxes(200, 4, geom.Box{Max: geom.Point{500, 500, 500}})
	u := dataset.Universe()
	queries := ClusteredOn(u, data, 3, 20, 1e-4, 50, 5)
	for i, q := range queries {
		c := q.Center()
		for d := 0; d < geom.Dims; d++ {
			if c[d] > 1500 {
				t.Fatalf("query %d center %v far from the data corner", i, c)
			}
		}
	}
}

func TestClusteredOnEmptyDataFallsBack(t *testing.T) {
	u := dataset.Universe()
	queries := ClusteredOn(u, nil, 2, 5, 1e-4, 100, 6)
	if len(queries) != 10 {
		t.Fatalf("len = %d, want 10", len(queries))
	}
	checkQueries(t, queries, u, 1e-4)
}

func TestHugeSelectivityClamped(t *testing.T) {
	u := dataset.Universe()
	queries := Uniform(u, 10, 2.0, 7) // 200% volume: clamp to the universe
	for i, q := range queries {
		if !u.Contains(q) {
			t.Fatalf("query %d outside universe", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	u := dataset.Universe()
	a := Uniform(u, 50, 1e-3, 9)
	b := Uniform(u, 50, 1e-3, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Uniform queries not deterministic")
		}
	}
}

func TestSequentialQueries(t *testing.T) {
	u := dataset.Universe()
	queries := Sequential(u, 200, 1e-3, 0)
	if len(queries) != 200 {
		t.Fatalf("len = %d", len(queries))
	}
	checkQueries(t, queries, u, 1e-3)
	// Consecutive queries before a wrap must not overlap and must march in x.
	for i := 1; i < 10; i++ {
		if queries[i].Min[0] < queries[i-1].Max[0]-1e-9 {
			t.Fatalf("queries %d and %d overlap in x: %v %v", i-1, i, queries[i-1], queries[i])
		}
	}
}

func TestSequentialBadDimFallsBack(t *testing.T) {
	u := dataset.Universe()
	queries := Sequential(u, 10, 1e-3, 99)
	checkQueries(t, queries, u, 1e-3)
}

func TestZipfQueries(t *testing.T) {
	u := dataset.Universe()
	queries := Zipf(u, 1000, 1e-3, 1.2, 31)
	if len(queries) != 1000 {
		t.Fatalf("len = %d", len(queries))
	}
	checkQueries(t, queries, u, 1e-3)
}

func TestZipfIsSkewed(t *testing.T) {
	// Most queries should land in a small number of hotspot regions: the
	// median pairwise distance to the most popular center must be small for
	// a large fraction of queries.
	u := dataset.Universe()
	queries := Zipf(u, 2000, 1e-4, 1.5, 32)
	// Bucket query centers into a coarse grid and look at the top bucket.
	buckets := make(map[[3]int]int)
	for _, q := range queries {
		c := q.Center()
		key := [3]int{int(c[0] / 1000), int(c[1] / 1000), int(c[2] / 1000)}
		buckets[key]++
	}
	max := 0
	for _, v := range buckets {
		if v > max {
			max = v
		}
	}
	if float64(max) < 0.2*float64(len(queries)) {
		t.Errorf("top bucket holds only %d of %d queries; not skewed enough", max, len(queries))
	}
}

func TestZipfDeterministic(t *testing.T) {
	u := dataset.Universe()
	a := Zipf(u, 50, 1e-3, 1.0, 33)
	b := Zipf(u, 50, 1e-3, 1.0, 33)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Zipf not deterministic")
		}
	}
}
