package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func box(x0, y0, z0, x1, y1, z1 float64) Box {
	return Box{Min: Point{x0, y0, z0}, Max: Point{x1, y1, z1}}
}

func TestNewBoxNormalizes(t *testing.T) {
	b := NewBox(Point{5, 1, 9}, Point{2, 4, 3})
	want := box(2, 1, 3, 5, 4, 9)
	if b != want {
		t.Fatalf("NewBox = %v, want %v", b, want)
	}
}

func TestBoxAt(t *testing.T) {
	b := BoxAt(Point{10, 20, 30}, 4)
	want := box(8, 18, 28, 12, 22, 32)
	if b != want {
		t.Fatalf("BoxAt = %v, want %v", b, want)
	}
}

func TestIntersects(t *testing.T) {
	tests := []struct {
		name string
		a, b Box
		want bool
	}{
		{"identical", box(0, 0, 0, 1, 1, 1), box(0, 0, 0, 1, 1, 1), true},
		{"overlap", box(0, 0, 0, 2, 2, 2), box(1, 1, 1, 3, 3, 3), true},
		{"touching face", box(0, 0, 0, 1, 1, 1), box(1, 0, 0, 2, 1, 1), true},
		{"touching corner", box(0, 0, 0, 1, 1, 1), box(1, 1, 1, 2, 2, 2), true},
		{"disjoint x", box(0, 0, 0, 1, 1, 1), box(1.5, 0, 0, 2, 1, 1), false},
		{"disjoint y", box(0, 0, 0, 1, 1, 1), box(0, 2, 0, 1, 3, 1), false},
		{"disjoint z", box(0, 0, 0, 1, 1, 1), box(0, 0, -5, 1, 1, -2), false},
		{"contained", box(0, 0, 0, 10, 10, 10), box(2, 2, 2, 3, 3, 3), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Intersects(tt.b); got != tt.want {
				t.Errorf("%v.Intersects(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			// Intersection is symmetric.
			if got := tt.b.Intersects(tt.a); got != tt.want {
				t.Errorf("%v.Intersects(%v) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
			}
		})
	}
}

func TestContains(t *testing.T) {
	outer := box(0, 0, 0, 10, 10, 10)
	if !outer.Contains(box(1, 1, 1, 9, 9, 9)) {
		t.Error("outer should contain inner")
	}
	if !outer.Contains(outer) {
		t.Error("box should contain itself")
	}
	if outer.Contains(box(1, 1, 1, 11, 9, 9)) {
		t.Error("outer should not contain box sticking out")
	}
}

func TestContainsPoint(t *testing.T) {
	b := box(0, 0, 0, 1, 1, 1)
	if !b.ContainsPoint(Point{0.5, 0.5, 0.5}) {
		t.Error("center should be contained")
	}
	if !b.ContainsPoint(Point{0, 0, 0}) || !b.ContainsPoint(Point{1, 1, 1}) {
		t.Error("corners should be contained (inclusive)")
	}
	if b.ContainsPoint(Point{1.01, 0.5, 0.5}) {
		t.Error("outside point should not be contained")
	}
}

func TestEmptyBox(t *testing.T) {
	e := EmptyBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBox should be empty")
	}
	b := box(1, 2, 3, 4, 5, 6)
	if got := e.Extend(b); got != b {
		t.Errorf("EmptyBox.Extend(b) = %v, want %v", got, b)
	}
	if e.Volume() != 0 {
		t.Errorf("EmptyBox volume = %g, want 0", e.Volume())
	}
}

func TestUniverseBox(t *testing.T) {
	u := UniverseBox()
	if u.IsEmpty() {
		t.Fatal("universe should not be empty")
	}
	if !u.ContainsPoint(Point{1e300, -1e300, 0}) {
		t.Error("universe should contain any point")
	}
}

func TestExtend(t *testing.T) {
	a := box(0, 0, 0, 1, 1, 1)
	b := box(2, -1, 0.5, 3, 0.5, 0.75)
	got := a.Extend(b)
	want := box(0, -1, 0, 3, 1, 1)
	if got != want {
		t.Errorf("Extend = %v, want %v", got, want)
	}
}

func TestIntersection(t *testing.T) {
	a := box(0, 0, 0, 2, 2, 2)
	b := box(1, 1, 1, 3, 3, 3)
	got := a.Intersection(b)
	want := box(1, 1, 1, 2, 2, 2)
	if got != want {
		t.Errorf("Intersection = %v, want %v", got, want)
	}
	c := box(5, 5, 5, 6, 6, 6)
	if !a.Intersection(c).IsEmpty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestCenterExtentVolume(t *testing.T) {
	b := box(0, 2, 4, 2, 6, 10)
	if got := b.Center(); got != (Point{1, 4, 7}) {
		t.Errorf("Center = %v", got)
	}
	if b.Extent(0) != 2 || b.Extent(1) != 4 || b.Extent(2) != 6 {
		t.Errorf("Extent = %g %g %g", b.Extent(0), b.Extent(1), b.Extent(2))
	}
	if b.Volume() != 48 {
		t.Errorf("Volume = %g, want 48", b.Volume())
	}
}

func TestMinDistSq(t *testing.T) {
	b := box(0, 0, 0, 1, 1, 1)
	if d := b.MinDistSq(Point{0.5, 0.5, 0.5}); d != 0 {
		t.Errorf("inside point dist = %g, want 0", d)
	}
	if d := b.MinDistSq(Point{2, 0.5, 0.5}); d != 1 {
		t.Errorf("dist = %g, want 1", d)
	}
	if d := b.MinDistSq(Point{2, 2, 0.5}); d != 2 {
		t.Errorf("dist = %g, want 2", d)
	}
}

func TestExpand(t *testing.T) {
	b := box(0, 0, 0, 1, 1, 1)
	got := b.Expand(Point{1, 2, 3})
	want := box(-1, -2, -3, 2, 3, 4)
	if got != want {
		t.Errorf("Expand = %v, want %v", got, want)
	}
}

func TestMBBAndMaxExtents(t *testing.T) {
	objs := []Object{
		{Box: box(0, 0, 0, 1, 2, 3), ID: 0},
		{Box: box(-1, 5, 2, 0, 6, 9), ID: 1},
	}
	if got, want := MBB(objs), box(-1, 0, 0, 1, 6, 9); got != want {
		t.Errorf("MBB = %v, want %v", got, want)
	}
	if got := MaxExtents(objs); got != (Point{1, 2, 7}) {
		t.Errorf("MaxExtents = %v", got)
	}
	if got := MBB(nil); !got.IsEmpty() {
		t.Errorf("MBB(nil) = %v, want empty", got)
	}
}

// randBox produces a random box inside [-100,100]^3.
func randBox(rng *rand.Rand) Box {
	var a, b Point
	for d := 0; d < Dims; d++ {
		a[d] = rng.Float64()*200 - 100
		b[d] = rng.Float64()*200 - 100
	}
	return NewBox(a, b)
}

// Property: Intersects(a,b) agrees with a non-empty Intersection(a,b).
func TestIntersectsMatchesIntersectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randBox(rng), randBox(rng)
		inter := a.Intersection(b)
		if a.Intersects(b) != !inter.IsEmpty() {
			t.Fatalf("Intersects/Intersection disagree: a=%v b=%v", a, b)
		}
	}
}

// Property: Extend yields a box containing both inputs.
func TestExtendContainsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := randBox(rng), randBox(rng)
		e := a.Extend(b)
		if !e.Contains(a) || !e.Contains(b) {
			t.Fatalf("Extend(%v, %v) = %v does not contain inputs", a, b, e)
		}
	}
}

// Property (testing/quick): NewBox always yields a normalized, non-empty box,
// and its center lies within it.
func TestNewBoxNormalizedQuick(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e9) // keep Center's (Min+Max)/2 free of overflow
	}
	f := func(ax, ay, az, bx, by, bz float64) bool {
		b := NewBox(Point{clamp(ax), clamp(ay), clamp(az)}, Point{clamp(bx), clamp(by), clamp(bz)})
		return !b.IsEmpty() && b.ContainsPoint(b.Center())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): MinDistSq is 0 iff the point is inside the box.
func TestMinDistSqZeroIffInsideQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(px, py, pz float64) bool {
		if math.IsNaN(px) || math.IsNaN(py) || math.IsNaN(pz) {
			return true
		}
		p := Point{math.Mod(px, 100), math.Mod(py, 100), math.Mod(pz, 100)}
		b := randBox(rng)
		return (b.MinDistSq(p) == 0) == b.ContainsPoint(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
