// Package geom provides the 3-d geometric primitives shared by all index
// implementations: points, axis-aligned boxes (minimum bounding boxes),
// intersection and containment tests, and a few helpers for extents and
// volumes.
//
// All coordinates are float64. A Box is defined by its lower (Min) and upper
// (Max) corner, matching the paper's MBB definition lower(b)/upper(b). Two
// sentinel boxes bracket the valid range: EmptyBox (the identity of Extend,
// containing nothing) and UniverseBox (all of space); both use infinities,
// which persistence formats must encode explicitly (JSON numbers cannot —
// see the shard snapshot manifest).
//
// Everything here is value-typed and allocation-free; the hot query kernels
// operate on the columnar lanes of internal/colstore instead and only
// reconstruct these types at API boundaries.
package geom

import (
	"fmt"
	"math"
)

// Dims is the dimensionality of the spatial domain. The paper (and this
// reproduction) work in 3-d; the constant exists so the slicing logic can be
// written dimension-generically.
const Dims = 3

// Point is a point in 3-d space.
type Point [Dims]float64

// Box is an axis-aligned 3-d box (minimum bounding box). Min holds the lower
// coordinate in each dimension, Max the upper. A valid box has Min[d] <= Max[d]
// for every dimension d.
type Box struct {
	Min Point
	Max Point
}

// Object is a spatial object: a bounding box plus a stable identifier. Index
// implementations reorganize object arrays in place, so query results are
// reported as IDs rather than positions.
type Object struct {
	Box
	ID int32
}

// NewBox returns the box spanning the two corner points, normalizing the
// corners so that Min <= Max holds in every dimension.
func NewBox(a, b Point) Box {
	var box Box
	for d := 0; d < Dims; d++ {
		box.Min[d] = math.Min(a[d], b[d])
		box.Max[d] = math.Max(a[d], b[d])
	}
	return box
}

// BoxAt returns the cube with the given center and side length.
func BoxAt(center Point, side float64) Box {
	var box Box
	h := side / 2
	for d := 0; d < Dims; d++ {
		box.Min[d] = center[d] - h
		box.Max[d] = center[d] + h
	}
	return box
}

// EmptyBox returns the identity element for Extend: a box that contains
// nothing and leaves any box unchanged when merged into it.
func EmptyBox() Box {
	var box Box
	for d := 0; d < Dims; d++ {
		box.Min[d] = math.Inf(1)
		box.Max[d] = math.Inf(-1)
	}
	return box
}

// UniverseBox returns a box covering all of space.
func UniverseBox() Box {
	var box Box
	for d := 0; d < Dims; d++ {
		box.Min[d] = math.Inf(-1)
		box.Max[d] = math.Inf(1)
	}
	return box
}

// IsEmpty reports whether the box contains no points (some Min exceeds the
// corresponding Max).
func (b Box) IsEmpty() bool {
	for d := 0; d < Dims; d++ {
		if b.Min[d] > b.Max[d] {
			return true
		}
	}
	return false
}

// Intersects reports whether b and q share at least one point. Boxes that
// merely touch at a face, edge or corner intersect, matching the paper's
// b ∩ q ≠ ∅ result definition.
func (b Box) Intersects(q Box) bool {
	for d := 0; d < Dims; d++ {
		if b.Min[d] > q.Max[d] || b.Max[d] < q.Min[d] {
			return false
		}
	}
	return true
}

// Contains reports whether b fully contains q.
func (b Box) Contains(q Box) bool {
	for d := 0; d < Dims; d++ {
		if q.Min[d] < b.Min[d] || q.Max[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point p lies inside b (inclusive bounds).
func (b Box) ContainsPoint(p Point) bool {
	for d := 0; d < Dims; d++ {
		if p[d] < b.Min[d] || p[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// Extend grows b to also cover q and returns the result.
func (b Box) Extend(q Box) Box {
	for d := 0; d < Dims; d++ {
		if q.Min[d] < b.Min[d] {
			b.Min[d] = q.Min[d]
		}
		if q.Max[d] > b.Max[d] {
			b.Max[d] = q.Max[d]
		}
	}
	return b
}

// ExtendPoint grows b to also cover the point p and returns the result.
func (b Box) ExtendPoint(p Point) Box {
	for d := 0; d < Dims; d++ {
		if p[d] < b.Min[d] {
			b.Min[d] = p[d]
		}
		if p[d] > b.Max[d] {
			b.Max[d] = p[d]
		}
	}
	return b
}

// Intersection returns the overlap of b and q. The result may be empty
// (IsEmpty reports true) when the boxes do not intersect.
func (b Box) Intersection(q Box) Box {
	for d := 0; d < Dims; d++ {
		if q.Min[d] > b.Min[d] {
			b.Min[d] = q.Min[d]
		}
		if q.Max[d] < b.Max[d] {
			b.Max[d] = q.Max[d]
		}
	}
	return b
}

// Center returns the center point of the box.
func (b Box) Center() Point {
	var c Point
	for d := 0; d < Dims; d++ {
		c[d] = (b.Min[d] + b.Max[d]) / 2
	}
	return c
}

// Extent returns the side length of the box in dimension d.
func (b Box) Extent(d int) float64 { return b.Max[d] - b.Min[d] }

// Volume returns the volume of the box; an empty box has volume 0.
func (b Box) Volume() float64 {
	v := 1.0
	for d := 0; d < Dims; d++ {
		side := b.Max[d] - b.Min[d]
		if side <= 0 {
			return 0
		}
		v *= side
	}
	return v
}

// MinDistSq returns the squared minimum distance between the point p and the
// box. It is 0 when p lies inside the box. Used by best-first kNN search.
func (b Box) MinDistSq(p Point) float64 {
	var sum float64
	for d := 0; d < Dims; d++ {
		switch {
		case p[d] < b.Min[d]:
			diff := b.Min[d] - p[d]
			sum += diff * diff
		case p[d] > b.Max[d]:
			diff := p[d] - b.Max[d]
			sum += diff * diff
		}
	}
	return sum
}

// Expand returns b grown by delta[d] on both sides in each dimension.
func (b Box) Expand(delta Point) Box {
	for d := 0; d < Dims; d++ {
		b.Min[d] -= delta[d]
		b.Max[d] += delta[d]
	}
	return b
}

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("[%g,%g,%g → %g,%g,%g]",
		b.Min[0], b.Min[1], b.Min[2], b.Max[0], b.Max[1], b.Max[2])
}

// MBB returns the minimum bounding box of the given objects, or EmptyBox for
// an empty slice.
func MBB(objs []Object) Box {
	box := EmptyBox()
	for i := range objs {
		box = box.Extend(objs[i].Box)
	}
	return box
}

// MaxExtents returns, per dimension, the maximum extent (Max-Min) over all
// objects. Query-extension techniques need this to bound how far an object's
// representative point can be from the query range while still intersecting.
func MaxExtents(objs []Object) Point {
	var ext Point
	for i := range objs {
		for d := 0; d < Dims; d++ {
			if e := objs[i].Max[d] - objs[i].Min[d]; e > ext[d] {
				ext[d] = e
			}
		}
	}
	return ext
}
