// Dynamic R-tree: the classic Guttman (SIGMOD 1984) insert-one-at-a-time
// index with quadratic node splitting. The paper's Sec. 6.1 justifies STR
// bulk loading over exactly this structure ("it reduces overlap and
// decreases pre-processing time compared to the R-Tree built by inserting
// one object at a time"); DynTree makes that claim reproducible, and gives
// the library an updatable index for workloads where data arrives after the
// initial load.

package rtree

import (
	"repro/internal/geom"
)

// dynNode is a node of the dynamic R-tree. Leaves hold objects; internal
// nodes hold children.
type dynNode struct {
	box      geom.Box
	children []*dynNode
	objs     []geom.Object
	leaf     bool
}

// DynTree is a dynamic R-tree supporting incremental insertion and deletion.
type DynTree struct {
	root *dynNode
	cap  int
	min  int
	size int
}

// NewDyn returns an empty dynamic R-tree. Objects are added with Insert.
func NewDyn(cfg Config) *DynTree {
	if cfg.Capacity < 2 {
		cfg.Capacity = DefaultCapacity
	}
	min := cfg.Capacity * 2 / 5 // Guttman's m ≈ 40 % of M
	if min < 1 {
		min = 1
	}
	return &DynTree{
		root: &dynNode{leaf: true, box: geom.EmptyBox()},
		cap:  cfg.Capacity,
		min:  min,
	}
}

// NewDynFromData builds a dynamic R-tree by inserting every object in order
// — the pre-processing strategy the paper's STR choice is measured against.
func NewDynFromData(data []geom.Object, cfg Config) *DynTree {
	t := NewDyn(cfg)
	for i := range data {
		t.Insert(data[i])
	}
	return t
}

// Len returns the number of stored objects.
func (t *DynTree) Len() int { return t.size }

// Insert adds an object to the tree.
func (t *DynTree) Insert(obj geom.Object) {
	t.size++
	if sibling := t.insert(t.root, obj); sibling != nil {
		// Root split: grow the tree by one level.
		oldRoot := t.root
		t.root = &dynNode{
			children: []*dynNode{oldRoot, sibling},
			box:      oldRoot.box.Extend(sibling.box),
		}
	}
}

// insert recursively places obj under n, splitting on overflow. It returns
// the new sibling when n was split, nil otherwise.
func (t *DynTree) insert(n *dynNode, obj geom.Object) *dynNode {
	n.box = n.box.Extend(obj.Box)
	if n.leaf {
		n.objs = append(n.objs, obj)
		if len(n.objs) > t.cap {
			return t.quadraticSplit(n)
		}
		return nil
	}
	// Guttman's ChooseLeaf: least enlargement, smallest volume as tie-break.
	best := n.children[0]
	bestEnl, bestVol := enlargement(best.box, obj.Box)
	for _, c := range n.children[1:] {
		enl, vol := enlargement(c.box, obj.Box)
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = c, enl, vol
		}
	}
	if sibling := t.insert(best, obj); sibling != nil {
		n.children = append(n.children, sibling)
		if len(n.children) > t.cap {
			return t.quadraticSplit(n)
		}
	}
	return nil
}

// enlargement returns how much c must grow (by volume) to include b, and c's
// current volume (the tie-breaker).
func enlargement(c, b geom.Box) (enl, vol float64) {
	vol = c.Volume()
	return c.Extend(b).Volume() - vol, vol
}

// quadraticSplit divides n's entries into two groups per Guttman's quadratic
// algorithm: pick the pair wasting the most volume as seeds, then assign
// each remaining entry to the group whose box grows least. n is rewritten in
// place as the first group; the second group is returned.
func (t *DynTree) quadraticSplit(n *dynNode) *dynNode {
	type entry struct {
		box   geom.Box
		child *dynNode
		obj   geom.Object
	}
	var entries []entry
	if n.leaf {
		for _, o := range n.objs {
			entries = append(entries, entry{box: o.Box, obj: o})
		}
	} else {
		for _, c := range n.children {
			entries = append(entries, entry{box: c.box, child: c})
		}
	}
	var a, b *dynNode
	// Seed selection: the pair with maximal dead space.
	si, sj := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].box.Extend(entries[j].box).Volume() -
				entries[i].box.Volume() - entries[j].box.Volume()
			if d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	a = &dynNode{leaf: n.leaf, box: entries[si].box}
	b = &dynNode{leaf: n.leaf, box: entries[sj].box}
	assign := func(g *dynNode, e entry) {
		g.box = g.box.Extend(e.box)
		if n.leaf {
			g.objs = append(g.objs, e.obj)
		} else {
			g.children = append(g.children, e.child)
		}
	}
	assign(a, entries[si])
	assign(b, entries[sj])
	remaining := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != si && i != sj {
			remaining = append(remaining, e)
		}
	}
	sizeOf := func(g *dynNode) int {
		if n.leaf {
			return len(g.objs)
		}
		return len(g.children)
	}
	for len(remaining) > 0 {
		// If one group must take all remaining entries to reach the minimum,
		// give them to it.
		if sizeOf(a)+len(remaining) <= t.min {
			for _, e := range remaining {
				assign(a, e)
			}
			break
		}
		if sizeOf(b)+len(remaining) <= t.min {
			for _, e := range remaining {
				assign(b, e)
			}
			break
		}
		// Pick the entry with the strongest preference.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range remaining {
			da := a.box.Extend(e.box).Volume() - a.box.Volume()
			db := b.box.Extend(e.box).Volume() - b.box.Volume()
			diff := da - db
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
			}
		}
		e := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		da := a.box.Extend(e.box).Volume() - a.box.Volume()
		db := b.box.Extend(e.box).Volume() - b.box.Volume()
		switch {
		case da < db:
			assign(a, e)
		case db < da:
			assign(b, e)
		case sizeOf(a) <= sizeOf(b):
			assign(a, e)
		default:
			assign(b, e)
		}
	}
	// Rewrite n as group a; hand group b to the caller.
	n.box, n.objs, n.children = a.box, a.objs, a.children
	return b
}

// Query appends the IDs of all objects intersecting q to out.
func (t *DynTree) Query(q geom.Box, out []int32) []int32 {
	if t.size == 0 || q.IsEmpty() {
		return out
	}
	return queryDynNode(t.root, q, out)
}

// Delete removes one object with the given ID whose box intersects hint (use
// the object's own box). It reports whether an object was removed. Underfull
// nodes are handled by re-inserting their remaining entries (Guttman's
// CondenseTree).
func (t *DynTree) Delete(id int32, hint geom.Box) bool {
	var orphans []geom.Object
	removed := t.delete(t.root, id, hint, &orphans)
	if !removed {
		return false
	}
	t.size--
	// Shrink a root with a single internal child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	for _, o := range orphans {
		t.size-- // Insert will re-increment
		t.Insert(o)
	}
	return true
}

func (t *DynTree) delete(n *dynNode, id int32, hint geom.Box, orphans *[]geom.Object) bool {
	if n.leaf {
		for i := range n.objs {
			if n.objs[i].ID == id && n.objs[i].Intersects(hint) {
				n.objs = append(n.objs[:i], n.objs[i+1:]...)
				n.box = geom.MBB(n.objs)
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !c.box.Intersects(hint) {
			continue
		}
		if t.delete(c, id, hint, orphans) {
			// Condense: drop underfull children, re-inserting their objects.
			if c.leaf && len(c.objs) < t.min && len(n.children) > 1 {
				*orphans = append(*orphans, c.objs...)
				n.children = append(n.children[:i], n.children[i+1:]...)
			}
			n.box = geom.EmptyBox()
			for _, ch := range n.children {
				n.box = n.box.Extend(ch.box)
			}
			return true
		}
	}
	return false
}

// LeafOverlapVolume returns the summed pairwise intersection volume of all
// leaf boxes — the overlap metric by which STR bulk loading beats dynamic
// insertion. Exposed for experiments and tests.
func (t *DynTree) LeafOverlapVolume() float64 {
	var leaves []geom.Box
	var collect func(n *dynNode)
	collect = func(n *dynNode) {
		if n.leaf {
			if len(n.objs) > 0 {
				leaves = append(leaves, n.box)
			}
			return
		}
		for _, c := range n.children {
			collect(c)
		}
	}
	collect(t.root)
	return overlapVolume(leaves)
}

// LeafOverlapVolume is the same metric for the STR-packed tree.
func (t *Tree) LeafOverlapVolume() float64 {
	var leaves []geom.Box
	var collect func(n *node)
	collect = func(n *node) {
		if n.children == nil {
			leaves = append(leaves, n.box)
			return
		}
		for _, c := range n.children {
			collect(c)
		}
	}
	if t.root != nil {
		collect(t.root)
	}
	return overlapVolume(leaves)
}

func overlapVolume(leaves []geom.Box) float64 {
	var total float64
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			inter := leaves[i].Intersection(leaves[j])
			if !inter.IsEmpty() {
				total += inter.Volume()
			}
		}
	}
	return total
}

// CheckInvariants validates the dynamic tree: boxes contain children/objects,
// node sizes respect capacity, and Len matches the stored object count.
func (t *DynTree) CheckInvariants() error {
	count := 0
	if err := t.checkDyn(t.root, &count); err != nil {
		return err
	}
	if count != t.size {
		return errInvariant("size mismatch")
	}
	return nil
}

func (t *DynTree) checkDyn(n *dynNode, count *int) error {
	if n.leaf {
		if len(n.objs) > t.cap {
			return errInvariant("dyn leaf overflow")
		}
		for i := range n.objs {
			if !n.box.Contains(n.objs[i].Box) {
				return errInvariant("dyn leaf box does not contain object")
			}
		}
		*count += len(n.objs)
		return nil
	}
	if len(n.children) > t.cap || len(n.children) == 0 {
		return errInvariant("dyn internal node size out of bounds")
	}
	for _, c := range n.children {
		if !n.box.Contains(c.box) {
			return errInvariant("dyn node box does not contain child")
		}
		if err := t.checkDyn(c, count); err != nil {
			return err
		}
	}
	return nil
}
