package rtree

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func TestRStarEmpty(t *testing.T) {
	rs := NewRStar(Config{})
	if rs.Len() != 0 {
		t.Fatalf("Len = %d", rs.Len())
	}
	if res := rs.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
		t.Fatalf("got %d results", len(res))
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRStarMatchesScan(t *testing.T) {
	data := dataset.Uniform(5000, 601)
	oracle := scan.New(data)
	rs := NewRStarFromData(data, Config{Capacity: 16})
	if rs.Len() != len(data) {
		t.Fatalf("Len = %d", rs.Len())
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got, want []int32
	for qi, q := range workload.Uniform(dataset.Universe(), 80, 1e-3, 602) {
		got = sortedIDs(rs.Query(q, got[:0]))
		want = sortedIDs(oracle.Query(q, want[:0]))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestRStarMatchesScanClustered(t *testing.T) {
	data := dataset.Neuro(4000, 603, dataset.NeuroConfig{})
	oracle := scan.New(data)
	rs := NewRStarFromData(data, Config{Capacity: 32})
	for qi, q := range workload.ClusteredOn(dataset.Universe(), data, 3, 20, 1e-4, 200, 604) {
		got := sortedIDs(rs.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRStarMatchesScanLargeObjects(t *testing.T) {
	data := dataset.RandomBoxes(1500, 605, dataset.Universe())
	oracle := scan.New(data)
	rs := NewRStarFromData(data, Config{Capacity: 16})
	for qi, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 606) {
		got := sortedIDs(rs.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestRStarForcedReinsertionHappens(t *testing.T) {
	data := dataset.Uniform(3000, 607)
	rs := NewRStarFromData(data, Config{Capacity: 16})
	if rs.Reinsertions() == 0 {
		t.Fatal("no forced reinsertions recorded")
	}
	if rs.Splits() == 0 {
		t.Fatal("no splits recorded")
	}
}

// The headline claim for R*: less leaf overlap than Guttman quadratic.
func TestRStarBeatsGuttmanOnLeafOverlap(t *testing.T) {
	data := dataset.Uniform(6000, 608)
	guttman := NewDynFromData(data, Config{Capacity: 32})
	rstar := NewRStarFromData(data, Config{Capacity: 32})
	g, r := guttman.LeafOverlapVolume(), rstar.LeafOverlapVolume()
	if r >= g {
		t.Fatalf("R* leaf overlap %g not below Guttman %g", r, g)
	}
}

func TestRStarTinyCapacityClamped(t *testing.T) {
	data := dataset.Uniform(200, 609)
	rs := NewRStarFromData(data, Config{Capacity: 2}) // clamped to 4
	if err := rs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res := rs.Query(dataset.Universe(), nil)
	if len(res) != 200 {
		t.Fatalf("found %d of 200", len(res))
	}
}

func TestRStarDuplicateObjects(t *testing.T) {
	b := geom.BoxAt(geom.Point{5, 5, 5}, 2)
	rs := NewRStar(Config{Capacity: 8})
	for i := 0; i < 200; i++ {
		rs.Insert(geom.Object{Box: b, ID: int32(i)})
	}
	if err := rs.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res := rs.Query(geom.BoxAt(geom.Point{5, 5, 5}, 1), nil)
	if len(res) != 200 {
		t.Fatalf("found %d of 200 identical objects", len(res))
	}
}
