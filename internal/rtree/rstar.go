// R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990): the improved
// dynamic R-tree the QUASII paper discusses twice — Sec. 5 weighs "concepts
// from R*-Tree node splitting algorithms" as the higher-cost alternative to
// QUASII's artificial slicing, and Sec. 7.2 lists it among the data-oriented
// indexes. Implementing it makes that cost/benefit measurable.
//
// The implementation follows the paper's three improvements over Guttman:
//
//   - ChooseSubtree: minimum overlap enlargement at the leaf level, minimum
//     area enlargement above it;
//   - the R* split: pick the split axis by minimum margin sum over all
//     legal distributions, then the distribution with minimum overlap;
//   - forced reinsertion: on first leaf overflow per insertion, the 30 % of
//     entries farthest from the node center are re-inserted instead of
//     splitting (reinsertion is applied at the leaf level, the common
//     implementation choice; internal overflows split directly).

package rtree

import (
	"sort"

	"repro/internal/geom"
)

// RStar is a dynamic R*-tree.
type RStar struct {
	root *dynNode
	cap  int
	min  int
	size int
	// reinsertCount is the number of entries removed by forced reinsertion
	// (the R* paper's p = 30 % of capacity).
	reinsertCount int
	// stats
	reinsertions int64
	splits       int64
}

// NewRStar returns an empty R*-tree.
func NewRStar(cfg Config) *RStar {
	if cfg.Capacity < 4 {
		if cfg.Capacity >= 2 {
			// Margin/overlap heuristics need a little room; round up.
			cfg.Capacity = 4
		} else {
			cfg.Capacity = DefaultCapacity
		}
	}
	min := cfg.Capacity * 2 / 5
	if min < 1 {
		min = 1
	}
	p := cfg.Capacity * 3 / 10
	if p < 1 {
		p = 1
	}
	return &RStar{
		root:          &dynNode{leaf: true, box: geom.EmptyBox()},
		cap:           cfg.Capacity,
		min:           min,
		reinsertCount: p,
	}
}

// NewRStarFromData builds an R*-tree by inserting every object in order.
func NewRStarFromData(data []geom.Object, cfg Config) *RStar {
	t := NewRStar(cfg)
	for i := range data {
		t.Insert(data[i])
	}
	return t
}

// Len returns the number of stored objects.
func (t *RStar) Len() int { return t.size }

// Splits returns the number of node splits performed so far.
func (t *RStar) Splits() int64 { return t.splits }

// Reinsertions returns the number of entries moved by forced reinsertion.
func (t *RStar) Reinsertions() int64 { return t.reinsertions }

// Insert adds an object to the tree.
func (t *RStar) Insert(obj geom.Object) {
	t.size++
	t.insertObj(obj, true)
}

// insertObj inserts one object; allowReinsert gates forced reinsertion so a
// reinsertion pass cannot trigger another one (the R* "overflow treatment is
// called at most once per level per insertion" rule, applied to leaves).
func (t *RStar) insertObj(obj geom.Object, allowReinsert bool) {
	var orphans []geom.Object
	if sibling := t.insertRec(t.root, obj, allowReinsert, &orphans); sibling != nil {
		oldRoot := t.root
		t.root = &dynNode{
			children: []*dynNode{oldRoot, sibling},
			box:      oldRoot.box.Extend(sibling.box),
		}
	}
	for _, o := range orphans {
		t.insertObj(o, false)
	}
}

func (t *RStar) insertRec(n *dynNode, obj geom.Object, allowReinsert bool, orphans *[]geom.Object) *dynNode {
	n.box = n.box.Extend(obj.Box)
	if n.leaf {
		n.objs = append(n.objs, obj)
		if len(n.objs) <= t.cap {
			return nil
		}
		if allowReinsert {
			t.forcedReinsert(n, orphans)
			return nil
		}
		t.splits++
		return t.rstarSplit(n)
	}
	child := t.chooseSubtree(n, obj.Box)
	if sibling := t.insertRec(child, obj, allowReinsert, orphans); sibling != nil {
		n.children = append(n.children, sibling)
		if len(n.children) > t.cap {
			t.splits++
			return t.rstarSplit(n)
		}
	}
	return nil
}

// chooseSubtree implements the R* descent rule.
func (t *RStar) chooseSubtree(n *dynNode, b geom.Box) *dynNode {
	leafLevel := len(n.children) > 0 && n.children[0].leaf
	best := n.children[0]
	if leafLevel {
		// Minimum overlap enlargement; ties by area enlargement, then area.
		bestOverlap := overlapEnlargement(n.children, 0, b)
		bestEnl, bestVol := enlargement(best.box, b)
		for i, c := range n.children[1:] {
			ov := overlapEnlargement(n.children, i+1, b)
			enl, vol := enlargement(c.box, b)
			if ov < bestOverlap ||
				(ov == bestOverlap && (enl < bestEnl || (enl == bestEnl && vol < bestVol))) {
				best, bestOverlap, bestEnl, bestVol = c, ov, enl, vol
			}
		}
		return best
	}
	bestEnl, bestVol := enlargement(best.box, b)
	for _, c := range n.children[1:] {
		enl, vol := enlargement(c.box, b)
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = c, enl, vol
		}
	}
	return best
}

// overlapEnlargement returns how much the summed overlap between children[k]
// and its siblings grows when children[k] is extended to cover b.
func overlapEnlargement(children []*dynNode, k int, b geom.Box) float64 {
	cur := children[k].box
	ext := cur.Extend(b)
	var before, after float64
	for i, c := range children {
		if i == k {
			continue
		}
		if iv := cur.Intersection(c.box); !iv.IsEmpty() {
			before += iv.Volume()
		}
		if iv := ext.Intersection(c.box); !iv.IsEmpty() {
			after += iv.Volume()
		}
	}
	return after - before
}

// forcedReinsert removes the reinsertCount entries whose centers are
// farthest from the (old) node center and queues them for re-insertion.
func (t *RStar) forcedReinsert(n *dynNode, orphans *[]geom.Object) {
	center := n.box.Center()
	sort.Slice(n.objs, func(i, j int) bool {
		return distSq(n.objs[i].Center(), center) > distSq(n.objs[j].Center(), center)
	})
	p := t.reinsertCount
	if p >= len(n.objs) {
		p = len(n.objs) - 1
	}
	*orphans = append(*orphans, n.objs[:p]...)
	n.objs = append([]geom.Object(nil), n.objs[p:]...)
	n.box = geom.MBB(n.objs)
	t.reinsertions += int64(p)
}

func distSq(a, b geom.Point) float64 {
	var s float64
	for d := 0; d < geom.Dims; d++ {
		s += (a[d] - b[d]) * (a[d] - b[d])
	}
	return s
}

// rstarSplit performs the R* topological split: choose the axis minimizing
// the margin sum over all legal distributions, then the distribution with
// minimum overlap (ties: minimum combined area). n is rewritten as the first
// group; the second group is returned.
func (t *RStar) rstarSplit(n *dynNode) *dynNode {
	boxes := entryBoxes(n)
	total := len(boxes)

	bestAxis, bestLower := 0, false
	bestMargin := -1.0
	for axis := 0; axis < geom.Dims; axis++ {
		for _, lower := range []bool{true, false} {
			order := sortedOrder(boxes, axis, lower)
			margin := 0.0
			for k := t.min; k <= total-t.min; k++ {
				g1 := coverOrdered(boxes, order[:k])
				g2 := coverOrdered(boxes, order[k:])
				margin += marginOf(g1) + marginOf(g2)
			}
			if bestMargin < 0 || margin < bestMargin {
				bestMargin, bestAxis, bestLower = margin, axis, lower
			}
		}
	}

	order := sortedOrder(boxes, bestAxis, bestLower)
	bestK := t.min
	bestOverlap, bestArea := -1.0, -1.0
	for k := t.min; k <= total-t.min; k++ {
		g1 := coverOrdered(boxes, order[:k])
		g2 := coverOrdered(boxes, order[k:])
		var ov float64
		if iv := g1.Intersection(g2); !iv.IsEmpty() {
			ov = iv.Volume()
		}
		area := g1.Volume() + g2.Volume()
		if bestOverlap < 0 || ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, bestK = ov, area, k
		}
	}

	// Materialize the two groups.
	other := &dynNode{leaf: n.leaf}
	if n.leaf {
		objs := n.objs
		keep := make([]geom.Object, 0, bestK)
		move := make([]geom.Object, 0, total-bestK)
		for _, i := range order[:bestK] {
			keep = append(keep, objs[i])
		}
		for _, i := range order[bestK:] {
			move = append(move, objs[i])
		}
		n.objs = keep
		other.objs = move
		n.box = geom.MBB(keep)
		other.box = geom.MBB(move)
	} else {
		children := n.children
		keep := make([]*dynNode, 0, bestK)
		move := make([]*dynNode, 0, total-bestK)
		for _, i := range order[:bestK] {
			keep = append(keep, children[i])
		}
		for _, i := range order[bestK:] {
			move = append(move, children[i])
		}
		n.children = keep
		other.children = move
		n.box = coverNodes(keep)
		other.box = coverNodes(move)
	}
	return other
}

// entryBoxes returns the bounding boxes of a node's entries, in entry order.
func entryBoxes(n *dynNode) []geom.Box {
	if n.leaf {
		boxes := make([]geom.Box, len(n.objs))
		for i := range n.objs {
			boxes[i] = n.objs[i].Box
		}
		return boxes
	}
	boxes := make([]geom.Box, len(n.children))
	for i := range n.children {
		boxes[i] = n.children[i].box
	}
	return boxes
}

// sortedOrder returns entry indices sorted by the chosen axis bound.
func sortedOrder(boxes []geom.Box, axis int, lower bool) []int {
	order := make([]int, len(boxes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if lower {
			if boxes[i].Min[axis] != boxes[j].Min[axis] {
				return boxes[i].Min[axis] < boxes[j].Min[axis]
			}
			return boxes[i].Max[axis] < boxes[j].Max[axis]
		}
		if boxes[i].Max[axis] != boxes[j].Max[axis] {
			return boxes[i].Max[axis] < boxes[j].Max[axis]
		}
		return boxes[i].Min[axis] < boxes[j].Min[axis]
	})
	return order
}

func coverOrdered(boxes []geom.Box, idx []int) geom.Box {
	cover := geom.EmptyBox()
	for _, i := range idx {
		cover = cover.Extend(boxes[i])
	}
	return cover
}

func coverNodes(nodes []*dynNode) geom.Box {
	cover := geom.EmptyBox()
	for _, n := range nodes {
		cover = cover.Extend(n.box)
	}
	return cover
}

// marginOf returns the margin (summed side lengths) of a box — the R* split
// quality metric.
func marginOf(b geom.Box) float64 {
	var m float64
	for d := 0; d < geom.Dims; d++ {
		if e := b.Extent(d); e > 0 {
			m += e
		}
	}
	return m
}

// Query appends the IDs of all objects intersecting q to out.
func (t *RStar) Query(q geom.Box, out []int32) []int32 {
	if t.size == 0 || q.IsEmpty() {
		return out
	}
	return queryDynNode(t.root, q, out)
}

// queryDynNode is the shared recursive range query over dynNode trees.
func queryDynNode(n *dynNode, q geom.Box, out []int32) []int32 {
	if n.leaf {
		for i := range n.objs {
			if n.objs[i].Intersects(q) {
				out = append(out, n.objs[i].ID)
			}
		}
		return out
	}
	for _, c := range n.children {
		if c.box.Intersects(q) {
			out = queryDynNode(c, q, out)
		}
	}
	return out
}

// LeafOverlapVolume returns the summed pairwise intersection volume of all
// leaf boxes, the overlap metric shared with the other R-tree variants.
func (t *RStar) LeafOverlapVolume() float64 {
	var leaves []geom.Box
	var collect func(n *dynNode)
	collect = func(n *dynNode) {
		if n.leaf {
			if len(n.objs) > 0 {
				leaves = append(leaves, n.box)
			}
			return
		}
		for _, c := range n.children {
			collect(c)
		}
	}
	collect(t.root)
	return overlapVolume(leaves)
}

// CheckInvariants validates box containment, node sizes and the object count.
func (t *RStar) CheckInvariants() error {
	count := 0
	if err := t.check(t.root, &count); err != nil {
		return err
	}
	if count != t.size {
		return errInvariant("rstar size mismatch")
	}
	return nil
}

func (t *RStar) check(n *dynNode, count *int) error {
	if n.leaf {
		if len(n.objs) > t.cap {
			return errInvariant("rstar leaf overflow")
		}
		for i := range n.objs {
			if !n.box.Contains(n.objs[i].Box) {
				return errInvariant("rstar leaf box does not contain object")
			}
		}
		*count += len(n.objs)
		return nil
	}
	if len(n.children) > t.cap || len(n.children) == 0 {
		return errInvariant("rstar internal node size out of bounds")
	}
	for _, c := range n.children {
		if !n.box.Contains(c.box) {
			return errInvariant("rstar node box does not contain child")
		}
		if err := t.check(c, count); err != nil {
			return err
		}
	}
	return nil
}
