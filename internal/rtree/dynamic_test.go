package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func TestDynEmpty(t *testing.T) {
	dt := NewDyn(Config{})
	if dt.Len() != 0 {
		t.Fatalf("Len = %d", dt.Len())
	}
	if res := dt.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
		t.Fatalf("got %d results", len(res))
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDynInsertAndQueryMatchesScan(t *testing.T) {
	data := dataset.Uniform(5000, 301)
	oracle := scan.New(data)
	dt := NewDynFromData(data, Config{Capacity: 16})
	if dt.Len() != len(data) {
		t.Fatalf("Len = %d, want %d", dt.Len(), len(data))
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got, want []int32
	for qi, q := range workload.Uniform(dataset.Universe(), 80, 1e-3, 302) {
		got = sortedIDs(dt.Query(q, got[:0]))
		want = sortedIDs(oracle.Query(q, want[:0]))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestDynInterleavedInsertQuery(t *testing.T) {
	data := dataset.Uniform(3000, 303)
	dt := NewDyn(Config{Capacity: 8})
	var live []geom.Object
	queries := workload.Uniform(dataset.Universe(), 30, 1e-2, 304)
	for i := range data {
		dt.Insert(data[i])
		live = append(live, data[i])
		if i%100 == 99 {
			q := queries[(i/100)%len(queries)]
			got := sortedIDs(dt.Query(q, nil))
			want := sortedIDs(scan.New(live).Query(q, nil))
			if !equalIDs(got, want) {
				t.Fatalf("after %d inserts: got %d, want %d", i+1, len(got), len(want))
			}
		}
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDynDelete(t *testing.T) {
	data := dataset.Uniform(2000, 305)
	dt := NewDynFromData(data, Config{Capacity: 8})
	rng := rand.New(rand.NewSource(306))
	// Delete a random half.
	deleted := make(map[int32]bool)
	perm := rng.Perm(len(data))
	for _, idx := range perm[:len(data)/2] {
		o := data[idx]
		if !dt.Delete(o.ID, o.Box) {
			t.Fatalf("Delete(%d) failed", o.ID)
		}
		deleted[o.ID] = true
	}
	if dt.Len() != len(data)/2 {
		t.Fatalf("Len = %d, want %d", dt.Len(), len(data)/2)
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Remaining objects still findable; deleted ones gone.
	res := dt.Query(dataset.Universe(), nil)
	if len(res) != len(data)/2 {
		t.Fatalf("universe query found %d, want %d", len(res), len(data)/2)
	}
	for _, id := range res {
		if deleted[id] {
			t.Fatalf("deleted object %d still present", id)
		}
	}
}

func TestDynDeleteMissing(t *testing.T) {
	data := dataset.Uniform(100, 307)
	dt := NewDynFromData(data, Config{})
	if dt.Delete(9999, dataset.Universe()) {
		t.Fatal("Delete of missing ID reported success")
	}
	if dt.Len() != 100 {
		t.Fatalf("Len changed to %d", dt.Len())
	}
}

func TestDynDeleteAll(t *testing.T) {
	data := dataset.Uniform(500, 308)
	dt := NewDynFromData(data, Config{Capacity: 8})
	for i := range data {
		if !dt.Delete(data[i].ID, data[i].Box) {
			t.Fatalf("Delete(%d) failed", data[i].ID)
		}
	}
	if dt.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", dt.Len())
	}
	if res := dt.Query(dataset.Universe(), nil); len(res) != 0 {
		t.Fatalf("empty tree returned %d results", len(res))
	}
}

// The paper's claim behind choosing STR: bulk loading produces less leaf
// overlap than one-at-a-time insertion.
func TestSTRBeatsDynamicOnLeafOverlap(t *testing.T) {
	data := dataset.Uniform(8000, 309)
	str := New(data, Config{Capacity: 32})
	dyn := NewDynFromData(data, Config{Capacity: 32})
	so, do := str.LeafOverlapVolume(), dyn.LeafOverlapVolume()
	if so >= do {
		t.Fatalf("STR leaf overlap %g not below dynamic %g", so, do)
	}
}

func TestDynDuplicateIDs(t *testing.T) {
	// The tree stores whatever it is given; deleting removes one instance.
	b := geom.BoxAt(geom.Point{5, 5, 5}, 2)
	dt := NewDyn(Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		dt.Insert(geom.Object{Box: b, ID: 7})
	}
	if dt.Len() != 10 {
		t.Fatalf("Len = %d", dt.Len())
	}
	if !dt.Delete(7, b) {
		t.Fatal("delete failed")
	}
	if dt.Len() != 9 {
		t.Fatalf("Len = %d after one delete", dt.Len())
	}
}
