package rtree

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil, Config{})
	if res := tr.Query(geom.Box{Max: geom.Point{1, 1, 1}}, nil); len(res) != 0 {
		t.Fatalf("empty tree returned %d results", len(res))
	}
	if tr.Height() != 0 {
		t.Fatalf("empty tree height = %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nn := tr.KNN(geom.Point{0, 0, 0}, 3); nn != nil {
		t.Fatalf("empty tree KNN = %v", nn)
	}
}

func TestSingleObject(t *testing.T) {
	data := []geom.Object{{Box: geom.BoxAt(geom.Point{5, 5, 5}, 2), ID: 42}}
	tr := New(data, Config{})
	if tr.Height() != 1 {
		t.Fatalf("height = %d, want 1", tr.Height())
	}
	res := tr.Query(geom.BoxAt(geom.Point{5, 5, 5}, 1), nil)
	if len(res) != 1 || res[0] != 42 {
		t.Fatalf("res = %v", res)
	}
}

func TestInputNotMutated(t *testing.T) {
	data := dataset.Uniform(1000, 61)
	snapshot := dataset.Clone(data)
	New(data, Config{})
	for i := range data {
		if data[i] != snapshot[i] {
			t.Fatal("New mutated the caller's slice")
		}
	}
}

func TestMatchesScanUniform(t *testing.T) {
	data := dataset.Uniform(10000, 62)
	oracle := scan.New(data)
	tr := New(data, Config{})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for qi, q := range workload.Uniform(dataset.Universe(), 100, 1e-3, 63) {
		got := sortedIDs(tr.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestMatchesScanClustered(t *testing.T) {
	data := dataset.Neuro(8000, 64, dataset.NeuroConfig{})
	oracle := scan.New(data)
	tr := New(data, Config{})
	for qi, q := range workload.ClusteredOn(dataset.Universe(), data, 4, 25, 1e-4, 200, 65) {
		got := sortedIDs(tr.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestMatchesScanLargeObjects(t *testing.T) {
	data := dataset.RandomBoxes(2000, 66, dataset.Universe())
	oracle := scan.New(data)
	tr := New(data, Config{Capacity: 16})
	for qi, q := range workload.Uniform(dataset.Universe(), 50, 1e-3, 67) {
		got := sortedIDs(tr.Query(q, nil))
		want := sortedIDs(oracle.Query(q, nil))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d, want %d", qi, len(got), len(want))
		}
	}
}

func TestHeightGrowth(t *testing.T) {
	// capacity 4: 100 objects -> 25 leaves -> 7 -> 2 -> 1: height 4.
	data := dataset.Uniform(100, 68)
	tr := New(data, Config{Capacity: 4})
	if tr.Height() != 4 {
		t.Fatalf("height = %d, want 4", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityDefault(t *testing.T) {
	data := dataset.Uniform(200, 69)
	tr := New(data, Config{Capacity: -5})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// 200 objects with capacity 60 -> 4 leaves -> 1 root: height 2.
	if tr.Height() != 2 {
		t.Fatalf("height = %d, want 2", tr.Height())
	}
}

func TestCount(t *testing.T) {
	data := dataset.Uniform(3000, 70)
	tr := New(data, Config{})
	q := workload.Uniform(dataset.Universe(), 1, 1e-2, 71)[0]
	if got, want := tr.Count(q), len(tr.Query(q, nil)); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func knnBrute(data []geom.Object, p geom.Point, k int) []Neighbor {
	nn := make([]Neighbor, len(data))
	for i := range data {
		nn[i] = Neighbor{ID: data[i].ID, DistSq: data[i].MinDistSq(p)}
	}
	sort.Slice(nn, func(i, j int) bool {
		if nn[i].DistSq != nn[j].DistSq {
			return nn[i].DistSq < nn[j].DistSq
		}
		return nn[i].ID < nn[j].ID
	})
	if k > len(nn) {
		k = len(nn)
	}
	return nn[:k]
}

func TestKNNMatchesBruteForce(t *testing.T) {
	data := dataset.Uniform(2000, 72)
	tr := New(data, Config{Capacity: 16})
	queries := workload.Uniform(dataset.Universe(), 20, 1e-3, 73)
	for qi, q := range queries {
		p := q.Center()
		got := tr.KNN(p, 10)
		want := knnBrute(data, p, 10)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d neighbors, want %d", qi, len(got), len(want))
		}
		for i := range got {
			// Distances must match exactly; IDs may differ on ties.
			if math.Abs(got[i].DistSq-want[i].DistSq) > 1e-9 {
				t.Fatalf("query %d neighbor %d: dist %g, want %g", qi, i, got[i].DistSq, want[i].DistSq)
			}
		}
		// Result must be sorted by distance.
		for i := 1; i < len(got); i++ {
			if got[i].DistSq < got[i-1].DistSq {
				t.Fatalf("query %d: KNN result not sorted", qi)
			}
		}
	}
}

func TestKNNMoreThanData(t *testing.T) {
	data := dataset.Uniform(5, 74)
	tr := New(data, Config{})
	nn := tr.KNN(geom.Point{0, 0, 0}, 100)
	if len(nn) != 5 {
		t.Fatalf("KNN returned %d, want all 5", len(nn))
	}
}

func TestSTRLeafOverlapLowerThanRandomOrder(t *testing.T) {
	// STR exists to minimize overlap; verify its leaves overlap less than
	// leaves packed in the input (random) order.
	data := dataset.Uniform(6000, 75)
	str := New(data, Config{})
	// Random-order packing: chunk the unsorted array.
	overlap := func(leaves []geom.Box) float64 {
		var total float64
		for i := 0; i < len(leaves); i++ {
			for j := i + 1; j < len(leaves); j++ {
				inter := leaves[i].Intersection(leaves[j])
				if !inter.IsEmpty() {
					total += inter.Volume()
				}
			}
		}
		return total
	}
	var strLeaves, randLeaves []geom.Box
	for lo := 0; lo < len(str.data); lo += str.cap {
		hi := lo + str.cap
		if hi > len(str.data) {
			hi = len(str.data)
		}
		strLeaves = append(strLeaves, geom.MBB(str.data[lo:hi]))
		randLeaves = append(randLeaves, geom.MBB(data[lo:hi]))
	}
	if o1, o2 := overlap(strLeaves), overlap(randLeaves); o1 >= o2 {
		t.Fatalf("STR leaf overlap %g not lower than random packing %g", o1, o2)
	}
}
