// Package rtree implements the static reference index of the QUASII paper: an
// R-tree bulk-loaded with the Sort-Tile-Recursive (STR) algorithm of
// Leutenegger et al. (ICDE 1997), with the paper's node capacity of 60.
//
// STR sorts the objects by x-center into vertical slabs, each slab by
// y-center into runs, and each run by z-center into leaf tiles. Because the
// resulting leaf order is a single permutation of the data array, leaves
// reference contiguous ranges of one packed array — the data is stored once,
// in tile order, and leaf scans are sequential. Upper levels pack consecutive
// nodes, which in STR order are spatially coherent.
//
// A best-first k-nearest-neighbor search is provided as an extension (range
// queries are "the building block for many other spatial queries", Sec. 2).
package rtree

import (
	"container/heap"
	"sort"

	"repro/internal/geom"
)

// DefaultCapacity is the paper's node capacity.
const DefaultCapacity = 60

// Config controls R-tree construction.
type Config struct {
	// Capacity is the maximum number of entries per node (leaf and internal).
	// Values < 2 mean DefaultCapacity.
	Capacity int
}

type node struct {
	box      geom.Box
	children []*node // nil for leaves
	lo, hi   int     // leaf: data range [lo,hi)
}

// Tree is an STR bulk-loaded R-tree.
type Tree struct {
	data []geom.Object // in STR tile order
	root *node
	cap  int
	// Height of the tree (1 = a single leaf).
	height int
}

// New bulk-loads an R-tree over data using STR. The input slice is copied so
// the caller's array stays untouched (the paper's static indexes do not
// reorganize caller data in place).
func New(data []geom.Object, cfg Config) *Tree {
	if cfg.Capacity < 2 {
		cfg.Capacity = DefaultCapacity
	}
	t := &Tree{data: make([]geom.Object, len(data)), cap: cfg.Capacity}
	copy(t.data, data)
	if len(t.data) == 0 {
		return t
	}
	t.strSort()
	leaves := t.packLeaves()
	t.height = 1
	level := leaves
	for len(level) > 1 {
		level = t.packLevel(level)
		t.height++
	}
	t.root = level[0]
	return t
}

// strSort arranges the data array into STR tile order.
func (t *Tree) strSort() {
	n := len(t.data)
	m := t.cap
	p := (n + m - 1) / m // number of leaves
	s := int(cbrtCeil(p))
	if s < 1 {
		s = 1
	}
	// Slab sizes: s slabs on x, each split into s runs on y, each chunked
	// into leaves of m on z.
	byCenter := func(d int) func(a, b geom.Object) bool {
		return func(a, b geom.Object) bool {
			return a.Min[d]+a.Max[d] < b.Min[d]+b.Max[d]
		}
	}
	// Canonical STR sizing: slabs of S²·M objects and runs of S·M objects,
	// both multiples of the leaf capacity M, so that the later chunking into
	// leaves of M never straddles a run or slab boundary (a straddling leaf
	// would span two distant tiles and blow up overlap).
	sortRange(t.data, byCenter(0))
	slab := s * s * m
	run := s * m
	for lo := 0; lo < n; lo += slab {
		hi := lo + slab
		if hi > n {
			hi = n
		}
		sortRange(t.data[lo:hi], byCenter(1))
		for rlo := lo; rlo < hi; rlo += run {
			rhi := rlo + run
			if rhi > hi {
				rhi = hi
			}
			sortRange(t.data[rlo:rhi], byCenter(2))
		}
	}
}

func sortRange(objs []geom.Object, less func(a, b geom.Object) bool) {
	sort.Slice(objs, func(i, j int) bool { return less(objs[i], objs[j]) })
}

// cbrtCeil returns ceil(p^(1/3)) for positive p.
func cbrtCeil(p int) int {
	s := 1
	for s*s*s < p {
		s++
	}
	return s
}

// packLeaves chunks the tile-ordered data into leaves of up to cap objects.
func (t *Tree) packLeaves() []*node {
	n := len(t.data)
	leaves := make([]*node, 0, (n+t.cap-1)/t.cap)
	for lo := 0; lo < n; lo += t.cap {
		hi := lo + t.cap
		if hi > n {
			hi = n
		}
		leaves = append(leaves, &node{
			box: geom.MBB(t.data[lo:hi]),
			lo:  lo, hi: hi,
		})
	}
	return leaves
}

// packLevel groups consecutive nodes (already in STR order) into parents.
func (t *Tree) packLevel(level []*node) []*node {
	parents := make([]*node, 0, (len(level)+t.cap-1)/t.cap)
	for lo := 0; lo < len(level); lo += t.cap {
		hi := lo + t.cap
		if hi > len(level) {
			hi = len(level)
		}
		box := geom.EmptyBox()
		for _, c := range level[lo:hi] {
			box = box.Extend(c.box)
		}
		parents = append(parents, &node{box: box, children: level[lo:hi]})
	}
	return parents
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return len(t.data) }

// Height returns the number of levels (1 = single leaf). 0 for empty trees.
func (t *Tree) Height() int { return t.height }

// Query appends the IDs of all objects intersecting q to out.
func (t *Tree) Query(q geom.Box, out []int32) []int32 {
	if t.root == nil || q.IsEmpty() {
		return out
	}
	return t.query(t.root, q, out)
}

func (t *Tree) query(n *node, q geom.Box, out []int32) []int32 {
	if n.children == nil {
		for i := n.lo; i < n.hi; i++ {
			if t.data[i].Intersects(q) {
				out = append(out, t.data[i].ID)
			}
		}
		return out
	}
	for _, c := range n.children {
		if c.box.Intersects(q) {
			out = t.query(c, q, out)
		}
	}
	return out
}

// Count returns the number of objects intersecting q.
func (t *Tree) Count(q geom.Box) int { return len(t.Query(q, nil)) }

// Neighbor is one kNN result: an object ID and its squared distance to the
// query point.
type Neighbor struct {
	ID     int32
	DistSq float64
}

// knnItem is a priority-queue entry: either a node or an object.
type knnItem struct {
	distSq float64
	node   *node
	objIdx int // valid when node == nil
}

type knnQueue []knnItem

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(i, j int) bool  { return q[i].distSq < q[j].distSq }
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnItem)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// KNN returns the k objects nearest to p (by box distance), closest first.
// It is the classic best-first search over the R-tree.
func (t *Tree) KNN(p geom.Point, k int) []Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	pq := &knnQueue{{distSq: t.root.box.MinDistSq(p), node: t.root}}
	result := make([]Neighbor, 0, k)
	for pq.Len() > 0 && len(result) < k {
		it := heap.Pop(pq).(knnItem)
		switch {
		case it.node == nil:
			result = append(result, Neighbor{ID: t.data[it.objIdx].ID, DistSq: it.distSq})
		case it.node.children == nil:
			for i := it.node.lo; i < it.node.hi; i++ {
				heap.Push(pq, knnItem{distSq: t.data[i].MinDistSq(p), objIdx: i})
			}
		default:
			for _, c := range it.node.children {
				heap.Push(pq, knnItem{distSq: c.box.MinDistSq(p), node: c})
			}
		}
	}
	return result
}

// CheckInvariants verifies the R-tree structure: node boxes contain their
// children/objects, leaves partition the data array, and node sizes respect
// capacity. Used by tests.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if len(t.data) != 0 {
			return errInvariant("nil root with data")
		}
		return nil
	}
	pos := 0
	if err := t.check(t.root, &pos); err != nil {
		return err
	}
	if pos != len(t.data) {
		return errInvariant("leaves do not cover the data array")
	}
	return nil
}

func (t *Tree) check(n *node, pos *int) error {
	if n.children == nil {
		if n.lo != *pos {
			return errInvariant("leaf does not start at expected position")
		}
		if n.hi-n.lo > t.cap || n.hi <= n.lo {
			return errInvariant("leaf size out of bounds")
		}
		for i := n.lo; i < n.hi; i++ {
			if !n.box.Contains(t.data[i].Box) {
				return errInvariant("leaf box does not contain object")
			}
		}
		*pos = n.hi
		return nil
	}
	if len(n.children) > t.cap || len(n.children) == 0 {
		return errInvariant("internal node size out of bounds")
	}
	for _, c := range n.children {
		if !n.box.Contains(c.box) {
			return errInvariant("node box does not contain child box")
		}
		if err := t.check(c, pos); err != nil {
			return err
		}
	}
	return nil
}

type errInvariant string

func (e errInvariant) Error() string { return "rtree: " + string(e) }
