// Shard-level version-visibility harness. The core package proves the MVCC
// chain exact against a sequence-replay oracle; here the same contract is
// held through the engine's routing, RWMutex scheduling and pinned
// snapshots:
//
//   - a deterministic zero-pause proof: updates acked after PinVersions are
//     visible to live queries immediately, and a snapshot written from the
//     pinned set restores to exactly the pre-pin state;
//   - an acked-writes audit under concurrent load: any insert acked before
//     a reader started must appear in that reader's results, and a client
//     that deleted an object never sees it again (read-your-writes);
//   - the -race stress matrix extended with checkpoint pinning: KNN, Flush
//     and snapshot-under-pin run concurrently with version publication, and
//     CheckInvariants (which enforces the version-GC horizon) plus a
//     live-version count close every round.
package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

func universeIDs(t *testing.T, ix *Index) map[int32]struct{} {
	t.Helper()
	ids := ix.Query(geom.UniverseBox(), nil)
	set := make(map[int32]struct{}, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}

// TestPinnedSnapshotSeesPinState is the shard-layer zero-pause proof:
// inserts and deletes acked while a PinSet is held are immediately visible
// to live queries, and the snapshot written from the pins restores to
// exactly the pre-pin state — set A in, set B out.
func TestPinnedSnapshotSeesPinState(t *testing.T) {
	base := dataset.Uniform(2000, 21)
	ix := New(dataset.Clone(base), Config{Shards: 4})

	mkObjs := func(first int32, n int) []geom.Object {
		objs := make([]geom.Object, n)
		for i := range objs {
			objs[i] = geom.Object{
				Box: geom.BoxAt(base[i%len(base)].Center(), 1),
				ID:  first + int32(i),
			}
		}
		return objs
	}
	setA := mkObjs(1_000_000, 100)
	if err := ix.Insert(setA...); err != nil {
		t.Fatal(err)
	}
	// One pre-pin delete: the snapshot must reflect it.
	preDel := base[7]
	if found, err := ix.Delete(preDel.ID, preDel.Box); err != nil || !found {
		t.Fatalf("pre-pin delete: found=%v err=%v", found, err)
	}

	ps, err := ix.PinVersions()
	if err != nil {
		t.Fatal(err)
	}
	vs := ps.Versions()
	if len(vs) != 4 {
		t.Fatalf("PinSet.Versions() = %d entries, want one per shard (4)", len(vs))
	}
	for i, v := range vs {
		if v == nil {
			t.Fatalf("PinSet.Versions()[%d] is nil", i)
		}
	}

	// Updates keep flowing while the pin is held — this is the pause that
	// no longer exists — and are visible the moment they are acked.
	setB := mkObjs(2_000_000, 100)
	if err := ix.Insert(setB...); err != nil {
		t.Fatal(err)
	}
	postDel := base[13]
	if found, err := ix.Delete(postDel.ID, postDel.Box); err != nil || !found {
		t.Fatalf("post-pin delete: found=%v err=%v", found, err)
	}
	live := universeIDs(t, ix)
	for _, o := range append(append([]geom.Object(nil), setA...), setB...) {
		if _, ok := live[o.ID]; !ok {
			t.Fatalf("acked insert %d invisible to live query while pin held", o.ID)
		}
	}
	if _, ok := live[postDel.ID]; ok {
		t.Fatalf("acked delete %d still visible while pin held", postDel.ID)
	}

	dir := t.TempDir()
	if err := ix.SnapshotPinned(dir, ps); err != nil {
		t.Fatal(err)
	}
	ps.Release()

	re, err := Restore(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snap := universeIDs(t, re)
	for _, o := range setA {
		if _, ok := snap[o.ID]; !ok {
			t.Fatalf("pre-pin insert %d missing from pinned snapshot", o.ID)
		}
	}
	for _, o := range setB {
		if _, ok := snap[o.ID]; ok {
			t.Fatalf("post-pin insert %d leaked into pinned snapshot", o.ID)
		}
	}
	if _, ok := snap[preDel.ID]; ok {
		t.Fatalf("pre-pin delete %d resurrected in pinned snapshot", preDel.ID)
	}
	if _, ok := snap[postDel.ID]; !ok {
		t.Fatalf("post-pin delete %d applied to pinned snapshot", postDel.ID)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All pins released: every sub-index must be back to a single version.
	if st := ix.Stats(); st.VersionsLive != st.Shards {
		t.Fatalf("versions live = %d after release, want %d (one per shard)",
			st.VersionsLive, st.Shards)
	}
}

// TestAckedWriteVisibility hammers the engine with writers and readers and
// holds the acked-writes contract: a reader that snapshots the acked set
// before querying must see every one of those inserts, and a writer that
// acked a delete never sees the object again.
func TestAckedWriteVisibility(t *testing.T) {
	const (
		writers      = 4
		opsPerWriter = 200
		readers      = 4
	)
	base := dataset.Uniform(3000, 23)
	ix := New(dataset.Clone(base), Config{Shards: 4})

	var ackMu sync.Mutex
	acked := make(map[int32]geom.Object) // acked inserts, removed on acked delete
	var done atomic.Bool

	var wgWriters, wgReaders sync.WaitGroup
	for w := 0; w < writers; w++ {
		wgWriters.Add(1)
		go func(w int) {
			defer wgWriters.Done()
			first := int32(1_000_000 * (w + 1))
			for i := 0; i < opsPerWriter; i++ {
				o := geom.Object{
					Box: geom.BoxAt(base[(w*opsPerWriter+i)%len(base)].Center(), 1),
					ID:  first + int32(i),
				}
				if err := ix.Insert(o); err != nil {
					t.Errorf("writer %d: insert: %v", w, err)
					return
				}
				ackMu.Lock()
				acked[o.ID] = o
				ackMu.Unlock()
				if i%3 == 0 {
					// Read-your-writes: the insert this client just acked
					// must be visible to its own next query.
					ids := ix.Query(o.Box, nil)
					seen := false
					for _, id := range ids {
						if id == o.ID {
							seen = true
							break
						}
					}
					if !seen {
						t.Errorf("writer %d: own acked insert %d invisible", w, o.ID)
						return
					}
				}
				if i%5 == 4 {
					// Delete an earlier own object; once acked it must stay
					// gone for this client.
					victim := first + int32(i-4)
					ackMu.Lock()
					vo, ok := acked[victim]
					ackMu.Unlock()
					if !ok {
						continue
					}
					// Remove from the acked set BEFORE the delete lands so a
					// concurrent reader that snapshots mid-delete does not
					// demand visibility of a half-deleted object.
					ackMu.Lock()
					delete(acked, victim)
					ackMu.Unlock()
					found, err := ix.Delete(victim, vo.Box)
					if err != nil || !found {
						t.Errorf("writer %d: delete %d: found=%v err=%v", w, victim, found, err)
						return
					}
					for _, id := range ix.Query(vo.Box, nil) {
						if id == victim {
							t.Errorf("writer %d: acked delete %d still visible", w, victim)
							return
						}
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wgReaders.Add(1)
		go func(r int) {
			defer wgReaders.Done()
			for !done.Load() {
				ackMu.Lock()
				want := make([]int32, 0, len(acked))
				for id := range acked {
					want = append(want, id)
				}
				ackMu.Unlock()
				got := universeIDs(t, ix)
				for _, id := range want {
					if _, ok := got[id]; ok {
						continue
					}
					// Writers withdraw an id from the acked set before
					// deleting it, so an id absent from the results is a
					// bug only if it is still acked after the read — a
					// delete racing the query excuses itself by the
					// withdrawal that preceded it.
					ackMu.Lock()
					_, still := acked[id]
					ackMu.Unlock()
					if still {
						t.Errorf("reader %d: insert %d acked before read started is invisible", r, id)
						return
					}
				}
			}
		}(r)
	}
	wgWriters.Wait()
	done.Store(true)
	wgReaders.Wait()
	if t.Failed() {
		return
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStressVersionedCheckpointMatrix extends the -race stress matrix with
// checkpoint pinning: queries, KNN probes, inserts, deletes and flushes run
// concurrently with PinVersions/SnapshotPinned/Release cycles, on
// GOMAXPROCS 1 and 4. CheckInvariants — which asserts no version chain
// exceeds the GC horizon — closes every round, and quiescence must collapse
// every chain back to a single live version per shard.
func TestStressVersionedCheckpointMatrix(t *testing.T) {
	for _, procs := range []int{1, 4} {
		procs := procs
		t.Run(map[int]string{1: "GOMAXPROCS=1", 4: "GOMAXPROCS=4"}[procs], func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			base := dataset.Uniform(4000, 29)
			ix := New(dataset.Clone(base), Config{Shards: 2, VersionHorizon: 8})
			boxes := workload.Uniform(dataset.Universe(), 100, 1e-3, 31)

			var wg sync.WaitGroup
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					var buf []int32
					for i := r; i < len(boxes); i += 3 {
						buf = ix.Query(boxes[i], buf[:0])
						if _, err := ix.KNN(boxes[i].Center(), 5); err != nil {
							t.Errorf("reader %d: KNN: %v", r, err)
							return
						}
					}
				}(r)
			}
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(boxes); i += 2 {
						id := int32(3_000_000 + w*100_000 + i)
						obj := geom.Object{Box: geom.BoxAt(boxes[i].Center(), 1), ID: id}
						if err := ix.Insert(obj); err != nil {
							t.Errorf("writer %d: insert: %v", w, err)
							return
						}
						if _, err := ix.Delete(id, obj.Box); err != nil {
							t.Errorf("writer %d: delete: %v", w, err)
							return
						}
						if w == 0 && i%24 == 0 {
							if err := ix.Flush(); err != nil {
								t.Errorf("flush: %v", err)
								return
							}
						}
					}
				}(w)
			}
			wg.Add(1)
			go func() { // the checkpointer: pin → snapshot → release, repeatedly
				defer wg.Done()
				for i := 0; i < 6; i++ {
					ps, err := ix.PinVersions()
					if err != nil {
						t.Errorf("checkpoint %d: pin: %v", i, err)
						return
					}
					if i%2 == 0 {
						if err := ix.SnapshotPinned(t.TempDir(), ps); err != nil {
							t.Errorf("checkpoint %d: snapshot: %v", i, err)
							ps.Release()
							return
						}
					}
					ps.Release()
					// The horizon invariant must hold mid-storm, not just at
					// the end.
					if err := ix.CheckInvariants(); err != nil {
						t.Errorf("checkpoint %d: invariants: %v", i, err)
						return
					}
				}
			}()
			wg.Wait()
			if t.Failed() {
				return
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := ix.Flush(); err != nil {
				t.Fatal(err)
			}
			if st := ix.Stats(); st.VersionsLive != st.Shards {
				t.Fatalf("versions live = %d after quiescence, want %d", st.VersionsLive, st.Shards)
			}
		})
	}
}
