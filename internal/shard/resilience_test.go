package shard

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/telemetry"
)

// bomb is a minimal sub-index whose operations can be armed to panic,
// standing in for a corrupted structure. It satisfies Queryable, Updatable
// and NearestNeighborer with linear scans — slow but obviously correct, so
// the tests measure the engine's isolation behaviour, not the index.
type bomb struct {
	objs                                   []geom.Object
	armQuery, armAppend, armDelete, armKNN bool
}

func (b *bomb) Len() int { return len(b.objs) }

func (b *bomb) Query(q geom.Box, out []int32) []int32 {
	if b.armQuery {
		panic("bomb: query")
	}
	for _, o := range b.objs {
		if o.Box.Intersects(q) {
			out = append(out, o.ID)
		}
	}
	return out
}

func (b *bomb) Append(objs ...geom.Object) {
	if b.armAppend {
		panic("bomb: append")
	}
	b.objs = append(b.objs, objs...)
}

func (b *bomb) Delete(id int32, hint geom.Box) bool {
	if b.armDelete {
		panic("bomb: delete")
	}
	for i, o := range b.objs {
		if o.ID == id {
			b.objs = append(b.objs[:i], b.objs[i+1:]...)
			return true
		}
	}
	return false
}

func (b *bomb) Flush()       {}
func (b *bomb) Pending() int { return 0 }

func (b *bomb) KNN(p geom.Point, k int) []core.Neighbor {
	if b.armKNN {
		panic("bomb: knn")
	}
	ns := make([]core.Neighbor, 0, len(b.objs))
	for _, o := range b.objs {
		ns = append(ns, core.Neighbor{ID: o.ID, DistSq: o.Box.MinDistSq(p)})
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].DistSq != ns[j].DistSq {
			return ns[i].DistSq < ns[j].DistSq
		}
		return ns[i].ID < ns[j].ID
	})
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

// bombObjects builds two well-separated clusters so a 2-shard STR partition
// puts IDs 1..4 in one shard and 11..14 in the other.
func bombObjects() []geom.Object {
	var objs []geom.Object
	for i := 0; i < 4; i++ {
		objs = append(objs, geom.Object{Box: geom.BoxAt(geom.Point{float64(i), 0, 0}, 0.4), ID: int32(1 + i)})
		objs = append(objs, geom.Object{Box: geom.BoxAt(geom.Point{float64(100 + i), 0, 0}, 0.4), ID: int32(11 + i)})
	}
	return objs
}

// bombIndex builds a 2-shard engine over bombObjects with bomb sub-indexes
// and returns the engine plus the constructed bombs in build order.
func bombIndex(t *testing.T) (*Index, []*bomb) {
	t.Helper()
	var bombs []*bomb
	ix := New(bombObjects(), Config{
		Shards: 2,
		New: func(data []geom.Object) Queryable {
			b := &bomb{objs: append([]geom.Object(nil), data...)}
			bombs = append(bombs, b)
			return b
		},
	})
	if len(bombs) != 2 || ix.NumShards() != 2 {
		t.Fatalf("want 2 bomb shards, got %d shards, %d bombs", ix.NumShards(), len(bombs))
	}
	return ix, bombs
}

// bombFor finds the bomb holding the given ID.
func bombFor(t *testing.T, bombs []*bomb, id int32) *bomb {
	t.Helper()
	for _, b := range bombs {
		for _, o := range b.objs {
			if o.ID == id {
				return b
			}
		}
	}
	t.Fatalf("no bomb holds id %d", id)
	return nil
}

func idSet(ids []int32) map[int32]bool {
	m := make(map[int32]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestQueryPanicQuarantinesShard(t *testing.T) {
	ix, bombs := bombIndex(t)
	all := geom.BoxAt(geom.Point{50, 0, 0}, 1000)

	bad := bombFor(t, bombs, 1)
	bad.armQuery = true
	got := idSet(ix.Query(all, nil))
	if got[1] || got[2] {
		t.Fatalf("results include objects from the panicking shard: %v", got)
	}
	for _, id := range []int32{11, 12, 13, 14} {
		if !got[id] {
			t.Fatalf("healthy shard's object %d missing: %v", id, got)
		}
	}
	if q := ix.Quarantined(); q != 1 {
		t.Fatalf("Quarantined() = %d, want 1", q)
	}
	if st := ix.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats().Quarantined = %d, want 1", st.Quarantined)
	}

	// Disarming does not heal: quarantine is sticky until rebuild.
	bad.armQuery = false
	if got := idSet(ix.Query(all, nil)); got[1] {
		t.Fatalf("quarantined shard served a query after disarm: %v", got)
	}
	if n := ix.Len(); n != 4 {
		t.Fatalf("Len() = %d, want 4 (quarantined shard excluded)", n)
	}
}

func TestSnapshotRefusedWhenQuarantined(t *testing.T) {
	ix, bombs := bombIndex(t)
	bombFor(t, bombs, 1).armQuery = true
	ix.Query(geom.BoxAt(geom.Point{0, 0, 0}, 10), nil) // trip the quarantine
	err := ix.Snapshot(t.TempDir())
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Snapshot with quarantined shard: %v, want ErrQuarantined", err)
	}
}

func TestInsertRoutesAroundQuarantinedShard(t *testing.T) {
	ix, bombs := bombIndex(t)
	bad := bombFor(t, bombs, 1)
	bad.armQuery = true
	ix.Query(geom.BoxAt(geom.Point{0, 0, 0}, 10), nil)
	bad.armQuery = false

	// The object's center lies in the quarantined shard's tile; routing must
	// fall through to the next-nearest healthy shard and still serve it.
	obj := geom.Object{Box: geom.BoxAt(geom.Point{1, 0, 0}, 0.4), ID: 99}
	if err := ix.Insert(obj); err != nil {
		t.Fatalf("Insert around quarantined shard: %v", err)
	}
	if got := idSet(ix.Query(obj.Box, nil)); !got[99] {
		t.Fatalf("rerouted insert invisible to queries: %v", got)
	}
}

func TestAppendPanicReturnsErrQuarantined(t *testing.T) {
	ix, bombs := bombIndex(t)
	bombFor(t, bombs, 1).armAppend = true
	err := ix.Insert(geom.Object{Box: geom.BoxAt(geom.Point{1, 0, 0}, 0.4), ID: 99})
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("Insert into panicking shard: %v, want ErrQuarantined", err)
	}
	if q := ix.Quarantined(); q != 1 {
		t.Fatalf("Quarantined() = %d, want 1", q)
	}
}

func TestDeletePanicProbesRemainingShards(t *testing.T) {
	ix, bombs := bombIndex(t)
	bombFor(t, bombs, 1).armDelete = true
	// Hint spans both shards; the panicking one is probed first (shard
	// order), quarantines itself, and the delete still lands in the other.
	found, err := ix.Delete(11, geom.BoxAt(geom.Point{50, 0, 0}, 1000))
	if err != nil || !found {
		t.Fatalf("Delete across panicking shard: found=%v err=%v", found, err)
	}
	if q := ix.Quarantined(); q != 1 {
		t.Fatalf("Quarantined() = %d, want 1", q)
	}
}

func TestKNNSkipsPanickingShard(t *testing.T) {
	ix, bombs := bombIndex(t)
	bombFor(t, bombs, 1).armKNN = true
	// Query point sits in the panicking shard's cluster: that shard probes
	// first, panics, and KNN must still answer from the healthy one.
	got, err := ix.KNN(geom.Point{0, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 11 || got[1].ID != 12 {
		t.Fatalf("KNN after panic = %+v, want IDs 11, 12", got)
	}
	if q := ix.Quarantined(); q != 1 {
		t.Fatalf("Quarantined() = %d, want 1", q)
	}
}

func TestPanicMetrics(t *testing.T) {
	ix, bombs := bombIndex(t)
	reg := telemetry.NewRegistry()
	ix.Instrument(reg)
	bombFor(t, bombs, 1).armQuery = true
	ix.Query(geom.BoxAt(geom.Point{0, 0, 0}, 10), nil)

	if v := ix.mPanics.Value(); v != 1 {
		t.Fatalf("quasii_shard_panics_total = %d, want 1", v)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "quasii_shard_quarantined_shards 1") {
		t.Fatalf("scrape missing quarantined gauge = 1:\n%s", sb.String())
	}
}

// TestQueryCtx covers the context-aware entry points: a non-cancellable
// context matches the plain path exactly, a pre-cancelled one fails fast,
// and cancellation surfaces from batch and KNN variants too.
func TestQueryCtx(t *testing.T) {
	ix, _ := bombIndex(t)
	all := geom.BoxAt(geom.Point{50, 0, 0}, 1000)

	plain := idSet(ix.Query(all, nil))
	got, err := ix.QueryCtx(context.Background(), all, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g := idSet(got); len(g) != len(plain) {
		t.Fatalf("QueryCtx(Background) = %v, plain = %v", g, plain)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.QueryCtx(cancelled, all, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryCtx(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := ix.QueryBatchCtx(cancelled, []geom.Box{all, all}); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryBatchCtx(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := ix.KNNCtx(cancelled, geom.Point{0, 0, 0}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("KNNCtx(cancelled) err = %v, want context.Canceled", err)
	}

	res, err := ix.QueryBatchCtx(context.Background(), []geom.Box{all})
	if err != nil || len(res) != 1 || len(res[0]) != 8 {
		t.Fatalf("QueryBatchCtx(Background): res=%v err=%v", res, err)
	}
	nb, err := ix.KNNCtx(context.Background(), geom.Point{0, 0, 0}, 1)
	if err != nil || len(nb) != 1 || nb[0].ID != 1 {
		t.Fatalf("KNNCtx(Background): %+v err=%v", nb, err)
	}
}

// TestQueryCtxDeadlineMidFanout drives the real cancellable fan-out path
// (not the delegating fast path) and checks a cancel observed mid-merge
// still returns every pooled buffer and reports the error.
func TestQueryCtxMidFlight(t *testing.T) {
	ix, _ := bombIndex(t)
	all := geom.BoxAt(geom.Point{50, 0, 0}, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Not yet cancelled: the cancellable path must produce full results.
	got, err := ix.QueryTracedCtx(ctx, all, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("cancellable path returned %d IDs, want 8", len(got))
	}
}
