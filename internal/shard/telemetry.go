// Registry wiring for the sharded engine. The engine is instrumented in
// two tiers:
//
//   - Hot-path counters (shared-vs-exclusive path taken, fan-out width)
//     are maintained inline — each costs one nil check plus one atomic op
//     per shard query, preserving the allocation-free converged path.
//   - Everything else (the QUASII work counters, per-shard occupancy, crack
//     epochs) is already maintained by the engine for /stats, so /metrics
//     reads it at scrape time: one OnScrape hook walks the shards once and
//     caches a snapshot, and cheap CounterFunc/GaugeFunc closures serve the
//     cached fields. A scrape costs one Stats() sweep regardless of how
//     many series it feeds, and the query path is not taxed twice.
//
// The quasii_core_* series are the paper's convergence observables: slices
// refined and the shared-path ratio both rise monotonically as the index
// cracks toward its steady state, which is the curve the EDBT paper plots
// and the loadgen oracle now verifies live.

package shard

import (
	"strconv"
	"sync"

	"repro/internal/telemetry"
)

// shardSnap is one shard's occupancy in the scrape snapshot.
type shardSnap struct {
	live, pending, deleted int
}

// scrapeSnap is the per-scrape snapshot the OnScrape hook fills and the
// metric funcs read.
type scrapeSnap struct {
	st       Stats
	epochs   uint64
	perShard []shardSnap
	overflow shardSnap
}

// Instrument registers the engine's metrics on reg. Call it once, before
// serving queries (the hot-path counters are attached without
// synchronization). A nil registry is a no-op.
func (ix *Index) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	ix.mShared = reg.Counter("quasii_shard_shared_queries_total",
		"Shard probes answered on the optimistic shared (read-locked) path.")
	ix.mExclusive = reg.Counter("quasii_shard_exclusive_queries_total",
		"Shard probes that took the budgeted-exclusive (cracking) path.")
	ix.mFanout = reg.Histogram("quasii_shard_fanout_width_shards",
		"Shards overlapped per query.", telemetry.SizeBuckets)
	ix.mPanics = reg.Counter("quasii_shard_panics_total",
		"Panics recovered inside shard probes; each one quarantines its shard.")
	ix.forEach(func(sh *shardEntry) {
		sh.mShared = ix.mShared
		sh.mExclusive = ix.mExclusive
		sh.mPanics = ix.mPanics
	})

	// Scrape-time tier: one locked walk per scrape, cached for the funcs.
	// The snapshot is built on a fresh slice each scrape so a concurrent
	// scrape still reading the previous snapshot never shares its backing
	// array (scrapes are rare; the small allocation is irrelevant).
	var mu sync.Mutex
	var snap scrapeSnap
	reg.OnScrape(func() {
		s := scrapeSnap{perShard: make([]shardSnap, 0, len(ix.shards))}
		st := Stats{Shards: len(ix.shards)}
		first := true
		for _, sh := range ix.shards {
			// A quarantined shard contributes a zero row (its labels stay
			// stable) and is never probed: its sub-index cannot be trusted.
			if sh.quarantined.Load() {
				st.Quarantined++
				s.perShard = append(s.perShard, shardSnap{})
				continue
			}
			p0, d0 := st.Pending, st.Deleted
			n := ix.collect(sh, &st)
			if first || n < st.MinShardLen {
				st.MinShardLen = n
				first = false
			}
			if n > st.MaxShardLen {
				st.MaxShardLen = n
			}
			s.perShard = append(s.perShard, shardSnap{
				live: n, pending: st.Pending - p0, deleted: st.Deleted - d0,
			})
			if sh.shared != nil {
				s.epochs += sh.shared.Epoch()
			}
		}
		if sh := ix.overflow.Load(); sh != nil {
			if sh.quarantined.Load() {
				st.Quarantined++
			} else {
				p0, d0 := st.Pending, st.Deleted
				st.OverflowLen = ix.collect(sh, &st)
				s.overflow = shardSnap{
					live: st.OverflowLen, pending: st.Pending - p0, deleted: st.Deleted - d0,
				}
				if sh.shared != nil {
					s.epochs += sh.shared.Epoch()
				}
			}
		}
		s.st = st
		mu.Lock()
		snap = s
		mu.Unlock()
	})
	get := func(f func(*scrapeSnap) float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return f(&snap)
		}
	}

	// The QUASII work counters — cumulative and monotone, so they render as
	// counters even though they are read, not incremented, here.
	reg.CounterFunc("quasii_core_queries_total",
		"Queries executed on the exclusive (refining) path, summed over sub-indexes.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Core.Queries) }))
	reg.CounterFunc("quasii_core_shared_queries_total",
		"Queries answered by the shared read-only walk, summed over sub-indexes.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Core.SharedQueries) }))
	reg.CounterFunc("quasii_core_cracks_total",
		"Two-way partition passes performed by refinement.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Core.Cracks) }))
	reg.CounterFunc("quasii_core_cracked_objects_total",
		"Objects moved (upper bound: scanned) across all crack passes.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Core.CrackedObjects) }))
	reg.CounterFunc("quasii_core_slices_created_total",
		"Slices materialized at all hierarchy levels.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Core.SlicesCreated) }))
	reg.CounterFunc("quasii_core_slices_refined_total",
		"Slices finalized with an exact MBB — the convergence curve of the paper.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Core.SlicesRefined) }))
	reg.CounterFunc("quasii_core_objects_tested_total",
		"Objects tested for final intersection during bottom-level scans.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Core.ObjectsTested) }))
	reg.CounterFunc("quasii_core_result_objects_total",
		"Objects reported as query results.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Core.ResultObjects) }))
	reg.CounterFunc("quasii_core_crack_epochs_total",
		"Structural-mutation epochs summed over sub-indexes; stands still once converged.",
		get(func(s *scrapeSnap) float64 { return float64(s.epochs) }))
	reg.GaugeFunc("quasii_core_shared_ratio",
		"Fraction of sub-index queries answered on the shared path (cumulative).",
		get(func(s *scrapeSnap) float64 {
			total := float64(s.st.Core.Queries) + float64(s.st.Core.SharedQueries)
			if total == 0 {
				return 0
			}
			return float64(s.st.Core.SharedQueries) / total
		}))

	reg.GaugeFunc("quasii_core_versions_live",
		"MVCC versions retained across all sub-indexes: one per shard when quiescent, one extra per shard while a checkpoint holds its pin. A plateau above that means a leaked pin.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.VersionsLive) }))

	// Engine shape and occupancy.
	reg.GaugeFunc("quasii_shard_count_shards",
		"Spatial shards (excluding the overflow shard).",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Shards) }))
	reg.GaugeFunc("quasii_shard_total_objects",
		"Live objects across all shards.",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Objects) }))
	reg.GaugeFunc("quasii_shard_quarantined_shards",
		"Shards currently quarantined after a sub-index panic (queries skip them).",
		get(func(s *scrapeSnap) float64 { return float64(s.st.Quarantined) }))
	for i := range ix.shards {
		lbl := telemetry.L("shard", strconv.Itoa(i))
		i := i
		perShard := func(f func(shardSnap) float64) func() float64 {
			return get(func(s *scrapeSnap) float64 {
				if i >= len(s.perShard) {
					return 0
				}
				return f(s.perShard[i])
			})
		}
		reg.GaugeFunc("quasii_shard_live_objects",
			"Live objects in this shard.",
			perShard(func(p shardSnap) float64 { return float64(p.live) }), lbl)
		reg.GaugeFunc("quasii_shard_pending_objects",
			"Appended objects awaiting Flush in this shard.",
			perShard(func(p shardSnap) float64 { return float64(p.pending) }), lbl)
		reg.GaugeFunc("quasii_shard_deleted_objects",
			"Tombstoned objects awaiting compaction in this shard.",
			perShard(func(p shardSnap) float64 { return float64(p.deleted) }), lbl)
	}
	ovl := telemetry.L("shard", "overflow")
	reg.GaugeFunc("quasii_shard_live_objects",
		"Live objects in the overflow shard (0 when absent).",
		get(func(s *scrapeSnap) float64 { return float64(s.overflow.live) }), ovl)
	reg.GaugeFunc("quasii_shard_pending_objects",
		"Appended objects awaiting Flush in the overflow shard.",
		get(func(s *scrapeSnap) float64 { return float64(s.overflow.pending) }), ovl)
	reg.GaugeFunc("quasii_shard_deleted_objects",
		"Tombstoned objects awaiting compaction in the overflow shard.",
		get(func(s *scrapeSnap) float64 { return float64(s.overflow.deleted) }), ovl)
}
