// K-nearest-neighbor search over the sharded engine: probe shards in order
// of their distance to the query point, merge the per-shard top-k lists,
// and stop as soon as the next shard's bounding box is farther than the
// current k-th neighbor — the classic branch-and-bound pruning, applied at
// shard granularity.

package shard

import (
	"context"
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
)

// NearestNeighborer is the optional interface a sub-index must satisfy for
// the sharded engine to answer KNN. The default QUASII sub-indexes
// (core.Index, which answers kNN with expanding range queries) satisfy it.
type NearestNeighborer interface {
	KNN(p geom.Point, k int) []core.Neighbor
}

// SharedNearestNeighborer is the optional sub-index interface that answers
// KNN on the shared read path: KNNShared must be read-only (safe under the
// shard's read lock, concurrently with other shared calls) and report
// ok == false when the probed region still needs exclusive refinement.
// The default QUASII sub-indexes satisfy it.
type SharedNearestNeighborer interface {
	KNNShared(p geom.Point, k int) ([]core.Neighbor, bool)
}

// ErrNoKNN is returned by KNN when the shard sub-indexes (built by a custom
// Config.New) do not satisfy NearestNeighborer.
var ErrNoKNN = errors.New("shard: sub-index does not support KNN (NearestNeighborer)")

// KNN returns the k objects nearest to p (by minimum box distance), closest
// first, with IDs as a deterministic tie-break. Shards are probed nearest
// bounding box first, and probing stops once the next shard's box is
// farther than the current k-th neighbor. A probe first attempts the
// sub-index's shared read path under the read lock — on a converged shard,
// KNN traffic proceeds in parallel with range queries and other KNNs — and
// only falls back to the exclusive lock (refining the shard as a side
// effect, like every QUASII query) when the probed region is still cold.
// Safe for concurrent use; concurrent updates may or may not be reflected.
func (ix *Index) KNN(p geom.Point, k int) ([]core.Neighbor, error) {
	return ix.knn(nil, p, k)
}

// KNNCtx is KNN with cooperative cancellation: the context is checked
// between shard probes (never inside one — a probe holds a shard lock and
// is not interruptible), and a cancelled search returns ctx.Err() with the
// neighbors merged so far. A nil or never-cancellable context delegates to
// the plain path.
func (ix *Index) KNNCtx(ctx context.Context, p geom.Point, k int) ([]core.Neighbor, error) {
	if ctx == nil || ctx.Done() == nil {
		return ix.knn(nil, p, k)
	}
	return ix.knn(ctx, p, k)
}

// knn is the shared branch-and-bound body; ctx may be nil (no cancellation).
// Probes run through the panic-isolating helpers in resilience.go: a shard
// that panics is quarantined and skipped, and the search carries on.
func (ix *Index) knn(ctx context.Context, p geom.Point, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	type cand struct {
		sh *shardEntry
		d  float64
	}
	var cands []cand
	ix.forEach(func(sh *shardEntry) {
		cands = append(cands, cand{sh, sh.boundsBox().MinDistSq(p)})
	})
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })

	var best []core.Neighbor
	for _, c := range cands {
		if len(best) >= k && c.d > best[len(best)-1].DistSq {
			break
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return best, err
			}
		}
		if c.sh.quarantined.Load() {
			continue
		}
		var found []core.Neighbor
		done := false
		if c.sh.sharedNN != nil {
			var healthy bool
			found, done, healthy = c.sh.knnSharedProbe(p, k)
			if !healthy {
				continue
			}
		}
		if !done {
			nn, ok := c.sh.sub.(NearestNeighborer)
			if !ok {
				return nil, ErrNoKNN
			}
			var healthy bool
			found, healthy = c.sh.knnExclusiveProbe(nn, p, k)
			if !healthy {
				continue
			}
		}
		best = mergeNeighbors(best, found, k)
	}
	return best, nil
}

// mergeNeighbors merges two distance-sorted neighbor lists into the k best,
// sorted by distance with ID as tie-break.
func mergeNeighbors(a, b []core.Neighbor, k int) []core.Neighbor {
	a = append(a, b...)
	sort.Slice(a, func(i, j int) bool {
		if a[i].DistSq != a[j].DistSq {
			return a[i].DistSq < a[j].DistSq
		}
		return a[i].ID < a[j].ID
	})
	if len(a) > k {
		a = a[:k]
	}
	return a
}
