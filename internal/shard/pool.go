// Result-buffer pooling: every query against the sharded engine used to
// allocate fresh []int32 result slices — one per overlapping shard in
// Query's fan-out and one per query in QueryBatch — which at serving rates
// turns into steady GC pressure. The pool below recycles those buffers.
// Internal fan-out buffers are returned automatically after the merge; the
// per-query results that QueryBatch hands to callers can be recycled by the
// caller (the HTTP server does, once the response is encoded) via
// PutResultBuf/RecycleResults.

package shard

import "sync"

// idBufPool recycles ID buffers. Entries are *[]int32 so that internal
// Get/Put pairs stay allocation-free.
var idBufPool = sync.Pool{New: func() interface{} { b := make([]int32, 0, 512); return &b }}

func getIDBuf() *[]int32 { return idBufPool.Get().(*[]int32) }

func putIDBuf(b *[]int32) {
	if cap(*b) > maxPooledCap {
		return
	}
	*b = (*b)[:0]
	idBufPool.Put(b)
}

// boxPool recycles the *[]int32 boxes that the value-based public API
// (GetResultBuf/PutResultBuf) unwraps and re-wraps, so the steady-state
// Get/Put cycle allocates neither the buffer nor its box.
var boxPool = sync.Pool{New: func() interface{} { return new([]int32) }}

// GetResultBuf returns an empty ID buffer from the engine's pool. Using it
// as the out argument of Query (and returning it afterwards with
// PutResultBuf) makes the steady-state query path allocation-free.
func GetResultBuf() []int32 {
	p := getIDBuf()
	b := (*p)[:0]
	*p = nil
	boxPool.Put(p)
	return b
}

// PutResultBuf returns a result buffer to the pool. The buffer must not be
// used after the call. Buffers that grew past the pool's reuse ceiling are
// dropped so one giant result cannot pin memory forever.
func PutResultBuf(b []int32) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	p := boxPool.Get().(*[]int32)
	*p = b[:0]
	idBufPool.Put(p)
}

// RecycleResults returns every per-query slice of a QueryBatch result to
// the pool. None of the slices may be used after the call.
func RecycleResults(results [][]int32) {
	for _, r := range results {
		PutResultBuf(r)
	}
}

// maxPooledCap bounds the capacity of buffers kept by the pool (1 MiB of
// int32 IDs); larger one-off results are left to the garbage collector.
const maxPooledCap = 1 << 18
