// Benchmark evidence for the telemetry acceptance criterion: the converged
// query hot path must stay allocation-free with a registry attached, and
// within a few percent of the uninstrumented engine. The instrumented
// variant pays exactly the designed costs per query — one histogram
// Observe (fan-out width) plus one counter Inc per shard probe — and the
// registry's scrape-time tier adds nothing until /metrics is scraped.

package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func benchConvergedTelemetry(b *testing.B, instrument bool) {
	const n = 200_000
	data := dataset.Uniform(n, 45)
	ix := New(data, Config{
		Shards:    1,
		Workers:   1,
		SubConfig: core.Config{DisableStats: true},
	})
	if instrument {
		ix.Instrument(telemetry.NewRegistry())
	}
	ix.Complete()
	queries := workload.Uniform(dataset.Universe(), 1024, 1e-4, 46)
	b.ReportAllocs()
	b.ResetTimer()
	var buf []int32
	for i := 0; i < b.N; i++ {
		buf = ix.Query(queries[i%len(queries)], buf[:0])
	}
}

// BenchmarkQueryConvergedTelemetry compares the converged single-shard
// query path with and without an attached metrics registry. Run with
// -benchmem: both variants must report 0 allocs/op.
func BenchmarkQueryConvergedTelemetry(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchConvergedTelemetry(b, false) })
	b.Run("on", func(b *testing.B) { benchConvergedTelemetry(b, true) })
}

// TestConvergedPathNoAllocsInstrumented pins the acceptance criterion as a
// regular test so it runs in every `go test` sweep, not only under -bench.
func TestConvergedPathNoAllocsInstrumented(t *testing.T) {
	data := dataset.Uniform(50_000, 45)
	ix := New(data, Config{Shards: 1, Workers: 1, SubConfig: core.Config{DisableStats: true}})
	ix.Instrument(telemetry.NewRegistry())
	ix.Complete()
	queries := workload.Uniform(dataset.Universe(), 64, 1e-4, 46)
	var buf []int32
	allocs := testing.AllocsPerRun(200, func() {
		for _, q := range queries {
			buf = ix.Query(q, buf[:0])
		}
	})
	if allocs > 0 {
		t.Fatalf("converged instrumented query path allocates %.1f times per round, want 0", allocs)
	}
}
