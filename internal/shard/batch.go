// Batch scheduling: many queries in flight at once, answered by a fixed
// worker pool. With inter-query parallelism available, each query runs
// serially over its overlapping shards — per-query fan-out would only add
// goroutine churn on a saturated pool — so the workers stay busy as long as
// the queries spread across shards.
package shard

import (
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// QueryBatch answers every query and returns the per-query ID sets, indexed
// like queries. It schedules the batch across the worker pool; results are
// identical to calling Query on each box in order. Safe for concurrent use,
// including concurrently with Query.
func (ix *Index) QueryBatch(queries []geom.Box) [][]int32 {
	results := make([][]int32, len(queries))
	workers := ix.workers
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		var hit []int
		for qi := range queries {
			hit = ix.overlapping(queries[qi], hit[:0])
			results[qi] = ix.querySerial(hit, queries[qi], nil)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hit []int
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(queries) {
					return
				}
				hit = ix.overlapping(queries[qi], hit[:0])
				results[qi] = ix.querySerial(hit, queries[qi], nil)
			}
		}()
	}
	wg.Wait()
	return results
}
