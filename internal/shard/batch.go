// Batch scheduling: many queries in flight at once, answered by the shared
// worker pool. With inter-query parallelism available, each query runs
// serially over its overlapping shards — per-query fan-out would only add
// goroutine churn on a saturated pool — so the workers stay busy as long as
// the queries spread across shards.

package shard

import (
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/telemetry"
)

// QueryBatch answers every query and returns the per-query ID sets, indexed
// like queries. The calling goroutine always drains queries itself; helper
// goroutines join only while slots are free in the engine's global worker
// pool (the same pool Query's fan-out draws from), so concurrent QueryBatch
// calls share one hardware-sized bound instead of multiplying. Results are
// identical to calling Query on each box in order. Safe for concurrent use,
// including concurrently with Query.
func (ix *Index) QueryBatch(queries []geom.Box) [][]int32 {
	return ix.QueryBatchTraced(queries, nil)
}

// QueryBatchTraced is QueryBatch with sampled stage traces attached: traces,
// when non-nil, is indexed like queries and carries the trace of each
// sampled query (nil entries — the common case — are untraced). The serving
// layer aligns it with the coalesced batch it hands down.
func (ix *Index) QueryBatchTraced(queries []geom.Box, traces []*telemetry.Trace) [][]int32 {
	results := make([][]int32, len(queries))
	var next atomic.Int64
	drain := func() {
		var hit []*shardEntry
		for {
			qi := int(next.Add(1)) - 1
			if qi >= len(queries) {
				return
			}
			var tr *telemetry.Trace
			if traces != nil {
				tr = traces[qi]
			}
			hit = ix.overlapping(queries[qi], hit[:0])
			ix.mFanout.Observe(float64(len(hit)))
			tr.SetFanout(len(hit))
			// Result buffers come from the engine's pool; callers that are
			// done with them can hand them back via RecycleResults (the
			// HTTP server does after encoding each response).
			results[qi] = querySerial(hit, queries[qi], GetResultBuf(), tr)
		}
	}
	helpers := ix.workers
	if helpers > len(queries) {
		helpers = len(queries)
	}
	var wg sync.WaitGroup
	for w := 1; w < helpers; w++ {
		// Non-blocking acquire, like Query's fan-out: when the pool is
		// saturated by concurrent callers, the batch still completes on the
		// caller's goroutine rather than stacking idle helpers.
		select {
		case ix.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				drain()
				<-ix.sem
			}()
		default:
		}
	}
	drain()
	wg.Wait()
	return results
}
