// Panic isolation for the sharded engine. A sub-index that panics mid-probe
// (a corrupted slice hierarchy, an out-of-bounds walk, a bug in a custom
// Config.New index) must not take the whole serving process down or — worse —
// leave its shard mutex locked forever so every later query hangs. Every
// probe into a sub-index therefore runs through one of the helpers below:
// the panic is recovered, the shard is quarantined, and the engine carries
// on over the remaining shards.
//
// Quarantine is fail-stop at shard granularity: once poisoned, a shard is
// skipped by queries, KNN, updates, Len/Stats walks and Flush (its objects
// drop out of results — degraded, but honest), and Snapshot refuses to run
// at all, because persisting a structure that just demonstrated memory
// corruption would turn a transient crash into a durable one. A quarantined
// engine heals only by rebuild: restart the process and recover from the
// last good snapshot + WAL.
//
// Lock-ordering subtlety: in each helper the recover defer is registered
// BEFORE the lock is taken (and its unlock deferred), so when a probe
// panics the deferred unlock runs first (LIFO) and the recover sees the
// shard already unlocked. Readers queued on the mutex wake up, observe the
// quarantined flag, and skip.

package shard

import (
	"errors"
	"log/slog"
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/geom"
)

// ErrQuarantined is returned by Insert when the target shard has been
// quarantined after a sub-index panic, and by Snapshot/SnapshotFS when any
// shard is quarantined (a poisoned structure must not be persisted).
var ErrQuarantined = errors.New("shard: quarantined after sub-index panic")

// poison records one recovered sub-index panic: the shard is quarantined
// (every later operation skips it), the panic counter ticks, and the cause
// plus stack goes to the process logger so the event is diagnosable after
// the fact.
func (sh *shardEntry) poison(cause any) {
	first := !sh.quarantined.Swap(true)
	sh.mPanics.Inc()
	slog.Error("shard: sub-index panicked, shard quarantined",
		"cause", cause, "first", first, "stack", string(debug.Stack()))
}

// Quarantined reports how many shards (spatial plus overflow) are currently
// quarantined. 0 on a healthy engine.
func (ix *Index) Quarantined() int {
	n := 0
	for _, sh := range ix.shards {
		if sh.quarantined.Load() {
			n++
		}
	}
	if sh := ix.overflow.Load(); sh != nil && sh.quarantined.Load() {
		n++
	}
	return n
}

// sharedProbe runs one shared-path range probe under the read lock with
// panic isolation. healthy == false means the sub-index panicked: the shard
// is now quarantined and res/ok are meaningless (the caller keeps its own
// buffer untouched, because a panic unwinds before the named results are
// assigned).
func (sh *shardEntry) sharedProbe(q geom.Box, out []int32) (res []int32, ok, healthy bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(r)
		}
	}()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	res, ok = sh.shared.QueryShared(q, out)
	healthy = true
	return
}

// exclusiveProbe runs one budgeted-exclusive range probe under the write
// lock with panic isolation.
func (sh *shardEntry) exclusiveProbe(q geom.Box, out []int32) (res []int32, healthy bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(r)
		}
	}()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.budgeted != nil && sh.crackBudget >= 0 {
		res = sh.budgeted.QueryBudgeted(q, out, sh.crackBudget)
	} else {
		res = sh.sub.Query(q, out)
	}
	healthy = true
	return
}

// knnSharedProbe is sharedProbe for the KNN read path.
func (sh *shardEntry) knnSharedProbe(p geom.Point, k int) (found []core.Neighbor, done, healthy bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(r)
		}
	}()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	found, done = sh.sharedNN.KNNShared(p, k)
	healthy = true
	return
}

// knnExclusiveProbe is exclusiveProbe for the KNN refining path.
func (sh *shardEntry) knnExclusiveProbe(nn NearestNeighborer, p geom.Point, k int) (found []core.Neighbor, healthy bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(r)
		}
	}()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	found = nn.KNN(p, k)
	healthy = true
	return
}

// appendProbe applies one insert under the write lock with panic isolation.
// healthy == false means the append panicked mid-mutation: the shard is
// quarantined and the object must be considered not stored.
func (sh *shardEntry) appendProbe(up Updatable, o geom.Object) (healthy bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(r)
		}
	}()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	up.Append(o)
	return true
}

// appendSharedProbe applies one insert under the READ lock with panic
// isolation — the MVCC fast path: a versioned sub-index publishes the
// append as a new immutable version (writers serialize on the sub-index's
// own version mutex), so concurrent shared readers keep flowing and only
// structural work (cracking, Flush) ever takes the shard's write lock.
func (sh *shardEntry) appendSharedProbe(vu VersionedUpdatable, o geom.Object) (healthy bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(r)
		}
	}()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	vu.Append(o)
	return true
}

// deleteSharedProbe attempts one tombstone under the READ lock with panic
// isolation. handled == false means the sub-index could not resolve the
// delete read-only (an unconverged region needs the exclusive locate path)
// and the caller must escalate to deleteProbe.
func (sh *shardEntry) deleteSharedProbe(vu VersionedUpdatable, id int32, hint geom.Box) (found, handled, healthy bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(r)
		}
	}()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	found, handled = vu.DeleteShared(id, hint)
	healthy = true
	return
}

// deleteProbe applies one delete under the write lock with panic isolation.
func (sh *shardEntry) deleteProbe(up Updatable, id int32, hint geom.Box) (found, healthy bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.poison(r)
		}
	}()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	found = up.Delete(id, hint)
	healthy = true
	return
}
