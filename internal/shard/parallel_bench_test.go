package shard

// BenchmarkQueryConvergedParallel is the headline measurement of the
// concurrent read-path engine: steady-state (converged) queries against ONE
// shard from a sweep of client goroutines, with the shared read path on
// (the RWMutex engine) and off (the exclusive-lock baseline every query
// serialized behind before this engine existed). On a multi-core machine
// the shared variant scales with GOMAXPROCS while the exclusive baseline
// stays flat; BENCH_PR4.json records a measured comparison.

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

func benchConvergedParallel(b *testing.B, disableShared bool, goroutines int) {
	const n = 200_000
	data := dataset.Uniform(n, 45)
	ix := New(data, Config{
		Shards:             1,
		Workers:            1,
		DisableSharedReads: disableShared,
		SubConfig:          core.Config{DisableStats: true},
	})
	ix.Complete()
	queries := workload.Uniform(dataset.Universe(), 1024, 1e-4, 46)
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []int32
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				buf = ix.Query(queries[i%len(queries)], buf[:0])
			}
		}()
	}
	wg.Wait()
}

func BenchmarkQueryConvergedParallel(b *testing.B) {
	for _, bc := range []struct {
		name          string
		disableShared bool
		goroutines    int
	}{
		{"exclusive/g=1", true, 1},
		{"exclusive/g=2", true, 2},
		{"exclusive/g=4", true, 4},
		{"exclusive/g=8", true, 8},
		{"shared/g=1", false, 1},
		{"shared/g=2", false, 2},
		{"shared/g=4", false, 4},
		{"shared/g=8", false, 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchConvergedParallel(b, bc.disableShared, bc.goroutines)
		})
	}
}

// BenchmarkQueryMixedParallel measures the adaptive regime under
// concurrency: 8 goroutines drain a fresh workload against a cold single
// shard, so cracking write sections (crack-budgeted) interleave with
// shared reads over already-converged regions.
func BenchmarkQueryMixedParallel(b *testing.B) {
	const n = 100_000
	master := dataset.Uniform(n, 47)
	queries := workload.Uniform(dataset.Universe(), 512, 1e-3, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix := New(dataset.Clone(master), Config{
			Shards:    1,
			Workers:   1,
			SubConfig: core.Config{DisableStats: true},
		})
		b.StartTimer()
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var buf []int32
				for {
					qi := int(next.Add(1)) - 1
					if qi >= len(queries) {
						return
					}
					buf = ix.Query(queries[qi], buf[:0])
				}
			}()
		}
		wg.Wait()
	}
}
