// Package shard implements a sharded parallel query engine on top of the
// single-threaded indexes of this module. The input objects are spatially
// partitioned into P shards by STR-style tiling (sort-tile-recursive, the
// same packing discipline the R-tree bulk loader uses), each shard gets its
// own sub-index — QUASII by default, any constructor via Config.New — and
// its own mutex.
//
// Concurrency comes from two directions:
//
//   - Inter-query: concurrent queries that touch disjoint shards proceed
//     fully in parallel. Because the shards tile the data spatially, a
//     low-selectivity query typically overlaps one or two shard bounding
//     boxes, so P shards sustain close to P-way query parallelism, where
//     the single global mutex of internal/syncidx sustains exactly 1.
//   - Intra-query: a large query overlapping many shards fans out across a
//     bounded worker pool and merges the per-shard ID sets.
//
// Adaptive sub-indexes still crack on every query — the per-shard mutex
// makes that safe — so the engine turns QUASII's adaptive indexing into a
// multi-core system without touching the cracking code itself.
package shard

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
)

// Queryable is the interface a shard's sub-index must satisfy. It matches
// the module-wide Index interface (quasii.Index).
type Queryable interface {
	Len() int
	Query(q geom.Box, out []int32) []int32
}

// Config controls sharding. The zero value is usable: GOMAXPROCS shards,
// an equally sized worker pool, and QUASII sub-indexes with the paper's
// default configuration.
type Config struct {
	// Shards is the number of spatial shards P. Values < 1 select
	// runtime.GOMAXPROCS(0). The effective count never exceeds the number
	// of objects (every shard holds at least one object).
	Shards int
	// Workers bounds the goroutines a single Query may fan out across and
	// the pool QueryBatch schedules onto. Values < 1 select
	// min(shard count, GOMAXPROCS): fan-out beyond the hardware threads
	// only adds scheduling churn. Workers = 1 disables intra-query fan-out
	// entirely (multi-shard queries run inline, per-shard locks still
	// taken), which is the right mode when inter-query concurrency already
	// saturates the cores.
	Workers int
	// New constructs the sub-index over one shard's objects. The slice is
	// owned by the sub-index (QUASII-style: it may be reorganized in
	// place). Nil selects QUASII with SubConfig.
	New func(data []geom.Object) Queryable
	// SubConfig configures the default QUASII sub-indexes when New is nil.
	SubConfig core.Config
}

// Stats aggregates the state and work counters of all shards. Core sums the
// QUASII work counters of every sub-index that exposes them (sub-indexes
// built by a custom Config.New without a Stats method contribute zeros).
type Stats struct {
	Shards      int        // number of shards
	Objects     int        // total objects indexed
	MinShardLen int        // objects in the smallest shard
	MaxShardLen int        // objects in the largest shard
	Core        core.Stats // summed QUASII work counters
}

// statser is satisfied by sub-indexes that report QUASII work counters.
type statser interface{ Stats() core.Stats }

// shardEntry is one spatial shard: a sub-index behind its own lock, plus the
// fixed bounding box of the objects assigned to it. The box is computed at
// build time and never changes — QUASII reorganizes objects in place but
// never moves them across shards.
type shardEntry struct {
	mu     sync.Mutex
	sub    Queryable
	bounds geom.Box
	n      int
}

// Index is a sharded spatial index. It satisfies the module-wide Index
// interface and is safe for concurrent use.
type Index struct {
	shards  []shardEntry
	workers int
	// sem globally bounds intra-query fan-out goroutines across all
	// concurrent Query calls. Slots are never acquired nested, so the
	// semaphore cannot deadlock.
	sem chan struct{}
}

// New partitions data into cfg.Shards spatial shards and builds one
// sub-index per shard. The input slice is copied; the caller keeps its
// original order.
func New(data []geom.Object, cfg Config) *Index {
	p := cfg.Shards
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	build := cfg.New
	if build == nil {
		sub := cfg.SubConfig
		build = func(objs []geom.Object) Queryable { return core.New(objs, sub) }
	}
	parts := partition(data, p)
	ix := &Index{shards: make([]shardEntry, len(parts))}
	for i, part := range parts {
		ix.shards[i] = shardEntry{
			sub:    build(part),
			bounds: geom.MBB(part),
			n:      len(part),
		}
	}
	ix.workers = cfg.Workers
	if ix.workers < 1 {
		ix.workers = len(ix.shards)
		if mp := runtime.GOMAXPROCS(0); ix.workers > mp {
			ix.workers = mp
		}
		if ix.workers < 1 {
			ix.workers = 1
		}
	}
	ix.sem = make(chan struct{}, ix.workers)
	return ix
}

// NumShards returns the effective shard count (≤ Config.Shards for small
// datasets: every shard holds at least one object).
func (ix *Index) NumShards() int { return len(ix.shards) }

// Workers returns the effective worker-pool bound.
func (ix *Index) Workers() int { return ix.workers }

// ShardBounds returns the bounding box of shard i's objects.
func (ix *Index) ShardBounds(i int) geom.Box { return ix.shards[i].bounds }

// Len returns the total number of indexed objects.
func (ix *Index) Len() int {
	n := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		n += sh.sub.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats locks each shard in turn and returns the aggregated counters.
func (ix *Index) Stats() Stats {
	st := Stats{Shards: len(ix.shards)}
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.Lock()
		n := sh.sub.Len()
		if s, ok := sh.sub.(statser); ok {
			cs := s.Stats()
			st.Core.Queries += cs.Queries
			st.Core.Cracks += cs.Cracks
			st.Core.CrackedObjects += cs.CrackedObjects
			st.Core.SlicesCreated += cs.SlicesCreated
			st.Core.ObjectsTested += cs.ObjectsTested
			st.Core.ResultObjects += cs.ResultObjects
		}
		sh.mu.Unlock()
		st.Objects += n
		if i == 0 || n < st.MinShardLen {
			st.MinShardLen = n
		}
		if n > st.MaxShardLen {
			st.MaxShardLen = n
		}
	}
	return st
}

// overlapping appends the indexes of all shards whose bounds intersect q.
func (ix *Index) overlapping(q geom.Box, hit []int) []int {
	for i := range ix.shards {
		if ix.shards[i].bounds.Intersects(q) {
			hit = append(hit, i)
		}
	}
	return hit
}

// queryShard answers q against shard i under its lock.
func (ix *Index) queryShard(i int, q geom.Box, out []int32) []int32 {
	sh := &ix.shards[i]
	sh.mu.Lock()
	out = sh.sub.Query(q, out)
	sh.mu.Unlock()
	return out
}

// Query appends the IDs of all objects intersecting q to out and returns the
// extended slice. Queries overlapping a single shard run inline; queries
// overlapping several fan out across the worker pool and merge the
// per-shard results in shard order, so the output order is deterministic.
// Safe for concurrent use.
func (ix *Index) Query(q geom.Box, out []int32) []int32 {
	var hitBuf [16]int
	hit := ix.overlapping(q, hitBuf[:0])
	switch len(hit) {
	case 0:
		return out
	case 1:
		return ix.queryShard(hit[0], q, out)
	}
	if ix.workers <= 1 {
		return ix.querySerial(hit, q, out)
	}
	results := make([][]int32, len(hit))
	var wg sync.WaitGroup
	for k := 1; k < len(hit); k++ {
		// Acquire a pool slot without blocking: when concurrent queries
		// already saturate the pool, waiting for a slot is strictly worse
		// than answering the shard inline on this goroutine.
		select {
		case ix.sem <- struct{}{}:
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				results[k] = ix.queryShard(hit[k], q, nil)
				<-ix.sem
			}(k)
		default:
			results[k] = ix.queryShard(hit[k], q, nil)
		}
	}
	// The calling goroutine handles the first shard itself instead of
	// blocking idle, appending straight into out; it holds no semaphore
	// slot, so the pool bound applies to the spawned goroutines only.
	out = ix.queryShard(hit[0], q, out)
	wg.Wait()
	// Merge in shard order: the output order is deterministic regardless of
	// which shards ran on the pool.
	for _, r := range results[1:] {
		out = append(out, r...)
	}
	return out
}

// querySerial answers q against every hit shard inline, in shard order.
// QueryBatch uses it too: with many in-flight queries, inter-query
// parallelism already saturates the cores, and per-query fan-out would only
// add goroutine churn.
func (ix *Index) querySerial(hit []int, q geom.Box, out []int32) []int32 {
	for _, i := range hit {
		out = ix.queryShard(i, q, out)
	}
	return out
}
