// Package shard implements a sharded parallel query engine on top of the
// single-threaded indexes of this module. The input objects are spatially
// partitioned into P shards by STR-style tiling (sort-tile-recursive, the
// same packing discipline the R-tree bulk loader uses), each shard gets its
// own sub-index — QUASII by default, any constructor via Config.New — and
// its own mutex.
//
// Concurrency comes from three directions:
//
//   - Inter-query: concurrent queries that touch disjoint shards proceed
//     fully in parallel. Because the shards tile the data spatially, a
//     low-selectivity query typically overlaps one or two shard bounding
//     boxes, so P shards sustain close to P-way query parallelism, where
//     the single global mutex of internal/syncidx sustains exactly 1.
//   - Intra-shard: each shard is guarded by an RWMutex, not a mutex. A
//     query first attempts the sub-index's optimistic shared read path
//     (core.Index.QueryShared) under the read lock: on a converged region —
//     QUASII's steady state, where slices are final and never cracked again
//     — any number of queries proceed through one shard in parallel. Only
//     when the shared walk reports unfinished refinement does the query
//     retry under the write lock, and then with a bounded crack budget
//     (Config.CrackBudget) so the exclusive section stays short and
//     readers never stall behind a cold region; the leftover refinement is
//     finished by later queries, the paper's incremental philosophy
//     applied to lock hold time.
//   - Intra-query: a large query overlapping many shards fans out across a
//     bounded worker pool and merges the per-shard ID sets.
//
// Adaptive sub-indexes still crack — the per-shard write lock makes that
// safe — so the engine turns QUASII's adaptive indexing into a multi-core
// system without touching the cracking code itself.
//
// The engine also accepts live updates (see Insert, Delete, Flush in
// update.go) and k-nearest-neighbor queries (KNN in knn.go) when the
// sub-indexes support them, which the default QUASII sub-indexes do.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/telemetry"
)

// Queryable is the interface a shard's sub-index must satisfy. It matches
// the module-wide Index interface (quasii.Index).
type Queryable interface {
	Len() int
	Query(q geom.Box, out []int32) []int32
}

// SharedQueryable is the optional sub-index interface behind the concurrent
// read path. QueryShared must be a read-only query: safe to run from any
// number of goroutines at once (the engine holds the shard's read lock),
// returning ok == false when the touched region still needs exclusive
// refinement work. Epoch must move on every structural mutation and stand
// still otherwise. The default QUASII sub-indexes (core.Index) qualify.
type SharedQueryable interface {
	QueryShared(q geom.Box, out []int32) ([]int32, bool)
	Epoch() uint64
}

// BudgetedQueryable is the optional sub-index interface that bounds the
// mutation work of one exclusive query (see Config.CrackBudget). The
// default QUASII sub-indexes qualify.
type BudgetedQueryable interface {
	QueryBudgeted(q geom.Box, out []int32, budget int) []int32
}

// Config controls sharding. The zero value is usable: GOMAXPROCS shards,
// an equally sized worker pool, and QUASII sub-indexes with the paper's
// default configuration.
type Config struct {
	// Shards is the number of spatial shards P. Values < 1 select
	// runtime.GOMAXPROCS(0). The effective count never exceeds the number
	// of objects (every shard holds at least one object).
	Shards int
	// Workers bounds the goroutines a single Query may fan out across and
	// the pool QueryBatch schedules onto. Values < 1 select
	// min(shard count, GOMAXPROCS): fan-out beyond the hardware threads
	// only adds scheduling churn. Workers = 1 disables intra-query fan-out
	// entirely (multi-shard queries run inline, per-shard locks still
	// taken), which is the right mode when inter-query concurrency already
	// saturates the cores.
	Workers int
	// New constructs the sub-index over one shard's objects. The slice is
	// owned by the sub-index (QUASII-style: it may be reorganized in
	// place). Nil selects QUASII with SubConfig. A custom constructor must
	// tolerate an empty input slice: the engine builds the overflow shard
	// for out-of-bounds inserts from no objects. Sub-indexes that
	// additionally satisfy Updatable (resp. NearestNeighborer) enable
	// Insert/Delete/Flush (resp. KNN) on the sharded index.
	New func(data []geom.Object) Queryable
	// SubConfig configures the default QUASII sub-indexes when New is nil.
	SubConfig core.Config
	// CrackBudget bounds the crack (partition) passes one exclusive query
	// may perform on a shard whose sub-index supports QueryBudgeted: the
	// query refines up to that many passes and answers the rest by
	// scanning, leaving the remainder to later queries. This keeps write
	// sections short so concurrent shared readers are never stuck behind a
	// cold region. 0 selects DefaultCrackBudget; negative disables the
	// bound (every exclusive query refines to completion, the pre-RWMutex
	// behaviour).
	CrackBudget int
	// DisableSharedReads forces every query through the exclusive path
	// even when the sub-index supports QueryShared. It exists for ablation
	// benchmarks (the exclusive-lock baseline) and as an escape hatch. It
	// also disables the versioned (read-locked) update path: writers fall
	// back to the exclusive probes, matching the ablation baseline.
	DisableSharedReads bool
	// VersionHorizon bounds the MVCC version chain a sub-index may retain
	// (live version plus pinned predecessors). CheckInvariants fails when a
	// chain exceeds it — a longer chain means a leaked pin, since the
	// engine's own pins (checkpoints) hold at most one predecessor per
	// shard at a time. 0 selects DefaultVersionHorizon; negative disables
	// the check.
	VersionHorizon int
}

// DefaultVersionHorizon is the version-chain bound when Config.VersionHorizon
// is 0. A healthy engine holds 1 version per shard when quiescent and 2
// during a checkpoint; 8 leaves room for stacked snapshot readers in tests
// without masking a real pin leak.
const DefaultVersionHorizon = 8

// DefaultCrackBudget is the per-query crack budget when Config.CrackBudget
// is 0. Crack passes shrink geometrically as refinement deepens, so 64
// passes let a warm shard converge in a handful of queries while bounding
// one cold query's write-lock hold to a few sweeps over the shard.
const DefaultCrackBudget = 64

// Stats aggregates the state and work counters of all shards. Core sums the
// QUASII work counters of every sub-index that exposes them (sub-indexes
// built by a custom Config.New without a Stats method contribute zeros).
type Stats struct {
	Shards       int        // number of spatial shards (excluding overflow)
	Objects      int        // total live objects indexed (including overflow)
	MinShardLen  int        // objects in the smallest spatial shard
	MaxShardLen  int        // objects in the largest spatial shard
	OverflowLen  int        // objects in the overflow shard (0 when absent)
	Quarantined  int        // shards quarantined after a sub-index panic (incl. overflow)
	Pending      int        // appended objects not yet folded in (see Flush)
	Deleted      int        // tombstoned objects awaiting compaction
	VersionsLive int        // MVCC versions retained across all sub-indexes
	Core         core.Stats // summed QUASII work counters
}

// statser is satisfied by sub-indexes that report QUASII work counters.
type statser interface{ Stats() core.Stats }

// shardEntry is one spatial shard: a sub-index behind its own read-write
// lock, the fixed bounding box of the objects assigned to it at build time
// (the tile, which routes inserts), and the live bounding box actually
// covered by its objects, which starts as the tile box and grows when an
// inserted object overhangs it. Queries read the live box lock-free, so it
// sits behind an atomic pointer and only ever grows (monotone, like
// QUASII's own maxExt bookkeeping): deletions never shrink it, which is
// conservative but always correct.
//
// The lock discipline: the shared query path (shared/sharedNN, when the
// sub-index supports it) runs under mu.RLock — many queries through one
// shard in parallel — while anything that may mutate the sub-index (the
// exclusive query fallback, updates, flushes) takes mu.Lock.
type shardEntry struct {
	mu   sync.RWMutex
	sub  Queryable
	tile geom.Box // build-time STR tile MBB; immutable, routes inserts

	// Optional capabilities of sub, resolved once at construction so the
	// hot path carries no type assertions; nil when unsupported (or when
	// Config.DisableSharedReads turned the read path off).
	shared      SharedQueryable
	sharedNN    SharedNearestNeighborer
	budgeted    BudgetedQueryable
	versioned   VersionedUpdatable
	crackBudget int // per-exclusive-query crack budget; < 0 = unlimited

	// Path counters, shared by all entries of one engine and nil until
	// Instrument attaches a registry (telemetry counters no-op on nil, so
	// the uninstrumented hot path pays one nil check per shard query).
	mShared    *telemetry.Counter
	mExclusive *telemetry.Counter
	mPanics    *telemetry.Counter

	bounds atomic.Pointer[geom.Box] // live MBB; read lock-free by queries

	// quarantined is set when a probe into this shard's sub-index panicked:
	// the structure can no longer be trusted, so queries, stats, updates and
	// snapshots all skip the shard (see resilience.go) instead of letting a
	// poisoned tile crash the process or corrupt a checkpoint.
	quarantined atomic.Bool
}

// boundsBox returns the shard's current live bounding box.
func (sh *shardEntry) boundsBox() geom.Box { return *sh.bounds.Load() }

// extendBounds grows the live bounding box to also cover b (CAS loop; safe
// against concurrent extenders and lock-free readers).
func (sh *shardEntry) extendBounds(b geom.Box) {
	for {
		cur := sh.bounds.Load()
		next := cur.Extend(b)
		if next == *cur {
			return
		}
		if sh.bounds.CompareAndSwap(cur, &next) {
			return
		}
	}
}

// Index is a sharded spatial index. It satisfies the module-wide Index
// interface and is safe for concurrent use.
type Index struct {
	shards  []*shardEntry
	build   func([]geom.Object) Queryable
	tileMBB geom.Box // union of the build-time tiles; routes inserts
	workers int
	// crackBudget and noShared carry the Config knobs to shards built after
	// construction (the lazy overflow shard).
	crackBudget int
	noShared    bool
	// versionHorizon bounds the MVCC chain per sub-index; < 0 disables.
	versionHorizon int
	// sem globally bounds intra-query fan-out goroutines across all
	// concurrent Query calls. Slots are never acquired nested, so the
	// semaphore cannot deadlock.
	sem chan struct{}

	// overflow is the extra shard holding objects inserted outside tileMBB.
	// It is created lazily on the first such insert (under ovMu) and read
	// lock-free by queries; nil until then.
	ovMu     sync.Mutex
	overflow atomic.Pointer[shardEntry]

	// count tracks the live object total lock-free (+1 per Insert, -1 per
	// successful Delete), so liveness probes need not take shard locks.
	count atomic.Int64

	// Engine-level metrics, nil until Instrument attaches a registry
	// (before serving, by contract). mFanout covers whole-query
	// observations; the path counters are copied onto every shardEntry —
	// existing ones by Instrument, later ones (the lazy overflow shard) by
	// newEntry — because queryShard has no *Index.
	mFanout    *telemetry.Histogram // shards overlapped per query
	mShared    *telemetry.Counter
	mExclusive *telemetry.Counter
	mPanics    *telemetry.Counter
}

// New partitions data into cfg.Shards spatial shards and builds one
// sub-index per shard. The input slice is copied; the caller keeps its
// original order.
func New(data []geom.Object, cfg Config) *Index {
	p := cfg.Shards
	if p < 1 {
		p = runtime.GOMAXPROCS(0)
	}
	build := cfg.New
	if build == nil {
		sub := cfg.SubConfig
		build = func(objs []geom.Object) Queryable { return core.New(objs, sub) }
	}
	parts := partition(data, p)
	ix := &Index{shards: make([]*shardEntry, len(parts)), build: build, tileMBB: geom.EmptyBox()}
	ix.crackBudget = cfg.CrackBudget
	if ix.crackBudget == 0 {
		ix.crackBudget = DefaultCrackBudget
	}
	ix.noShared = cfg.DisableSharedReads
	ix.versionHorizon = cfg.VersionHorizon
	if ix.versionHorizon == 0 {
		ix.versionHorizon = DefaultVersionHorizon
	}
	for i, part := range parts {
		sh := ix.newEntry(build(part), geom.MBB(part))
		sh.bounds.Store(&sh.tile)
		ix.shards[i] = sh
		ix.tileMBB = ix.tileMBB.Extend(sh.tile)
	}
	ix.workers = effectiveWorkers(cfg.Workers, len(ix.shards))
	ix.sem = make(chan struct{}, ix.workers)
	ix.count.Store(int64(len(data)))
	return ix
}

// newEntry wraps a sub-index into a shard entry, resolving its optional
// shared-path capabilities once.
func (ix *Index) newEntry(sub Queryable, tile geom.Box) *shardEntry {
	sh := &shardEntry{sub: sub, tile: tile, crackBudget: ix.crackBudget}
	// Inherit the engine's path counters so entries created after
	// Instrument (the lazy overflow shard) report like the rest.
	sh.mShared = ix.mShared
	sh.mExclusive = ix.mExclusive
	sh.mPanics = ix.mPanics
	if !ix.noShared {
		if sq, ok := sub.(SharedQueryable); ok {
			sh.shared = sq
		}
		if nn, ok := sub.(SharedNearestNeighborer); ok {
			sh.sharedNN = nn
		}
		if vu, ok := sub.(VersionedUpdatable); ok {
			sh.versioned = vu
		}
	}
	if bq, ok := sub.(BudgetedQueryable); ok {
		sh.budgeted = bq
	}
	return sh
}

// NumShards returns the effective spatial shard count (≤ Config.Shards for
// small datasets: every shard holds at least one object). The overflow
// shard, when present, is not counted.
func (ix *Index) NumShards() int { return len(ix.shards) }

// Workers returns the effective worker-pool bound.
func (ix *Index) Workers() int { return ix.workers }

// ShardBounds returns the live bounding box of shard i's objects.
func (ix *Index) ShardBounds(i int) geom.Box { return ix.shards[i].boundsBox() }

// forEach calls f on every healthy shard including the overflow shard, if
// any. Quarantined shards are skipped: their sub-indexes can no longer be
// trusted not to panic, so walks (Len, Stats, Flush, KNN candidate
// collection) treat them as absent.
func (ix *Index) forEach(f func(sh *shardEntry)) {
	for _, sh := range ix.shards {
		if sh.quarantined.Load() {
			continue
		}
		f(sh)
	}
	if sh := ix.overflow.Load(); sh != nil && !sh.quarantined.Load() {
		f(sh)
	}
}

// Len returns the total number of live objects, read-locking each shard in
// turn (Len never mutates a sub-index, so it rides with shared readers).
func (ix *Index) Len() int {
	n := 0
	ix.forEach(func(sh *shardEntry) {
		sh.mu.RLock()
		n += sh.sub.Len()
		sh.mu.RUnlock()
	})
	return n
}

// ApproxLen returns the live object count without taking any locks. It is
// maintained by New, Insert and Delete and matches Len exactly unless
// duplicate IDs are deleted (a Delete tombstones every object carrying the
// ID but decrements the count by one). Use it where blocking behind a
// cracking query is unacceptable, e.g. liveness probes.
func (ix *Index) ApproxLen() int { return int(ix.count.Load()) }

// Stats read-locks each shard in turn and returns the aggregated counters.
// Collection is read-only, so on a converged index a /stats probe never
// blocks (or is blocked by) the concurrent query traffic.
func (ix *Index) Stats() Stats {
	st := Stats{Shards: len(ix.shards)}
	first := true
	for _, sh := range ix.shards {
		if sh.quarantined.Load() {
			st.Quarantined++
			continue
		}
		n := ix.collect(sh, &st)
		if first || n < st.MinShardLen {
			st.MinShardLen = n
			first = false
		}
		if n > st.MaxShardLen {
			st.MaxShardLen = n
		}
	}
	if sh := ix.overflow.Load(); sh != nil {
		if sh.quarantined.Load() {
			st.Quarantined++
		} else {
			st.OverflowLen = ix.collect(sh, &st)
		}
	}
	return st
}

// collect folds one shard's counters into st and returns its live size.
func (ix *Index) collect(sh *shardEntry, st *Stats) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	n := sh.sub.Len()
	st.Objects += n
	if s, ok := sh.sub.(statser); ok {
		cs := s.Stats()
		st.Core.Queries += cs.Queries
		st.Core.Cracks += cs.Cracks
		st.Core.CrackedObjects += cs.CrackedObjects
		st.Core.SlicesCreated += cs.SlicesCreated
		st.Core.SlicesRefined += cs.SlicesRefined
		st.Core.ObjectsTested += cs.ObjectsTested
		st.Core.ResultObjects += cs.ResultObjects
		st.Core.SharedQueries += cs.SharedQueries
	}
	if up, ok := sh.sub.(Updatable); ok {
		st.Pending += up.Pending()
	}
	if d, ok := sh.sub.(interface{ Deleted() int }); ok {
		st.Deleted += d.Deleted()
	}
	if lv, ok := sh.sub.(interface{ LiveVersions() int }); ok {
		st.VersionsLive += lv.LiveVersions()
	}
	return n
}

// Complete finishes all outstanding refinement in every sub-index that
// supports it (the default QUASII sub-indexes do), shard by shard under
// each shard's write lock. Afterwards — until the next update — every query
// rides the shared read path, so Complete is the idle-time lever that turns
// an adaptive engine into its fully concurrent converged form.
func (ix *Index) Complete() {
	ix.forEach(func(sh *shardEntry) {
		if c, ok := sh.sub.(interface{ Complete() }); ok {
			sh.mu.Lock()
			c.Complete()
			sh.mu.Unlock()
		}
	})
}

// CheckInvariants validates the structural invariants of every sub-index
// that exposes them (the default QUASII sub-indexes do), under each shard's
// write lock so a quiesced check sees a frozen structure, and bounds every
// sub-index's MVCC version chain by Config.VersionHorizon (a longer chain
// means a leaked pin). It returns the first violation found. Intended for
// tests and stress harnesses.
func (ix *Index) CheckInvariants() error {
	var err error
	ix.forEach(func(sh *shardEntry) {
		if err != nil {
			return
		}
		if ci, ok := sh.sub.(interface{ CheckInvariants() error }); ok {
			sh.mu.Lock()
			err = ci.CheckInvariants()
			sh.mu.Unlock()
			if err != nil {
				return
			}
		}
		if lv, ok := sh.sub.(interface{ LiveVersions() int }); ok && ix.versionHorizon > 0 {
			sh.mu.RLock()
			n := lv.LiveVersions()
			sh.mu.RUnlock()
			if n > ix.versionHorizon {
				err = fmt.Errorf("shard: version chain holds %d versions, horizon is %d (leaked pin?)", n, ix.versionHorizon)
			}
		}
	})
	return err
}

// overlapping appends every shard whose live bounds intersect q, in shard
// order with the overflow shard last, so result merge order stays
// deterministic.
func (ix *Index) overlapping(q geom.Box, hit []*shardEntry) []*shardEntry {
	for _, sh := range ix.shards {
		if sh.boundsBox().Intersects(q) && !sh.quarantined.Load() {
			hit = append(hit, sh)
		}
	}
	if sh := ix.overflow.Load(); sh != nil && sh.boundsBox().Intersects(q) && !sh.quarantined.Load() {
		hit = append(hit, sh)
	}
	return hit
}

// queryShard answers q against one shard: first the optimistic shared read
// path under the read lock (converged regions answer fully in parallel),
// then — only if the shared walk found unfinished refinement — the
// exclusive path under the write lock, crack-budgeted so the write section
// stays short. Sub-indexes without shared support keep the old exclusive
// behaviour. tr, when non-nil, receives per-path stage durations (a sampled
// trace); the untraced path pays only the nil checks.
// Both probes run through the panic-isolating helpers in resilience.go: a
// sub-index that panics quarantines its shard and the query carries on with
// the caller's buffer untouched, exactly as if the shard had not overlapped.
func queryShard(sh *shardEntry, q geom.Box, out []int32, tr *telemetry.Trace) []int32 {
	if sh.quarantined.Load() {
		return out
	}
	if sh.shared != nil {
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		res, ok, healthy := sh.sharedProbe(q, out)
		if tr != nil {
			tr.StageSince(telemetry.StageShared, t0)
		}
		if !healthy {
			return out
		}
		if ok {
			sh.mShared.Inc()
			if tr != nil {
				tr.AddSharedProbe()
			}
			return res
		}
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	res, healthy := sh.exclusiveProbe(q, out)
	if !healthy {
		return out
	}
	sh.mExclusive.Inc()
	if tr != nil {
		tr.StageSince(telemetry.StageCrack, t0)
		tr.AddExclusiveProbe()
	}
	return res
}

// Query appends the IDs of all objects intersecting q to out and returns the
// extended slice. Queries overlapping a single shard run inline; queries
// overlapping several fan out across the worker pool and merge the
// per-shard results in shard order, so the output order is deterministic.
// Safe for concurrent use.
func (ix *Index) Query(q geom.Box, out []int32) []int32 {
	return ix.QueryTraced(q, out, nil)
}

// QueryTraced is Query with a sampled stage trace attached: tr (which may
// be nil — the common, unsampled case) receives the fan-out width and the
// per-shard shared/exclusive stage durations. The serving layer threads the
// trace of a sampled request down here; everyone else calls Query.
func (ix *Index) QueryTraced(q geom.Box, out []int32, tr *telemetry.Trace) []int32 {
	var hitBuf [16]*shardEntry
	hit := ix.overlapping(q, hitBuf[:0])
	ix.mFanout.Observe(float64(len(hit)))
	tr.SetFanout(len(hit))
	switch len(hit) {
	case 0:
		return out
	case 1:
		return queryShard(hit[0], q, out, tr)
	}
	if ix.workers <= 1 {
		return querySerial(hit, q, out, tr)
	}
	// Per-shard scratch results come from the engine's buffer pool and are
	// returned after the merge, so steady-state fan-out performs no slice
	// allocation. The pointer array lives on the stack for typical fan-outs.
	var resArr [16]*[]int32
	results := resArr[:]
	if len(hit) > len(results) {
		results = make([]*[]int32, len(hit))
	}
	var wg sync.WaitGroup
	for k := 1; k < len(hit); k++ {
		// Acquire a pool slot without blocking: when concurrent queries
		// already saturate the pool, waiting for a slot is strictly worse
		// than answering the shard inline on this goroutine.
		buf := getIDBuf()
		results[k] = buf
		select {
		case ix.sem <- struct{}{}:
			wg.Add(1)
			// The goroutine receives its shard entry as an argument rather
			// than capturing hit: a closure over hit would force the
			// stack-allocated hitBuf to the heap, costing the single-shard
			// fast path an allocation per query.
			go func(sh *shardEntry, buf *[]int32) {
				defer wg.Done()
				*buf = queryShard(sh, q, (*buf)[:0], tr)
				<-ix.sem
			}(hit[k], buf)
		default:
			*buf = queryShard(hit[k], q, (*buf)[:0], tr)
		}
	}
	// The calling goroutine handles the first shard itself instead of
	// blocking idle, appending straight into out; it holds no semaphore
	// slot, so the pool bound applies to the spawned goroutines only.
	out = queryShard(hit[0], q, out, tr)
	wg.Wait()
	// Merge in shard order: the output order is deterministic regardless of
	// which shards ran on the pool.
	for _, r := range results[1:len(hit)] {
		out = append(out, (*r)...)
		putIDBuf(r)
	}
	return out
}

// querySerial answers q against every hit shard inline, in shard order.
// QueryBatch uses it too: with many in-flight queries, inter-query
// parallelism already saturates the cores, and per-query fan-out would only
// add goroutine churn.
func querySerial(hit []*shardEntry, q geom.Box, out []int32, tr *telemetry.Trace) []int32 {
	for _, sh := range hit {
		out = queryShard(sh, q, out, tr)
	}
	return out
}
