package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/scan"
	"repro/internal/workload"
)

// checkAgainst compares the sharded index with a scan oracle over the given
// live object set on a mixed query workload.
func checkAgainst(t *testing.T, ix *Index, live []geom.Object, seed int64) {
	t.Helper()
	oracle := scan.New(live)
	queries := append(
		workload.Uniform(dataset.Universe(), 40, 1e-3, seed),
		workload.Uniform(dataset.Universe(), 10, 1e-1, seed+1)...)
	queries = append(queries, geom.MBB(live))
	var got, want []int32
	for qi, q := range queries {
		got = sortedIDs(ix.Query(q, got[:0]))
		want = sortedIDs(oracle.Query(q, want[:0]))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d IDs, want %d", qi, len(got), len(want))
		}
	}
	if ix.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(live))
	}
	if ix.ApproxLen() != len(live) {
		t.Fatalf("ApproxLen = %d, want %d", ix.ApproxLen(), len(live))
	}
}

// TestInsertDeleteMatchesScan drives inserts (including out-of-bounds ones
// that must land in the overflow shard) and deletes through the sharded
// engine, checking against a scan oracle before and after Flush.
func TestInsertDeleteMatchesScan(t *testing.T) {
	data := dataset.Uniform(3000, 31)
	ix := New(data, Config{Shards: 8, SubConfig: core.Config{Tau: 32}})
	live := append([]geom.Object(nil), data...)

	// Warm the index so inserts land in refined shards.
	for _, q := range workload.Uniform(dataset.Universe(), 30, 1e-2, 32) {
		ix.Query(q, nil)
	}

	// In-bounds inserts: new objects across the universe.
	extra := dataset.Uniform(400, 33)
	for i := range extra {
		extra[i].ID = int32(100000 + i)
	}
	if err := ix.Insert(extra...); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	live = append(live, extra...)

	// Out-of-bounds inserts: centers far outside every tile, must route to
	// the overflow shard and still be found by queries reaching there.
	var far []geom.Object
	for i := 0; i < 50; i++ {
		far = append(far, geom.Object{
			Box: geom.BoxAt(geom.Point{-5000 - float64(i), -5000, -5000}, 4),
			ID:  int32(200000 + i),
		})
	}
	if err := ix.Insert(far...); err != nil {
		t.Fatalf("Insert far: %v", err)
	}
	live = append(live, far...)
	if st := ix.Stats(); st.OverflowLen != len(far) {
		t.Errorf("OverflowLen = %d, want %d", st.OverflowLen, len(far))
	}
	if ix.Pending() == 0 {
		t.Error("Pending = 0 after inserts, want > 0")
	}
	checkAgainst(t, ix, live, 40)

	// Delete a mix of original, inserted, and overflow objects.
	drop := []geom.Object{data[0], data[1717], extra[7], extra[399], far[0], far[49]}
	for _, o := range drop {
		found, err := ix.Delete(o.ID, o.Box)
		if err != nil {
			t.Fatalf("Delete(%d): %v", o.ID, err)
		}
		if !found {
			t.Fatalf("Delete(%d) found nothing", o.ID)
		}
	}
	dead := make(map[int32]bool)
	for _, o := range drop {
		dead[o.ID] = true
	}
	kept := live[:0]
	for _, o := range live {
		if !dead[o.ID] {
			kept = append(kept, o)
		}
	}
	live = kept
	checkAgainst(t, ix, live, 41)

	// Deleting a missing ID reports false without error.
	if found, err := ix.Delete(999999, geom.BoxAt(geom.Point{1, 1, 1}, 1)); err != nil || found {
		t.Errorf("Delete(missing) = %v, %v; want false, nil", found, err)
	}

	// Flush compacts; results must be unchanged and pending drained.
	if err := ix.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if p := ix.Pending(); p != 0 {
		t.Errorf("Pending = %d after Flush, want 0", p)
	}
	checkAgainst(t, ix, live, 42)
}

// TestConcurrentUpdates mixes concurrent inserts, deletes, queries and
// flushes. Each goroutine owns a private ID range and checks
// read-your-writes visibility on it; foreign in-flight IDs are ignored.
// Run with -race.
func TestConcurrentUpdates(t *testing.T) {
	data := dataset.Uniform(4000, 51)
	ix := New(data, Config{Shards: 8, SubConfig: core.Config{Tau: 32}})

	const goroutines = 8
	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int32(1_000_000 + g*10_000)
			objs := dataset.Uniform(rounds, int64(60+g))
			for r := 0; r < rounds; r++ {
				o := objs[r]
				o.ID = base + int32(r)
				if err := ix.Insert(o); err != nil {
					errs <- fmt.Sprintf("g%d insert: %v", g, err)
					return
				}
				ids := ix.Query(o.Box, nil)
				if !containsID(ids, o.ID) {
					errs <- fmt.Sprintf("g%d: inserted %d not visible", g, o.ID)
					return
				}
				if r%3 == 0 {
					found, err := ix.Delete(o.ID, o.Box)
					if err != nil || !found {
						errs <- fmt.Sprintf("g%d delete %d: found=%v err=%v", g, o.ID, found, err)
						return
					}
					if containsID(ix.Query(o.Box, nil), o.ID) {
						errs <- fmt.Sprintf("g%d: deleted %d still visible", g, o.ID)
						return
					}
				}
				if r%10 == 5 {
					if err := ix.Flush(); err != nil {
						errs <- fmt.Sprintf("g%d flush: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func containsID(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// bruteKNN is the oracle: rank all live objects by box distance to p.
func bruteKNN(objs []geom.Object, p geom.Point, k int) []core.Neighbor {
	nn := make([]core.Neighbor, 0, len(objs))
	for i := range objs {
		nn = append(nn, core.Neighbor{ID: objs[i].ID, DistSq: objs[i].MinDistSq(p)})
	}
	sort.Slice(nn, func(i, j int) bool {
		if nn[i].DistSq != nn[j].DistSq {
			return nn[i].DistSq < nn[j].DistSq
		}
		return nn[i].ID < nn[j].ID
	})
	if len(nn) > k {
		nn = nn[:k]
	}
	return nn
}

// TestKNNMatchesBruteForce checks sharded KNN against brute force for
// several k and query points, before and after inserts.
func TestKNNMatchesBruteForce(t *testing.T) {
	data := dataset.Uniform(2500, 71)
	ix := New(data, Config{Shards: 8})
	live := append([]geom.Object(nil), data...)

	points := []geom.Point{
		{100, 100, 100}, {5000, 5000, 5000}, {9999, 0, 9999}, {-500, 200, 300},
	}
	check := func() {
		t.Helper()
		for _, p := range points {
			for _, k := range []int{1, 5, 60} {
				got, err := ix.KNN(p, k)
				if err != nil {
					t.Fatalf("KNN: %v", err)
				}
				want := bruteKNN(live, p, k)
				if len(got) != len(want) {
					t.Fatalf("KNN(%v,%d): %d results, want %d", p, k, len(got), len(want))
				}
				for i := range got {
					// Both sides rank by (DistSq, ID) on identical float
					// arithmetic, so results must agree exactly.
					if got[i] != want[i] {
						t.Fatalf("KNN(%v,%d)[%d] = %+v, want %+v", p, k, i, got[i], want[i])
					}
				}
			}
		}
	}
	check()

	extra := dataset.Uniform(200, 72)
	for i := range extra {
		extra[i].ID = int32(500000 + i)
	}
	if err := ix.Insert(extra...); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	live = append(live, extra...)
	check()

	// k exceeding the object count returns everything.
	all, err := ix.KNN(points[0], len(live)+10)
	if err != nil {
		t.Fatalf("KNN all: %v", err)
	}
	if len(all) != len(live) {
		t.Errorf("KNN with huge k returned %d, want %d", len(all), len(live))
	}
}

// TestNotUpdatable: custom sub-indexes without update (or KNN) support make
// the respective operations fail with the sentinel errors.
func TestNotUpdatable(t *testing.T) {
	data := dataset.Uniform(500, 81)
	ix := New(data, Config{
		Shards: 4,
		New:    func(objs []geom.Object) Queryable { return rtree.New(objs, rtree.Config{}) },
	})
	if err := ix.Insert(data[0]); !errors.Is(err, ErrNotUpdatable) {
		t.Errorf("Insert err = %v, want ErrNotUpdatable", err)
	}
	if _, err := ix.Delete(data[0].ID, data[0].Box); !errors.Is(err, ErrNotUpdatable) {
		t.Errorf("Delete err = %v, want ErrNotUpdatable", err)
	}
	if err := ix.Flush(); !errors.Is(err, ErrNotUpdatable) {
		t.Errorf("Flush err = %v, want ErrNotUpdatable", err)
	}

	scanIx := New(data, Config{
		Shards: 4,
		New:    func(objs []geom.Object) Queryable { return scan.New(objs) },
	})
	if _, err := scanIx.KNN(geom.Point{1, 2, 3}, 3); !errors.Is(err, ErrNoKNN) {
		t.Errorf("KNN err = %v, want ErrNoKNN", err)
	}
}
