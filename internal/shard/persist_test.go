package shard

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

func sortedCopy(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSnapshotRestoreEquivalence(t *testing.T) {
	data := dataset.Uniform(12000, 71)
	ix := New(data, Config{Shards: 4})
	queries := workload.Uniform(dataset.Universe(), 120, 1e-3, 72)
	for _, q := range queries[:60] {
		ix.Query(q, nil)
	}
	// Live updates so pending buffers and tombstones cross the snapshot.
	inserted := geom.Object{Box: geom.BoxAt(geom.Point{123, 456, 789}, 2), ID: 900001}
	if err := ix.Insert(inserted); err != nil {
		t.Fatal(err)
	}
	if ok, err := ix.Delete(data[5].ID, data[5].Box); err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}

	dir := t.TempDir()
	if err := ix.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumShards() != ix.NumShards() {
		t.Fatalf("restored %d shards, want %d", restored.NumShards(), ix.NumShards())
	}
	if restored.Len() != ix.Len() {
		t.Fatalf("restored Len %d, want %d", restored.Len(), ix.Len())
	}
	if restored.ApproxLen() != ix.Len() {
		t.Fatalf("restored ApproxLen %d, want %d", restored.ApproxLen(), ix.Len())
	}
	for qi, q := range queries {
		got := sortedCopy(restored.Query(q, nil))
		want := sortedCopy(ix.Query(q, nil))
		if !sameIDs(got, want) {
			t.Fatalf("query %d: restored %d IDs, original %d", qi, len(got), len(want))
		}
	}
	if got := restored.Query(inserted.Box, nil); !sameIDs(sortedCopy(got), []int32{900001}) {
		t.Fatalf("pending insert lost across snapshot: %v", got)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The restored engine keeps accepting updates and refining.
	if err := restored.Insert(geom.Object{Box: geom.BoxAt(geom.Point{50, 50, 50}, 1), ID: 900002}); err != nil {
		t.Fatal(err)
	}
	if err := restored.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[60:] {
		restored.Query(q, nil)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreOverflowShard(t *testing.T) {
	data := dataset.Uniform(2000, 73)
	ix := New(data, Config{Shards: 2})
	// An insert far outside the tile union lands in the overflow shard.
	far := geom.Object{Box: geom.BoxAt(geom.Point{1e6, 1e6, 1e6}, 3), ID: 910001}
	if err := ix.Insert(far); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ix.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := restored.Query(far.Box, nil)
	if !sameIDs(sortedCopy(got), []int32{910001}) {
		t.Fatalf("overflow object lost across snapshot: %v", got)
	}
	// Routing still works: another far insert reuses the restored overflow.
	far2 := geom.Object{Box: geom.BoxAt(geom.Point{-1e6, 0, 0}, 3), ID: 910002}
	if err := restored.Insert(far2); err != nil {
		t.Fatal(err)
	}
	if got := restored.Query(far2.Box, nil); !sameIDs(sortedCopy(got), []int32{910002}) {
		t.Fatalf("post-restore overflow insert lost: %v", got)
	}
}

func TestSnapshotConcurrentWithQueries(t *testing.T) {
	data := dataset.Uniform(8000, 74)
	ix := New(data, Config{Shards: 4})
	queries := workload.Uniform(dataset.Universe(), 200, 1e-3, 75)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ix.Query(queries[(i*4+g)%len(queries)], nil)
			}
		}(g)
	}
	dir := t.TempDir()
	err := ix.Snapshot(dir)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	restored, rerr := Restore(dir, Config{})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != ix.Len() {
		t.Fatalf("restored Len %d, want %d", restored.Len(), ix.Len())
	}
}

func TestSnapshotRequiresSaver(t *testing.T) {
	data := dataset.Uniform(100, 76)
	ix := New(data, Config{Shards: 2, New: func(objs []geom.Object) Queryable {
		return plainQueryable{objs}
	}})
	if err := ix.Snapshot(t.TempDir()); err != ErrNotPersistable {
		t.Fatalf("Snapshot with non-Saver subs: err=%v, want ErrNotPersistable", err)
	}
	if _, err := Restore(t.TempDir(), Config{New: func(objs []geom.Object) Queryable {
		return plainQueryable{objs}
	}}); err != ErrNotPersistable {
		t.Fatalf("Restore with custom New: err=%v, want ErrNotPersistable", err)
	}
}

// plainQueryable is a minimal sub-index without persistence support.
type plainQueryable struct{ objs []geom.Object }

func (p plainQueryable) Len() int { return len(p.objs) }
func (p plainQueryable) Query(q geom.Box, out []int32) []int32 {
	for i := range p.objs {
		if p.objs[i].Intersects(q) {
			out = append(out, p.objs[i].ID)
		}
	}
	return out
}

func TestRestoreRejectsMissingManifest(t *testing.T) {
	if _, err := Restore(t.TempDir(), Config{}); err == nil {
		t.Fatal("restore from empty dir succeeded")
	}
}

func TestRestoreRejectsTruncatedShardFile(t *testing.T) {
	data := dataset.Uniform(3000, 77)
	ix := New(data, Config{Shards: 2})
	dir := t.TempDir()
	if err := ix.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, shardFileName(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(dir, Config{}); err == nil {
		t.Fatal("restore with truncated shard file succeeded")
	}
}
