// Engine-level introspection: one IndexReport aggregating the per-tile
// hierarchy snapshots of every shard, overflow included. The serving layer
// turns this into /debug/index and /debug/heat; quasii-explore renders it.

package shard

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/geom"
)

// Inspector is satisfied by sub-indexes that expose a hierarchy snapshot
// (core.Index does). Sub-indexes built by a custom Config.New without the
// method still appear in the report — tile bounds and object count — with
// Supported false.
type Inspector interface {
	Inspect(maxDepth int) core.InspectReport
}

// TileReport is one shard's slice of the engine report.
type TileReport struct {
	// Shard names the tile: "0".."N-1" for the spatial shards in build
	// order, "overflow" for the lazy out-of-tile shard. Matches the shard
	// label on the per-shard telemetry gauges.
	Shard string `json:"shard"`
	// Tile is the build-time STR tile MBB (immutable; routes inserts);
	// Bounds is the live MBB, which only ever grows.
	Tile   geom.Box `json:"tile"`
	Bounds geom.Box `json:"bounds"`
	// Objects counts rows in the shard's sub-index.
	Objects int `json:"objects"`
	// Supported reports whether the sub-index implements Inspector; when
	// false, Index is the zero report.
	Supported bool `json:"supported"`
	// Index is the sub-index hierarchy snapshot.
	Index core.InspectReport `json:"index"`
}

// IndexReport is a point-in-time snapshot of the whole sharded engine.
type IndexReport struct {
	// Shards counts the spatial shards (the overflow shard, when present,
	// appears in Tiles but not here, matching Stats.Shards).
	Shards  int `json:"shards"`
	Workers int `json:"workers"`
	// Objects sums the per-tile object counts at snapshot time.
	Objects int `json:"objects"`
	// TileMBB is the union of the build-time tiles (the insert router).
	TileMBB geom.Box `json:"tile_mbb"`
	// Tiles holds one report per shard, build order first, overflow last.
	Tiles []TileReport `json:"tiles"`
}

// Inspect snapshots every shard under its read lock and aggregates the
// per-tile reports. maxDepth is forwarded to each sub-index (see
// core.Index.Inspect); the walk rides with shared-path readers, so a
// concurrent cracking query on some shard delays only that shard's entry.
// Shards are snapshotted in turn, not atomically — tiles may disagree by a
// few in-flight queries, which is fine for an observability surface.
func (ix *Index) Inspect(maxDepth int) IndexReport {
	rep := IndexReport{
		Shards:  len(ix.shards),
		Workers: ix.workers,
		TileMBB: ix.tileMBB,
	}
	i := 0
	ix.forEach(func(sh *shardEntry) {
		name := "overflow"
		if i < len(ix.shards) {
			name = strconv.Itoa(i)
		}
		i++
		t := TileReport{Shard: name, Tile: sh.tile, Bounds: sh.boundsBox()}
		sh.mu.RLock()
		t.Objects = sh.sub.Len()
		if insp, ok := sh.sub.(Inspector); ok {
			t.Supported = true
			t.Index = insp.Inspect(maxDepth)
		}
		sh.mu.RUnlock()
		rep.Objects += t.Objects
		rep.Tiles = append(rep.Tiles, t)
	})
	return rep
}
