package shard

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/scan"
	"repro/internal/workload"
)

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryMatchesScan checks sequential correctness against the scan oracle
// for several shard counts, including counts exceeding the core count.
func TestQueryMatchesScan(t *testing.T) {
	data := dataset.Uniform(4000, 7)
	oracle := scan.New(data)
	queries := append(
		workload.Uniform(dataset.Universe(), 60, 1e-3, 11),
		workload.Uniform(dataset.Universe(), 20, 1e-1, 12)...)
	// A query covering everything and one covering nothing.
	queries = append(queries, geom.MBB(data),
		geom.NewBox(geom.Point{-2000, -2000, -2000}, geom.Point{-1000, -1000, -1000}))

	for _, p := range []int{1, 2, 4, 7, 16, 64} {
		t.Run(fmt.Sprintf("shards=%d", p), func(t *testing.T) {
			ix := New(data, Config{Shards: p})
			if got := ix.Len(); got != len(data) {
				t.Fatalf("Len = %d, want %d", got, len(data))
			}
			if ix.NumShards() > p {
				t.Fatalf("NumShards = %d > requested %d", ix.NumShards(), p)
			}
			var got, want []int32
			for qi, q := range queries {
				got = sortedIDs(ix.Query(q, got[:0]))
				want = sortedIDs(oracle.Query(q, want[:0]))
				if !equalIDs(got, want) {
					t.Fatalf("query %d: got %d IDs, want %d", qi, len(got), len(want))
				}
			}
		})
	}
}

// TestConcurrentMixedWorkload fires concurrent mixed Query/QueryBatch/Stats
// traffic at the sharded index for shard counts {1, 4, 16} and asserts every
// result set matches the Scan baseline. Run with -race.
func TestConcurrentMixedWorkload(t *testing.T) {
	data := dataset.Uniform(6000, 21)
	for _, p := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", p), func(t *testing.T) {
			ix := New(data, Config{Shards: p, SubConfig: core.Config{Tau: 32}})
			oracle := scan.New(data)

			const goroutines = 8
			var wg sync.WaitGroup
			errs := make(chan string, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					// Mix of point-ish queries, wide queries, and batches.
					small := workload.Uniform(dataset.Universe(), 30, 1e-4, seed)
					wide := workload.Uniform(dataset.Universe(), 6, 1e-1, seed+100)
					var got, want []int32
					for _, q := range append(small, wide...) {
						got = sortedIDs(ix.Query(q, got[:0]))
						want = sortedIDs(oracle.Query(q, want[:0]))
						if !equalIDs(got, want) {
							errs <- fmt.Sprintf("seed %d: got %d IDs, want %d", seed, len(got), len(want))
							return
						}
					}
					batch := workload.Uniform(dataset.Universe(), 25, 1e-3, seed+200)
					for qi, ids := range ix.QueryBatch(batch) {
						got = sortedIDs(ids)
						want = sortedIDs(oracle.Query(batch[qi], want[:0]))
						if !equalIDs(got, want) {
							errs <- fmt.Sprintf("seed %d batch %d: got %d IDs, want %d", seed, qi, len(got), len(want))
							return
						}
					}
					_ = ix.Stats() // exercise cross-shard locking under load
				}(int64(g) + 1)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Error(e)
			}

			st := ix.Stats()
			if st.Objects != len(data) {
				t.Errorf("Stats.Objects = %d, want %d", st.Objects, len(data))
			}
			if st.Shards != ix.NumShards() {
				t.Errorf("Stats.Shards = %d, want %d", st.Shards, ix.NumShards())
			}
			if st.Core.Queries == 0 {
				t.Error("aggregated core stats recorded no queries")
			}
		})
	}
}

// TestCustomSubIndex verifies Config.New plugs in a non-QUASII sub-index.
func TestCustomSubIndex(t *testing.T) {
	data := dataset.Uniform(2000, 5)
	ix := New(data, Config{
		Shards: 8,
		New:    func(objs []geom.Object) Queryable { return rtree.New(objs, rtree.Config{}) },
	})
	oracle := scan.New(data)
	var got, want []int32
	for _, q := range workload.Uniform(dataset.Universe(), 40, 1e-3, 3) {
		got = sortedIDs(ix.Query(q, got[:0]))
		want = sortedIDs(oracle.Query(q, want[:0]))
		if !equalIDs(got, want) {
			t.Fatalf("got %d IDs, want %d", len(got), len(want))
		}
	}
	// R-tree sub-indexes expose no core stats; aggregation must yield zeros.
	if st := ix.Stats(); st.Core.Queries != 0 {
		t.Errorf("expected zero core stats for R-tree shards, got %+v", st.Core)
	}
}

// TestDegenerateData exercises the round-robin fallback: every object sits at
// the same point, so STR tiling has nothing to sort on.
func TestDegenerateData(t *testing.T) {
	var data []geom.Object
	for i := 0; i < 500; i++ {
		data = append(data, geom.Object{Box: geom.BoxAt(geom.Point{50, 50, 50}, 1), ID: int32(i)})
	}
	ix := New(data, Config{Shards: 8})
	if got := ix.NumShards(); got != 8 {
		t.Fatalf("NumShards = %d, want 8", got)
	}
	st := ix.Stats()
	if st.MaxShardLen-st.MinShardLen > 1 {
		t.Errorf("round-robin imbalance: min %d max %d", st.MinShardLen, st.MaxShardLen)
	}
	got := sortedIDs(ix.Query(geom.BoxAt(geom.Point{50, 50, 50}, 2), nil))
	if len(got) != len(data) {
		t.Fatalf("query hit %d objects, want %d", len(got), len(data))
	}
}

// TestSmallAndEmptyData: shard count clamps to the object count, and the
// empty index answers queries without panicking.
func TestSmallAndEmptyData(t *testing.T) {
	small := dataset.Uniform(3, 9)
	ix := New(small, Config{Shards: 16})
	if got := ix.NumShards(); got > 3 {
		t.Errorf("NumShards = %d for 3 objects", got)
	}
	if got := len(sortedIDs(ix.Query(geom.MBB(small), nil))); got != 3 {
		t.Errorf("universe query hit %d of 3", got)
	}

	empty := New(nil, Config{Shards: 4})
	if empty.Len() != 0 {
		t.Errorf("empty Len = %d", empty.Len())
	}
	if got := empty.Query(dataset.Universe(), nil); len(got) != 0 {
		t.Errorf("empty query returned %d IDs", len(got))
	}
	if got := empty.QueryBatch([]geom.Box{dataset.Universe()}); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("empty batch returned %v", got)
	}
}

// TestPartitionBalance checks the STR tiling produces shards of near-equal
// cardinality on uniform data and covers all objects exactly once.
func TestPartitionBalance(t *testing.T) {
	data := dataset.Uniform(8000, 13)
	parts := partition(data, 16)
	if len(parts) != 16 {
		t.Fatalf("got %d parts, want 16", len(parts))
	}
	seen := make(map[int32]int)
	total := 0
	for _, part := range parts {
		if len(part) == 0 {
			t.Fatal("empty part")
		}
		total += len(part)
		for _, o := range part {
			seen[o.ID]++
		}
	}
	if total != len(data) || len(seen) != len(data) {
		t.Fatalf("parts cover %d objects (%d unique), want %d", total, len(seen), len(data))
	}
	want := len(data) / 16
	for i, part := range parts {
		if len(part) < want/2 || len(part) > want*2 {
			t.Errorf("part %d has %d objects, want ~%d", i, len(part), want)
		}
	}
}

func TestFactor3(t *testing.T) {
	cases := []struct{ p, x, y, z int }{
		{1, 1, 1, 1}, {2, 2, 1, 1}, {4, 2, 2, 1}, {8, 2, 2, 2},
		{16, 4, 2, 2}, {12, 3, 2, 2}, {7, 7, 1, 1}, {27, 3, 3, 3},
	}
	for _, c := range cases {
		x, y, z := factor3(c.p)
		if x != c.x || y != c.y || z != c.z {
			t.Errorf("factor3(%d) = %d,%d,%d want %d,%d,%d", c.p, x, y, z, c.x, c.y, c.z)
		}
		if x*y*z != c.p {
			t.Errorf("factor3(%d) does not multiply back", c.p)
		}
	}
}

// TestWorkerBound: a single-worker pool still answers multi-shard queries.
func TestWorkerBound(t *testing.T) {
	data := dataset.Uniform(3000, 17)
	ix := New(data, Config{Shards: 16, Workers: 1})
	oracle := scan.New(data)
	q := geom.MBB(data) // overlaps every shard
	got, want := sortedIDs(ix.Query(q, nil)), sortedIDs(oracle.Query(q, nil))
	if !equalIDs(got, want) {
		t.Fatalf("got %d IDs, want %d", len(got), len(want))
	}
}
