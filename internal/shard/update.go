// Live updates on the sharded engine: Insert and Delete route each object
// to the shard owning its tile and delegate to the sub-index's own update
// machinery (for the default QUASII sub-indexes that is core.Index.Append /
// Delete / Flush: arrivals are buffered and scanned by every query until a
// Flush folds them in, deletions tombstone immediately).
//
// # Consistency contract
//
// Each object lives in exactly one shard. With the default MVCC sub-indexes
// (core.Index), data changes are versioned: an Insert or Delete publishes a
// new immutable version with an atomic pointer swap under the shard's READ
// lock, so writers never evict concurrent readers — only structural work
// (cracking, Flush) takes the write lock. The engine provides per-object
// atomicity: an Insert or Delete that has returned is visible to every
// query that starts afterwards (a reader loads the version head once and
// sees every version published before that load). There is no multi-object
// or cross-shard atomicity — a Query concurrent with a multi-object Insert
// may observe any prefix of it, and a multi-shard Query visits its shards
// one at a time, so two overlapping queries racing one update may disagree
// on whether they saw it. Deletes take effect immediately (tombstones
// filter results before compaction); inserts are visible immediately too
// (the pending delta is scanned by every query) but cost O(pending) per
// query until Flush folds them into the indexed arrays. Shard bounding
// boxes only ever grow — deleting the outermost object does not shrink the
// box — which keeps concurrent routing lock-free and is conservative but
// always correct. Sub-indexes that satisfy only Updatable (not
// VersionedUpdatable) keep the pre-MVCC behaviour: every update runs under
// the write lock.

package shard

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Updatable is the optional interface a sub-index must satisfy for the
// sharded engine to accept Insert/Delete/Flush. The default QUASII
// sub-indexes (core.Index) satisfy it.
type Updatable interface {
	Queryable
	Append(objs ...geom.Object)
	Delete(id int32, hint geom.Box) bool
	Flush()
	Pending() int
}

// ErrNotUpdatable is returned by Insert, Delete and Flush when the shard
// sub-indexes (built by a custom Config.New) do not satisfy Updatable.
var ErrNotUpdatable = errors.New("shard: sub-index does not support updates (Updatable)")

// VersionedUpdatable is the optional sub-index interface behind the
// non-blocking (MVCC) update path. An implementation must publish data
// changes as immutable versions so that Append and DeleteShared are safe
// under the shard's READ lock, concurrent with any number of shared
// readers: Append appends to a copy-on-write pending delta, DeleteShared
// publishes a tombstone without reorganizing the structure (ok == false
// when it cannot — the engine escalates to the write-locked Delete).
// DataVersion returns the current version sequence number and LiveVersions
// the chain length (live version plus pinned predecessors). The default
// QUASII sub-indexes (core.Index) qualify.
type VersionedUpdatable interface {
	Updatable
	DeleteShared(id int32, hint geom.Box) (found, ok bool)
	DataVersion() uint64
	LiveVersions() int
}

// Insert routes each object to the shard owning its tile — the spatial
// shard whose build-time tile box is nearest to the object's center, or the
// overflow shard when the center falls outside the union of all tiles —
// and appends it there. The shard's live bounding box is grown first, so a
// query that starts after Insert returns cannot miss the object. With
// versioned sub-indexes the append runs under the shard's read lock — it
// publishes a new version instead of mutating shared state, so concurrent
// readers are never evicted. Safe for concurrent use. Returns
// ErrNotUpdatable when the sub-indexes do not support updates.
func (ix *Index) Insert(objs ...geom.Object) error {
	for i := range objs {
		sh, err := ix.route(&objs[i])
		if err != nil {
			return err
		}
		up, ok := sh.sub.(Updatable)
		if !ok {
			return ErrNotUpdatable
		}
		sh.extendBounds(objs[i].Box)
		healthy := false
		if sh.versioned != nil {
			healthy = sh.appendSharedProbe(sh.versioned, objs[i])
		} else {
			healthy = sh.appendProbe(up, objs[i])
		}
		if !healthy {
			return fmt.Errorf("%w (insert of id %d dropped)", ErrQuarantined, objs[i].ID)
		}
		ix.count.Add(1)
	}
	return nil
}

// route picks the owning shard for an object: the nearest build-time tile
// by the object's center (containment means distance zero; ties break in
// shard order, deterministically), or the overflow shard when the center
// lies outside the union of all tiles. Quarantined shards no longer accept
// objects, so routing falls through to the next-nearest healthy tile (the
// live bounds it extends keep queries correct) and, when every spatial
// shard is poisoned, to the overflow shard.
func (ix *Index) route(o *geom.Object) (*shardEntry, error) {
	c := o.Center()
	if !ix.tileMBB.ContainsPoint(c) {
		return ix.ensureOverflow()
	}
	var best *shardEntry
	bestD := math.Inf(1)
	for _, sh := range ix.shards {
		if sh.quarantined.Load() {
			continue
		}
		if d := sh.tile.MinDistSq(c); d < bestD {
			best, bestD = sh, d
			if d == 0 {
				break
			}
		}
	}
	if best == nil {
		return ix.ensureOverflow()
	}
	return best, nil
}

// ensureOverflow returns the overflow shard, creating it on first use. The
// overflow sub-index is built by the same constructor as the spatial shards,
// over no objects; its bounding box starts empty and grows with inserts.
func (ix *Index) ensureOverflow() (*shardEntry, error) {
	if sh := ix.overflow.Load(); sh != nil {
		if sh.quarantined.Load() {
			return nil, ErrQuarantined
		}
		return sh, nil
	}
	ix.ovMu.Lock()
	defer ix.ovMu.Unlock()
	if sh := ix.overflow.Load(); sh != nil {
		if sh.quarantined.Load() {
			return nil, ErrQuarantined
		}
		return sh, nil
	}
	sub := ix.build(nil)
	if _, ok := sub.(Updatable); !ok {
		return nil, ErrNotUpdatable
	}
	sh := ix.newEntry(sub, geom.EmptyBox())
	empty := geom.EmptyBox()
	sh.bounds.Store(&empty)
	ix.overflow.Store(sh)
	return sh, nil
}

// Delete removes the object with the given ID, using hint (typically the
// object's own box, as in core.Index.Delete) to locate it: every shard
// whose live bounds intersect the hint is probed in shard order until one
// reports the object found. With versioned sub-indexes the tombstone is
// first attempted under the shard's read lock (DeleteShared publishes a
// new version without blocking readers); only when the sub-index cannot
// locate the object read-only — an unconverged region — does the probe
// escalate to the write lock. It reports whether an object was deleted.
// Safe for concurrent use.
func (ix *Index) Delete(id int32, hint geom.Box) (bool, error) {
	var hitBuf [16]*shardEntry
	for _, sh := range ix.overlapping(hint, hitBuf[:0]) {
		up, ok := sh.sub.(Updatable)
		if !ok {
			return false, ErrNotUpdatable
		}
		var found, healthy bool
		if sh.versioned != nil {
			var handled bool
			found, handled, healthy = sh.deleteSharedProbe(sh.versioned, id, hint)
			if healthy && !handled {
				found, healthy = sh.deleteProbe(up, id, hint)
			}
		} else {
			found, healthy = sh.deleteProbe(up, id, hint)
		}
		if !healthy {
			continue // shard just quarantined itself; probe the rest
		}
		if found {
			ix.count.Add(-1)
			return true, nil
		}
	}
	return false, nil
}

// Flush folds pending inserts into every shard's indexed array and compacts
// tombstoned deletions, shard by shard under each shard's lock (queries on
// other shards proceed meanwhile). Queries against a flushed QUASII shard
// rebuild its refinement incrementally, as after construction.
func (ix *Index) Flush() error {
	var err error
	ix.forEach(func(sh *shardEntry) {
		up, ok := sh.sub.(Updatable)
		if !ok {
			err = ErrNotUpdatable
			return
		}
		sh.mu.Lock()
		up.Flush()
		sh.mu.Unlock()
	})
	return err
}

// Pending returns the total number of appended objects not yet folded into
// the shards' indexed arrays. Sub-indexes without update support count 0.
func (ix *Index) Pending() int {
	n := 0
	ix.forEach(func(sh *shardEntry) {
		if up, ok := sh.sub.(Updatable); ok {
			sh.mu.RLock()
			n += up.Pending()
			sh.mu.RUnlock()
		}
	})
	return n
}
