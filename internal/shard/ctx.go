// Context-aware query entry points. The serving layer threads each
// request's context down here so a client that disconnects (or blows its
// per-request deadline) stops consuming shard probes instead of running its
// fan-out to completion against nobody.
//
// Cancellation is cooperative and probe-granular: the context is checked
// between shard probes, never inside one — a probe holds a shard lock and
// finishes what it started, so a cancelled query costs at most one more
// probe. The hot path is untouched: a nil or never-cancellable context
// (context.Background(), the coalesced-batch leader) delegates straight to
// the allocation-free plain variants, and the fan-out bodies below are
// deliberate mirrors of the ones in shard.go/batch.go rather than a shared
// parameterized implementation, so the converged read path keeps its
// zero-allocation guarantee without carrying cancellation branches.
//
// On cancellation the ID slices returned are partial (whatever probes
// completed); callers must discard them when err != nil. Pooled per-shard
// buffers are always returned to the pool, cancelled or not, and the
// fan-out always waits for its spawned goroutines before returning — a
// cancelled query never leaks a buffer or leaves a goroutine writing into
// a recycled one.

package shard

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/telemetry"
)

// QueryCtx is Query with cooperative cancellation. The returned slice is
// meaningless when err != nil.
func (ix *Index) QueryCtx(ctx context.Context, q geom.Box, out []int32) ([]int32, error) {
	return ix.QueryTracedCtx(ctx, q, out, nil)
}

// QueryTracedCtx is QueryTraced with cooperative cancellation.
func (ix *Index) QueryTracedCtx(ctx context.Context, q geom.Box, out []int32, tr *telemetry.Trace) ([]int32, error) {
	if ctx == nil || ctx.Done() == nil {
		return ix.QueryTraced(q, out, tr), nil
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	var hitBuf [16]*shardEntry
	hit := ix.overlapping(q, hitBuf[:0])
	ix.mFanout.Observe(float64(len(hit)))
	tr.SetFanout(len(hit))
	switch len(hit) {
	case 0:
		return out, nil
	case 1:
		return queryShard(hit[0], q, out, tr), nil
	}
	if ix.workers <= 1 {
		return querySerialCtx(ctx, hit, q, out, tr)
	}
	var resArr [16]*[]int32
	results := resArr[:]
	if len(hit) > len(results) {
		results = make([]*[]int32, len(hit))
	}
	var wg sync.WaitGroup
	var cancelled error
	for k := 1; k < len(hit); k++ {
		if err := ctx.Err(); err != nil {
			cancelled = err
			break // results[k:] stay nil; the merge below skips them
		}
		buf := getIDBuf()
		results[k] = buf
		select {
		case ix.sem <- struct{}{}:
			wg.Add(1)
			go func(sh *shardEntry, buf *[]int32) {
				defer wg.Done()
				*buf = queryShard(sh, q, (*buf)[:0], tr)
				<-ix.sem
			}(hit[k], buf)
		default:
			*buf = queryShard(hit[k], q, (*buf)[:0], tr)
		}
	}
	if cancelled == nil {
		if err := ctx.Err(); err != nil {
			cancelled = err
		} else {
			out = queryShard(hit[0], q, out, tr)
		}
	}
	// Even when cancelled, wait for the spawned probes: their buffers go
	// back to the pool here, and returning while a goroutine still writes
	// into a recycled buffer would corrupt another query's results.
	wg.Wait()
	for _, r := range results[1:len(hit)] {
		if r == nil {
			continue
		}
		if cancelled == nil {
			out = append(out, (*r)...)
		}
		putIDBuf(r)
	}
	return out, cancelled
}

// querySerialCtx is querySerial with a cancellation check between shards.
func querySerialCtx(ctx context.Context, hit []*shardEntry, q geom.Box, out []int32, tr *telemetry.Trace) ([]int32, error) {
	for _, sh := range hit {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out = queryShard(sh, q, out, tr)
	}
	return out, nil
}

// QueryBatchCtx is QueryBatch with cooperative cancellation: the drain loop
// checks the context before claiming each query, so a cancelled batch stops
// within one query per worker. The returned slice is indexed like queries;
// when err != nil, unanswered entries are nil and answered ones are valid
// (the serving layer still recycles them).
func (ix *Index) QueryBatchCtx(ctx context.Context, queries []geom.Box) ([][]int32, error) {
	return ix.QueryBatchTracedCtx(ctx, queries, nil)
}

// QueryBatchTracedCtx is QueryBatchTraced with cooperative cancellation.
func (ix *Index) QueryBatchTracedCtx(ctx context.Context, queries []geom.Box, traces []*telemetry.Trace) ([][]int32, error) {
	if ctx == nil || ctx.Done() == nil {
		return ix.QueryBatchTraced(queries, traces), nil
	}
	results := make([][]int32, len(queries))
	var next atomic.Int64
	drain := func() {
		var hit []*shardEntry
		for ctx.Err() == nil {
			qi := int(next.Add(1)) - 1
			if qi >= len(queries) {
				return
			}
			var tr *telemetry.Trace
			if traces != nil {
				tr = traces[qi]
			}
			hit = ix.overlapping(queries[qi], hit[:0])
			ix.mFanout.Observe(float64(len(hit)))
			tr.SetFanout(len(hit))
			results[qi] = querySerial(hit, queries[qi], GetResultBuf(), tr)
		}
	}
	helpers := ix.workers
	if helpers > len(queries) {
		helpers = len(queries)
	}
	var wg sync.WaitGroup
	for w := 1; w < helpers; w++ {
		select {
		case ix.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				drain()
				<-ix.sem
			}()
		default:
		}
	}
	drain()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}
