// STR-style spatial partitioning: the same sort-tile-recursive discipline
// the R-tree bulk loader uses, applied once at the top to carve the dataset
// into P contiguous tiles of near-equal cardinality.

package shard

import (
	"sort"

	"repro/internal/geom"
)

// partition copies data and splits it into at most p spatial parts of
// near-equal size. Tiling cuts by rank (equal object counts), not by
// coordinate, so skewed data still yields balanced shards; fully degenerate
// data (every representative point identical) falls back to round-robin
// assignment, which preserves balance when tiling has nothing to sort on.
// Every returned part is non-empty.
func partition(data []geom.Object, p int) [][]geom.Object {
	objs := make([]geom.Object, len(data))
	copy(objs, data)
	if p > len(objs) {
		p = len(objs)
	}
	if p <= 1 {
		return [][]geom.Object{objs}
	}
	if degenerate(objs) {
		return roundRobin(objs, p)
	}
	px, py, pz := factor3(p)
	var parts [][]geom.Object
	for _, slab := range tile(objs, px, 0) {
		for _, run := range tile(slab, py, 1) {
			for _, t := range tile(run, pz, 2) {
				if len(t) > 0 {
					parts = append(parts, t)
				}
			}
		}
	}
	return parts
}

// center returns the representative coordinate used for tiling: the object's
// center in dimension d (STR's choice; balanced for volumetric objects).
func center(o *geom.Object, d int) float64 { return (o.Min[d] + o.Max[d]) / 2 }

// degenerate reports whether every object shares the same representative
// point, in which case sorting cannot spread them and tiling degrades to an
// arbitrary split with fully overlapping shard boxes.
func degenerate(objs []geom.Object) bool {
	for d := 0; d < geom.Dims; d++ {
		c0 := center(&objs[0], d)
		for i := 1; i < len(objs); i++ {
			if center(&objs[i], d) != c0 {
				return false
			}
		}
	}
	return true
}

// roundRobin deals objects into p parts like cards, keeping sizes within one
// of each other.
func roundRobin(objs []geom.Object, p int) [][]geom.Object {
	parts := make([][]geom.Object, p)
	for i := range objs {
		parts[i%p] = append(parts[i%p], objs[i])
	}
	return parts
}

// tile sorts objs by the dimension-d representative coordinate and cuts the
// sorted run into k contiguous parts of near-equal size (three-index slices,
// so parts never grow into each other).
func tile(objs []geom.Object, k, d int) [][]geom.Object {
	if k <= 1 || len(objs) <= 1 {
		return [][]geom.Object{objs}
	}
	sort.Slice(objs, func(i, j int) bool { return center(&objs[i], d) < center(&objs[j], d) })
	if k > len(objs) {
		k = len(objs)
	}
	parts := make([][]geom.Object, 0, k)
	n := len(objs)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		parts = append(parts, objs[lo:hi:hi])
	}
	return parts
}

// factor3 splits p into three factors px ≥ py ≥ pz with px·py·pz = p, as
// balanced as possible (minimal largest factor). 16 → 4·2·2, 8 → 2·2·2,
// primes fall back to p·1·1.
func factor3(p int) (px, py, pz int) {
	px, py, pz = p, 1, 1
	for c := 1; c*c*c <= p; c++ {
		if p%c != 0 {
			continue
		}
		rem := p / c
		for b := c; b*b <= rem; b++ {
			if rem%b != 0 {
				continue
			}
			if a := rem / b; a < px || (a == px && b < py) {
				px, py, pz = a, b, c
			}
		}
	}
	return px, py, pz
}
