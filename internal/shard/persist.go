// Sharded persistence: Snapshot writes one snapshot file per shard plus a
// JSON manifest binding them together; Restore reassembles the engine from
// a snapshot directory without re-partitioning or re-refining anything.
//
// Per-shard files are written concurrently, each under its shard's read
// lock, so a snapshot rides the same shared read path as converged queries:
// it blocks no readers and is blocked only by in-flight cracking or update
// writers on the shard it is currently copying. Because shards are locked
// one at a time, a standalone Snapshot concurrent with updates is per-shard
// consistent but not a cross-shard point-in-time cut; callers that need a
// precise cut (internal/durable does, to bound its write-ahead log) must
// pause updates around the call — queries can keep flowing.
//
// The manifest records what the sub-index snapshots cannot: the build-time
// STR tile of each shard (which routes inserts), the live bounding box
// (which routes queries and only ever grows), the overflow shard, and the
// union of tiles. File-level atomicity is the caller's concern: write into
// a fresh directory and rename it into place (internal/durable does).

package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/geom"
)

// Saver is the optional sub-index interface behind Snapshot. The default
// QUASII sub-indexes (core.Index) satisfy it.
type Saver interface {
	Save(w io.Writer) error
}

// ErrNotPersistable is returned by Snapshot when a shard's sub-index (built
// by a custom Config.New) does not satisfy Saver, and by Restore when the
// config requests custom sub-indexes (snapshot files always decode into the
// default QUASII sub-indexes).
var ErrNotPersistable = errors.New("shard: sub-index does not support persistence (Saver)")

// VersionPinner is the optional sub-index interface behind pinned
// (zero-pause) snapshots: PinVersion pins the current MVCC version against
// garbage collection and SaveVersion serializes exactly that version's
// view, both while later updates keep publishing new versions. The default
// QUASII sub-indexes (core.Index) qualify. Both methods must be called
// under the shard's read lock (the engine's PinVersions/SnapshotPinnedFS
// handle that).
type VersionPinner interface {
	PinVersion() *core.Version
	SaveVersion(w io.Writer, v *core.Version) error
}

// ErrNotVersioned is returned by PinVersions when a shard's sub-index does
// not satisfy VersionPinner; callers fall back to the pause-and-Snapshot
// checkpoint discipline.
var ErrNotVersioned = errors.New("shard: sub-index does not support versioned snapshots (VersionPinner)")

// ManifestName is the file binding a snapshot directory together. It is
// written last, so a directory without it is an aborted snapshot.
const ManifestName = "MANIFEST.json"

const manifestVersion = 1

// manifest is the JSON index of a snapshot directory.
type manifest struct {
	Version  int            `json:"version"`
	TileMBB  boxManifest    `json:"tile_mbb"`
	Shards   []shardRecord  `json:"shards"`
	Overflow *overflowEntry `json:"overflow,omitempty"`
}

type shardRecord struct {
	File   string      `json:"file"`
	Tile   boxManifest `json:"tile"`
	Bounds boxManifest `json:"bounds"`
}

type overflowEntry struct {
	File   string      `json:"file"`
	Bounds boxManifest `json:"bounds"`
}

// boxManifest is a geom.Box in JSON-safe form. Coordinates are formatted as
// strings because live bounds can legitimately be ±Inf (an empty overflow
// shard), which JSON numbers cannot represent; strconv round-trips both the
// infinities and every finite float64 exactly.
type boxManifest struct {
	Min [geom.Dims]string `json:"min"`
	Max [geom.Dims]string `json:"max"`
}

func boxToManifest(b geom.Box) boxManifest {
	var m boxManifest
	for d := 0; d < geom.Dims; d++ {
		m.Min[d] = strconv.FormatFloat(b.Min[d], 'g', -1, 64)
		m.Max[d] = strconv.FormatFloat(b.Max[d], 'g', -1, 64)
	}
	return m
}

func boxFromManifest(m boxManifest) (geom.Box, error) {
	var b geom.Box
	for d := 0; d < geom.Dims; d++ {
		lo, err := strconv.ParseFloat(m.Min[d], 64)
		if err != nil {
			return b, fmt.Errorf("parsing box min[%d] %q: %w", d, m.Min[d], err)
		}
		hi, err := strconv.ParseFloat(m.Max[d], 64)
		if err != nil {
			return b, fmt.Errorf("parsing box max[%d] %q: %w", d, m.Max[d], err)
		}
		b.Min[d], b.Max[d] = lo, hi
	}
	return b, nil
}

func shardFileName(i int) string { return fmt.Sprintf("shard-%03d.snap", i) }

const overflowFileName = "overflow.snap"

// Snapshot writes the engine's state into dir (which must exist): one
// snapshot file per shard — written concurrently, each under its shard's
// read lock — plus the manifest, written last and only if every shard file
// succeeded. Every file is fsynced before Snapshot returns; directory-entry
// durability (fsync of dir itself, atomic rename into place) is left to the
// caller.
func (ix *Index) Snapshot(dir string) error {
	return ix.SnapshotFS(dir, faultfs.OS{})
}

// SnapshotFS is Snapshot over an injectable file system — the durable
// store threads its (possibly fault-injecting) FS through here so
// checkpoint rotation is exercised by the same fault rules as the WAL.
func (ix *Index) SnapshotFS(dir string, fsys faultfs.FS) error {
	type job struct {
		sh     *shardEntry
		file   string
		bounds geom.Box // live bounds captured under the shard's read lock
		err    error
	}
	// A quarantined shard vetoes the whole snapshot: its sub-index just
	// demonstrated it cannot be trusted (a probe panicked mid-walk), and
	// persisting it would promote a transient in-memory corruption into
	// every future restart. Callers keep the previous generation instead.
	jobs := make([]*job, 0, len(ix.shards)+1)
	for i, sh := range ix.shards {
		if sh.quarantined.Load() {
			return fmt.Errorf("snapshot refused, shard %d: %w", i, ErrQuarantined)
		}
		jobs = append(jobs, &job{sh: sh, file: shardFileName(i)})
	}
	overflow := ix.overflow.Load()
	if overflow != nil {
		if overflow.quarantined.Load() {
			return fmt.Errorf("snapshot refused, overflow shard: %w", ErrQuarantined)
		}
		jobs = append(jobs, &job{sh: overflow, file: overflowFileName})
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		sub, ok := j.sh.sub.(Saver)
		if !ok {
			return ErrNotPersistable
		}
		wg.Add(1)
		go func(j *job, sub Saver) {
			defer wg.Done()
			j.bounds, j.err = writeShardFile(fsys, filepath.Join(dir, j.file), j.sh, sub)
		}(j, sub)
	}
	wg.Wait()

	m := manifest{Version: manifestVersion, TileMBB: boxToManifest(ix.tileMBB)}
	for _, j := range jobs {
		if j.err != nil {
			return j.err
		}
		if j.sh == overflow {
			m.Overflow = &overflowEntry{File: j.file, Bounds: boxToManifest(j.bounds)}
			continue
		}
		m.Shards = append(m.Shards, shardRecord{
			File: j.file, Tile: boxToManifest(j.sh.tile), Bounds: boxToManifest(j.bounds),
		})
	}
	return writeManifest(fsys, filepath.Join(dir, ManifestName), &m)
}

// writeShardFile saves one sub-index to path under its shard's read lock
// and fsyncs the file. It returns the shard's live bounds as captured under
// that lock: every object in the saved file had its bounds extension
// completed before it was appended (Insert grows bounds before taking the
// shard lock), so bounds read here are guaranteed to cover the file — read
// before the lock they could miss a racing insert, and a restored engine
// would then skip the shard on queries its objects intersect.
func writeShardFile(fsys faultfs.FS, path string, sh *shardEntry, sub Saver) (geom.Box, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return geom.Box{}, err
	}
	sh.mu.RLock()
	bounds := sh.boundsBox()
	err = sub.Save(f)
	sh.mu.RUnlock()
	if err != nil {
		f.Close()
		return bounds, fmt.Errorf("saving %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return bounds, err
	}
	return bounds, f.Close()
}

func writeManifest(fsys faultfs.FS, path string, m *manifest) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return fmt.Errorf("encoding manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pinnedShard is one shard's pinned version plus everything the manifest
// needs about it, captured under the shard's read lock at pin time.
type pinnedShard struct {
	sh       *shardEntry
	pin      VersionPinner
	ver      *core.Version
	file     string
	tile     geom.Box
	bounds   geom.Box
	overflow bool
}

// PinSet is a consistent-per-shard set of pinned MVCC versions: one per
// shard that existed at pin time. It is the handle behind the zero-pause
// durable checkpoint — pin, let updates continue, serialize the pinned
// views with SnapshotPinnedFS, then Release. A PinSet must be Released
// exactly once; Release is idempotent so deferred cleanup is safe.
type PinSet struct {
	pins     []pinnedShard
	tileMBB  geom.Box
	released atomic.Bool
}

// PinVersions pins every shard's current MVCC version — each under its
// shard's read lock, shards visited one at a time — and returns the set.
// Like Snapshot, the pin refuses a quarantined engine (a poisoned
// structure must never reach a checkpoint) and, like Snapshot, the set is
// per-shard consistent but not a cross-shard point-in-time cut; the
// durable store brackets PinVersions with its own update cut to get one.
// An overflow shard created after PinVersions returns is not in the set
// (objects routed there after the cut belong to the next checkpoint's log
// anyway). Returns ErrNotVersioned when a sub-index cannot pin.
func (ix *Index) PinVersions() (*PinSet, error) {
	ps := &PinSet{tileMBB: ix.tileMBB}
	fail := func(err error) (*PinSet, error) {
		ps.Release()
		return nil, err
	}
	add := func(sh *shardEntry, file string, tile geom.Box, overflow bool) error {
		if sh.quarantined.Load() {
			return fmt.Errorf("pin refused, %s: %w", file, ErrQuarantined)
		}
		pin, ok := sh.sub.(VersionPinner)
		if !ok {
			return ErrNotVersioned
		}
		sh.mu.RLock()
		ver := pin.PinVersion()
		bounds := sh.boundsBox()
		sh.mu.RUnlock()
		ps.pins = append(ps.pins, pinnedShard{
			sh: sh, pin: pin, ver: ver, file: file, tile: tile, bounds: bounds, overflow: overflow,
		})
		return nil
	}
	for i, sh := range ix.shards {
		if err := add(sh, shardFileName(i), sh.tile, false); err != nil {
			return fail(err)
		}
	}
	if sh := ix.overflow.Load(); sh != nil {
		if err := add(sh, overflowFileName, geom.EmptyBox(), true); err != nil {
			return fail(err)
		}
	}
	return ps, nil
}

// Versions returns the pinned version of every shard in the set, in shard
// order (overflow last, when present). Test harnesses read these to audit
// visibility against an oracle.
func (ps *PinSet) Versions() []*core.Version {
	out := make([]*core.Version, len(ps.pins))
	for i := range ps.pins {
		out[i] = ps.pins[i].ver
	}
	return out
}

// Release unpins every version in the set, letting the sub-indexes garbage
// collect superseded versions. Idempotent; safe to defer alongside an
// explicit call on the success path.
func (ps *PinSet) Release() {
	if ps == nil || ps.released.Swap(true) {
		return
	}
	for i := range ps.pins {
		p := &ps.pins[i]
		p.sh.mu.RLock()
		p.ver.Release()
		p.sh.mu.RUnlock()
	}
}

// SnapshotPinned writes the pinned versions into dir — the zero-pause
// counterpart of Snapshot: the files describe exactly the state at pin
// time no matter how many updates landed since.
func (ix *Index) SnapshotPinned(dir string, ps *PinSet) error {
	return ix.SnapshotPinnedFS(dir, faultfs.OS{}, ps)
}

// SnapshotPinnedFS is SnapshotPinned over an injectable file system. Shard
// files are written concurrently, each under its shard's read lock (the
// pinned version's lanes may still be reorganized in place by cracking on
// the live generation; the read lock excludes that). A shard quarantined
// since the pin vetoes the snapshot, exactly as in SnapshotFS: its pinned
// version shares storage with the structure that just panicked.
func (ix *Index) SnapshotPinnedFS(dir string, fsys faultfs.FS, ps *PinSet) error {
	type job struct {
		p   *pinnedShard
		err error
	}
	jobs := make([]*job, 0, len(ps.pins))
	for i := range ps.pins {
		p := &ps.pins[i]
		if p.sh.quarantined.Load() {
			return fmt.Errorf("snapshot refused, %s: %w", p.file, ErrQuarantined)
		}
		jobs = append(jobs, &job{p: p})
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			j.err = writePinnedShardFile(fsys, filepath.Join(dir, j.p.file), j.p)
		}(j)
	}
	wg.Wait()

	m := manifest{Version: manifestVersion, TileMBB: boxToManifest(ps.tileMBB)}
	for _, j := range jobs {
		if j.err != nil {
			return j.err
		}
		if j.p.overflow {
			m.Overflow = &overflowEntry{File: j.p.file, Bounds: boxToManifest(j.p.bounds)}
			continue
		}
		m.Shards = append(m.Shards, shardRecord{
			File: j.p.file, Tile: boxToManifest(j.p.tile), Bounds: boxToManifest(j.p.bounds),
		})
	}
	return writeManifest(fsys, filepath.Join(dir, ManifestName), &m)
}

// writePinnedShardFile saves one pinned version to path under its shard's
// read lock and fsyncs the file. Bounds come from pin time (captured under
// the same lock as the pin itself), so the manifest covers exactly the
// objects the pinned version holds.
func writePinnedShardFile(fsys faultfs.FS, path string, p *pinnedShard) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	p.sh.mu.RLock()
	err = p.pin.SaveVersion(f, p.ver)
	p.sh.mu.RUnlock()
	if err != nil {
		f.Close()
		return fmt.Errorf("saving %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Restore reassembles a sharded index from a snapshot directory written by
// Snapshot. Shard files are loaded concurrently. The restored engine keeps
// the snapshot's spatial layout (tiles, live bounds, overflow shard) and
// every sub-index's accumulated refinement; cfg supplies the runtime knobs
// exactly as for New (Workers, CrackBudget, DisableSharedReads, and
// SubConfig for shards created after restore, i.e. a fresh overflow).
// cfg.New must be nil: snapshot files always decode into the default QUASII
// sub-indexes.
func Restore(dir string, cfg Config) (*Index, error) {
	if cfg.New != nil {
		return nil, ErrNotPersistable
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("reading snapshot manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("decoding snapshot manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("unsupported snapshot manifest version %d", m.Version)
	}
	if len(m.Shards) == 0 {
		return nil, errors.New("snapshot manifest lists no shards")
	}

	sub := cfg.SubConfig
	ix := &Index{
		shards: make([]*shardEntry, len(m.Shards)),
		build:  func(objs []geom.Object) Queryable { return core.New(objs, sub) },
	}
	ix.tileMBB, err = boxFromManifest(m.TileMBB)
	if err != nil {
		return nil, err
	}
	ix.crackBudget = cfg.CrackBudget
	if ix.crackBudget == 0 {
		ix.crackBudget = DefaultCrackBudget
	}
	ix.noShared = cfg.DisableSharedReads
	ix.versionHorizon = cfg.VersionHorizon
	if ix.versionHorizon == 0 {
		ix.versionHorizon = DefaultVersionHorizon
	}

	errs := make([]error, len(m.Shards)+1)
	var wg sync.WaitGroup
	for i, rec := range m.Shards {
		wg.Add(1)
		go func(i int, rec shardRecord) {
			defer wg.Done()
			tile, err := boxFromManifest(rec.Tile)
			if err != nil {
				errs[i] = err
				return
			}
			bounds, err := boxFromManifest(rec.Bounds)
			if err != nil {
				errs[i] = err
				return
			}
			sub, err := loadShardFile(filepath.Join(dir, rec.File))
			if err != nil {
				errs[i] = err
				return
			}
			sh := ix.newEntry(sub, tile)
			sh.bounds.Store(&bounds)
			ix.shards[i] = sh
		}(i, rec)
	}
	if m.Overflow != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bounds, err := boxFromManifest(m.Overflow.Bounds)
			if err != nil {
				errs[len(m.Shards)] = err
				return
			}
			sub, err := loadShardFile(filepath.Join(dir, m.Overflow.File))
			if err != nil {
				errs[len(m.Shards)] = err
				return
			}
			sh := ix.newEntry(sub, geom.EmptyBox())
			sh.bounds.Store(&bounds)
			ix.overflow.Store(sh)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	ix.workers = effectiveWorkers(cfg.Workers, len(ix.shards))
	ix.sem = make(chan struct{}, ix.workers)
	n := 0
	ix.forEach(func(sh *shardEntry) { n += sh.sub.Len() })
	ix.count.Store(int64(n))
	return ix, nil
}

func loadShardFile(path string) (Queryable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sub, err := core.Load(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", filepath.Base(path), err)
	}
	return sub, nil
}

// effectiveWorkers resolves the Config.Workers default: min(shard count,
// GOMAXPROCS), at least 1. Shared by New and Restore.
func effectiveWorkers(requested, shards int) int {
	if requested >= 1 {
		return requested
	}
	w := shards
	if mp := runtime.GOMAXPROCS(0); w > mp {
		w = mp
	}
	if w < 1 {
		w = 1
	}
	return w
}
