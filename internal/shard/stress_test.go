// Concurrency stress tests for the two-path read/write engine. They are
// written to run under -race: many goroutines hammer one shard (the worst
// case for the RWMutex scheduler — no inter-shard parallelism to hide
// behind) with queries, KNN probes, inserts, deletes and flushes, and the
// structure is invariant-checked after every quiesced round.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/scan"
	"repro/internal/workload"
)

// TestStressSingleShard runs concurrent Query/KNN/Insert/Delete/Flush
// against a single-shard engine, then — after every round quiesces —
// sweeps CheckInvariants and validates queries against a scan oracle over
// the live object set.
func TestStressSingleShard(t *testing.T) {
	const (
		n       = 4000
		rounds  = 4
		readers = 4
		writers = 2
		queries = 150
	)
	base := dataset.Uniform(n, 11)
	ix := New(dataset.Clone(base), Config{Shards: 1})
	boxes := workload.Uniform(dataset.Universe(), queries, 1e-3, 12)

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		var qerr atomic.Value
		// Readers drain the workload; half of them also probe KNN.
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var buf []int32
				for i := r; i < len(boxes); i += readers {
					buf = ix.Query(boxes[i], buf[:0])
					if r%2 == 0 {
						if _, err := ix.KNN(boxes[i].Center(), 5); err != nil {
							qerr.Store(err)
							return
						}
					}
				}
			}(r)
		}
		// Writers run insert→delete cycles on round-local IDs; one of them
		// flushes periodically.
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(boxes); i += writers {
					id := int32(1_000_000 + round*10_000 + i)
					obj := geom.Object{Box: geom.BoxAt(boxes[i].Center(), 1), ID: id}
					if err := ix.Insert(obj); err != nil {
						qerr.Store(err)
						return
					}
					if _, err := ix.Delete(id, obj.Box); err != nil {
						qerr.Store(err)
						return
					}
					if w == 0 && i%40 == 0 {
						if err := ix.Flush(); err != nil {
							qerr.Store(err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if err := qerr.Load(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatalf("round %d: invariants violated: %v", round, err)
		}
		// Quiesced oracle sweep: every write cycle deleted its object, so
		// the live set is exactly the base dataset again (modulo pending
		// compaction, which queries must see through).
		if err := ix.Flush(); err != nil {
			t.Fatalf("round %d: flush: %v", round, err)
		}
		sc := scan.New(dataset.Clone(base))
		for i, q := range boxes[:20] {
			got := append([]int32(nil), ix.Query(q, nil)...)
			want := sc.Query(q, nil)
			if err := sameIDSet(got, want); err != nil {
				t.Fatalf("round %d, query %d: %v", round, i, err)
			}
		}
	}
}

// TestStressMultiShard is the same storm across several shards plus the
// overflow shard (out-of-tile inserts), exercising the fan-out path and
// cross-shard routing under -race.
func TestStressMultiShard(t *testing.T) {
	const n = 6000
	base := dataset.Uniform(n, 13)
	ix := New(dataset.Clone(base), Config{Shards: 4, Workers: 2})
	boxes := workload.Uniform(dataset.Universe(), 120, 1e-3, 14)
	outside := geom.BoxAt(geom.Point{-5000, -5000, -5000}, 2) // beyond every tile

	var wg sync.WaitGroup
	var qerr atomic.Value
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var buf []int32
			for i := r; i < len(boxes); i += 3 {
				buf = ix.Query(boxes[i], buf[:0])
			}
			_ = ix.QueryBatch(boxes[:16])
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			id := int32(2_000_000 + i)
			box := outside
			if i%2 == 0 {
				box = geom.BoxAt(boxes[i%len(boxes)].Center(), 1)
			}
			if err := ix.Insert(geom.Object{Box: box, ID: id}); err != nil {
				qerr.Store(err)
				return
			}
			if _, err := ix.Delete(id, box); err != nil {
				qerr.Store(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := qerr.Load(); err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := scan.New(dataset.Clone(base))
	for i, q := range boxes[:20] {
		if err := sameIDSet(ix.Query(q, nil), sc.Query(q, nil)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

// TestSharedPathEngaged verifies that a converged engine actually answers
// on the shared read path (SharedQueries counts) and that
// DisableSharedReads pins everything to the exclusive path.
func TestSharedPathEngaged(t *testing.T) {
	base := dataset.Uniform(3000, 15)
	boxes := workload.Uniform(dataset.Universe(), 64, 1e-3, 16)

	ix := New(dataset.Clone(base), Config{Shards: 2})
	ix.Complete()
	for _, q := range boxes {
		ix.Query(q, nil)
	}
	st := ix.Stats()
	if st.Core.SharedQueries == 0 {
		t.Fatal("converged engine answered no queries on the shared path")
	}
	if st.Core.Queries != 0 {
		t.Fatalf("converged engine still ran %d exclusive queries", st.Core.Queries)
	}

	off := New(dataset.Clone(base), Config{Shards: 2, DisableSharedReads: true})
	off.Complete()
	for _, q := range boxes {
		off.Query(q, nil)
	}
	if st := off.Stats(); st.Core.SharedQueries != 0 {
		t.Fatalf("DisableSharedReads engine answered %d queries on the shared path", st.Core.SharedQueries)
	}
}

// TestCrackBudgetBoundsExclusiveWork verifies the budget knob: with a tiny
// budget the engine still answers exactly, and the per-query crack counts
// stay bounded while refinement progresses across queries.
func TestCrackBudgetBoundsExclusiveWork(t *testing.T) {
	base := dataset.Uniform(5000, 17)
	boxes := workload.Uniform(dataset.Universe(), 80, 1e-3, 18)
	sc := scan.New(dataset.Clone(base))

	ix := New(dataset.Clone(base), Config{Shards: 1, CrackBudget: 2})
	prev := 0
	for i, q := range boxes {
		if err := sameIDSet(ix.Query(q, nil), sc.Query(q, nil)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		st := ix.Stats()
		if d := st.Core.Cracks - prev; d > 2*3 {
			// Budget 2 bounds partition passes per exclusive pass; a
			// crackThree can overshoot by its in-flight passes, hence the
			// small slack — anything beyond means the budget is not wired.
			t.Fatalf("query %d performed %d crack passes under budget 2", i, d)
		}
		prev = st.Core.Cracks
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func sameIDSet(got, want []int32) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %d results, want %d", len(got), len(want))
	}
	seen := make(map[int32]int, len(got))
	for _, id := range got {
		seen[id]++
	}
	for _, id := range want {
		if seen[id] == 0 {
			return fmt.Errorf("missing ID %d", id)
		}
		seen[id]--
	}
	return nil
}
