package zorder

import "testing"

func BenchmarkEncode(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Encode(uint32(i)&1023, uint32(i>>10)&1023, uint32(i>>20)&1023)
	}
	_ = sink
}

func BenchmarkDecode(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		x, y, z := Decode(uint64(i))
		sink += x + y + z
	}
	_ = sink
}

func BenchmarkDecomposeSmallRange(b *testing.B) {
	lo, hi := [3]uint32{100, 200, 300}, [3]uint32{140, 240, 340}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decompose(lo, hi, BitsPerDim, 0)
	}
}

func BenchmarkDecomposeCapped(b *testing.B) {
	lo, hi := [3]uint32{100, 200, 300}, [3]uint32{400, 500, 600}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decompose(lo, hi, BitsPerDim, 256)
	}
}

func BenchmarkBigMin(b *testing.B) {
	lo, hi := [3]uint32{100, 200, 300}, [3]uint32{400, 500, 600}
	var sink uint64
	for i := 0; i < b.N; i++ {
		v, _ := BigMin(uint64(i)&0x3fffffff, lo, hi, BitsPerDim)
		sink += v
	}
	_ = sink
}
