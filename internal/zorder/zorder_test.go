package zorder

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeKnown(t *testing.T) {
	tests := []struct {
		x, y, z uint32
		code    uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
		{3, 3, 3, 63},
	}
	for _, tt := range tests {
		if got := Encode(tt.x, tt.y, tt.z); got != tt.code {
			t.Errorf("Encode(%d,%d,%d) = %d, want %d", tt.x, tt.y, tt.z, got, tt.code)
		}
		x, y, z := Decode(tt.code)
		if x != tt.x || y != tt.y || z != tt.z {
			t.Errorf("Decode(%d) = %d,%d,%d, want %d,%d,%d", tt.code, x, y, z, tt.x, tt.y, tt.z)
		}
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= MaxCoord(BitsPerDim)
		y &= MaxCoord(BitsPerDim)
		z &= MaxCoord(BitsPerDim)
		gx, gy, gz := Decode(Encode(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMonotoneInOctant(t *testing.T) {
	// Within a single octant at the top level, codes of the low octant are
	// all smaller than codes of the high octant.
	const bits = 4
	half := uint32(1) << (bits - 1)
	loMax := Encode(half-1, half-1, half-1)
	hiMin := Encode(half, 0, 0) // x crosses into the second octant
	if loMax >= hiMin {
		t.Fatalf("octant ordering violated: %d >= %d", loMax, hiMin)
	}
}

// coverGrid enumerates every cell in [0,2^bits)^3 and reports which are inside
// the query range — the brute-force reference for Decompose.
func coverGrid(lo, hi [3]uint32, bits uint) map[uint64]bool {
	want := make(map[uint64]bool)
	n := uint32(1) << bits
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			for z := uint32(0); z < n; z++ {
				inside := x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] && z >= lo[2] && z <= hi[2]
				if inside {
					want[Encode(x, y, z)] = true
				}
			}
		}
	}
	return want
}

func intervalsCover(ivs []Interval, code uint64) bool {
	for _, iv := range ivs {
		if code >= iv.Lo && code <= iv.Hi {
			return true
		}
	}
	return false
}

func TestDecomposeExactCoverage(t *testing.T) {
	const bits = 4
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		var lo, hi [3]uint32
		for d := 0; d < 3; d++ {
			a, b := rng.Uint32()&MaxCoord(bits), rng.Uint32()&MaxCoord(bits)
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		ivs := Decompose(lo, hi, bits, 0)
		want := coverGrid(lo, hi, bits)
		total := uint64(1) << (3 * bits)
		for code := uint64(0); code < total; code++ {
			if intervalsCover(ivs, code) != want[code] {
				t.Fatalf("iter %d lo=%v hi=%v: cell %d coverage mismatch", iter, lo, hi, code)
			}
		}
	}
}

func TestDecomposeSortedAndMerged(t *testing.T) {
	ivs := Decompose([3]uint32{1, 2, 3}, [3]uint32{9, 8, 7}, BitsPerDim, 0)
	if len(ivs) == 0 {
		t.Fatal("no intervals")
	}
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Lo <= ivs[i-1].Hi {
			t.Fatalf("intervals overlap or unsorted at %d: %v %v", i, ivs[i-1], ivs[i])
		}
		if ivs[i].Lo == ivs[i-1].Hi+1 {
			t.Fatalf("adjacent intervals not merged at %d: %v %v", i, ivs[i-1], ivs[i])
		}
	}
}

func TestDecomposeFullUniverse(t *testing.T) {
	const bits = 6
	max := MaxCoord(bits)
	ivs := Decompose([3]uint32{0, 0, 0}, [3]uint32{max, max, max}, bits, 0)
	if len(ivs) != 1 {
		t.Fatalf("full universe should be a single interval, got %d", len(ivs))
	}
	if ivs[0].Lo != 0 || ivs[0].Hi != uint64(1)<<(3*bits)-1 {
		t.Fatalf("interval = %v", ivs[0])
	}
}

func TestDecomposeSingleCell(t *testing.T) {
	ivs := Decompose([3]uint32{5, 6, 7}, [3]uint32{5, 6, 7}, BitsPerDim, 0)
	if len(ivs) != 1 {
		t.Fatalf("single cell should be one interval, got %d", len(ivs))
	}
	code := Encode(5, 6, 7)
	if ivs[0].Lo != code || ivs[0].Hi != code {
		t.Fatalf("interval = %v, want [%d,%d]", ivs[0], code, code)
	}
}

func TestDecomposeInvertedRange(t *testing.T) {
	if ivs := Decompose([3]uint32{5, 5, 5}, [3]uint32{4, 9, 9}, BitsPerDim, 0); ivs != nil {
		t.Fatalf("inverted range should yield nil, got %v", ivs)
	}
}

func TestDecomposeCapLimitsIntervals(t *testing.T) {
	const bits = 6
	// A thin diagonal-ish slab produces many intervals uncapped.
	lo, hi := [3]uint32{3, 0, 3}, [3]uint32{60, 63, 10}
	exact := Decompose(lo, hi, bits, 0)
	capped := Decompose(lo, hi, bits, 8)
	if len(exact) <= 8 {
		t.Skipf("query produced only %d intervals; cap not exercised", len(exact))
	}
	if len(capped) > 8+8 { // the cap is approximate: one frontier per level may finish
		t.Fatalf("cap ineffective: %d intervals", len(capped))
	}
	// Capped intervals must still cover every in-range cell (superset).
	want := coverGrid(lo, hi, bits)
	for code := range want {
		if !intervalsCover(capped, code) {
			t.Fatalf("capped decomposition misses cell %d", code)
		}
	}
}

func TestBigMinBruteForce(t *testing.T) {
	const bits = 3
	rng := rand.New(rand.NewSource(9))
	total := uint64(1) << (3 * bits)
	for iter := 0; iter < 200; iter++ {
		var lo, hi [3]uint32
		for d := 0; d < 3; d++ {
			a, b := rng.Uint32()&MaxCoord(bits), rng.Uint32()&MaxCoord(bits)
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		inRange := make([]uint64, 0, total)
		for code := uint64(0); code < total; code++ {
			x, y, z := Decode(code)
			if x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] && z >= lo[2] && z <= hi[2] {
				inRange = append(inRange, code)
			}
		}
		for code := uint64(0); code < total; code++ {
			got, ok := BigMin(code, lo, hi, bits)
			idx := sort.Search(len(inRange), func(i int) bool { return inRange[i] >= code })
			if idx == len(inRange) {
				if ok {
					t.Fatalf("iter %d: BigMin(%d) = %d, want none (lo=%v hi=%v)", iter, code, got, lo, hi)
				}
				continue
			}
			if !ok || got != inRange[idx] {
				t.Fatalf("iter %d: BigMin(%d) = %d,%v, want %d (lo=%v hi=%v)", iter, code, got, ok, inRange[idx], lo, hi)
			}
		}
	}
}

func TestSpreadCompactInverse(t *testing.T) {
	f := func(v uint32) bool {
		v &= 0x1fffff
		return compact3(spread3(uint64(v))) == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
